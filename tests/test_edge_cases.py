"""Edge-case and failure-injection tests across the library."""

import numpy as np
import pytest

from repro.core.supervision import Keywords, LabelNames
from repro.core.types import Corpus, Document, LabelSet
from repro.datasets import available_profiles, load_profile
from repro.text.tfidf import TfidfVectorizer
from repro.text.vocabulary import Vocabulary


def _corpus(n, label="x", extra=""):
    return Corpus(
        [Document(doc_id=f"d{extra}{i}",
                  tokens=["alpha", "beta", "gamma", "delta"][: 2 + i % 3],
                  labels=(label,))
         for i in range(n)],
        name=f"edge{extra}",
    )


def test_all_catalog_profiles_generate():
    """Every profile in the catalog produces consistent corpora."""
    for name in available_profiles():
        bundle = load_profile(name, seed=1, scale=0.05)
        assert len(bundle.train_corpus) > 0
        assert len(bundle.label_set) >= 2
        for doc in bundle.train_corpus[:5]:
            assert doc.tokens
            assert doc.labels
            for label in doc.labels:
                # Tree profiles label with leaves; DAG closures may include
                # internal nodes — all must exist in the world.
                assert label in bundle.world.lexicons


def test_empty_corpus_rejected_by_vectorizer():
    vec = TfidfVectorizer()
    mat = vec.fit_transform([])
    assert mat.shape[0] == 0


def test_vocabulary_of_empty_stream():
    vocab = Vocabulary.build([])
    assert len(vocab.content_tokens()) == 0
    assert vocab.id("anything") == vocab.unk_id


def test_westclass_on_tiny_corpus():
    """Methods should not crash on degenerate 10-document corpora."""
    from repro.methods import WeSTClass

    label_set = LabelSet(labels=("a", "b"))
    docs = []
    for i in range(10):
        words = ["alpha", "apple"] if i % 2 == 0 else ["bravo", "banana"]
        docs.append(Document(doc_id=f"d{i}", tokens=words * 4,
                             labels=("a" if i % 2 == 0 else "b",)))
    corpus = Corpus(docs)
    keywords = Keywords(label_set=label_set,
                        keywords={"a": ["alpha"], "b": ["bravo"]})
    clf = WeSTClass(pseudo_per_class=5, pretrain_epochs=2,
                    self_train_iterations=1, seed=0)
    clf.fit(corpus, keywords)
    proba = clf.predict_proba(corpus)
    assert np.isfinite(proba).all()


def test_predict_on_single_document(tiny_plm, agnews_small):
    from repro.methods import XClass

    clf = XClass(plm=tiny_plm, seed=0)
    clf.fit(agnews_small.train_corpus, agnews_small.label_names())
    single = agnews_small.test_corpus[:1]
    assert len(clf.predict(single)) == 1


def test_label_names_with_oov_name(tiny_plm, agnews_small):
    """A label name absent from corpus and PLM vocab must not crash."""
    from repro.methods import XClass

    label_set = LabelSet(
        labels=tuple(agnews_small.label_set.labels),
        names={**agnews_small.label_set.names,
               "sports": "zzzneverseenzzz"},
    )
    clf = XClass(plm=tiny_plm, seed=0)
    clf.fit(agnews_small.train_corpus, LabelNames(label_set=label_set))
    proba = clf.predict_proba(agnews_small.test_corpus[:5])
    assert np.isfinite(proba).all()


def test_ir_tfidf_with_all_oov_queries(agnews_small):
    from repro.baselines import IRWithTfidf

    label_set = agnews_small.label_set
    keywords = Keywords(
        label_set=label_set,
        keywords={l: ["zzzz" + l] for l in label_set},
    )
    clf = IRWithTfidf(seed=0)
    clf.fit(agnews_small.train_corpus, keywords)
    proba = clf.predict_proba(agnews_small.test_corpus[:5])
    assert np.allclose(proba.sum(axis=1), 1.0)


def test_classifier_all_identical_documents(rng):
    from repro.classifiers import BagOfEmbeddingsClassifier

    vocab = Vocabulary.build([["same", "words"]])
    docs = [["same", "words"]] * 12
    targets = np.array([0, 1] * 6)
    clf = BagOfEmbeddingsClassifier(vocab, 2, dim=8, seed=0)
    clf.fit(docs, targets, epochs=2)
    proba = clf.predict_proba(docs)
    assert np.isfinite(proba).all()


def test_hin_graph_empty_corpus():
    from repro.hin.graph import HeterogeneousGraph

    graph = HeterogeneousGraph.from_corpus(Corpus([], name="empty"))
    assert len(graph) == 0
    assert graph.nodes("doc") == []


def test_metapath_pairs_without_metadata():
    from repro.hin.graph import HeterogeneousGraph
    from repro.hin.metapath import P_USER_P, metapath_pairs

    corpus = _corpus(5)
    graph = HeterogeneousGraph.from_corpus(corpus)
    assert metapath_pairs(graph, P_USER_P, 10, seed=0) == []


def test_micol_without_metadata_falls_back(tiny_plm, agnews_small):
    """No meta-path pairs -> MICoL degrades to raw-encoder scoring."""
    from repro.methods import MICoL

    clf = MICoL(plm=tiny_plm, encoder="bi", seed=0)
    clf.fit(agnews_small.train_corpus, agnews_small.label_names())
    assert clf._bi is None  # no pairs were found, no fine-tuning happened
    scores = clf.score(agnews_small.test_corpus[:3])
    assert np.isfinite(scores).all()


def test_multilabel_predict_top_k(dag_small):
    from repro.baselines import SemiBERT
    from repro.plm.config import tiny_config
    from repro.plm.provider import get_pretrained_lm

    plm = get_pretrained_lm(target_corpus=dag_small.train_corpus,
                            config=tiny_config(), seed=0)
    clf = SemiBERT(plm=plm, fraction=0.3, epochs=10, seed=0)
    clf.fit(dag_small.train_corpus, dag_small.label_names())
    top2 = clf.predict(dag_small.test_corpus[:4], top_k=2)
    assert all(len(labels) == 2 for labels in top2)
    thresholded = clf.predict(dag_small.test_corpus[:4], threshold=2.0)
    assert all(len(labels) == 1 for labels in thresholded)  # argmax fallback
