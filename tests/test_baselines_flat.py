"""Tests for the flat-classification baselines."""

import numpy as np
import pytest

from repro.baselines import (
    PCEM,
    PTE,
    UNEC,
    BertSimpleMatch,
    ClassKG,
    Dataless,
    Doc2Cube,
    IRWithTfidf,
    PLSATopicModel,
    SupervisedBERT,
    SupervisedCharCNN,
    SupervisedCNN,
    SupervisedHAN,
    UDASemiSupervised,
    ZeroShotEntail,
)
from repro.baselines.word2vec_match import Word2VecMatch
from repro.evaluation.metrics import micro_f1


def _score(clf, bundle, supervision):
    clf.fit(bundle.train_corpus, supervision)
    gold = [d.labels[0] for d in bundle.test_corpus]
    return micro_f1(gold, clf.predict(bundle.test_corpus))


def test_ir_tfidf_all_supervision_types(agnews_small):
    chance = 1.0 / len(agnews_small.label_set)
    for sup in (agnews_small.label_names(), agnews_small.keywords(),
                agnews_small.labeled_documents(5)):
        assert _score(IRWithTfidf(seed=0), agnews_small, sup) > chance


def test_plsa_beats_chance(agnews_small):
    score = _score(PLSATopicModel(seed=0), agnews_small, agnews_small.keywords())
    assert score > 0.5


def test_dataless_runs_from_names_only(agnews_small):
    score = _score(Dataless(seed=0), agnews_small, agnews_small.label_names())
    assert score > 0.4


def test_unec_beats_chance(agnews_small):
    score = _score(UNEC(seed=0), agnews_small, agnews_small.label_names())
    assert score > 0.4


def test_doc2cube_beats_chance(agnews_small):
    score = _score(Doc2Cube(seed=0), agnews_small, agnews_small.keywords())
    assert score > 0.5


def test_word2vec_match(agnews_small):
    score = _score(Word2VecMatch(epochs=8, seed=0), agnews_small,
                   agnews_small.keywords())
    assert score > 0.5


def test_pte_uses_labeled_docs(agnews_small):
    score = _score(PTE(epochs=3, seed=0), agnews_small,
                   agnews_small.labeled_documents(5))
    assert score > 0.4


def test_pcem_em_improves_nb(agnews_small):
    score = _score(PCEM(seed=0), agnews_small, agnews_small.labeled_documents(5))
    assert score > 0.6


def test_bert_simple_match(tiny_plm, agnews_small):
    score = _score(BertSimpleMatch(plm=tiny_plm, seed=0), agnews_small,
                   agnews_small.label_names())
    assert score > 0.5


def test_classkg_iterations_stable(agnews_small):
    score = _score(ClassKG(iterations=2, epochs=12, seed=0), agnews_small,
                   agnews_small.keywords())
    assert score > 0.5


def test_supervised_upper_bounds(agnews_small, tiny_plm):
    names = agnews_small.label_names()
    cnn = _score(SupervisedCNN(epochs=8, seed=0), agnews_small, names)
    han = _score(SupervisedHAN(epochs=8, seed=0), agnews_small, names)
    bert = _score(SupervisedBERT(plm=tiny_plm, seed=0), agnews_small, names)
    assert cnn > 0.75 and han > 0.6 and bert > 0.75


def test_supervised_char_cnn_runs(agnews_small):
    score = _score(SupervisedCharCNN(epochs=3, seed=0), agnews_small,
                   agnews_small.label_names())
    assert score > 0.3


def test_zero_shot_entail(tiny_plm, agnews_small):
    score = _score(ZeroShotEntail(plm=tiny_plm, seed=0), agnews_small,
                   agnews_small.label_names())
    assert score > 0.4


def test_uda_semisupervised(tiny_plm, agnews_small):
    score = _score(UDASemiSupervised(plm=tiny_plm, seed=0), agnews_small,
                   agnews_small.labeled_documents(5))
    assert score > 0.5
