"""Coverage for remaining corners: adapters, views, degenerate inputs."""

import numpy as np
import pytest

from repro.core.types import Corpus, Document, LabelSet


# -- experiments.tables adapter -------------------------------------------------

class _StubSingleLabel:
    """Predicts the first label always, with a fixed proba matrix."""

    def __init__(self, labels):
        self.label_set = LabelSet(labels=tuple(labels))

    def fit(self, corpus, supervision):
        return self

    def predict(self, corpus):
        return [self.label_set.labels[0]] * len(corpus)

    def predict_proba(self, corpus):
        proba = np.zeros((len(corpus), len(self.label_set)))
        proba[:, 0] = 0.7
        proba[:, 1] = 0.3
        return proba


def test_path_as_set_adapter_closure():
    from repro.experiments.tables import _PathAsSet
    from repro.taxonomy.dag import LabelDAG

    dag = LabelDAG(edges=[("top", "leaf_a"), ("top", "leaf_b")],
                   top_level=["top"])
    inner = _StubSingleLabel(["leaf_a", "leaf_b"])
    adapter = _PathAsSet(inner, dag)
    adapter.fit(None, None)
    corpus = Corpus([Document(doc_id="d0", tokens=["w"])])
    predicted = adapter.predict(corpus)
    assert predicted == [("leaf_a", "top")]
    # Single-path methods rank only the labels they model (the leaves);
    # ancestors enter through predict()'s closure, not the ranking.
    ranking = adapter.rank(corpus)[0]
    assert ranking == ["leaf_a", "leaf_b"]


# -- bundle views ----------------------------------------------------------------

def test_coarse_label_set_and_gold(tree_small):
    coarse = tree_small.coarse_label_set()
    assert set(coarse.labels) == set(tree_small.tree.level(1))
    gold = tree_small.coarse_gold(tree_small.test_corpus)
    assert all(g in coarse for g in gold)


def test_coarse_gold_requires_tree(agnews_small):
    with pytest.raises(ValueError):
        agnews_small.coarse_gold(agnews_small.test_corpus)


# -- degenerate vMF ---------------------------------------------------------------

def test_vmf_fit_identical_points_gets_high_kappa():
    from repro.embeddings.vmf import VonMisesFisher

    point = np.zeros(6)
    point[2] = 1.0
    fitted = VonMisesFisher.fit(np.stack([point] * 5))
    assert fitted.kappa >= 1e3
    samples = fitted.sample(5, seed=0)
    assert (samples @ point > 0.99).all()


# -- tf-idf options ----------------------------------------------------------------

def test_tfidf_sublinear_compresses_counts():
    from repro.text.tfidf import TfidfVectorizer

    docs = [["word"] * 10 + ["thing"], ["thing", "word"]]
    plain = TfidfVectorizer(sublinear_tf=False).fit_transform(docs).toarray()
    sub = TfidfVectorizer(sublinear_tf=True).fit_transform(docs).toarray()
    # Relative weight of the repeated word shrinks under sublinear tf.
    ratio_plain = plain[0].max() / plain[0][plain[0] > 0].min()
    ratio_sub = sub[0].max() / sub[0][sub[0] > 0].min()
    assert ratio_sub < ratio_plain


# -- word2vec internals --------------------------------------------------------------

def test_word2vec_rejects_empty_pairs():
    from repro.core.exceptions import VocabularyError
    from repro.embeddings.word2vec import Word2Vec

    with pytest.raises(VocabularyError):
        Word2Vec(epochs=1, seed=0).fit([["solo"]])


# -- hierarchical dataless fallback ---------------------------------------------------

def test_hier_dataless_uniform_fallback(tree_small):
    """Documents that descend to a non-leaf node get uniform fallback."""
    from repro.baselines import HierDataless

    clf = HierDataless(tree=tree_small.tree, seed=0)
    clf.fit(tree_small.train_corpus, tree_small.label_names())
    proba = clf.predict_proba(tree_small.test_corpus[:10])
    assert np.allclose(proba.sum(axis=1), 1.0)


# -- reporting with mixed cell types ----------------------------------------------------

def test_format_table_mixed_types():
    from repro.evaluation.reporting import format_table

    rows = [{"Method": "A", "Score": 0.5, "Note": "-"},
            {"Method": "B", "Score": "-", "Note": 3}]
    text = format_table(rows)
    assert "0.500" in text and "-" in text and "3" in text


# -- figures: degenerate coordinates ------------------------------------------------------

def test_render_pca_handles_constant_coords():
    from repro.experiments.figures import render_pca_ascii

    coords = np.zeros((4, 2))
    art = render_pca_ascii(coords, ["a", "a", "b", "b"], width=10, height=4)
    assert "A=a" in art


# -- provider cache isolation ----------------------------------------------------------------

def test_clear_cache_forces_rebuild(agnews_small):
    from repro.plm import provider
    from repro.plm.config import PLMConfig

    # Snapshot the session caches: other tests share them via fixtures.
    snapshots = [
        (provider._PLM_CACHE, dict(provider._PLM_CACHE)),
        (provider._ELECTRA_CACHE, dict(provider._ELECTRA_CACHE)),
        (provider._NLI_CACHE, dict(provider._NLI_CACHE)),
    ]
    try:
        cfg = PLMConfig(dim=8, n_layers=1, n_heads=2, ff_hidden=16, max_len=12,
                        mlm_steps=3, batch_size=4, pretrain_docs=30)
        first = provider.get_pretrained_lm(config=cfg, seed=5)
        assert provider.get_pretrained_lm(config=cfg, seed=5) is first
        provider.clear_cache()
        assert provider.get_pretrained_lm(config=cfg, seed=5) is not first
    finally:
        for cache, saved in snapshots:
            cache.clear()
            cache.update(saved)


# -- self-training loop stop criterion ----------------------------------------------------------

def test_self_training_stops_when_stable(rng):
    from repro.classifiers import BagOfEmbeddingsClassifier, SelfTrainingLoop
    from repro.text.vocabulary import Vocabulary

    docs = [["red"] * 5 if i % 2 == 0 else ["blue"] * 5 for i in range(40)]
    targets = np.array([i % 2 for i in range(40)])
    vocab = Vocabulary.build(docs)
    clf = BagOfEmbeddingsClassifier(vocab, 2, dim=8, seed=0)
    clf.fit(docs, targets, epochs=6)
    loop = SelfTrainingLoop(max_iterations=6, tolerance=0.05)
    loop.run(clf, docs)
    # Converged task: should stop well before the iteration cap.
    assert len(loop.history) < 6
    assert loop.history[-1] <= 0.05
