"""Observability layer: spans, counters, worker merge, report, CLI.

The row runners are module-level so they pickle into spawn workers —
the worker-side tracer records their spans/counters and the parent
merges the exported payloads (the cross-process half of the tracer
contract).
"""

import json

import pytest

from repro import obs
from repro.experiments import cli
from repro.experiments.engine import RowSpec, run_specs
from repro.obs import report
from repro.obs.tracer import NULL_SPAN, Tracer

pytestmark = pytest.mark.obs


@pytest.fixture(autouse=True)
def _clean_tracer():
    """Never leak an enabled tracer into (or out of) a test."""
    obs.disable()
    yield
    obs.disable()


def _counting_row(row_seed, weight=1):
    obs.count("test.work", weight)
    with obs.span("compute"):
        pass
    return {"score": row_seed % 10}


def _specs(n):
    return [RowSpec(table="t", name=f"row{i}", runner=_counting_row,
                    kwargs={"weight": i + 1}) for i in range(n)]


def _span_events(tracer):
    return [e for e in tracer.events() if e["type"] == "span"]


def _stable_events(tracer):
    """Trace events with the timing fields stripped (determinism oracle)."""
    out = []
    for event in tracer.events():
        out.append({k: v for k, v in event.items() if k not in ("t0", "dur")})
    return out


# ---------------------------------------------------------------------------
# Core tracer behaviour
# ---------------------------------------------------------------------------

def test_span_nesting_paths_and_completion_order():
    obs.enable("unit")
    with obs.span("outer"):
        with obs.span("mid", size=3):
            with obs.span("leaf"):
                pass
        with obs.span("leaf"):
            pass
    tracer = obs.disable()
    events = _span_events(tracer)
    # Completion order: children close before their parents.
    assert [e["path"] for e in events] == [
        "outer/mid/leaf", "outer/mid", "outer/leaf", "outer",
    ]
    assert events[1]["attrs"] == {"size": 3}
    assert all(e["dur"] >= 0 and e["t0"] >= 0 for e in events)


def test_counters_accumulate_and_finalize_sorted():
    obs.enable("unit")
    obs.count("b", 2)
    obs.count("a")
    obs.count("b", 0.5)
    assert obs.counter("b") == 2.5
    tracer = obs.disable()
    counters = [e for e in tracer.events() if e["type"] == "counters"]
    assert counters == [{"type": "counters", "values": {"a": 1, "b": 2.5}}]
    assert tracer.events()[-1]["type"] == "end"


def test_disabled_hooks_are_noops():
    assert not obs.enabled()
    assert obs.span("anything", k=1) is NULL_SPAN
    assert obs.count("anything") is None
    assert obs.counter("anything") == 0
    assert obs.tracer() is None
    assert obs.disable() is None  # idempotent


def test_nested_enable_is_an_error():
    obs.enable("first")
    with pytest.raises(RuntimeError, match="first"):
        obs.enable("second")


def test_export_absorb_reroots_and_sums():
    child = Tracer("row:t/r0")
    with child.span("row:t/r0", {}):
        child.count("work", 2)
    parent = Tracer("run")
    parent.count("work", 1)
    with parent.span("table", {}) as _:
        parent.absorb(child.export())
    events = [e for e in parent.export()["events"]]
    assert events[0]["path"] == "table/row:t/r0"
    assert events[0]["remote"] is True
    assert parent.counters["work"] == 3


def test_gauges_keep_the_peak_and_merge_by_max():
    obs.enable("gauges")
    obs.gauge("serve.queue_depth", 3)
    obs.gauge("serve.queue_depth", 7)
    obs.gauge("serve.queue_depth", 2)  # below the peak: ignored
    assert obs.gauge_value("serve.queue_depth") == 7
    assert obs.gauge_value("unset") == 0

    tracer = obs.disable()
    assert tracer.gauges == {"serve.queue_depth": 7}
    # Gauges fold into the counters event so the JSONL schema stays v1.
    counters = [e for e in tracer.events() if e["type"] == "counters"]
    assert counters[0]["values"]["serve.queue_depth"] == 7

    # Disabled: all gauge hooks are no-ops.
    assert obs.gauge("anything", 1) is None
    assert obs.gauge_value("anything") == 0


def test_absorb_merges_worker_gauges_max_wise():
    parent = Tracer("pool")
    parent.gauge("pool.replica_busy", 2)
    for peak in (1, 4, 3):
        child = Tracer("replica")
        child.gauge("pool.replica_busy", peak)
        parent.absorb(child.export(), prefix="pool/replica")
    assert parent.gauges["pool.replica_busy"] == 4  # max, never a sum


def test_trace_footer_lists_gauge_peaks(tmp_path):
    obs.enable("footer")
    obs.count("serve.requests", 5)
    tracer = obs.disable()
    path = tracer.write(tmp_path / "t.jsonl")
    assert obs.trace_footer(tracer, path) == f"[trace] {path}"

    obs.enable("footer2")
    obs.gauge("serve.queue_depth", 9)
    obs.gauge("pool.replica_busy", 2)
    tracer = obs.disable()
    path = tracer.write(tmp_path / "t2.jsonl")
    assert obs.trace_footer(tracer, path) == (
        f"[trace] {path} [gauges pool.replica_busy=2 serve.queue_depth=9]")


# ---------------------------------------------------------------------------
# JSONL round-trip and report
# ---------------------------------------------------------------------------

def test_jsonl_round_trip(tmp_path):
    obs.enable("rt")
    with obs.span("phase"):
        obs.count("n", 7)
    path = obs.disable().write(tmp_path / "t.jsonl")
    events = report.load_events(path)
    assert events[0] == {"type": "begin", "schema": 1, "name": "rt"}
    assert events[-1]["type"] == "end"
    assert report.counters(events) == {"n": 7}
    # Every line is a self-contained JSON object (greppable contract).
    for line in path.read_text().splitlines():
        assert isinstance(json.loads(line), dict)


def test_report_tree_rolls_up_slashed_span_names():
    obs.enable("tree")
    with obs.span("root"):
        with obs.span("row:t/a"):
            pass
        with obs.span("row:t/b"):
            pass
    tracer = obs.disable()
    tree = report.build_tree(tracer.events())
    row = tree.children["root"].children["row:t"]
    # The virtual "row:t" level inherits its children's totals.
    assert set(row.children) == {"a", "b"}
    assert row.calls == 2
    assert row.seconds == pytest.approx(
        row.children["a"].seconds + row.children["b"].seconds)
    rendered = report.render_tree(tracer.events())
    assert "row:t" in rendered and "x2" in rendered


# ---------------------------------------------------------------------------
# Worker-boundary merge (the parallel engine contract)
# ---------------------------------------------------------------------------

def test_counters_and_spans_merge_across_spawn_workers():
    obs.enable("pool")
    rows = run_specs(_specs(4), table_seed=0, jobs=2, use_cache=False)
    tracer = obs.disable()
    assert len(rows) == 4
    # Counters merged by summation: weights 1+2+3+4.
    assert tracer.counters["test.work"] == 10
    assert tracer.counters["rows.executed"] == 4
    remote = [e for e in _span_events(tracer) if e.get("remote")]
    row_spans = [e for e in remote if e["name"].startswith("row:t/")]
    assert len(row_spans) == 4
    # Worker-side nesting survives the pipe: compute sits under its row.
    compute = [e for e in remote if e["name"] == "compute"]
    assert {e["path"] for e in compute} == {
        f"row:t/row{i}/compute" for i in range(4)
    }


def test_parallel_trace_content_is_deterministic():
    runs = []
    for _ in range(2):
        obs.enable("det")
        run_specs(_specs(5), table_seed=1, jobs=2, use_cache=False)
        runs.append(_stable_events(obs.disable()))
    assert runs[0] == runs[1]


def test_serial_rows_record_local_spans():
    obs.enable("serial")
    run_specs(_specs(2), table_seed=0, jobs=1, use_cache=False)
    tracer = obs.disable()
    spans = _span_events(tracer)
    assert [e["name"] for e in spans if e["name"].startswith("row:")] == [
        "row:t/row0", "row:t/row1",
    ]
    assert not any(e.get("remote") for e in spans)


def test_memo_hits_count_without_rerunning(tmp_path):
    specs = _specs(3)
    run_specs(specs, table_seed=0, jobs=1, use_cache=True,
              cache_dir=tmp_path)
    obs.enable("memo")
    run_specs(specs, table_seed=0, jobs=1, use_cache=True,
              cache_dir=tmp_path)
    tracer = obs.disable()
    assert tracer.counters["row_memo.hits"] == 3
    assert tracer.counters.get("rows.executed", 0) == 0


# ---------------------------------------------------------------------------
# CLI wiring
# ---------------------------------------------------------------------------

def test_coverage_accounts_for_wall_clock():
    import time

    obs.enable("cov")
    with obs.span("work"):
        time.sleep(0.05)
    tracer = obs.disable()
    # The root span must account for >=95% of the traced wall-clock —
    # the enable/finalize overhead outside it is microseconds.
    assert report.coverage(tracer.events()) >= 0.95


def test_cli_trace_flag_writes_trace(tmp_path, capsys):
    assert cli.main(["summary", "--trace", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    path = tmp_path / "trace_summary.jsonl"
    assert f"[trace] {path}" in out
    events = report.load_events(path)
    assert events[0]["name"] == "cli:summary"
    assert [e["name"] for e in events if e.get("type") == "span"] == [
        "cli:summary",
    ]
    assert not obs.enabled()  # CLI cleans up its tracer


def test_cli_trace_env_var(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_TRACE", str(tmp_path / "envtrace"))
    assert cli.main(["summary"]) == 0
    capsys.readouterr()
    assert (tmp_path / "envtrace" / "trace_summary.jsonl").exists()
