"""DAG pipeline: determinism, failure isolation, --select, scoped digests.

The acceptance contract of the incremental pipeline: a ``--jobs N`` DAG
run is bit-identical to a cold serial run, a crashed node poisons only
its transitive dependents, ``--select`` recomputes exactly the named
subgraph, a fully-warm run of two corpus-sharing tables executes zero
nodes, and the scoped source digests re-address exactly the touched
method's subgraph. Runners are module-level on purpose — nodes must
pickle into spawn workers, the same constraint the engine imposes.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.experiments import dag, engine, scheduler
from repro.experiments.dag import ArtifactGraph, DagNode, TableRequest
from repro.experiments.scheduler import run_graph, run_requests

pytestmark = pytest.mark.harness


def _corpus(seed, offset=0):
    return {"docs": 40 + offset + seed % 7}


def _metric_row(seed, factor=1):
    return {"score": (seed * 31 + factor) % 997 / 997.0}


def _raising_row(seed):
    raise ValueError("poisoned")


def _exiting_row(seed):
    os._exit(3)


def _demo_request(table="t1", rows=3):
    """A table whose rows all hang off one shared corpus node."""
    corpus = DagNode(kind="corpus", name="corpus:demo", runner=_corpus,
                     kwargs={"offset": 1}, seed=11)
    nodes, row_names = [corpus], []
    for i in range(rows):
        name = f"{table}.r{i}"
        nodes.append(DagNode(kind="row", name=name, runner=_metric_row,
                             kwargs={"factor": i + 1}, deps=("corpus:demo",),
                             table=table, row=f"r{i}",
                             static={"Method": f"m{i}"},
                             seed=engine.derive_row_seed(0, f"{table}.r{i}")))
        row_names.append(name)
    return TableRequest(table=table, nodes=nodes, row_names=row_names)


def _strip(rows):
    return [{k: v for k, v in row.items() if k != "seconds"} for row in rows]


# ---------------------------------------------------------------------------
# Determinism: parallel == serial, bit for bit
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("jobs", [1, 2, 4])
def test_parallel_run_is_bit_identical_to_serial(jobs):
    serial = run_requests([_demo_request()], jobs=1, use_cache=False)
    result = run_requests([_demo_request()], jobs=jobs, use_cache=False)
    assert _strip(result["t1"]) == _strip(serial["t1"])
    assert all("seconds" in row for row in result["t1"])
    report = scheduler.take_last_dag_report()
    assert report.jobs == jobs
    assert report.executed == 4 and report.errors == 0


def test_node_seeds_match_the_rowspec_shim():
    # The row node carries derive_row_seed(table_seed, node name) — the
    # identical seed the legacy RowSpec path derives, which is what makes
    # DAG output bit-identical to the serial harness.
    request = _demo_request()
    for node in request.nodes:
        if node.kind == "row":
            assert node.seed == engine.derive_row_seed(0, node.name)


# ---------------------------------------------------------------------------
# Failure isolation
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("jobs", [1, 2])
def test_failed_node_poisons_only_its_dependents(jobs):
    graph = ArtifactGraph()
    graph.add(DagNode(kind="corpus", name="ok_root", runner=_corpus))
    graph.add(DagNode(kind="corpus", name="bad_root", runner=_raising_row))
    graph.add(DagNode(kind="row", name="victim", runner=_metric_row,
                      deps=("bad_root",)))
    graph.add(DagNode(kind="row", name="bystander", runner=_metric_row,
                      deps=("ok_root",)))
    results = run_graph(graph, jobs=jobs, use_cache=False)
    statuses = scheduler.take_last_dag_report().statuses
    assert statuses["bad_root"] == "error"
    assert statuses["victim"] == "upstream-error"
    assert statuses["ok_root"] == "executed"
    assert statuses["bystander"] == "executed"
    assert results["bad_root"]["metrics"]["error"] == "ValueError: poisoned"
    assert results["victim"]["metrics"]["error"] == "upstream bad_root failed"
    assert "score" in results["bystander"]["metrics"]


def test_worker_crash_isolates_like_an_error():
    graph = ArtifactGraph()
    graph.add(DagNode(kind="corpus", name="dies", runner=_exiting_row))
    graph.add(DagNode(kind="row", name="victim", runner=_metric_row,
                      deps=("dies",)))
    graph.add(DagNode(kind="row", name="bystander", runner=_metric_row))
    results = run_graph(graph, jobs=2, use_cache=False)
    statuses = scheduler.take_last_dag_report().statuses
    assert results["dies"]["metrics"]["error"] == "worker crashed"
    assert statuses["victim"] == "upstream-error"
    assert "score" in results["bystander"]["metrics"]


def test_error_artifacts_are_never_stored(tmp_path):
    graph = ArtifactGraph()
    graph.add(DagNode(kind="corpus", name="bad_root", runner=_raising_row))
    run_graph(graph, jobs=1, use_cache=True, cache_dir=tmp_path)
    assert scheduler.take_last_dag_report().statuses["bad_root"] == "error"
    # A fixed upstream must recompute, so the failure is not memoized.
    assert not list(scheduler.dag_store_dir(tmp_path).glob("*.json"))


# ---------------------------------------------------------------------------
# Warm reuse and --select
# ---------------------------------------------------------------------------

def test_warm_shared_tables_execute_zero_nodes(tmp_path):
    requests = [_demo_request("t1"), _demo_request("t2")]
    cold = run_requests(requests, jobs=1, use_cache=True, cache_dir=tmp_path)
    report = scheduler.take_last_dag_report()
    assert report.merged == 1  # corpus:demo declared by both tables
    assert report.executed == report.nodes == 7

    engine.clear_memo_memory()  # reuse must come from the disk tier
    warm = run_requests([_demo_request("t1"), _demo_request("t2")],
                        jobs=4, use_cache=True, cache_dir=tmp_path)
    report = scheduler.take_last_dag_report()
    assert report.executed == 0 and report.reused == 7
    assert _strip(warm["t1"]) == _strip(cold["t1"])
    assert _strip(warm["t2"]) == _strip(cold["t2"])


def test_select_recomputes_exactly_the_named_subgraph(tmp_path):
    run_requests([_demo_request()], jobs=1, use_cache=True,
                 cache_dir=tmp_path)
    scheduler.take_last_dag_report()

    run_requests([_demo_request()], jobs=1, use_cache=True,
                 cache_dir=tmp_path, select=["t1.r1"])
    statuses = scheduler.take_last_dag_report().statuses
    assert statuses == {"corpus:demo": "reused", "t1.r0": "reused",
                        "t1.r1": "executed", "t1.r2": "reused"}

    # +node pulls ancestors into the forced set; node+ its dependents.
    run_requests([_demo_request()], jobs=1, use_cache=True,
                 cache_dir=tmp_path, select=["+t1.r1"])
    statuses = scheduler.take_last_dag_report().statuses
    assert statuses["corpus:demo"] == "executed"
    assert statuses["t1.r1"] == "executed" and statuses["t1.r0"] == "reused"

    run_requests([_demo_request()], jobs=1, use_cache=True,
                 cache_dir=tmp_path, select=["corpus:demo+"])
    report = scheduler.take_last_dag_report()
    assert report.executed == 4 and report.reused == 0


def test_select_unknown_node_names_the_graph():
    graph = ArtifactGraph()
    graph.add(DagNode(kind="corpus", name="only", runner=_corpus))
    with pytest.raises(ValueError, match="unknown DAG node 'nope'"):
        graph.select(["nope"])


# ---------------------------------------------------------------------------
# Graph construction and content addressing
# ---------------------------------------------------------------------------

def test_identical_declarations_merge_and_conflicts_raise():
    graph = ArtifactGraph()
    graph.add(DagNode(kind="corpus", name="c", runner=_corpus,
                      kwargs={"offset": 1}))
    graph.add(DagNode(kind="corpus", name="c", runner=_corpus,
                      kwargs={"offset": 1}))
    assert graph.merged == 1 and len(graph.nodes) == 1
    with pytest.raises(ValueError, match="conflicting declarations"):
        graph.add(DagNode(kind="corpus", name="c", runner=_corpus,
                          kwargs={"offset": 2}))
    with pytest.raises(ValueError, match="undeclared node"):
        graph.add(DagNode(kind="row", name="r", runner=_metric_row,
                          deps=("ghost",)))


def test_digests_fold_kwargs_seed_and_upstream_changes():
    def build(offset=1, seed=0, factor=1):
        graph = ArtifactGraph()
        graph.add(DagNode(kind="corpus", name="c", runner=_corpus,
                          kwargs={"offset": offset}))
        graph.add(DagNode(kind="row", name="r", runner=_metric_row,
                          kwargs={"factor": factor}, deps=("c",), seed=seed))
        return graph.digests()

    base = build()
    assert build() == base  # pure function of declared inputs
    assert build(factor=2)["r"] != base["r"]
    assert build(seed=1)["r"] != base["r"]
    changed = build(offset=9)
    assert changed["c"] != base["c"]
    assert changed["r"] != base["r"]  # upstream change re-addresses the row


# ---------------------------------------------------------------------------
# Scoped source digests
# ---------------------------------------------------------------------------

@pytest.fixture()
def fake_tree(tmp_path):
    files = {
        "core/util.py": "x = 1\n",
        "methods/foo/model.py": "foo = 1\n",
        "methods/bar/model.py": "bar = 1\n",
        "methods/westclass/model.py": "west = 1\n",
        "methods/weshclass/model.py": "wesh = 1\n",
        "methods/conwea/model.py": "conwea = 1\n",
    }
    for rel, text in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
    dag.set_source_root(tmp_path)
    try:
        yield tmp_path
    finally:
        dag.set_source_root(None)


def test_touching_a_method_unit_moves_only_that_unit(fake_tree):
    before = dict(dag.unit_digests())
    (fake_tree / "methods/foo/model.py").write_text("foo = 2\n")
    after = dag.unit_digests(refresh=True)
    assert after["methods/foo"] != before["methods/foo"]
    assert after["methods/bar"] == before["methods/bar"]
    assert after["shared"] == before["shared"]


def test_touching_shared_code_moves_every_scope(fake_tree):
    before = dict(dag.unit_digests())
    comp_foo = dag.source_component(("methods/foo",))
    (fake_tree / "core/util.py").write_text("x = 2\n")
    after = dag.unit_digests(refresh=True)
    assert after["shared"] != before["shared"]
    assert after["methods/foo"] == before["methods/foo"]
    # Every node carries the shared digest, so its component moves too.
    assert dag.source_component(("methods/foo",)) != comp_foo


def test_method_unit_deps_fold_transitively(fake_tree):
    before_wesh = dag.source_component(("methods/weshclass",))
    (fake_tree / "methods/westclass/model.py").write_text("west = 2\n")
    dag.unit_digests(refresh=True)
    # WeSHClass reuses WeSTClass internals (METHOD_UNIT_DEPS), so its
    # effective digest must move with its dependency.
    assert dag.source_component(("methods/weshclass",)) != before_wesh


def test_shared_method_units_fold_into_shared(fake_tree):
    before = dict(dag.unit_digests())
    (fake_tree / "methods/conwea/model.py").write_text("conwea = 2\n")
    after = dag.unit_digests(refresh=True)
    assert after["shared"] != before["shared"]  # conwea is baseline-shared


def test_scoped_node_digests_invalidate_selectively(fake_tree):
    def digests():
        graph = ArtifactGraph()
        graph.add(DagNode(kind="row", name="foo_row", runner=_metric_row,
                          scope=("methods/foo",)))
        graph.add(DagNode(kind="row", name="bar_row", runner=_metric_row,
                          scope=("methods/bar",)))
        return graph.digests()

    before = digests()
    (fake_tree / "methods/foo/model.py").write_text("foo = 3\n")
    dag.unit_digests(refresh=True)
    after = digests()
    assert after["foo_row"] != before["foo_row"]
    assert after["bar_row"] == before["bar_row"]


def test_method_unit_and_scope_for():
    class Shared:
        pass

    class Foo:
        pass

    class Conwea:
        pass

    Shared.__module__ = "repro.core.util"
    Foo.__module__ = "repro.methods.foo.model"
    Conwea.__module__ = "repro.methods.conwea.model"
    assert dag.method_unit(Shared) is None
    assert dag.method_unit(Foo) == "methods/foo"
    # Units already folded into the shared digest are dropped from scopes.
    assert dag.scope_for(Foo, Shared, Conwea) == ("methods/foo",)


def test_declared_unit_tables_match_the_import_graph():
    """Staleness check: the hand-maintained scoping tables vs the tree.

    Every submodule-level ``repro.methods.<pkg>`` reference in the real
    source must be declared — inside ``methods/`` via METHOD_UNIT_DEPS,
    elsewhere via SHARED_METHOD_UNITS — and every declaration must still
    correspond to a real reference (no dead entries).
    """
    references = dag.scan_method_references(dag._DEFAULT_SOURCE_ROOT)
    declared_shared = set(dag.SHARED_METHOD_UNITS)
    for unit, referenced in references.items():
        if unit == "shared":
            missing = referenced - declared_shared
            assert not missing, (
                f"shared code references {sorted(missing)}: add them to "
                "SHARED_METHOD_UNITS")
        else:
            declared = set(dag.METHOD_UNIT_DEPS.get(unit, ()))
            missing = referenced - declared
            assert not missing, (
                f"{unit} references {sorted(missing)}: add them to "
                "METHOD_UNIT_DEPS")
    for unit, deps in dag.METHOD_UNIT_DEPS.items():
        assert set(deps) <= references.get(unit, set()), (
            f"METHOD_UNIT_DEPS[{unit!r}] lists units the source no longer "
            "references")
    assert declared_shared <= references.get("shared", set()), (
        "SHARED_METHOD_UNITS lists units shared code no longer references")


# ---------------------------------------------------------------------------
# Store pruning
# ---------------------------------------------------------------------------

def test_prune_sweeps_dead_tree_entries(tmp_path):
    memo = engine.RowMemo(tmp_path)
    memo.put("live", {"metrics": {"A": 1.0}, "seconds": 0.1})
    (tmp_path / "stale.json").write_text(json.dumps(
        {"metrics": {"A": 2.0}, "seconds": 0.1, "tree": "dead-digest"}))
    (tmp_path / "unstamped.json").write_text(json.dumps(
        {"metrics": {}, "seconds": 0.0}))
    (tmp_path / "broken.json").write_text("{not json")

    assert memo.get("stale") is not None  # loads into the memory tier
    kept, removed = memo.prune()
    assert (kept, removed) == (1, 3)
    assert memo.get("stale") is None  # memory tier was popped too
    engine.clear_memo_memory()
    assert memo.get("live") is not None  # current-tree entry survives


def test_prune_keep_keys_pin_entries_across_trees(tmp_path):
    memo = engine.RowMemo(tmp_path)
    (tmp_path / "pinned.json").write_text(json.dumps(
        {"metrics": {}, "seconds": 0.0, "tree": "dead-digest"}))
    (tmp_path / "doomed.json").write_text(json.dumps(
        {"metrics": {}, "seconds": 0.0, "tree": "dead-digest"}))
    kept, removed = memo.prune(keep_keys={"pinned"})
    assert (kept, removed) == (1, 1)
    assert (tmp_path / "pinned.json").exists()
    assert not (tmp_path / "doomed.json").exists()


def test_cache_prune_cli_reports_both_stores(tmp_path, monkeypatch, capsys):
    from repro.experiments import cli

    monkeypatch.setenv("REPRO_ROW_CACHE_DIR", str(tmp_path))
    engine.RowMemo(tmp_path).put("live", {"metrics": {}, "seconds": 0.0})
    (tmp_path / "stale.json").write_text(json.dumps(
        {"metrics": {}, "seconds": 0.0, "tree": "dead-digest"}))
    dag_dir = scheduler.dag_store_dir(tmp_path)
    dag_dir.mkdir(parents=True)
    (dag_dir / "orphan.json").write_text(json.dumps(
        {"metrics": {}, "seconds": 0.0, "tree": "dead-digest"}))

    assert cli.main(["cache-prune"]) == 0
    out = capsys.readouterr().out
    assert "rows: kept 1, removed 1" in out
    assert "dag:  kept 0, removed 1" in out
