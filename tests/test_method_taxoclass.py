"""Tests for TaxoClass and top-down exploration."""

import numpy as np
import pytest

from repro.evaluation.ranking import example_f1, precision_at_k
from repro.methods.taxoclass import TaxoClass, top_down_search
from repro.methods.taxoclass.exploration import candidate_matrix
from repro.taxonomy.dag import LabelDAG


@pytest.fixture()
def toy_dag():
    return LabelDAG(
        edges=[("a", "a1"), ("a", "a2"), ("b", "b1"), ("b", "b2"),
               ("a1", "leaf")],
        top_level=["a", "b"],
    )


def test_top_down_search_follows_relevance(toy_dag):
    relevance = {"a": 0.9, "b": 0.1, "a1": 0.8, "a2": 0.2, "b1": 0.5,
                 "b2": 0.4, "leaf": 0.7}
    candidates = top_down_search(toy_dag, relevance, beam=1, max_candidates=5)
    assert candidates[0] == "a"
    assert "leaf" in candidates
    assert "b2" not in candidates  # pruned with its parent


def test_top_down_search_respects_cap(toy_dag):
    relevance = {n: 0.5 for n in toy_dag.nodes}
    candidates = top_down_search(toy_dag, relevance, beam=2, max_candidates=3)
    assert len(candidates) <= 3


def test_candidate_matrix_shapes(toy_dag):
    labels = toy_dag.nodes
    relevance = np.random.default_rng(0).random((4, len(labels)))
    out = candidate_matrix(toy_dag, relevance, labels, beam=2)
    assert len(out) == 4
    assert all(isinstance(c, list) for c in out)


def test_taxoclass_end_to_end(dag_small, tiny_plm):
    # Re-train the relevance head on the DAG bundle's PLM is costly; the
    # tiny shared PLM covers the agnews vocabulary only, so build on the
    # DAG corpus directly with a tiny config.
    from repro.plm.config import tiny_config
    from repro.plm.provider import get_pretrained_lm

    plm = get_pretrained_lm(target_corpus=dag_small.train_corpus,
                            config=tiny_config(), seed=0)
    clf = TaxoClass(dag=dag_small.dag, plm=plm, rounds=1, seed=0)
    clf.fit(dag_small.train_corpus, dag_small.label_names())
    gold = [set(d.labels) for d in dag_small.test_corpus]
    predicted = clf.predict(dag_small.test_corpus)
    ranking = clf.rank(dag_small.test_corpus)
    chance_p1 = np.mean([len(g) for g in gold]) / len(dag_small.label_set)
    assert precision_at_k(gold, ranking, 1) > chance_p1
    assert example_f1(gold, predicted) > 0.1
    scores = clf.score(dag_small.test_corpus)
    assert scores.shape == (len(dag_small.test_corpus),
                            len(dag_small.label_set))
    assert ((scores >= 0) & (scores <= 1)).all()


def test_taxoclass_rejects_keywords(dag_small):
    from repro.core.exceptions import SupervisionError

    clf = TaxoClass(dag=dag_small.dag, seed=0)
    with pytest.raises(SupervisionError):
        clf.fit(dag_small.train_corpus, dag_small.keywords())
