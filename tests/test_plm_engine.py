"""Equivalence and unit tests for the PLM inference engine.

The engine (no-grad eval, length-bucketed batching, encode cache) must be
invisible numerically: every entry point returns the same values as the
naive fixed-chunk, graph-recording path, including on degenerate inputs
(empty documents, all-OOV documents, documents longer than ``max_len``,
batches of one).
"""

import numpy as np
import pytest

from repro.core.enc_cache import EncodeCache, doc_key
from repro.nn.functional import l2_normalize
from repro.nn.tensor import Tensor, inference_mode, is_grad_enabled
from repro.plm.config import PLMConfig
from repro.plm.encoder import TransformerEncoder, pad_batch
from repro.plm.engine import EngineConfig, plan_batches
from repro.plm.model import PretrainedLM
from repro.text.vocabulary import MASK, Vocabulary

pytestmark = pytest.mark.engine

NAIVE = EngineConfig(bucket=False, inference=False, cache=False)


@pytest.fixture(scope="module")
def shared_encoder():
    rng = np.random.default_rng(7)
    vocab = Vocabulary.build([[f"w{i}" for i in range(60)]] * 3)
    config = PLMConfig(dim=16, n_layers=2, n_heads=2, ff_hidden=32, max_len=12)
    return TransformerEncoder(vocab, config, rng)


@pytest.fixture(scope="module")
def naive_plm(shared_encoder):
    return PretrainedLM(shared_encoder, engine_config=NAIVE)


@pytest.fixture()
def fast_plm(shared_encoder):
    return PretrainedLM(shared_encoder, enc_cache=EncodeCache(),
                        engine_config=EngineConfig())


@pytest.fixture(scope="module")
def mixed_docs():
    """Mixed lengths plus every edge case the engine must survive."""
    docs = [[f"w{(i * 7 + j) % 60}" for j in range(1 + (i * 3) % 14)]
            for i in range(30)]
    docs[3] = []                                 # empty document
    docs[5] = ["zzz-oov"] * 4                    # fully out-of-vocabulary
    docs[7] = [f"w{j % 60}" for j in range(40)]  # longer than max_len
    return docs


def seed_encode_tokens(plm, token_lists):
    """The seed implementation, verbatim, as the ground truth."""
    vocab = plm.vocabulary
    sequences = [vocab.encode(t)[: plm.max_len] for t in token_lists]
    out = []
    for start in range(0, len(sequences), plm.batch_size):
        chunk = sequences[start : start + plm.batch_size]
        if not chunk:
            continue
        safe = [s if len(s) else np.array([vocab.unk_id]) for s in chunk]
        ids, mask = pad_batch(safe, vocab.pad_id, plm.max_len)
        hidden = plm.encoder(ids, pad_mask=mask).data
        for row, seq in zip(hidden, safe):
            out.append(row[: len(seq)].copy())
    return out


def seed_doc_embeddings(plm, token_lists, normalize=True):
    """The seed implementation (with its double vocab.encode), verbatim."""
    vocab = plm.vocabulary
    encoded = seed_encode_tokens(plm, token_lists)
    rows = []
    for tokens, hidden in zip(token_lists, encoded):
        ids = vocab.encode(list(tokens))[: hidden.shape[0]]
        keep = ids != vocab.unk_id
        rows.append(hidden[keep].mean(axis=0) if keep.any()
                    else hidden.mean(axis=0))
    out = np.stack(rows)
    return l2_normalize(out) if normalize else out


# -- inference_mode ----------------------------------------------------------
def test_inference_mode_builds_no_graph():
    w = Tensor(np.ones((3, 3)), requires_grad=True)
    x = Tensor(np.arange(9.0).reshape(3, 3))
    with inference_mode():
        assert not is_grad_enabled()
        out = ((x @ w).gelu() + w).sum()
        assert not out.requires_grad
        assert out._parents == () and out._backward is None
    assert is_grad_enabled()


def test_inference_mode_is_reentrant_and_restores():
    with inference_mode():
        with inference_mode():
            assert not is_grad_enabled()
        assert not is_grad_enabled()
    assert is_grad_enabled()


def test_inference_mode_values_match_grad_mode():
    w = Tensor(np.linspace(-1, 1, 9).reshape(3, 3), requires_grad=True)
    x = Tensor(np.arange(9.0).reshape(3, 3))
    tracked = ((x @ w).tanh() * 2.0).sum(axis=0).data
    with inference_mode():
        untracked = ((x @ w).tanh() * 2.0).sum(axis=0).data
    np.testing.assert_array_equal(tracked, untracked)


def test_params_still_trainable_after_inference_mode():
    w = Tensor(np.ones(4), requires_grad=True)
    with inference_mode():
        (w * 2.0).sum()
    loss = (w * 3.0).sum()
    loss.backward()
    np.testing.assert_allclose(w.grad, 3.0)


# -- batch planning ----------------------------------------------------------
def test_plan_batches_unbucketed_is_fixed_chunks():
    batches = plan_batches([5, 1, 3, 2, 4],
                           EngineConfig(batch_size=2, bucket=False), 12)
    assert [list(b) for b in batches] == [[0, 1], [2, 3], [4]]


def test_plan_batches_sorts_by_length_and_covers_all():
    lengths = [9, 1, 7, 2, 8, 3]
    batches = plan_batches(lengths, EngineConfig(batch_size=2), 12)
    flat = [i for batch in batches for i in batch]
    assert sorted(flat) == list(range(6))
    seen_lengths = [lengths[i] for i in flat]
    assert seen_lengths == sorted(seen_lengths)


def test_plan_batches_token_budget_grows_short_batches():
    # 8 docs of length 2 with budget 12 tokens -> batches of 6 docs, not 3.
    config = EngineConfig(batch_size=3, token_budget=12)
    batches = plan_batches([2] * 8, config, 12)
    assert max(len(b) for b in batches) > 3
    for batch in batches:
        assert len(batch) * 2 <= 12


def test_plan_batches_empty_input():
    assert plan_batches([], EngineConfig(), 12) == []


# -- encode equivalence ------------------------------------------------------
def test_encode_tokens_matches_seed_reference(naive_plm, fast_plm, mixed_docs):
    reference = seed_encode_tokens(naive_plm, mixed_docs)
    for plm in (naive_plm, fast_plm):
        out = plm.encode_tokens(mixed_docs)
        assert len(out) == len(reference)
        for got, want in zip(out, reference):
            assert got.shape == want.shape
            np.testing.assert_allclose(got, want, atol=1e-9)


def test_doc_embeddings_matches_seed_reference(naive_plm, fast_plm, mixed_docs):
    for normalize in (True, False):
        reference = seed_doc_embeddings(naive_plm, mixed_docs, normalize)
        for plm in (naive_plm, fast_plm):
            got = plm.doc_embeddings(mixed_docs, normalize=normalize)
            np.testing.assert_allclose(got, reference, atol=1e-9)


def test_encode_batch_of_one(naive_plm, fast_plm):
    doc = [["w1", "w2", "w3"]]
    np.testing.assert_allclose(naive_plm.encode_tokens(doc)[0],
                               fast_plm.encode_tokens(doc)[0], atol=1e-9)
    np.testing.assert_allclose(naive_plm.doc_embeddings(doc),
                               fast_plm.doc_embeddings(doc), atol=1e-9)


def test_encode_tokens_results_are_caller_owned(fast_plm):
    docs = [["w1", "w2"]]
    first = fast_plm.encode_tokens(docs)[0]
    first[:] = 0.0  # mutate the returned array
    second = fast_plm.encode_tokens(docs)[0]
    assert not np.allclose(second, 0.0)  # the cache entry was not clobbered


# -- mask logits equivalence -------------------------------------------------
def test_mask_logits_batch_matches_naive(naive_plm, fast_plm, mixed_docs):
    docs = [d if d else ["w1", "w2"] for d in mixed_docs]
    positions = [min(1, len(d) - 1) for d in docs]
    naive = naive_plm.mask_logits_batch(docs, positions)
    fast = fast_plm.mask_logits_batch(docs, positions)
    assert naive.dtype == np.float32 and fast.dtype == np.float32
    np.testing.assert_allclose(naive, fast, atol=1e-6)


def test_mask_logits_gathered_head_matches_full_projection(naive_plm):
    """Position-gathered MLM head == full (B, T, V) projection rows."""
    docs = [["w3", "w4", "w5", "w6"], ["w9", "w10"]]
    positions = [2, 0]
    got = naive_plm.mask_logits_batch(docs, positions)
    vocab = naive_plm.vocabulary
    sequences = naive_plm._masked_sequences(docs, positions)
    ids, mask = pad_batch(sequences, vocab.pad_id, naive_plm.max_len)
    hidden = naive_plm.encoder(ids, pad_mask=mask)
    full = naive_plm.encoder.mlm_logits(hidden).data
    want = np.stack([full[i, p] for i, p in enumerate(positions)])
    np.testing.assert_allclose(got, want.astype(np.float32), atol=1e-6)


def test_mask_topk_matches_full_argsort(naive_plm, fast_plm):
    docs = [[f"w{(i + j) % 60}" for j in range(3 + i % 9)] for i in range(12)]
    positions = [i % 3 for i in range(12)]
    k = 7
    logits = naive_plm.mask_logits_batch(docs, positions).astype(np.float64)
    full_top = np.argsort(-logits, axis=1)[:, :k]
    top = fast_plm.mask_topk_batch(docs, positions, k)
    assert top.shape == (12, k)
    for got, want in zip(top, full_top):
        assert set(got.tolist()) == set(want.tolist())


def test_fill_mask_matches_naive(naive_plm, fast_plm):
    tokens = ["w1", "w2", MASK, "w4"]
    naive = naive_plm.fill_mask(tokens, top_k=6)
    fast = fast_plm.fill_mask(tokens, top_k=6)
    assert [w for w, _ in naive] == [w for w, _ in fast]
    np.testing.assert_allclose([p for _, p in naive], [p for _, p in fast],
                               atol=1e-9)


# -- encode cache ------------------------------------------------------------
def test_cache_hits_on_reencode(shared_encoder, mixed_docs):
    cache = EncodeCache()
    plm = PretrainedLM(shared_encoder, enc_cache=cache)
    first = plm.doc_embeddings(mixed_docs)
    assert cache.hits == 0 and cache.misses == len(mixed_docs)
    second = plm.doc_embeddings(mixed_docs)
    np.testing.assert_array_equal(first, second)
    assert cache.hits == len(mixed_docs)


def test_cache_shared_across_models_with_same_weights(shared_encoder):
    cache = EncodeCache()
    docs = [["w1", "w2", "w3"], ["w4"]]
    one = PretrainedLM(shared_encoder, enc_cache=cache)
    two = PretrainedLM(shared_encoder, enc_cache=cache)
    one.doc_embeddings(docs)
    two.doc_embeddings(docs)
    assert cache.hits == len(docs)  # second model reused the first's work


def test_cache_lru_eviction_respects_budget():
    cache = EncodeCache(max_bytes=4 * 80)  # room for ~4 tiny arrays
    for i in range(10):
        cache.put("ns", f"k{i}", np.full((10,), float(i)))
    assert cache.nbytes <= 4 * 80
    assert cache.evictions > 0
    assert cache.get("ns", "k9") is not None  # most recent survives
    assert cache.get("ns", "k0") is None      # oldest evicted


def test_cache_disk_tier_roundtrip(tmp_path):
    cache = EncodeCache(disk_dir=tmp_path)
    value = np.arange(12.0).reshape(3, 4)
    cache.put("ns", "doc", value)
    fresh = EncodeCache(disk_dir=tmp_path)  # cold memory tier, warm disk
    got = fresh.get("ns", "doc")
    np.testing.assert_array_equal(got, value)
    assert fresh.disk_hits == 1


def test_cache_namespace_isolates_models(shared_encoder):
    cache = EncodeCache()
    cache.put("other-namespace", doc_key(np.array([1, 2, 3])), np.zeros((3, 16)))
    plm = PretrainedLM(shared_encoder, enc_cache=cache)
    emb = plm.doc_embeddings([["w1", "w2", "w3"]])
    assert not np.allclose(emb, 0.0)  # foreign entry never served


def test_duplicate_docs_encoded_once_per_call(shared_encoder):
    cache = EncodeCache()
    plm = PretrainedLM(shared_encoder, enc_cache=cache)
    docs = [["w1", "w2"]] * 10 + [["w3"]] * 5
    emb = plm.doc_embeddings(docs)
    assert len(cache) == 2  # only the unique documents hit the encoder
    np.testing.assert_allclose(emb[0], emb[9])
    np.testing.assert_allclose(emb[10], emb[14])
    single = plm.doc_embeddings([["w1", "w2"]])
    np.testing.assert_allclose(single[0], emb[0])


def test_engine_cache_knob_disables_lookup(shared_encoder):
    cache = EncodeCache()
    plm = PretrainedLM(shared_encoder, enc_cache=cache,
                       engine_config=EngineConfig(cache=False))
    plm.doc_embeddings([["w1", "w2"]])
    assert len(cache) == 0 and cache.misses == 0


# -- attention storage -------------------------------------------------------
def test_attention_storage_defaults_off(shared_encoder, fast_plm):
    fast_plm.encode_tokens([["w1", "w2", "w3"]])
    assert all(m is None for m in shared_encoder.attention_maps())


def test_encode_with_attention_still_works_and_restores(shared_encoder,
                                                        fast_plm):
    hidden, attention = fast_plm.encode_with_attention(["w1", "w2", "w3"])
    assert hidden.shape == (3, fast_plm.dim)
    assert attention.shape[-2:] == (3, 3)
    # float32 softmax: rows sum to 1 within a few ulps.
    np.testing.assert_allclose(attention.sum(axis=-1), 1.0, atol=1e-6)
    assert all(not block.attn.store_attention
               for block in shared_encoder.blocks)
    assert all(m is None for m in shared_encoder.attention_maps())
