"""Multi-label workload: ranking-metric edge cases, sectioned profiles,
and FUTEX's section machinery."""

import numpy as np
import pytest

from repro.core.base import MultiLabelTextClassifier
from repro.core.supervision import LabelNames
from repro.core.types import Corpus, Document, LabelSet
from repro.datasets import load_profile
from repro.evaluation.ranking import (
    example_f1,
    hierarchical_precision_recall,
    label_f1,
    ndcg_at_k,
    precision_at_k,
)
from repro.methods.futex import aggregate_sections, section_slices
from repro.taxonomy.dag import LabelDAG

pytestmark = pytest.mark.multilabel


# ---------------------------------------------------------------------------
# Ranking metrics: edge cases
# ---------------------------------------------------------------------------

def test_precision_at_k_empty_gold_scores_zero():
    assert precision_at_k([set()], [["a", "b"]], k=2) == 0.0
    # Mixed: the empty-gold doc contributes 0, not NaN.
    assert precision_at_k([set(), {"a"}], [["a"], ["a"]], k=1) == 0.5


def test_ndcg_empty_gold_scores_zero():
    assert ndcg_at_k([set()], [["a", "b"]], k=2) == 0.0


def test_k_larger_than_label_count():
    # A 2-label ranking probed at k=5: P@k divides by k (so the score
    # caps at 2/5) and NDCG pads the missing gain slots with zeros
    # instead of erroring.
    gold = [{"a", "b"}]
    assert precision_at_k(gold, [["a", "b"]], k=5) == pytest.approx(2 / 5)
    assert ndcg_at_k(gold, [["a", "b"]], k=5) == pytest.approx(1.0)
    # Gold larger than the ranking: ideal DCG still uses min(|gold|, k).
    assert ndcg_at_k([{"a", "b", "c"}], [["a"]], k=2) < 1.0


def test_example_and_label_f1_empty_sets():
    assert example_f1([set()], [set()]) == 1.0
    assert label_f1([set()], [set()]) == 1.0
    assert example_f1([{"a"}], [set()]) == 0.0


def test_hierarchical_credit_for_sibling_miss():
    dag = LabelDAG([("top", "a"), ("top", "b")], top_level=["top"])
    flat = hierarchical_precision_recall([{"a"}], [{"b"}], taxonomy=None)
    hier = hierarchical_precision_recall([{"a"}], [{"b"}], taxonomy=dag)
    assert flat["h_f1"] == 0.0
    assert hier["h_f1"] > 0.0  # shared ancestor earns partial credit
    empty = hierarchical_precision_recall([{"a"}], [set()], taxonomy=dag)
    assert empty["h_precision"] == 0.0 and empty["h_recall"] == 0.0


class _FixedScore(MultiLabelTextClassifier):
    """Returns a constant score matrix — for rank/predict contracts."""

    def __init__(self, matrix):
        super().__init__(seed=0)
        self._matrix = np.asarray(matrix, dtype=float)

    def _fit(self, corpus, supervision):
        pass

    def _score(self, corpus):
        return self._matrix[: len(corpus)]


def _fit_fixed(matrix, labels):
    docs = [Document(doc_id=f"d{i}", text="", tokens=["t"])
            for i in range(len(matrix))]
    corpus = Corpus(docs, name="fixed")
    clf = _FixedScore(matrix)
    clf.fit(corpus, LabelNames(label_set=LabelSet(labels=tuple(labels))))
    return clf, corpus


def test_rank_breaks_ties_by_label_index():
    # All-equal scores: the ranking must fall back to label-set order,
    # deterministically, rather than whatever argsort feels like.
    clf, corpus = _fit_fixed([[0.5, 0.5, 0.5]], ["c", "a", "b"])
    assert clf.rank(corpus) == [["c", "a", "b"]]
    assert clf.predict(corpus, top_k=2) == [("c", "a")]


def test_rank_is_stable_under_partial_ties():
    clf, corpus = _fit_fixed([[0.2, 0.9, 0.2, 0.9]], ["w", "x", "y", "z"])
    assert clf.rank(corpus) == [["x", "z", "w", "y"]]


# ---------------------------------------------------------------------------
# Sectioned profile generation
# ---------------------------------------------------------------------------

def test_arxiv_sections_docs_carry_contiguous_spans():
    bundle = load_profile("arxiv_sections", seed=0, scale=0.05)
    profile_sections = [s.name for s in bundle.profile.sections]
    assert profile_sections == ["title", "abstract", "body", "conclusion"]
    for doc in list(bundle.train_corpus)[:20]:
        spans = doc.metadata["sections"]
        assert [s["name"] for s in spans] == profile_sections
        cursor = 0
        for span in spans:
            assert span["start"] == cursor
            assert span["end"] > span["start"]  # no empty sections
            cursor = span["end"]
        assert cursor == len(doc.tokens)


def test_arxiv_sections_labels_are_ancestor_closed():
    bundle = load_profile("arxiv_sections", seed=0, scale=0.05)
    dag = bundle.dag
    for doc in list(bundle.train_corpus)[:20]:
        labels = set(doc.labels)
        assert labels == dag.closure(doc.metadata["core_labels"])


# ---------------------------------------------------------------------------
# FUTEX section machinery
# ---------------------------------------------------------------------------

def test_section_slices_and_whole_doc_fallback():
    doc = Document(doc_id="d", text="", tokens=list("abcdef"),
                   metadata={"sections": [
                       {"name": "title", "start": 0, "end": 2},
                       {"name": "body", "start": 2, "end": 6}]})
    assert section_slices(doc) == [("title", ["a", "b"]),
                                   ("body", ["c", "d", "e", "f"])]
    plain = Document(doc_id="p", text="", tokens=["x", "y"])
    assert section_slices(plain) == [("body", ["x", "y"])]


def test_section_slices_drops_empty_spans():
    doc = Document(doc_id="d", text="", tokens=["a"],
                   metadata={"sections": [
                       {"name": "title", "start": 0, "end": 1},
                       {"name": "body", "start": 1, "end": 1}]})
    assert section_slices(doc) == [("title", ["a"])]


def test_aggregate_sections_weights_confident_sections():
    relevance = np.array([
        [0.9, 0.1],   # doc 0, decisive section
        [0.4, 0.35],  # doc 0, mushy section
        [0.2, 0.8],   # doc 1, single section
    ])
    pooled = aggregate_sections(relevance, [(0, 2), (2, 3)], temp=6.0)
    assert pooled.shape == (2, 2)
    # Doc 0 pools toward its decisive section's distribution.
    assert pooled[0, 0] > 0.7
    # A single-section doc passes through unchanged.
    assert np.allclose(pooled[1], relevance[2])
    # An empty span yields a zero row rather than NaN.
    empty = aggregate_sections(relevance, [(0, 0)])
    assert np.all(empty == 0.0)
