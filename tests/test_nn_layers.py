"""Tests for nn layers: shapes, masking, parameter management."""

import numpy as np
import pytest

from repro.nn.layers import (
    Dropout,
    Embedding,
    FeedForward,
    LayerNorm,
    Linear,
    MultiHeadSelfAttention,
    Sequential,
    TransformerBlock,
)
from repro.nn.tensor import Tensor


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


def test_linear_shapes_and_bias(rng):
    layer = Linear(4, 3, rng)
    out = layer(Tensor(rng.normal(size=(5, 4))))
    assert out.shape == (5, 3)
    no_bias = Linear(4, 3, rng, bias=False)
    assert no_bias.bias is None


def test_embedding_lookup(rng):
    emb = Embedding(10, 6, rng)
    out = emb(np.array([[1, 2], [3, 3]]))
    assert out.shape == (2, 2, 6)
    assert np.allclose(out.data[1, 0], out.data[1, 1])


def test_layernorm_normalizes(rng):
    norm = LayerNorm(8)
    x = Tensor(rng.normal(3.0, 2.0, size=(4, 8)))
    out = norm(x).data
    assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-6)
    assert np.allclose(out.std(axis=-1), 1.0, atol=1e-2)


def test_dropout_eval_mode_is_identity(rng):
    drop = Dropout(0.5, rng)
    drop.eval()
    x = Tensor(rng.normal(size=(3, 3)))
    assert np.allclose(drop(x).data, x.data)


def test_dropout_train_mode_zeroes(rng):
    drop = Dropout(0.5, rng)
    x = Tensor(np.ones((100,)))
    out = drop(x).data
    assert (out == 0).any()
    assert abs(out.mean() - 1.0) < 0.3  # inverted scaling preserves mean


def test_dropout_rejects_bad_p(rng):
    with pytest.raises(ValueError):
        Dropout(1.0, rng)


def test_attention_respects_padding(rng):
    attn = MultiHeadSelfAttention(8, 2, rng, store_attention=True)
    x = Tensor(rng.normal(size=(1, 4, 8)))
    pad = np.array([[False, False, True, True]])
    attn(x, pad_mask=pad)
    weights = attn.last_attention  # (B, H, T, T)
    assert np.allclose(weights[0, :, :, 2:], 0.0, atol=1e-6)


def test_attention_rejects_indivisible_heads(rng):
    with pytest.raises(ValueError):
        MultiHeadSelfAttention(10, 3, rng)


def test_transformer_block_shape_preserved(rng):
    block = TransformerBlock(8, 2, 16, rng)
    x = Tensor(rng.normal(size=(2, 5, 8)))
    assert block(x).shape == (2, 5, 8)


def test_feedforward_shape(rng):
    ff = FeedForward(8, 16, rng)
    assert ff(Tensor(rng.normal(size=(3, 8)))).shape == (3, 8)


def test_sequential_chains(rng):
    model = Sequential(Linear(4, 8, rng), Linear(8, 2, rng))
    assert model(Tensor(rng.normal(size=(3, 4)))).shape == (3, 2)


def test_module_parameters_unique(rng):
    block = TransformerBlock(8, 2, 16, rng)
    params = block.parameters()
    assert len({id(p) for p in params}) == len(params)
    assert block.num_parameters() == sum(p.data.size for p in params)


def test_state_dict_roundtrip(rng):
    layer = Linear(3, 2, rng)
    state = layer.state_dict()
    layer.weight.data[:] = 0.0
    layer.load_state_dict(state)
    assert not np.allclose(layer.weight.data, 0.0)


def test_load_state_dict_validates(rng):
    layer = Linear(3, 2, rng)
    with pytest.raises(ValueError):
        layer.load_state_dict([np.zeros((1, 1))])
    with pytest.raises(ValueError):
        layer.load_state_dict([])


def test_train_eval_propagates(rng):
    model = Sequential(Dropout(0.5, rng), Linear(2, 2, rng))
    model.eval()
    assert not model.modules[0].training
    model.train()
    assert model.modules[0].training
