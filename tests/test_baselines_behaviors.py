"""Behavioural tests for baseline internals not covered elsewhere."""

import numpy as np
import pytest

from repro.baselines import (
    PCEM,
    Dataless,
    Doc2Cube,
    IRWithTfidf,
    PLSATopicModel,
)
from repro.core.supervision import Keywords, LabeledDocuments
from repro.core.types import Corpus, Document, LabelSet


def test_plsa_topic_word_distributions_are_distributions(agnews_small):
    model = PLSATopicModel(iterations=10, seed=0)
    model.fit(agnews_small.train_corpus, agnews_small.keywords())
    assert np.allclose(model.topic_word.sum(axis=1), 1.0, atol=1e-9)
    assert (model.topic_word >= 0).all()


def test_plsa_seed_words_concentrate_in_their_topic(agnews_small):
    model = PLSATopicModel(iterations=15, seed=0)
    keywords = agnews_small.keywords(include_ambiguous=False)
    model.fit(agnews_small.train_corpus, keywords)
    labels = list(agnews_small.label_set)
    for c, label in enumerate(labels):
        seed = keywords.for_label(label)[0]
        if seed not in model.vocabulary:
            continue
        j = model.vocabulary.id(seed)
        assert model.topic_word[c, j] == model.topic_word[:, j].max(), seed


def test_ir_tfidf_proba_normalized(agnews_small):
    clf = IRWithTfidf(seed=0)
    clf.fit(agnews_small.train_corpus, agnews_small.keywords())
    proba = clf.predict_proba(agnews_small.test_corpus[:10])
    assert np.allclose(proba.sum(axis=1), 1.0)


def test_doc2cube_iterations_refine_labels(agnews_small):
    gold = [d.labels[0] for d in agnews_small.test_corpus]
    from repro.evaluation.metrics import micro_f1

    one = Doc2Cube(iterations=1, seed=0)
    one.fit(agnews_small.train_corpus, agnews_small.keywords())
    three = Doc2Cube(iterations=3, seed=0)
    three.fit(agnews_small.train_corpus, agnews_small.keywords())
    score_one = micro_f1(gold, one.predict(agnews_small.test_corpus))
    score_three = micro_f1(gold, three.predict(agnews_small.test_corpus))
    assert score_three >= score_one - 0.05  # refinement never catastrophic


def test_pcem_em_beats_labeled_only(agnews_small):
    """EM over the unlabeled corpus should help naive Bayes."""
    from repro.evaluation.metrics import micro_f1

    gold = [d.labels[0] for d in agnews_small.test_corpus]
    sup = agnews_small.labeled_documents(3)
    no_em = PCEM(iterations=0, seed=0)
    no_em.fit(agnews_small.train_corpus, sup)
    with_em = PCEM(iterations=8, seed=0)
    with_em.fit(agnews_small.train_corpus, sup)
    score_no = micro_f1(gold, no_em.predict(agnews_small.test_corpus))
    score_em = micro_f1(gold, with_em.predict(agnews_small.test_corpus))
    assert score_em >= score_no - 0.03


def test_dataless_concept_space_is_shared_and_cached():
    from repro.baselines.dataless import _SPACE_CACHE, _general_space

    _SPACE_CACHE.clear()
    a = _general_space(16, seed=0)
    b = _general_space(16, seed=0)
    assert a is b
    c = _general_space(16, seed=0, extra_themes=("technology-sub0",))
    assert c is not a


def test_dataless_fails_gracefully_on_unknown_names():
    label_set = LabelSet(labels=("weird1", "weird2"))
    docs = [Document(doc_id=f"d{i}", tokens=["sports", "game"],
                     labels=("weird1",)) for i in range(6)]
    clf = Dataless(seed=0)
    from repro.core.supervision import LabelNames

    clf.fit(Corpus(docs), LabelNames(label_set=label_set))
    proba = clf.predict_proba(Corpus(docs))
    assert np.isfinite(proba).all()


def test_match_metadata_features_deterministic(biblio_small):
    from repro.baselines import MATCH
    from repro.plm.config import tiny_config
    from repro.plm.provider import get_pretrained_lm

    plm = get_pretrained_lm(target_corpus=biblio_small.train_corpus,
                            config=tiny_config(), seed=0)
    clf = MATCH(plm=plm, n_train_examples=20, epochs=5, seed=0)
    sub = biblio_small.train_corpus[:5]
    a = clf._metadata_features(sub)
    b = clf._metadata_features(sub)
    assert np.allclose(a, b)
    assert a.shape == (5, 16)
