"""Packed fused-infer path: float32-ulp equivalence with the Tensor path.

The oracle is the Tensor-based encoder under ``inference_mode``: the
packed forward mirrors its fused op order exactly, so outputs must
agree to float32 ulp on every batch shape — padded, unpadded, blocked,
unblocked — and the engine must fall back to the Tensor path whenever
the fused kernels are globally disabled.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import functional as F
from repro.plm import infer
from repro.plm.encoder import pad_batch
from repro.plm.engine import EngineConfig
from repro.plm.infer import PackedEncoder, packed_encoder
from repro.plm.model import PretrainedLM
from repro.nn.tensor import inference_mode

pytestmark = pytest.mark.engine

#: One float32 ulp at the ~1e0 magnitudes layer-norm outputs live at,
#: with headroom for one reassociated BLAS accumulation.
ULP_ATOL = 2e-6


def _batch(plm, token_lists):
    vocab = plm.vocabulary
    seqs = [vocab.encode(t)[: plm.max_len] for t in token_lists]
    return pad_batch(seqs, vocab.pad_id, plm.max_len)


def _tensor_forward(plm, ids, mask):
    plm.encoder.eval()
    with inference_mode():
        return plm.encoder(ids, pad_mask=mask).data


def test_packed_matches_tensor_path_on_padded_batch(tiny_plm, agnews_small):
    docs = agnews_small.test_corpus.token_lists()[:16]
    ids, mask = _batch(tiny_plm, docs)
    assert mask.any(), "mixed-length batch should carry padding"
    reference = _tensor_forward(tiny_plm, ids, mask)
    packed = PackedEncoder(tiny_plm.encoder)
    np.testing.assert_allclose(packed.forward(ids, mask), reference,
                               atol=ULP_ATOL, rtol=0)


def test_packed_matches_on_unpadded_single_doc(tiny_plm, agnews_small):
    tokens = agnews_small.test_corpus.token_lists()[0]
    while len(tokens) < tiny_plm.max_len:
        tokens = tokens + tokens
    ids, mask = _batch(tiny_plm, [tokens[: tiny_plm.max_len]])
    assert not mask.any()
    reference = _tensor_forward(tiny_plm, ids, mask)
    packed = PackedEncoder(tiny_plm.encoder)
    np.testing.assert_allclose(packed.forward(ids, mask), reference,
                               atol=ULP_ATOL, rtol=0)


def test_blocked_scores_match_unblocked(tiny_plm, agnews_small):
    docs = agnews_small.test_corpus.token_lists()[:8]
    ids, mask = _batch(tiny_plm, docs)
    whole = PackedEncoder(tiny_plm.encoder, block=ids.shape[1]).forward(ids, mask)
    for block in (1, 3, 5):
        blocked = PackedEncoder(tiny_plm.encoder, block=block).forward(ids, mask)
        # Same math over row slices; BLAS may pick a different kernel per
        # block height, so agreement is to float32 ulp rather than bits.
        np.testing.assert_allclose(blocked, whole, atol=ULP_ATOL, rtol=0)


def test_block_rows_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_ENGINE_BLOCK_ROWS", "7")
    assert infer.block_rows() == 7
    monkeypatch.setenv("REPRO_ENGINE_BLOCK_ROWS", "0")
    assert infer.block_rows() == 1  # clamped to a sane minimum
    monkeypatch.delenv("REPRO_ENGINE_BLOCK_ROWS")
    assert infer.block_rows() == infer._DEFAULT_BLOCK_ROWS


def test_packed_rejects_overlong_sequences(tiny_plm):
    packed = PackedEncoder(tiny_plm.encoder)
    ids = np.zeros((1, tiny_plm.max_len + 1), dtype=np.int64)
    with pytest.raises(ValueError, match="exceeds max_len"):
        packed.forward(ids, np.zeros_like(ids, dtype=bool))


def test_packed_encoder_is_cached_per_encoder(tiny_plm):
    first = packed_encoder(tiny_plm.encoder)
    assert packed_encoder(tiny_plm.encoder) is first


def test_engine_fused_infer_end_to_end(tiny_plm, agnews_small, monkeypatch):
    docs = agnews_small.test_corpus.token_lists()[:12]
    baseline = PretrainedLM(tiny_plm.encoder, enc_cache=None).doc_embeddings(docs)

    calls = {"n": 0}
    real = infer.packed_encoder

    def counting(encoder):
        calls["n"] += 1
        return real(encoder)

    monkeypatch.setattr(infer, "packed_encoder", counting)
    fused_plm = PretrainedLM(tiny_plm.encoder, enc_cache=None,
                             engine_config=EngineConfig(fused_infer=True))
    fused = fused_plm.doc_embeddings(docs)
    assert calls["n"] > 0, "fused_infer should route through the packed path"
    np.testing.assert_allclose(fused, baseline, atol=ULP_ATOL, rtol=0)


def test_set_fused_false_disables_packed_path(tiny_plm, agnews_small,
                                              monkeypatch):
    docs = agnews_small.test_corpus.token_lists()[:6]
    calls = {"n": 0}
    real = infer.packed_encoder

    def counting(encoder):
        calls["n"] += 1
        return real(encoder)

    monkeypatch.setattr(infer, "packed_encoder", counting)
    plm = PretrainedLM(tiny_plm.encoder, enc_cache=None,
                       engine_config=EngineConfig(fused_infer=True))
    F.set_fused(False)
    try:
        slow = plm.doc_embeddings(docs)
    finally:
        F.set_fused(True)
    assert calls["n"] == 0, "set_fused(False) must veto the packed path"
    fast = plm.doc_embeddings(docs)
    assert calls["n"] > 0
    np.testing.assert_allclose(fast, slow, atol=ULP_ATOL, rtol=0)
