"""Tests for WeSTClass (and its pseudo-document generator)."""

import numpy as np
import pytest

from repro.core.exceptions import NotFittedError
from repro.core.supervision import LabelNames
from repro.embeddings.joint import JointEmbeddingSpace
from repro.evaluation.metrics import micro_f1
from repro.methods.westclass import PseudoDocumentGenerator, WeSTClass


@pytest.fixture(scope="module")
def fitted_space(agnews_small):
    space = JointEmbeddingSpace(dim=24)
    space.fit(agnews_small.train_corpus.token_lists())
    return space


def _seeds(bundle, per_class=3):
    return {l: bundle.world.lexicons[l][:per_class] for l in bundle.label_set}


def test_pseudo_generator_emits_requested_docs(fitted_space, agnews_small):
    seeds = _seeds(agnews_small)
    fitted_space.set_label_seeds(seeds)
    generator = PseudoDocumentGenerator(fitted_space, seeds)
    docs = generator.generate("sports", 5, doc_len=20, seed=0)
    assert len(docs) == 5
    assert all(len(d) == 20 for d in docs)


def test_pseudo_docs_lean_topical(fitted_space, agnews_small):
    seeds = _seeds(agnews_small)
    fitted_space.set_label_seeds(seeds)
    generator = PseudoDocumentGenerator(fitted_space, seeds)
    docs = generator.generate("sports", 10, doc_len=30, seed=0)
    sports = set(agnews_small.world.lexicons["sports"])
    business = set(agnews_small.world.lexicons["business"])
    sports_hits = sum(len(set(d) & sports) for d in docs)
    business_hits = sum(len(set(d) & business) for d in docs)
    assert sports_hits > business_hits


def test_pseudo_generate_all_targets_smoothed(fitted_space, agnews_small):
    seeds = _seeds(agnews_small)
    fitted_space.set_label_seeds(seeds)
    generator = PseudoDocumentGenerator(fitted_space, seeds)
    docs, targets = generator.generate_all(3, doc_len=10, seed=0)
    assert len(docs) == 3 * len(seeds)
    assert np.allclose(targets.sum(axis=1), 1.0)
    assert targets.max() < 1.0  # smoothing


def test_westclass_beats_chance_all_supervision_types(agnews_small):
    gold = [d.labels[0] for d in agnews_small.test_corpus]
    chance = 1.0 / len(agnews_small.label_set)
    for supervision in (agnews_small.label_names(), agnews_small.keywords(),
                        agnews_small.labeled_documents(5)):
        clf = WeSTClass(seed=0)
        clf.fit(agnews_small.train_corpus, supervision)
        score = micro_f1(gold, clf.predict(agnews_small.test_corpus))
        assert score > chance + 0.15, type(supervision).__name__


def test_westclass_han_variant_runs(agnews_small):
    clf = WeSTClass(classifier="han", pseudo_per_class=10, pretrain_epochs=3,
                    self_train_iterations=1, seed=0)
    clf.fit(agnews_small.train_corpus, agnews_small.keywords())
    proba = clf.predict_proba(agnews_small.test_corpus)
    assert np.allclose(proba.sum(axis=1), 1.0)


def test_westclass_rejects_unknown_classifier():
    with pytest.raises(ValueError):
        WeSTClass(classifier="transformer")


def test_westclass_unfitted_predict_raises(agnews_small):
    with pytest.raises(NotFittedError):
        WeSTClass(seed=0).predict(agnews_small.test_corpus)


def test_westclass_deterministic_given_seed(agnews_small):
    def run():
        clf = WeSTClass(pseudo_per_class=10, pretrain_epochs=3,
                        self_train_iterations=1, seed=11)
        clf.fit(agnews_small.train_corpus, agnews_small.keywords())
        return clf.predict(agnews_small.test_corpus)

    assert run() == run()
