"""Typed-error lint for the streaming pipeline.

The orchestrator's contract is that any pipeline failure can be caught
with ``except PipelineError`` — a bare ``ValueError`` escaping a stage
would dodge the checkpoint-before-reraise handling and surface to CLI
users as a traceback. This tier-1 test walks the ASTs of every module
in ``repro.pipeline`` and fails on any ``raise`` whose exception is not
constructed from a :class:`~repro.core.exceptions.PipelineError`
subclass:

- ``raise SomeError(...)`` — allowed only if ``SomeError`` is
  ``PipelineError`` or one of its subclasses (checked against the live
  class hierarchy in :mod:`repro.core.exceptions`, so a new subclass is
  allowed the moment it's defined there);
- bare ``raise`` (re-raise inside ``except``) is allowed — it preserves
  an already-typed error;
- anything else (``raise ValueError(...)``, ``raise exc`` of unknown
  provenance) is a violation.

Like the dtype lint, intentional exceptions go in ``ALLOWLIST`` as
``(filename, exact stripped source line)`` pairs so waivers are visible
in this file's diff; a staleness test prunes dead entries.
"""

from __future__ import annotations

import ast
import inspect
from pathlib import Path

import pytest

import repro.pipeline
from repro.core import exceptions as exc_mod
from repro.core.exceptions import PipelineError

pytestmark = pytest.mark.pipeline

#: Names of PipelineError and every subclass defined in the exceptions
#: module — the only exception types repro.pipeline may construct.
TYPED = {
    name for name, obj in inspect.getmembers(exc_mod, inspect.isclass)
    if issubclass(obj, PipelineError)
}

#: (filename, stripped source line) pairs that may raise something else.
#: Every entry must say why.
ALLOWLIST: set = {
    # The standard ``python -m`` entry-point idiom: SystemExit carries
    # the process exit code, not a pipeline failure.
    ("cli.py", "raise SystemExit(main())"),
}


def _module_files() -> list:
    root = Path(repro.pipeline.__file__).resolve().parent
    return sorted(root.glob("*.py"))


def _raised_name(node: ast.Raise) -> "str | None":
    """The exception class name a ``raise`` constructs, if literal."""
    target = node.exc
    if isinstance(target, ast.Call):
        func = target.func
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute):
            return func.attr
    if isinstance(target, ast.Name):
        return target.id
    return None


def _violations(path: Path) -> list:
    source = path.read_text()
    lines = source.splitlines()
    tree = ast.parse(source, filename=str(path))
    found = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Raise):
            continue
        if node.exc is None:
            continue  # bare re-raise preserves an already-typed error
        name = _raised_name(node)
        line = lines[node.lineno - 1].strip()
        if name in TYPED:
            continue
        if (path.name, line) in ALLOWLIST:
            continue
        found.append(
            f"{path.name}:{node.lineno}: raises "
            f"{name or 'a non-literal exception'} (not a PipelineError "
            f"subclass) — {line}"
        )
    return found


def test_pipeline_raises_only_typed_errors():
    problems = []
    for path in _module_files():
        problems.extend(_violations(path))
    assert not problems, (
        "untyped raises in repro.pipeline (raise a PipelineError "
        "subclass, add one to repro.core.exceptions, or add a reviewed "
        "ALLOWLIST entry):\n" + "\n".join(problems)
    )


def test_typed_set_tracks_the_exception_module():
    # The lint's notion of "typed" must come from the live hierarchy,
    # not a hand-copied list that rots when a subclass is added.
    assert "PipelineError" in TYPED
    assert "CheckpointError" in TYPED
    assert "StageFailure" in TYPED
    assert "ServingError" not in TYPED
    assert "ValueError" not in TYPED


def test_allowlist_entries_still_exist():
    """Stale waivers must be pruned, not accumulate."""
    live = set()
    for path in _module_files():
        stripped = {line.strip() for line in path.read_text().splitlines()}
        for name, text in ALLOWLIST:
            if name == path.name and text in stripped:
                live.add((name, text))
    assert live == ALLOWLIST, f"stale ALLOWLIST entries: {ALLOWLIST - live}"


def test_lint_catches_an_untyped_raise(tmp_path):
    # The lint itself must bite: a module raising ValueError is flagged,
    # one raising a PipelineError subclass is clean.
    bad = tmp_path / "bad_stage.py"
    bad.write_text("def f():\n    raise ValueError('boom')\n")
    assert _violations(bad), "lint missed a bare ValueError raise"
    good = tmp_path / "good_stage.py"
    good.write_text(
        "from repro.core.exceptions import StageFailure\n"
        "def f():\n"
        "    try:\n"
        "        raise StageFailure('typed')\n"
        "    except Exception:\n"
        "        raise\n"
    )
    assert not _violations(good)
