"""Additional PLM substrate tests: determinism, batching, attention."""

import numpy as np
import pytest

from repro.plm.config import PLMConfig, scaled_config, tiny_config
from repro.plm.encoder import TransformerEncoder
from repro.plm.pretrainer import build_plm_vocabulary, init_token_embeddings


def test_config_cache_key_distinguishes_fields():
    a = tiny_config()
    b = scaled_config(a, mlm_steps=a.mlm_steps + 1)
    assert a.cache_key() != b.cache_key()
    assert a.cache_key() == tiny_config().cache_key()


def test_scaled_config_overrides():
    cfg = scaled_config(tiny_config(), dim=8)
    assert cfg.dim == 8
    assert cfg.n_layers == tiny_config().n_layers


def test_encoding_batch_independence(tiny_plm):
    """A document's contextual vectors must not depend on its batchmates."""
    docs = [["soccer", "team", "win"], ["market", "profit"],
            ["politics", "election", "vote", "senate"]]
    batched = tiny_plm.encode_tokens(docs)
    solo = [tiny_plm.encode_tokens([d])[0] for d in docs]
    for a, b in zip(batched, solo):
        assert np.allclose(a, b, atol=1e-9)


def test_encoder_deterministic_given_seed():
    vocab = build_plm_vocabulary([["a", "b", "c"]])
    cfg = PLMConfig(dim=8, n_layers=1, n_heads=2, ff_hidden=16, max_len=8)
    enc1 = TransformerEncoder(vocab, cfg, np.random.default_rng(3))
    enc2 = TransformerEncoder(vocab, cfg, np.random.default_rng(3))
    for p1, p2 in zip(enc1.state_dict(), enc2.state_dict()):
        assert np.allclose(p1, p2)


def test_svd_init_scale(tiny_plm, agnews_small):
    """SVD-initialized token table keeps a BERT-like magnitude."""
    table = tiny_plm.encoder.token_embedding.weight.data
    mean_abs = np.abs(table).mean()
    assert 0.01 < mean_abs < 0.5


def test_init_token_embeddings_overwrites():
    docs = [["x", "y", "z", "x", "y"]] * 30
    vocab = build_plm_vocabulary(docs)
    cfg = PLMConfig(dim=8, n_layers=1, n_heads=2, ff_hidden=16, max_len=8)
    enc = TransformerEncoder(vocab, cfg, np.random.default_rng(0))
    before = enc.token_embedding.weight.data.copy()
    init_token_embeddings(enc, docs, cfg, seed=0)
    assert not np.allclose(before, enc.token_embedding.weight.data)


def test_attention_maps_shape(tiny_plm):
    hidden, attention = tiny_plm.encode_with_attention(
        ["soccer", "team", "won", "the", "cup"][:4]
    )
    n_heads = tiny_plm.encoder.config.n_heads
    assert attention.shape[0] == n_heads
    # Rows are probability distributions over key positions.
    assert np.allclose(attention.sum(axis=-1), 1.0, atol=1e-6)


def test_mask_logits_batch_matches_fill_mask(tiny_plm):
    tokens = ["soccer", "team", "championship", "today"]
    batch_logits = tiny_plm.mask_logits_batch([tokens], [1])[0]
    probs = np.exp(batch_logits - batch_logits.max())
    probs /= probs.sum()
    top_batch = tiny_plm.vocabulary.token(int(probs.argmax()))
    working = list(tokens)
    working[1] = "[MASK]"
    top_fill = tiny_plm.fill_mask(working, top_k=1,
                                  exclude_specials=False)[0][0]
    assert top_batch == top_fill


def test_relevance_model_symmetry_of_batch_and_single(tiny_relevance):
    doc = ["soccer", "team", "match"]
    single = tiny_relevance.relevance(doc, ["sports"])
    batch = tiny_relevance.relevance_batch([doc], [["sports"]])[0]
    assert single == pytest.approx(float(batch))
