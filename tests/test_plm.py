"""Tests for the PLM substrate (encoder, pre-training, heads)."""

import numpy as np
import pytest

from repro.plm.config import PLMConfig, tiny_config
from repro.plm.encoder import TransformerEncoder, pad_batch
from repro.plm.pretrainer import (
    IGNORE,
    _mask_tokens,
    build_plm_vocabulary,
    pretrain_mlm,
)
from repro.plm.prompts import PromptTemplate, Verbalizer
from repro.core.types import LabelSet
from repro.text.vocabulary import MASK, Vocabulary


@pytest.fixture()
def small_encoder(rng):
    vocab = Vocabulary.build([["alpha", "beta", "gamma", "delta"]] * 3)
    config = PLMConfig(dim=8, n_layers=1, n_heads=2, ff_hidden=16, max_len=10,
                       mlm_steps=5, batch_size=4, pretrain_docs=10)
    return TransformerEncoder(vocab, config, rng)


def test_pad_batch_shapes_and_mask():
    ids, mask = pad_batch([np.array([1, 2, 3]), np.array([4])], pad_id=0,
                          max_len=5)
    assert ids.shape == (2, 3)
    assert ids[1, 0] == 4 and ids[1, 1] == 0
    assert mask[1, 1] and not mask[0, 2]


def test_pad_batch_truncates():
    ids, _ = pad_batch([np.arange(10)], pad_id=0, max_len=4)
    assert ids.shape == (1, 4)


def test_pad_batch_rejects_empty():
    with pytest.raises(ValueError):
        pad_batch([], pad_id=0, max_len=4)


def test_encoder_forward_shape(small_encoder):
    ids = np.array([[5, 6, 7], [6, 6, 0]])
    hidden = small_encoder(ids)
    assert hidden.shape == (2, 3, 8)


def test_encoder_rejects_overlong(small_encoder):
    with pytest.raises(ValueError):
        small_encoder(np.zeros((1, 11), dtype=int))


def test_mlm_logits_shape(small_encoder):
    ids = np.array([[5, 6], [7, 5]])
    hidden = small_encoder(ids)
    logits = small_encoder.mlm_logits(hidden)
    assert logits.shape == (2, 2, len(small_encoder.vocabulary))


def test_mask_tokens_respects_padding(rng):
    vocab = Vocabulary.build([["a", "b", "c"]])
    ids = np.array([[5, 6, 0, 0]])
    pad = np.array([[False, False, True, True]])
    corrupted, targets = _mask_tokens(ids, pad, vocab, mlm_prob=1.0, rng=rng)
    assert (targets[0, 2:] == IGNORE).all()
    assert (targets[0, :2] != IGNORE).all()


def test_mask_tokens_guarantees_a_target(rng):
    vocab = Vocabulary.build([["a"]])
    ids = np.array([[5]])
    pad = np.array([[False]])
    _, targets = _mask_tokens(ids, pad, vocab, mlm_prob=0.0, rng=rng)
    assert (targets != IGNORE).sum() == 1


def test_pretraining_reduces_loss(rng):
    docs = [["apple", "banana", "cherry", "date"] * 3 for _ in range(40)]
    vocab = build_plm_vocabulary(docs)
    config = PLMConfig(dim=16, n_layers=1, n_heads=2, ff_hidden=32, max_len=16,
                       mlm_steps=60, batch_size=8, init_from_svd=False)
    encoder = TransformerEncoder(vocab, config, rng)
    log: list = []
    pretrain_mlm(encoder, docs, config, seed=0, log=log)
    assert np.mean(log[:10]) > np.mean(log[-10:])


def test_plm_fill_mask_returns_probabilities(tiny_plm):
    tokens = ["soccer", "team", MASK, "championship"]
    predictions = tiny_plm.fill_mask(tokens, top_k=5)
    assert len(predictions) == 5
    assert all(0 <= p <= 1 for _, p in predictions)


def test_plm_fill_mask_requires_mask(tiny_plm):
    with pytest.raises(ValueError):
        tiny_plm.fill_mask(["no", "mask"], top_k=3)


def test_plm_predict_masked_is_context_sensitive(tiny_plm, agnews_small):
    """Masked predictions must depend on the surrounding context.

    (The tiny test-config model is too small for reliably *topical*
    predictions — the bench suite checks that with the full config.)
    """

    def first_context(label):
        for doc in agnews_small.train_corpus:
            if doc.labels[0] == label and len(doc.tokens) >= 12:
                return doc.tokens[:12]
        return None

    sports = first_context("sports")
    business = first_context("business")
    assert sports is not None and business is not None
    p_sports = dict(tiny_plm.predict_masked(sports, 5, top_k=20))
    p_business = dict(tiny_plm.predict_masked(business, 5, top_k=20))
    assert p_sports != p_business


def test_plm_encode_tokens_lengths(tiny_plm):
    out = tiny_plm.encode_tokens([["soccer", "game"], ["market"]])
    assert out[0].shape == (2, tiny_plm.dim)
    assert out[1].shape == (1, tiny_plm.dim)


def test_plm_doc_embeddings_normalized(tiny_plm):
    emb = tiny_plm.doc_embeddings([["soccer", "game"], ["market", "profit"]])
    assert np.allclose(np.linalg.norm(emb, axis=1), 1.0, atol=1e-9)


def test_plm_doc_embeddings_skip_oov(tiny_plm):
    """OOV positions are excluded from pooling (their contextual influence
    on other tokens remains, so vectors are close but not identical)."""
    with_oov = tiny_plm.doc_embeddings([["soccer", "team", "zzzzunknownzzz"]])
    without = tiny_plm.doc_embeddings([["soccer", "team"]])
    cos = float((with_oov * without).sum())
    assert cos > 0.7


def test_plm_encode_with_attention_shapes(tiny_plm):
    hidden, attention = tiny_plm.encode_with_attention(["soccer", "match", "win"])
    assert hidden.shape[0] == 3
    assert attention.shape[-1] == 3


def test_electra_scores_in_unit_interval(tiny_electra):
    scores = tiny_electra.originality([["soccer", "team", "market"]])
    assert scores[0].shape == (3,)
    assert ((scores[0] >= 0) & (scores[0] <= 1)).all()


def test_electra_detects_out_of_context_token(tiny_electra, agnews_small):
    doc = None
    for d in agnews_small.train_corpus:
        if d.labels[0] == "sports" and len(d.tokens) >= 12:
            doc = d.tokens[:12]
            break
    assert doc is not None
    corrupted = list(doc)
    corrupted[5] = "mortgage"  # finance word in a sports context
    clean_scores = tiny_electra.originality([doc])[0]
    corrupt_scores = tiny_electra.originality([corrupted])[0]
    assert corrupt_scores[5] <= clean_scores[5] + 0.2


def test_relevance_model_prefers_true_topic(tiny_relevance, agnews_small):
    sports_docs = [d.tokens for d in agnews_small.train_corpus
                   if d.labels[0] == "sports"][:10]
    right = tiny_relevance.relevance_batch(sports_docs, [["sports"]] * 10)
    wrong = tiny_relevance.relevance_batch(sports_docs, [["business"]] * 10)
    assert right.mean() > wrong.mean()


def test_relevance_matrix_shape(tiny_relevance):
    matrix = tiny_relevance.relevance_matrix(
        [["soccer", "match"], ["market", "profit"]],
        [["sports"], ["business"], ["technology"]],
    )
    assert matrix.shape == (2, 3)
    assert ((matrix >= 0) & (matrix <= 1)).all()


def test_prompt_template_masked_and_filled():
    template = PromptTemplate()
    masked = template.render_masked(["w"] * 60, max_len=20)
    assert masked[-1] == MASK
    assert len(masked) <= 20
    filled, position = template.render_filled(["w"] * 5, ["sports"], max_len=20)
    assert filled[position] == "sports"


def test_verbalizer_from_label_names():
    label_set = LabelSet(labels=("a",), names={"a": "real estate"})
    verbalizer = Verbalizer.from_label_names(label_set)
    assert verbalizer.tokens("a") == ["real", "estate"]
    assert verbalizer.head_token("a") == "real"


def test_provider_caches(tiny_plm, agnews_small):
    from repro.plm.provider import get_pretrained_lm

    again = get_pretrained_lm(target_corpus=agnews_small.train_corpus,
                              config=tiny_config(), seed=0)
    assert again is tiny_plm
