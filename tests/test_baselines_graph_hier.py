"""Tests for graph, hierarchical, and ranking baselines."""

import numpy as np
import pytest

from repro.baselines import (
    Doc2VecRanker,
    EDAContrastive,
    ESim,
    HierDataless,
    HierSVM,
    HierZeroShotTC,
    HIN2Vec,
    MATCH,
    Metapath2Vec,
    SemiBERT,
    TextGCN,
    eda_augment,
)
from repro.evaluation.metrics import micro_f1
from repro.evaluation.ranking import precision_at_k


def _score(clf, bundle, supervision):
    clf.fit(bundle.train_corpus, supervision)
    gold = [d.labels[0] for d in bundle.test_corpus]
    return micro_f1(gold, clf.predict(bundle.test_corpus))


@pytest.mark.parametrize("cls", [ESim, Metapath2Vec, HIN2Vec])
def test_graph_baselines_use_metadata(cls, meta_small):
    chance = 1.0 / len(meta_small.label_set)
    score = _score(cls(epochs=3, seed=0), meta_small,
                   meta_small.labeled_documents(5))
    assert score > chance


def test_textgcn_transductive(meta_small):
    score = _score(TextGCN(epochs=30, seed=0), meta_small,
                   meta_small.labeled_documents(5))
    assert score > 0.4


def test_hier_svm(tree_small):
    score = _score(HierSVM(tree=tree_small.tree, seed=0), tree_small,
                   tree_small.labeled_documents(3))
    assert score > 1.0 / len(tree_small.label_set)


def test_hier_dataless_with_concept_coverage(tree_small):
    themes = tuple(c.theme for c in tree_small.profile.classes)
    clf = HierDataless(tree=tree_small.tree, concept_themes=themes, seed=0)
    score = _score(clf, tree_small, tree_small.label_names())
    assert score > 1.0 / len(tree_small.label_set)


def test_eda_augment_changes_tokens(rng, agnews_small):
    from repro.embeddings.ppmi_svd import PPMISVDEmbeddings

    svd = PPMISVDEmbeddings(dim=16).fit(agnews_small.train_corpus.token_lists())
    tokens = agnews_small.train_corpus[0].tokens
    augmented = eda_augment(tokens, svd, rng, alpha=0.2)
    assert augmented != list(tokens)
    assert augmented  # never empty


def test_eda_contrastive_ranker(tiny_plm, agnews_small):
    clf = EDAContrastive(plm=tiny_plm, n_pairs=60, seed=0)
    clf.fit(agnews_small.train_corpus, agnews_small.label_names())
    scores = clf.score(agnews_small.test_corpus[:5])
    assert scores.shape == (5, len(agnews_small.label_set))


def test_doc2vec_ranker(biblio_small):
    clf = Doc2VecRanker(dim=24, seed=0)
    clf.fit(biblio_small.train_corpus, biblio_small.label_names())
    ranking = clf.rank(biblio_small.test_corpus[:20])
    gold = [set(d.labels) for d in biblio_small.test_corpus[:20]]
    assert precision_at_k(gold, ranking, 5) >= 0.0  # runs end to end


def test_semibert_uses_fraction_of_gold(dag_small):
    from repro.plm.config import tiny_config
    from repro.plm.provider import get_pretrained_lm

    plm = get_pretrained_lm(target_corpus=dag_small.train_corpus,
                            config=tiny_config(), seed=0)
    clf = SemiBERT(plm=plm, fraction=0.3, epochs=30, seed=0)
    clf.fit(dag_small.train_corpus, dag_small.label_names())
    gold = [set(d.labels) for d in dag_small.test_corpus]
    ranking = clf.rank(dag_small.test_corpus)
    chance = np.mean([len(g) for g in gold]) / len(dag_small.label_set)
    assert precision_at_k(gold, ranking, 1) > chance


def test_hier_zero_shot_tc(dag_small):
    from repro.plm.config import tiny_config
    from repro.plm.provider import get_pretrained_lm

    plm = get_pretrained_lm(target_corpus=dag_small.train_corpus,
                            config=tiny_config(), seed=0)
    clf = HierZeroShotTC(dag=dag_small.dag, plm=plm, seed=0)
    clf.fit(dag_small.train_corpus, dag_small.label_names())
    scores = clf.score(dag_small.test_corpus[:10])
    # Pruned labels get exactly zero score.
    assert (scores == 0).any()


def test_match_more_data_helps(biblio_small):
    from repro.plm.config import tiny_config
    from repro.plm.provider import get_pretrained_lm

    plm = get_pretrained_lm(target_corpus=biblio_small.train_corpus,
                            config=tiny_config(), seed=0)
    gold = [set(d.labels) for d in biblio_small.test_corpus]
    small = MATCH(plm=plm, n_train_examples=10, epochs=30, seed=0)
    small.fit(biblio_small.train_corpus, biblio_small.label_names())
    large = MATCH(plm=plm, n_train_examples=None, epochs=30, seed=0)
    large.fit(biblio_small.train_corpus, biblio_small.label_names())
    p_small = precision_at_k(gold, small.rank(biblio_small.test_corpus), 1)
    p_large = precision_at_k(gold, large.rank(biblio_small.test_corpus), 1)
    assert p_large >= p_small - 0.05
