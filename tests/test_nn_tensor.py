"""Autograd correctness: numerical gradient checks + property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import functional as F
from repro.nn.tensor import Tensor, concatenate, stack


def numerical_gradient(f, x, eps=1e-6):
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        old = x[idx]
        x[idx] = old + eps
        fp = f()
        x[idx] = old - eps
        fm = f()
        x[idx] = old
        grad[idx] = (fp - fm) / (2 * eps)
        it.iternext()
    return grad


def check(build, *params, tol=1e-6):
    """Compare autograd gradients against numerical ones."""
    for p in params:
        p.zero_grad()
    loss = build()
    loss.backward()
    for p in params:
        num = numerical_gradient(lambda: build().item(), p.data)
        assert p.grad is not None
        assert np.abs(num - p.grad).max() < tol, f"gradient mismatch for {p}"


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


def test_add_mul_broadcast_gradients(rng):
    a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
    b = Tensor(rng.normal(size=(4,)), requires_grad=True)
    check(lambda: ((a + b) * b).sum(), a, b)


def test_matmul_gradients(rng):
    a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
    b = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
    check(lambda: (a @ b).sum(), a, b)


def test_batched_matmul_gradients(rng):
    a = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
    b = Tensor(rng.normal(size=(2, 4, 3)), requires_grad=True)
    check(lambda: (a @ b).sum(), a, b)


def test_matmul_vector_cases(rng):
    a = Tensor(rng.normal(size=(4,)), requires_grad=True)
    m = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
    check(lambda: (a @ m).sum(), a, m)
    n = Tensor(rng.normal(size=(5, 4)), requires_grad=True)
    v = Tensor(rng.normal(size=(4,)), requires_grad=True)
    check(lambda: (n @ v).sum(), n, v)


@pytest.mark.parametrize("op", ["exp", "log", "tanh", "sigmoid", "gelu", "relu"])
def test_unary_gradients(rng, op):
    base = rng.uniform(0.2, 1.5, size=(3, 3))
    x = Tensor(base, requires_grad=True)
    check(lambda: getattr(x, op)().sum(), x, tol=1e-5)


def test_pow_and_division(rng):
    x = Tensor(rng.uniform(0.5, 2.0, size=(4,)), requires_grad=True)
    check(lambda: (1.0 / x + x**3).sum(), x, tol=1e-5)


def test_sum_mean_axis_gradients(rng):
    x = Tensor(rng.normal(size=(3, 5)), requires_grad=True)
    check(lambda: x.sum(axis=0).mean(), x)
    check(lambda: x.mean(axis=1, keepdims=True).sum(), x)


def test_max_gradient_routes_to_argmax(rng):
    x = Tensor(np.array([[1.0, 3.0], [2.0, 0.5]]), requires_grad=True)
    x.max(axis=1).sum().backward()
    assert np.allclose(x.grad, [[0.0, 1.0], [1.0, 0.0]])


def test_reshape_transpose_gradients(rng):
    x = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
    check(lambda: x.reshape(6, 4).transpose(1, 0).sum(), x)
    check(lambda: x.swapaxes(0, 2).sum(), x)


def test_getitem_gradient_accumulates(rng):
    x = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
    idx = np.array([0, 0, 2])
    check(lambda: (x[idx] ** 2).sum(), x)


def test_take_rows_gradient(rng):
    table = Tensor(rng.normal(size=(6, 4)), requires_grad=True)
    ids = np.array([[1, 1], [4, 0]])
    check(lambda: table.take_rows(ids).sum(), table)


def test_masked_fill_blocks_gradient(rng):
    x = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
    mask = np.array([[True, False, False], [False, True, False]])
    x.masked_fill(mask, -9.0).sum().backward()
    assert x.grad[0, 0] == 0.0 and x.grad[1, 1] == 0.0
    assert x.grad[0, 1] == 1.0


def test_softmax_rows_sum_to_one(rng):
    x = Tensor(rng.normal(size=(4, 7)))
    probs = F.softmax(x).data
    assert np.allclose(probs.sum(axis=1), 1.0)


def test_log_softmax_matches_softmax_log(rng):
    x = Tensor(rng.normal(size=(3, 5)))
    assert np.allclose(F.log_softmax(x).data, np.log(F.softmax(x).data))


def test_softmax_gradient(rng):
    x = Tensor(rng.normal(size=(2, 4)), requires_grad=True)
    check(lambda: (F.softmax(x) ** 2).sum(), x, tol=1e-5)


def test_concatenate_and_stack_gradients(rng):
    a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
    b = Tensor(rng.normal(size=(2, 2)), requires_grad=True)
    check(lambda: (concatenate([a, b], axis=1) ** 2).sum(), a, b)
    c = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
    d = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
    check(lambda: (stack([c, d], axis=0) ** 3).sum(), c, d, tol=1e-5)


def test_backward_requires_scalar():
    x = Tensor(np.ones((2, 2)), requires_grad=True)
    with pytest.raises(ValueError):
        (x * 2).backward()


def test_grad_accumulates_across_backward_calls():
    x = Tensor(np.array(2.0), requires_grad=True)
    (x * 3).backward()
    (x * 3).backward()
    assert float(x.grad) == 6.0
    x.zero_grad()
    assert x.grad is None


def test_detach_cuts_graph():
    x = Tensor(np.array(2.0), requires_grad=True)
    y = x.detach() * 5
    assert not y.requires_grad


@given(
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=4),
)
@settings(max_examples=30, deadline=None)
def test_broadcast_add_matches_numpy(n, m):
    rng = np.random.default_rng(n * 10 + m)
    a = rng.normal(size=(n, m))
    b = rng.normal(size=(m,))
    out = (Tensor(a) + Tensor(b)).data
    assert np.allclose(out, a + b)


@given(st.integers(min_value=2, max_value=5))
@settings(max_examples=20, deadline=None)
def test_unbroadcast_gradient_shape(n):
    rng = np.random.default_rng(n)
    a = Tensor(rng.normal(size=(n, 3)), requires_grad=True)
    b = Tensor(rng.normal(size=(1, 3)), requires_grad=True)
    ((a * b).sum()).backward()
    assert b.grad.shape == (1, 3)
    assert np.allclose(b.grad, a.data.sum(axis=0, keepdims=True))
