"""Tests for label trees and DAGs."""

import pytest

from repro.core.exceptions import TaxonomyError
from repro.taxonomy.dag import LabelDAG
from repro.taxonomy.tree import ROOT, LabelTree


@pytest.fixture()
def tree():
    return LabelTree({
        "sci": ROOT, "arts": ROOT,
        "physics": "sci", "biology": "sci", "music": "arts",
        "quantum": "physics",
    })


def test_tree_children_and_parent(tree):
    assert tree.children(ROOT) == ["arts", "sci"]
    assert tree.parent("quantum") == "physics"


def test_tree_leaves_and_internal(tree):
    assert set(tree.leaves()) == {"music", "biology", "quantum"}
    assert set(tree.internal()) == {"sci", "arts", "physics"}


def test_tree_paths_and_depth(tree):
    assert tree.path_from_root("quantum") == ["sci", "physics", "quantum"]
    assert tree.depth("quantum") == 3
    assert tree.max_depth() == 3
    assert tree.ancestor_at_depth("quantum", 1) == "sci"


def test_tree_level(tree):
    assert set(tree.level(1)) == {"sci", "arts"}
    assert set(tree.level(2)) == {"physics", "biology", "music"}


def test_tree_subtree_leaves(tree):
    assert set(tree.subtree_leaves("sci")) == {"quantum", "biology"}
    assert tree.subtree_leaves("music") == ["music"]


def test_tree_rejects_cycle():
    with pytest.raises(TaxonomyError):
        LabelTree({"a": "b", "b": "a"})


def test_tree_rejects_orphan():
    with pytest.raises(TaxonomyError):
        LabelTree({"a": "missing"})


def test_tree_from_edges():
    tree = LabelTree.from_edges([("x", "y")], top_level=["x"])
    assert tree.parent("y") == "x"
    assert "y" in tree


def test_tree_ancestor_depth_bounds(tree):
    with pytest.raises(TaxonomyError):
        tree.ancestor_at_depth("quantum", 9)


@pytest.fixture()
def dag():
    return LabelDAG(
        edges=[("a", "c"), ("b", "c"), ("a", "d"), ("c", "e")],
        top_level=["a", "b"],
    )


def test_dag_parents_children(dag):
    assert dag.parents("c") == ["a", "b"]
    assert dag.children("a") == ["c", "d"]


def test_dag_leaves(dag):
    assert set(dag.leaves()) == {"d", "e"}


def test_dag_ancestors_and_closure(dag):
    assert dag.ancestors("e") == {"a", "b", "c"}
    assert dag.closure(["e"]) == {"a", "b", "c", "e"}
    assert dag.closure(["d", "e"]) == {"a", "b", "c", "d", "e"}


def test_dag_depth_and_levels(dag):
    assert dag.depth("a") == 1
    assert dag.depth("e") == 3
    assert set(dag.levels()[1]) == {"a", "b"}


def test_dag_rejects_cycle():
    with pytest.raises(TaxonomyError):
        LabelDAG(edges=[("a", "b"), ("b", "a")], top_level=["a"])


def test_dag_rejects_unreachable():
    with pytest.raises(TaxonomyError):
        LabelDAG(edges=[("x", "y")], top_level=[])


def test_dag_len_and_contains(dag):
    assert len(dag) == 5
    assert "c" in dag and "nope" not in dag
