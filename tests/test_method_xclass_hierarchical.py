"""Tests for the hierarchical X-Class wrapper."""

import numpy as np
import pytest

from repro.core.exceptions import SupervisionError
from repro.evaluation.metrics import micro_f1
from repro.methods.xclass import HierarchicalXClass
from repro.plm.config import tiny_config
from repro.plm.provider import get_pretrained_lm


@pytest.fixture(scope="module")
def tree_plm(tree_small):
    return get_pretrained_lm(target_corpus=tree_small.train_corpus,
                             config=tiny_config(), seed=0)


def test_hierarchical_xclass_beats_chance(tree_small, tree_plm):
    clf = HierarchicalXClass(tree=tree_small.tree, plm=tree_plm, seed=0)
    clf.fit(tree_small.train_corpus, tree_small.label_names())
    gold = [d.labels[0] for d in tree_small.test_corpus]
    predicted = clf.predict(tree_small.test_corpus)
    assert micro_f1(gold, predicted) > 1.5 / len(tree_small.label_set)


def test_hierarchical_xclass_proba_normalized(tree_small, tree_plm):
    clf = HierarchicalXClass(tree=tree_small.tree, plm=tree_plm, seed=0)
    clf.fit(tree_small.train_corpus, tree_small.label_names())
    proba = clf.predict_proba(tree_small.test_corpus[:10])
    assert np.allclose(proba.sum(axis=1), 1.0, atol=1e-9)
    assert (proba >= 0).all()


def test_hierarchical_xclass_validates_tree(tree_small, agnews_small, tree_plm):
    clf = HierarchicalXClass(tree=tree_small.tree, plm=tree_plm, seed=0)
    with pytest.raises(SupervisionError):
        clf.fit(agnews_small.train_corpus, agnews_small.label_names())


def test_hierarchical_xclass_fits_root_model(tree_small, tree_plm):
    clf = HierarchicalXClass(tree=tree_small.tree, plm=tree_plm, seed=0)
    clf.fit(tree_small.train_corpus, tree_small.label_names())
    from repro.taxonomy.tree import ROOT

    assert ROOT in clf._local
