"""Perf-regression harness: history store, calibrated gate, CI schemas.

The acceptance contract: a synthetic 2x slowdown appended to a history
file fails the gate on any host (the tolerance product is capped below
2x), ordinary drift passes, ``write_bench_artifact`` stamps every
artifact and history record with git SHA + host calibration, and a
``BENCH_*.json`` nobody registered fails the artifact check.
"""

from __future__ import annotations

import importlib.util
import json
import re
import sys
from pathlib import Path

import pytest

BENCHMARKS = Path(__file__).resolve().parent.parent / "benchmarks"
if str(BENCHMARKS) not in sys.path:
    sys.path.insert(0, str(BENCHMARKS))

import check_bench_artifacts as cba  # noqa: E402
import check_regression as cr  # noqa: E402
import hostcal  # noqa: E402


def _load_bench_conftest():
    """The benchmarks conftest under a non-colliding module name."""
    name = "bench_conftest_for_tests"
    if name in sys.modules:
        return sys.modules[name]
    spec = importlib.util.spec_from_file_location(name,
                                                 BENCHMARKS / "conftest.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


pytestmark = pytest.mark.harness


def _record(seconds: float, speedup: float = 2.0, jitter: float = 1.1,
            host: str = "hostA", sha: str = "cafe") -> dict:
    return {
        "name": "serving",
        "sha": sha,
        "host": host,
        "created": "2026-08-01T00:00:00Z",
        "calibration": {"batch_gain": 5.0, "jitter": jitter},
        "metrics": {"unbatched_seconds": seconds, "speedup": speedup},
    }


def _write_history(directory: Path, name: str, records: list) -> Path:
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{name}.jsonl"
    path.write_text("".join(json.dumps(r) + "\n" for r in records))
    return path


# ---------------------------------------------------------------------------
# The gate
# ---------------------------------------------------------------------------

def test_synthetic_2x_slowdown_fails(tmp_path):
    records = [_record(1.0) for _ in range(4)] + [_record(2.0)]
    _write_history(tmp_path, "serving", records)
    report = cr.check_all(tmp_path, ["serving"])
    assert report["regressed"] == ["serving"]
    bad = [c for c in report["results"][0]["comparisons"] if c["regressed"]]
    assert [c["metric"] for c in bad] == ["unbatched_seconds"]
    assert bad[0]["ratio"] == 2.0
    assert bad[0]["tolerance"] < 2.0


def test_modest_drift_passes(tmp_path):
    records = [_record(1.0) for _ in range(4)] + [_record(1.05)]
    _write_history(tmp_path, "serving", records)
    report = cr.check_all(tmp_path, ["serving"])
    assert report["regressed"] == []


def test_higher_is_better_direction(tmp_path):
    # Wall time steady, but the speedup ratio halved: still a regression.
    records = [_record(1.0, speedup=4.0) for _ in range(4)]
    records.append(_record(1.0, speedup=2.0))
    _write_history(tmp_path, "serving", records)
    report = cr.check_all(tmp_path, ["serving"])
    assert report["regressed"] == ["serving"]
    bad = [c for c in report["results"][0]["comparisons"] if c["regressed"]]
    assert [c["metric"] for c in bad] == ["speedup"]


def test_single_record_has_no_baseline(tmp_path):
    _write_history(tmp_path, "serving", [_record(1.0)])
    report = cr.check_all(tmp_path, ["serving"])
    result = report["results"][0]
    assert result["status"] == "no baseline"
    assert result["baseline"] == "insufficient-history"
    assert result["n_baselines"] == 0
    assert report["regressed"] == []


def test_empty_and_missing_history_pass_vacuously(tmp_path):
    # A fresh clone: the history file may be empty or absent entirely.
    _write_history(tmp_path, "serving", [])
    report = cr.check_all(tmp_path, ["serving", "serving_pool"])
    assert report["regressed"] == []
    assert report["checked"] == 2
    for result in report["results"]:
        assert result["status"] == "no baseline"
        assert result["baseline"] == "insufficient-history"
        assert result["comparisons"] == []
    # main() exits 0 on the same input instead of crashing the gate.
    rc = cr.main(["serving", "--history", str(tmp_path),
                  "--report", str(tmp_path / "report.json")])
    assert rc == 0
    written = json.loads((tmp_path / "report.json").read_text())
    assert written["results"][0]["baseline"] == "insufficient-history"


def test_baselines_window_is_bounded(tmp_path):
    # Old slow records beyond --last must not drag the median up.
    records = ([_record(9.0) for _ in range(10)]
               + [_record(1.0) for _ in range(5)] + [_record(1.9)])
    _write_history(tmp_path, "serving", records)
    report = cr.check_all(tmp_path, ["serving"], last=5)
    result = report["results"][0]
    assert result["n_baselines"] == 5
    seconds = [c for c in result["comparisons"]
               if c["metric"] == "unbatched_seconds"][0]
    assert seconds["baseline_median"] == 1.0
    assert seconds["regressed"]  # 1.9x over a 1.0 median breaches 1.5x


def test_tolerance_widens_with_jitter_but_stays_capped():
    calm = [_record(1.0, jitter=1.0) for _ in range(3)]
    assert cr.tolerance_for(_record(1.0, jitter=1.0), calm) == 1.5
    # A noisier current host widens the allowance, but never to 2x.
    assert cr.tolerance_for(_record(1.0, jitter=1.2), calm) == pytest.approx(1.8)
    assert cr.tolerance_for(_record(1.0, jitter=50.0), calm) <= cr.TOLERANCE_CAP
    assert cr.TOLERANCE_CAP < 2.0


def test_tolerance_widens_across_hosts():
    baselines = [_record(1.0, host="hostA") for _ in range(3)]
    same = cr.tolerance_for(_record(1.0, host="hostA"), baselines)
    other = cr.tolerance_for(_record(1.0, host="hostB"), baselines)
    assert other == pytest.approx(same * cr.CROSS_HOST_WIDENING)


def test_tolerance_detail_itemizes_every_adjustment():
    calm = [_record(1.0, jitter=1.0, host="hostA") for _ in range(3)]
    detail = cr.tolerance_detail(_record(1.0, jitter=1.2, host="hostB"), calm)
    assert detail["base"] == cr.BASE_TOLERANCE
    assert detail["jitter_ratio"] == pytest.approx(1.2)
    assert detail["jitter_widening"] == pytest.approx(1.2)
    assert detail["cross_host"] is True
    assert detail["cross_host_widening"] == cr.CROSS_HOST_WIDENING
    assert detail["capped"] is False
    assert detail["tolerance"] == pytest.approx(
        cr.BASE_TOLERANCE * 1.2 * cr.CROSS_HOST_WIDENING)
    # tolerance_for stays the plain-float view of the same computation.
    assert cr.tolerance_for(_record(1.0, jitter=1.2, host="hostB"),
                            calm) == detail["tolerance"]
    # Max jitter widening alone stays under the cap (1.5 * 1.25 = 1.875);
    # stacking the cross-host factor pushes past it and trips the flag.
    wild = cr.tolerance_detail(_record(1.0, jitter=50.0, host="hostB"), calm)
    assert wild["jitter_widening"] == cr.MAX_JITTER_WIDENING
    assert wild["capped"] is True
    assert wild["tolerance"] == cr.TOLERANCE_CAP


def test_report_carries_tolerance_detail_and_logs_cross_host(tmp_path,
                                                             capsys):
    records = ([_record(1.0, host="hostA") for _ in range(3)]
               + [_record(1.0, host="hostB")])
    _write_history(tmp_path / "history", "serving", records)
    report_path = tmp_path / "report.json"
    rc = cr.main(["--history", str(tmp_path / "history"),
                  "--report", str(report_path), "serving"])
    assert rc == 0
    assert "cross-host baseline" in capsys.readouterr().out
    written = json.loads(report_path.read_text())
    detail = written["results"][0]["tolerance_detail"]
    assert detail["cross_host"] is True
    assert detail["cross_host_widening"] == cr.CROSS_HOST_WIDENING
    for comparison in written["results"][0]["comparisons"]:
        assert comparison["tolerance"] == pytest.approx(detail["tolerance"],
                                                        abs=1e-4)


def test_main_exits_nonzero_and_writes_report(tmp_path, capsys):
    records = [_record(1.0) for _ in range(3)] + [_record(2.0)]
    _write_history(tmp_path / "history", "serving", records)
    report_path = tmp_path / "BENCH_regression.json"
    rc = cr.main(["--history", str(tmp_path / "history"),
                  "--report", str(report_path), "serving"])
    assert rc == 1
    assert "REGRESSED" in capsys.readouterr().err
    report = json.loads(report_path.read_text())
    assert report["regressed"] == ["serving"]
    assert report["meta"]["calibration"]["jitter"] >= 1.0

    # Fixing the regression turns the same invocation green.
    _write_history(tmp_path / "history", "serving",
                   records[:-1] + [_record(1.01)])
    assert cr.main(["--history", str(tmp_path / "history"),
                    "--report", str(report_path), "serving"]) == 0


def test_every_registered_metric_has_a_schema():
    # A history name the gate checks must be an artifact CI validates.
    assert set(cr.METRICS) <= set(cba.SCHEMAS)


# ---------------------------------------------------------------------------
# Missing metrics (present in history, absent from the fresh record)
# ---------------------------------------------------------------------------

def _record_without_speedup(seconds: float) -> dict:
    record = _record(seconds)
    del record["metrics"]["speedup"]
    return record


def test_vanished_metric_reports_missing_not_ok(tmp_path):
    # Baselines carry `speedup`; the fresh record dropped it. Before the
    # fix this silently passed as `ok` — a renamed metric disabled its
    # own regression check.
    records = [_record(1.0) for _ in range(4)]
    records.append(_record_without_speedup(1.0))
    _write_history(tmp_path, "serving", records)
    report = cr.check_all(tmp_path, ["serving"])
    result = report["results"][0]
    assert result["status"] == "missing"
    assert report["missing"] == ["serving"]
    assert report["regressed"] == []
    gone = [c for c in result["comparisons"] if c.get("status") == "missing"]
    assert [c["metric"] for c in gone] == ["speedup"]
    assert gone[0]["current"] is None
    assert gone[0]["baseline_median"] == 2.0


def test_regression_outranks_missing(tmp_path):
    # A record that both regressed and lost a metric reports `regressed`.
    records = [_record(1.0) for _ in range(4)]
    records.append(_record_without_speedup(2.5))
    _write_history(tmp_path, "serving", records)
    report = cr.check_all(tmp_path, ["serving"])
    assert report["results"][0]["status"] == "regressed"
    assert report["regressed"] == ["serving"]
    assert report["missing"] == []


def test_brand_new_metric_is_not_missing(tmp_path):
    # The inverse hole: a metric no baseline ever recorded (its very
    # first run) has nothing to compare against and stays quiet.
    records = [_record_without_speedup(1.0) for _ in range(4)]
    records.append(_record(1.0))
    _write_history(tmp_path, "serving", records)
    report = cr.check_all(tmp_path, ["serving"])
    assert report["results"][0]["status"] == "ok"
    assert report["missing"] == []


def test_full_mode_fails_on_missing_but_named_mode_reports(tmp_path, capsys):
    records = [_record(1.0) for _ in range(4)]
    records.append(_record_without_speedup(1.0))
    _write_history(tmp_path / "history", "serving", records)
    report_path = tmp_path / "BENCH_regression.json"

    # Named mode (developer iterating on one bench): reported, rc 0.
    rc = cr.main(["--history", str(tmp_path / "history"),
                  "--report", str(report_path), "serving"])
    assert rc == 0
    assert "MISSING speedup" in capsys.readouterr().err

    # Full mode (CI gate): the vanished metric fails the run.
    rc = cr.main(["--history", str(tmp_path / "history"),
                  "--report", str(report_path)])
    assert rc == 1
    assert "MISSING speedup" in capsys.readouterr().err
    report = json.loads(report_path.read_text())
    assert report["missing"] == ["serving"]


# ---------------------------------------------------------------------------
# Artifact schema check
# ---------------------------------------------------------------------------

def _valid_serving_payload() -> dict:
    return {
        "unbatched_seconds": 1.0, "batched_seconds": 0.5, "speedup": 2.0,
        "batched_p50_ms": 5.0, "batched_p99_ms": 9.0,
        "unbatched_p50_ms": 10.0, "unbatched_p99_ms": 20.0,
        "n_requests": 64, "n_clients": 8, "batches": 9, "shed_demo": {},
    }


def test_unknown_bench_artifact_fails_full_check(tmp_path, monkeypatch):
    monkeypatch.setattr(cba, "HERE", tmp_path)
    (tmp_path / "BENCH_serving.json").write_text(
        json.dumps(_valid_serving_payload()))
    assert cba.main([]) == 0
    (tmp_path / "BENCH_mystery.json").write_text("{}")
    assert cba.unknown_artifacts(tmp_path) == ["mystery"]
    assert cba.main([]) == 1


def test_missing_keys_and_non_numeric_values_fail(tmp_path, monkeypatch):
    monkeypatch.setattr(cba, "HERE", tmp_path)
    payload = _valid_serving_payload()
    payload.pop("speedup")
    payload["batched_seconds"] = "fast"
    (tmp_path / "BENCH_serving.json").write_text(json.dumps(payload))
    problems = cba.check_artifact("serving")
    assert any("speedup" in p for p in problems)
    assert any("batched_seconds" in p and "numeric" in p for p in problems)


def test_serving_pool_artifact_is_registered(tmp_path, monkeypatch):
    # The pool bench is wired into both CI gates: schema + regression.
    assert "serving_pool" in cba.SCHEMAS
    assert cr.METRICS["serving_pool"]["speedup_4v1"] == "higher"
    assert cr.METRICS["serving_pool"]["p99_ms_r4"] == "lower"

    monkeypatch.setattr(cba, "HERE", tmp_path)
    payload = {
        "closed_rps_r1": 700.0, "closed_rps_r2": 1200.0,
        "closed_rps_r4": 1400.0, "speedup_4v1": 2.0, "min_speedup": 1.8,
        "p50_ms_r4": 2.0, "p99_ms_r4": 6.0, "p999_ms_r4": 11.0,
        "replicas": {}, "n_clients": 8, "open_rate_rps": 900.0,
        "calibration": {"jitter": 1.0},
    }
    (tmp_path / "BENCH_serving_pool.json").write_text(json.dumps(payload))
    assert cba.check_artifact("serving_pool") == []
    payload.pop("p999_ms_r4")
    (tmp_path / "BENCH_serving_pool.json").write_text(json.dumps(payload))
    assert any("p999_ms_r4" in p
               for p in cba.check_artifact("serving_pool"))


def test_dag_pipeline_artifact_is_registered(tmp_path, monkeypatch):
    # The DAG bench is wired into both CI gates: schema + regression.
    assert "dag_pipeline" in cba.SCHEMAS
    assert cr.METRICS["dag_pipeline"]["cold_seconds"] == "lower"
    assert cr.METRICS["dag_pipeline"]["dirty_speedup"] == "higher"
    assert cr.METRICS["dag_pipeline"]["dedup_ratio"] == "higher"

    monkeypatch.setattr(cba, "HERE", tmp_path)
    payload = {
        "cold_seconds": 8.0, "dirty_seconds": 0.4, "warm_seconds": 0.05,
        "dirty_speedup": 20.0, "min_dirty_speedup": 2.5,
        "warm_speedup": 160.0, "dedup_ratio": 1.11,
        "nodes_executed_warm": 0, "tables": [], "nodes_total": 9,
        "nodes_merged": 1, "calibration": {"jitter": 1.0},
    }
    (tmp_path / "BENCH_dag_pipeline.json").write_text(json.dumps(payload))
    assert cba.check_artifact("dag_pipeline") == []
    payload.pop("dirty_speedup")
    (tmp_path / "BENCH_dag_pipeline.json").write_text(json.dumps(payload))
    assert any("dirty_speedup" in p
               for p in cba.check_artifact("dag_pipeline"))


# ---------------------------------------------------------------------------
# Stamping and the history store
# ---------------------------------------------------------------------------

def test_write_bench_artifact_stamps_and_appends_history(tmp_path,
                                                         monkeypatch):
    bc = _load_bench_conftest()
    monkeypatch.setattr(bc, "ARTIFACT_DIR", tmp_path)
    monkeypatch.setattr(bc, "HISTORY_DIR", tmp_path / "history")

    payload = {"seconds": 1.25, "speedup": 2.0, "full": False,
               "rows": [{"Method": "XClass"}], "label": "demo"}
    path = bc.write_bench_artifact("demo", payload)
    assert path == tmp_path / "BENCH_demo.json"

    written = json.loads(path.read_text())
    meta = written["meta"]
    assert re.fullmatch(r"[0-9a-f]{40}", meta["sha"])
    assert meta["host"] == hostcal.host() != ""
    assert meta["calibration"]["batch_gain"] > 0
    assert meta["calibration"]["jitter"] >= 1.0

    bc.write_bench_artifact("demo", payload)
    lines = (tmp_path / "history" / "demo.jsonl").read_text().splitlines()
    assert len(lines) == 2
    record = json.loads(lines[0])
    assert record["name"] == "demo" and record["sha"] == meta["sha"]
    # Only scalar numerics survive into metrics: no tables, no strings,
    # and `full` (a bool) is not a perf number.
    assert record["metrics"] == {"seconds": 1.25, "speedup": 2.0}


def test_stamp_matches_git_head():
    import subprocess

    head = subprocess.run(["git", "rev-parse", "HEAD"],
                          cwd=BENCHMARKS, capture_output=True,
                          text=True).stdout.strip()
    assert hostcal.git_sha() == head
