"""Tests for WeSHClass on tree profiles."""

import numpy as np
import pytest

from repro.core.exceptions import SupervisionError
from repro.evaluation.metrics import micro_f1
from repro.methods.weshclass import WeSHClass


def _small(tree_small, **kwargs):
    defaults = dict(pseudo_per_class=15, pretrain_epochs=4,
                    self_train_rounds=1, seed=0)
    defaults.update(kwargs)
    return WeSHClass(tree=tree_small.tree, **defaults)


def test_weshclass_leaf_predictions_beat_chance(tree_small):
    gold = [d.labels[0] for d in tree_small.test_corpus]
    clf = _small(tree_small)
    clf.fit(tree_small.train_corpus, tree_small.keywords())
    score = micro_f1(gold, clf.predict(tree_small.test_corpus))
    assert score > 1.5 / len(tree_small.label_set)


def test_weshclass_coarse_predictions(tree_small):
    clf = _small(tree_small)
    clf.fit(tree_small.train_corpus, tree_small.keywords())
    coarse = clf.predict_level(tree_small.test_corpus, 1)
    gold = tree_small.coarse_gold(tree_small.test_corpus)
    assert micro_f1(gold, coarse) > 0.4  # 3 coarse classes, chance = 0.33


def test_weshclass_docs_supervision(tree_small):
    clf = _small(tree_small)
    clf.fit(tree_small.train_corpus, tree_small.labeled_documents(3))
    proba = clf.predict_proba(tree_small.test_corpus)
    assert np.allclose(proba.sum(axis=1), 1.0, atol=1e-6)


def test_weshclass_ablations_run(tree_small):
    for kwargs in ({"use_global": False}, {"use_vmf": False},
                   {"self_train": False}):
        clf = _small(tree_small, **kwargs)
        clf.fit(tree_small.train_corpus, tree_small.keywords())
        assert len(clf.predict(tree_small.test_corpus)) == len(
            tree_small.test_corpus
        )


def test_weshclass_validates_tree_coverage(tree_small, agnews_small):
    clf = _small(tree_small)
    with pytest.raises(SupervisionError):
        clf.fit(agnews_small.train_corpus, agnews_small.keywords())


def test_weshclass_node_seeds_cover_internal_nodes(tree_small):
    clf = _small(tree_small)
    clf.fit(tree_small.train_corpus, tree_small.keywords())
    for node in tree_small.tree.nodes:
        assert clf.node_seeds.get(node), node
