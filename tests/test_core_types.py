"""Unit tests for core types (Document, Corpus, LabelSet)."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.core.types import Corpus, Document, LabelSet


def test_document_tokenizes_text():
    doc = Document(doc_id="d1", text="The striker SCORED, twice!")
    assert doc.tokens == ["the", "striker", "scored", "twice"]


def test_document_joins_tokens_into_text():
    doc = Document(doc_id="d1", tokens=["a", "b"])
    assert doc.text == "a b"


def test_document_single_label_accessor():
    doc = Document(doc_id="d1", tokens=["x"], labels=("sports",))
    assert doc.label == "sports"


def test_document_label_accessor_rejects_multilabel():
    doc = Document(doc_id="d1", tokens=["x"], labels=("a", "b"))
    with pytest.raises(ConfigurationError):
        _ = doc.label


def test_document_len_counts_tokens():
    assert len(Document(doc_id="d", tokens=list("abc"))) == 3


def test_corpus_indexing_and_lookup():
    docs = [Document(doc_id=f"d{i}", tokens=["w"]) for i in range(5)]
    corpus = Corpus(docs, name="c")
    assert len(corpus) == 5
    assert corpus[2].doc_id == "d2"
    assert corpus.get("d3").doc_id == "d3"
    assert "d4" in corpus
    assert "nope" not in corpus


def test_corpus_slice_returns_corpus():
    docs = [Document(doc_id=f"d{i}", tokens=["w"]) for i in range(5)]
    sliced = Corpus(docs)[1:3]
    assert isinstance(sliced, Corpus)
    assert [d.doc_id for d in sliced] == ["d1", "d2"]


def test_corpus_rejects_duplicate_ids():
    docs = [Document(doc_id="same", tokens=["w"])] * 2
    with pytest.raises(ConfigurationError):
        Corpus(docs)


def test_corpus_subset():
    docs = [Document(doc_id=f"d{i}", tokens=["w"]) for i in range(4)]
    subset = Corpus(docs).subset([0, 3])
    assert [d.doc_id for d in subset] == ["d0", "d3"]


def test_label_set_name_and_tokens():
    ls = LabelSet(labels=("a", "b"), names={"a": "Real Estate"})
    assert ls.name_of("a") == "Real Estate"
    assert ls.name_tokens("a") == ["real", "estate"]
    assert ls.name_of("b") == "b"
    assert ls.index("b") == 1
    assert "a" in ls and "z" not in ls


def test_label_set_rejects_duplicates():
    with pytest.raises(ConfigurationError):
        LabelSet(labels=("x", "x"))


def test_label_set_description_fallback():
    ls = LabelSet(labels=("a",), descriptions={})
    assert ls.description_of("a") == "a"
