"""Shared fixtures: small dataset bundles and a tiny cached PLM.

Session-scoped so the expensive artifacts (PLM pre-training, dataset
generation) are built once per test run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import load_profile
from repro.plm.config import tiny_config
from repro.plm.provider import get_electra, get_pretrained_lm, get_relevance_model


@pytest.fixture(scope="session")
def agnews_small():
    """A small 4-class flat bundle (~288 train / 144 test docs)."""
    return load_profile("agnews", seed=0, scale=0.6)


@pytest.fixture(scope="session")
def tree_small():
    """A small 3x3 tree bundle."""
    return load_profile("arxiv_tree", seed=0, scale=0.4)


@pytest.fixture(scope="session")
def dag_small():
    """A small DAG multi-label bundle."""
    return load_profile("dbpedia_dag", seed=0, scale=0.4)


@pytest.fixture(scope="session")
def meta_small():
    """A small metadata (user/tag) bundle."""
    return load_profile("github_bio", seed=0, scale=0.8)


@pytest.fixture(scope="session")
def biblio_small():
    """A small bibliographic multi-label bundle (authors/venues/refs)."""
    return load_profile("magcs", seed=0, scale=0.4)


@pytest.fixture(scope="session")
def tiny_plm(agnews_small):
    """A tiny PLM domain-adapted to the small agnews bundle."""
    return get_pretrained_lm(target_corpus=agnews_small.train_corpus,
                             config=tiny_config(), seed=0)


@pytest.fixture(scope="session")
def tiny_electra(tiny_plm):
    return get_electra(tiny_plm)


@pytest.fixture(scope="session")
def tiny_relevance(tiny_plm):
    return get_relevance_model(tiny_plm, steps=60)


@pytest.fixture()
def rng():
    return np.random.default_rng(0)
