"""Taxogen subsystem: edge scoring, repair ops, perturbation recovery.

Repair semantics are exercised against a stub scorer with hand-built
affinities, so each op (prune / reparent / insert) is pinned to an
exact, fast scenario; the real PLM-backed scorer is covered end-to-end
by ``benchmarks/bench_taxogen.py`` and the T-TAXOGEN table.
"""

import numpy as np
import pytest

from repro.core.exceptions import (
    EdgeScoringError,
    RepairError,
    ReproError,
    TaxogenError,
)
from repro.core.types import Corpus, Document, LabelSet
from repro.taxogen import (
    EdgeScorer,
    TaxonomyRepairer,
    edge_recovery,
    perturb_dag,
    perturb_tree,
)
from repro.taxonomy.dag import LabelDAG
from repro.taxonomy.tree import ROOT, LabelTree

pytestmark = pytest.mark.multilabel


class StubScorer:
    """Fixed affinity grid standing in for the PLM-backed EdgeScorer."""

    def __init__(self, labels, affinities):
        self.labels = list(labels)
        index = {l: i for i, l in enumerate(self.labels)}
        self._matrix = np.zeros((len(labels), len(labels)))
        for (child, parent), value in affinities.items():
            self._matrix[index[child], index[parent]] = value

    def affinity_matrix(self):
        return self._matrix


def test_exception_hierarchy():
    assert issubclass(TaxogenError, ReproError)
    assert issubclass(EdgeScoringError, TaxogenError)
    assert issubclass(RepairError, TaxogenError)


# ---------------------------------------------------------------------------
# Repair ops against stub affinities
# ---------------------------------------------------------------------------

def test_reparent_moves_node_to_strong_parent():
    scorer = StubScorer(
        ["a", "b", "c"],
        {("b", "a"): 0.9, ("c", "a"): 0.2, ("c", "b"): 0.9})
    tree = LabelTree.from_edges([("a", "b"), ("a", "c")], top_level=["a"])
    repaired, plan = TaxonomyRepairer(scorer).repair_tree(tree)
    assert repaired.parent("c") == "b"
    assert plan.counts() == {"insert": 0, "reparent": 1, "prune": 0}
    (op,) = plan.ops
    assert (op.kind, op.node, op.parent, op.old_parent) == \
        ("reparent", "c", "b", "a")


def test_reparent_respects_margin_hysteresis():
    # The better parent exists but beats the current one by less than
    # the margin — repair must leave the edge alone.
    scorer = StubScorer(
        ["a", "b", "c"],
        {("b", "a"): 0.9, ("c", "a"): 0.80, ("c", "b"): 0.88})
    tree = LabelTree.from_edges([("a", "b"), ("a", "c")], top_level=["a"])
    repaired, plan = TaxonomyRepairer(scorer, margin=0.15).repair_tree(tree)
    assert repaired.parent("c") == "a"
    assert plan.ops == ()


def test_insert_attaches_missing_node_at_best_parent():
    scorer = StubScorer(
        ["a", "b", "c", "d"],
        {("b", "a"): 0.9, ("c", "a"): 0.9, ("d", "c"): 0.95})
    tree = LabelTree.from_edges([("a", "b"), ("a", "c")], top_level=["a"])
    repaired, plan = TaxonomyRepairer(scorer).repair_tree(tree)
    assert repaired.parent("d") == "c"
    assert plan.counts()["insert"] == 1


def test_insert_falls_back_to_root():
    # No candidate parent beats the ROOT prior: the orphan becomes a
    # new top-level node instead of attaching somewhere weak.
    scorer = StubScorer(
        ["a", "b", "x"],
        {("b", "a"): 0.9, ("x", "a"): 0.1, ("x", "b"): 0.1})
    tree = LabelTree.from_edges([("a", "b")], top_level=["a"])
    repaired, plan = TaxonomyRepairer(scorer).repair_tree(tree)
    assert repaired.parent("x") == ROOT
    assert any(op.kind == "insert" and op.parent == ROOT
               for op in plan.ops)


def test_prune_drops_weak_extra_parent_keeps_best():
    scorer = StubScorer(
        ["a", "b", "c"],
        {("b", "a"): 0.9, ("c", "a"): 0.9, ("c", "b"): 0.2})
    dag = LabelDAG([("a", "b"), ("a", "c"), ("b", "c")], top_level=["a"])
    repaired, plan = TaxonomyRepairer(scorer).repair_dag(dag)
    assert repaired.parents("c") == ["a"]
    prunes = [op for op in plan.ops if op.kind == "prune"]
    assert [(op.node, op.parent) for op in prunes] == [("c", "b")]


def test_repair_is_deterministic():
    scorer = StubScorer(
        ["a", "b", "c", "d"],
        {("b", "a"): 0.9, ("c", "a"): 0.2, ("c", "b"): 0.9,
         ("d", "c"): 0.95})
    tree = LabelTree.from_edges([("a", "b"), ("a", "c")], top_level=["a"])
    first = TaxonomyRepairer(scorer).repair_tree(tree)[1]
    second = TaxonomyRepairer(scorer).repair_tree(tree)[1]
    assert first == second


def test_repair_rejects_nodes_outside_universe():
    scorer = StubScorer(["a", "b"], {("b", "a"): 0.9})
    tree = LabelTree.from_edges([("a", "b"), ("a", "z")], top_level=["a"])
    with pytest.raises(RepairError, match="outside the scored label"):
        TaxonomyRepairer(scorer).repair_tree(tree)


# ---------------------------------------------------------------------------
# EdgeScorer plumbing with a fake relevance model
# ---------------------------------------------------------------------------

class FakeRelevance:
    """Relevance = fraction of the class-name tokens present in the doc."""

    def relevance_matrix(self, premises, hypothesis_names):
        grid = np.zeros((len(premises), len(hypothesis_names)))
        for i, tokens in enumerate(premises):
            bag = set(tokens)
            for j, name in enumerate(hypothesis_names):
                grid[i, j] = sum(t in bag for t in name) / len(name)
        return grid


def _tiny_setup():
    docs = [
        Document(doc_id="d0", text="", tokens=["animal", "cat", "fur"]),
        Document(doc_id="d1", text="", tokens=["animal", "dog", "bark"]),
        Document(doc_id="d2", text="", tokens=["cat", "whisker", "fur"]),
        Document(doc_id="d3", text="", tokens=["market", "price", "trade"]),
    ]
    labels = LabelSet(labels=("animal", "cat"),
                      names={"animal": "animal", "cat": "cat"})
    return Corpus(docs, name="tiny"), labels


def test_edge_scorer_matrix_shape_and_cache():
    corpus, labels = _tiny_setup()
    scorer = EdgeScorer(FakeRelevance(), corpus, labels, evidence_docs=2,
                        evidence_tokens=4)
    matrix = scorer.affinity_matrix()
    assert matrix.shape == (2, 2)
    assert np.all(np.diag(matrix) == 0.0)
    assert np.all((matrix >= 0.0) & (matrix <= 1.0))
    assert scorer.affinity_matrix() is matrix  # cached, not recomputed


def test_edge_scorer_evidence_contains_name_tokens():
    corpus, labels = _tiny_setup()
    scorer = EdgeScorer(FakeRelevance(), corpus, labels, evidence_docs=2,
                        evidence_tokens=4)
    lexicon = scorer.evidence("cat")
    assert "cat" in lexicon
    assert lexicon == sorted(lexicon)


def test_edge_scorer_typed_errors():
    corpus, labels = _tiny_setup()
    with pytest.raises(EdgeScoringError, match="non-empty"):
        EdgeScorer(FakeRelevance(), Corpus([], name="empty"), labels)
    scorer = EdgeScorer(FakeRelevance(), corpus, labels)
    with pytest.raises(EdgeScoringError, match="outside the scored"):
        scorer.evidence("nope")
    with pytest.raises(EdgeScoringError, match="outside the scored"):
        scorer.affinity("cat", "nope")


# ---------------------------------------------------------------------------
# Perturbation + recovery accounting
# ---------------------------------------------------------------------------

def _toy_dag():
    return LabelDAG(
        [("t1", "m1"), ("t1", "m2"), ("t2", "m3"),
         ("m1", "l1"), ("m1", "l2"), ("m2", "l3"),
         ("m3", "l4"), ("m2", "l4")],
        top_level=["t1", "t2"])


@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
def test_perturb_dag_valid_and_seed_deterministic(seed):
    dag = _toy_dag()
    damaged, perturbation = perturb_dag(dag, seed=seed, n_reparent=2,
                                        n_delete=1, n_spurious=1)
    again, perturbation2 = perturb_dag(dag, seed=seed, n_reparent=2,
                                       n_delete=1, n_spurious=1)
    assert perturbation == perturbation2
    assert sorted(damaged.nodes) == sorted(again.nodes)
    assert perturbation.n_edges == (len(perturbation.moved)
                                    + len(perturbation.deleted)
                                    + len(perturbation.spurious))
    assert perturbation.n_edges > 0
    # The perturbed graph is a valid DAG that actually differs.
    edges = {(p, c) for c in damaged.nodes for p in damaged.parents(c)}
    original = {(p, c) for c in dag.nodes for p in dag.parents(c)}
    assert edges != original


def test_perturb_tree_moves_outside_subtree():
    tree = LabelTree.from_edges(
        [("t1", "m1"), ("t1", "m2"), ("m1", "l1"), ("m2", "l2")],
        top_level=["t1"])
    damaged, perturbation = perturb_tree(tree, seed=3, n_reparent=2,
                                         n_delete=1)
    for node, true_parent, wrong_parent in perturbation.moved:
        assert damaged.parent(node) == wrong_parent
        assert wrong_parent != true_parent
    for victim, _parent in perturbation.deleted:
        assert victim not in damaged


def test_edge_recovery_bounds():
    dag = _toy_dag()
    damaged, perturbation = perturb_dag(dag, seed=2, n_reparent=2,
                                        n_delete=1, n_spurious=1)
    perfect = edge_recovery(perturbation, dag)
    assert perfect["recovered_fraction"] == 1.0
    assert perfect["edges_recovered"] == perfect["edges_perturbed"]
    none = edge_recovery(perturbation, damaged)
    assert none["recovered_fraction"] == 0.0
    assert none["edges_recovered"] == 0
