"""Tests + property tests for evaluation metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation.clustering import align_clusters, confusion_matrix, kmeans, purity
from repro.evaluation.metrics import accuracy, f1_scores, macro_f1, micro_f1, per_class_f1
from repro.evaluation.ranking import example_f1, ndcg_at_k, precision_at_k
from repro.evaluation.reporting import format_matrix, format_table
from repro.evaluation.significance import bootstrap_interval, paired_bootstrap_pvalue


def test_accuracy_and_micro():
    gold = ["a", "b", "a"]
    pred = ["a", "b", "b"]
    assert accuracy(gold, pred) == pytest.approx(2 / 3)
    assert micro_f1(gold, pred) == accuracy(gold, pred)


def test_metrics_validate_lengths():
    with pytest.raises(ValueError):
        accuracy(["a"], [])
    with pytest.raises(ValueError):
        accuracy([], [])


def test_per_class_f1_values():
    gold = ["a", "a", "b", "b"]
    pred = ["a", "b", "b", "b"]
    stats = per_class_f1(gold, pred)
    precision, recall, f1, support = stats["a"]
    assert precision == 1.0 and recall == 0.5 and support == 2
    assert f1 == pytest.approx(2 / 3)


def test_macro_f1_unweighted():
    gold = ["a"] * 9 + ["b"]
    pred = ["a"] * 10
    micro, macro = f1_scores(gold, pred)
    assert micro == 0.9
    assert macro < micro  # the empty class drags macro down


def test_macro_f1_with_explicit_labels():
    gold = ["a", "a"]
    pred = ["a", "a"]
    assert macro_f1(gold, pred, labels=["a", "never"]) == pytest.approx(0.5)


@given(st.lists(st.sampled_from("ab"), min_size=1, max_size=30))
@settings(max_examples=40, deadline=None)
def test_perfect_prediction_scores_one(labels):
    assert micro_f1(labels, labels) == 1.0
    assert macro_f1(labels, labels) == 1.0


def test_example_f1():
    gold = [{"a", "b"}, {"c"}]
    pred = [("a",), ("c",)]
    assert example_f1(gold, pred) == pytest.approx((2 / 3 + 1.0) / 2)


def test_example_f1_empty_sets_count_as_match():
    assert example_f1([set()], [()]) == 1.0


def test_precision_at_k():
    gold = [{"a"}, {"b", "c"}]
    rankings = [["a", "x", "y"], ["x", "b", "c"]]
    assert precision_at_k(gold, rankings, 1) == pytest.approx(0.5)
    assert precision_at_k(gold, rankings, 3) == pytest.approx((1 / 3 + 2 / 3) / 2)


def test_ndcg_perfect_ranking_is_one():
    gold = [{"a", "b"}]
    assert ndcg_at_k(gold, [["a", "b", "x"]], 3) == pytest.approx(1.0)


def test_ndcg_penalizes_late_hits():
    gold = [{"a"}]
    early = ndcg_at_k(gold, [["a", "x", "y"]], 3)
    late = ndcg_at_k(gold, [["x", "y", "a"]], 3)
    assert early > late > 0


def test_confusion_matrix_counts():
    matrix, labels = confusion_matrix(["a", "a", "b"], ["a", "b", "b"])
    assert labels == ["a", "b"]
    assert matrix[0, 0] == 1 and matrix[0, 1] == 1 and matrix[1, 1] == 1


def test_align_clusters_recovers_permutation():
    gold = ["x"] * 5 + ["y"] * 5
    clusters = [1] * 5 + [0] * 5
    mapping = align_clusters(gold, clusters)
    assert mapping == {1: "x", 0: "y"}


def test_purity_bounds():
    gold = ["x", "x", "y", "y"]
    assert purity(gold, [0, 0, 1, 1]) == 1.0
    assert purity(gold, [0, 1, 0, 1]) == 0.5


def test_kmeans_separates_blobs(rng):
    a = rng.normal(0, 0.1, size=(20, 2))
    b = rng.normal(5, 0.1, size=(20, 2))
    points = np.vstack([a, b])
    assignment = kmeans(points, 2, seed=0)
    assert len(set(assignment[:20])) == 1
    assert assignment[0] != assignment[-1]


def test_kmeans_rejects_k_too_large():
    with pytest.raises(ValueError):
        kmeans(np.zeros((2, 2)), 5)


def test_bootstrap_interval_contains_mean():
    scores = np.linspace(0, 1, 50)
    low, high = bootstrap_interval(scores, seed=0)
    assert low <= scores.mean() <= high


def test_bootstrap_interval_rejects_empty():
    with pytest.raises(ValueError):
        bootstrap_interval([])


def test_paired_bootstrap_detects_difference():
    a = np.full(100, 0.9)
    b = np.full(100, 0.5)
    assert paired_bootstrap_pvalue(a, b, seed=0) < 0.01
    assert paired_bootstrap_pvalue(b, a, seed=0) > 0.5


def test_paired_bootstrap_validates_shapes():
    with pytest.raises(ValueError):
        paired_bootstrap_pvalue([1.0], [1.0, 2.0])


def test_format_table_alignment():
    rows = [{"Method": "A", "F1": 0.5}, {"Method": "LongName", "F1": 0.25}]
    text = format_table(rows, title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "0.500" in text and "0.250" in text


def test_format_table_empty():
    assert format_table([], title="x") == "x"


def test_format_matrix():
    text = format_matrix(np.array([[2, 0], [1, 3]]), ["a", "b"], ["a", "b"])
    assert "2" in text and "3" in text
