"""Dtype-discipline lint for the training-path packages.

The compute engine is float32 by default, and a single bare
``np.zeros(...)`` / ``np.asarray(...)`` (numpy defaults to float64) or
``astype(float)`` on a hot path silently doubles the memory bandwidth of
every step that touches it. This tier-1 test walks the ASTs of
``repro.nn`` and ``repro.plm`` and fails on:

- array-constructor calls (``np.asarray``, ``np.array``, ``np.zeros``,
  ``np.ones``, ``np.empty``, ``np.full``) without an explicit ``dtype=``
  argument (the ``*_like`` constructors are dtype-preserving and exempt);
- ``.astype(float)`` / ``.astype("float")`` / ``.astype(np.float64)``
  casts, which always mean float64.

Intentional exceptions are declared in ``ALLOWLIST`` below as
``(filename, exact stripped source line)`` pairs — a waiver is visible in
the diff of this file, so silent float64 upcasts cannot regress
unreviewed.
"""

from __future__ import annotations

import ast
from pathlib import Path

import repro.nn
import repro.plm

BARE_CONSTRUCTORS = {"asarray", "array", "zeros", "ones", "empty", "full"}

#: (filename, stripped source line) pairs that may skip an explicit dtype.
#: Every entry must say why.
ALLOWLIST = {
    # Tensor.__init__'s float branch is the *definition* of dtype
    # preservation: it must not force a dtype.
    ("tensor.py", "self.data = np.asarray(data)  # dtype: preserve"),
    # Interior autograd accumulation keeps the dtype of the incoming
    # gradient (leaves cast to the parameter dtype on assignment).
    ("tensor.py", "grads[key] = np.asarray(pgrad)  # dtype: preserve"),
    # The plain-numpy input normalizer: preserving floats is its job.
    ("functional.py", "x = np.asarray(x)  # dtype: preserve"),
}


def _module_files(package) -> list:
    root = Path(package.__file__).resolve().parent
    return sorted(root.glob("*.py"))


def _is_np_attr(node: ast.AST, names: set) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and node.attr in names
        and isinstance(node.value, ast.Name)
        and node.value.id == "np"
    )


def _is_float64_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.Name) and node.id == "float":
        return True
    if isinstance(node, ast.Constant) and node.value in ("float", "float64"):
        return True
    return _is_np_attr(node, {"float64", "float_", "double"})


def _violations(path: Path) -> list:
    source = path.read_text()
    lines = source.splitlines()
    tree = ast.parse(source, filename=str(path))
    found = []

    def line_of(node: ast.Call) -> str:
        return lines[node.lineno - 1].strip()

    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if _is_np_attr(func, BARE_CONSTRUCTORS):
            has_dtype = any(kw.arg == "dtype" for kw in node.keywords)
            # np.asarray/np.array also accept dtype positionally (2nd arg).
            if func.attr in ("asarray", "array") and len(node.args) >= 2:
                has_dtype = True
            if not has_dtype and (path.name, line_of(node)) not in ALLOWLIST:
                found.append(
                    f"{path.name}:{node.lineno}: bare np.{func.attr} without "
                    f"dtype= — {line_of(node)}"
                )
        elif isinstance(func, ast.Attribute) and func.attr == "astype":
            if node.args and _is_float64_literal(node.args[0]):
                if (path.name, line_of(node)) not in ALLOWLIST:
                    found.append(
                        f"{path.name}:{node.lineno}: astype(float64) upcast "
                        f"— {line_of(node)}"
                    )
    return found


def test_no_silent_float64_in_training_packages():
    problems = []
    for package in (repro.nn, repro.plm):
        for path in _module_files(package):
            problems.extend(_violations(path))
    assert not problems, (
        "dtype-discipline violations (add an explicit dtype=, use a "
        "*_like constructor, or add a reviewed ALLOWLIST entry):\n"
        + "\n".join(problems)
    )


def test_allowlist_entries_still_exist():
    """Stale waivers must be pruned, not accumulate."""
    live = set()
    for package in (repro.nn, repro.plm):
        for path in _module_files(package):
            stripped = {line.strip() for line in path.read_text().splitlines()}
            for name, text in ALLOWLIST:
                if name == path.name and text in stripped:
                    live.add((name, text))
    assert live == ALLOWLIST, f"stale ALLOWLIST entries: {ALLOWLIST - live}"
