"""Tests for the synthetic dataset substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import (
    available_profiles,
    general_corpus,
    get_profile,
    load_profile,
)
from repro.datasets.generator import build_world, generate_documents
from repro.datasets.profiles import ClassSpec, DatasetProfile, MixtureSpec
from repro.datasets.sampling import UniformSampler, ZipfSampler
from repro.datasets.words import (
    AMBIGUOUS_WORDS,
    CURATED_LEXICONS,
    WordFactory,
    build_lexicon,
)


def test_word_factory_deterministic():
    a = WordFactory().words("topic", 5)
    b = WordFactory().words("topic", 5)
    assert a == b


def test_word_factory_no_collisions():
    factory = WordFactory()
    words = factory.words("x", 200) + factory.words("y", 200)
    assert len(set(words)) == 400


def test_build_lexicon_prefers_curated():
    lex = build_lexicon("sports", 20, WordFactory())
    assert lex[0] == "sports"
    assert len(lex) == 20


def test_build_lexicon_pads_unknown_theme():
    lex = build_lexicon("zzztheme", 10, WordFactory())
    assert len(lex) == 10
    assert len(set(lex)) == 10


def test_curated_lexicons_unique_first_words():
    firsts = [lex[0] for lex in CURATED_LEXICONS.values()]
    assert len(set(firsts)) == len(firsts)


def test_ambiguous_words_reference_known_themes():
    for word, a, b in AMBIGUOUS_WORDS:
        assert a in CURATED_LEXICONS and b in CURATED_LEXICONS


def test_zipf_sampler_rank_ordering(rng):
    sampler = ZipfSampler(["w0", "w1", "w2", "w3"], zipf=1.0)
    draws = sampler.sample(rng, 4000)
    counts = [draws.count(f"w{i}") for i in range(4)]
    assert counts[0] > counts[3]


def test_zipf_sampler_probability_lookup():
    sampler = ZipfSampler(["a", "b"])
    assert sampler.probability("a") > sampler.probability("b") > 0
    assert sampler.probability("zzz") == 0.0


def test_uniform_sampler(rng):
    sampler = UniformSampler(["x", "y"])
    draws = set(sampler.sample(rng, 100))
    assert draws == {"x", "y"}


@given(st.floats(min_value=0.1, max_value=2.0))
@settings(max_examples=20, deadline=None)
def test_zipf_sampler_distribution_normalized(zipf):
    sampler = ZipfSampler([f"w{i}" for i in range(10)], zipf=zipf)
    assert abs(sampler.probs.sum() - 1.0) < 1e-9


def _tiny_profile(**overrides):
    defaults = dict(
        name="tiny",
        classes=(ClassSpec(label="sports", theme="sports"),
                 ClassSpec(label="law", theme="law")),
        n_train=30, n_test=10, doc_len=(8, 16), lexicon_size=12,
    )
    defaults.update(overrides)
    return DatasetProfile(**defaults)


def test_generate_documents_labels_and_lengths(rng):
    world = build_world(_tiny_profile())
    docs = generate_documents(world, 30, rng, "t-")
    assert len(docs) == 30
    assert all(d.labels[0] in ("sports", "law") for d in docs)
    assert all(8 <= len(d.tokens) <= 16 + 2 for d in docs)  # + name injection


def test_generated_docs_use_class_lexicon(rng):
    world = build_world(_tiny_profile())
    docs = generate_documents(world, 60, rng, "t-")
    sports_words = set(world.lexicons["sports"])
    hits = [
        len(set(d.tokens) & sports_words)
        for d in docs
        if d.labels[0] == "sports"
    ]
    assert np.mean(hits) > 1.0


def test_ambiguous_word_appears_in_both_classes(rng):
    world = build_world(_tiny_profile())
    # "penalty"/"court" are shared between sports and law.
    assert set(world.ambiguous["sports"]) & set(world.ambiguous["law"])


def test_profile_validation_rejects_duplicates():
    with pytest.raises(ValueError):
        _tiny_profile(classes=(ClassSpec(label="x", theme="sports"),
                               ClassSpec(label="x", theme="law")))


def test_profile_scaled():
    profile = _tiny_profile().scaled(0.5)
    assert profile.n_train == 15


def test_generation_is_seed_deterministic():
    a = load_profile("agnews", seed=3, scale=0.1)
    b = load_profile("agnews", seed=3, scale=0.1)
    assert a.train_corpus.token_lists() == b.train_corpus.token_lists()


def test_generation_varies_with_seed():
    a = load_profile("agnews", seed=1, scale=0.1)
    b = load_profile("agnews", seed=2, scale=0.1)
    assert a.train_corpus.token_lists() != b.train_corpus.token_lists()


def test_catalog_profiles_all_load_metadata_free_stats():
    for name in available_profiles():
        profile = get_profile(name)
        assert profile.n_train > 0 and profile.n_test >= 0


def test_catalog_unknown_profile_raises():
    with pytest.raises(KeyError):
        get_profile("not-a-profile")


def test_tree_profile_has_tree(tree_small):
    assert tree_small.tree is not None
    assert set(tree_small.label_set) == set(tree_small.tree.leaves())


def test_dag_profile_labels_closed_upward(dag_small):
    dag = dag_small.dag
    for doc in dag_small.train_corpus[:40]:
        labels = set(doc.labels)
        assert dag.closure(labels) == labels


def test_metadata_profile_attaches_user_and_tags(meta_small):
    docs_with_user = [d for d in meta_small.train_corpus if "user" in d.metadata]
    assert len(docs_with_user) == len(meta_small.train_corpus)
    assert any(d.metadata.get("tags") for d in meta_small.train_corpus)


def test_metadata_user_correlates_with_class(meta_small):
    by_user: dict = {}
    for d in meta_small.train_corpus:
        by_user.setdefault(d.metadata["user"], []).append(d.labels[0])
    purities = [
        max(labels.count(l) for l in set(labels)) / len(labels)
        for labels in by_user.values()
        if len(labels) >= 3
    ]
    assert np.mean(purities) > 0.5


def test_biblio_profile_references_prefer_same_label(biblio_small):
    same, total = 0, 0
    for d in biblio_small.train_corpus:
        for ref in d.metadata.get("references", []):
            if ref in biblio_small.train_corpus:
                total += 1
                ref_doc = biblio_small.train_corpus.get(ref)
                if set(d.labels) & set(ref_doc.labels):
                    same += 1
    assert total > 0
    assert same / total > 0.5


def test_bundle_keywords_include_ambiguous(agnews_small):
    keywords = agnews_small.keywords(per_class=3, include_ambiguous=True)
    pooled = [w for ws in keywords.keywords.values() for w in ws]
    ambiguous = {w for ws in agnews_small.world.ambiguous.values() for w in ws}
    assert set(pooled) & ambiguous


def test_bundle_labeled_documents_counts(agnews_small):
    sup = agnews_small.labeled_documents(per_class=4, seed=0)
    for label in agnews_small.label_set:
        assert len(sup.for_label(label)) == 4
        for doc in sup.for_label(label):
            assert label in doc.metadata["core_labels"]


def test_bundle_stats_fields(agnews_small):
    stats = agnews_small.stats()
    assert stats["n_classes"] == 4
    assert stats["imbalance"] >= 1.0


def test_general_corpus_covers_curated_themes():
    corpus = general_corpus(seed=0, n_docs=200)
    vocab = {t for d in corpus for t in d.tokens}
    assert "sports" in vocab and "politics" in vocab
