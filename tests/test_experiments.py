"""Tests for the experiment harness: views, figures, registry, runner."""

import numpy as np
import pytest

from repro.core.registry import method_registry, summary_rows
from repro.experiments.figures import (
    domain_separation_ratio,
    pca_2d,
    render_pca_ascii,
)
from repro.experiments.runner import evaluate_flat, run_rows
from repro.experiments.views import coarse_view, dag_as_tree
from repro.taxonomy.tree import ROOT


def test_registry_contains_all_nine_methods():
    registry = method_registry()
    expected = {"WeSTClass", "ConWea", "LOTClass", "X-Class", "PromptClass",
                "WeSHClass", "TaxoClass", "MetaCat", "MICoL"}
    assert expected <= set(registry)


def test_summary_rows_match_tutorial_claims():
    rows = {r["Method"]: r for r in summary_rows()}
    assert rows["WeSTClass"]["Backbone"] == "embedding"
    assert rows["LOTClass"]["Supervision Format"] == "LabelNames"
    assert rows["TaxoClass"]["Single vs. Multi-label"] == "multi-label"
    assert rows["MICoL"]["Backbone"] == "pretrained-lm"
    assert rows["WeSHClass"]["Flat vs. Hierarchical"] == "hierarchical"


def test_coarse_view_relabels(tree_small):
    coarse = coarse_view(tree_small)
    assert set(coarse.label_set) == set(tree_small.tree.level(1))
    for doc in coarse.train_corpus[:20]:
        assert doc.labels[0] in coarse.label_set
    # Supervision constructors still work on the view.
    keywords = coarse.keywords()
    assert set(keywords.keywords) == set(coarse.label_set)
    sup = coarse.labeled_documents(2)
    assert all(len(sup.for_label(l)) == 2 for l in coarse.label_set)


def test_coarse_view_requires_tree(agnews_small):
    with pytest.raises(ValueError):
        coarse_view(agnews_small)


def test_dag_as_tree_single_parents(dag_small):
    tree = dag_as_tree(dag_small.dag)
    for node in tree.nodes:
        assert tree.parent(node) == ROOT or tree.parent(node) in tree.nodes


def test_pca_2d_shapes(rng):
    points = rng.normal(size=(30, 8))
    coords = pca_2d(points)
    assert coords.shape == (30, 2)


def test_domain_separation_ratio_orders_geometries(rng):
    tight = np.vstack([rng.normal(0, 0.1, size=(20, 2)),
                       rng.normal(5, 0.1, size=(20, 2))])
    loose = rng.normal(0, 1.0, size=(40, 2))
    labels = ["a"] * 20 + ["b"] * 20
    assert domain_separation_ratio(tight, labels) > domain_separation_ratio(
        loose, labels
    )


def test_render_pca_ascii(rng):
    coords = rng.normal(size=(10, 2))
    art = render_pca_ascii(coords, ["x"] * 5 + ["y"] * 5, width=20, height=8)
    assert "A=x" in art and "B=y" in art


def test_run_rows_reports_errors_as_dash(agnews_small):
    class Boom:
        def fit(self, *a):
            raise MemoryError

    def evaluate(clf, sup):
        clf.fit(None, None)
        return {}

    rows = run_rows([("boom", Boom, None)], evaluate)
    assert rows[0]["error"] == "-"


def test_evaluate_flat_metrics(agnews_small):
    from repro.baselines import IRWithTfidf

    metrics = evaluate_flat(IRWithTfidf(seed=0), agnews_small,
                            agnews_small.keywords())
    assert set(metrics) == {"micro_f1", "macro_f1"}
    assert 0.0 <= metrics["macro_f1"] <= 1.0
