"""Training-path compute-engine tests: gradcheck, fused kernels, dtype.

Three layers of guarantees for the float32 training engine:

1. **gradcheck** — every fused kernel's analytic backward matches float64
   central finite differences of its own forward;
2. **fused == composite** — the fused kernels agree with the composite
   autograd reference (forward values and input gradients) at float64;
3. **dtype discipline** — ops preserve float32 end-to-end, float32 and
   float64 training reach the same answers within tolerance, and a fixed
   seed + dtype yields bit-identical parameters and predictions.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.nn.functional as F
from repro.classifiers import BagOfEmbeddingsClassifier
from repro.nn.layers import LayerNorm
from repro.nn.losses import cross_entropy, soft_cross_entropy
from repro.nn.optim import SGD, Adam
from repro.nn.tensor import Tensor, default_dtype
from repro.text.vocabulary import Vocabulary

pytestmark = pytest.mark.training


@pytest.fixture(params=[True, False], ids=["fused", "composite"])
def fused(request):
    previous = F.set_fused(request.param)
    yield request.param
    F.set_fused(previous)


@pytest.fixture
def f64():
    with default_dtype("float64"):
        yield np.float64


def numeric_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central finite differences of scalar ``fn`` at float64 ``x``."""
    grad = np.zeros_like(x)
    flat_x, flat_g = x.ravel(), grad.ravel()
    for i in range(flat_x.size):
        saved = flat_x[i]
        flat_x[i] = saved + eps
        hi = fn(x)
        flat_x[i] = saved - eps
        lo = fn(x)
        flat_x[i] = saved
        flat_g[i] = (hi - lo) / (2.0 * eps)
    return grad


def analytic_grad(fn, x: np.ndarray) -> np.ndarray:
    t = Tensor(x, requires_grad=True)
    fn(t).backward()
    assert t.grad is not None
    return t.grad


def check_grad(fn, x: np.ndarray, atol: float = 1e-7):
    got = analytic_grad(fn, x)
    want = numeric_grad(lambda a: float(fn(Tensor(a)).data), x)
    np.testing.assert_allclose(got, want, atol=atol, rtol=1e-5)


@pytest.fixture
def rng64(f64):
    return np.random.default_rng(7)


def test_gradcheck_softmax(fused, rng64):
    x = rng64.normal(size=(3, 5))
    weights = rng64.normal(size=(3, 5))  # random scalarization
    check_grad(lambda t: (F.softmax(t, axis=-1) * Tensor(weights)).sum(), x)


def test_gradcheck_log_softmax(fused, rng64):
    x = rng64.normal(size=(4, 6))
    weights = rng64.normal(size=(4, 6))
    check_grad(lambda t: (F.log_softmax(t, axis=-1) * Tensor(weights)).sum(), x)


def test_gradcheck_masked_softmax(fused, rng64):
    x = rng64.normal(size=(2, 4, 4))
    mask = np.zeros((2, 1, 4), dtype=bool)
    mask[0, 0, 3] = True  # block one key column in the first batch row
    weights = rng64.normal(size=(2, 4, 4))
    # Blocked entries carry zero probability, so the scalarization only
    # sees the surviving entries — finite differences agree exactly.
    check_grad(
        lambda t: (F.masked_softmax(t, mask, axis=-1) * Tensor(weights)).sum(), x
    )


def test_gradcheck_layer_norm(fused, rng64):
    x = rng64.normal(size=(3, 8))
    gain = Tensor(rng64.normal(size=8) + 1.0, requires_grad=True)
    bias = Tensor(rng64.normal(size=8), requires_grad=True)
    weights = rng64.normal(size=(3, 8))

    def fn(t):
        return (F.layer_norm(t, gain, bias) * Tensor(weights)).sum()

    check_grad(fn, x, atol=1e-6)
    # gain / bias gradients against finite differences too.
    loss = fn(Tensor(x))
    gain.zero_grad()
    bias.zero_grad()
    loss.backward()
    want_gain = numeric_grad(
        lambda g: float(
            (F.layer_norm(Tensor(x), Tensor(g), bias) * Tensor(weights)).sum().data
        ),
        gain.data.copy(),
    )
    np.testing.assert_allclose(gain.grad, want_gain, atol=1e-6, rtol=1e-5)


def test_gradcheck_cross_entropy(fused, rng64):
    x = rng64.normal(size=(6, 5))
    targets = rng64.integers(0, 5, size=6)
    check_grad(lambda t: cross_entropy(t, targets), x)


def test_gradcheck_cross_entropy_ignore_index(fused, rng64):
    x = rng64.normal(size=(6, 5))
    targets = rng64.integers(0, 5, size=6)
    targets[::2] = -100
    check_grad(lambda t: cross_entropy(t, targets, ignore_index=-100), x)


def test_gradcheck_soft_cross_entropy(fused, rng64):
    x = rng64.normal(size=(5, 4))
    target = rng64.random((5, 4))
    target /= target.sum(axis=1, keepdims=True)
    check_grad(lambda t: soft_cross_entropy(t, target), x)


def test_gradcheck_soft_cross_entropy_weighted_rows(fused, rng64):
    # Self-training scales target rows by sample weights; rows then do
    # not sum to one and the gradient must track the row mass.
    x = rng64.normal(size=(5, 4))
    target = rng64.random((5, 4))
    target *= rng64.random((5, 1)) * 2.0
    check_grad(lambda t: soft_cross_entropy(t, target), x)


@pytest.mark.parametrize("fn_name", ["softmax", "log_softmax"])
def test_fused_matches_composite(f64, fn_name):
    rng = np.random.default_rng(3)
    x = rng.normal(size=(4, 7))
    weights = rng.normal(size=(4, 7))
    outs, grads = [], []
    for flag in (True, False):
        previous = F.set_fused(flag)
        try:
            t = Tensor(x, requires_grad=True)
            out = getattr(F, fn_name)(t, axis=-1)
            (out * Tensor(weights)).sum().backward()
            outs.append(out.data)
            grads.append(t.grad)
        finally:
            F.set_fused(previous)
    np.testing.assert_allclose(outs[0], outs[1], atol=1e-12)
    np.testing.assert_allclose(grads[0], grads[1], atol=1e-12)


def test_fused_losses_match_composite(f64):
    rng = np.random.default_rng(5)
    x = rng.normal(size=(8, 6))
    targets = rng.integers(0, 6, size=8)
    losses, grads = [], []
    for flag in (True, False):
        previous = F.set_fused(flag)
        try:
            t = Tensor(x, requires_grad=True)
            loss = cross_entropy(t, targets)
            loss.backward()
            losses.append(loss.item())
            grads.append(t.grad)
        finally:
            F.set_fused(previous)
    assert losses[0] == pytest.approx(losses[1], abs=1e-12)
    np.testing.assert_allclose(grads[0], grads[1], atol=1e-12)


def test_ops_preserve_float32(fused):
    x = Tensor(np.random.default_rng(0).normal(size=(3, 4)).astype(np.float32),
               requires_grad=True)
    gain = Tensor(np.ones(4, dtype=np.float32), requires_grad=True)
    bias = Tensor(np.zeros(4, dtype=np.float32), requires_grad=True)
    for out in (
        F.softmax(x),
        F.log_softmax(x),
        F.masked_softmax(x, np.zeros((3, 4), dtype=bool)),
        F.layer_norm(x, gain, bias),
        cross_entropy(x, np.array([0, 1, 2], dtype=np.int64)),
        soft_cross_entropy(x, np.full((3, 4), 0.25, dtype=np.float32)),
    ):
        assert out.dtype == np.float32, out
        out.sum().backward() if out.ndim else out.backward()
        assert x.grad is not None and x.grad.dtype == np.float32
        x.zero_grad()


def test_optimizer_steps_stay_float32():
    p = Tensor(np.ones(4, dtype=np.float32), requires_grad=True)
    for opt in (Adam([p], lr=1e-2, weight_decay=1e-2),
                SGD([p], lr=1e-2, momentum=0.9)):
        (p * p).sum().backward()
        opt.clip_grad_norm(1.0)
        opt.step()
        assert p.data.dtype == np.float32
        assert p.grad is not None and p.grad.dtype == np.float32
        opt.zero_grad()
        assert p.grad is None


def _fit_toy_classifier(seed=0):
    rng = np.random.default_rng(11)
    docs, targets = [], []
    for i in range(40):
        words = ["red", "crimson"] if i % 2 == 0 else ["blue", "azure"]
        docs.append([words[int(rng.integers(0, 2))] for _ in range(5)])
        targets.append(i % 2)
    vocab = Vocabulary.build(docs)
    model = BagOfEmbeddingsClassifier(vocab, 2, dim=12, seed=seed)
    model.fit(docs, np.array(targets), epochs=4)
    return model, docs


def test_float32_and_float64_fits_agree():
    with default_dtype("float32"):
        m32, docs = _fit_toy_classifier()
        p32 = m32.predict_proba(docs)
    with default_dtype("float64"):
        m64, _ = _fit_toy_classifier()
        p64 = m64.predict_proba(docs)
    assert p32.dtype == np.float32 and p64.dtype == np.float64
    np.testing.assert_allclose(p32, p64.astype(np.float32), atol=2e-3)
    assert (p32.argmax(axis=1) == p64.argmax(axis=1)).all()


def test_same_seed_same_dtype_is_bit_identical():
    m_a, docs = _fit_toy_classifier(seed=3)
    m_b, _ = _fit_toy_classifier(seed=3)
    for p_a, p_b in zip(m_a.parameters(), m_b.parameters()):
        assert np.array_equal(p_a.data, p_b.data)
    assert np.array_equal(m_a.predict_proba(docs), m_b.predict_proba(docs))
