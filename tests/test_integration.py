"""Integration tests: cross-module pipelines at miniature scale.

These exercise the same code paths as the benchmark harness, asserting
the qualitative *shapes* the paper reports (on small data, with lenient
margins).
"""

import numpy as np
import pytest

from repro.evaluation.metrics import micro_f1
from repro.evaluation.ranking import precision_at_k


def test_weak_methods_beat_ir_baseline(tiny_plm, agnews_small):
    """WeSTClass and X-Class should clear the retrieval baseline."""
    from repro.baselines import IRWithTfidf
    from repro.methods import WeSTClass, XClass

    gold = [d.labels[0] for d in agnews_small.test_corpus]
    ir = IRWithTfidf(seed=0)
    ir.fit(agnews_small.train_corpus, agnews_small.keywords())
    ir_score = micro_f1(gold, ir.predict(agnews_small.test_corpus))

    xclass = XClass(plm=tiny_plm, seed=0)
    xclass.fit(agnews_small.train_corpus, agnews_small.label_names())
    x_score = micro_f1(gold, xclass.predict(agnews_small.test_corpus))
    assert x_score > ir_score - 0.05


def test_supervised_bounds_weakly_supervised(tiny_plm, agnews_small):
    from repro.baselines import SupervisedBERT
    from repro.methods import XClass

    gold = [d.labels[0] for d in agnews_small.test_corpus]
    supervised = SupervisedBERT(plm=tiny_plm, seed=0)
    supervised.fit(agnews_small.train_corpus, agnews_small.label_names())
    sup_score = micro_f1(gold, supervised.predict(agnews_small.test_corpus))

    weak = XClass(plm=tiny_plm, seed=0)
    weak.fit(agnews_small.train_corpus, agnews_small.label_names())
    weak_score = micro_f1(gold, weak.predict(agnews_small.test_corpus))
    assert sup_score >= weak_score - 0.1


def test_contextualization_helps_with_ambiguous_seeds(tiny_plm, agnews_small):
    """ConWea vs ConWea-NoCon on seeds containing ambiguous words."""
    from repro.methods import ConWea

    gold = [d.labels[0] for d in agnews_small.test_corpus]
    keywords = agnews_small.keywords(include_ambiguous=True)
    with_ctx = ConWea(plm=tiny_plm, iterations=1, epochs=6, seed=0)
    with_ctx.fit(agnews_small.train_corpus, keywords)
    no_ctx = ConWea(plm=tiny_plm, contextualize=False, iterations=1, epochs=6,
                    seed=0)
    no_ctx.fit(agnews_small.train_corpus, keywords)
    score_ctx = micro_f1(gold, with_ctx.predict(agnews_small.test_corpus))
    score_plain = micro_f1(gold, no_ctx.predict(agnews_small.test_corpus))
    assert score_ctx >= score_plain - 0.1


def test_weshclass_self_training_helps(tree_small):
    from repro.methods import WeSHClass

    gold = [d.labels[0] for d in tree_small.test_corpus]
    kwargs = dict(pseudo_per_class=15, pretrain_epochs=4, seed=0)
    full = WeSHClass(tree=tree_small.tree, self_train_rounds=2, **kwargs)
    full.fit(tree_small.train_corpus, tree_small.keywords())
    no_st = WeSHClass(tree=tree_small.tree, self_train=False, **kwargs)
    no_st.fit(tree_small.train_corpus, tree_small.keywords())
    full_score = micro_f1(gold, full.predict(tree_small.test_corpus))
    no_st_score = micro_f1(gold, no_st.predict(tree_small.test_corpus))
    assert full_score >= no_st_score - 0.05


def test_taxoclass_beats_hier_zero_shot(dag_small):
    from repro.baselines import HierZeroShotTC
    from repro.methods import TaxoClass
    from repro.plm.config import tiny_config
    from repro.plm.provider import get_pretrained_lm

    plm = get_pretrained_lm(target_corpus=dag_small.train_corpus,
                            config=tiny_config(), seed=0)
    gold = [set(d.labels) for d in dag_small.test_corpus]
    taxo = TaxoClass(dag=dag_small.dag, plm=plm, rounds=1, seed=0)
    taxo.fit(dag_small.train_corpus, dag_small.label_names())
    zero = HierZeroShotTC(dag=dag_small.dag, plm=plm, seed=0)
    zero.fit(dag_small.train_corpus, dag_small.label_names())
    taxo_p1 = precision_at_k(gold, taxo.rank(dag_small.test_corpus), 1)
    zero_p1 = precision_at_k(gold, zero.rank(dag_small.test_corpus), 1)
    assert taxo_p1 >= zero_p1 - 0.05


def test_micol_beats_doc2vec(biblio_small):
    from repro.baselines import Doc2VecRanker
    from repro.methods import MICoL
    from repro.plm.config import tiny_config
    from repro.plm.provider import get_pretrained_lm

    plm = get_pretrained_lm(target_corpus=biblio_small.train_corpus,
                            config=tiny_config(), seed=0)
    gold = [set(d.labels) for d in biblio_small.test_corpus]
    micol = MICoL(plm=plm, encoder="cross", n_pairs=100, seed=0)
    micol.fit(biblio_small.train_corpus, biblio_small.label_names())
    doc2vec = Doc2VecRanker(dim=24, seed=0)
    doc2vec.fit(biblio_small.train_corpus, biblio_small.label_names())
    micol_p1 = precision_at_k(gold, micol.rank(biblio_small.test_corpus), 1)
    d2v_p1 = precision_at_k(gold, doc2vec.rank(biblio_small.test_corpus), 1)
    assert micol_p1 > d2v_p1


def test_prompt_zero_shot_to_cotraining_pipeline(tiny_plm, agnews_small):
    from repro.methods import PromptClass

    clf = PromptClass(plm=tiny_plm, rounds=2, seed=0)
    clf.fit(agnews_small.train_corpus, agnews_small.label_names())
    gold = [d.labels[0] for d in agnews_small.test_corpus]
    assert micro_f1(gold, clf.predict(agnews_small.test_corpus)) > 0.5


def test_lotclass_prediction_demo_rows(tiny_plm, agnews_small):
    """The Table-1 style demonstration produces context-dependent rows."""
    word = "goal"
    contexts = {}
    for doc in agnews_small.train_corpus:
        label = doc.labels[0]
        if label in ("sports", "business") and word in doc.tokens[:20]:
            contexts.setdefault(label, doc.tokens[:24])
    if len(contexts) < 2:
        pytest.skip("ambiguous word did not occur in both topics")
    predictions = {}
    for label, tokens in contexts.items():
        position = tokens.index(word)
        predictions[label] = [w for w, _ in tiny_plm.predict_masked(
            tokens, position, top_k=10)]
    assert predictions["sports"] != predictions["business"]
