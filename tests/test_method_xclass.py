"""Tests for X-Class: representations, alignment, variants."""

import numpy as np
import pytest

from repro.evaluation.metrics import micro_f1
from repro.methods.xclass import XClass
from repro.methods.xclass.alignment import AlignedGaussianMixture
from repro.methods.xclass.representations import (
    class_oriented_doc_representations,
    class_representations,
    contextual_word_table,
)


def test_contextual_word_table_counts(tiny_plm, agnews_small):
    table, counts = contextual_word_table(tiny_plm, agnews_small.train_corpus)
    assert table.shape == (len(tiny_plm.vocabulary), tiny_plm.dim)
    assert counts[tiny_plm.vocabulary.id("sports")] > 0
    zero_rows = counts == 0
    assert np.allclose(table[zero_rows], 0.0)


def test_class_representations_distinct(tiny_plm, agnews_small):
    reps = class_representations(tiny_plm, agnews_small.train_corpus,
                                 agnews_small.label_set)
    assert reps.shape[0] == len(agnews_small.label_set)
    gram = reps @ reps.T
    off_diagonal = gram[~np.eye(len(gram), dtype=bool)]
    assert off_diagonal.max() < 0.99


def test_doc_representations_align_with_class(tiny_plm, agnews_small):
    reps = class_representations(tiny_plm, agnews_small.train_corpus,
                                 agnews_small.label_set)
    docs = class_oriented_doc_representations(
        tiny_plm, agnews_small.train_corpus[:60], reps
    )
    labels = list(agnews_small.label_set)
    gold = [d.labels[0] for d in agnews_small.train_corpus[:60]]
    predicted = [labels[int(i)] for i in (docs @ reps.T).argmax(axis=1)]
    assert micro_f1(gold, predicted) > 0.5


def test_aligned_gmm_keeps_component_identity(rng):
    a = rng.normal(0, 0.2, size=(30, 3))
    b = rng.normal(3, 0.2, size=(30, 3))
    points = np.vstack([a, b])
    init = np.array([0] * 30 + [1] * 30)
    mixture = AlignedGaussianMixture(2).fit(points, init)
    posterior = mixture.posterior(points)
    assert (posterior[:30].argmax(axis=1) == 0).mean() > 0.9
    assert (posterior[30:].argmax(axis=1) == 1).mean() > 0.9


def test_xclass_variants_ordering_loose(tiny_plm, agnews_small):
    gold = [d.labels[0] for d in agnews_small.test_corpus]
    scores = {}
    for variant in ("rep", "align", "full"):
        clf = XClass(plm=tiny_plm, variant=variant, seed=0)
        clf.fit(agnews_small.train_corpus, agnews_small.label_names())
        scores[variant] = micro_f1(gold, clf.predict(agnews_small.test_corpus))
    assert all(s > 0.4 for s in scores.values())
    # The full pipeline should not be dramatically worse than raw reps.
    assert scores["full"] >= scores["rep"] - 0.1


def test_xclass_rejects_unknown_variant():
    with pytest.raises(ValueError):
        XClass(variant="nope")


def test_xclass_rejects_keywords(tiny_plm, agnews_small):
    from repro.core.exceptions import SupervisionError

    with pytest.raises(SupervisionError):
        XClass(plm=tiny_plm, seed=0).fit(agnews_small.train_corpus,
                                         agnews_small.keywords())
