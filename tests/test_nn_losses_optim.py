"""Tests for losses and optimizers."""

import numpy as np
import pytest

from repro.nn.layers import Linear
from repro.nn.losses import (
    binary_cross_entropy_with_logits,
    cross_entropy,
    info_nce,
    kl_divergence_with_logits,
    margin_ranking_loss,
    soft_cross_entropy,
)
from repro.nn.optim import SGD, Adam
from repro.nn.tensor import Tensor


def test_cross_entropy_perfect_prediction_near_zero():
    logits = Tensor(np.array([[10.0, -10.0], [-10.0, 10.0]]))
    loss = cross_entropy(logits, np.array([0, 1]))
    assert loss.item() < 1e-4


def test_cross_entropy_ignore_index():
    logits = Tensor(np.array([[0.0, 100.0], [5.0, 0.0]]))
    loss = cross_entropy(logits, np.array([0, -100]), ignore_index=-100)
    assert loss.item() > 10  # only the wrong first row counts


def test_cross_entropy_all_ignored_is_zero():
    logits = Tensor(np.zeros((2, 3)))
    loss = cross_entropy(logits, np.array([-100, -100]), ignore_index=-100)
    assert loss.item() == 0.0


def test_soft_cross_entropy_matches_hard_on_onehot():
    rng = np.random.default_rng(0)
    logits_data = rng.normal(size=(4, 3))
    targets = np.array([0, 2, 1, 1])
    onehot = np.eye(3)[targets]
    hard = cross_entropy(Tensor(logits_data), targets).item()
    soft = soft_cross_entropy(Tensor(logits_data), onehot).item()
    assert abs(hard - soft) < 1e-10


def test_kl_divergence_zero_when_matching():
    probs = np.array([[0.7, 0.3], [0.2, 0.8]])
    logits = Tensor(np.log(probs))
    assert abs(kl_divergence_with_logits(logits, probs).item()) < 1e-9


def test_bce_with_logits_stable_for_large_inputs():
    logits = Tensor(np.array([100.0, -100.0]))
    loss = binary_cross_entropy_with_logits(logits, np.array([1.0, 0.0]))
    assert np.isfinite(loss.item()) and loss.item() < 1e-6


def test_bce_weights_zero_out_entries():
    logits = Tensor(np.array([5.0, -5.0]))
    weighted = binary_cross_entropy_with_logits(
        logits, np.array([0.0, 0.0]), weights=np.array([0.0, 1.0])
    )
    assert weighted.item() < 1e-2  # only the already-correct entry counts


def test_margin_ranking_loss_zero_when_separated():
    pos = Tensor(np.array([2.0, 2.0]))
    neg = Tensor(np.array([0.0, 0.0]))
    assert margin_ranking_loss(pos, neg, margin=0.5).item() == 0.0


def test_info_nce_prefers_diagonal():
    good = Tensor(np.eye(4) * 10.0)
    bad = Tensor(np.ones((4, 4)))
    assert info_nce(good).item() < info_nce(bad).item()


def _train(optimizer_cls, **kwargs):
    rng = np.random.default_rng(0)
    x = rng.normal(size=(64, 3))
    w_true = np.array([[1.0], [-2.0], [0.5]])
    y = (x @ w_true).ravel() + 0.01 * rng.normal(size=64)
    layer = Linear(3, 1, rng)
    opt = optimizer_cls(layer.parameters(), **kwargs)
    for _ in range(300):
        pred = layer(Tensor(x)).reshape(-1)
        loss = ((pred - Tensor(y)) ** 2).mean()
        opt.zero_grad()
        loss.backward()
        opt.step()
    return np.abs(layer.weight.data.ravel() - w_true.ravel()).max()


def test_sgd_converges_on_linear_regression():
    assert _train(SGD, lr=0.05) < 0.05


def test_sgd_momentum_converges():
    assert _train(SGD, lr=0.02, momentum=0.9) < 0.05


def test_adam_converges_on_linear_regression():
    assert _train(Adam, lr=0.05) < 0.05


def test_clip_grad_norm():
    p = Tensor(np.zeros(4), requires_grad=True)
    p.grad = np.full(4, 10.0)
    opt = SGD([p], lr=0.1)
    norm = opt.clip_grad_norm(1.0)
    assert norm == pytest.approx(20.0)
    assert np.linalg.norm(p.grad) == pytest.approx(1.0)
