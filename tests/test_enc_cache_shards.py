"""Encode-cache tiers: memory accounting boundary and mmap shards.

Memory tier: ``max_bytes`` is a hard ceiling — boundary inserts are
admitted exactly up to the budget, never-fitting inserts are declined
without evicting what already fits. Shard tier: documents stream to
flat mmap shards with a JSON offset index, read back bit-identically
(including by fresh cache instances and concurrent readers) as
zero-copy memmap views that never re-enter the memory tier.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
from pathlib import Path

import numpy as np
import pytest

from repro.core.enc_cache import EncodeCache, doc_key

pytestmark = pytest.mark.engine

SRC = Path(__file__).resolve().parent.parent / "src"


def _doc(rng, tokens: int, dim: int = 8) -> np.ndarray:
    return rng.standard_normal((tokens, dim)).astype(np.float32)


# ---------------------------------------------------------------------------
# Memory-tier accounting
# ---------------------------------------------------------------------------

def test_insert_exactly_at_budget_is_admitted():
    cache = EncodeCache(max_bytes=128)
    value = np.zeros(32, dtype=np.float32)  # exactly 128 bytes
    cache.put("ns", "a", value)
    assert cache.nbytes == 128 and len(cache) == 1
    assert cache.evictions == 0


def test_never_fitting_insert_is_declined_not_churned():
    cache = EncodeCache(max_bytes=128)
    cache.put("ns", "keep", np.zeros(16, dtype=np.float32))  # 64 bytes
    cache.put("ns", "huge", np.zeros(64, dtype=np.float32))  # 256 bytes
    # The oversized value is declined outright; the resident entry and
    # its accounting are untouched (no evict-everything-then-fail churn).
    assert cache.get("ns", "keep") is not None
    assert cache.get("ns", "huge") is None
    assert cache.nbytes == 64
    assert cache.evictions == 1  # the declined insert is counted


def test_lru_eviction_keeps_bytes_under_budget(rng):
    cache = EncodeCache(max_bytes=256)
    for i in range(8):
        cache.put("ns", f"doc{i}", np.zeros(16, dtype=np.float32))  # 64 each
        assert cache.nbytes <= 256
    assert len(cache) == 4  # the 4 most recent fit
    assert cache.get("ns", "doc0") is None
    assert cache.get("ns", "doc7") is not None


def test_replacing_an_entry_does_not_double_count():
    cache = EncodeCache(max_bytes=256)
    cache.put("ns", "a", np.zeros(16, dtype=np.float32))
    cache.put("ns", "a", np.zeros(32, dtype=np.float32))
    assert cache.nbytes == 128 and len(cache) == 1


# ---------------------------------------------------------------------------
# Shard tier
# ---------------------------------------------------------------------------

def test_shards_round_trip_bit_identical(tmp_path, rng):
    writer = EncodeCache(max_bytes=1 << 20, disk_dir=tmp_path, shard_docs=4)
    docs = {f"doc{i}": _doc(rng, tokens=3 + i) for i in range(10)}
    for key, value in docs.items():
        writer.put("ns", key, value)
    writer.flush_shards()

    shard_files = sorted(tmp_path.rglob("shard_*.npy"))
    index_files = sorted(tmp_path.rglob("shard_*.idx.json"))
    assert len(shard_files) == 3 and len(index_files) == 3
    for idx in index_files:
        payload = json.loads(idx.read_text())
        assert payload["dtype"] == "float32"

    # A fresh instance (fresh process stand-in) reads everything back
    # bit-identically as zero-copy memmap views, not memory-tier copies.
    reader = EncodeCache(max_bytes=1 << 20, disk_dir=tmp_path, shard_docs=4)
    for key, value in docs.items():
        got = reader.get("ns", key)
        assert isinstance(got, np.memmap)
        np.testing.assert_array_equal(got, value)
    assert reader.shard_hits == len(docs)
    assert reader.nbytes == 0, "shard hits must not promote into memory"


def test_shard_hits_bypass_memory_tier(tmp_path, rng):
    cache = EncodeCache(max_bytes=64, disk_dir=tmp_path, shard_docs=2)
    big = _doc(rng, tokens=16)  # 512 bytes: never fits in memory
    cache.put("ns", "big0", big)
    cache.put("ns", "big1", big)
    assert cache.nbytes == 0
    got = cache.get("ns", "big0")
    np.testing.assert_array_equal(got, big)
    assert cache.shard_hits == 1 and cache.nbytes == 0


def test_pending_docs_surface_after_flush(tmp_path, rng):
    cache = EncodeCache(max_bytes=0, disk_dir=tmp_path, shard_docs=100)
    value = _doc(rng, tokens=4)
    cache.put("ns", "pending", value)
    assert not list(tmp_path.rglob("shard_*.npy"))
    cache.flush_shards()
    reader = EncodeCache(max_bytes=0, disk_dir=tmp_path, shard_docs=100)
    np.testing.assert_array_equal(reader.get("ns", "pending"), value)


def test_reader_discovers_other_writers_shards(tmp_path, rng):
    """A long-lived cache lazily folds in shards written by workers."""
    reader = EncodeCache(max_bytes=1 << 20, disk_dir=tmp_path, shard_docs=2)
    assert reader.get("ns", "w0") is None  # nothing yet

    script = (
        "import sys\n"
        "import numpy as np\n"
        "from repro.core.enc_cache import EncodeCache\n"
        "cache = EncodeCache(max_bytes=1 << 20, disk_dir=sys.argv[1],\n"
        "                    shard_docs=2)\n"
        "rng = np.random.default_rng(7)\n"
        "for i in range(4):\n"
        "    cache.put('ns', f'w{i}',\n"
        "              rng.standard_normal((5, 8)).astype(np.float32))\n"
        "cache.flush_shards()\n"
    )
    result = subprocess.run(
        [sys.executable, "-c", script, str(tmp_path)],
        capture_output=True, text=True, timeout=120,
        env={**os.environ,
             "PYTHONPATH": str(SRC) + os.pathsep + os.environ.get("PYTHONPATH", "")},
    )
    assert result.returncode == 0, result.stderr

    rng7 = np.random.default_rng(7)
    expected = [rng7.standard_normal((5, 8)).astype(np.float32)
                for _ in range(4)]
    for i in range(4):
        np.testing.assert_array_equal(reader.get("ns", f"w{i}"), expected[i])


def test_concurrent_shard_reads_are_consistent(tmp_path, rng):
    writer = EncodeCache(max_bytes=1 << 20, disk_dir=tmp_path, shard_docs=8)
    docs = {f"doc{i}": _doc(rng, tokens=4 + (i % 5)) for i in range(32)}
    for key, value in docs.items():
        writer.put("ns", key, value)
    writer.flush_shards()

    reader = EncodeCache(max_bytes=1 << 20, disk_dir=tmp_path, shard_docs=8)
    errors = []

    def hammer():
        try:
            for _ in range(20):
                for key, value in docs.items():
                    np.testing.assert_array_equal(reader.get("ns", key), value)
        except Exception as exc:  # propagated to the main thread below
            errors.append(exc)

    threads = [threading.Thread(target=hammer) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors


def test_corrupt_shard_is_forgotten_not_fatal(tmp_path, rng):
    writer = EncodeCache(max_bytes=1 << 20, disk_dir=tmp_path, shard_docs=2)
    value = _doc(rng, tokens=4)
    writer.put("ns", "a", value)
    writer.put("ns", "b", value)
    reader = EncodeCache(max_bytes=1 << 20, disk_dir=tmp_path, shard_docs=2)
    for shard in tmp_path.rglob("shard_*.npy"):
        shard.unlink()  # index survives, data is gone
    assert reader.get("ns", "a") is None  # miss, no exception
    assert reader.misses == 1


def test_shard_rescan_memoized_while_directory_unchanged(tmp_path, rng):
    writer = EncodeCache(max_bytes=1 << 20, disk_dir=tmp_path, shard_docs=2)
    value = _doc(rng, tokens=4)
    writer.put("ns", "a", value)
    writer.flush_shards()

    reader = EncodeCache(max_bytes=1 << 20, disk_dir=tmp_path, shard_docs=2)
    np.testing.assert_array_equal(reader.get("ns", "a"), value)
    assert reader.rescans == 1  # first miss in the tier pays one scan
    # Repeated misses with an untouched directory are one stat() each,
    # not a re-glob: the rescan counter must not move.
    assert reader.get("ns", "absent0") is None
    assert reader.get("ns", "absent1") is None
    assert reader.rescans == 1
    assert reader.stats()["rescans"] == 1


def test_directory_mtime_change_triggers_exactly_one_rescan(tmp_path, rng):
    writer = EncodeCache(max_bytes=1 << 20, disk_dir=tmp_path, shard_docs=2)
    first = _doc(rng, tokens=4)
    writer.put("ns", "a", first)
    writer.flush_shards()
    reader = EncodeCache(max_bytes=1 << 20, disk_dir=tmp_path, shard_docs=2)
    np.testing.assert_array_equal(reader.get("ns", "a"), first)
    assert reader.rescans == 1

    late = _doc(rng, tokens=6)
    writer.put("ns", "late0", late)
    writer.put("ns", "late1", late)
    # Writing the shard touches the namespace dir; bump the mtime
    # explicitly so the test does not depend on filesystem timestamp
    # granularity.
    directory = tmp_path / "ns"
    stat = os.stat(directory)
    os.utime(directory, ns=(stat.st_atime_ns, stat.st_mtime_ns + 1))

    np.testing.assert_array_equal(reader.get("ns", "late0"), late)
    assert reader.rescans == 2
    # The fresh scan re-memoizes: further misses stay scan-free.
    assert reader.get("ns", "absent") is None
    assert reader.rescans == 2


def test_missing_namespace_directory_records_no_memo(tmp_path, rng):
    reader = EncodeCache(max_bytes=1 << 20, disk_dir=tmp_path, shard_docs=2)
    assert reader.get("ns", "w0") is None  # no directory yet: no scan
    assert reader.rescans == 0

    writer = EncodeCache(max_bytes=1 << 20, disk_dir=tmp_path, shard_docs=2)
    value = _doc(rng, tokens=4)
    writer.put("ns", "w0", value)
    writer.put("ns", "w1", value)
    np.testing.assert_array_equal(reader.get("ns", "w0"), value)
    assert reader.rescans == 1


def test_vanished_shard_invalidates_rescan_memo(tmp_path, rng):
    writer = EncodeCache(max_bytes=1 << 20, disk_dir=tmp_path, shard_docs=2)
    value = _doc(rng, tokens=4)
    writer.put("ns", "a", value)
    writer.put("ns", "b", value)
    reader = EncodeCache(max_bytes=1 << 20, disk_dir=tmp_path, shard_docs=2)
    # A plain miss folds the index and memoizes the directory state
    # without opening the shard's mmap (an open mmap would outlive the
    # unlink below).
    assert reader.get("ns", "zzz") is None
    assert reader.rescans == 1

    for shard in (tmp_path / "ns").rglob("shard_*.npy"):
        shard.unlink()
    assert reader.get("ns", "a") is None  # unreadable: forgotten, memo dropped

    # A replacement shard reusing the SAME file name (same pid, reset
    # sequence) must be re-folded: the error path discards the matching
    # .idx.json from the scanned set and drops the directory memo.
    writer2 = EncodeCache(max_bytes=1 << 20, disk_dir=tmp_path, shard_docs=2)
    writer2.put("ns", "c", value)
    writer2.put("ns", "d", value)
    np.testing.assert_array_equal(reader.get("ns", "c"), value)
    assert reader.rescans == 2


def test_doc_key_stable_across_dtypes():
    ids32 = np.asarray([1, 2, 3], dtype=np.int32)
    ids64 = np.asarray([1, 2, 3], dtype=np.int64)
    assert doc_key(ids32) == doc_key(ids64)
