"""Tests for MICoL: encoders, meta-path pairs, zero-shot ranking."""

import numpy as np
import pytest

from repro.evaluation.ranking import precision_at_k
from repro.methods.micol import MICoL
from repro.methods.micol.encoders import BiEncoder, CrossEncoder
from repro.plm.config import tiny_config
from repro.plm.provider import get_pretrained_lm


@pytest.fixture(scope="module")
def biblio_plm(biblio_small):
    return get_pretrained_lm(target_corpus=biblio_small.train_corpus,
                             config=tiny_config(), seed=0)


def test_bi_encoder_near_identity_start(rng):
    enc = BiEncoder(8, seed=0)
    x = rng.normal(size=(4, 8))
    encoded = enc.encode(x)
    normalized = x / np.linalg.norm(x, axis=1, keepdims=True)
    assert np.abs(encoded - normalized).max() < 0.2


def test_bi_encoder_contrastive_pulls_pairs_together(rng):
    anchors = rng.normal(size=(40, 8))
    positives = anchors + 0.1 * rng.normal(size=(40, 8))
    enc = BiEncoder(8, seed=0)
    enc.train_contrastive(anchors, positives, epochs=5, lr=1e-3, seed=0)
    z_a = enc.encode(anchors)
    z_p = enc.encode(positives)
    assert float((z_a * z_p).sum(axis=1).mean()) > 0.9


def test_cross_encoder_scores_unit_interval(rng):
    enc = CrossEncoder(8, seed=0)
    a = rng.normal(size=(5, 8))
    b = rng.normal(size=(5, 8))
    scores = enc.score(a, b)
    assert ((scores >= 0) & (scores <= 1)).all()


def test_cross_encoder_training_separates(rng):
    base = rng.normal(size=(60, 8))
    anchors = base / np.linalg.norm(base, axis=1, keepdims=True)
    positives = anchors + 0.05 * rng.normal(size=(60, 8))
    positives /= np.linalg.norm(positives, axis=1, keepdims=True)
    enc = CrossEncoder(8, seed=0)
    enc.train_pairs(anchors, positives, epochs=8, seed=0)
    pos_scores = enc.score(anchors, positives)
    neg_scores = enc.score(anchors, positives[::-1])
    assert pos_scores.mean() > neg_scores.mean()


@pytest.mark.parametrize("encoder", ["bi", "cross"])
def test_micol_end_to_end(biblio_small, biblio_plm, encoder):
    clf = MICoL(plm=biblio_plm, encoder=encoder, n_pairs=80, seed=0)
    clf.fit(biblio_small.train_corpus, biblio_small.label_names())
    gold = [set(d.labels) for d in biblio_small.test_corpus]
    ranking = clf.rank(biblio_small.test_corpus)
    chance = np.mean([len(g) for g in gold]) / len(biblio_small.label_set)
    assert precision_at_k(gold, ranking, 1) > chance


def test_micol_no_finetune_variant(biblio_small, biblio_plm):
    clf = MICoL(plm=biblio_plm, fine_tune=False, seed=0)
    clf.fit(biblio_small.train_corpus, biblio_small.label_names())
    assert clf._bi is None and clf._cross is None
    scores = clf.score(biblio_small.test_corpus)
    assert scores.shape == (len(biblio_small.test_corpus),
                            len(biblio_small.label_set))


def test_micol_rejects_unknown_encoder():
    with pytest.raises(ValueError):
        MICoL(encoder="tri")


def test_micol_rank_orders_all_labels(biblio_small, biblio_plm):
    clf = MICoL(plm=biblio_plm, fine_tune=False, seed=0)
    clf.fit(biblio_small.train_corpus, biblio_small.label_names())
    ranking = clf.rank(biblio_small.test_corpus[:3])
    for row in ranking:
        assert sorted(row) == sorted(biblio_small.label_set.labels)
