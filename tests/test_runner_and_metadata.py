"""Tests for the experiment runner helpers and metadata generation detail."""

import numpy as np
import pytest

from repro.experiments.runner import evaluate_multilabel, gold_sets, gold_single


def test_gold_helpers(agnews_small, dag_small):
    singles = gold_single(agnews_small.test_corpus)
    assert all(isinstance(label, str) for label in singles)
    sets_ = gold_sets(dag_small.test_corpus)
    assert all(isinstance(s, set) and s for s in sets_)


def test_evaluate_multilabel_keys(biblio_small):
    from repro.baselines import Doc2VecRanker

    metrics = evaluate_multilabel(Doc2VecRanker(dim=16, seed=0), biblio_small,
                                  biblio_small.label_names(), ks=(1, 3))
    assert set(metrics) == {"example_f1", "p@1", "p@3", "ndcg@3"}
    assert all(0.0 <= v <= 1.0 for v in metrics.values())


def test_metadata_venue_and_authors(biblio_small):
    for doc in biblio_small.train_corpus[:30]:
        assert doc.metadata["venue"].startswith("v")
        authors = doc.metadata["authors"]
        assert 1 <= len(authors) <= 3
        assert all(a.startswith("a") for a in authors)


def test_metadata_venue_correlates_with_class(biblio_small):
    by_venue: dict = {}
    for doc in biblio_small.train_corpus:
        primary = doc.metadata["core_labels"][0]
        by_venue.setdefault(doc.metadata["venue"], []).append(primary)
    purities = [
        max(labels.count(l) for l in set(labels)) / len(labels)
        for labels in by_venue.values() if len(labels) >= 5
    ]
    # Venue affinity is 0.85 but venues are shared across 30 labels, so
    # purity is modest yet clearly above the 1/30 chance rate.
    assert np.mean(purities) > 0.15


def test_references_point_to_earlier_docs(biblio_small):
    ids = {d.doc_id for d in biblio_small.train_corpus} | {
        d.doc_id for d in biblio_small.test_corpus
    }
    for doc in biblio_small.train_corpus[:50]:
        for ref in doc.metadata.get("references", []):
            assert ref in ids
            assert ref != doc.doc_id


def test_tags_drawn_from_class_inventories(meta_small):
    from repro.datasets.words import WordFactory

    factory = WordFactory()
    inventories = {
        label: set(factory.words(f"tag:{label}", 4))
        for label in meta_small.label_set
    }
    all_tags = set().union(*inventories.values())
    for doc in meta_small.train_corpus[:40]:
        for tag in doc.metadata.get("tags", []):
            assert tag in all_tags
