"""Replica-pool tests: shared weights, dispatch, HTTP front door, CLI.

The contract under test: a pool of worker processes over one
shared-memory weight set answers bit-identically to a single in-process
:class:`ServingEngine`; backpressure and deadline errors cross the
process boundary *typed*; a crashed worker fails only its own in-flight
requests and never leaks a ``/dev/shm`` segment; and the HTTP layer maps
those errors onto 429/504/503 status codes.

The fake models here are module-level classes on purpose: pool workers
are ``spawn`` processes that unpickle the artifact's ``state.pkl``, so
everything it references must be importable from a fresh interpreter.
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.exceptions import (
    DeadlineExceeded,
    Overloaded,
    ServingError,
)
from repro.datasets import load_profile
from repro.methods import XClass
from repro.serve import (
    ModelRegistry,
    PoolConfig,
    PoolServer,
    ReplicaPool,
    ServeConfig,
    ServingEngine,
    attach_arrays,
    export_artifact,
    publish_arrays,
)

pytestmark = pytest.mark.serving

SHM_DIR = Path("/dev/shm")


class SlowModel:
    """Picklable fake whose predict blocks (drives overload/deadline)."""

    def __init__(self, delay_s: float = 0.25):
        self.delay_s = delay_s

    def predict(self, docs):
        time.sleep(self.delay_s)
        return ["slow"] * len(docs)


@pytest.fixture(scope="module")
def pool_bundle():
    return load_profile("agnews", seed=0, scale=0.2)


@pytest.fixture(scope="module")
def pool_registry(pool_bundle, tiny_plm, tmp_path_factory):
    model = XClass(plm=tiny_plm, seed=0)
    model.fit(pool_bundle.train_corpus, pool_bundle.label_names())
    registry = ModelRegistry(tmp_path_factory.mktemp("pool-registry"))
    registry.publish("pool-x", model, provenance={"test": "serving_pool"})
    return registry


@pytest.fixture(scope="module")
def xpool(pool_registry):
    config = PoolConfig(replicas=2, batch_window_s=0.001, warmup=False)
    with ReplicaPool.from_registry(pool_registry, "pool-x",
                                   config=config) as pool:
        yield pool


@pytest.fixture(scope="module")
def http_server(xpool):
    with PoolServer(xpool, port=0).start() as server:
        yield server


@pytest.fixture()
def slow_pool(tmp_path):
    path = export_artifact(SlowModel(), tmp_path / "slow")
    pool = ReplicaPool(path, config=PoolConfig(
        replicas=1, max_queue=4, batch_window_s=0.0, warmup=False))
    yield pool
    pool.close()


def _http(server, method, path, body=None):
    conn = http.client.HTTPConnection(*server.address, timeout=60)
    try:
        headers = {"Content-Type": "application/json"} if body else {}
        conn.request(method, path, body=body, headers=headers)
        resp = conn.getresponse()
        payload = json.loads(resp.read().decode("utf-8"))
        return resp.status, payload, dict(resp.getheaders())
    finally:
        conn.close()


# ---------------------------------------------------------------------------
# Shared-memory publication
# ---------------------------------------------------------------------------

def test_shm_publish_attach_roundtrip_and_cleanup():
    arrays = [np.arange(12, dtype=np.float32).reshape(3, 4),
              np.arange(7, dtype=np.int8),
              np.full((2, 5), 0.5, dtype=np.float64)]
    handle = publish_arrays(arrays, label="unit")
    try:
        assert (SHM_DIR / handle.name).exists()
        for entry in handle.spec["arrays"]:
            assert entry["offset"] % 64 == 0  # aligned for BLAS rows

        attached = attach_arrays(handle.spec)
        for mine, theirs in zip(arrays, attached.arrays):
            np.testing.assert_array_equal(mine, theirs)
            assert not theirs.flags.writeable
        with pytest.raises(ValueError):
            attached.arrays[0][0, 0] = 99.0  # weights are read-only

        # Non-owner close never unlinks.
        attached.close()
        assert (SHM_DIR / handle.name).exists()
    finally:
        handle.close()
    assert not (SHM_DIR / handle.name).exists()
    handle.close()  # idempotent

    with pytest.raises(ServingError, match="does not exist"):
        attach_arrays(handle.spec)


# ---------------------------------------------------------------------------
# Pool dispatch and equivalence
# ---------------------------------------------------------------------------

def test_pool_matches_single_engine_bit_identical(xpool, pool_registry,
                                                  pool_bundle):
    docs = pool_bundle.test_corpus.token_lists()[:16]
    with ServingEngine(pool_registry.load("pool-x"),
                       ServeConfig(warmup=False)) as engine:
        expected = engine.classify(docs, timeout=120)

    # Whole-batch and per-doc dispatch both reproduce the single engine.
    assert xpool.classify(docs, timeout=120) == list(expected)
    singles = [xpool.submit([doc]) for doc in docs]
    assert [r.wait(120)[0] for r in singles] == list(expected)
    assert xpool.labels == pool_registry.load("pool-x").labels


def test_pool_spreads_load_and_reports_stats(xpool, pool_bundle):
    docs = pool_bundle.test_corpus.token_lists()[:12]
    requests = [xpool.submit([doc]) for doc in docs]
    for request in requests:
        request.wait(120)
        assert request.done() and request.latency_s >= 0

    stats = xpool.stats(refresh=True)
    assert stats["alive"] == 2 and stats["replicas"] == 2
    assert stats["completed"] >= len(docs)
    assert stats["replica_busy_max"] >= 2  # both replicas held work at once
    engines = stats["engines"]
    assert len(engines) == 2
    # Least-loaded dispatch actually used both workers.
    assert all(e.get("requests", 0) > 0 for e in engines)


def test_pool_shm_segments_live_then_cleaned(pool_registry):
    config = PoolConfig(replicas=2, warmup=False)
    pool = ReplicaPool.from_registry(pool_registry, "pool-x", config=config)
    segments = pool.shm_segments()
    assert segments, "an XClass artifact must publish PLM weights"
    for name in segments:
        assert (SHM_DIR / name).exists()
    pool.close()
    for name in segments:
        assert not (SHM_DIR / name).exists(), f"leaked segment {name}"
    with pytest.raises(ServingError, match="closed"):
        pool.submit([["late"]])


# ---------------------------------------------------------------------------
# Typed errors across the process boundary
# ---------------------------------------------------------------------------

def test_pool_overload_sheds_typed(slow_pool):
    accepted = [slow_pool.submit([[f"d{i}"]]) for i in range(4)]
    with pytest.raises(Overloaded, match="max_queue"):
        slow_pool.submit([["overflow"]])
    assert slow_pool.stats()["shed"] == 1
    for request in accepted:
        assert request.wait(60) == ["slow"]


def test_pool_deadline_miss_is_typed(slow_pool):
    slow_pool.submit([["blocker"]])
    # Let the worker batcher pull the blocker into predict (0.25s) so
    # the late request queues behind it instead of coalescing with it.
    time.sleep(0.1)
    late = slow_pool.submit([["late"]], deadline_s=0.05)
    with pytest.raises(DeadlineExceeded):
        late.wait(60)
    assert slow_pool.stats()["deadline_miss"] == 1


def test_replica_crash_fails_inflight_and_pool_survives(tmp_path):
    path = export_artifact(SlowModel(), tmp_path / "slow")
    pool = ReplicaPool(path, config=PoolConfig(
        replicas=2, max_queue=8, batch_window_s=0.0, warmup=False))
    try:
        doomed = pool.submit([["a"]])
        victim = next(r for r in pool.stats()["per_replica"]
                      if r["in_flight"] == 1)
        os.kill(victim["pid"], signal.SIGKILL)
        with pytest.raises(ServingError, match="died"):
            doomed.wait(30)

        deadline = time.monotonic() + 10
        while pool.alive_count() > 1 and time.monotonic() < deadline:
            time.sleep(0.05)
        stats = pool.stats()
        assert stats["alive"] == 1 and stats["replica_deaths"] == 1
        # The survivor keeps serving.
        assert pool.classify([["b"]], timeout=60) == ["slow"]
    finally:
        pool.close()


def test_all_replicas_dead_is_typed_and_segments_unlinked(pool_registry):
    pool = ReplicaPool.from_registry(
        pool_registry, "pool-x", config=PoolConfig(replicas=2, warmup=False))
    segments = pool.shm_segments()
    try:
        for entry in pool.stats()["per_replica"]:
            os.kill(entry["pid"], signal.SIGKILL)
        deadline = time.monotonic() + 10
        while pool.alive_count() > 0 and time.monotonic() < deadline:
            time.sleep(0.05)
        with pytest.raises(ServingError, match="no live replicas"):
            pool.submit([["x"]])
    finally:
        pool.close()
    # Even after every worker was SIGKILLed, the owner unlink ran.
    for name in segments:
        assert not (SHM_DIR / name).exists(), f"leaked segment {name}"


# ---------------------------------------------------------------------------
# HTTP front door
# ---------------------------------------------------------------------------

def test_http_healthz_and_stats(http_server):
    status, payload, _ = _http(http_server, "GET", "/healthz")
    assert status == 200
    assert payload == {"status": "ok", "alive": 2}

    status, payload, _ = _http(http_server, "GET", "/stats")
    assert status == 200
    assert payload["alive"] == 2
    assert len(payload["engines"]) == 2

    status, _, _ = _http(http_server, "GET", "/nope")
    assert status == 404


def test_http_classify_matches_pool(http_server, xpool, pool_bundle):
    docs = pool_bundle.test_corpus.token_lists()[:4]
    expected = xpool.classify(docs, timeout=120)
    status, payload, _ = _http(http_server, "POST", "/classify",
                               json.dumps({"docs": docs}))
    assert status == 200
    assert payload == {"labels": list(expected)}


def test_http_bad_requests_are_400(http_server):
    for body in ("{nope", json.dumps({"docs": []}), json.dumps({"no": 1}),
                 json.dumps({"docs": [["d"]], "deadline_s": "soon"})):
        status, payload, _ = _http(http_server, "POST", "/classify", body)
        assert status == 400
        assert payload["error"] == "bad-request"


def test_http_backpressure_maps_to_429_and_504(tmp_path):
    path = export_artifact(SlowModel(), tmp_path / "slow")
    pool = ReplicaPool(path, config=PoolConfig(
        replicas=1, max_queue=2, batch_window_s=0.0, warmup=False))
    try:
        with PoolServer(pool, port=0).start() as server:
            blockers = [pool.submit([["a"]]), pool.submit([["b"]])]
            status, payload, headers = _http(
                server, "POST", "/classify", json.dumps({"docs": [["c"]]}))
            assert status == 429
            assert payload["error"] == "overloaded"
            assert headers.get("Retry-After") == "1"
            for request in blockers:
                request.wait(60)

            pool.submit([["blocker"]])
            status, payload, _ = _http(
                server, "POST", "/classify",
                json.dumps({"docs": [["late"]], "deadline_s": 0.05}))
            assert status == 504
            assert payload["error"] == "deadline-exceeded"
    finally:
        pool.close()


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def test_cli_pool_serves_http_and_exits_clean(pool_registry, tmp_path,
                                              pool_bundle, capsys):
    from repro.serve.cli import main

    port_file = tmp_path / "port.txt"
    rc: dict = {}

    def run():
        rc["value"] = main(["--root", str(pool_registry.root), "pool",
                            "pool-x", "--replicas", "2", "--port", "0",
                            "--max-seconds", "5",
                            "--port-file", str(port_file), "--no-warmup"])

    thread = threading.Thread(target=run)
    thread.start()
    try:
        deadline = time.monotonic() + 60
        while not port_file.exists() and time.monotonic() < deadline:
            time.sleep(0.1)
        assert port_file.exists(), "pool CLI never wrote its port file"
        host, port = port_file.read_text().split()

        conn = http.client.HTTPConnection(host, int(port), timeout=60)
        try:
            conn.request("GET", "/healthz")
            assert conn.getresponse().read() is not None
            doc = pool_bundle.test_corpus.token_lists()[0]
            conn.request("POST", "/classify",
                         body=json.dumps({"docs": [doc]}),
                         headers={"Content-Type": "application/json"})
            resp = conn.getresponse()
            assert resp.status == 200
            assert json.loads(resp.read().decode())["labels"]
        finally:
            conn.close()
    finally:
        thread.join(90)
    assert not thread.is_alive(), "pool CLI failed to exit after max-seconds"
    assert rc["value"] == 0
    out = capsys.readouterr()
    assert "listening on http://" in out.out
    assert "[pool] dispatched=" in out.err
