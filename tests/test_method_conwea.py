"""Tests for ConWea: contextualization, ranking, end-to-end."""

import numpy as np
import pytest

from repro.evaluation.metrics import micro_f1
from repro.methods.conwea import ConWea, Contextualizer
from repro.methods.conwea.ranking import (
    disambiguate_seeds,
    expand_seeds,
    label_term_scores,
    prune_seed_senses,
)


def test_contextualizer_splits_ambiguous_word(tiny_plm, agnews_small):
    ctx = Contextualizer(tiny_plm, min_occurrences=6, seed=0)
    tagged = ctx.contextualize(agnews_small.train_corpus, {"goal"})
    if "goal" not in ctx.senses:
        pytest.skip("tiny corpus lacked enough 'goal' occurrences to split")
    variants = {t for tokens in tagged for t in tokens if t.startswith("goal$")}
    assert len(variants) >= 2


def test_contextualizer_sense_tags_align_with_class(tiny_plm, agnews_small):
    ctx = Contextualizer(tiny_plm, min_occurrences=6, seed=0)
    ctx.contextualize(agnews_small.train_corpus, {"goal"})
    if "goal" not in ctx.assignments:
        pytest.skip("no split")
    by_sense: dict = {}
    for doc_idx, _, sense in ctx.assignments["goal"]:
        label = agnews_small.train_corpus[doc_idx].labels[0]
        by_sense.setdefault(sense, []).append(label)
    purities = [
        max(labels.count(l) for l in set(labels)) / len(labels)
        for labels in by_sense.values()
    ]
    assert np.mean(purities) > 0.6


def test_contextualizer_tags_new_docs(tiny_plm, agnews_small):
    ctx = Contextualizer(tiny_plm, min_occurrences=6, seed=0)
    ctx.contextualize(agnews_small.train_corpus, {"goal"})
    if "goal" not in ctx.senses:
        pytest.skip("no split")
    tagged = ctx.tag_new_docs([["team", "scored", "goal", "today"]])
    assert any(t.startswith("goal$") for t in tagged[0])


def test_label_term_scores_prefer_concentrated_words():
    token_lists = [["apple", "fruit"], ["apple", "fruit"], ["car", "wheel"]]
    labels = ["food", "food", "autos"]
    scores = label_term_scores(token_lists, labels, ["food", "autos"],
                               min_count=1)
    assert scores["food"]["apple"] > scores["autos"].get("apple", 0.0)


def test_expand_seeds_exclusive_assignment():
    scores = {"a": {"w1": 5.0, "shared": 4.0}, "b": {"shared": 3.0, "w2": 2.0}}
    out = expand_seeds(scores, {"a": ["seed_a"], "b": ["seed_b"]}, per_class=3)
    assert "shared" in out["a"]
    assert "shared" not in out["b"]
    assert "w2" in out["b"]


def test_disambiguate_and_prune_seed_senses():
    seeds = {"sports": ["goal", "soccer"]}
    sense_words = {"goal$0", "goal$1"}
    expanded = disambiguate_seeds(seeds, sense_words)
    assert set(expanded["sports"]) >= {"goal$0", "goal$1", "soccer"}
    scores = {"sports": {"goal$0": 3.0, "goal$1": 0.0}}
    pruned = prune_seed_senses(expanded, scores)
    assert "goal$0" in pruned["sports"]
    assert "goal$1" not in pruned["sports"]


def test_conwea_beats_chance(tiny_plm, agnews_small):
    gold = [d.labels[0] for d in agnews_small.test_corpus]
    clf = ConWea(plm=tiny_plm, iterations=1, epochs=5, seed=0)
    clf.fit(agnews_small.train_corpus, agnews_small.keywords())
    assert micro_f1(gold, clf.predict(agnews_small.test_corpus)) > 0.45


def test_conwea_ablation_variants_run(tiny_plm, agnews_small):
    for kwargs in ({"contextualize": False}, {"expand": False},
                   {"wsd_mode": True}):
        clf = ConWea(plm=tiny_plm, iterations=1, epochs=3, seed=0, **kwargs)
        clf.fit(agnews_small.train_corpus, agnews_small.keywords())
        proba = clf.predict_proba(agnews_small.test_corpus)
        assert np.isfinite(proba).all()


def test_conwea_accepts_label_names(tiny_plm, agnews_small):
    clf = ConWea(plm=tiny_plm, iterations=1, epochs=3, seed=0)
    clf.fit(agnews_small.train_corpus, agnews_small.label_names())
    assert len(clf.predict(agnews_small.test_corpus)) == len(
        agnews_small.test_corpus
    )
