"""Tests for the static-embedding substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.embeddings.doc import doc_embeddings, tfidf_weighted_doc_embeddings
from repro.embeddings.doc2vec import Doc2Vec
from repro.embeddings.joint import JointEmbeddingSpace
from repro.embeddings.ppmi_svd import PPMISVDEmbeddings, cooccurrence_matrix, ppmi
from repro.embeddings.vmf import VonMisesFisher
from repro.embeddings.word2vec import Word2Vec
from repro.text.vocabulary import Vocabulary


def _topic_corpus(rng, n=120):
    """Two topics with disjoint vocabularies plus shared glue words."""
    topics = {
        "a": ["apple", "banana", "cherry", "date", "elder"],
        "b": ["wrench", "hammer", "pliers", "drill", "saw"],
    }
    glue = ["and", "with", "item"]
    docs, labels = [], []
    for i in range(n):
        topic = "a" if i % 2 == 0 else "b"
        words = [topics[topic][int(rng.integers(0, 5))] for _ in range(8)]
        words += [glue[int(rng.integers(0, 3))] for _ in range(3)]
        docs.append(list(rng.permutation(words)))
        labels.append(topic)
    return docs, labels


def test_cooccurrence_symmetric(rng):
    docs, _ = _topic_corpus(rng, n=20)
    vocab = Vocabulary.build(docs)
    mat = cooccurrence_matrix(docs, vocab, window=3)
    assert (abs(mat - mat.T)).nnz == 0


def test_ppmi_nonnegative(rng):
    docs, _ = _topic_corpus(rng, n=20)
    vocab = Vocabulary.build(docs)
    mat = ppmi(cooccurrence_matrix(docs, vocab))
    assert (mat.data >= 0).all()


def test_ppmi_svd_separates_topics(rng):
    docs, _ = _topic_corpus(rng)
    model = PPMISVDEmbeddings(dim=16).fit(docs)
    neighbours = [w for w, _ in model.most_similar("apple", k=4)]
    assert set(neighbours) & {"banana", "cherry", "date", "elder"}


def test_word2vec_separates_topics(rng):
    docs, _ = _topic_corpus(rng)
    model = Word2Vec(dim=16, epochs=8, seed=0).fit(docs)
    neighbours = [w for w, _ in model.most_similar("hammer", k=4)]
    assert set(neighbours) & {"wrench", "pliers", "drill", "saw"}


def test_word2vec_deterministic_given_seed(rng):
    docs, _ = _topic_corpus(rng, n=30)
    a = Word2Vec(dim=8, epochs=2, seed=5).fit(docs).matrix()
    b = Word2Vec(dim=8, epochs=2, seed=5).fit(docs).matrix()
    assert np.allclose(a, b)


def test_doc_embeddings_cluster_by_topic(rng):
    docs, labels = _topic_corpus(rng)
    model = PPMISVDEmbeddings(dim=16).fit(docs)
    emb = doc_embeddings(docs, model)
    centroid_a = emb[[i for i, l in enumerate(labels) if l == "a"]].mean(axis=0)
    centroid_b = emb[[i for i, l in enumerate(labels) if l == "b"]].mean(axis=0)
    correct = 0
    for row, label in zip(emb, labels):
        predicted = "a" if row @ centroid_a > row @ centroid_b else "b"
        correct += predicted == label
    assert correct / len(labels) > 0.9


def test_tfidf_weighted_doc_embeddings_shape(rng):
    docs, _ = _topic_corpus(rng, n=20)
    model = PPMISVDEmbeddings(dim=16).fit(docs)
    emb = tfidf_weighted_doc_embeddings(docs, model)
    assert emb.shape == (20, 16)
    assert np.allclose(np.linalg.norm(emb, axis=1), 1.0, atol=1e-6)


def test_doc2vec_infer_shapes(rng):
    docs, _ = _topic_corpus(rng, n=40)
    model = Doc2Vec(dim=12, epochs=2, seed=0).fit(docs)
    assert model.matrix().shape == (40, 12)
    inferred = model.infer(docs[:5])
    assert inferred.shape == (5, 12)


def test_vmf_fit_recovers_mean_direction(rng):
    mu = np.zeros(8)
    mu[0] = 1.0
    base = VonMisesFisher(mu, kappa=50.0)
    samples = base.sample(200, seed=1)
    fitted = VonMisesFisher.fit(samples)
    assert fitted.mu @ mu > 0.95
    assert fitted.kappa > 5.0


def test_vmf_samples_unit_norm(rng):
    vmf = VonMisesFisher(np.ones(5), kappa=10.0)
    samples = vmf.sample(50, seed=0)
    assert np.allclose(np.linalg.norm(samples, axis=1), 1.0, atol=1e-9)


@given(st.integers(min_value=3, max_value=16),
       st.floats(min_value=1.0, max_value=200.0))
@settings(max_examples=20, deadline=None)
def test_vmf_concentration_controls_spread(dim, kappa):
    rng = np.random.default_rng(0)
    mu = rng.normal(size=dim)
    vmf = VonMisesFisher(mu, kappa=kappa)
    samples = vmf.sample(40, seed=0)
    mean_cos = float(samples @ vmf.mu).__abs__() if samples.ndim == 1 else float(
        (samples @ vmf.mu).mean()
    )
    if kappa >= 100:
        assert mean_cos > 0.8
    assert -1.0 <= mean_cos <= 1.0


def test_vmf_rejects_zero_mean():
    with pytest.raises(ValueError):
        VonMisesFisher(np.zeros(4), kappa=1.0)


def test_vmf_log_density_prefers_mean(rng):
    mu = np.zeros(6)
    mu[1] = 1.0
    vmf = VonMisesFisher(mu, kappa=8.0)
    aligned = vmf.log_density_direction(mu[None, :])
    opposite = vmf.log_density_direction(-mu[None, :])
    assert aligned[0] > opposite[0]


def test_joint_space_label_vectors_and_expansion(rng):
    docs, _ = _topic_corpus(rng)
    space = JointEmbeddingSpace(dim=16).fit(docs)
    space.set_label_seeds({"fruit": ["apple", "banana"], "tools": ["hammer"]})
    expanded = space.nearest_words_to_label("fruit", k=3,
                                            exclude={"apple", "banana"})
    assert set(expanded) & {"cherry", "date", "elder"}
    docs_emb = space.document_vectors(docs[:4])
    assert docs_emb.shape == (4, 16)


def test_joint_space_backend_validation():
    with pytest.raises(ValueError):
        JointEmbeddingSpace(backend="nope")
