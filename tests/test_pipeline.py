"""Streaming pipeline: stream source, store, drift, crash-resume, e2e.

The acceptance contract of the ingestion subsystem:

- a streamed corpus is ingested, deduped by content hash, sharded into
  the append-only store, and classified online through the serving
  stack (replica pool in the end-to-end test);
- a forced drift event (novel post-drift vocabulary) triggers exactly
  one re-fit through the experiment engine, publishing a new registry
  version that is atomically picked up;
- killing the orchestrator mid-stream and resuming from the checkpoint
  yields a corpus store and predictions log *byte-identical* to an
  uninterrupted run;
- the dedupe frontier holds under concurrent feeders.
"""

from __future__ import annotations

import hashlib
import json
import threading

import pytest

from repro.core import env
from repro.core.exceptions import CheckpointError, PipelineError
from repro.pipeline import (
    CorpusStore,
    DriftMonitor,
    DriftPolicy,
    Pipeline,
    PipelineConfig,
    StreamConfig,
    StreamSource,
)
from repro.pipeline.cli import main as pipeline_cli
from repro.pipeline.stages import DedupeStage
from repro.pipeline.store import content_hash

pytestmark = pytest.mark.pipeline

#: Small-but-real WeSTClass: fits in ~0.1s on a 100-doc corpus.
SMALL_KWARGS = dict(pretrain_epochs=2, self_train_iterations=0,
                    pseudo_per_class=20, dim=32)

#: Stream with duplicates and a drift point injecting novel vocabulary
#: (the OOV signal is deterministic: it depends on tokens, not on what
#: the model happens to predict).
DRIFT_STREAM = dict(profile="agnews", seed=0, scale=0.6, n_docs=240,
                    duplicate_every=7, drift_at=120,
                    drift_labels=("sports",), drift_novel_rate=0.9)

OOV_POLICY = DriftPolicy(window=40, hist_threshold=None, oov_threshold=0.06,
                         cooldown=60)


def make_config(tmp_path, **overrides) -> PipelineConfig:
    base = dict(
        stream=StreamConfig(**DRIFT_STREAM),
        name="s",
        store_root=str(tmp_path / "corpus"),
        registry_root=str(tmp_path / "models"),
        method="westclass",
        method_kwargs=SMALL_KWARGS,
        batch_size=24,
        checkpoint_every=2,
        bootstrap_docs=72,
        drift=OOV_POLICY,
        warmup=False,
    )
    base.update(overrides)
    return PipelineConfig(**base)


def store_digest(store_dir) -> str:
    """One hash over every shard + the predictions log, byte-exact."""
    digest = hashlib.blake2b()
    paths = sorted((store_dir / "shards").glob("*.jsonl"))
    paths.append(store_dir / "predictions.jsonl")
    for path in paths:
        digest.update(path.name.encode())
        digest.update(path.read_bytes())
    return digest.hexdigest()


# ---------------------------------------------------------------------------
# Stream source
# ---------------------------------------------------------------------------

def test_stream_source_is_deterministic_and_cursor_resumable():
    a = StreamSource(StreamConfig(**DRIFT_STREAM))
    b = StreamSource(StreamConfig(**DRIFT_STREAM))
    _, docs_a = a.read(0, len(a))
    _, docs_b = b.read(0, len(b))
    assert [d.doc_id for d in docs_a] == [d.doc_id for d in docs_b]
    assert [d.tokens for d in docs_a] == [d.tokens for d in docs_b]

    # Reading in arbitrary slices is the same stream: a cursor is a
    # complete resume token.
    cursor, first = a.read(0, 100)
    _, rest = a.read(cursor, len(a))
    assert [d.doc_id for d in first + rest] == [d.doc_id for d in docs_a]

    # Scheduled duplicates repeat earlier content under fresh ids.
    dups = [d for d in docs_a if "duplicate_of" in d.metadata]
    assert dups, "duplicate_every=7 must schedule duplicates"
    by_id = {d.doc_id: d for d in docs_a}
    for dup in dups:
        original = by_id[dup.metadata["duplicate_of"]]
        assert dup.tokens == original.tokens
        assert dup.doc_id != original.doc_id

    # Post-drift docs pick up the novel lexicon; pre-drift never do.
    from repro.pipeline.source import NOVEL_LEXICON
    novel = set(NOVEL_LEXICON)
    pre = [d for d in docs_a if d.metadata["position"] < 120]
    post = [d for d in docs_a if d.metadata["position"] >= 120]
    assert not any(novel & set(d.tokens) for d in pre)
    assert any(novel & set(d.tokens) for d in post)


def test_stream_source_rejects_unknown_drift_label():
    with pytest.raises(PipelineError, match="drift label"):
        StreamSource(StreamConfig(profile="agnews", scale=0.3,
                                  drift_at=10, drift_labels=("no-such",)))


# ---------------------------------------------------------------------------
# Corpus store + checkpoints
# ---------------------------------------------------------------------------

def test_store_shards_truncates_and_roundtrips_checkpoints(tmp_path):
    source = StreamSource(StreamConfig(profile="agnews", seed=0, scale=0.3,
                                       n_docs=30))
    _, docs = source.read(0, 30)
    hashes = [content_hash(d.tokens) for d in docs]

    store = CorpusStore(tmp_path / "s", shard_docs=8)
    store.append(docs[:20], hashes[:20])
    assert store.docs == 20
    assert len(store.shard_files()) == 3  # 8 + 8 + 4
    state = store.state()
    store.write_checkpoint({"cursor": 20, "store": state})

    # Un-checkpointed tail: more docs + predictions.
    store.append(docs[20:], hashes[20:])
    store.append_predictions([{"doc_id": d.doc_id, "label": "x"}
                              for d in docs[20:]])
    assert store.docs == 30

    # A reopened store truncates back to exactly the checkpoint bytes.
    reopened = CorpusStore(tmp_path / "s", shard_docs=8)
    checkpoint = reopened.read_checkpoint()
    assert checkpoint["cursor"] == 20
    reopened.truncate_to(checkpoint["store"])
    assert reopened.docs == 20
    assert reopened.predictions == 0
    assert reopened.state() == state
    assert reopened.load_hashes() == set(hashes[:20])

    # Re-appending the same tail regenerates identical bytes.
    reopened.append(docs[20:], hashes[20:])
    assert {p.name: p.stat().st_size for p in reopened.shard_files()} == \
        {p.name: p.stat().st_size for p in store.shard_files()}


def test_checkpoint_corruption_and_schema_are_typed(tmp_path):
    store = CorpusStore(tmp_path / "s")
    assert store.read_checkpoint() is None
    (tmp_path / "s" / "checkpoint.json").write_text("{not json")
    with pytest.raises(CheckpointError, match="delete it"):
        store.read_checkpoint()
    (tmp_path / "s" / "checkpoint.json").write_text(
        json.dumps({"schema": 99, "cursor": 0}))
    with pytest.raises(CheckpointError, match="schema"):
        store.read_checkpoint()


def test_corpus_dir_env_knob(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CORPUS_DIR", str(tmp_path / "knob"))
    assert env.corpus_dir() == tmp_path / "knob"
    store = CorpusStore.for_stream("mystream")
    assert store.directory == tmp_path / "knob" / "mystream"
    monkeypatch.delenv("REPRO_CORPUS_DIR")
    assert env.corpus_dir().name == "corpus"


# ---------------------------------------------------------------------------
# Dedupe under concurrency
# ---------------------------------------------------------------------------

def test_dedupe_under_concurrency():
    # 8 feeders race overlapping batches at one shared dedupe frontier:
    # every distinct content must survive exactly once, across threads.
    source = StreamSource(StreamConfig(profile="agnews", seed=0, scale=0.6,
                                       n_docs=200, duplicate_every=2))
    _, docs = source.read(0, 200)
    stage = DedupeStage()
    kept, lock = [], threading.Lock()
    barrier = threading.Barrier(8)

    def feed(offset):
        barrier.wait()
        for start in range(offset * 25, (offset + 1) * 25, 5):
            result = stage.process(docs[start:start + 5])
            with lock:
                kept.extend(result.docs)

    threads = [threading.Thread(target=feed, args=(i,)) for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    unique_contents = {content_hash(d.tokens) for d in docs}
    kept_contents = [content_hash(d.tokens) for d in kept]
    assert len(kept_contents) == len(set(kept_contents)), \
        "a duplicate content survived the concurrent frontier twice"
    assert set(kept_contents) == unique_contents
    assert stage.seen == unique_contents


# ---------------------------------------------------------------------------
# Drift trigger semantics
# ---------------------------------------------------------------------------

def _observe_window(monitor, label, n, oov=False):
    from repro.core.types import Document
    tokens = ["neoterm0", "neoterm1"] if oov else ["known", "words"]
    docs = [Document(doc_id=f"d{i}", tokens=list(tokens)) for i in range(n)]
    monitor.observe(docs, [(label, 0.9)] * n)


def test_drift_trigger_fires_exactly_once():
    policy = DriftPolicy(window=10, hist_threshold=0.4, oov_threshold=None,
                         cooldown=30)
    monitor = DriftMonitor(policy, vocabulary=["known", "words"])
    _observe_window(monitor, "a", 10)  # reference: all 'a'
    assert not monitor.should_refit()

    _observe_window(monitor, "b", 10)  # shifted window: all 'b'
    assert monitor.should_refit()
    assert monitor.levels()["hist_distance"] == 1.0

    # The trigger is consumed once; cooldown holds even though the
    # shift persists across the following windows.
    monitor.mark_triggered()
    assert monitor.triggers == 1
    assert not monitor.should_refit()
    _observe_window(monitor, "b", 10)
    _observe_window(monitor, "b", 10)
    assert not monitor.should_refit()

    # Re-baselining on the post-refit model: the sustained shift is the
    # new normal and never re-fires; a *new* shift does.
    monitor.after_refit(vocabulary=["known", "words"])
    _observe_window(monitor, "b", 10)  # new reference
    _observe_window(monitor, "b", 10)
    assert not monitor.should_refit()
    _observe_window(monitor, "c", 10)
    assert monitor.should_refit()


def test_drift_state_roundtrips_through_checkpoint():
    policy = DriftPolicy(window=10, hist_threshold=0.4, cooldown=5)
    monitor = DriftMonitor(policy, vocabulary=["known", "words"])
    _observe_window(monitor, "a", 10)
    _observe_window(monitor, "b", 7)  # partial current window
    restored = DriftMonitor.from_state(
        json.loads(json.dumps(monitor.to_state())))
    _observe_window(monitor, "b", 3)
    _observe_window(restored, "b", 3)
    assert monitor.should_refit() == restored.should_refit() is True
    assert monitor.levels() == restored.levels()


def test_malformed_drift_state_is_typed():
    with pytest.raises(PipelineError, match="drift-monitor state"):
        DriftMonitor.from_state({"policy": {"window": 5}})


# ---------------------------------------------------------------------------
# End to end: pool serving, forced drift, re-fit, atomic republish
# ---------------------------------------------------------------------------

def test_end_to_end_pool_with_drift_refit(tmp_path):
    from repro.serve.registry import ModelRegistry

    config = make_config(tmp_path, backend="pool", replicas=2)
    pipe = Pipeline(config)
    report = pipe.run()

    # Ingested, deduped, sharded.
    assert report.exhausted
    assert report.deduped > 0
    assert pipe.store.docs == report.ingested
    assert pipe.store.docs == pipe.store.predictions

    # Forced drift fired exactly one re-fit; the new version is
    # published and the `latest` alias picked it up atomically.
    assert report.fits == 2
    assert report.refits == 1
    registry = ModelRegistry(tmp_path / "models")
    assert registry.versions("s-westclass") == [1, 2]
    assert registry.resolve("s-westclass") == 2
    assert report.model_version == 2

    # The post-refit generation actually served traffic.
    generations = {r["model_gen"] for r in pipe.store.iter_predictions()}
    assert generations == {0, 1}
    # Pool clients return labels without confidences.
    labels = {r["label"] for r in pipe.store.iter_predictions()}
    assert labels <= set(pipe.source.label_set.labels)

    status = pipe.status()
    assert status["checkpoint"]["model_version"] == 2
    assert status["checkpoint"]["drift_triggers"] == 1
    assert status["checkpoint"]["classified"] == report.ingested


def test_engine_backend_reports_confidences(tmp_path):
    config = make_config(
        tmp_path,
        stream=StreamConfig(profile="agnews", seed=0, scale=0.4, n_docs=100),
        drift=DriftPolicy(window=30, hist_threshold=None),
        bootstrap_docs=48)
    pipe = Pipeline(config)
    report = pipe.run()
    assert report.fits == 1
    records = list(pipe.store.iter_predictions())
    assert records and all(
        r["confidence"] is not None and 0.0 <= r["confidence"] <= 1.0
        for r in records)
    # The predictions log also carries the top-k label scores, best
    # first, with the winner's score equal to the logged confidence.
    for r in records:
        topk = r["topk"]
        assert 1 <= len(topk) <= 3
        scores = [score for _, score in topk]
        assert scores == sorted(scores, reverse=True)
        assert scores[0] == pytest.approx(r["confidence"], abs=1e-6)
        assert all(isinstance(label, str) for label, _ in topk)


def test_scored_servable_topk_contract():
    from repro.pipeline.clients import ScoredServable

    class FakeServable:
        labels = ["a", "b", "c", "d"]

        def predict(self, docs):
            return ["b"] * len(docs)

        def scores(self, docs):
            # Tied scores: top-k order must fall back to class order.
            return [[0.1, 0.7, 0.7, 0.2]] * len(docs)

    preds = ScoredServable(FakeServable()).predict([["t"], ["t"]])
    assert len(preds) == 2
    label, confidence, topk = preds[0]
    assert label == "b" and confidence == pytest.approx(0.7)
    assert topk == [["b", 0.7], ["c", 0.7], ["d", 0.2]]

    class ScorelessServable(FakeServable):
        def scores(self, docs):
            raise RuntimeError("no scores on this model")

    preds = ScoredServable(ScorelessServable()).predict([["t"]])
    assert preds == [("b", None, None)]


def test_drift_monitor_accepts_pairs_and_triples():
    # Pool-backend predictions are (label, None, None) triples; older
    # callers and tests pass bare pairs. Both must fold in.
    from repro.core.types import Document

    monitor = DriftMonitor(DriftPolicy(window=4), vocabulary=["known"])
    docs = [Document(doc_id=f"d{i}", tokens=["known"]) for i in range(4)]
    monitor.observe(docs[:2], [("a", 0.9), ("b", 0.8)])
    monitor.observe(docs[2:], [("a", 0.9, [["a", 0.9]]), ("b", None, None)])
    assert monitor.reference_docs == 4


# ---------------------------------------------------------------------------
# Crash-resume determinism
# ---------------------------------------------------------------------------

def test_crash_resume_is_byte_identical(tmp_path):
    # Uninterrupted run.
    clean = Pipeline(make_config(tmp_path / "clean"))
    clean_report = clean.run()
    assert clean_report.refits == 1

    # Crashed run: die after 7 batches with checkpoint_every=2 — the
    # 7th batch (and its classifications) are un-checkpointed work.
    crashed_dir = tmp_path / "crashed"
    crashed = Pipeline(make_config(crashed_dir))
    partial = crashed.run(max_batches=7, checkpoint_on_exit=False)
    assert not partial.exhausted
    checkpoint = crashed.store.read_checkpoint()
    checkpointed = sum(s["docs"]
                       for s in checkpoint["store"]["shards"].values())
    assert crashed.store.docs > checkpointed, \
        "the crash point must leave un-checkpointed work to replay"

    # Resume from the checkpoint and run to exhaustion.
    resumed = Pipeline.resume("s", crashed_dir / "corpus")
    resumed_report = resumed.run()
    assert resumed_report.exhausted
    assert resumed.fits == clean.fits == 2

    assert store_digest(tmp_path / "clean" / "corpus" / "s") == \
        store_digest(crashed_dir / "corpus" / "s")


def test_crash_before_bootstrap_resumes_identically(tmp_path):
    # Crash while no model exists yet (2 batches < bootstrap_docs):
    # resume must replay ingestion AND still bootstrap at the same doc.
    clean = Pipeline(make_config(tmp_path / "clean"))
    clean.run()

    crashed_dir = tmp_path / "crashed"
    crashed = Pipeline(make_config(crashed_dir))
    partial = crashed.run(max_batches=2, checkpoint_on_exit=False)
    assert partial.fits == 0

    resumed = Pipeline.resume("s", crashed_dir / "corpus")
    resumed.run()
    assert store_digest(tmp_path / "clean" / "corpus" / "s") == \
        store_digest(crashed_dir / "corpus" / "s")


def test_resume_guards(tmp_path):
    config = make_config(tmp_path)
    with pytest.raises(CheckpointError, match="nothing to resume"):
        Pipeline(config, resume=True)
    pipe = Pipeline(config)
    pipe.run(max_batches=2)
    with pytest.raises(PipelineError, match="already has a checkpoint"):
        Pipeline(make_config(tmp_path))


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def test_cli_run_status_resume(tmp_path, capsys):
    store_root = str(tmp_path / "corpus")
    rc = pipeline_cli([
        "run", "--name", "demo", "--store-root", store_root,
        "--registry-root", str(tmp_path / "models"),
        "--profile", "agnews", "--scale", "0.4", "--n-docs", "100",
        "--duplicate-every", "6", "--bootstrap-docs", "48",
        "--batch-size", "24", "--max-batches", "3",
    ])
    out = capsys.readouterr().out
    assert rc == 0
    assert "[pipeline] stages:" in out
    assert "dedupe" in out and "classify" in out and "drift" in out

    rc = pipeline_cli(["status", "--name", "demo",
                       "--store-root", store_root])
    out = capsys.readouterr().out
    assert rc == 0
    assert "checkpoint cursor=" in out

    rc = pipeline_cli(["resume", "--name", "demo",
                       "--store-root", store_root])
    out = capsys.readouterr().out
    assert rc == 0
    assert "exhausted=yes" in out

    # Typed errors surface as exit code 1, not tracebacks.
    rc = pipeline_cli(["status", "--name", "nope",
                       "--store-root", store_root])
    assert rc == 1
    assert "error:" in capsys.readouterr().err
