"""Central env accessors: typed parsing, defaults, clear failures."""

import pytest

from repro.core import env
from repro.core.exceptions import ConfigurationError

pytestmark = pytest.mark.obs


def test_empty_counts_as_unset(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "")
    assert env.env_raw("REPRO_JOBS") is None
    assert env.jobs() == 1


def test_flag_spellings(monkeypatch):
    for raw, expected in [("0", False), ("off", False), ("FALSE", False),
                          ("no", False), ("1", True), ("on", True),
                          ("True", True), ("yes", True)]:
        monkeypatch.setenv("REPRO_ROW_CACHE", raw)
        assert env.row_cache_enabled() is expected


def test_bad_flag_names_the_variable(monkeypatch):
    monkeypatch.setenv("REPRO_ROW_CACHE", "maybe")
    with pytest.raises(ConfigurationError, match="REPRO_ROW_CACHE"):
        env.row_cache_enabled()


def test_bad_int_names_the_variable(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "four")
    with pytest.raises(ConfigurationError, match="REPRO_JOBS.*'four'"):
        env.jobs()


def test_bad_float_names_the_variable(monkeypatch):
    monkeypatch.setenv("REPRO_ROW_TIMEOUT", "soon")
    with pytest.raises(ConfigurationError, match="REPRO_ROW_TIMEOUT"):
        env.row_timeout()


def test_jobs_clamped_to_one(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "-3")
    assert env.jobs() == 1
    monkeypatch.setenv("REPRO_JOBS", "8")
    assert env.jobs() == 8


def test_nonpositive_timeout_means_none(monkeypatch):
    monkeypatch.setenv("REPRO_ROW_TIMEOUT", "0")
    assert env.row_timeout() is None
    monkeypatch.setenv("REPRO_ROW_TIMEOUT", "2.5")
    assert env.row_timeout() == 2.5


def test_trace_dir_default_off(monkeypatch):
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    assert env.trace_dir() is None
    monkeypatch.setenv("REPRO_TRACE", "/tmp/traces")
    assert str(env.trace_dir()) == "/tmp/traces"


def test_engine_and_nn_defaults(monkeypatch):
    for name in ("REPRO_ENGINE_TOKEN_BUDGET", "REPRO_NN_DTYPE",
                 "REPRO_NN_FUSED", "REPRO_NN_PROFILE", "REPRO_ENC_CACHE"):
        monkeypatch.delenv(name, raising=False)
    assert env.engine_token_budget() is None
    assert env.nn_dtype() == "float32"
    assert env.nn_fused() is True
    assert env.nn_profile() is False
    assert env.enc_cache_enabled() is True


def test_run_specs_surfaces_bad_jobs(monkeypatch):
    from repro.experiments.engine import run_specs

    monkeypatch.setenv("REPRO_JOBS", "lots")
    with pytest.raises(ConfigurationError, match="REPRO_JOBS"):
        run_specs([], jobs=None)
