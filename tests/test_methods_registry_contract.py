"""Contract tests: every registered method honours the shared interfaces."""

import numpy as np
import pytest

from repro.core.base import MultiLabelTextClassifier, WeaklySupervisedTextClassifier
from repro.core.exceptions import NotFittedError
from repro.core.registry import method_registry


def test_every_registered_method_has_class_and_metadata():
    for name, info in method_registry().items():
        assert info.cls is not None, name
        assert info.venue
        assert info.supervision
        assert info.backbone in ("embedding", "pretrained-lm")
        assert issubclass(
            info.cls,
            (WeaklySupervisedTextClassifier, MultiLabelTextClassifier),
        ), name


def test_supervision_formats_name_real_classes():
    import repro.core.supervision as S

    for name, info in method_registry().items():
        for fmt in info.supervision:
            assert hasattr(S, fmt), (name, fmt)


@pytest.mark.parametrize("method_name", ["WeSTClass", "ConWea", "LOTClass",
                                         "X-Class", "PromptClass"])
def test_flat_methods_predict_proba_contract(method_name, tiny_plm,
                                             agnews_small):
    """Fitted flat methods produce (N, C) row-stochastic matrices and
    consistent predict/predict_proba."""
    registry = method_registry()
    cls = registry[method_name].cls
    kwargs = {"seed": 0}
    if registry[method_name].backbone == "pretrained-lm":
        kwargs["plm"] = tiny_plm
    clf = cls(**kwargs)
    supervision = (
        agnews_small.keywords()
        if method_name == "ConWea"
        else agnews_small.label_names()
    )
    clf.fit(agnews_small.train_corpus, supervision)
    subset = agnews_small.test_corpus[:12]
    proba = clf.predict_proba(subset)
    assert proba.shape == (12, len(agnews_small.label_set))
    assert np.allclose(proba.sum(axis=1), 1.0, atol=1e-6)
    predicted = clf.predict(subset)
    argmax = [agnews_small.label_set.labels[i] for i in proba.argmax(axis=1)]
    assert predicted == argmax


def test_unfitted_methods_raise(tiny_plm, agnews_small):
    for name, info in method_registry().items():
        if info.backbone != "pretrained-lm" or name in ("WeSHClass",
                                                        "TaxoClass",
                                                        "FUTEX"):
            continue
        clf = info.cls(plm=tiny_plm, seed=0)
        with pytest.raises(NotFittedError):
            if isinstance(clf, MultiLabelTextClassifier):
                clf.score(agnews_small.test_corpus)
            else:
                clf.predict(agnews_small.test_corpus)


def test_repr_shows_fit_state(agnews_small):
    from repro.methods import WeSTClass

    clf = WeSTClass(seed=0)
    assert "unfitted" in repr(clf)
