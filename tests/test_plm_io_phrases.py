"""Tests for PLM persistence and phrase mining."""

import json

import numpy as np
import pytest

from repro.core.exceptions import ArtifactError
from repro.nn.tensor import default_dtype
from repro.plm.io import load_plm, save_plm
from repro.text.phrases import merge_phrases, mine_phrases, phrase_corpus


def test_save_load_roundtrip(tiny_plm, tmp_path):
    path = tmp_path / "model.npz"
    save_plm(tiny_plm, path)
    restored = load_plm(path)
    assert len(restored.vocabulary) == len(tiny_plm.vocabulary)
    assert restored.vocabulary.token(10) == tiny_plm.vocabulary.token(10)
    docs = [["soccer", "team", "championship"], ["market", "profit"]]
    original = tiny_plm.doc_embeddings(docs)
    roundtripped = restored.doc_embeddings(docs)
    assert np.allclose(original, roundtripped, atol=1e-10)


def test_save_load_preserves_masked_predictions(tiny_plm, tmp_path):
    path = tmp_path / "model.npz"
    save_plm(tiny_plm, path)
    restored = load_plm(path)
    tokens = ["soccer", "team", "won", "championship"]
    assert tiny_plm.predict_masked(tokens, 0, top_k=5) == \
        restored.predict_masked(tokens, 0, top_k=5)


def test_archive_records_explicit_dtype(tiny_plm, tmp_path):
    path = tmp_path / "model.npz"
    save_plm(tiny_plm, path)
    with np.load(path, allow_pickle=False) as data:
        meta = json.loads(str(data["meta"]))
    assert meta["dtype"] == str(tiny_plm.encoder.state_dict()[0].dtype)


def test_float32_archive_loads_bit_exact_under_float64_default(tiny_plm,
                                                               tmp_path):
    """Loading reconstructs the archive's dtype, not the process default."""
    path = tmp_path / "model.npz"
    save_plm(tiny_plm, path)
    saved = tiny_plm.encoder.state_dict()
    assert saved[0].dtype == np.float32
    with default_dtype("float64"):
        restored = load_plm(path)
    for ours, theirs in zip(saved, restored.encoder.state_dict()):
        assert theirs.dtype == ours.dtype
        np.testing.assert_array_equal(ours, theirs)


def test_float64_archive_loads_bit_exact_under_float32_default(tmp_path):
    from repro.plm.config import tiny_config
    from repro.plm.encoder import TransformerEncoder
    from repro.plm.model import PretrainedLM
    from repro.text.vocabulary import Vocabulary

    vocab = Vocabulary()
    for token in ["alpha", "beta", "gamma", "delta"]:
        vocab.add(token, count=5)
    with default_dtype("float64"):
        encoder = TransformerEncoder(vocab, tiny_config(),
                                     np.random.default_rng(3))
    plm64 = PretrainedLM(encoder)
    saved = plm64.encoder.state_dict()
    assert saved[0].dtype == np.float64
    path = tmp_path / "model64.npz"
    save_plm(plm64, path)
    restored = load_plm(path)  # process default stays float32
    for ours, theirs in zip(saved, restored.encoder.state_dict()):
        assert theirs.dtype == np.float64
        np.testing.assert_array_equal(ours, theirs)


def test_pre_dtype_archives_fall_back_to_array_dtype(tiny_plm, tmp_path):
    """Archives written before the dtype field still load faithfully."""
    path = tmp_path / "legacy.npz"
    save_plm(tiny_plm, path)
    with np.load(path, allow_pickle=False) as data:
        payload = {name: data[name] for name in data.files}
    meta = json.loads(str(payload["meta"]))
    del meta["dtype"]
    payload["meta"] = np.asarray(json.dumps(meta), dtype=np.str_)
    np.savez_compressed(path, **payload)
    restored = load_plm(path)
    for ours, theirs in zip(tiny_plm.encoder.state_dict(),
                            restored.encoder.state_dict()):
        assert theirs.dtype == ours.dtype
        np.testing.assert_array_equal(ours, theirs)


def test_load_plm_errors_are_typed(tiny_plm, tmp_path):
    with pytest.raises(ArtifactError, match="does not exist"):
        load_plm(tmp_path / "ghost.npz")
    path = tmp_path / "model.npz"
    save_plm(tiny_plm, path)
    truncated = tmp_path / "truncated.npz"
    truncated.write_bytes(path.read_bytes()[:256])
    with pytest.raises(ArtifactError, match="truncated.npz"):
        load_plm(truncated)


def test_mine_phrases_finds_collocation():
    docs = [["deep", "learning", "model"]] * 10 + [["deep", "sea"]] * 2 + [
        ["machine", "learning"]] * 2
    phrases = mine_phrases(docs, min_count=5, min_pmi=0.1)
    assert ("deep", "learning") in phrases


def test_mine_phrases_respects_min_count():
    docs = [["rare", "pair"]] * 2
    assert mine_phrases(docs, min_count=5) == []


def test_mine_phrases_skips_stopwords():
    docs = [["of", "course"]] * 20
    assert mine_phrases(docs, min_count=5, min_pmi=0.0) == []


def test_merge_phrases_greedy_non_overlapping():
    tokens = ["a", "b", "c", "b", "c"]
    merged = merge_phrases(tokens, {("b", "c")})
    assert merged == ["a", "b_c", "b_c"]


def test_phrase_corpus_roundtrip():
    docs = [["real", "estate", "market"]] * 8
    merged, phrases = phrase_corpus(docs, min_count=4, min_pmi=0.1)
    assert ("real", "estate") in phrases
    assert merged[0][0] == "real_estate"


def test_mine_phrases_empty_corpus():
    assert mine_phrases([]) == []
