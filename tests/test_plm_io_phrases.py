"""Tests for PLM persistence and phrase mining."""

import numpy as np
import pytest

from repro.plm.io import load_plm, save_plm
from repro.text.phrases import merge_phrases, mine_phrases, phrase_corpus


def test_save_load_roundtrip(tiny_plm, tmp_path):
    path = tmp_path / "model.npz"
    save_plm(tiny_plm, path)
    restored = load_plm(path)
    assert len(restored.vocabulary) == len(tiny_plm.vocabulary)
    assert restored.vocabulary.token(10) == tiny_plm.vocabulary.token(10)
    docs = [["soccer", "team", "championship"], ["market", "profit"]]
    original = tiny_plm.doc_embeddings(docs)
    roundtripped = restored.doc_embeddings(docs)
    assert np.allclose(original, roundtripped, atol=1e-10)


def test_save_load_preserves_masked_predictions(tiny_plm, tmp_path):
    path = tmp_path / "model.npz"
    save_plm(tiny_plm, path)
    restored = load_plm(path)
    tokens = ["soccer", "team", "won", "championship"]
    assert tiny_plm.predict_masked(tokens, 0, top_k=5) == \
        restored.predict_masked(tokens, 0, top_k=5)


def test_mine_phrases_finds_collocation():
    docs = [["deep", "learning", "model"]] * 10 + [["deep", "sea"]] * 2 + [
        ["machine", "learning"]] * 2
    phrases = mine_phrases(docs, min_count=5, min_pmi=0.1)
    assert ("deep", "learning") in phrases


def test_mine_phrases_respects_min_count():
    docs = [["rare", "pair"]] * 2
    assert mine_phrases(docs, min_count=5) == []


def test_mine_phrases_skips_stopwords():
    docs = [["of", "course"]] * 20
    assert mine_phrases(docs, min_count=5, min_pmi=0.0) == []


def test_merge_phrases_greedy_non_overlapping():
    tokens = ["a", "b", "c", "b", "c"]
    merged = merge_phrases(tokens, {("b", "c")})
    assert merged == ["a", "b_c", "b_c"]


def test_phrase_corpus_roundtrip():
    docs = [["real", "estate", "market"]] * 8
    merged, phrases = phrase_corpus(docs, min_count=4, min_pmi=0.1)
    assert ("real", "estate") in phrases
    assert merged[0][0] == "real_estate"


def test_mine_phrases_empty_corpus():
    assert mine_phrases([]) == []
