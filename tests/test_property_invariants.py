"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.classifiers.self_training import sharpen_distribution
from repro.core.seeding import ensure_rng
from repro.datasets.generator import build_world, generate_documents
from repro.datasets.profiles import ClassSpec, DatasetProfile, MixtureSpec
from repro.evaluation.ranking import (
    example_f1,
    ndcg_at_k,
    per_example_precision_at_k,
    precision_at_k,
)
from repro.nn import functional as F
from repro.nn.tensor import Tensor

THEMES = ["sports", "law", "food", "space"]


@st.composite
def tiny_profiles(draw):
    n_classes = draw(st.integers(min_value=2, max_value=4))
    doc_lo = draw(st.integers(min_value=5, max_value=12))
    doc_hi = doc_lo + draw(st.integers(min_value=1, max_value=10))
    classes = tuple(
        ClassSpec(label=t, theme=t,
                  weight=draw(st.floats(min_value=0.5, max_value=4.0)))
        for t in THEMES[:n_classes]
    )
    return DatasetProfile(
        name="prop", classes=classes, n_train=20, n_test=0,
        doc_len=(doc_lo, doc_hi), lexicon_size=12,
    )


@given(tiny_profiles(), st.integers(min_value=0, max_value=10**6))
@settings(max_examples=25, deadline=None)
def test_generator_invariants(profile, seed):
    """Every generated document has a valid label, nonempty tokens within
    the configured length budget (+2 for name injection)."""
    world = build_world(profile)
    docs = generate_documents(world, profile.n_train, ensure_rng(seed), "p-")
    labels = {c.label for c in profile.classes}
    lo, hi = profile.doc_len
    for doc in docs:
        assert doc.labels[0] in labels
        assert lo <= len(doc.tokens) <= hi + 2


@given(st.integers(min_value=0, max_value=10**6))
@settings(max_examples=10, deadline=None)
def test_generator_same_seed_same_corpus(seed):
    profile = DatasetProfile(
        name="det", classes=(ClassSpec(label="a", theme="sports"),
                             ClassSpec(label="b", theme="law")),
        n_train=10, n_test=0, lexicon_size=10, doc_len=(5, 9),
    )
    world_a = build_world(profile)
    world_b = build_world(profile)
    docs_a = generate_documents(world_a, 10, ensure_rng(seed), "x-")
    docs_b = generate_documents(world_b, 10, ensure_rng(seed), "x-")
    assert [d.tokens for d in docs_a] == [d.tokens for d in docs_b]


@given(st.lists(st.lists(st.floats(min_value=0.01, max_value=1.0),
                         min_size=3, max_size=3),
                min_size=1, max_size=20))
@settings(max_examples=50, deadline=None)
def test_sharpen_preserves_simplex(rows):
    proba = np.asarray(rows)
    proba /= proba.sum(axis=1, keepdims=True)
    sharpened = sharpen_distribution(proba)
    assert np.allclose(sharpened.sum(axis=1), 1.0)
    assert (sharpened >= 0).all()


@given(st.integers(min_value=1, max_value=6),
       st.integers(min_value=1, max_value=5))
@settings(max_examples=30, deadline=None)
def test_ranking_metric_bounds(n_docs, k):
    rng = np.random.default_rng(n_docs * 7 + k)
    labels = [f"l{i}" for i in range(8)]
    gold = [set(rng.choice(labels, size=2, replace=False)) for _ in range(n_docs)]
    rankings = [list(rng.permutation(labels)) for _ in range(n_docs)]
    p = precision_at_k(gold, rankings, k)
    n = ndcg_at_k(gold, rankings, k)
    assert 0.0 <= p <= 1.0
    assert 0.0 <= n <= 1.0
    per = per_example_precision_at_k(gold, rankings, k)
    assert np.isclose(per.mean(), p)


@given(st.integers(min_value=1, max_value=10))
@settings(max_examples=20, deadline=None)
def test_example_f1_identity(n):
    rng = np.random.default_rng(n)
    labels = [f"l{i}" for i in range(5)]
    gold = [set(rng.choice(labels, size=1 + n % 3, replace=False))
            for _ in range(n)]
    assert example_f1(gold, [tuple(g) for g in gold]) == 1.0


@given(st.lists(st.floats(min_value=-5, max_value=5),
                min_size=2, max_size=12))
@settings(max_examples=50, deadline=None)
def test_softmax_is_permutation_equivariant(values):
    x = np.asarray(values)
    perm = np.argsort(x)  # a deterministic permutation
    direct = F.softmax(Tensor(x[perm][None, :])).data[0]
    permuted = F.softmax(Tensor(x[None, :])).data[0][perm]
    assert np.allclose(direct, permuted, atol=1e-12)


@given(st.lists(st.floats(min_value=-3, max_value=3),
                min_size=2, max_size=8))
@settings(max_examples=50, deadline=None)
def test_softmax_shift_invariance(values):
    x = np.asarray(values)[None, :]
    a = F.softmax(Tensor(x)).data
    b = F.softmax(Tensor(x + 123.0)).data
    assert np.allclose(a, b, atol=1e-9)
