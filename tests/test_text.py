"""Unit + property tests for the text substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text.stopwords import STOPWORDS, remove_stopwords
from repro.text.tfidf import TfidfVectorizer
from repro.text.tokenizer import ngrams, sentences, tokenize
from repro.text.vocabulary import SPECIAL_TOKENS, Vocabulary


def test_tokenize_lowercases_and_splits():
    assert tokenize("Hello, World! 42") == ["hello", "world", "42"]


def test_tokenize_keeps_internal_hyphens():
    assert tokenize("state-of-the-art") == ["state-of-the-art"]


def test_sentences_split():
    assert sentences("One. Two! Three?") == ["One.", "Two!", "Three?"]


def test_ngrams():
    assert ngrams(["a", "b", "c"], 2) == [("a", "b"), ("b", "c")]


def test_remove_stopwords():
    assert remove_stopwords(["the", "match", "was", "great"]) == ["match", "great"]


def test_vocabulary_build_and_lookup():
    vocab = Vocabulary.build([["a", "b", "a"], ["b", "c"]])
    assert len(vocab) == len(SPECIAL_TOKENS) + 3
    assert vocab.token(vocab.id("a")) == "a"
    assert vocab.id("unseen") == vocab.unk_id
    assert vocab.frequency("a") == 2


def test_vocabulary_min_count_filters():
    vocab = Vocabulary.build([["a", "a", "b"]], min_count=2)
    assert "a" in vocab and "b" not in vocab


def test_vocabulary_max_size_caps():
    vocab = Vocabulary.build([list("aabbc")], max_size=2)
    assert len(vocab.content_tokens()) == 2


def test_vocabulary_unigram_distribution_sums_to_one():
    vocab = Vocabulary.build([["a", "b", "b"]])
    dist = vocab.unigram_distribution()
    assert abs(dist.sum() - 1.0) < 1e-12
    assert all(dist[i] == 0 for i in vocab.special_ids)


@given(st.lists(st.sampled_from(["cat", "dog", "fish", "bird"]),
                min_size=1, max_size=30))
@settings(max_examples=50, deadline=None)
def test_vocabulary_encode_decode_roundtrip(tokens):
    vocab = Vocabulary.build([tokens])
    assert vocab.decode(vocab.encode(tokens)) == tokens


def test_tfidf_shapes_and_normalization():
    docs = [["cat", "dog"], ["dog", "dog", "fish"], ["bird"]]
    vec = TfidfVectorizer()
    mat = vec.fit_transform(docs)
    assert mat.shape[0] == 3
    norms = np.sqrt(np.asarray(mat.multiply(mat).sum(axis=1))).ravel()
    assert np.allclose(norms[norms > 0], 1.0)


def test_tfidf_rare_terms_outweigh_common():
    docs = [["common", "rare"], ["common"], ["common"]]
    vec = TfidfVectorizer()
    mat = vec.fit_transform(docs).toarray()
    vocab = vec.vocabulary
    assert mat[0, vocab.id("rare")] > mat[0, vocab.id("common")]


def test_tfidf_top_terms():
    docs = [["alpha", "alpha", "beta"], ["beta", "gamma"]]
    vec = TfidfVectorizer()
    vec.fit(docs)
    top = vec.top_terms([["alpha", "alpha", "beta"]], k=1)
    assert top[0] == ["alpha"]


def test_tfidf_drops_stopwords():
    docs = [["the", "match"], ["match", "replay"]]
    vec = TfidfVectorizer(drop_stopwords=True)
    vec.fit(docs)
    assert "the" not in vec.vocabulary
