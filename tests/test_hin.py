"""Tests for the heterogeneous-network substrate."""

import pytest

from repro.core.types import Corpus, Document
from repro.hin.graph import HeterogeneousGraph
from repro.hin.metapath import P_REF_P, P_USER_P, MetaPath, metapath_pairs
from repro.hin.random_walk import metapath_random_walks


def _meta_corpus():
    docs = [
        Document(doc_id="d0", tokens=["a"], labels=("x",),
                 metadata={"user": "u1", "tags": ["t1"],
                           "references": ["d2"]}),
        Document(doc_id="d1", tokens=["b"], labels=("x",),
                 metadata={"user": "u1", "tags": ["t1", "t2"],
                           "references": ["d2"]}),
        Document(doc_id="d2", tokens=["c"], labels=("y",),
                 metadata={"user": "u2", "tags": ["t2"]}),
    ]
    return Corpus(docs, name="meta")


def test_graph_from_corpus_types():
    graph = HeterogeneousGraph.from_corpus(_meta_corpus())
    assert set(graph.node_types) == {"doc", "user", "tag"}
    assert len(graph.nodes("doc")) == 3
    assert len(graph.nodes("user")) == 2


def test_graph_neighbors_filtering():
    graph = HeterogeneousGraph.from_corpus(_meta_corpus())
    docs_of_u1 = graph.neighbors(("user", "u1"), node_type="doc")
    assert [n[1] for n in docs_of_u1] == ["d0", "d1"]
    refs = graph.neighbors(("doc", "d0"), edge_type="doc-ref")
    assert ("doc", "d2") in refs


def test_graph_degree_and_contains():
    graph = HeterogeneousGraph.from_corpus(_meta_corpus())
    assert ("doc", "d0") in graph
    assert graph.degree(("user", "u1")) == 2


def test_metapath_validation():
    with pytest.raises(ValueError):
        MetaPath(("doc",))
    with pytest.raises(ValueError):
        MetaPath(("doc", "user"), edge_types=("a", "b"))


def test_metapath_pairs_user():
    graph = HeterogeneousGraph.from_corpus(_meta_corpus())
    pairs = metapath_pairs(graph, P_USER_P, n_pairs=10, seed=0)
    assert ("d0", "d1") in pairs or ("d1", "d0") in pairs


def test_metapath_pairs_reference():
    graph = HeterogeneousGraph.from_corpus(_meta_corpus())
    pairs = metapath_pairs(graph, P_REF_P, n_pairs=10, seed=0)
    # d0 and d1 both reference d2.
    flattened = {frozenset(p) for p in pairs}
    assert frozenset(("d0", "d1")) in flattened


def test_random_walks_follow_pattern():
    graph = HeterogeneousGraph.from_corpus(_meta_corpus())
    walks = metapath_random_walks(graph, P_USER_P, walks_per_node=2,
                                  walk_length=5, seed=0)
    assert walks
    for walk in walks:
        kinds = [t.split(":")[0] for t in walk]
        for i, kind in enumerate(kinds):
            assert kind == ("doc" if i % 2 == 0 else "user")


def test_random_walks_require_cyclic_path():
    graph = HeterogeneousGraph.from_corpus(_meta_corpus())
    with pytest.raises(ValueError):
        metapath_random_walks(graph, MetaPath(("doc", "user")), seed=0)
