"""Unit tests for supervision formats."""

import pytest

from repro.core.exceptions import SupervisionError
from repro.core.supervision import (
    Keywords,
    LabeledDocuments,
    LabelNames,
    require,
)
from repro.core.types import Document, LabelSet

LS = LabelSet(labels=("a", "b"))


def _doc(i, label):
    return Document(doc_id=f"d{i}", tokens=["w"], labels=(label,))


def test_keywords_requires_all_labels():
    with pytest.raises(SupervisionError):
        Keywords(label_set=LS, keywords={"a": ["x"]})


def test_keywords_lookup():
    kw = Keywords(label_set=LS, keywords={"a": ["x"], "b": ["y", "z"]})
    assert kw.for_label("b") == ["y", "z"]
    assert kw.labels == ("a", "b")


def test_labeled_documents_pairs_and_corpus():
    sup = LabeledDocuments(
        label_set=LS,
        documents={"a": [_doc(0, "a")], "b": [_doc(1, "b"), _doc(2, "b")]},
    )
    pairs = sup.pairs()
    assert len(pairs) == 3
    assert pairs[0][1] == "a"
    assert len(sup.as_corpus()) == 3


def test_labeled_documents_requires_all_labels():
    with pytest.raises(SupervisionError):
        LabeledDocuments(label_set=LS, documents={"a": [_doc(0, "a")], "b": []})


def test_require_accepts_listed_formats():
    names = LabelNames(label_set=LS)
    assert require(names, LabelNames) is names


def test_require_rejects_other_formats():
    names = LabelNames(label_set=LS)
    with pytest.raises(SupervisionError):
        require(names, Keywords)
