"""Tests for LOTClass: category vocabulary + MCP + self-training."""

import numpy as np
import pytest

from repro.evaluation.metrics import micro_f1
from repro.methods.lotclass import LOTClass, build_category_vocabulary
from repro.methods.lotclass.category_vocab import collect_name_occurrences


def test_collect_name_occurrences(agnews_small):
    occurrences = collect_name_occurrences(agnews_small.train_corpus, "sports",
                                           max_occurrences=5)
    assert 0 < len(occurrences) <= 5
    for tokens, position in occurrences:
        assert tokens[position] == "sports"


def test_category_vocabulary_contains_name(tiny_plm, agnews_small):
    vocab = build_category_vocabulary(tiny_plm, agnews_small.train_corpus,
                                      agnews_small.label_set, top_k=10,
                                      vocab_size=20)
    for label in agnews_small.label_set:
        assert vocab[label], label
        assert agnews_small.label_set.name_tokens(label)[0] in vocab[label]


def test_category_vocabularies_mostly_disjoint(tiny_plm, agnews_small):
    vocab = build_category_vocabulary(tiny_plm, agnews_small.train_corpus,
                                      agnews_small.label_set, top_k=10,
                                      vocab_size=20)
    labels = list(agnews_small.label_set)
    for i, a in enumerate(labels):
        for b in labels[i + 1:]:
            overlap = set(vocab[a]) & set(vocab[b])
            assert len(overlap) <= 2, (a, b, overlap)


def test_lotclass_beats_chance(tiny_plm, agnews_small):
    gold = [d.labels[0] for d in agnews_small.test_corpus]
    clf = LOTClass(plm=tiny_plm, self_train_iterations=2, seed=0)
    clf.fit(agnews_small.train_corpus, agnews_small.label_names())
    assert micro_f1(gold, clf.predict(agnews_small.test_corpus)) > 0.4


def test_lotclass_without_self_train(tiny_plm, agnews_small):
    clf = LOTClass(plm=tiny_plm, self_train=False, seed=0)
    clf.fit(agnews_small.train_corpus, agnews_small.label_names())
    proba = clf.predict_proba(agnews_small.test_corpus)
    assert np.allclose(proba.sum(axis=1), 1.0)


def test_lotclass_rejects_keyword_supervision(tiny_plm, agnews_small):
    from repro.core.exceptions import SupervisionError

    clf = LOTClass(plm=tiny_plm, seed=0)
    with pytest.raises(SupervisionError):
        clf.fit(agnews_small.train_corpus, agnews_small.keywords())
