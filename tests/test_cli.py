"""Tests for the experiment CLI."""

import pytest

from repro.experiments.cli import FIGURES, TABLES, main


def test_cli_list(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "westclass" in out and "pca-figure" in out


def test_cli_no_args_lists(capsys):
    assert main([]) == 0
    assert "tables:" in capsys.readouterr().out


def test_cli_unknown_experiment(capsys):
    assert main(["not-real"]) == 2


def test_cli_summary_table(capsys):
    assert main(["summary"]) == 0
    out = capsys.readouterr().out
    assert "WeSTClass" in out and "MICoL" in out


def test_cli_registry_complete():
    # Every paper experiment id has a CLI entry.
    assert set(TABLES) >= {
        "westclass", "conwea", "lotclass", "lotclass-predictions",
        "xclass", "xclass-data", "promptclass", "weshclass", "taxoclass",
        "metacat", "micol", "summary",
    }
    assert set(FIGURES) == {"pca-figure", "confusion-figure"}
