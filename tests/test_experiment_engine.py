"""Experiment engine: fan-out equality, failure isolation, memoization.

The runners here are module-level on purpose — specs must pickle into
spawn workers, which is exactly the constraint the engine imposes on
``tables.py``.
"""

import time

import pytest

from repro.experiments.engine import (
    RowSpec,
    clear_memo_memory,
    derive_row_seed,
    memo_key,
    run_specs,
    take_last_report,
)

pytestmark = pytest.mark.harness


def _metric_row(row_seed, base, log_path=None):
    if log_path is not None:
        with open(log_path, "a") as fh:
            fh.write("call\n")
    return {"score": (row_seed * 31 + base) % 997 / 997.0}


def _raising_row(row_seed):
    raise ValueError("poisoned")


def _oom_row(row_seed):
    raise MemoryError


def _hanging_row(row_seed):
    time.sleep(120.0)
    return {}


def _specs(n, table="t", dataset="d0", log_path=None):
    kwargs = {"log_path": str(log_path)} if log_path is not None else {}
    return [
        RowSpec(table=table, name=f"row{i}", runner=_metric_row,
                kwargs={"base": i, **kwargs}, static={"Method": f"m{i}"},
                dataset=dataset)
        for i in range(n)
    ]


def _calls(log_path):
    try:
        return len(log_path.read_text().splitlines())
    except OSError:
        return 0


def _strip_seconds(rows):
    return [{k: v for k, v in row.items() if k != "seconds"} for row in rows]


def test_row_seeds_are_stable_and_sharded():
    # Pinned: derived seeds are part of the memo-key contract.
    assert derive_row_seed(0, "row0") == 1548062754
    assert derive_row_seed(1, "row0") == 2085109840
    assert derive_row_seed(0, "row1") == 2127226448


def test_parallel_rows_equal_serial_rows(tmp_path):
    specs = _specs(6)
    serial = run_specs(specs, table_seed=3, jobs=1, use_cache=False)
    parallel = run_specs(specs, table_seed=3, jobs=4, use_cache=False)
    assert _strip_seconds(parallel) == _strip_seconds(serial)
    assert all("seconds" in row for row in serial)
    report = take_last_report()
    assert report.jobs == 4 and report.rows == 6 and report.errors == 0


def test_poisoned_rows_do_not_kill_the_table(tmp_path):
    specs = _specs(4)
    specs[1] = RowSpec(table="t", name="boom", runner=_raising_row)
    specs[2] = RowSpec(table="t", name="oom", runner=_oom_row)
    rows = run_specs(specs, table_seed=0, jobs=2, use_cache=False)
    assert rows[1]["error"] == "ValueError: poisoned"
    assert rows[2]["error"] == "-"  # MemoryError -> the papers' literal "-"
    assert "score" in rows[0] and "score" in rows[3]
    assert take_last_report().errors == 2


def test_hung_row_times_out_without_killing_the_table():
    specs = _specs(3)
    specs[1] = RowSpec(table="t", name="hang", runner=_hanging_row)
    # The per-row deadline starts at dispatch, so it also covers worker
    # startup — keep it comfortably above spawn+import cost.
    rows = run_specs(specs, table_seed=0, jobs=2, use_cache=False,
                     timeout=15.0)
    assert "timeout" in rows[1]["error"]
    assert "score" in rows[0] and "score" in rows[2]
    report = take_last_report()
    assert report.timeouts == 1 and report.errors == 1


def test_warm_memo_store_runs_zero_factories(tmp_path):
    log = tmp_path / "calls.log"
    store = tmp_path / "rows"
    specs = _specs(4, log_path=log)
    cold = run_specs(specs, table_seed=0, jobs=1, cache_dir=store)
    assert _calls(log) == 4
    assert take_last_report().misses == 4

    warm = run_specs(specs, table_seed=0, jobs=1, cache_dir=store)
    assert _calls(log) == 4  # zero new factory calls
    assert take_last_report().hits == 4
    assert warm == cold  # seconds included: payloads are replayed verbatim

    clear_memo_memory()  # drop the memory tier: disk alone must hit too
    disk = run_specs(specs, table_seed=0, jobs=1, cache_dir=store)
    assert _calls(log) == 4
    assert take_last_report().hits == 4
    assert disk == cold


def test_seed_and_dataset_changes_bust_the_memo_key(tmp_path):
    log = tmp_path / "calls.log"
    store = tmp_path / "rows"
    specs = _specs(2, log_path=log)
    run_specs(specs, table_seed=0, jobs=1, cache_dir=store)
    assert _calls(log) == 2

    run_specs(specs, table_seed=1, jobs=1, cache_dir=store)
    assert _calls(log) == 4  # new table seed -> recomputed

    refingerprinted = _specs(2, dataset="d1", log_path=log)
    run_specs(refingerprinted, table_seed=0, jobs=1, cache_dir=store)
    assert _calls(log) == 6  # new dataset fingerprint -> recomputed

    spec = specs[0]
    seed = derive_row_seed(0, spec.name)
    assert memo_key(spec, seed) != memo_key(spec, derive_row_seed(1, spec.name))
    assert memo_key(spec, seed) != memo_key(refingerprinted[0], seed)


def test_errors_are_never_memoized(tmp_path):
    store = tmp_path / "rows"
    specs = [RowSpec(table="t", name="boom", runner=_raising_row)]
    run_specs(specs, table_seed=0, jobs=1, cache_dir=store)
    run_specs(specs, table_seed=0, jobs=1, cache_dir=store)
    assert take_last_report().misses == 1  # re-attempted, not replayed


def test_static_rows_pass_through():
    specs = [RowSpec(table="t", name="static", runner=None,
                     static={"Method": "TextGCN", "Micro-F1": "-"})]
    rows = run_specs(specs, table_seed=0, jobs=1, use_cache=False)
    assert rows == [{"Method": "TextGCN", "Micro-F1": "-", "seconds": 0.0}]
