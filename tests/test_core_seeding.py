"""Unit tests for seeding utilities."""

import numpy as np
import pytest

from repro.core.seeding import derive_rng, ensure_rng, spawn_seeds


def test_ensure_rng_from_int_is_deterministic():
    a = ensure_rng(7).integers(0, 1000, size=5)
    b = ensure_rng(7).integers(0, 1000, size=5)
    assert (a == b).all()


def test_ensure_rng_passthrough():
    gen = np.random.default_rng(0)
    assert ensure_rng(gen) is gen


def test_ensure_rng_rejects_strings():
    with pytest.raises(TypeError):
        ensure_rng("nope")


def test_derive_rng_label_sensitivity():
    a = derive_rng(np.random.default_rng(0), "x").integers(0, 10**9)
    b = derive_rng(np.random.default_rng(0), "y").integers(0, 10**9)
    assert a != b


def test_derive_rng_reproducible():
    a = derive_rng(np.random.default_rng(3), "k").integers(0, 10**9)
    b = derive_rng(np.random.default_rng(3), "k").integers(0, 10**9)
    assert a == b


def test_spawn_seeds_count_and_range():
    seeds = spawn_seeds(np.random.default_rng(0), 10)
    assert len(seeds) == 10
    assert all(0 <= s < 2**31 for s in seeds)
