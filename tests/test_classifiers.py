"""Tests for the neural classifier substrate."""

import numpy as np
import pytest

from repro.classifiers import (
    AttentiveClassifier,
    BagOfEmbeddingsClassifier,
    LogisticRegression,
    SelfTrainingLoop,
    TextCNNClassifier,
    sharpen_distribution,
)
from repro.classifiers.base import as_soft_targets
from repro.core.exceptions import NotFittedError
from repro.text.vocabulary import Vocabulary


def _toy_task(rng, n=80):
    """Linearly separable 2-class token task."""
    docs, targets = [], []
    for i in range(n):
        cls = i % 2
        words = (["red", "crimson", "scarlet"] if cls == 0
                 else ["blue", "azure", "navy"])
        doc = [words[int(rng.integers(0, 3))] for _ in range(6)]
        doc += ["filler"] * 2
        docs.append(doc)
        targets.append(cls)
    vocab = Vocabulary.build(docs)
    return docs, np.array(targets), vocab


def test_as_soft_targets_from_hard():
    soft = as_soft_targets(np.array([0, 2]), 3)
    assert soft.shape == (2, 3)
    assert soft[0, 0] == 1.0 and soft[1, 2] == 1.0


def test_as_soft_targets_validates_width():
    with pytest.raises(ValueError):
        as_soft_targets(np.ones((2, 4)), 3)


@pytest.mark.parametrize("cls", [TextCNNClassifier, AttentiveClassifier,
                                 BagOfEmbeddingsClassifier])
def test_classifiers_learn_separable_task(rng, cls):
    docs, targets, vocab = _toy_task(rng)
    model = cls(vocab, 2, dim=16, seed=0)
    model.fit(docs, targets, epochs=8)
    accuracy = float((model.predict(docs) == targets).mean())
    assert accuracy > 0.9


def test_classifier_predict_before_fit_raises(rng):
    docs, _, vocab = _toy_task(rng, n=4)
    model = TextCNNClassifier(vocab, 2, dim=8, seed=0)
    with pytest.raises(NotFittedError):
        model.predict_proba(docs)


def test_classifier_proba_rows_sum_to_one(rng):
    docs, targets, vocab = _toy_task(rng, n=20)
    model = BagOfEmbeddingsClassifier(vocab, 2, dim=8, seed=0)
    model.fit(docs, targets, epochs=2)
    proba = model.predict_proba(docs)
    assert np.allclose(proba.sum(axis=1), 1.0)


def test_classifier_handles_empty_and_short_docs(rng):
    docs, targets, vocab = _toy_task(rng, n=20)
    model = TextCNNClassifier(vocab, 2, dim=8, seed=0)
    model.fit(docs, targets, epochs=2)
    proba = model.predict_proba([[], ["red"]])
    assert proba.shape == (2, 2)
    assert np.isfinite(proba).all()


def test_classifier_embedding_table_validation(rng):
    docs, _, vocab = _toy_task(rng, n=4)
    with pytest.raises(ValueError):
        TextCNNClassifier(vocab, 2, dim=8,
                          embedding_table=np.zeros((3, 8)), seed=0)


def test_classifier_accepts_soft_targets(rng):
    docs, targets, vocab = _toy_task(rng, n=30)
    soft = as_soft_targets(targets, 2) * 0.8 + 0.1
    model = AttentiveClassifier(vocab, 2, dim=8, seed=0)
    model.fit(docs, soft, epochs=6)
    assert float((model.predict(docs) == targets).mean()) > 0.8


def test_attention_exposes_weights(rng):
    docs, targets, vocab = _toy_task(rng, n=20)
    model = AttentiveClassifier(vocab, 2, dim=8, seed=0)
    model.fit(docs, targets, epochs=1)
    model.predict_proba(docs[:4])
    assert model.last_attention is not None
    assert np.allclose(model.last_attention.sum(axis=1), 1.0, atol=1e-6)


def test_logistic_regression_learns(rng):
    x = rng.normal(size=(100, 5))
    y = (x[:, 0] > 0).astype(int)
    model = LogisticRegression(5, 2, seed=0)
    model.fit(x, y, epochs=40)
    assert float((model.predict(x) == y).mean()) > 0.9


def test_logistic_regression_unfitted_raises():
    with pytest.raises(NotFittedError):
        LogisticRegression(3, 2).predict_proba(np.zeros((1, 3)))


def test_sharpen_distribution_increases_confidence():
    proba = np.array([[0.6, 0.4], [0.3, 0.7]])
    sharpened = sharpen_distribution(proba)
    assert sharpened[0, 0] > proba[0, 0]
    assert np.allclose(sharpened.sum(axis=1), 1.0)


def test_sharpen_distribution_downweights_frequent_class():
    proba = np.array([[0.6, 0.4]] * 9 + [[0.4, 0.6]])
    sharpened = sharpen_distribution(proba)
    # Class 0 is predicted 9x more often; frequency normalization should
    # soften its dominance relative to naive squaring.
    naive = proba**2 / (proba**2).sum(axis=1, keepdims=True)
    assert sharpened[0, 0] < naive[0, 0]


def test_self_training_loop_improves_noisy_start(rng):
    docs, targets, vocab = _toy_task(rng, n=100)
    model = BagOfEmbeddingsClassifier(vocab, 2, dim=16, seed=0)
    noisy = targets.copy()
    flip = rng.permutation(100)[:25]
    noisy[flip] = 1 - noisy[flip]
    model.fit(docs, noisy, epochs=3)
    before = float((model.predict(docs) == targets).mean())
    loop = SelfTrainingLoop(max_iterations=4, epochs_per_iteration=2)
    loop.run(model, docs)
    after = float((model.predict(docs) == targets).mean())
    assert after >= before - 0.02
    assert loop.history  # at least one round ran
