"""Tests for PromptClass and the zero-shot prompting scorers."""

import numpy as np
import pytest

from repro.evaluation.metrics import micro_f1
from repro.methods.promptclass import (
    PromptClass,
    electra_zero_shot_proba,
    mlm_zero_shot_proba,
)


def test_mlm_zero_shot_proba_shape(tiny_plm, agnews_small):
    proba = mlm_zero_shot_proba(tiny_plm, agnews_small.test_corpus[:10],
                                agnews_small.label_set)
    assert proba.shape == (10, len(agnews_small.label_set))
    assert np.allclose(proba.sum(axis=1), 1.0)


def test_mlm_zero_shot_beats_chance(tiny_plm, agnews_small):
    gold = [d.labels[0] for d in agnews_small.test_corpus]
    proba = mlm_zero_shot_proba(tiny_plm, agnews_small.test_corpus,
                                agnews_small.label_set)
    labels = list(agnews_small.label_set)
    predicted = [labels[int(i)] for i in proba.argmax(axis=1)]
    assert micro_f1(gold, predicted) > 0.35


def test_electra_zero_shot_proba_shape(tiny_electra, agnews_small):
    proba = electra_zero_shot_proba(tiny_electra, agnews_small.test_corpus[:8],
                                    agnews_small.label_set)
    assert proba.shape == (8, len(agnews_small.label_set))
    assert np.allclose(proba.sum(axis=1), 1.0)


def test_promptclass_zero_shot_only_mode(tiny_plm, agnews_small):
    clf = PromptClass(plm=tiny_plm, zero_shot_only=True, seed=0)
    clf.fit(agnews_small.train_corpus, agnews_small.label_names())
    assert clf._head is None
    proba = clf.predict_proba(agnews_small.test_corpus)
    assert np.allclose(proba.sum(axis=1), 1.0)


def test_promptclass_cotraining_improves_or_matches_zero_shot(
        tiny_plm, agnews_small):
    gold = [d.labels[0] for d in agnews_small.test_corpus]
    zero = PromptClass(plm=tiny_plm, zero_shot_only=True, seed=0)
    zero.fit(agnews_small.train_corpus, agnews_small.label_names())
    full = PromptClass(plm=tiny_plm, rounds=2, seed=0)
    full.fit(agnews_small.train_corpus, agnews_small.label_names())
    zero_score = micro_f1(gold, zero.predict(agnews_small.test_corpus))
    full_score = micro_f1(gold, full.predict(agnews_small.test_corpus))
    assert full_score >= zero_score - 0.05


def test_promptclass_electra_backend(tiny_plm, agnews_small):
    clf = PromptClass(plm=tiny_plm, prompt_backend="electra", rounds=1, seed=0)
    clf.fit(agnews_small.train_corpus, agnews_small.label_names())
    assert len(clf.predict(agnews_small.test_corpus)) == len(
        agnews_small.test_corpus
    )


def test_promptclass_rejects_unknown_backend():
    with pytest.raises(ValueError):
        PromptClass(prompt_backend="gpt")
