"""Tests for MetaCat and its metadata embedding space."""

import numpy as np
import pytest

from repro.evaluation.metrics import micro_f1
from repro.methods.metacat import MetaCat, MetadataEmbeddingSpace


def test_embedding_space_contains_entities(meta_small):
    sup = meta_small.labeled_documents(3)
    doc_labels = {doc.doc_id: label for doc, label in sup.pairs()}
    space = MetadataEmbeddingSpace(dim=24, epochs=3, seed=0)
    space.fit(meta_small.train_corpus, doc_labels)
    some_user = meta_small.train_corpus[0].metadata["user"]
    assert space.has_entity("user", some_user)
    assert space.entity_vector("user", some_user).shape == (24,)


def test_embedding_space_streams_broadcast_globals(meta_small):
    space = MetadataEmbeddingSpace(dim=16, seed=0)
    streams = space.build_streams(meta_small.train_corpus)
    stream = streams[0]
    user_token = f"__user__{meta_small.train_corpus[0].metadata['user']}"
    assert stream.count(user_token) >= 2  # broadcast through the document


def test_top_words_exclude_entities(meta_small):
    sup = meta_small.labeled_documents(3)
    doc_labels = {doc.doc_id: label for doc, label in sup.pairs()}
    space = MetadataEmbeddingSpace(dim=24, epochs=3, seed=0)
    space.fit(meta_small.train_corpus, doc_labels)
    label = list(meta_small.label_set)[0]
    words = space.top_words_for_label(label, k=10)
    assert all(not w.startswith("__") for w, _ in words)


def test_metacat_beats_chance(meta_small):
    gold = [d.labels[0] for d in meta_small.test_corpus]
    clf = MetaCat(synth_per_class=15, epochs=8, seed=0)
    clf.fit(meta_small.train_corpus, meta_small.labeled_documents(5))
    score = micro_f1(gold, clf.predict(meta_small.test_corpus))
    assert score > 2.0 / len(meta_small.label_set)


def test_metacat_metadata_helps_on_small_corpus(meta_small):
    gold = [d.labels[0] for d in meta_small.test_corpus]
    sup = meta_small.labeled_documents(5)
    with_meta = MetaCat(synth_per_class=15, epochs=10, seed=0)
    with_meta.fit(meta_small.train_corpus, sup)
    without = MetaCat(synth_per_class=15, epochs=10, use_metadata=False, seed=0)
    without.fit(meta_small.train_corpus, sup)
    score_with = micro_f1(gold, with_meta.predict(meta_small.test_corpus))
    score_without = micro_f1(gold, without.predict(meta_small.test_corpus))
    assert score_with >= score_without - 0.05


def test_metacat_requires_labeled_docs(meta_small):
    from repro.core.exceptions import SupervisionError

    with pytest.raises(SupervisionError):
        MetaCat(seed=0).fit(meta_small.train_corpus, meta_small.label_names())


def test_metacat_synthetic_docs_include_entities(meta_small):
    clf = MetaCat(synth_per_class=5, epochs=1, seed=0)
    clf.fit(meta_small.train_corpus, meta_small.labeled_documents(3))
    label = list(meta_small.label_set)[0]
    from repro.core.seeding import derive_rng

    docs = clf._synthesize(label, np.random.default_rng(0))
    assert any(any(t.startswith("__") for t in doc) for doc in docs)
