"""Quantized predict-only artifacts: formats, gate, registry, CLI.

The contract under test: ``quantize="int8"`` / ``"float16"`` produce
smaller archives whose dequantized weights are deterministic — the same
archive loads bit-identically in this process and in a fresh
interpreter — and every quantized export passes through an
accuracy-delta gate that refuses to publish an artifact whose
predictions diverge from the float32 reference beyond the threshold.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core.exceptions import ArtifactError
from repro.datasets import load_profile
from repro.methods import XClass
from repro.plm.io import (
    QUANTIZE_MODES,
    dequantize_int8,
    load_plm,
    quantize_int8,
    save_plm,
)
from repro.serve import ModelRegistry, export_artifact, load_artifact
from repro.serve import artifacts as artifacts_mod

pytestmark = pytest.mark.serving

SRC = Path(__file__).resolve().parent.parent / "src"


@pytest.fixture(scope="module")
def quant_bundle():
    return load_profile("agnews", seed=0, scale=0.3)


@pytest.fixture(scope="module")
def fitted(quant_bundle, tiny_plm):
    model = XClass(plm=tiny_plm, seed=0)
    model.fit(quant_bundle.train_corpus, quant_bundle.label_names())
    return model


# ---------------------------------------------------------------------------
# Quantization kernels
# ---------------------------------------------------------------------------

def test_int8_codes_and_scales_shapes(rng):
    weights = rng.standard_normal((16, 8)).astype(np.float32)
    codes, scales = quantize_int8(weights)
    assert codes.dtype == np.int8 and codes.shape == weights.shape
    assert scales.dtype == np.float32 and scales.shape == (16, 1)
    # Absmax rows hit the full code range; reconstruction is close.
    assert np.abs(codes).max() == 127
    restored = dequantize_int8(codes, scales, "float32")
    assert restored.dtype == np.float32
    np.testing.assert_allclose(restored, weights,
                               atol=float(np.abs(weights).max()) / 127 + 1e-7)


def test_int8_zero_rows_do_not_divide_by_zero():
    weights = np.zeros((3, 4), dtype=np.float32)
    weights[1] = [1.0, -2.0, 0.5, 0.0]
    codes, scales = quantize_int8(weights)
    assert scales[0] == 1.0 and scales[2] == 1.0
    restored = dequantize_int8(codes, scales, "float32")
    np.testing.assert_array_equal(restored[0], 0.0)
    np.testing.assert_array_equal(restored[2], 0.0)


def test_int8_dequantization_is_deterministic(rng):
    weights = rng.standard_normal((32, 16)).astype(np.float32)
    codes, scales = quantize_int8(weights)
    a = dequantize_int8(codes, scales, "float32")
    b = dequantize_int8(codes.copy(), scales.copy(), "float32")
    np.testing.assert_array_equal(a, b)


# ---------------------------------------------------------------------------
# PLM archive round-trips
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("mode", QUANTIZE_MODES)
def test_quantized_archive_smaller_and_bit_stable(tiny_plm, tmp_path, mode):
    full = save_plm(tiny_plm, tmp_path / "full.npz")
    quant = save_plm(tiny_plm, tmp_path / f"{mode}.npz", quantize=mode)
    assert quant.stat().st_size < full.stat().st_size

    first = load_plm(quant)
    second = load_plm(quant)
    for a, b in zip(first.encoder.state_dict(), second.encoder.state_dict()):
        assert a.dtype == np.float32
        np.testing.assert_array_equal(a, b)

    # Lossy but close: dequantized weights track the originals.
    atol = {"int8": 5e-2, "float16": 5e-3}[mode]
    for ours, theirs in zip(tiny_plm.encoder.state_dict(),
                            first.encoder.state_dict()):
        np.testing.assert_allclose(ours, theirs, atol=atol)


def test_unknown_quantize_mode_is_typed_error(tiny_plm, tmp_path):
    with pytest.raises(ArtifactError, match="unknown quantize mode"):
        save_plm(tiny_plm, tmp_path / "bad.npz", quantize="int4")


def test_quantized_load_enables_fused_infer(tiny_plm, tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_ENGINE_FUSED_INFER", raising=False)
    quant = save_plm(tiny_plm, tmp_path / "q.npz", quantize="int8")
    assert load_plm(quant).engine.fused_infer
    assert not load_plm(save_plm(tiny_plm, tmp_path / "f.npz")).engine.fused_infer
    # An explicit env veto wins over the quantized default.
    monkeypatch.setenv("REPRO_ENGINE_FUSED_INFER", "0")
    assert not load_plm(quant).engine.fused_infer


# ---------------------------------------------------------------------------
# Export gate
# ---------------------------------------------------------------------------

def test_quantized_export_records_gate_outcome(fitted, quant_bundle, tmp_path):
    probe = quant_bundle.test_corpus[:24]
    path = export_artifact(fitted, tmp_path / "int8", quantize="int8",
                           probe=probe)
    manifest = json.loads((path / "manifest.json").read_text())
    assert manifest["quantize"] == "int8"
    check = manifest["quantize_check"]
    assert check["probe_docs"] == 24
    assert check["accuracy_delta"] <= check["max_accuracy_delta"]

    loaded = load_artifact(path)
    assert loaded.quantize == "int8"
    # The quantized engine path serves real predictions over the probe.
    assert len(loaded.predict(quant_bundle.test_corpus.token_lists()[:8])) == 8


def test_gate_refuses_and_publishes_nothing(fitted, quant_bundle, tmp_path,
                                            monkeypatch):
    monkeypatch.setattr(artifacts_mod, "_prediction_delta",
                        lambda ref, quant: 7.5)
    target = tmp_path / "diverged"
    with pytest.raises(ArtifactError, match="accuracy delta 7.50"):
        export_artifact(fitted, target, quantize="int8",
                        probe=quant_bundle.test_corpus[:16])
    # Refusal is atomic: no half-written artifact directory remains.
    assert not target.exists()


def test_gate_scores_multilabel_predictions():
    delta = artifacts_mod._prediction_delta(
        [("a", "b"), ("c",)], [("a", "b"), ("c",)])
    assert delta == 0.0
    diverged = artifacts_mod._prediction_delta(
        [("a", "b"), ("c",)], [("a",), ("c", "b")])
    assert diverged > 0.0


def test_gate_refuses_mixed_arity_predictions():
    # A quantized reload that changes the prediction *shape* (bare labels
    # vs label sets) must fail typed, not produce a meaningless F1.
    with pytest.raises(ArtifactError, match="mixed\\s+arity"):
        artifacts_mod._prediction_delta(["a", "b"], [("a",), ("b",)])
    with pytest.raises(ArtifactError, match="mixed\\s+arity"):
        artifacts_mod._prediction_delta(["a", ("b",)], ["a", ("b",)])
    # Strings are bare labels, never iterated as label collections.
    assert artifacts_mod._prediction_delta(["ab", "cd"], ["ab", "cd"]) == 0.0


def test_quantized_export_requires_probe(fitted, tmp_path):
    with pytest.raises(ArtifactError, match="probe"):
        export_artifact(fitted, tmp_path / "noprobe", quantize="int8")
    # Explicitly opting out of the gate is allowed but recorded.
    path = export_artifact(fitted, tmp_path / "ungated", quantize="int8",
                           max_accuracy_delta=None)
    manifest = json.loads((path / "manifest.json").read_text())
    assert manifest["quantize_check"] is None


# ---------------------------------------------------------------------------
# Registry, CLI, cross-process stability
# ---------------------------------------------------------------------------

def test_registry_publishes_and_describes_variant(fitted, quant_bundle,
                                                  tmp_path):
    registry = ModelRegistry(tmp_path / "models")
    registry.publish("plain", fitted)
    registry.publish("small", fitted, quantize="int8",
                     probe=quant_bundle.test_corpus[:16])
    by_name = {row["name"]: row for row in registry.describe()}
    assert by_name["plain"]["quantize"] == "-"
    assert by_name["small"]["quantize"] == "int8"
    assert registry.load("small").quantize == "int8"


def test_cli_export_quantized(tmp_path, capsys):
    from repro import __main__ as entry

    root = str(tmp_path / "registry")
    rc = entry.main(["serve", "--root", root, "export", "--method", "xclass",
                     "--profile", "agnews", "--scale", "0.2",
                     "--name", "cli-int8", "--quantize", "int8",
                     "--probe-docs", "16"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "[int8]" in out and "gate:" in out

    assert entry.main(["serve", "--root", root, "inspect", "cli-int8"]) == 0
    manifest = json.loads(capsys.readouterr().out)
    assert manifest["quantize"] == "int8"
    assert manifest["quantize_check"]["probe_docs"] == 16


def test_quantized_predictions_bit_identical_across_processes(
        fitted, quant_bundle, tmp_path):
    path = export_artifact(fitted, tmp_path / "int8", quantize="int8",
                           probe=quant_bundle.test_corpus[:16])
    docs = quant_bundle.test_corpus.token_lists()[:12]
    reference = load_artifact(path).scores(docs)
    (tmp_path / "docs.json").write_text(json.dumps(docs))

    script = (
        "import json, sys\n"
        "import numpy as np\n"
        "from repro.serve import load_artifact\n"
        "artifact, docs_path, out_path = sys.argv[1:4]\n"
        "docs = json.loads(open(docs_path).read())\n"
        "np.save(out_path, load_artifact(artifact).scores(docs))\n"
    )
    result = subprocess.run(
        [sys.executable, "-c", script, str(path),
         str(tmp_path / "docs.json"), str(tmp_path / "out.npy")],
        capture_output=True, text=True, timeout=300,
        env={**os.environ,
             "PYTHONPATH": str(SRC) + os.pathsep + os.environ.get("PYTHONPATH", "")},
    )
    assert result.returncode == 0, result.stderr
    fresh = np.load(tmp_path / "out.npy")
    np.testing.assert_array_equal(fresh, reference)
