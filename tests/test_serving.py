"""Serving-layer tests: artifact store, versioned registry, micro-batcher.

The end-to-end contract: a method trained in this process, exported,
and reloaded — in-process or from a fresh interpreter — produces
bit-identical predictions; the serving engine coalesces concurrent
requests into fewer model/PLM batches; and a full queue sheds load with
a typed ``Overloaded`` instead of deadlocking.
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro import obs
from repro.core.exceptions import (
    ArtifactError,
    DanglingReference,
    DeadlineExceeded,
    Overloaded,
    ServingError,
)
from repro.datasets import load_profile
from repro.methods import WeSTClass, XClass
from repro.plm.model import PretrainedLM
from repro.serve import (
    ModelRegistry,
    ServeConfig,
    ServingEngine,
    as_corpus,
    export_artifact,
    load_artifact,
)
from repro.serve.registry import parse_ref

pytestmark = pytest.mark.serving

SRC = Path(__file__).resolve().parent.parent / "src"


@pytest.fixture(scope="module")
def serve_bundle():
    return load_profile("agnews", seed=0, scale=0.3)


@pytest.fixture(scope="module")
def fitted_westclass(serve_bundle):
    model = WeSTClass(seed=0, pretrain_epochs=3, self_train_iterations=1)
    model.fit(serve_bundle.train_corpus, serve_bundle.keywords())
    return model


@pytest.fixture(scope="module")
def fitted_xclass(serve_bundle, tiny_plm):
    model = XClass(plm=tiny_plm, seed=0)
    model.fit(serve_bundle.train_corpus, serve_bundle.label_names())
    return model


# ---------------------------------------------------------------------------
# Artifact store
# ---------------------------------------------------------------------------

def test_as_corpus_accepts_strings_tokens_and_corpora(serve_bundle):
    corpus = as_corpus(["the team won", ["market", "profit"]])
    assert corpus[0].tokens == ["the", "team", "won"]
    assert corpus[1].tokens == ["market", "profit"]
    assert as_corpus(serve_bundle.test_corpus) is serve_bundle.test_corpus


def test_artifact_roundtrip_bit_identical(fitted_westclass, serve_bundle,
                                          tmp_path):
    docs = serve_bundle.test_corpus.token_lists()[:20]
    reference = fitted_westclass.predict(serve_bundle.test_corpus[:20])
    reference_proba = fitted_westclass.predict_proba(serve_bundle.test_corpus[:20])

    path = export_artifact(fitted_westclass, tmp_path / "artifact",
                           provenance={"profile": "agnews", "seed": 0})
    loaded = load_artifact(path)
    assert loaded.predict(docs) == reference
    np.testing.assert_array_equal(loaded.scores(docs), reference_proba)
    assert loaded.labels == list(serve_bundle.label_set.labels)
    assert loaded.manifest["provenance"]["profile"] == "agnews"


def test_artifact_externalizes_plm_weights(fitted_xclass, serve_bundle,
                                           tmp_path):
    docs = serve_bundle.test_corpus.token_lists()[:10]
    reference = fitted_xclass.predict_proba(serve_bundle.test_corpus[:10])

    path = export_artifact(fitted_xclass, tmp_path / "xclass")
    manifest = json.loads((path / "manifest.json").read_text())
    assert manifest["plms"] == ["plm_0.npz"]
    assert (path / "plm_0.npz").exists()

    loaded = load_artifact(path)
    np.testing.assert_array_equal(loaded.scores(docs), reference)
    # The restored PLM is a fresh object with bit-identical weights.
    assert isinstance(loaded.model.plm, PretrainedLM)
    assert loaded.model.plm is not fitted_xclass.plm
    for ours, theirs in zip(fitted_xclass.plm.encoder.state_dict(),
                            loaded.model.plm.encoder.state_dict()):
        assert ours.dtype == theirs.dtype
        np.testing.assert_array_equal(ours, theirs)


def test_export_refuses_unfitted_model(tmp_path):
    with pytest.raises(ArtifactError, match="unfitted"):
        export_artifact(WeSTClass(seed=0), tmp_path / "nope")


def test_export_refuses_silent_overwrite(fitted_westclass, tmp_path):
    export_artifact(fitted_westclass, tmp_path / "artifact")
    with pytest.raises(ArtifactError, match="already exists"):
        export_artifact(fitted_westclass, tmp_path / "artifact")
    export_artifact(fitted_westclass, tmp_path / "artifact", overwrite=True)


# ---------------------------------------------------------------------------
# Artifact integrity (typed errors, never bare numpy/pickle)
# ---------------------------------------------------------------------------

def test_digest_mismatch_names_file(fitted_westclass, tmp_path):
    path = export_artifact(fitted_westclass, tmp_path / "artifact")
    state = path / "state.pkl"
    raw = bytearray(state.read_bytes())
    raw[len(raw) // 2] ^= 0xFF
    state.write_bytes(bytes(raw))
    with pytest.raises(ArtifactError, match="digest mismatch.*state.pkl"):
        load_artifact(path)


def test_truncated_state_is_typed_error(fitted_westclass, tmp_path):
    path = export_artifact(fitted_westclass, tmp_path / "artifact")
    state = path / "state.pkl"
    state.write_bytes(state.read_bytes()[:64])
    # Digest check catches it first; with verification off the unpickle
    # failure itself must still surface as ArtifactError naming the file.
    with pytest.raises(ArtifactError, match="state.pkl"):
        load_artifact(path)
    with pytest.raises(ArtifactError, match="state.pkl"):
        load_artifact(path, verify=False)


def test_corrupt_plm_archive_is_typed_error(fitted_xclass, tmp_path):
    path = export_artifact(fitted_xclass, tmp_path / "xclass")
    plm_file = path / "plm_0.npz"
    plm_file.write_bytes(plm_file.read_bytes()[:128])
    with pytest.raises(ArtifactError, match="plm_0.npz"):
        load_artifact(path)
    with pytest.raises(ArtifactError, match="plm_0.npz"):
        load_artifact(path, verify=False)


def test_missing_and_malformed_manifest(fitted_westclass, tmp_path):
    with pytest.raises(ArtifactError, match="manifest.json"):
        load_artifact(tmp_path / "not-there")
    path = export_artifact(fitted_westclass, tmp_path / "artifact")
    (path / "manifest.json").write_text("{not json")
    with pytest.raises(ArtifactError, match="manifest.json"):
        load_artifact(path)


def test_future_schema_is_rejected(fitted_westclass, tmp_path):
    path = export_artifact(fitted_westclass, tmp_path / "artifact")
    manifest = json.loads((path / "manifest.json").read_text())
    manifest["schema"] = 99
    (path / "manifest.json").write_text(json.dumps(manifest))
    with pytest.raises(ArtifactError, match="schema"):
        load_artifact(path)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

def test_registry_versions_and_latest(fitted_westclass, serve_bundle,
                                      tmp_path):
    registry = ModelRegistry(tmp_path)
    assert registry.publish("agnews-west", fitted_westclass) == 1
    assert registry.publish("agnews-west", fitted_westclass) == 2
    assert registry.versions("agnews-west") == [1, 2]
    assert registry.resolve("agnews-west") == 2
    assert registry.resolve("agnews-west", "v0001") == 1
    assert registry.resolve("agnews-west", "1") == 1

    docs = serve_bundle.test_corpus.token_lists()[:5]
    reference = fitted_westclass.predict(serve_bundle.test_corpus[:5])
    assert registry.load("agnews-west").predict(docs) == reference
    assert registry.load("agnews-west", 1).predict(docs) == reference

    info = registry.inspect("agnews-west")
    assert info["version"] == 2 and info["method"] == "WeSTClass"
    rows = registry.describe()
    assert rows[0]["name"] == "agnews-west" and rows[0]["versions"] == 2

    assert registry.evict("agnews-west", 1) == [1]
    assert registry.versions("agnews-west") == [2]
    assert registry.evict("agnews-west") == [2]
    assert registry.models() == []


def test_registry_rejects_bad_names_and_versions(fitted_westclass, tmp_path):
    registry = ModelRegistry(tmp_path)
    with pytest.raises(ArtifactError, match="invalid model name"):
        registry.publish("Bad Name!", fitted_westclass)
    with pytest.raises(ArtifactError, match="no published versions"):
        registry.load("ghost")
    registry.publish("ok", fitted_westclass)
    with pytest.raises(ArtifactError, match="no version 7"):
        registry.load("ok", 7)
    with pytest.raises(ArtifactError, match="bad version"):
        registry.resolve("ok", "seven")


def test_registry_root_defaults_to_env_knob(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_MODEL_DIR", str(tmp_path / "models"))
    assert ModelRegistry().root == tmp_path / "models"


def test_parse_ref():
    assert parse_ref("m") == ("m", "latest")
    assert parse_ref("m@3") == ("m", "3")
    with pytest.raises(ArtifactError):
        parse_ref("NOPE@1")


def test_fresh_process_predictions_bit_identical(fitted_westclass,
                                                 serve_bundle, tmp_path):
    """The acceptance e2e: export, reload in a new interpreter, compare."""
    registry = ModelRegistry(tmp_path / "models")
    registry.publish("e2e", fitted_westclass,
                     provenance={"profile": "agnews", "seed": 0})
    docs = serve_bundle.test_corpus.token_lists()[:16]
    reference = fitted_westclass.predict_proba(serve_bundle.test_corpus[:16])
    (tmp_path / "docs.json").write_text(json.dumps(docs))

    script = (
        "import json, sys\n"
        "import numpy as np\n"
        "from repro.serve import ModelRegistry\n"
        "root, docs_path, out_path = sys.argv[1:4]\n"
        "docs = json.loads(open(docs_path).read())\n"
        "loaded = ModelRegistry(root).load('e2e')\n"
        "np.save(out_path, loaded.scores(docs))\n"
        "print('labels:', loaded.predict(docs))\n"
    )
    result = subprocess.run(
        [sys.executable, "-c", script, str(tmp_path / "models"),
         str(tmp_path / "docs.json"), str(tmp_path / "out.npy")],
        capture_output=True, text=True, timeout=300,
        env={**os.environ,
             "PYTHONPATH": str(SRC) + os.pathsep + os.environ.get("PYTHONPATH", "")},
    )
    assert result.returncode == 0, result.stderr
    fresh = np.load(tmp_path / "out.npy")
    np.testing.assert_array_equal(fresh, reference)


# ---------------------------------------------------------------------------
# Serving engine
# ---------------------------------------------------------------------------

class CountingModel:
    """Deterministic fake: one call per batch, label = token count."""

    def __init__(self):
        self.calls = 0

    def predict(self, docs):
        self.calls += 1
        return [f"label-{len(doc)}" for doc in docs]


class BlockingModel:
    """Holds the batcher inside predict until released (for queue tests)."""

    def __init__(self):
        self.entered = threading.Event()
        self.release = threading.Event()

    def predict(self, docs):
        self.entered.set()
        assert self.release.wait(30), "test forgot to release the model"
        return ["x"] * len(docs)


def test_engine_coalesces_concurrent_requests():
    model = CountingModel()
    engine = ServingEngine(model, ServeConfig(batch_window_s=0.1,
                                              warmup=False))
    try:
        n = 8
        results: list = [None] * n
        barrier = threading.Barrier(n)

        def client(i):
            barrier.wait()
            results[i] = engine.classify([["tok"] * (i + 1)], timeout=30)

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert results == [[f"label-{i + 1}"] for i in range(n)]
        stats = engine.stats()
        assert stats["requests"] == n and stats["served"] == n
        # Coalescing: n concurrent requests answered from fewer batches.
        assert stats["batches"] < n
        assert model.calls == stats["batches"]
    finally:
        engine.close()


def test_engine_answers_from_fewer_plm_batches(tiny_plm):
    """N concurrent single-doc requests -> fewer than N encoder batches."""

    class EmbeddingModel:
        def __init__(self, plm):
            # Private cache-less facade so every request really encodes.
            self.plm = PretrainedLM(plm.encoder, enc_cache=None)

        def predict(self, docs):
            emb = self.plm.doc_embeddings([list(d) for d in docs])
            return [int(np.argmax(row)) for row in emb]

    obs.enable("serving-coalesce-test")
    try:
        engine = ServingEngine(EmbeddingModel(tiny_plm),
                               ServeConfig(batch_window_s=0.1, warmup=False))
        try:
            n = 6
            barrier = threading.Barrier(n)
            docs = [[f"tok{i}", "team", "game"] for i in range(n)]

            def client(i):
                barrier.wait()
                engine.classify([docs[i]], timeout=60)

            threads = [threading.Thread(target=client, args=(i,))
                       for i in range(n)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert engine.stats()["served"] == n
            plm_batches = obs.counter("plm.batches")
            assert 0 < plm_batches < n, plm_batches
        finally:
            engine.close()
    finally:
        obs.disable()


def test_engine_overload_sheds_instead_of_stalling():
    model = BlockingModel()
    engine = ServingEngine(model, ServeConfig(max_queue=2, warmup=False,
                                              batch_window_s=0.0))
    try:
        first = engine.submit([["a"]])
        assert model.entered.wait(10)  # batcher is now stuck in predict
        queued = [engine.submit([["b"]]), engine.submit([["c"]])]
        with pytest.raises(Overloaded, match="queue full"):
            engine.submit([["d"]])
        assert engine.stats()["shed"] == 1
        model.release.set()
        assert first.wait(10) == ["x"]
        for request in queued:
            assert request.wait(10) == ["x"]
    finally:
        model.release.set()
        engine.close()


def test_engine_deadline_miss_is_typed():
    model = BlockingModel()
    engine = ServingEngine(model, ServeConfig(warmup=False,
                                              batch_window_s=0.0))
    try:
        engine.submit([["a"]])
        assert model.entered.wait(10)
        late = engine.submit([["b"]], deadline_s=0.01)
        time.sleep(0.05)
        model.release.set()
        with pytest.raises(DeadlineExceeded):
            late.wait(10)
        assert engine.stats()["deadline_miss"] == 1
    finally:
        model.release.set()
        engine.close()


def test_engine_drains_on_close_and_rejects_after():
    model = CountingModel()
    engine = ServingEngine(model, ServeConfig(warmup=False,
                                              batch_window_s=0.0))
    requests = [engine.submit([["tok"] * 2]) for _ in range(5)]
    engine.close(drain=True)
    for request in requests:
        assert request.wait(1) == ["label-2"]
    with pytest.raises(ServingError, match="closed"):
        engine.submit([["late"]])


def test_engine_propagates_model_errors_and_survives():
    class FlakyModel:
        def __init__(self):
            self.calls = 0

        def predict(self, docs):
            self.calls += 1
            if self.calls == 1:
                raise ValueError("boom")
            return ["ok"] * len(docs)

    engine = ServingEngine(FlakyModel(), ServeConfig(warmup=False,
                                                     batch_window_s=0.0))
    try:
        with pytest.raises(ValueError, match="boom"):
            engine.classify([["a"]], timeout=10)
        assert engine.classify([["b"]], timeout=10) == ["ok"]
        assert engine.stats()["errors"] == 1
    finally:
        engine.close()


def test_engine_warmup_runs_before_traffic(fitted_westclass, tmp_path):
    loaded = load_artifact(export_artifact(fitted_westclass,
                                           tmp_path / "artifact"))
    calls = []
    original = loaded.model.predict
    loaded.model.predict = lambda corpus: calls.append(len(corpus)) or original(corpus)
    engine = ServingEngine(loaded, ServeConfig(warmup=True))
    try:
        assert calls and calls[0] == 1  # the warm-up predict
    finally:
        engine.close()


def test_oversized_request_is_still_served():
    model = CountingModel()
    engine = ServingEngine(model, ServeConfig(max_batch_docs=4, warmup=False,
                                              batch_window_s=0.0))
    try:
        assert engine.classify([["t"]] * 10, timeout=10) == ["label-1"] * 10
    finally:
        engine.close()


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def test_serve_cli_export_list_predict_evict(tmp_path, capsys):
    from repro import __main__ as entry

    root = str(tmp_path / "registry")
    rc = entry.main(["serve", "--root", root, "export", "--method",
                     "westclass", "--profile", "agnews", "--scale", "0.2",
                     "--supervision", "keywords", "--name", "cli-demo"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "published cli-demo@v0001" in out

    assert entry.main(["serve", "--root", root, "list"]) == 0
    assert "cli-demo" in capsys.readouterr().out

    assert entry.main(["serve", "--root", root, "inspect", "cli-demo"]) == 0
    manifest = json.loads(capsys.readouterr().out)
    assert manifest["method"] == "WeSTClass" and manifest["version"] == 1

    assert entry.main(["serve", "--root", root, "predict", "cli-demo",
                       "--text", "the team won the game"]) == 0
    predicted = capsys.readouterr().out.strip()
    assert "\tthe team won the game" in predicted

    # Evict requires an explicit version (or --all).
    assert entry.main(["serve", "--root", root, "evict", "cli-demo"]) == 2
    assert entry.main(["serve", "--root", root, "evict", "cli-demo",
                       "--all"]) == 0
    assert entry.main(["serve", "--root", root, "list"]) == 0
    assert "no models published" in capsys.readouterr().out


def test_serve_cli_unknown_method_and_missing_model(tmp_path, capsys):
    from repro.serve.cli import main

    root = str(tmp_path)
    assert main(["--root", root, "export", "--method", "nope"]) == 2
    assert "unknown method" in capsys.readouterr().err
    assert main(["--root", root, "inspect", "ghost"]) == 1
    assert "no published versions" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# Registry latest alias
# ---------------------------------------------------------------------------

def test_publish_writes_latest_alias_file(fitted_westclass, tmp_path):
    registry = ModelRegistry(tmp_path)
    registry.publish("aliased", fitted_westclass)
    registry.publish("aliased", fitted_westclass)
    alias = registry.model_dir("aliased") / "latest"
    assert alias.read_text() == "v0002\n"
    assert registry.resolve("aliased") == 2


def test_evict_of_latest_repoints_alias(fitted_westclass, tmp_path):
    registry = ModelRegistry(tmp_path)
    for _ in range(3):
        registry.publish("aliased", fitted_westclass)

    # Evicting what latest points at repoints it to the newest survivor.
    assert registry.evict("aliased", 3) == [3]
    alias = registry.model_dir("aliased") / "latest"
    assert alias.read_text() == "v0002\n"
    assert registry.resolve("aliased") == 2

    # Evicting a non-latest version leaves the alias alone.
    assert registry.evict("aliased", 1) == [1]
    assert registry.resolve("aliased") == 2

    # Evicting the last version removes the model, alias included.
    assert registry.evict("aliased", 2) == [2]
    assert registry.models() == []
    assert not registry.model_dir("aliased").exists()


def test_hand_dangled_alias_is_typed_error(fitted_westclass, tmp_path):
    registry = ModelRegistry(tmp_path)
    registry.publish("dangle", fitted_westclass)
    registry.publish("dangle", fitted_westclass)
    # Delete the aliased version behind the registry's back.
    shutil.rmtree(registry.version_dir("dangle", 2))

    with pytest.raises(DanglingReference, match="v0002"):
        registry.resolve("dangle")
    with pytest.raises(ArtifactError):  # DanglingReference IS-A ArtifactError
        registry.load("dangle")
    # Explicit versions keep working while latest is broken.
    assert registry.resolve("dangle", 1) == 1
    # Deleting the alias file repairs via the highest-version fallback.
    (registry.model_dir("dangle") / "latest").unlink()
    assert registry.resolve("dangle") == 1


def test_pre_alias_registry_falls_back_to_highest(fitted_westclass, tmp_path):
    registry = ModelRegistry(tmp_path)
    registry.publish("old-layout", fitted_westclass)
    registry.publish("old-layout", fitted_westclass)
    # A registry written before the alias existed has no latest file.
    (registry.model_dir("old-layout") / "latest").unlink()
    assert registry.resolve("old-layout") == 2
    info = registry.inspect("old-layout")
    assert info["version"] == 2


def test_corrupt_alias_is_typed_error(fitted_westclass, tmp_path):
    registry = ModelRegistry(tmp_path)
    registry.publish("mangled", fitted_westclass)
    (registry.model_dir("mangled") / "latest").write_text("not-a-version\n")
    with pytest.raises(ArtifactError, match="corrupt"):
        registry.resolve("mangled")


# ---------------------------------------------------------------------------
# Engine lifecycle races
# ---------------------------------------------------------------------------

def test_submit_after_close_raises_typed_error_immediately():
    engine = ServingEngine(CountingModel(), ServeConfig(warmup=False))
    engine.close()
    start = time.monotonic()
    with pytest.raises(ServingError, match="closed"):
        engine.submit([["tok"]])
    assert time.monotonic() - start < 1.0  # raises, never hangs


def test_close_drain_resolves_every_accepted_request_exactly_once(monkeypatch):
    """Concurrent submitters racing close(drain=True).

    Every request the engine *accepted* must settle exactly once (no
    lost futures, no double resolution), and every submit that loses the
    race must raise the typed closed error rather than hang.
    """
    from repro.serve import engine as engine_mod

    settlements = []  # every Request.resolve/fail call lands here

    class AuditedRequest(engine_mod.Request):
        def resolve(self, result):
            settlements.append(self)
            super().resolve(result)

        def fail(self, error):
            settlements.append(self)
            super().fail(error)

    monkeypatch.setattr(engine_mod, "Request", AuditedRequest)
    engine = ServingEngine(CountingModel(),
                           ServeConfig(warmup=False, max_queue=100_000,
                                       batch_window_s=0.001))
    n_submitters = 4
    accepted: list = []
    closed_errors: list = []
    barrier = threading.Barrier(n_submitters + 1)

    def submitter():
        barrier.wait()
        while True:
            try:
                accepted.append(engine.submit([["tok"] * 3]))
            except Overloaded:
                continue
            except ServingError as exc:
                closed_errors.append(exc)
                return

    threads = [threading.Thread(target=submitter)
               for _ in range(n_submitters)]
    for t in threads:
        t.start()
    barrier.wait()
    time.sleep(0.05)  # let the race build a backlog
    engine.close(drain=True)
    for t in threads:
        t.join(30)
        assert not t.is_alive(), "submitter hung instead of erroring"

    assert len(closed_errors) == n_submitters
    assert all("closed" in str(exc) for exc in closed_errors)
    assert accepted, "race produced no accepted requests"
    # Exactly-once settlement, and drain means resolution, not failure.
    assert len(settlements) == len(accepted)
    assert len({id(r) for r in settlements}) == len(settlements)
    for request in accepted:
        assert request.done()
        assert request.wait(5) == ["label-3"]
