"""Benchmark-suite configuration.

Each bench regenerates one paper table/figure and asserts its qualitative
*shape* (who wins, ablation directions, crossovers) — absolute numbers
are CPU-scale and not expected to match the paper.

Set ``REPRO_BENCH_FULL=1`` to run every dataset of every table (slower);
the default covers one representative dataset per table.
"""

import builtins
import os
import sys

import pytest

FULL = os.environ.get("REPRO_BENCH_FULL") == "1"

# The bench tables ARE the deliverable: route print() past pytest's
# capture (including the default fd-level capture) so
# `pytest benchmarks/ --benchmark-only | tee ...` records them without
# needing -s. Scoped to the benchmark suite by living in this conftest.
_original_print = builtins.print
_CAPTURE_MANAGER = []


def pytest_configure(config):
    _CAPTURE_MANAGER.append(config.pluginmanager.getplugin("capturemanager"))


def _uncaptured_print(*args, **kwargs):
    manager = _CAPTURE_MANAGER[0] if _CAPTURE_MANAGER else None
    if manager is not None:
        with manager.global_and_fixture_disabled():
            kwargs.setdefault("flush", True)
            _original_print(*args, **kwargs)
    else:
        _original_print(*args, **kwargs)


builtins.print = _uncaptured_print


@pytest.fixture(scope="session")
def full_mode():
    return FULL


def run_once(benchmark, fn):
    """Time ``fn`` exactly once (tables are minutes-scale, deterministic)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def by_method(rows, dataset_key="Dataset"):
    """Index rows as {(dataset, method): row}."""
    return {(r.get(dataset_key, ""), r["Method"]): r for r in rows}
