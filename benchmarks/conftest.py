"""Benchmark-suite configuration.

Each bench regenerates one paper table/figure and asserts its qualitative
*shape* (who wins, ablation directions, crossovers) — absolute numbers
are CPU-scale and not expected to match the paper.

Set ``REPRO_BENCH_FULL=1`` to run every dataset of every table (slower);
the default covers one representative dataset per table.
"""

import builtins
import json
import os
import sys
import time
from pathlib import Path

import pytest

FULL = os.environ.get("REPRO_BENCH_FULL") == "1"

# Benches measure real compute: a warm row memo store would turn every
# table into a cache read. Explicit REPRO_ROW_CACHE=1 re-enables it.
os.environ.setdefault("REPRO_ROW_CACHE", "0")

# The bench tables ARE the deliverable: route print() past pytest's
# capture (including the default fd-level capture) so
# `pytest benchmarks/ --benchmark-only | tee ...` records them without
# needing -s. Scoped to the benchmark suite by living in this conftest.
_original_print = builtins.print
_CAPTURE_MANAGER = []


def pytest_configure(config):
    _CAPTURE_MANAGER.append(config.pluginmanager.getplugin("capturemanager"))


def _uncaptured_print(*args, **kwargs):
    manager = _CAPTURE_MANAGER[0] if _CAPTURE_MANAGER else None
    if manager is not None:
        with manager.global_and_fixture_disabled():
            kwargs.setdefault("flush", True)
            _original_print(*args, **kwargs)
    else:
        _original_print(*args, **kwargs)


builtins.print = _uncaptured_print


@pytest.fixture(scope="session")
def full_mode():
    return FULL


ARTIFACT_DIR = Path(__file__).resolve().parent
HISTORY_DIR = ARTIFACT_DIR / "history"


def _append_history(name: str, payload: dict, meta: dict) -> None:
    """Append one git-SHA-stamped record to ``history/<name>.jsonl``.

    Only scalar numeric top-level keys are kept (the regression gate
    compares numbers, not tables), so history stays small enough to
    commit while every record remains host-comparable via its stamp.
    """
    metrics = {
        key: value for key, value in payload.items()
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    }
    record = {"name": name, **meta, "metrics": metrics}
    HISTORY_DIR.mkdir(exist_ok=True)
    with open(HISTORY_DIR / f"{name}.jsonl", "a") as fh:
        fh.write(json.dumps(record, sort_keys=True) + "\n")


def write_bench_artifact(name: str, payload: dict) -> Path:
    """Write ``BENCH_<name>.json`` next to the benches (atomic replace).

    The single writer every bench goes through, so the machine-readable
    perf trajectory stays uniform across PRs. Every payload is stamped
    with git SHA, hostname, and the host-calibration probes (``meta``
    key), and a scalar-metrics record is appended to
    ``benchmarks/history/<name>.jsonl`` for the regression gate.
    """
    import hostcal

    payload = dict(payload)
    meta = hostcal.stamp()
    payload["meta"] = meta
    path = ARTIFACT_DIR / f"BENCH_{name}.json"
    tmp = path.with_suffix(f".{os.getpid()}.tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True,
                              default=repr) + "\n")
    os.replace(tmp, path)
    _append_history(name, payload, meta)
    return path


def run_once(benchmark, fn, artifact: "str | None" = None):
    """Time ``fn`` exactly once (tables are minutes-scale, deterministic).

    With ``artifact``, also record ``BENCH_<artifact>.json``: wall-clock
    seconds, full/fast mode, and the returned rows when they are a list.
    """
    state = {}

    def timed():
        start = time.perf_counter()
        state["result"] = fn()
        state["seconds"] = time.perf_counter() - start
        return state["result"]

    result = benchmark.pedantic(timed, rounds=1, iterations=1)
    if artifact is not None:
        payload = {
            "artifact": artifact,
            "full": FULL,
            "seconds": round(state["seconds"], 3),
        }
        if isinstance(result, list):
            payload["n_rows"] = len(result)
            payload["rows"] = result
        write_bench_artifact(artifact, payload)
    return result


def by_method(rows, dataset_key="Dataset"):
    """Index rows as {(dataset, method): row}."""
    return {(r.get(dataset_key, ""), r["Method"]): r for r in rows}
