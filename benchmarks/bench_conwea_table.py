"""T-CONWEA: the ConWea results table on coarse/fine views.

Paper shape: ConWea beats WeSTClass (especially on the fine view) and all
three ablations (NoCon, NoExpan, WSD) fall below the full system; the
supervised HAN bounds everything.
"""

from conftest import FULL, run_once

from repro.evaluation.reporting import format_table
from repro.experiments import tables


def test_conwea_table(benchmark):
    rows = run_once(benchmark,
                    lambda: tables.conwea_table(seed=0, fast=not FULL),
                    artifact="conwea_table")
    print()
    print(format_table(rows, title="ConWea results (coarse/fine views)"))

    indexed = {(r["View"], r["Method"]): r for r in rows}
    views = {r["View"] for r in rows}
    for view in views:
        conwea = indexed[(view, "ConWea")]["Micro-F1"]
        # On fine views our near-disjoint synthetic lexicons make raw
        # keyword retrieval unusually strong, so the margin is wider
        # there (see EXPERIMENTS.md); on coarse views ConWea must win.
        ir_margin = 0.06 if view.endswith("fine") else 0.03
        assert conwea > indexed[(view, "IR-TF-IDF")]["Micro-F1"] - ir_margin
        for ablation in ("ConWea-NoCon", "ConWea-NoExpan", "ConWea-WSD"):
            assert conwea >= indexed[(view, ablation)]["Micro-F1"] - 0.07, (
                view, ablation)
        supervised = indexed[(view, "HAN-Supervised")]["Micro-F1"]
        assert supervised >= conwea - 0.15, view
    # Contextualization pays off most on the fine views (the paper's
    # motivating setting: more classes, more seed collisions).
    for view in views:
        if view.endswith("fine"):
            conwea = indexed[(view, "ConWea")]["Micro-F1"]
            no_con = indexed[(view, "ConWea-NoCon")]["Micro-F1"]
            assert conwea >= no_con - 0.03, view
