"""Closed-loop streaming-pipeline benchmark: sustained ingest + classify.

Drives a full :class:`~repro.pipeline.orchestrator.Pipeline` over a
deterministic document stream in two phases:

- **bootstrap** — enough batches to cross ``bootstrap_docs``, fit the
  first model through the experiment engine, publish it, and classify
  the backlog (excluded from the measurement: one-time cost);
- **steady state** (measured) — the rest of the stream flows through
  tokenize → dedupe → store → classify with per-document
  ingest-to-classified latency tracked from the moment a batch is read
  off the source to the moment its predictions are logged.

Reports sustained ``docs_per_second`` (classified docs over steady-state
wall time) and the ingest-to-classified latency distribution
(p50/p99), writing ``BENCH_pipeline.json`` + a history record for the
regression gate. Asserts the closed loop actually closed: every stored
document classified, duplicates dropped, exactly one fit, and the
store/checkpoint counters agreeing with the predictions log.
"""

from __future__ import annotations

from repro.pipeline import DriftPolicy, Pipeline, PipelineConfig, StreamConfig

import hostcal
from conftest import write_bench_artifact

PROFILE = "agnews"
N_DOCS = 420
BATCH_SIZE = 32
BOOTSTRAP_DOCS = 96
BOOTSTRAP_BATCHES = 4  # 4 x 32 read > 96 stored even with dedupe drops
DUPLICATE_EVERY = 6

METHOD_KWARGS = dict(pretrain_epochs=2, self_train_iterations=0,
                     pseudo_per_class=20, dim=32)


def _percentile(values: list, q: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def test_pipeline_closed_loop(tmp_path):
    probes = hostcal.calibrate()
    config = PipelineConfig(
        stream=StreamConfig(profile=PROFILE, seed=0, scale=1.0,
                            n_docs=N_DOCS, duplicate_every=DUPLICATE_EVERY),
        name="bench",
        store_root=str(tmp_path / "corpus"),
        registry_root=str(tmp_path / "models"),
        method="westclass",
        method_kwargs=METHOD_KWARGS,
        batch_size=BATCH_SIZE,
        checkpoint_every=4,
        bootstrap_docs=BOOTSTRAP_DOCS,
        drift=DriftPolicy(window=64, hist_threshold=None),
        warmup=True,
    )
    pipe = Pipeline(config)

    bootstrap = pipe.run(max_batches=BOOTSTRAP_BATCHES)
    assert bootstrap.fits == 1, bootstrap

    steady = pipe.run(track_latency=True)
    assert steady.exhausted, steady
    assert steady.classified == len(steady.latencies_s), steady

    docs_per_second = steady.classified / steady.seconds
    p50_ms = _percentile(steady.latencies_s, 0.50) * 1000
    p99_ms = _percentile(steady.latencies_s, 0.99) * 1000

    status = pipe.status()
    report = {
        "profile": PROFILE,
        "n_docs": N_DOCS,
        "batch_size": BATCH_SIZE,
        "ingested": bootstrap.ingested + steady.ingested,
        "deduped": bootstrap.deduped + steady.deduped,
        "classified": bootstrap.classified + steady.classified,
        "steady_classified": steady.classified,
        "fits": steady.fits,
        "steady_seconds": round(steady.seconds, 4),
        "docs_per_second": round(docs_per_second, 1),
        "p50_ms": round(p50_ms, 3),
        "p99_ms": round(p99_ms, 3),
        "calibration": probes,
    }
    write_bench_artifact("pipeline", report)

    print()
    print(f"pipeline closed loop, {N_DOCS}-doc {PROFILE} stream "
          f"(batch {BATCH_SIZE}, dup every {DUPLICATE_EVERY})")
    print(f"  bootstrap: {bootstrap.ingested} stored, "
          f"{bootstrap.classified} classified, 1 fit "
          f"[{bootstrap.seconds:.2f}s, excluded]")
    print(f"  steady:    {steady.classified} docs in "
          f"{steady.seconds:.2f}s -> {docs_per_second:.0f} docs/s")
    print(f"  ingest-to-classified latency: p50 {p50_ms:.1f} ms, "
          f"p99 {p99_ms:.1f} ms")

    # The loop must actually have closed: every stored doc classified,
    # duplicates dropped, counters consistent all the way down.
    assert report["deduped"] > 0, report
    assert pipe.store.docs == pipe.store.predictions == \
        report["classified"], report
    checkpoint = status["checkpoint"]
    assert checkpoint["classified"] == report["classified"], status
    assert checkpoint["model_version"] == 1, status
    assert docs_per_second > 0, report


if __name__ == "__main__":
    import tempfile
    from pathlib import Path

    test_pipeline_closed_loop(Path(tempfile.mkdtemp()))
