"""T-LOTCLASS-1: the MLM replacement-prediction demonstration (Table 1).

Paper shape: the same surface form receives different replacement words in
different topical contexts — the mechanism behind category vocabularies.
"""

from conftest import run_once

from repro.evaluation.reporting import format_table
from repro.experiments import tables


def test_lotclass_prediction_demo(benchmark):
    rows = run_once(benchmark,
                    lambda: tables.lotclass_prediction_rows(seed=0),
                    artifact="lotclass_predictions")
    print()
    print(format_table(rows, title='MLM predictions for "goal" in context'))

    assert len(rows) == 2, "need both topical contexts"
    predictions = [set(r["Predictions"].split(", ")) for r in rows]
    assert predictions[0] != predictions[1]
    # Sports context predictions lean sports; business lean business.
    from repro.datasets import load_profile

    bundle = load_profile("agnews", seed=0)
    sports_lexicon = set(bundle.world.lexicons["sports"])
    business_lexicon = set(bundle.world.lexicons["business"])
    sports_row = next(r for r in rows if r["Context topic"] == "sports")
    business_row = next(r for r in rows if r["Context topic"] == "business")
    sports_predictions = set(sports_row["Predictions"].split(", "))
    business_predictions = set(business_row["Predictions"].split(", "))
    assert len(sports_predictions & sports_lexicon) > len(
        sports_predictions & business_lexicon
    )
    assert len(business_predictions & business_lexicon) > len(
        business_predictions & sports_lexicon
    )
