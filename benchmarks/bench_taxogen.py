"""Taxonomy repair: perturbation recovery + pristine stability.

The taxogen promise: damage a known-good taxonomy (re-parent nodes,
delete leaves, add spurious DAG edges) and the entailment-scored
repairer puts most of it back. Measured over several perturbation seeds
on the sectioned ``arxiv_sections`` profile:

- **recovered_fraction** — perturbed edges whose true state the repair
  restores, averaged across seeds. Must clear a host-calibrated floor
  (base 0.6, relaxed on jittery hosts, never below 0.4) — recovery
  itself is deterministic, but the PLM behind the scorer trains on this
  host, so the floor follows the same calibration idiom as the other
  gates.
- **pristine_ops** — repair ops fired on the *undamaged* taxonomy
  (repair churn; must stay small).
- **score_seconds / repair_seconds** — one-time affinity-matrix cost vs
  per-repair planning cost (planning must be cheap so repair can run
  per-table-row).

Writes ``benchmarks/BENCH_taxogen.json`` via the shared writer.
Runnable standalone: ``python benchmarks/bench_taxogen.py``.
"""

import time

import hostcal
from conftest import FULL, write_bench_artifact

from repro.datasets import load_profile
from repro.taxogen import (
    EdgeScorer,
    TaxonomyRepairer,
    edge_recovery,
    perturb_dag,
)

PROFILE = "arxiv_sections"
PERTURB_SEEDS = (1, 2, 3, 4, 5) if not FULL else tuple(range(1, 11))
RECOVERY_BASE = 0.6
RECOVERY_MIN = 0.4
PRISTINE_OPS_MAX = 6


def test_taxogen_recovery():
    bundle = load_profile(PROFILE, seed=0)
    assert bundle.dag is not None

    start = time.perf_counter()
    scorer = EdgeScorer.from_bundle(bundle)
    scorer.affinity_matrix()
    score_s = time.perf_counter() - start
    repairer = TaxonomyRepairer(scorer)

    start = time.perf_counter()
    _, pristine_plan = repairer.repair_dag(bundle.dag)
    repair_s = time.perf_counter() - start
    pristine_ops = sum(pristine_plan.counts().values())

    perturbed_total, recovered_total, fractions = 0, 0, []
    op_counts = {"insert": 0, "reparent": 0, "prune": 0}
    for seed in PERTURB_SEEDS:
        damaged, perturbation = perturb_dag(bundle.dag, seed=seed,
                                            n_reparent=4, n_delete=2,
                                            n_spurious=2)
        repaired, plan = repairer.repair_dag(damaged)
        recovery = edge_recovery(perturbation, repaired)
        perturbed_total += recovery["edges_perturbed"]
        recovered_total += recovery["edges_recovered"]
        fractions.append(recovery["recovered_fraction"])
        for kind, count in plan.counts().items():
            op_counts[kind] += count

    recovered_fraction = recovered_total / max(perturbed_total, 1)
    probes = hostcal.calibrate()
    min_recovered = round(
        min(RECOVERY_BASE,
            max(RECOVERY_MIN, RECOVERY_BASE / probes["jitter"])), 2)

    report = {
        "profile": PROFILE,
        "n_seeds": len(PERTURB_SEEDS),
        "edges_perturbed": perturbed_total,
        "edges_recovered": recovered_total,
        "recovered_fraction": round(recovered_fraction, 3),
        "min_recovered_fraction": min_recovered,
        "per_seed_fractions": [round(f, 3) for f in fractions],
        "pristine_ops": pristine_ops,
        "ops": op_counts,
        "score_seconds": round(score_s, 2),
        "repair_seconds": round(repair_s, 4),
        "calibration": probes,
        "full": FULL,
    }
    write_bench_artifact("taxogen", report)
    print()
    print("taxogen bench:", report)

    assert report["recovered_fraction"] >= min_recovered
    assert report["pristine_ops"] <= PRISTINE_OPS_MAX
    # Planning must stay orders of magnitude cheaper than scoring.
    assert report["repair_seconds"] < max(1.0, report["score_seconds"])


if __name__ == "__main__":
    test_taxogen_recovery()
