"""Training-path micro-benchmark: seed training loops vs the compute engine.

Times this PR's training engine (float32 default dtype, fused kernels,
in-place optimizer updates, one-shot ``BatchPlan`` batch prep) against the
**seed** training path reimplemented verbatim — float64 everywhere,
composite autograd kernels, the allocating Adam/clip updates, and a
per-step Python padding loop:

- **PLM pre-training** — masked-LM steps over a synthetic corpus;
- **TokenClassifier.fit** — the attentive classifier's minibatch loop.

Asserts >= 1.8x on pre-training and >= 1.5x on classifier fitting, and
records ``BENCH_training.json``.
"""

from __future__ import annotations

import time

import numpy as np

from conftest import write_bench_artifact
from repro.classifiers import AttentiveClassifier
from repro.classifiers.base import as_soft_targets
from repro.datasets.pretraining import general_corpus
from repro.nn.functional import set_fused
from repro.nn.losses import cross_entropy, soft_cross_entropy
from repro.nn.optim import Adam
from repro.nn.tensor import default_dtype
from repro.plm.config import PLMConfig
from repro.plm.encoder import TransformerEncoder, pad_batch
from repro.plm.pretrainer import IGNORE, _mask_tokens, pretrain_mlm
from repro.text.vocabulary import Vocabulary

MIN_PRETRAIN_SPEEDUP = 1.8
MIN_FIT_SPEEDUP = 1.5


class _SeedAdam:
    """The seed Adam + clip, verbatim: every update allocates."""

    def __init__(self, parameters, lr, betas=(0.9, 0.999), eps=1e-8):
        self.parameters = list(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def zero_grad(self):
        for p in self.parameters:
            p.zero_grad(set_to_none=False)

    def clip_grad_norm(self, max_norm):
        total = 0.0
        for p in self.parameters:
            if p.grad is not None:
                total += float((p.grad**2).sum())
        norm = float(np.sqrt(total))
        if norm > max_norm and norm > 0:
            scale = max_norm / norm
            for p in self.parameters:
                if p.grad is not None:
                    p.grad = p.grad * scale
        return norm

    def step(self):
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * (m_hat / (np.sqrt(v_hat) + self.eps))


def _seed_pretrain_mlm(encoder, token_lists, config, seed):
    """The seed pretraining loop, verbatim (per-step pad_batch)."""
    rng = np.random.default_rng(seed)
    vocab = encoder.vocabulary
    train_len = min(config.max_len, config.pretrain_max_len)
    sequences = [vocab.encode(t)[:train_len] for t in token_lists if t]
    optimizer = _SeedAdam(encoder.parameters(), lr=config.lr)
    for _ in range(config.mlm_steps):
        idx = rng.integers(0, len(sequences), size=config.batch_size)
        batch_ids, pad_mask = pad_batch([sequences[i] for i in idx],
                                        vocab.pad_id, train_len)
        corrupted, targets = _mask_tokens(batch_ids, pad_mask, vocab,
                                          config.mlm_prob, rng)
        hidden = encoder(corrupted, pad_mask=pad_mask)
        rows, cols = np.nonzero(targets != IGNORE)
        picked = hidden[rows, cols]
        logits = encoder.mlm_logits(picked)
        loss = cross_entropy(logits, targets[rows, cols])
        optimizer.zero_grad()
        loss.backward()
        optimizer.clip_grad_norm(5.0)
        optimizer.step()


def _seed_fit(model, token_lists, targets, epochs, batch_size=32, lr=2e-3):
    """The seed TokenClassifier.fit loop, verbatim."""
    soft = as_soft_targets(targets, model.n_classes)
    sequences = model._encode(token_lists)
    optimizer = _SeedAdam(model.parameters(), lr=lr)
    model.train()
    n = len(sequences)
    for _ in range(epochs):
        order = model.rng.permutation(n)
        for start in range(0, n, batch_size):
            take = order[start : start + batch_size]
            ids, pad_mask = pad_batch([sequences[i] for i in take],
                                      model.vocabulary.pad_id, model.max_len)
            logits = model._forward(ids, pad_mask)
            loss = soft_cross_entropy(logits, soft[take])
            optimizer.zero_grad()
            loss.backward()
            optimizer.clip_grad_norm(5.0)
            optimizer.step()
    model.eval()


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _classifier_task(n_docs: int = 600, seed: int = 0) -> tuple:
    rng = np.random.default_rng(seed)
    themes = [["alpha", "beta", "gamma"], ["delta", "epsilon", "zeta"],
              ["eta", "theta", "iota"], ["kappa", "lam", "mu"]]
    docs, targets = [], []
    for i in range(n_docs):
        cls = i % len(themes)
        words = themes[cls]
        docs.append([words[int(rng.integers(0, 3))]
                     for _ in range(int(rng.integers(8, 28)))])
        targets.append(cls)
    return docs, np.asarray(targets)


def test_training_engine_speedups():
    config = PLMConfig(dim=48, n_layers=2, n_heads=4, ff_hidden=96,
                       mlm_steps=80, batch_size=32, init_from_svd=False)
    corpus = general_corpus(seed=0, n_docs=400).token_lists()
    docs, targets = _classifier_task()
    seconds = {"pretrain": {}, "fit": {}}

    # Seed configuration: float64, composite kernels, allocating updates.
    previous = set_fused(False)
    try:
        with default_dtype("float64"):
            vocab = Vocabulary.build(corpus)
            encoder = TransformerEncoder(vocab, config,
                                         np.random.default_rng(0))
            warm = PLMConfig(**{**config.__dict__, "mlm_steps": 1})
            _seed_pretrain_mlm(encoder, corpus, warm, seed=1)  # warm-up
            seconds["pretrain"]["seed"] = _timed(
                lambda: _seed_pretrain_mlm(encoder, corpus, config, seed=2)
            )
            cls_vocab = Vocabulary.build(docs)
            model = AttentiveClassifier(cls_vocab, 4, dim=32, max_len=32,
                                        seed=0)
            _seed_fit(model, docs, targets, epochs=1)  # warm-up
            seconds["fit"]["seed"] = _timed(
                lambda: _seed_fit(model, docs, targets, epochs=10)
            )
    finally:
        set_fused(previous)

    # Engine configuration: float32, fused kernels, in-place optimizers,
    # BatchPlan batch prep — the library defaults after this PR.
    with default_dtype("float32"):
        vocab = Vocabulary.build(corpus)
        encoder = TransformerEncoder(vocab, config, np.random.default_rng(0))
        warm = PLMConfig(**{**config.__dict__, "mlm_steps": 1})
        pretrain_mlm(encoder, corpus, warm, seed=1)  # warm-up
        seconds["pretrain"]["engine"] = _timed(
            lambda: pretrain_mlm(encoder, corpus, config, seed=2)
        )
        cls_vocab = Vocabulary.build(docs)
        model = AttentiveClassifier(cls_vocab, 4, dim=32, max_len=32, seed=0)
        model.fit(docs, targets, epochs=1)  # warm-up
        seconds["fit"]["engine"] = _timed(
            lambda: model.fit(docs, targets, epochs=10)
        )

    pretrain_speedup = seconds["pretrain"]["seed"] / seconds["pretrain"]["engine"]
    fit_speedup = seconds["fit"]["seed"] / seconds["fit"]["engine"]
    print(f"\npretrain: seed {seconds['pretrain']['seed']:.2f}s, "
          f"engine {seconds['pretrain']['engine']:.2f}s ({pretrain_speedup:.2f}x)")
    print(f"fit:      seed {seconds['fit']['seed']:.2f}s, "
          f"engine {seconds['fit']['engine']:.2f}s ({fit_speedup:.2f}x)")

    write_bench_artifact("training", {
        "configs": {
            "seed": {"dtype": "float64", "fused": False,
                     "optimizer": "allocating", "batch_prep": "pad_batch"},
            "engine": {"dtype": "float32", "fused": True,
                       "optimizer": "in-place", "batch_prep": "BatchPlan"},
        },
        "pretrain_seconds": seconds["pretrain"],
        "fit_seconds": seconds["fit"],
        "pretrain_speedup": round(pretrain_speedup, 3),
        "fit_speedup": round(fit_speedup, 3),
        "mlm_steps": config.mlm_steps,
        "min_pretrain_speedup": MIN_PRETRAIN_SPEEDUP,
        "min_fit_speedup": MIN_FIT_SPEEDUP,
    })

    assert pretrain_speedup >= MIN_PRETRAIN_SPEEDUP, seconds
    assert fit_speedup >= MIN_FIT_SPEEDUP, seconds
