"""T-XCLASS-DATA / T-XCLASS: dataset statistics + results tables.

Paper shape: X-Class is competitive with or better than WeSTClass /
LOTClass across datasets from label names only; the Rep/Align ablations
fall at or below the full pipeline; the supervised bound stays on top.
"""

from conftest import FULL, by_method, run_once

from repro.evaluation.reporting import format_table
from repro.experiments import tables


def test_xclass_dataset_table(benchmark):
    rows = run_once(benchmark,
                    lambda: tables.xclass_dataset_table(seed=0, fast=not FULL),
                    artifact="xclass_dataset_table")
    print()
    print(format_table(rows, title="X-Class dataset statistics"))
    assert all(r["n_classes"] >= 2 for r in rows)
    imbalances = [r["imbalance"] for r in rows]
    assert max(imbalances) > min(imbalances)  # mix of balanced/imbalanced


def test_xclass_table(benchmark):
    rows = run_once(benchmark,
                    lambda: tables.xclass_table(seed=0, fast=not FULL),
                    artifact="xclass_table")
    print()
    print(format_table(rows, title="X-Class results (micro/macro F1)"))

    indexed = by_method(rows)
    datasets = {r["Dataset"] for r in rows}
    wins = 0
    for dataset in datasets:
        xclass = indexed[(dataset, "X-Class")]["Micro-F1"]
        west = indexed[(dataset, "WeSTClass")]["Micro-F1"]
        supervised = indexed[(dataset, "Supervised")]["Micro-F1"]
        rep = indexed[(dataset, "X-Class-Rep")]["Micro-F1"]
        assert supervised >= xclass - 0.1, dataset
        assert xclass >= rep - 0.08, dataset
        if xclass >= west - 0.02:
            wins += 1
    assert wins >= len(datasets) / 2, "X-Class should match WeSTClass overall"
