"""Perf-regression gate over the committed ``benchmarks/history/`` store.

Every ``write_bench_artifact`` call appends a git-SHA-stamped,
host-calibrated record to ``history/<name>.jsonl``. This checker
compares the newest record of each history file against the median of
the previous ``--last`` committed baselines, metric by metric:

- only metrics in the :data:`METRICS` registry are compared (a table's
  wall-clock ``seconds``, a speedup ratio, an accuracy delta — numbers
  whose drift means something), each with a direction: ``lower`` means
  smaller is better, ``higher`` the reverse;
- the allowed drift starts at :data:`BASE_TOLERANCE` (1.5x) and widens
  with the measured host jitter ratio between the current run and the
  baselines, plus a cross-host factor when the hostname changed — the
  PR 5 calibration idea applied to trend comparison;
- the total tolerance is capped at :data:`TOLERANCE_CAP` (1.95x), so a
  genuine 2x slowdown fails on every host no matter how noisy.

Usage::

    python benchmarks/check_regression.py [name ...]
        [--history benchmarks/history] [--last 5]
        [--report benchmarks/BENCH_regression.json]

With no names, every ``history/*.jsonl`` with a metric registry entry is
checked. A history file with fewer than 2 records passes vacuously
(``no baseline``) — the gate needs committed history to bite, which is
exactly why ``write_bench_artifact`` appends on every bench run. A
registered metric the baselines carry but the fresh record *lacks* is
not a pass: the comparison reports status ``missing`` (a renamed or
silently-dropped metric looks exactly like a regression that can no
longer be measured), and a full-mode run (no explicit names) fails on
it. Exits non-zero if any metric regressed (or went missing in full
mode); the full comparison report is written as a stamped JSON artifact
for CI upload either way.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
HISTORY_DIR = HERE / "history"

BASE_TOLERANCE = 1.5
TOLERANCE_CAP = 1.95
#: Jitter can widen tolerance by at most this factor (a hopelessly noisy
#: host should fail loudly, not absorb every regression).
MAX_JITTER_WIDENING = 1.25
CROSS_HOST_WIDENING = 1.04
DEFAULT_LAST = 5

_TABLE_METRICS = {"seconds": "lower"}

#: Compared metrics per history name, with their improvement direction.
METRICS = {
    "plm_inference": {
        "seed_seconds": "lower",
        "engine_cold_seconds": "lower",
        "engine_warm_seconds": "lower",
        "cold_speedup": "higher",
        "warm_speedup": "higher",
    },
    "serving": {
        "unbatched_seconds": "lower",
        "batched_seconds": "lower",
        "speedup": "higher",
        "batched_p99_ms": "lower",
    },
    "serving_pool": {
        "closed_rps_r1": "higher",
        "closed_rps_r4": "higher",
        "speedup_4v1": "higher",
        "p99_ms_r4": "lower",
    },
    "quantized": {
        "float32_seconds": "lower",
        "quantized_seconds": "lower",
        "speedup": "higher",
        "accuracy_delta": "lower",
    },
    "xl_encode": {
        "encode_seconds": "lower",
        "docs_per_second": "higher",
    },
    "dag_pipeline": {
        "cold_seconds": "lower",
        "dirty_seconds": "lower",
        "warm_seconds": "lower",
        "dirty_speedup": "higher",
        "warm_speedup": "higher",
        "dedup_ratio": "higher",
    },
    "training": {
        "pretrain_speedup": "higher",
        "fit_speedup": "higher",
    },
    "obs_overhead": {
        "enabled_ns_per_span": "lower",
        "enabled_ns_per_count": "lower",
    },
    "pipeline": {
        "docs_per_second": "higher",
        "p99_ms": "lower",
    },
    "taxogen": {
        "recovered_fraction": "higher",
        "pristine_ops": "lower",
        "score_seconds": "lower",
        "repair_seconds": "lower",
    },
    "taxogen_table": _TABLE_METRICS,
    "conwea_table": _TABLE_METRICS,
    "lotclass_predictions": _TABLE_METRICS,
    "lotclass_table": _TABLE_METRICS,
    "metacat_table": _TABLE_METRICS,
    "micol_table": _TABLE_METRICS,
    "promptclass_table": _TABLE_METRICS,
    "summary_table": _TABLE_METRICS,
    "taxoclass_table": _TABLE_METRICS,
    "weshclass_table": _TABLE_METRICS,
    "westclass_table": _TABLE_METRICS,
    "xclass_dataset_table": _TABLE_METRICS,
    "xclass_table": _TABLE_METRICS,
}


def read_history(path: Path) -> list:
    """Parsed records of one ``history/<name>.jsonl`` (bad lines skipped)."""
    records = []
    if not path.exists():
        return records
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if isinstance(record, dict) and isinstance(record.get("metrics"), dict):
            records.append(record)
    return records


def _median(values: list) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _jitter(record: dict) -> float:
    calibration = record.get("calibration") or {}
    try:
        return max(1.0, float(calibration.get("jitter", 1.0)))
    except (TypeError, ValueError):
        return 1.0


def tolerance_detail(current: dict, baselines: list) -> dict:
    """Host-calibrated drift allowance, with every adjustment itemized.

    Base 1.5x, widened by how much noisier the current host is than the
    baselines were (jitter ratio, capped) and by a small cross-host
    factor when the hostname changed; the product is capped below 2x so
    a synthetic 2x slowdown always regresses. The returned breakdown is
    attached to the report payload, so a gate decision taken under e.g.
    the cross-host widening is auditable from the CI artifact alone.
    """
    baseline_jitter = _median([_jitter(b) for b in baselines])
    jitter_ratio = _jitter(current) / max(baseline_jitter, 1.0)
    jitter_widening = min(max(jitter_ratio, 1.0), MAX_JITTER_WIDENING)
    hosts = {b.get("host") for b in baselines} | {current.get("host")}
    cross_host = len(hosts - {None, "unknown"}) > 1
    cross_host_widening = CROSS_HOST_WIDENING if cross_host else 1.0
    raw = BASE_TOLERANCE * jitter_widening * cross_host_widening
    return {
        "base": BASE_TOLERANCE,
        "jitter_ratio": round(float(jitter_ratio), 4),
        "jitter_widening": round(float(jitter_widening), 4),
        "cross_host": cross_host,
        "cross_host_widening": cross_host_widening,
        "capped": raw > TOLERANCE_CAP,
        "tolerance": min(raw, TOLERANCE_CAP),
    }


def tolerance_for(current: dict, baselines: list) -> float:
    """Host-calibrated drift allowance for one comparison (see
    :func:`tolerance_detail` for the itemized breakdown)."""
    return tolerance_detail(current, baselines)["tolerance"]


def compare(name: str, records: list, last: int = DEFAULT_LAST) -> dict:
    """Compare the newest record of ``name`` against its baselines.

    Returns ``{"name", "status", "comparisons": [...]}`` where status is
    ``ok``, ``regressed``, ``missing``, or ``no baseline``. An empty or
    single-record history (a fresh clone, or a bench's very first run)
    is not an error: the result carries ``"baseline":
    "insufficient-history"`` and the gate passes vacuously — it needs
    committed history to bite. ``missing`` is the reverse hole: the
    baselines carry a registered metric the fresh record doesn't — a
    renamed or dropped metric must surface, not silently pass.
    """
    if len(records) < 2:
        return {"name": name, "status": "no baseline",
                "baseline": "insufficient-history",
                "n_baselines": max(0, len(records) - 1), "comparisons": []}
    current = records[-1]
    baselines = records[-1 - last:-1]
    registry = METRICS.get(name, {})
    detail = tolerance_detail(current, baselines)
    tolerance = detail["tolerance"]
    comparisons = []
    regressed = False
    missing = False
    for metric, direction in sorted(registry.items()):
        value = current["metrics"].get(metric)
        history = [b["metrics"][metric] for b in baselines
                   if isinstance(b["metrics"].get(metric), (int, float))]
        if not history:
            # Metric never recorded by any baseline — nothing to
            # compare against (a brand-new metric's first run).
            continue
        if not isinstance(value, (int, float)):
            missing = True
            comparisons.append({
                "metric": metric,
                "direction": direction,
                "current": None,
                "baseline_median": round(float(_median(history)), 6),
                "n_baselines": len(history),
                "status": "missing",
            })
            continue
        baseline = _median(history)
        if direction == "lower":
            # Worse = bigger. Guard near-zero baselines (sub-ms timings).
            ratio = value / max(baseline, 1e-9)
        else:
            ratio = baseline / max(value, 1e-9)
        bad = ratio > tolerance and abs(value - baseline) > 1e-9
        regressed = regressed or bad
        comparisons.append({
            "metric": metric,
            "direction": direction,
            "current": value,
            "baseline_median": round(float(baseline), 6),
            "n_baselines": len(history),
            "ratio": round(float(ratio), 4),
            "tolerance": round(float(tolerance), 4),
            "regressed": bad,
            "status": "regressed" if bad else "ok",
        })
    if regressed:
        status = "regressed"
    elif missing:
        status = "missing"
    else:
        status = "ok"
    return {
        "name": name,
        "status": status,
        "sha": current.get("sha"),
        "n_baselines": len(baselines),
        "tolerance_detail": detail,
        "comparisons": comparisons,
    }


def check_all(history_dir: Path = HISTORY_DIR, names: "list | None" = None,
              last: int = DEFAULT_LAST) -> dict:
    """Run the gate over ``names`` (default: every known history file)."""
    if names:
        targets = list(names)
    else:
        targets = sorted(
            p.stem for p in history_dir.glob("*.jsonl") if p.stem in METRICS
        )
    results = [compare(name, read_history(history_dir / f"{name}.jsonl"),
                       last=last)
               for name in targets]
    return {
        "checked": len(results),
        "regressed": [r["name"] for r in results if r["status"] == "regressed"],
        "missing": [r["name"] for r in results if r["status"] == "missing"],
        "results": results,
    }


def main(argv: "list | None" = None) -> int:
    parser = argparse.ArgumentParser(
        description="Compare current bench records against committed baselines."
    )
    parser.add_argument("names", nargs="*",
                        help="history names to check (default: all known)")
    parser.add_argument("--history", type=Path, default=HISTORY_DIR,
                        help="history directory (default: benchmarks/history)")
    parser.add_argument("--last", type=int, default=DEFAULT_LAST,
                        help="baselines to compare against (default: 5)")
    parser.add_argument("--report", type=Path,
                        default=HERE / "BENCH_regression.json",
                        help="where to write the comparison report")
    args = parser.parse_args(argv)

    report = check_all(args.history, args.names or None, last=args.last)
    import hostcal

    report["meta"] = hostcal.stamp()
    args.report.parent.mkdir(parents=True, exist_ok=True)
    args.report.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    full_mode = not args.names
    for result in report["results"]:
        marker = {"ok": "ok", "no baseline": "ok (no baseline)",
                  "missing": "MISSING"}.get(result["status"], "REGRESSED")
        print(f"{marker}: {result['name']} "
              f"({len(result['comparisons'])} metrics vs "
              f"{result['n_baselines']} baselines)")
        detail = result.get("tolerance_detail")
        if detail and detail.get("cross_host"):
            print(f"  note: cross-host baseline — tolerance widened "
                  f"x{detail['cross_host_widening']} to "
                  f"{detail['tolerance']:.4f}"
                  + (" (capped)" if detail.get("capped") else ""))
        for c in result["comparisons"]:
            if c.get("status") == "missing":
                print(f"  MISSING {c['metric']}: baselines carry it "
                      f"(median {c['baseline_median']}) but the fresh "
                      "record doesn't — renamed or dropped?",
                      file=sys.stderr)
            elif c["regressed"]:
                print(f"  REGRESSED {c['metric']}: {c['current']} vs median "
                      f"{c['baseline_median']} "
                      f"(ratio {c['ratio']} > tolerance {c['tolerance']})",
                      file=sys.stderr)
    print(f"report: {args.report}")
    if report["regressed"]:
        return 1
    if report["missing"] and full_mode:
        # In full mode a vanished metric fails the gate; a named run
        # (developer iterating on one bench) only reports it.
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
