"""T-LOTCLASS-2: the LOTClass results table.

Paper shape: LOTClass beats the simple-match and Dataless baselines from
label names alone, approaches the semi-supervised UDA row, and the fully
supervised BERT bounds it.
"""

from conftest import FULL, by_method, run_once

from repro.evaluation.reporting import format_table
from repro.experiments import tables


def test_lotclass_table(benchmark):
    rows = run_once(benchmark,
                    lambda: tables.lotclass_table(seed=0, fast=not FULL),
                    artifact="lotclass_table")
    print()
    print(format_table(rows, title="LOTClass results (accuracy)"))

    indexed = by_method(rows)
    for dataset in {r["Dataset"] for r in rows}:
        ours = indexed[(dataset, "Ours")]["Accuracy"]
        match = indexed[(dataset, "BERT w. simple match")]["Accuracy"]
        assert ours > match - 0.05, dataset
        supervised = indexed[(dataset, "BERT (supervised)")]["Accuracy"]
        assert supervised >= ours - 0.08, dataset
        no_st = indexed[(dataset, "Ours w/o. self train")]["Accuracy"]
        assert ours >= no_st - 0.07, dataset
