"""PLM inference-engine micro-benchmark: naive vs engine throughput.

Encodes a 500-document mixed-length corpus (long-tailed, like real ones:
mostly short documents with a long tail near ``max_len``) three ways:

- **seed** — the pre-engine path, reimplemented verbatim: fixed-size
  chunks in corpus order, padded to the chunk max, full autograd graph,
  plus the double ``vocab.encode`` pooling pass;
- **engine (cold)** — no-grad, length-bucketed, token-budget batches,
  empty encode cache;
- **engine (warm)** — same corpus again, served from the cache.

Asserts the engine is >= 2x the seed throughput cold and >= 8x warm, and
writes a ``BENCH_plm_inference.json`` artifact next to this file. (The
thresholds dropped when the training engine moved the default dtype to
float32: the seed path sped up ~2x, so the ratios compressed even though
the engine's absolute timings improved.)
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.core.enc_cache import EncodeCache
from repro.datasets.pretraining import general_corpus
from repro.nn.functional import l2_normalize
from repro.plm.config import PLMConfig
from repro.plm.encoder import pad_batch
from repro.plm.engine import EngineConfig
from repro.plm.model import PretrainedLM
from repro.plm.provider import get_pretrained_lm

ARTIFACT = Path(__file__).resolve().parent / "BENCH_plm_inference.json"
N_DOCS = 500
MIN_COLD_SPEEDUP = 2.0
MIN_WARM_SPEEDUP = 8.0


def _seed_doc_embeddings(plm: PretrainedLM, token_lists: list) -> np.ndarray:
    """The seed implementation of doc_embeddings, verbatim."""
    vocab = plm.vocabulary
    sequences = [vocab.encode(t)[: plm.max_len] for t in token_lists]
    encoded = []
    for start in range(0, len(sequences), plm.batch_size):
        chunk = sequences[start : start + plm.batch_size]
        if not chunk:
            continue
        safe = [s if len(s) else np.array([vocab.unk_id]) for s in chunk]
        ids, mask = pad_batch(safe, vocab.pad_id, plm.max_len)
        hidden = plm.encoder(ids, pad_mask=mask).data
        for row, seq in zip(hidden, safe):
            encoded.append(row[: len(seq)].copy())
    rows = []
    for tokens, hidden in zip(token_lists, encoded):
        ids = vocab.encode(list(tokens))[: hidden.shape[0]]
        keep = ids != vocab.unk_id
        rows.append(hidden[keep].mean(axis=0) if keep.any()
                    else hidden.mean(axis=0))
    return l2_normalize(np.stack(rows))


def _mixed_corpus(plm: PretrainedLM, n_docs: int, seed: int = 0) -> list:
    """Long-tailed document lengths: ~85% short, ~15% near max_len."""
    rng = np.random.default_rng(seed)
    source = general_corpus(seed=seed, n_docs=min(n_docs, 1200)).token_lists()
    max_len = plm.max_len
    docs = []
    for i in range(n_docs):
        tokens = source[i % len(source)]
        if rng.random() < 0.85:
            length = int(rng.integers(4, 11))
        else:
            length = int(rng.integers(max(12, max_len - 16), max_len + 4))
        while len(tokens) < length:
            tokens = tokens + source[(i + 7) % len(source)]
        docs.append(list(tokens[:length]))
    return docs


def _timed(fn) -> tuple:
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def test_plm_inference_engine_throughput():
    config = PLMConfig(dim=32, n_layers=2, n_heads=2, ff_hidden=64,
                       mlm_steps=150, pretrain_docs=700)
    base = get_pretrained_lm(config=config, seed=0)
    docs = _mixed_corpus(base, N_DOCS)
    total_tokens = sum(len(d) for d in docs)

    seed_plm = PretrainedLM(
        base.encoder,
        engine_config=EngineConfig(bucket=False, inference=False, cache=False),
    )
    engine_plm = PretrainedLM(base.encoder, enc_cache=EncodeCache(),
                              engine_config=EngineConfig())

    # Warm numpy/allocator once so the first measured run is not penalized.
    seed_plm.doc_embeddings(docs[:32])

    seed_s, seed_out = _timed(lambda: _seed_doc_embeddings(seed_plm, docs))
    cold_s, cold_out = _timed(lambda: engine_plm.doc_embeddings(docs))
    warm_s, warm_out = _timed(lambda: engine_plm.doc_embeddings(docs))

    # float32-ulp tolerance: batch shape changes BLAS tiling, so seed and
    # engine outputs can differ by an ulp even though the math is identical.
    np.testing.assert_allclose(cold_out, seed_out, atol=2e-6)
    np.testing.assert_array_equal(cold_out, warm_out)

    report = {
        "n_docs": N_DOCS,
        "total_tokens": total_tokens,
        "config": {"dim": config.dim, "n_layers": config.n_layers,
                   "max_len": config.max_len,
                   "batch_size": seed_plm.batch_size},
        "seed_seconds": round(seed_s, 4),
        "engine_cold_seconds": round(cold_s, 4),
        "engine_warm_seconds": round(warm_s, 4),
        "seed_docs_per_second": round(N_DOCS / seed_s, 1),
        "engine_cold_docs_per_second": round(N_DOCS / cold_s, 1),
        "engine_warm_docs_per_second": round(N_DOCS / warm_s, 1),
        "cold_speedup": round(seed_s / cold_s, 2),
        "warm_speedup": round(seed_s / warm_s, 2),
        "cache": engine_plm.enc_cache.stats(),
    }
    ARTIFACT.write_text(json.dumps(report, indent=2) + "\n")

    print()
    print("PLM inference engine, doc_embeddings over "
          f"{N_DOCS} mixed-length docs ({total_tokens} tokens)")
    print(f"  seed path:     {seed_s:7.3f}s  ({N_DOCS / seed_s:8.1f} docs/s)")
    print(f"  engine (cold): {cold_s:7.3f}s  ({N_DOCS / cold_s:8.1f} docs/s)"
          f"  -> {seed_s / cold_s:.2f}x")
    print(f"  engine (warm): {warm_s:7.3f}s  ({N_DOCS / warm_s:8.1f} docs/s)"
          f"  -> {seed_s / warm_s:.2f}x")
    print(f"  artifact: {ARTIFACT}")

    assert seed_s / cold_s >= MIN_COLD_SPEEDUP, report
    assert seed_s / warm_s >= MIN_WARM_SPEEDUP, report


if __name__ == "__main__":
    test_plm_inference_engine_throughput()
