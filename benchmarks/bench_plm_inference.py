"""PLM inference-engine micro-benchmark: naive vs engine throughput.

Encodes a 500-document mixed-length corpus (long-tailed, like real ones:
mostly short documents with a long tail near ``max_len``) three ways:

- **seed** — the pre-engine path, reimplemented verbatim: fixed-size
  chunks in corpus order, padded to the chunk max, full autograd graph,
  plus the double ``vocab.encode`` pooling pass;
- **engine (cold)** — no-grad, length-bucketed, token-budget batches,
  empty encode cache;
- **engine (warm)** — same corpus again, served from the cache.

Asserts the engine beats host-aware speedup floors and writes a
``BENCH_plm_inference.json`` artifact next to this file.

The floors are not fixed constants: the achievable ratios depend on how
much the host rewards batching (BLAS vs per-call overhead) and on how
cheap pure-python bookkeeping is relative to float32 compute — both of
which collapse on an oversubscribed CI runner, where fixed 2x/8x floors
flaked. The shared ``hostcal`` probes (fused-vs-looped matmul for the
cold ratio, dict-lookup-vs-compute for the warm cache-served ratio)
measure the host, and the floors scale from those gains, clamped to
[1.3, 2.0] cold and [3.0, 8.0] warm. A fast, idle host still enforces
the original 2x/8x; a degraded host relaxes gracefully instead of
failing on noise. The calibration measurements and derived floors are
recorded in the artifact.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.enc_cache import EncodeCache
from repro.datasets.pretraining import general_corpus
from repro.nn.functional import l2_normalize
from repro.plm.config import PLMConfig
from repro.plm.encoder import pad_batch
from repro.plm.engine import EngineConfig
from repro.plm.model import PretrainedLM
from repro.plm.provider import get_pretrained_lm

import hostcal
from conftest import write_bench_artifact

N_DOCS = 500

# Floors derived in _calibrate_floors, clamped to [MIN, MAX].  The MAX
# values are the original fixed thresholds; the MIN values are what the
# engine must clear even on a badly oversubscribed host.
COLD_FLOOR_MIN, COLD_FRACTION, COLD_FLOOR_MAX = 1.3, 0.5, 2.0
WARM_FLOOR_MIN, WARM_FLOOR_MAX = 3.0, 8.0


def _seed_doc_embeddings(plm: PretrainedLM, token_lists: list) -> np.ndarray:
    """The seed implementation of doc_embeddings, verbatim."""
    vocab = plm.vocabulary
    sequences = [vocab.encode(t)[: plm.max_len] for t in token_lists]
    encoded = []
    for start in range(0, len(sequences), plm.batch_size):
        chunk = sequences[start : start + plm.batch_size]
        if not chunk:
            continue
        safe = [s if len(s) else np.array([vocab.unk_id]) for s in chunk]
        ids, mask = pad_batch(safe, vocab.pad_id, plm.max_len)
        hidden = plm.encoder(ids, pad_mask=mask).data
        for row, seq in zip(hidden, safe):
            encoded.append(row[: len(seq)].copy())
    rows = []
    for tokens, hidden in zip(token_lists, encoded):
        ids = vocab.encode(list(tokens))[: hidden.shape[0]]
        keep = ids != vocab.unk_id
        rows.append(hidden[keep].mean(axis=0) if keep.any()
                    else hidden.mean(axis=0))
    return l2_normalize(np.stack(rows))


def _mixed_corpus(plm: PretrainedLM, n_docs: int, seed: int = 0) -> list:
    """Long-tailed document lengths: ~85% short, ~15% near max_len."""
    rng = np.random.default_rng(seed)
    source = general_corpus(seed=seed, n_docs=min(n_docs, 1200)).token_lists()
    max_len = plm.max_len
    docs = []
    for i in range(n_docs):
        tokens = source[i % len(source)]
        if rng.random() < 0.85:
            length = int(rng.integers(4, 11))
        else:
            length = int(rng.integers(max(12, max_len - 16), max_len + 4))
        while len(tokens) < length:
            tokens = tokens + source[(i + 7) % len(source)]
        docs.append(list(tokens[:length]))
    return docs


def _timed(fn) -> tuple:
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def _calibrate_floors(seed: int = 0) -> dict:
    """Host-aware speedup floors from the shared ``hostcal`` probes.

    Floors scale down from the fixed maxima with the measured batching
    gain and jitter, clamped to hard minima the engine must clear
    regardless (probe semantics documented in :mod:`hostcal`).
    """
    probes = hostcal.calibrate(seed=seed)
    batch_gain, jitter = probes["batch_gain"], probes["jitter"]
    return {
        **probes,
        "min_cold_speedup": round(
            min(COLD_FLOOR_MAX,
                max(COLD_FLOOR_MIN,
                    COLD_FRACTION * batch_gain / jitter)), 2),
        "min_warm_speedup": round(
            min(WARM_FLOOR_MAX,
                max(WARM_FLOOR_MIN, WARM_FLOOR_MAX / jitter)), 2),
    }


def test_plm_inference_engine_throughput():
    calibration = _calibrate_floors()
    min_cold = calibration["min_cold_speedup"]
    min_warm = calibration["min_warm_speedup"]

    config = PLMConfig(dim=32, n_layers=2, n_heads=2, ff_hidden=64,
                       mlm_steps=150, pretrain_docs=700)
    base = get_pretrained_lm(config=config, seed=0)
    docs = _mixed_corpus(base, N_DOCS)
    total_tokens = sum(len(d) for d in docs)

    seed_plm = PretrainedLM(
        base.encoder,
        engine_config=EngineConfig(bucket=False, inference=False, cache=False),
    )
    engine_plm = PretrainedLM(base.encoder, enc_cache=EncodeCache(),
                              engine_config=EngineConfig())

    # Warm numpy/allocator once so the first measured run is not penalized.
    seed_plm.doc_embeddings(docs[:32])

    seed_s, seed_out = _timed(lambda: _seed_doc_embeddings(seed_plm, docs))
    cold_s, cold_out = _timed(lambda: engine_plm.doc_embeddings(docs))
    warm_s, warm_out = _timed(lambda: engine_plm.doc_embeddings(docs))

    # float32-ulp tolerance: batch shape changes BLAS tiling, so seed and
    # engine outputs can differ by an ulp even though the math is identical.
    np.testing.assert_allclose(cold_out, seed_out, atol=2e-6)
    np.testing.assert_array_equal(cold_out, warm_out)

    report = {
        "n_docs": N_DOCS,
        "total_tokens": total_tokens,
        "config": {"dim": config.dim, "n_layers": config.n_layers,
                   "max_len": config.max_len,
                   "batch_size": seed_plm.batch_size},
        "seed_seconds": round(seed_s, 4),
        "engine_cold_seconds": round(cold_s, 4),
        "engine_warm_seconds": round(warm_s, 4),
        "seed_docs_per_second": round(N_DOCS / seed_s, 1),
        "engine_cold_docs_per_second": round(N_DOCS / cold_s, 1),
        "engine_warm_docs_per_second": round(N_DOCS / warm_s, 1),
        "cold_speedup": round(seed_s / cold_s, 2),
        "warm_speedup": round(seed_s / warm_s, 2),
        "cache": engine_plm.enc_cache.stats(),
        "calibration": calibration,
    }
    artifact_path = write_bench_artifact("plm_inference", report)

    print()
    print("PLM inference engine, doc_embeddings over "
          f"{N_DOCS} mixed-length docs ({total_tokens} tokens)")
    print(f"  seed path:     {seed_s:7.3f}s  ({N_DOCS / seed_s:8.1f} docs/s)")
    print(f"  engine (cold): {cold_s:7.3f}s  ({N_DOCS / cold_s:8.1f} docs/s)"
          f"  -> {seed_s / cold_s:.2f}x")
    print(f"  engine (warm): {warm_s:7.3f}s  ({N_DOCS / warm_s:8.1f} docs/s)"
          f"  -> {seed_s / warm_s:.2f}x")
    print(f"  calibrated floors: cold >= {min_cold}x, warm >= {min_warm}x "
          f"(batch_gain {calibration['batch_gain']}, "
          f"jitter {calibration['jitter']})")
    print(f"  artifact: {artifact_path}")

    assert seed_s / cold_s >= min_cold, report
    assert seed_s / warm_s >= min_warm, report


if __name__ == "__main__":
    test_plm_inference_engine_throughput()
