"""T-MICOL: the MICoL results table with the MATCH crossover.

Paper shape: MICoL beats the generic un-fine-tuned encoders (Doc2Vec,
SciBERT) and the augmentation-pair contrastive baselines (EDA, UDA); it
beats MATCH trained on few labels but loses to MATCH with plentiful
supervision (the crossover).
"""

from conftest import FULL, by_method, run_once

from repro.evaluation.reporting import format_table
from repro.experiments import tables

MICOL_ROWS = ("MICoL (Bi, P->P<-P)", "MICoL (Bi, P<-(PP)->P)",
              "MICoL (Cross, P->P<-P)", "MICoL (Cross, P<-(PP)->P)")


def test_micol_table(benchmark):
    rows = run_once(benchmark,
                    lambda: tables.micol_table(seed=0, fast=not FULL),
                    artifact="micol_table")
    print()
    print(format_table(rows, title="MICoL results (P@k, NDCG@k)"))

    indexed = by_method(rows)
    for dataset in {r["Dataset"] for r in rows}:
        best_micol = max(indexed[(dataset, m)]["P@1"] for m in MICOL_ROWS)
        assert best_micol > indexed[(dataset, "Doc2Vec")]["P@1"] - 0.02
        assert best_micol > indexed[(dataset, "SciBERT")]["P@1"] - 0.02
        assert best_micol >= indexed[(dataset, "EDA")]["P@1"] - 0.05
        assert best_micol >= indexed[(dataset, "UDA")]["P@1"] - 0.05
        # The MATCH crossover: zero-shot MICoL beats low-resource MATCH
        # and loses to (or at best ties) full-resource MATCH.
        assert best_micol > indexed[(dataset, "MATCH (2%)")]["P@1"] - 0.02
        assert indexed[(dataset, "MATCH (full)")]["P@1"] >= best_micol - 0.10
