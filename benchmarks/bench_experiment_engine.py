"""Experiment-engine wall-clock: serial vs ``jobs=4`` vs warm memo store.

Three measurements, honestly labeled for the host they run on:

- **Pool scaling** on a sleep-bound multi-row latency table pushed
  through the real engine (spawn pool, pipes, timeouts). Row latency is
  the gating resource, so the fan-out speedup is visible even on a
  single-core CI box, where CPU-bound rows cannot scale past 1x.
- **Row memoization** on two representative real tables (westclass and
  metacat): cold compute vs a warm store read through the disk tier
  (the in-memory tier is cleared in between). This is the speedup a
  re-run of an unchanged table gets regardless of core count.
- The real tables are also run once at ``jobs=4`` and recorded —
  informational on a 1-core host, a second scaling datapoint elsewhere.

Writes ``benchmarks/BENCH_experiment_engine.json`` via the shared
writer. Runnable standalone: ``python benchmarks/bench_experiment_engine.py``.
"""

import os
import tempfile
import time

from conftest import write_bench_artifact

from repro.experiments import tables
from repro.experiments.engine import (
    RowSpec,
    clear_memo_memory,
    run_specs,
)

# Sleep long enough that the spawn pool's startup (~1-2s of interpreter
# + import per worker, serialized on a 1-core host) amortizes away.
LATENCY_ROWS = 12
LATENCY_SLEEP = 3.0


def _latency_row(row_seed, seconds):
    time.sleep(seconds)
    return {"slept": seconds}


def _latency_specs():
    return [
        RowSpec(table="bench-latency", name=f"row{i}", runner=_latency_row,
                kwargs={"seconds": LATENCY_SLEEP}, static={"Method": f"m{i}"})
        for i in range(LATENCY_ROWS)
    ]


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _bench_latency_table() -> dict:
    specs = _latency_specs()
    serial, serial_s = _timed(
        lambda: run_specs(specs, table_seed=0, jobs=1, use_cache=False))
    fanned, jobs4_s = _timed(
        lambda: run_specs(specs, table_seed=0, jobs=4, use_cache=False))
    assert [r["Method"] for r in fanned] == [r["Method"] for r in serial]
    return {
        "rows": LATENCY_ROWS,
        "row_sleep_seconds": LATENCY_SLEEP,
        "serial_seconds": round(serial_s, 2),
        "jobs4_seconds": round(jobs4_s, 2),
        "jobs4_speedup": round(serial_s / jobs4_s, 2),
    }


def _bench_real_table(name: str, table_fn, cache_root: str) -> dict:
    cache_dir = os.path.join(cache_root, name)
    cold, cold_s = _timed(lambda: _run_cached(table_fn, cache_dir))
    fanned, jobs4_s = _timed(  # pure compute: no memo reads or writes
        lambda: table_fn(seed=0, fast=True, jobs=4, use_cache=False))
    clear_memo_memory()  # warm run must come from the disk tier
    warm, warm_s = _timed(lambda: _run_cached(table_fn, cache_dir))
    strip = lambda rows: [  # noqa: E731
        {k: v for k, v in r.items() if k != "seconds"} for r in rows]
    assert strip(warm) == strip(cold)
    assert strip(fanned) == strip(cold)
    return {
        "rows": len(cold),
        "serial_seconds": round(cold_s, 2),
        "jobs4_seconds": round(jobs4_s, 2),
        "warm_seconds": round(warm_s, 3),
        "warm_speedup": round(cold_s / max(warm_s, 1e-9), 1),
    }


def _run_cached(table_fn, cache_dir: str):
    previous = os.environ.get("REPRO_ROW_CACHE_DIR")
    os.environ["REPRO_ROW_CACHE_DIR"] = cache_dir
    try:
        return table_fn(seed=0, fast=True, jobs=1, use_cache=True)
    finally:
        if previous is None:
            del os.environ["REPRO_ROW_CACHE_DIR"]
        else:
            os.environ["REPRO_ROW_CACHE_DIR"] = previous


def test_experiment_engine_speedups():
    cache_root = tempfile.mkdtemp(prefix="repro-bench-rows-")
    report = {
        "cores": len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity")
                 else os.cpu_count(),
        "latency_table": _bench_latency_table(),
        "westclass": _bench_real_table("westclass", tables.westclass_table,
                                       cache_root),
        "metacat": _bench_real_table("metacat", tables.metacat_tables,
                                     cache_root),
        "note": ("jobs-scaling is demonstrated on the sleep-bound latency "
                 "table; CPU-bound rows cannot exceed 1x on a single-core "
                 "host, where re-runs gain from the memo store instead"),
    }
    write_bench_artifact("experiment_engine", report)
    print()
    print("engine bench:", report)

    assert report["latency_table"]["jobs4_speedup"] >= 2.0
    assert report["westclass"]["warm_speedup"] >= 10.0
    assert report["metacat"]["warm_speedup"] >= 10.0


if __name__ == "__main__":
    test_experiment_engine_speedups()
