"""DAG pipeline wall-clock: cold build vs dirty subgraph vs fully warm.

Two corpus-sharing tables (lotclass-predictions and xclass-data both
consume the agnews profile) are compiled into ONE artifact graph and
pushed through the DAG scheduler three times against the same artifact
store:

- **cold** — empty store, serial: every node executes. This is the
  bit-identity baseline the other runs are compared against.
- **dirty** — one row node is forced to recompute (the ``--select``
  mechanism); everything else is reused from the store, so the run
  measures exactly the dirty-subgraph cost. Must beat cold by the
  host-calibrated floor (base 3x, relaxed on jittery hosts, never below
  1.5x) — the headline number of the incremental pipeline.
- **warm** — nothing forced, ``jobs=4``: the scheduler must execute
  ZERO nodes and still return rows bit-identical to cold serial.

The cross-table dedup ratio (declared nodes / unique nodes after the
shared-graph merge) is recorded alongside; it exceeds 1.0 whenever two
tables share a corpus or encode artifact.

Writes ``benchmarks/BENCH_dag_pipeline.json`` via the shared writer.
Runnable standalone: ``python benchmarks/bench_dag_pipeline.py``.
"""

import tempfile
import time

import hostcal
from conftest import write_bench_artifact

from repro.experiments import scheduler, tables
from repro.experiments.engine import clear_memo_memory

#: Both tables declare corpus:agnews@0, so the shared graph merges it.
BENCH_TABLES = ("lotclass-predictions", "xclass-data")
#: The node forced to recompute in the dirty run (one stats row).
DIRTY_SELECT = ["xclass-data.yelp/stats"]

DIRTY_SPEEDUP_BASE = 3.0
DIRTY_SPEEDUP_MIN = 1.5


def _run(cache_dir, *, jobs=1, select=None):
    requests = [tables.REQUESTS[name](0, True) for name in BENCH_TABLES]
    start = time.perf_counter()
    results = scheduler.run_requests(requests, jobs=jobs, use_cache=True,
                                     cache_dir=cache_dir, select=select)
    seconds = time.perf_counter() - start
    return results, scheduler.take_last_dag_report(), seconds


def _strip(results):
    return {table: [{k: v for k, v in row.items() if k != "seconds"}
                    for row in rows]
            for table, rows in results.items()}


def test_dag_pipeline_speedups():
    cache_dir = tempfile.mkdtemp(prefix="repro-bench-dag-")

    cold, cold_report, cold_s = _run(cache_dir, jobs=1)
    clear_memo_memory()  # reuse must come from the disk tier
    dirty, dirty_report, dirty_s = _run(cache_dir, jobs=1,
                                        select=DIRTY_SELECT)
    clear_memo_memory()
    warm, warm_report, warm_s = _run(cache_dir, jobs=4)

    assert _strip(dirty) == _strip(cold)
    assert _strip(warm) == _strip(cold)
    assert cold_report.errors == 0
    assert dirty_report.executed == len(DIRTY_SELECT)
    assert warm_report.executed == 0

    probes = hostcal.calibrate()
    min_dirty_speedup = round(
        min(DIRTY_SPEEDUP_BASE,
            max(DIRTY_SPEEDUP_MIN, DIRTY_SPEEDUP_BASE / probes["jitter"])),
        2)
    dedup_ratio = round(
        (cold_report.nodes + cold_report.merged) / cold_report.nodes, 3)

    report = {
        "tables": list(BENCH_TABLES),
        "dirty_select": DIRTY_SELECT,
        "nodes_total": cold_report.nodes,
        "nodes_merged": cold_report.merged,
        "nodes_executed_cold": cold_report.executed,
        "nodes_executed_dirty": dirty_report.executed,
        "nodes_executed_warm": warm_report.executed,
        "cold_seconds": round(cold_s, 2),
        "dirty_seconds": round(dirty_s, 2),
        "warm_seconds": round(warm_s, 3),
        "dirty_speedup": round(cold_s / max(dirty_s, 1e-9), 2),
        "warm_speedup": round(cold_s / max(warm_s, 1e-9), 2),
        "min_dirty_speedup": min_dirty_speedup,
        "dedup_ratio": dedup_ratio,
        "calibration": probes,
    }
    write_bench_artifact("dag_pipeline", report)
    print()
    print("dag pipeline bench:", report)

    assert report["dedup_ratio"] > 1.0
    assert report["dirty_speedup"] >= min_dirty_speedup
    assert report["warm_speedup"] >= min_dirty_speedup


if __name__ == "__main__":
    test_dag_pipeline_speedups()
