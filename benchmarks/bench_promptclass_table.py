"""T-PROMPT: the PromptClass results table.

Paper shape: co-trained PromptClass variants beat their own zero-shot
starting points and the earlier weakly-supervised systems; the fully
supervised head bounds everything.
"""

from conftest import FULL, by_method, run_once

from repro.evaluation.reporting import format_table
from repro.experiments import tables


def test_promptclass_table(benchmark):
    rows = run_once(benchmark,
                    lambda: tables.promptclass_table(seed=0, fast=not FULL),
                    artifact="promptclass_table")
    print()
    print(format_table(rows, title="PromptClass results (micro/macro F1)"))

    indexed = by_method(rows)
    for dataset in {r["Dataset"] for r in rows}:
        best_prompt = max(
            indexed[(dataset, "PromptClass ELECTRA+BERT")]["Micro-F1"],
            indexed[(dataset, "PromptClass RoBERTa+RoBERTa")]["Micro-F1"],
            indexed[(dataset, "PromptClass ELECTRA+ELECTRA")]["Micro-F1"],
        )
        zero_mlm = indexed[(dataset, "RoBERTa (0-shot)")]["Micro-F1"]
        zero_electra = indexed[(dataset, "ELECTRA (0-shot)")]["Micro-F1"]
        assert best_prompt >= max(zero_mlm, zero_electra) - 0.03, dataset
        supervised = indexed[(dataset, "Fully Supervised")]["Micro-F1"]
        assert supervised >= best_prompt - 0.1, dataset
