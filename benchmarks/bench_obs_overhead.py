"""Observability overhead: disabled hooks must be unmeasurable.

Every hot path in the engines calls :func:`repro.obs.span` /
:func:`repro.obs.count` unconditionally; the contract is that with no
tracer enabled (the library default) each call is a single module-level
``is None`` check. This bench times the hooks both ways:

- **disabled** — per-call cost of the no-op path, asserted under 1 µs
  per call (in practice ~100 ns: one global load and one comparison);
- **enabled** — per-call cost while recording, reported for context
  (spans allocate one event dict each, counters one dict update);
- a miniature classifier ``fit`` run both ways, reporting the end-to-end
  tracing overhead on a real training loop.

Writes ``BENCH_obs_overhead.json``. The <2% no-regression acceptance on
the committed inference/training baselines is enforced by those benches'
own thresholds — they run with tracing disabled.
"""

from __future__ import annotations

import time

import numpy as np

from repro import obs
from repro.obs.tracer import NULL_SPAN

from conftest import write_bench_artifact

N_CALLS = 200_000
MAX_DISABLED_NS = 1000.0  # 1 us/call: ~10x headroom over the observed cost


def _per_call_ns(fn, n: int = N_CALLS) -> float:
    start = time.perf_counter()
    for _ in range(n):
        fn()
    return (time.perf_counter() - start) / n * 1e9


def _span_call():
    with obs.span("bench"):
        pass


def _count_call():
    obs.count("bench", 1)


def _fit_seconds(seed: int = 0) -> float:
    from repro.classifiers.textcnn import TextCNNClassifier
    from repro.text.vocabulary import Vocabulary

    rng = np.random.default_rng(seed)
    docs = [[f"tok{int(t)}" for t in rng.integers(0, 80, size=12)]
            for _ in range(64)]
    vocab = Vocabulary.build(docs)
    targets = rng.integers(0, 3, size=len(docs))
    model = TextCNNClassifier(vocab, n_classes=3, seed=seed)
    start = time.perf_counter()
    model.fit(docs, targets, epochs=2)
    return time.perf_counter() - start


def test_disabled_hooks_are_free():
    assert not obs.enabled()
    assert obs.span("x") is NULL_SPAN  # no per-call allocation

    # Warm the loops once before timing.
    _per_call_ns(_span_call, 1000)
    disabled_span = _per_call_ns(_span_call)
    disabled_count = _per_call_ns(_count_call)

    obs.enable("bench")
    enabled_span = _per_call_ns(_span_call, 20_000)
    enabled_count = _per_call_ns(_count_call, 20_000)
    obs.disable()

    _fit_seconds()  # warm imports/allocator so both timed runs are steady
    fit_disabled = _fit_seconds()
    obs.enable("bench-fit")
    fit_enabled = _fit_seconds()
    obs.disable()

    report = {
        "calls": N_CALLS,
        "disabled_ns_per_span": round(disabled_span, 1),
        "disabled_ns_per_count": round(disabled_count, 1),
        "enabled_ns_per_span": round(enabled_span, 1),
        "enabled_ns_per_count": round(enabled_count, 1),
        "fit_disabled_seconds": round(fit_disabled, 4),
        "fit_enabled_seconds": round(fit_enabled, 4),
        "fit_tracing_overhead": round(fit_enabled / fit_disabled - 1.0, 4),
    }
    path = write_bench_artifact("obs_overhead", report)

    print()
    print("obs hook overhead (ns/call)")
    print(f"  span  disabled: {disabled_span:8.1f}   "
          f"enabled: {enabled_span:8.1f}")
    print(f"  count disabled: {disabled_count:8.1f}   "
          f"enabled: {enabled_count:8.1f}")
    print(f"  classifier fit: {fit_disabled:.3f}s off, {fit_enabled:.3f}s on "
          f"({report['fit_tracing_overhead']:+.1%})")
    print(f"  artifact: {path}")

    assert disabled_span < MAX_DISABLED_NS, report
    assert disabled_count < MAX_DISABLED_NS, report


if __name__ == "__main__":
    test_disabled_hooks_are_free()
