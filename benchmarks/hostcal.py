"""Host calibration and provenance stamping for bench artifacts.

Bench numbers are only comparable across runs when you know *what ran*
(git SHA), *where* (hostname), and *how fast that host was that day*
(calibration probes). This module is the single source for all three:

- :func:`calibrate` — the PR 5 pure-numpy probes, measured once per
  process and cached:

  * **batch_gain** — looped vs fused float32 matmul over identical rows;
    how much this host rewards replacing per-call python overhead with
    one BLAS call (near 1.0 contended, >5 idle);
  * **jitter** — mean/min wall time of a millisecond-scale python sweep
    (dict lookups + tiny reductions); how much scheduler noise inflates
    short measurements (~1.0-1.4 idle, 2-5 on a loaded runner).

- :func:`stamp` — the provenance dict every ``write_bench_artifact``
  payload carries and every ``benchmarks/history/`` record starts from.

The regression gate (``check_regression.py``) widens its tolerances by
the jitter ratio between the current run and the committed baselines, so
a noisy runner relaxes gracefully instead of flagging phantom
regressions — while a genuine 2x slowdown stays over every tolerance cap.
"""

from __future__ import annotations

import platform
import subprocess
import time
from pathlib import Path

import numpy as np

HERE = Path(__file__).resolve().parent

_CALIBRATION: "dict | None" = None
_PROBE_KEYS = 500


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _best_of(fn, repeats: int = 5) -> float:
    """Min wall time over ``repeats`` runs — strips scheduler noise."""
    return min(_timed(fn) for _ in range(repeats))


def calibrate(seed: int = 0, refresh: bool = False) -> dict:
    """This host's batching reward and timing jitter (cached per process).

    Pure numpy, independent of any repro code, so the probes measure the
    machine rather than the codebase under test.
    """
    global _CALIBRATION
    if _CALIBRATION is not None and not refresh:
        return _CALIBRATION
    rng = np.random.default_rng(seed)
    weight = rng.standard_normal((32, 32)).astype(np.float32)
    small = [rng.standard_normal((8, 32)).astype(np.float32)
             for _ in range(64)]
    fused = np.concatenate(small, axis=0)
    fused @ weight  # warm BLAS once

    looped_s = _best_of(lambda: [x @ weight for x in small])
    fused_s = _best_of(lambda: [fused @ weight])
    batch_gain = looped_s / max(fused_s, 1e-9)

    keys = [(i, i + 1) for i in range(_PROBE_KEYS)]
    table = {key: small[i % len(small)] for i, key in enumerate(keys)}
    sweep = lambda: [table[k].mean(axis=0) for k in keys]
    times = [_timed(sweep) for _ in range(7)]
    jitter = max(1.0, (sum(times) / len(times)) / max(min(times), 1e-9))

    _CALIBRATION = {
        "batch_gain": round(batch_gain, 2),
        "jitter": round(jitter, 2),
    }
    return _CALIBRATION


def git_sha() -> str:
    """The repo's current commit SHA (``unknown`` outside a checkout)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=HERE,
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def host() -> str:
    """Hostname for cross-host tolerance decisions."""
    return platform.node() or "unknown"


def stamp() -> dict:
    """Provenance every artifact and history record carries."""
    return {
        "sha": git_sha(),
        "host": host(),
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "calibration": calibrate(),
    }
