"""T-SUMMARY: the tutorial's closing capability matrix.

Generated from the live method registry, so the table stays true to the
implementations rather than to a transcription.
"""

from conftest import run_once

from repro.evaluation.reporting import format_table
from repro.experiments import tables


def test_summary_table(benchmark):
    rows = run_once(benchmark, tables.summary_table,
                    artifact="summary_table")
    print()
    print(format_table(rows, title="Method capability summary"))

    by_name = {r["Method"]: r for r in rows}
    assert len(rows) == 9
    # Spot-check against the tutorial's table.
    assert by_name["WeSTClass"]["Backbone"] == "embedding"
    assert by_name["ConWea"]["Backbone"] == "pretrained-lm"
    assert by_name["LOTClass"]["Supervision Format"] == "LabelNames"
    assert by_name["WeSHClass"]["Single vs. Multi-label"] == "path"
    assert by_name["TaxoClass"]["Single vs. Multi-label"] == "multi-label"
    assert by_name["MetaCat"]["Supervision Format"] == "LabeledDocuments"
    assert by_name["MICoL"]["Single vs. Multi-label"] == "multi-label"
