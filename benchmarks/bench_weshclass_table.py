"""T-WESHCLASS: the WeSHClass results table.

Paper shape: the full system beats the flat WeSTClass baseline and every
ablation (No-global, No-vMF, No-self-train) on the leaf-level task.
"""

from conftest import FULL, by_method, run_once

from repro.evaluation.reporting import format_table
from repro.experiments import tables


def test_weshclass_table(benchmark):
    rows = run_once(benchmark,
                    lambda: tables.weshclass_table(seed=0, fast=not FULL),
                    artifact="weshclass_table")
    print()
    print(format_table(rows, title="WeSHClass results (macro/micro F1)"))

    indexed = by_method(rows)
    for dataset in {r["Dataset"] for r in rows}:
        full = indexed[(dataset, "WeSHClass")]["KEYWORDS micro"]
        assert full > indexed[(dataset, "Hier-SVM")]["DOCS micro"] - 0.03
        for ablation in ("No-global", "No-vMF", "No-self-train"):
            assert full >= indexed[(dataset, ablation)]["KEYWORDS micro"] - 0.05, (
                dataset, ablation)
        flat = indexed[(dataset, "WeSTClass")]["KEYWORDS micro"]
        assert full >= flat - 0.05, (dataset, "hierarchy should help")
