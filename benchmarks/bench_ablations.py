"""Design-choice ablations (DESIGN.md §5): the substitutions themselves.

Two choices specific to this reproduction are ablated so their effect is
measured rather than assumed:

- **SVD-initialized token embeddings** (the stand-in for large-scale
  pre-training): without it, the same MLM budget leaves the PLM far less
  topical, and label-name-only methods degrade;
- **domain-adaptive pre-training** (the unlabeled target corpus joins the
  MLM stream): on agnews the curated themes are fully covered by the
  general corpus so the generic PLM holds up; on factory-theme profiles
  (fine-grained, DAG) its vocabulary gaps are fatal — which is exactly the
  generic-vs-adapted encoder contrast in the MICoL table.
"""

from conftest import run_once

from repro.datasets import load_profile
from repro.evaluation.metrics import micro_f1
from repro.evaluation.reporting import format_table
from repro.methods import XClass
from repro.plm.config import PLMConfig, scaled_config
from repro.plm.provider import get_pretrained_lm


def _xclass_score(bundle, plm) -> float:
    clf = XClass(plm=plm, seed=0)
    clf.fit(bundle.train_corpus, bundle.label_names())
    gold = [d.labels[0] for d in bundle.test_corpus]
    return micro_f1(gold, clf.predict(bundle.test_corpus))


def _run():
    bundle = load_profile("agnews", seed=0, scale=0.6)
    base = PLMConfig(dim=32, n_layers=2, n_heads=2, ff_hidden=64, max_len=32,
                     mlm_steps=300, batch_size=16, pretrain_docs=700)
    rows = []
    plm_full = get_pretrained_lm(target_corpus=bundle.train_corpus,
                                 config=base, seed=0)
    rows.append({"Variant": "full (SVD init + domain-adaptive)",
                 "X-Class micro-F1": _xclass_score(bundle, plm_full)})

    no_svd = scaled_config(base, init_from_svd=False)
    plm_no_svd = get_pretrained_lm(target_corpus=bundle.train_corpus,
                                   config=no_svd, seed=0)
    rows.append({"Variant": "random token init (no SVD)",
                 "X-Class micro-F1": _xclass_score(bundle, plm_no_svd)})

    plm_generic = get_pretrained_lm(target_corpus=None, config=base, seed=0)
    rows.append({"Variant": "generic (no target corpus in MLM stream)",
                 "X-Class micro-F1": _xclass_score(bundle, plm_generic)})
    return rows


def test_plm_design_ablations(benchmark):
    rows = run_once(benchmark, _run)
    print()
    print(format_table(rows, title="Reproduction design-choice ablations"))
    scores = {r["Variant"]: r["X-Class micro-F1"] for r in rows}
    full = scores["full (SVD init + domain-adaptive)"]
    assert full >= scores["random token init (no SVD)"] - 0.05
    assert full >= scores["generic (no target corpus in MLM stream)"] - 0.05
