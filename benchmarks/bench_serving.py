"""Serving-engine load benchmark: micro-batched vs one-at-a-time.

Trains a small PLM-backed method (X-Class), exports it through the
artifact store, reloads it, and serves the same request stream two ways:

- **unbatched** — the one-request-at-a-time path: a single client loop
  calling ``predict`` per request, one encoder batch per document;
- **batched** — concurrent clients submitting through
  :class:`~repro.serve.engine.ServingEngine`, whose micro-batcher
  coalesces requests into the PLM engine's length-bucketed batches.

Both arms use a cache-less PLM facade and disjoint documents, so neither
side is served from the encode cache — the measured gap is pure batching.
A final burst against a tiny queue demonstrates load shedding (typed
``Overloaded``, no deadlock).

Asserts batched throughput >= 2x unbatched and writes
``BENCH_serving.json`` (throughput, p50/p99 latency, batch and shed
counts) next to this file.

A second bench serves the same fitted model from a float32 artifact and
an int8 quantized artifact (which auto-enables the packed fused-infer
path) over identical near-``max_len`` single-document request streams.
Arms are interleaved across rounds and compared on per-arm minima, so
scheduler noise hits both sides equally; the speedup floor is
host-calibrated via :mod:`hostcal` and capped at
:data:`QUANT_FLOOR_MAX`. Accuracy is compared as macro-F1 against gold
labels on the full test corpus — the quantized artifact must stay
within :data:`QUANT_MAX_ACCURACY_DELTA` points of float32. Writes
``BENCH_quantized.json``.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.core.exceptions import Overloaded
from repro.datasets import load_profile
from repro.evaluation.metrics import macro_f1
from repro.experiments.runner import gold_single
from repro.methods import XClass
from repro.plm.config import PLMConfig
from repro.plm.model import PretrainedLM
from repro.plm.provider import get_pretrained_lm
from repro.serve import ServeConfig, ServingEngine, export_artifact, load_artifact

import hostcal
from conftest import write_bench_artifact

N_REQUESTS = 64
N_CLIENTS = 8
MIN_SPEEDUP = 2.0

# Quantized-vs-float32 arm: interleaved rounds, per-arm minima, and a
# host-calibrated speedup floor (capped at the fixed 1.5x target; a
# contended host relaxes toward the hard minimum instead of flaking).
QUANT_ROUNDS = 5
QUANT_FLOOR_MIN, QUANT_FLOOR_FRACTION, QUANT_FLOOR_MAX = 1.15, 0.25, 1.5
QUANT_MAX_ACCURACY_DELTA = 0.5  # macro-F1 points
QUANT_DOC_TOKENS = 44  # near max_len=48: encoder-dominated requests


def _build_servable(tmp_dir) -> "tuple":
    config = PLMConfig(dim=32, n_layers=2, n_heads=2, ff_hidden=64,
                       mlm_steps=150, pretrain_docs=700)
    bundle = load_profile("agnews", seed=0, scale=0.4)
    plm = get_pretrained_lm(target_corpus=bundle.train_corpus, config=config,
                            seed=0)
    model = XClass(plm=plm, seed=0)
    model.fit(bundle.train_corpus, bundle.label_names())
    path = export_artifact(model, tmp_dir / "bench-xclass",
                           provenance={"profile": "agnews", "seed": 0,
                                       "bench": "serving"})
    loaded = load_artifact(path)
    # Cache-less facade: every request truly encodes, both arms.
    loaded.model.plm = PretrainedLM(loaded.model.plm.encoder, enc_cache=None)
    requests = (bundle.test_corpus.token_lists()
                + bundle.train_corpus.token_lists())[: 2 * N_REQUESTS]
    assert len(requests) == 2 * N_REQUESTS, "bundle too small for the bench"
    return loaded, requests


def _run_unbatched(loaded, docs: list) -> tuple:
    latencies = []
    start = time.perf_counter()
    for doc in docs:
        t0 = time.perf_counter()
        loaded.predict([doc])
        latencies.append(time.perf_counter() - t0)
    return time.perf_counter() - start, latencies


def _run_batched(loaded, docs: list) -> tuple:
    engine = ServingEngine(loaded, ServeConfig(max_batch_docs=64,
                                               batch_window_s=0.0005,
                                               warmup=True))
    latencies = [0.0] * len(docs)
    per_client = len(docs) // N_CLIENTS
    barrier = threading.Barrier(N_CLIENTS + 1)

    def client(c: int) -> None:
        # Async client: submit its burst, then await each response.
        barrier.wait()
        lo = c * per_client
        pending = []
        for i in range(lo, lo + per_client):
            pending.append((i, time.perf_counter(),
                            engine.submit([docs[i]])))
        for i, t0, request in pending:
            request.wait(120)
            latencies[i] = time.perf_counter() - t0

    threads = [threading.Thread(target=client, args=(c,))
               for c in range(N_CLIENTS)]
    for t in threads:
        t.start()
    barrier.wait()
    start = time.perf_counter()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start
    stats = engine.stats()
    engine.close()
    return elapsed, latencies, stats


def _shed_demo(loaded) -> dict:
    """Burst a tiny queue: requests shed with Overloaded, none deadlock."""
    engine = ServingEngine(loaded, ServeConfig(max_queue=4, warmup=False,
                                               batch_window_s=0.0))
    accepted, shed = [], 0
    for i in range(16):
        try:
            accepted.append(engine.submit([[f"burst{i}", "team", "game"]]))
        except Overloaded:
            shed += 1
    for request in accepted:
        request.wait(60)
    engine.close()
    return {"burst": 16, "accepted": len(accepted), "shed": shed}


def _pct(latencies: list, q: float) -> float:
    return float(np.percentile(np.asarray(latencies) * 1000.0, q))


def test_serving_engine_throughput(tmp_path):
    loaded, requests = _build_servable(tmp_path)
    unbatched_docs, batched_docs = requests[:N_REQUESTS], requests[N_REQUESTS:]

    loaded.warmup()
    # Best-of-3 per arm: the encoder is cache-less, so repeats re-encode;
    # min-of-repeats just strips scheduler noise from the comparison.
    unbatched_s, unbatched_lat = min(
        (_run_unbatched(loaded, unbatched_docs) for _ in range(3)),
        key=lambda r: r[0])
    batched_s, batched_lat, stats = min(
        (_run_batched(loaded, batched_docs) for _ in range(3)),
        key=lambda r: r[0])
    shed = _shed_demo(loaded)

    speedup = unbatched_s / batched_s
    report = {
        "n_requests": N_REQUESTS,
        "n_clients": N_CLIENTS,
        "unbatched_seconds": round(unbatched_s, 4),
        "batched_seconds": round(batched_s, 4),
        "unbatched_rps": round(N_REQUESTS / unbatched_s, 1),
        "batched_rps": round(N_REQUESTS / batched_s, 1),
        "speedup": round(speedup, 2),
        "unbatched_p50_ms": round(_pct(unbatched_lat, 50), 2),
        "unbatched_p99_ms": round(_pct(unbatched_lat, 99), 2),
        "batched_p50_ms": round(_pct(batched_lat, 50), 2),
        "batched_p99_ms": round(_pct(batched_lat, 99), 2),
        "batches": stats["batches"],
        "batched_docs": stats["batched_docs"],
        "shed_demo": shed,
    }
    write_bench_artifact("serving", report)

    print()
    print(f"serving engine, {N_REQUESTS} single-doc requests "
          f"({N_CLIENTS} clients)")
    print(f"  unbatched: {unbatched_s:7.3f}s  "
          f"({N_REQUESTS / unbatched_s:7.1f} req/s)  "
          f"p50 {report['unbatched_p50_ms']:.1f}ms  "
          f"p99 {report['unbatched_p99_ms']:.1f}ms")
    print(f"  batched:   {batched_s:7.3f}s  "
          f"({N_REQUESTS / batched_s:7.1f} req/s)  "
          f"p50 {report['batched_p50_ms']:.1f}ms  "
          f"p99 {report['batched_p99_ms']:.1f}ms  "
          f"-> {speedup:.2f}x in {stats['batches']} batches")
    print(f"  shed demo: {shed['shed']}/{shed['burst']} requests shed "
          f"at queue depth 4")

    assert stats["batches"] < N_REQUESTS, report
    assert shed["shed"] > 0, report
    assert speedup >= MIN_SPEEDUP, report


def _long_docs(sources: list, n_docs: int) -> list:
    """``n_docs`` token lists padded to near-``max_len`` by concatenation."""
    docs = []
    for i in range(n_docs):
        doc, j = list(sources[i % len(sources)]), 1
        while len(doc) < QUANT_DOC_TOKENS:
            doc += sources[(i + j) % len(sources)]
            j += 1
        docs.append(doc[:48])
    return docs


def _plm_bytes(artifact_dir) -> int:
    """On-disk size of the PLM archives inside one artifact directory."""
    return sum(p.stat().st_size for p in artifact_dir.glob("plm_*.npz"))


def _quantized_floor() -> dict:
    """Host-calibrated speedup floor for the quantized arm.

    Scales with how much the host rewards replacing python-side op
    dispatch with packed numpy kernels (the same batch_gain probe the
    inference bench uses), damped by timing jitter, clamped to
    [QUANT_FLOOR_MIN, QUANT_FLOOR_MAX].
    """
    probes = hostcal.calibrate()
    floor = QUANT_FLOOR_FRACTION * probes["batch_gain"] / probes["jitter"]
    return {
        **probes,
        "min_speedup": round(
            min(QUANT_FLOOR_MAX, max(QUANT_FLOOR_MIN, floor)), 2),
    }


def test_quantized_serving_speedup(tmp_path):
    calibration = _quantized_floor()
    min_speedup = calibration["min_speedup"]

    # Deeper encoder than the batching bench: quantized artifacts target
    # encode-dominated serving, so the bench workload should be too.
    config = PLMConfig(dim=32, n_layers=6, n_heads=2, ff_hidden=64,
                       mlm_steps=150, pretrain_docs=700)
    bundle = load_profile("agnews", seed=0, scale=0.4)
    plm = get_pretrained_lm(target_corpus=bundle.train_corpus, config=config,
                            seed=0)
    model = XClass(plm=plm, seed=0)
    model.fit(bundle.train_corpus, bundle.label_names())

    provenance = {"profile": "agnews", "seed": 0, "bench": "quantized"}
    f32_path = export_artifact(model, tmp_path / "bench-f32",
                               provenance=provenance)
    int8_path = export_artifact(model, tmp_path / "bench-int8",
                                provenance=provenance, quantize="int8",
                                probe=bundle.test_corpus[:48])
    size_ratio = _plm_bytes(f32_path) / max(_plm_bytes(int8_path), 1)

    arms = {}
    for key, path in (("float32", f32_path), ("int8", int8_path)):
        loaded = load_artifact(path)
        # Cache-less facade (as above), but keep the artifact's engine
        # config: the int8 manifest is what enables fused_infer.
        loaded.model.plm = PretrainedLM(loaded.model.plm.encoder,
                                        enc_cache=None,
                                        engine_config=loaded.model.plm.engine)
        loaded.warmup()
        arms[key] = loaded

    # Accuracy first (also warms both arms through the full test set).
    test_docs = bundle.test_corpus.token_lists()
    gold = gold_single(bundle.test_corpus)
    labels = list(bundle.label_set)
    f1 = {key: macro_f1(gold, loaded.predict(test_docs), labels=labels)
          for key, loaded in arms.items()}
    accuracy_delta = (f1["float32"] - f1["int8"]) * 100.0

    requests = _long_docs(test_docs + bundle.train_corpus.token_lists(),
                          N_REQUESTS)

    def workload(loaded) -> float:
        start = time.perf_counter()
        for doc in requests:
            loaded.predict([doc])
        return time.perf_counter() - start

    # Interleave the arms each round so load spikes hit both; per-arm
    # minima then estimate each arm's unloaded speed.
    times = {"float32": [], "int8": []}
    for _ in range(QUANT_ROUNDS):
        for key in times:
            times[key].append(workload(arms[key]))
    float32_s, int8_s = min(times["float32"]), min(times["int8"])
    speedup = float32_s / int8_s

    report = {
        "quantize": "int8",
        "n_requests": N_REQUESTS,
        "rounds": QUANT_ROUNDS,
        "doc_tokens": QUANT_DOC_TOKENS,
        "float32_seconds": round(float32_s, 4),
        "quantized_seconds": round(int8_s, 4),
        "speedup": round(speedup, 2),
        "min_speedup": min_speedup,
        "float32_macro_f1": round(f1["float32"], 4),
        "quantized_macro_f1": round(f1["int8"], 4),
        "accuracy_delta": round(accuracy_delta, 4),
        "max_accuracy_delta": QUANT_MAX_ACCURACY_DELTA,
        "size_ratio": round(size_ratio, 2),
        "calibration": calibration,
    }
    write_bench_artifact("quantized", report)

    print()
    print(f"quantized serving, {N_REQUESTS} near-max_len single-doc "
          f"requests x {QUANT_ROUNDS} interleaved rounds")
    print(f"  float32:   {float32_s * 1000:7.1f}ms  "
          f"macro-F1 {f1['float32']:.4f}")
    print(f"  int8:      {int8_s * 1000:7.1f}ms  "
          f"macro-F1 {f1['int8']:.4f}  -> {speedup:.2f}x, "
          f"{size_ratio:.1f}x smaller on disk")
    print(f"  calibrated floor: >= {min_speedup}x "
          f"(batch_gain {calibration['batch_gain']}, "
          f"jitter {calibration['jitter']}); "
          f"accuracy delta {accuracy_delta:+.2f} pts "
          f"(max {QUANT_MAX_ACCURACY_DELTA})")

    assert size_ratio > 2.0, report
    assert abs(accuracy_delta) <= QUANT_MAX_ACCURACY_DELTA, report
    assert speedup >= min_speedup, report


if __name__ == "__main__":
    import tempfile
    from pathlib import Path

    test_serving_engine_throughput(Path(tempfile.mkdtemp()))
    test_quantized_serving_speedup(Path(tempfile.mkdtemp()))
