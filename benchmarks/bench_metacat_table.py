"""T-METACAT: MetaCat Tables 2+3 (micro + macro F1).

Paper shape: MetaCat beats the text-only baselines (CNN/HAN/PTE/
WeSTClass/PCEM/BERT) by using metadata, and the structure-only graph
embeddings (ESim/metapath2vec/HIN2vec) by also using text. TextGCN is the
closest baseline where it fits in memory (the largest profiles reproduce
the paper's "-" entries).
"""

import numpy as np
from conftest import FULL, by_method, run_once

from repro.evaluation.reporting import format_table
from repro.experiments import tables

TEXT_BASELINES = ("CNN", "HAN", "PTE", "WeSTClass", "PCEM", "BERT")
GRAPH_BASELINES = ("ESim", "Metapath2vec", "HIN2vec")


def test_metacat_tables(benchmark):
    rows = run_once(benchmark,
                    lambda: tables.metacat_tables(seed=0, fast=not FULL),
                    artifact="metacat_table")
    print()
    print(format_table(rows, title="MetaCat results (micro/macro F1)"))

    indexed = by_method(rows)
    for dataset in {r["Dataset"] for r in rows}:
        metacat = indexed[(dataset, "MetaCat")]["Micro-F1"]
        text_scores = [indexed[(dataset, m)]["Micro-F1"]
                       for m in TEXT_BASELINES]
        graph_scores = [indexed[(dataset, m)]["Micro-F1"]
                        for m in GRAPH_BASELINES]
        assert metacat > float(np.mean(text_scores)) - 0.02, dataset
        assert metacat > float(np.mean(graph_scores)) - 0.02, dataset
    if FULL:
        # The paper's "-" (excessive memory) rows.
        assert indexed[("github_sec", "TextGCN")]["Micro-F1"] == "-"
        assert indexed[("amazon_meta", "TextGCN")]["Micro-F1"] == "-"
