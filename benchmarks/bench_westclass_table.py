"""T-WESTCLASS: the WeSTClass results table.

Paper shape: WeSTClass (both classifier variants) beats the retrieval /
topic-model baselines under every supervision type, and self-training
(vs. the NoST rows) helps.
"""

from conftest import FULL, by_method, run_once

from repro.evaluation.reporting import format_table
from repro.experiments import tables


def test_westclass_table(benchmark):
    rows = run_once(benchmark,
                    lambda: tables.westclass_table(seed=0, fast=not FULL),
                    artifact="westclass_table")
    print()
    print(format_table(rows, title="WeSTClass results (macro/micro F1)"))

    indexed = by_method(rows)
    for dataset in {r["Dataset"] for r in rows}:
        best_west = max(
            indexed[(dataset, "WeSTClass-CNN")]["KEYWORDS micro"],
            indexed[(dataset, "WeSTClass-HAN")]["KEYWORDS micro"],
        )
        ir = indexed[(dataset, "IR with tf-idf")]["KEYWORDS micro"]
        assert best_west > ir - 0.03, (dataset, "WeSTClass vs IR")

        with_st = indexed[(dataset, "WeSTClass-CNN")]["KEYWORDS micro"]
        without = indexed[(dataset, "NoST-CNN")]["KEYWORDS micro"]
        assert with_st >= without - 0.05, (dataset, "self-training")
