"""F-XCLASS-PCA / F-XCLASS-CONF: representation-quality figures.

Paper shape: average-pooled PLM document representations separate domains
in 2D PCA, and k-means on them (k = #classes) recovers the classes with a
strongly diagonal confusion matrix.
"""

import numpy as np
from conftest import run_once

from repro.experiments import figures


def test_pca_domain_figure(benchmark):
    result = run_once(benchmark, lambda: figures.pca_domain_figure(seed=0))
    print()
    print(figures.render_pca_ascii(result["coordinates"], result["labels"]))
    print(f"separation ratio: {result['separation_ratio']:.2f}")
    assert result["separation_ratio"] > 1.0


def test_clustering_confusion_figure(benchmark):
    result = run_once(benchmark,
                      lambda: figures.clustering_confusion_figure(seed=0))
    print()
    print(result["rendered"])
    print(f"clustering accuracy: {result['clustering_accuracy']:.3f}")
    matrix = result["matrix"]
    assert result["clustering_accuracy"] > 0.6
    # Diagonal dominance per row (each class mostly lands in one cluster).
    diagonal = np.diag(matrix)
    row_sums = matrix.sum(axis=1)
    assert (diagonal >= row_sums * 0.4).mean() > 0.6
