"""XL-corpus encode benchmark: mmap shard tier under a tiny memory budget.

Encodes the 10x ``agnews_xl`` training corpus (4800 documents at full
scale) through an :class:`~repro.core.enc_cache.EncodeCache` whose
memory tier is capped far below the corpus's hidden-state footprint,
with the mmap shard tier (``shard_docs``) taking the spill:

- **cold** — every document encodes through the PLM engine and streams
  into shards of ``SHARD_DOCS`` concatenated documents;
- **warm** — the same corpus again, served as zero-copy mmap slice
  views off the shards (plus whatever still fits in memory).

Asserts the memory tier never exceeds its budget while the shards hold
the full corpus, that warm output is bit-identical to cold, and that
the warm pass beats cold by a host-calibrated floor. Writes
``BENCH_xl_encode.json`` next to this file.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.enc_cache import EncodeCache
from repro.datasets import load_profile
from repro.plm.config import PLMConfig
from repro.plm.model import PretrainedLM
from repro.plm.provider import get_pretrained_lm

import hostcal
from conftest import write_bench_artifact

PROFILE = "agnews_xl"
MAX_BYTES = 1 << 20  # 1 MB memory tier vs an ~18 MB hidden-state corpus
SHARD_DOCS = 256

# Warm floor: shard hits replace encoder forwards with mmap slices, so
# the achievable ratio tracks the host's jitter like the warm floor in
# bench_plm_inference; clamped to [1.5, 3.0].
WARM_FLOOR_MIN, WARM_FLOOR_MAX = 1.5, 3.0


def test_xl_encode_through_shards(tmp_path):
    probes = hostcal.calibrate()
    min_warm = round(
        min(WARM_FLOOR_MAX, max(WARM_FLOOR_MIN,
                                WARM_FLOOR_MAX / probes["jitter"])), 2)

    bundle = load_profile(PROFILE, seed=0, scale=1.0)
    config = PLMConfig(dim=32, n_layers=2, n_heads=2, ff_hidden=64,
                       mlm_steps=150, pretrain_docs=700)
    base = get_pretrained_lm(target_corpus=bundle.train_corpus, config=config,
                             seed=0)
    cache = EncodeCache(max_bytes=MAX_BYTES, disk_dir=tmp_path,
                        shard_docs=SHARD_DOCS)
    plm = PretrainedLM(base.encoder, enc_cache=cache)
    docs = bundle.train_corpus.token_lists()

    start = time.perf_counter()
    cold = plm.doc_embeddings(docs)
    cold_s = time.perf_counter() - start
    cache.flush_shards()

    shard_files = sorted(tmp_path.rglob("shard_*.npy"))
    shard_bytes = sum(p.stat().st_size for p in shard_files)

    start = time.perf_counter()
    warm = plm.doc_embeddings(docs)
    warm_s = time.perf_counter() - start

    stats = cache.stats()
    report = {
        "profile": PROFILE,
        "n_docs": len(docs),
        "encode_seconds": round(cold_s, 4),
        "docs_per_second": round(len(docs) / cold_s, 1),
        "warm_seconds": round(warm_s, 4),
        "warm_speedup": round(cold_s / warm_s, 2),
        "min_warm_speedup": min_warm,
        "cache_max_bytes": MAX_BYTES,
        "cache_bytes": cache.nbytes,
        "shard_files": len(shard_files),
        "shard_bytes": shard_bytes,
        "cache": stats,
        "calibration": probes,
    }
    write_bench_artifact("xl_encode", report)

    print()
    print(f"XL encode, {len(docs)} docs of {PROFILE} through a "
          f"{MAX_BYTES >> 20} MB memory tier + {SHARD_DOCS}-doc mmap shards")
    print(f"  cold: {cold_s:6.2f}s  ({len(docs) / cold_s:7.0f} docs/s)")
    print(f"  warm: {warm_s:6.2f}s  ({len(docs) / warm_s:7.0f} docs/s)  "
          f"-> {cold_s / warm_s:.1f}x (floor {min_warm}x)")
    print(f"  memory tier {cache.nbytes} / {MAX_BYTES} bytes; "
          f"{len(shard_files)} shards holding {shard_bytes} bytes "
          f"({stats['shard_hits']} shard hits)")

    # The whole point: the corpus streams through a memory tier it could
    # never fit in, and comes back bit-identical off the shards.
    assert cache.nbytes <= MAX_BYTES, report
    assert shard_bytes > MAX_BYTES, report
    assert stats["shard_hits"] > 0, report
    np.testing.assert_array_equal(cold, warm)
    assert cold_s / warm_s >= min_warm, report


if __name__ == "__main__":
    import tempfile
    from pathlib import Path

    test_xl_encode_through_shards(Path(tempfile.mkdtemp()))
