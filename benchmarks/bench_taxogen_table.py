"""T-TAXOGEN: the taxonomy-repair ablation table.

Expected shape: perturbing the taxonomy costs every method accuracy,
and feeding the repaired taxonomy back recovers most of the loss —
repaired P@1 must land far closer to the given-taxonomy arm than to the
perturbed one.
"""

from conftest import FULL, run_once

from repro.evaluation.reporting import format_table
from repro.experiments import tables


def _by_arm(rows, method):
    return {r["Taxonomy"]: r for r in rows if r["Method"] == method}


def test_taxogen_table(benchmark):
    rows = run_once(benchmark,
                    lambda: tables.taxogen_table(seed=0, fast=not FULL),
                    artifact="taxogen_table")
    print()
    print(format_table(rows, title="Taxonomy-repair ablation"))

    for method in ("TaxoClass", "FUTEX"):
        arms = _by_arm(rows, method)
        given, perturbed, repaired = (arms["given"], arms["perturbed"],
                                      arms["repaired"])
        assert perturbed["P@1"] < given["P@1"] - 0.05
        # Repair must close most of the perturbation gap.
        gap = given["P@1"] - perturbed["P@1"]
        assert repaired["P@1"] >= perturbed["P@1"] + 0.5 * gap
        assert repaired["EdgeRecovery"] >= 0.4
