"""CI gate for bench artifacts: required keys must be present and sane.

Usage::

    python benchmarks/check_bench_artifacts.py [name ...]

Each ``name`` maps to ``benchmarks/BENCH_<name>.json``; with no names,
every artifact with a registered schema that exists on disk is checked,
and any ``BENCH_*.json`` on disk *without* a registered schema is a
failure — an artifact nobody registered is an artifact nobody gates, so
it would otherwise rot silently. Exits non-zero with one line per
problem (missing file, unparseable JSON, missing key, non-numeric
timing, unknown artifact) so a bench that silently stopped emitting its
numbers fails the smoke job instead of uploading an empty artifact.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent

#: run_once tables share one shape: timing + the rendered rows.
_TABLE_SCHEMA = {
    "numeric": ["seconds"],
    "present": ["artifact", "full", "n_rows", "rows"],
}

#: Required top-level keys per artifact (numeric ones checked as numbers).
SCHEMAS = {
    "plm_inference": {
        "numeric": ["seed_seconds", "engine_cold_seconds",
                    "engine_warm_seconds", "cold_speedup", "warm_speedup"],
        "present": ["n_docs", "cache"],
    },
    "experiment_engine": {
        "numeric": [],
        "present": ["latency_table", "westclass", "metacat"],
    },
    "training": {
        "numeric": ["pretrain_speedup", "fit_speedup"],
        "present": ["configs", "pretrain_seconds", "fit_seconds"],
    },
    "obs_overhead": {
        "numeric": ["disabled_ns_per_span", "disabled_ns_per_count",
                    "enabled_ns_per_span", "enabled_ns_per_count"],
        "present": [],
    },
    "serving": {
        "numeric": ["unbatched_seconds", "batched_seconds", "speedup",
                    "batched_p50_ms", "batched_p99_ms",
                    "unbatched_p50_ms", "unbatched_p99_ms"],
        "present": ["n_requests", "n_clients", "batches", "shed_demo"],
    },
    "serving_pool": {
        "numeric": ["closed_rps_r1", "closed_rps_r2", "closed_rps_r4",
                    "speedup_4v1", "min_speedup",
                    "p50_ms_r4", "p99_ms_r4", "p999_ms_r4"],
        "present": ["replicas", "n_clients", "open_rate_rps",
                    "calibration"],
    },
    "quantized": {
        "numeric": ["float32_seconds", "quantized_seconds", "speedup",
                    "min_speedup", "accuracy_delta", "max_accuracy_delta",
                    "size_ratio"],
        "present": ["quantize", "n_requests", "calibration"],
    },
    "xl_encode": {
        "numeric": ["encode_seconds", "docs_per_second", "cache_max_bytes"],
        "present": ["profile", "n_docs", "cache", "shard_files"],
    },
    "pipeline": {
        "numeric": ["docs_per_second", "p50_ms", "p99_ms",
                    "steady_seconds", "fits"],
        "present": ["profile", "n_docs", "ingested", "deduped",
                    "classified", "calibration"],
    },
    "dag_pipeline": {
        "numeric": ["cold_seconds", "dirty_seconds", "warm_seconds",
                    "dirty_speedup", "min_dirty_speedup", "warm_speedup",
                    "dedup_ratio", "nodes_executed_warm"],
        "present": ["tables", "nodes_total", "nodes_merged", "calibration"],
    },
    "regression": {
        "numeric": ["checked"],
        "present": ["regressed", "results", "meta"],
    },
    "taxogen": {
        "numeric": ["edges_perturbed", "edges_recovered",
                    "recovered_fraction", "min_recovered_fraction",
                    "pristine_ops", "score_seconds", "repair_seconds"],
        "present": ["profile", "n_seeds", "ops", "calibration", "full"],
    },
    "taxogen_table": _TABLE_SCHEMA,
    "conwea_table": _TABLE_SCHEMA,
    "lotclass_predictions": _TABLE_SCHEMA,
    "lotclass_table": _TABLE_SCHEMA,
    "metacat_table": _TABLE_SCHEMA,
    "micol_table": _TABLE_SCHEMA,
    "promptclass_table": _TABLE_SCHEMA,
    "summary_table": _TABLE_SCHEMA,
    "taxoclass_table": _TABLE_SCHEMA,
    "weshclass_table": _TABLE_SCHEMA,
    "westclass_table": _TABLE_SCHEMA,
    "xclass_dataset_table": _TABLE_SCHEMA,
    "xclass_table": _TABLE_SCHEMA,
}


def check_artifact(name: str) -> list:
    """Problems with ``BENCH_<name>.json`` (empty list = OK)."""
    schema = SCHEMAS.get(name)
    if schema is None:
        return [f"{name}: no schema registered "
                f"(known: {', '.join(sorted(SCHEMAS))})"]
    path = HERE / f"BENCH_{name}.json"
    if not path.exists():
        return [f"{name}: {path} does not exist"]
    try:
        payload = json.loads(path.read_text())
    except ValueError as exc:
        return [f"{name}: {path.name} is not valid JSON ({exc})"]
    if not isinstance(payload, dict):
        return [f"{name}: {path.name} must hold a JSON object"]
    problems = []
    for key in schema["present"] + schema["numeric"]:
        if key not in payload:
            problems.append(f"{name}: missing required key {key!r}")
    for key in schema["numeric"]:
        value = payload.get(key)
        if key in payload and not isinstance(value, (int, float)):
            problems.append(f"{name}: key {key!r} must be numeric, "
                            f"got {value!r}")
    return problems


def unknown_artifacts(directory: "Path | None" = None) -> list:
    """``BENCH_*.json`` files on disk with no registered schema."""
    directory = HERE if directory is None else directory
    unknown = []
    for path in sorted(directory.glob("BENCH_*.json")):
        name = path.stem[len("BENCH_"):]
        if name not in SCHEMAS:
            unknown.append(name)
    return unknown


def main(argv: "list | None" = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    names = argv or [name for name in sorted(SCHEMAS)
                     if (HERE / f"BENCH_{name}.json").exists()]
    if not names:
        print("no bench artifacts found to check", file=sys.stderr)
        return 1
    failures = []
    for name in names:
        problems = check_artifact(name)
        if problems:
            failures.extend(problems)
        else:
            print(f"ok: BENCH_{name}.json")
    if not argv:
        # Full-directory mode also rejects unregistered artifacts: a
        # BENCH file with no schema is a bench nobody gates.
        for name in unknown_artifacts():
            failures.append(
                f"{name}: BENCH_{name}.json has no registered schema "
                "(register it in check_bench_artifacts.SCHEMAS and "
                "check_regression.METRICS)"
            )
    for problem in failures:
        print(f"FAIL: {problem}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
