"""Replica-pool load generator: saturation throughput + latency tails.

Trains one small PLM-backed method (X-Class), publishes it to a
throwaway registry, then serves it from a
:class:`~repro.serve.pool.ReplicaPool` at 1, 2, and 4 replicas. Each
replica count gets two measurement phases:

- **closed loop** — ``N_CLIENTS`` threads each fire their next request
  the moment the previous one returns; with zero think time this drives
  the pool to saturation, so total completions / elapsed is the pool's
  saturation throughput at that replica count;
- **open loop** — a single dispatcher submits requests on a fixed
  schedule at ~:data:`OPEN_FRACTION` of the *measured* saturation rate
  (arrival times don't depend on completions, the way real traffic
  behaves), and per-request latency is read off the pool's own
  completion timestamps: p50/p99/p999.

Every request carries a distinct document (unique lead token), so
worker-side encode caches never hit and the measured work is real
inference. The 4-vs-1-replica speedup floor is **host-calibrated**: the
nominal >=1.8x target applies on a >=4-core host with calm timing
jitter, degrades proportionally on fewer usable cores or noisy
schedulers, and drops to the fixed :data:`POOL_FLOOR_1CORE` bound on a
1-core host (which genuinely cannot run replicas concurrently — the
bench then only asserts the pool doesn't *lose* much to scheduler and
IPC overhead).

A pooled probe is also checked bit-identical against a single
in-process :class:`~repro.serve.engine.ServingEngine` over the same
artifact. Writes ``BENCH_serving_pool.json`` (validated by
``check_bench_artifacts.py``, gated by ``check_regression.py``).
"""

from __future__ import annotations

import os
import threading
import time

import numpy as np

from repro.core.exceptions import ServingError
from repro.datasets import load_profile
from repro.methods import XClass
from repro.plm.config import PLMConfig
from repro.plm.provider import get_pretrained_lm
from repro.serve import (
    PoolConfig,
    ReplicaPool,
    ModelRegistry,
    ServeConfig,
    ServingEngine,
)

import hostcal
from conftest import write_bench_artifact

REPLICA_COUNTS = (1, 2, 4)
N_CLIENTS = 8
CLOSED_PER_CLIENT = 12       # closed-loop requests per client thread
N_OPEN = 120                 # open-loop requests per replica count
OPEN_FRACTION = 0.65         # open-loop arrival rate vs measured saturation
#: Milliseconds-scale requests (several docs, near-max_len each), so the
#: measured scaling is encoder compute, not pipe round-trips.
DOC_TOKENS = 48
DOCS_PER_REQUEST = 4

#: Host calibration for the 4v1 speedup floor: 0.55 per usable core
#: (4 cores + calm jitter -> capped at the nominal 1.8x target), damped
#: by scheduler jitter. A 1-core host has no parallelism to exploit —
#: four time-slicing replicas can at best tie a single one minus
#: scheduler and IPC overhead — so its floor is the fixed
#: POOL_FLOOR_1CORE "doesn't collapse" bound instead.
POOL_FLOOR_1CORE, POOL_FLOOR_FRACTION, POOL_FLOOR_MAX = 0.35, 0.55, 1.8


def _pool_floor() -> dict:
    cores = os.cpu_count() or 1
    usable = min(cores, max(REPLICA_COUNTS))
    probes = hostcal.calibrate()
    if usable == 1:
        raw = POOL_FLOOR_1CORE / probes["jitter"]
    else:
        raw = POOL_FLOOR_FRACTION * usable / probes["jitter"]
    return {
        **probes,
        "cores": cores,
        "usable_cores": usable,
        "min_speedup": round(min(POOL_FLOOR_MAX, max(0.25, raw)), 2),
    }


def _publish_model(root) -> "tuple[ModelRegistry, str, list]":
    config = PLMConfig(dim=32, n_layers=2, n_heads=2, ff_hidden=64,
                       mlm_steps=150, pretrain_docs=700)
    bundle = load_profile("agnews", seed=0, scale=0.4)
    plm = get_pretrained_lm(target_corpus=bundle.train_corpus, config=config,
                            seed=0)
    model = XClass(plm=plm, seed=0)
    model.fit(bundle.train_corpus, bundle.label_names())
    registry = ModelRegistry(root)
    registry.publish("pool-bench", model, provenance={
        "profile": "agnews", "seed": 0, "bench": "serving_pool"})
    sources = (bundle.test_corpus.token_lists()
               + bundle.train_corpus.token_lists())
    return registry, "pool-bench", sources


def _distinct_docs(sources: list, namespace: str, n_docs: int) -> list:
    """``n_docs`` docs of DOC_TOKENS tokens, each with a unique lead token.

    The unique token defeats the content-addressed encode cache, so
    every request costs a real encode in whichever worker serves it.
    """
    docs = []
    for i in range(n_docs):
        doc = [f"{namespace}{i}"] + list(sources[i % len(sources)])
        j = 1
        while len(doc) < DOC_TOKENS:
            doc += sources[(i + j) % len(sources)]
            j += 1
        docs.append(doc[:DOC_TOKENS])
    return docs


def _distinct_requests(sources: list, namespace: str, n_requests: int) -> list:
    """``n_requests`` payloads of DOCS_PER_REQUEST distinct docs each."""
    docs = _distinct_docs(sources, namespace, n_requests * DOCS_PER_REQUEST)
    return [docs[i * DOCS_PER_REQUEST:(i + 1) * DOCS_PER_REQUEST]
            for i in range(n_requests)]


def _closed_loop(pool: ReplicaPool, requests: list) -> float:
    """Saturation throughput (req/s): zero-think-time client threads."""
    per_client = len(requests) // N_CLIENTS
    barrier = threading.Barrier(N_CLIENTS + 1)
    errors: list = []

    def client(c: int) -> None:
        barrier.wait()
        lo = c * per_client
        for i in range(lo, lo + per_client):
            try:
                pool.classify(requests[i], timeout=120)
            except Exception as exc:  # surface, don't hang the join
                errors.append(exc)
                return

    threads = [threading.Thread(target=client, args=(c,))
               for c in range(N_CLIENTS)]
    for t in threads:
        t.start()
    barrier.wait()
    start = time.perf_counter()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise ServingError(f"closed loop failed: {errors[0]}") from errors[0]
    return (per_client * N_CLIENTS) / elapsed


def _open_loop(pool: ReplicaPool, requests: list, rate_rps: float) -> dict:
    """Fixed-rate arrivals; latency percentiles off pool timestamps."""
    interval = 1.0 / rate_rps
    pending, shed = [], 0
    start = time.perf_counter()
    for i, payload in enumerate(requests):
        target = start + i * interval
        delay = target - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        try:
            pending.append(pool.submit(payload))
        except ServingError:
            shed += 1
    latencies = []
    for request in pending:
        request.wait(120)
        latencies.append(request.latency_s * 1000.0)
    lat = np.asarray(latencies, dtype=np.float64)
    return {
        "rate_rps": round(rate_rps, 1),
        "served": len(latencies),
        "shed": shed,
        "p50_ms": round(float(np.percentile(lat, 50)), 2),
        "p99_ms": round(float(np.percentile(lat, 99)), 2),
        "p999_ms": round(float(np.percentile(lat, 99.9)), 2),
    }


def test_pool_saturation_and_tails(tmp_path):
    calibration = _pool_floor()
    min_speedup = calibration["min_speedup"]
    registry, name, sources = _publish_model(tmp_path / "registry")

    # Equivalence probe: the pool must reproduce the single in-process
    # engine bit-for-bit (same artifact, deterministic inference).
    probe_docs = _distinct_docs(sources, "probe", 16)
    with ServingEngine(registry.load(name),
                       ServeConfig(warmup=False)) as engine:
        expected = engine.classify(probe_docs)

    per_replicas = {}
    for n in REPLICA_COUNTS:
        config = PoolConfig(replicas=n, max_queue=64,
                            batch_window_s=0.0005, warmup=True)
        with ReplicaPool.from_registry(registry, name,
                                       config=config) as pool:
            assert pool.classify(probe_docs, timeout=120) == list(expected)
            closed = _distinct_requests(sources, f"r{n}c",
                                        N_CLIENTS * CLOSED_PER_CLIENT)
            closed_rps = _closed_loop(pool, closed)
            opened = _distinct_requests(sources, f"r{n}o", N_OPEN)
            open_stats = _open_loop(pool, opened,
                                    max(1.0, OPEN_FRACTION * closed_rps))
            stats = pool.stats()
            per_replicas[str(n)] = {
                "closed_rps": round(closed_rps, 1),
                "open": open_stats,
                "dispatched": stats["dispatched"],
                "replica_busy_max": stats["replica_busy_max"],
                "replica_deaths": stats["replica_deaths"],
            }

    speedup = (per_replicas["4"]["closed_rps"]
               / per_replicas["1"]["closed_rps"])
    open_r4 = per_replicas["4"]["open"]
    report = {
        "replicas": per_replicas,
        "n_clients": N_CLIENTS,
        "closed_requests": N_CLIENTS * CLOSED_PER_CLIENT,
        "open_requests": N_OPEN,
        "open_rate_rps": open_r4["rate_rps"],
        "closed_rps_r1": per_replicas["1"]["closed_rps"],
        "closed_rps_r2": per_replicas["2"]["closed_rps"],
        "closed_rps_r4": per_replicas["4"]["closed_rps"],
        "p50_ms_r4": open_r4["p50_ms"],
        "p99_ms_r4": open_r4["p99_ms"],
        "p999_ms_r4": open_r4["p999_ms"],
        "speedup_4v1": round(speedup, 2),
        "min_speedup": min_speedup,
        "calibration": calibration,
    }
    write_bench_artifact("serving_pool", report)

    print()
    print(f"replica pool saturation, {N_CLIENTS} closed-loop clients x "
          f"{CLOSED_PER_CLIENT} reqs + {N_OPEN} open-loop reqs per count")
    for n in REPLICA_COUNTS:
        row = per_replicas[str(n)]
        print(f"  {n} replica(s): {row['closed_rps']:7.1f} req/s saturated; "
              f"open @ {row['open']['rate_rps']:.1f} req/s -> "
              f"p50 {row['open']['p50_ms']:.1f}ms  "
              f"p99 {row['open']['p99_ms']:.1f}ms  "
              f"p99.9 {row['open']['p999_ms']:.1f}ms  "
              f"(busy peak {row['replica_busy_max']})")
    print(f"  4v1 speedup: {speedup:.2f}x "
          f"(calibrated floor {min_speedup}x on {calibration['cores']} "
          f"core(s), jitter {calibration['jitter']})")

    for row in per_replicas.values():
        assert row["replica_deaths"] == 0, report
        assert row["open"]["shed"] == 0, report
    assert speedup >= min_speedup, report


if __name__ == "__main__":
    import tempfile
    from pathlib import Path

    test_pool_saturation_and_tails(Path(tempfile.mkdtemp()))
