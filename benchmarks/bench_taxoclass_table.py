"""T-TAXOCLASS: the TaxoClass results table.

Paper shape: TaxoClass beats the single-path hierarchical baselines
(WeSHClass, SS-PCEM) and the zero-shot descent (Hier-0Shot-TC) on both
Example-F1 and P@1.
"""

from conftest import FULL, by_method, run_once

from repro.evaluation.reporting import format_table
from repro.experiments import tables


def test_taxoclass_table(benchmark):
    rows = run_once(benchmark,
                    lambda: tables.taxoclass_table(seed=0, fast=not FULL),
                    artifact="taxoclass_table")
    print()
    print(format_table(rows, title="TaxoClass results (Example-F1, P@1)"))

    indexed = by_method(rows)
    for dataset in {r["Dataset"] for r in rows}:
        taxo_p1 = indexed[(dataset, "TaxoClass")]["P@1"]
        taxo_f1 = indexed[(dataset, "TaxoClass")]["Example-F1"]
        assert taxo_p1 > indexed[(dataset, "Hier-0Shot-TC")]["P@1"] - 0.03
        assert taxo_p1 > indexed[(dataset, "WeSHClass")]["P@1"] - 0.03
        assert taxo_f1 > indexed[(dataset, "SS-PCEM")]["Example-F1"] - 0.05
