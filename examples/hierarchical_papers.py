"""Hierarchical classification of scientific papers (WeSHClass + TaxoClass).

Two hierarchical settings from the tutorial:

- **tree, single path** (WeSHClass): each paper belongs to one root-to-leaf
  path of an arXiv-style subject tree; supervision is a few keywords per
  node;
- **DAG, multi-label** (TaxoClass): each product/paper carries several
  labels across a DAG taxonomy; supervision is class *names only*.

Run: ``python examples/hierarchical_papers.py``
"""

from repro.datasets import load_profile
from repro.evaluation import (
    example_f1,
    format_table,
    macro_f1,
    micro_f1,
    precision_at_k,
)
from repro.methods import TaxoClass, WeSHClass


def tree_demo() -> None:
    bundle = load_profile("arxiv_tree", seed=0)
    tree = bundle.tree
    print(f"subject tree: {tree}")
    for top in tree.level(1):
        children = ", ".join(tree.children(top))
        print(f"  {top} -> {children}")

    classifier = WeSHClass(tree=tree, seed=0)
    classifier.fit(bundle.train_corpus, bundle.keywords())

    gold_leaves = [doc.labels[0] for doc in bundle.test_corpus]
    predicted = classifier.predict(bundle.test_corpus)
    coarse_gold = bundle.coarse_gold(bundle.test_corpus)
    coarse_predicted = classifier.predict_level(bundle.test_corpus, 1)
    print(format_table(
        [
            {"Level": "coarse (areas)",
             "Micro-F1": micro_f1(coarse_gold, coarse_predicted),
             "Macro-F1": macro_f1(coarse_gold, coarse_predicted)},
            {"Level": "fine (leaves)",
             "Micro-F1": micro_f1(gold_leaves, predicted),
             "Macro-F1": macro_f1(gold_leaves, predicted)},
        ],
        title="\nWeSHClass on the arXiv-style tree (keyword supervision)",
    ))


def dag_demo() -> None:
    bundle = load_profile("amazon_dag", seed=0)
    dag = bundle.dag
    print(f"\nproduct taxonomy: {dag} "
          f"({len(dag.leaves())} leaves over {len(dag.levels())} levels)")

    print("fitting TaxoClass from class names only "
          "(relevance model + top-down search; ~1 min)...")
    classifier = TaxoClass(dag=dag, seed=0)
    classifier.fit(bundle.train_corpus, bundle.label_names())

    gold = [set(doc.labels) for doc in bundle.test_corpus]
    predicted = classifier.predict(bundle.test_corpus)
    ranking = classifier.rank(bundle.test_corpus)
    print(format_table(
        [{
            "Example-F1": example_f1(gold, predicted),
            "P@1": precision_at_k(gold, ranking, 1),
            "P@3": precision_at_k(gold, ranking, 3),
        }],
        title="TaxoClass on the product DAG (class names only)",
    ))

    doc = bundle.test_corpus[0]
    print(f"\nsample document labels: gold={sorted(doc.labels)}")
    print(f"predicted: {sorted(predicted[0])}")


def main() -> None:
    tree_demo()
    dag_demo()


if __name__ == "__main__":
    main()
