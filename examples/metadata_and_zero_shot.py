"""Metadata-aware classification (MetaCat) and zero-shot tagging (MICoL).

Two metadata settings from the tutorial:

- **MetaCat**: GitHub-style repositories with users and tags, a handful of
  labeled examples per class — metadata compensates for tiny corpora;
- **MICoL**: a bibliographic corpus (venues, authors, references) where
  meta-paths over the citation graph induce contrastive training pairs,
  enabling zero-shot multi-label tagging against label descriptions.

Run: ``python examples/metadata_and_zero_shot.py``
"""

from repro.baselines import Doc2VecRanker
from repro.datasets import load_profile
from repro.evaluation import format_table, micro_f1, ndcg_at_k, precision_at_k
from repro.hin.graph import HeterogeneousGraph
from repro.hin.metapath import P_REF_P, metapath_pairs
from repro.methods import MetaCat, MICoL


def metacat_demo() -> None:
    bundle = load_profile("github_bio", seed=0)
    doc = bundle.train_corpus[0]
    print("a repository with metadata:")
    print(f"  text: {' '.join(doc.tokens[:12])} ...")
    print(f"  user: {doc.metadata['user']}  tags: {doc.metadata.get('tags')}")

    supervision = bundle.labeled_documents(5, seed=0)
    gold = [d.labels[0] for d in bundle.test_corpus]

    rows = []
    for name, use_metadata in (("MetaCat", True), ("text only", False)):
        classifier = MetaCat(use_metadata=use_metadata, seed=0)
        classifier.fit(bundle.train_corpus, supervision)
        rows.append({
            "Variant": name,
            "Micro-F1": micro_f1(gold, classifier.predict(bundle.test_corpus)),
        })
    print(format_table(
        rows, title="\nMetaCat with 5 labeled docs/class (tiny corpus)"
    ))


def micol_demo() -> None:
    bundle = load_profile("magcs", seed=0)
    graph = HeterogeneousGraph.from_corpus(bundle.train_corpus)
    pairs = metapath_pairs(graph, P_REF_P, n_pairs=5, seed=0)
    print(f"\nbibliographic network: {graph}")
    print(f"sample P->P<-P positive pairs (co-citing papers): {pairs[:3]}")

    gold = [set(d.labels) for d in bundle.test_corpus]
    rows = []
    print("fitting MICoL (zero-shot, metadata-contrastive; ~1 min)...")
    micol = MICoL(encoder="cross", seed=0)
    micol.fit(bundle.train_corpus, bundle.label_names())
    ranking = micol.rank(bundle.test_corpus)
    rows.append({
        "Method": "MICoL (cross-encoder)",
        "P@1": precision_at_k(gold, ranking, 1),
        "P@3": precision_at_k(gold, ranking, 3),
        "NDCG@5": ndcg_at_k(gold, ranking, 5),
    })
    doc2vec = Doc2VecRanker(seed=0)
    doc2vec.fit(bundle.train_corpus, bundle.label_names())
    ranking = doc2vec.rank(bundle.test_corpus)
    rows.append({
        "Method": "Doc2Vec baseline",
        "P@1": precision_at_k(gold, ranking, 1),
        "P@3": precision_at_k(gold, ranking, 3),
        "NDCG@5": ndcg_at_k(gold, ranking, 5),
    })
    print(format_table(rows, title="zero-shot multi-label tagging (MAG-CS)"))


def main() -> None:
    metacat_demo()
    micol_demo()


if __name__ == "__main__":
    main()
