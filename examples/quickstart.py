"""Quickstart: classify news with label names only (X-Class).

Demonstrates the core workflow:

1. load a benchmark look-alike dataset (synthetic AG News);
2. pick a weakly-supervised method;
3. fit with the weakest possible supervision — just the category names;
4. evaluate on held-out documents.

Run: ``python examples/quickstart.py``
"""

from repro.datasets import load_profile
from repro.evaluation import format_table, macro_f1, micro_f1
from repro.methods import XClass


def main() -> None:
    # A 4-class news corpus: politics / sports / business / technology.
    bundle = load_profile("agnews", seed=0)
    print(f"train: {len(bundle.train_corpus)} docs, "
          f"test: {len(bundle.test_corpus)} docs, "
          f"classes: {', '.join(bundle.label_set.labels)}")

    sample = bundle.train_corpus[0]
    print(f"\nexample document ({sample.labels[0]}):")
    print("  " + " ".join(sample.tokens[:18]) + " ...")

    # The only supervision: the four category names.
    supervision = bundle.label_names()

    classifier = XClass(seed=0)
    print("\nfitting X-Class (pre-trains a small LM on first use; ~30s)...")
    classifier.fit(bundle.train_corpus, supervision)

    predicted = classifier.predict(bundle.test_corpus)
    gold = [doc.labels[0] for doc in bundle.test_corpus]
    print(format_table(
        [{
            "Method": "X-Class",
            "Supervision": "label names only",
            "Micro-F1": micro_f1(gold, predicted),
            "Macro-F1": macro_f1(gold, predicted),
        }],
        title="\nheld-out results",
    ))

    print("\nsample predictions:")
    for doc, label in list(zip(bundle.test_corpus, predicted))[:5]:
        marker = "+" if label == doc.labels[0] else "-"
        print(f"  [{marker}] predicted={label:<12} gold={doc.labels[0]:<12} "
              + " ".join(doc.tokens[:10]))


if __name__ == "__main__":
    main()
