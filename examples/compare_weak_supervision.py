"""Compare weak-supervision methods and formats on one corpus.

The tutorial's central theme: different systems consume different
supervision (category names, seed keywords, a few labeled documents) with
different backbones (static embeddings vs. a pre-trained LM). This script
runs one representative of each family on the same corpus and prints a
leaderboard, plus the ambiguous-seed-word demonstration that motivates
ConWea.

Run: ``python examples/compare_weak_supervision.py``
"""

import time

from repro.baselines import IRWithTfidf
from repro.datasets import load_profile
from repro.evaluation import format_table, micro_f1
from repro.methods import ConWea, LOTClass, PromptClass, WeSTClass, XClass
from repro.plm.provider import get_pretrained_lm


def main() -> None:
    bundle = load_profile("agnews", seed=0)
    gold = [doc.labels[0] for doc in bundle.test_corpus]
    keywords = bundle.keywords()

    print("seed keywords per class (note the shared, ambiguous ones):")
    for label, words in keywords.keywords.items():
        print(f"  {label:<12} {', '.join(words)}")

    print("\npre-training the shared language model (~30s, cached)...")
    plm = get_pretrained_lm(target_corpus=bundle.train_corpus, seed=0)

    contenders = [
        ("IR with TF-IDF", IRWithTfidf(seed=0), keywords, "keywords"),
        ("WeSTClass", WeSTClass(seed=0), keywords, "keywords"),
        ("ConWea", ConWea(plm=plm, seed=0), keywords, "keywords"),
        ("LOTClass", LOTClass(plm=plm, seed=0), bundle.label_names(),
         "label names"),
        ("X-Class", XClass(plm=plm, seed=0), bundle.label_names(),
         "label names"),
        ("PromptClass", PromptClass(plm=plm, seed=0), bundle.label_names(),
         "label names"),
    ]
    rows = []
    for name, classifier, supervision, supervision_kind in contenders:
        start = time.time()
        classifier.fit(bundle.train_corpus, supervision)
        score = micro_f1(gold, classifier.predict(bundle.test_corpus))
        rows.append({
            "Method": name,
            "Supervision": supervision_kind,
            "Micro-F1": score,
            "Fit (s)": round(time.time() - start, 1),
        })
        print(f"  fitted {name}: {score:.3f}")

    rows.sort(key=lambda r: r["Micro-F1"], reverse=True)
    print()
    print(format_table(rows, title="weakly-supervised leaderboard (agnews)"))

    # ConWea's motivation: the ambiguous seed word in two contexts.
    print('\ncontextual senses of the ambiguous seed "goal":')
    conwea = next(c for n, c, *_ in contenders if n == "ConWea")
    if conwea.contextualizer and "goal" in conwea.contextualizer.senses:
        n_senses, _ = conwea.contextualizer.senses["goal"]
        print(f"  split into {n_senses} senses; final seed lists:")
        for label in ("sports", "business"):
            tagged = [w for w in conwea.seeds[label] if w.startswith("goal$")]
            print(f"    {label:<10} uses {tagged or 'no goal sense'}")


if __name__ == "__main__":
    main()
