"""Single-label classification metrics."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np


def _validate(gold: Sequence, predicted: Sequence) -> None:
    if len(gold) != len(predicted):
        raise ValueError(f"length mismatch: {len(gold)} gold vs {len(predicted)} predicted")
    if len(gold) == 0:
        raise ValueError("empty evaluation set")


def accuracy(gold: Sequence, predicted: Sequence) -> float:
    """Fraction of exact matches."""
    _validate(gold, predicted)
    return float(np.mean([g == p for g, p in zip(gold, predicted)]))


def per_class_f1(gold: Sequence, predicted: Sequence,
                 labels: "Sequence | None" = None) -> dict:
    """Per-class precision/recall/F1.

    Returns ``{label: (precision, recall, f1, support)}`` over ``labels``
    (defaults to all labels present in gold or predictions).
    """
    _validate(gold, predicted)
    if labels is None:
        labels = sorted(set(gold) | set(predicted))
    out: dict = {}
    for label in labels:
        tp = sum(1 for g, p in zip(gold, predicted) if g == label and p == label)
        fp = sum(1 for g, p in zip(gold, predicted) if g != label and p == label)
        fn = sum(1 for g, p in zip(gold, predicted) if g == label and p != label)
        precision = tp / (tp + fp) if tp + fp else 0.0
        recall = tp / (tp + fn) if tp + fn else 0.0
        f1 = 2 * precision * recall / (precision + recall) if precision + recall else 0.0
        out[label] = (precision, recall, f1, tp + fn)
    return out


def micro_f1(gold: Sequence, predicted: Sequence) -> float:
    """Micro-averaged F1 (= accuracy for single-label problems)."""
    return accuracy(gold, predicted)


def macro_f1(gold: Sequence, predicted: Sequence,
             labels: "Sequence | None" = None) -> float:
    """Unweighted mean of per-class F1."""
    stats = per_class_f1(gold, predicted, labels=labels)
    return float(np.mean([f1 for _, _, f1, _ in stats.values()]))


def f1_scores(gold: Sequence, predicted: Sequence,
              labels: "Sequence | None" = None) -> tuple:
    """(micro_f1, macro_f1)."""
    return micro_f1(gold, predicted), macro_f1(gold, predicted, labels=labels)
