"""Bootstrap significance utilities (the tables' ** markers)."""

from __future__ import annotations

import numpy as np

from repro.core.seeding import ensure_rng


def bootstrap_interval(per_example_scores, confidence: float = 0.95,
                       n_resamples: int = 1000,
                       seed: "int | np.random.Generator" = 0) -> tuple:
    """(low, high) percentile bootstrap CI of the mean score."""
    rng = ensure_rng(seed)
    scores = np.asarray(per_example_scores, dtype=float)
    if scores.size == 0:
        raise ValueError("empty score array")
    idx = rng.integers(0, scores.size, size=(n_resamples, scores.size))
    means = scores[idx].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return (
        float(np.quantile(means, alpha)),
        float(np.quantile(means, 1.0 - alpha)),
    )


def paired_bootstrap_pvalue(scores_a, scores_b, n_resamples: int = 1000,
                            seed: "int | np.random.Generator" = 0) -> float:
    """One-sided paired bootstrap p-value for mean(A) > mean(B).

    Used to reproduce the significance markers in the MICoL table: small
    p-values mean system A's advantage over B is stable under resampling.
    """
    rng = ensure_rng(seed)
    a = np.asarray(scores_a, dtype=float)
    b = np.asarray(scores_b, dtype=float)
    if a.shape != b.shape:
        raise ValueError("paired score arrays must have equal shape")
    delta = a - b
    idx = rng.integers(0, delta.size, size=(n_resamples, delta.size))
    means = delta[idx].mean(axis=1)
    return float(np.mean(means <= 0.0))
