"""Multi-label and ranking metrics (TaxoClass / MICoL tables)."""

from __future__ import annotations

import numpy as np


def example_f1(gold_sets: list, predicted_sets: list) -> float:
    """Mean per-document F1 between gold and predicted label sets.

    ``Example-F1 = mean_i 2|gold_i ∩ pred_i| / (|gold_i| + |pred_i|)``.
    """
    if len(gold_sets) != len(predicted_sets):
        raise ValueError("length mismatch")
    scores = []
    for gold, pred in zip(gold_sets, predicted_sets):
        gold, pred = set(gold), set(pred)
        denom = len(gold) + len(pred)
        scores.append(2 * len(gold & pred) / denom if denom else 1.0)
    return float(np.mean(scores))


def per_example_precision_at_k(gold_sets: list, rankings: list, k: int) -> np.ndarray:
    """Per-document P@k scores (for bootstrap significance tests)."""
    if len(gold_sets) != len(rankings):
        raise ValueError("length mismatch")
    scores = []
    for gold, ranking in zip(gold_sets, rankings):
        gold = set(gold)
        top = ranking[:k]
        scores.append(sum(1 for label in top if label in gold) / k)
    return np.asarray(scores, dtype=float)


def precision_at_k(gold_sets: list, rankings: list, k: int) -> float:
    """Mean fraction of the top-``k`` ranked labels that are relevant."""
    return float(per_example_precision_at_k(gold_sets, rankings, k).mean())


def ndcg_at_k(gold_sets: list, rankings: list, k: int) -> float:
    """Mean NDCG@k with binary relevance."""
    if len(gold_sets) != len(rankings):
        raise ValueError("length mismatch")
    discounts = 1.0 / np.log2(np.arange(2, k + 2))
    scores = []
    for gold, ranking in zip(gold_sets, rankings):
        gold = set(gold)
        gains = np.array([1.0 if label in gold else 0.0 for label in ranking[:k]])
        if gains.size < k:
            gains = np.pad(gains, (0, k - gains.size))
        dcg = float((gains * discounts).sum())
        ideal_hits = min(len(gold), k)
        idcg = float(discounts[:ideal_hits].sum()) if ideal_hits else 0.0
        scores.append(dcg / idcg if idcg else 0.0)
    return float(np.mean(scores))
