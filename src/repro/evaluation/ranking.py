"""Multi-label and ranking metrics (TaxoClass / MICoL tables)."""

from __future__ import annotations

import numpy as np


def example_f1(gold_sets: list, predicted_sets: list) -> float:
    """Mean per-document F1 between gold and predicted label sets.

    ``Example-F1 = mean_i 2|gold_i ∩ pred_i| / (|gold_i| + |pred_i|)``.
    """
    if len(gold_sets) != len(predicted_sets):
        raise ValueError("length mismatch")
    scores = []
    for gold, pred in zip(gold_sets, predicted_sets):
        gold, pred = set(gold), set(pred)
        denom = len(gold) + len(pred)
        scores.append(2 * len(gold & pred) / denom if denom else 1.0)
    return float(np.mean(scores))


def label_f1(gold_sets: list, predicted_sets: list) -> float:
    """Label-based macro F1 over label sets.

    Each label occurring in any gold or predicted set is scored as an
    independent binary problem (present/absent per document); the macro
    average weights rare labels equally with frequent ones, which is
    what separates it from :func:`example_f1` on long-tailed label
    spaces.
    """
    if len(gold_sets) != len(predicted_sets):
        raise ValueError("length mismatch")
    labels = sorted({l for s in gold_sets for l in s}
                    | {l for s in predicted_sets for l in s})
    if not labels:
        return 1.0
    f1s = []
    for label in labels:
        tp = fp = fn = 0
        for gold, pred in zip(gold_sets, predicted_sets):
            in_gold, in_pred = label in gold, label in pred
            tp += in_gold and in_pred
            fp += in_pred and not in_gold
            fn += in_gold and not in_pred
        denom = 2 * tp + fp + fn
        f1s.append(2 * tp / denom if denom else 0.0)
    return float(np.mean(f1s))


def _closed(labels, taxonomy) -> set:
    """``labels`` plus their ancestors under ``taxonomy``.

    ``taxonomy`` is a :class:`~repro.taxonomy.dag.LabelDAG` (has
    ``closure``), a :class:`~repro.taxonomy.tree.LabelTree` (has
    ``path_to_root``), or ``None`` (labels are their own closure).
    Labels outside the taxonomy pass through unchanged rather than
    erroring: prediction sets may contain labels a repaired taxonomy
    dropped.
    """
    if taxonomy is None:
        return set(labels)
    out: set = set()
    for label in labels:
        out.add(label)
        if hasattr(taxonomy, "closure"):
            if label in taxonomy:
                out |= taxonomy.closure([label])
        elif label in taxonomy:
            out |= set(taxonomy.path_to_root(label))
    return out


def hierarchical_precision_recall(gold_sets: list, predicted_sets: list,
                                  taxonomy=None) -> dict:
    """Hierarchical precision / recall / F1 over ancestor closures.

    Standard hierarchical metrics (Kiritchenko et al.): every label set
    is expanded to its ancestor closure before micro-averaged set
    overlap, so predicting a near-miss sibling still earns credit for
    the shared ancestors. With ``taxonomy=None`` the closure is the
    identity and the numbers reduce to micro-averaged set P/R/F1.
    """
    if len(gold_sets) != len(predicted_sets):
        raise ValueError("length mismatch")
    hits = pred_total = gold_total = 0
    for gold, pred in zip(gold_sets, predicted_sets):
        gold_c = _closed(gold, taxonomy)
        pred_c = _closed(pred, taxonomy)
        hits += len(gold_c & pred_c)
        pred_total += len(pred_c)
        gold_total += len(gold_c)
    precision = hits / pred_total if pred_total else 0.0
    recall = hits / gold_total if gold_total else 0.0
    denom = precision + recall
    return {
        "h_precision": precision,
        "h_recall": recall,
        "h_f1": 2 * precision * recall / denom if denom else 0.0,
    }


def per_example_precision_at_k(gold_sets: list, rankings: list, k: int) -> np.ndarray:
    """Per-document P@k scores (for bootstrap significance tests)."""
    if len(gold_sets) != len(rankings):
        raise ValueError("length mismatch")
    scores = []
    for gold, ranking in zip(gold_sets, rankings):
        gold = set(gold)
        top = ranking[:k]
        scores.append(sum(1 for label in top if label in gold) / k)
    return np.asarray(scores, dtype=float)


def precision_at_k(gold_sets: list, rankings: list, k: int) -> float:
    """Mean fraction of the top-``k`` ranked labels that are relevant."""
    return float(per_example_precision_at_k(gold_sets, rankings, k).mean())


def ndcg_at_k(gold_sets: list, rankings: list, k: int) -> float:
    """Mean NDCG@k with binary relevance."""
    if len(gold_sets) != len(rankings):
        raise ValueError("length mismatch")
    discounts = 1.0 / np.log2(np.arange(2, k + 2))
    scores = []
    for gold, ranking in zip(gold_sets, rankings):
        gold = set(gold)
        gains = np.array([1.0 if label in gold else 0.0 for label in ranking[:k]])
        if gains.size < k:
            gains = np.pad(gains, (0, k - gains.size))
        dcg = float((gains * discounts).sum())
        ideal_hits = min(len(gold), k)
        idcg = float(discounts[:ideal_hits].sum()) if ideal_hits else 0.0
        scores.append(dcg / idcg if idcg else 0.0)
    return float(np.mean(scores))
