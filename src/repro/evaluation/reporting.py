"""Plain-text table rendering for the benchmark harness."""

from __future__ import annotations


def _format_cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(rows: list, columns: "list | None" = None,
                 title: "str | None" = None) -> str:
    """Render dict rows as an aligned text table.

    ``columns`` fixes the column order (defaults to first row's keys,
    with the ``seconds`` wall-clock column always rendered last).
    """
    if not rows:
        return title or "(empty table)"
    if columns is None:
        columns = [c for c in rows[0] if c != "seconds"]
        if "seconds" in rows[0]:
            columns.append("seconds")
    rendered = [[_format_cell(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(str(col)), max(len(r[i]) for r in rendered))
        for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(str(col).ljust(w) for col, w in zip(columns, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for r in rendered:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(r, widths)))
    return "\n".join(lines)


def format_matrix(matrix, row_labels: list, col_labels: list,
                  title: "str | None" = None) -> str:
    """Render a confusion matrix with labels."""
    rows = []
    for label, row in zip(row_labels, matrix):
        entry = {"gold \\ pred": label}
        for col, value in zip(col_labels, row):
            entry[str(col)] = int(value)
        rows.append(entry)
    return format_table(rows, title=title)
