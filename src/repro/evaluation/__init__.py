"""Evaluation substrate: classification, ranking, clustering metrics, tables."""

from repro.evaluation.clustering import align_clusters, confusion_matrix, purity
from repro.evaluation.metrics import (
    accuracy,
    f1_scores,
    macro_f1,
    micro_f1,
    per_class_f1,
)
from repro.evaluation.ranking import (
    example_f1,
    hierarchical_precision_recall,
    label_f1,
    ndcg_at_k,
    precision_at_k,
)
from repro.evaluation.reporting import format_table
from repro.evaluation.significance import bootstrap_interval, paired_bootstrap_pvalue

__all__ = [
    "accuracy",
    "micro_f1",
    "macro_f1",
    "f1_scores",
    "per_class_f1",
    "example_f1",
    "label_f1",
    "hierarchical_precision_recall",
    "precision_at_k",
    "ndcg_at_k",
    "confusion_matrix",
    "align_clusters",
    "purity",
    "format_table",
    "bootstrap_interval",
    "paired_bootstrap_pvalue",
]
