"""Clustering evaluation: confusion matrices, Hungarian alignment, purity."""

from __future__ import annotations

import numpy as np
from scipy.optimize import linear_sum_assignment


def confusion_matrix(gold: list, predicted: list, labels: "list | None" = None) -> tuple:
    """(matrix, labels): rows = gold classes, columns = predicted classes."""
    if labels is None:
        labels = sorted(set(gold) | set(predicted))
    index = {label: i for i, label in enumerate(labels)}
    mat = np.zeros((len(labels), len(labels)), dtype=int)
    for g, p in zip(gold, predicted):
        mat[index[g], index[p]] += 1
    return mat, list(labels)


def align_clusters(gold: list, cluster_ids: list) -> dict:
    """Best cluster-to-label assignment (Hungarian on the overlap matrix).

    Returns ``{cluster_id: gold_label}`` maximizing total overlap.
    """
    gold_labels = sorted(set(gold))
    clusters = sorted(set(cluster_ids))
    overlap = np.zeros((len(clusters), len(gold_labels)))
    for g, c in zip(gold, cluster_ids):
        overlap[clusters.index(c), gold_labels.index(g)] += 1
    rows, cols = linear_sum_assignment(-overlap)
    mapping = {clusters[r]: gold_labels[c] for r, c in zip(rows, cols)}
    # Unassigned clusters (more clusters than labels) map to their modal label.
    for i, cluster in enumerate(clusters):
        if cluster not in mapping:
            mapping[cluster] = gold_labels[int(overlap[i].argmax())]
    return mapping


def purity(gold: list, cluster_ids: list) -> float:
    """Cluster purity: fraction of points in their cluster's modal class."""
    total = 0
    for cluster in set(cluster_ids):
        members = [g for g, c in zip(gold, cluster_ids) if c == cluster]
        counts: dict = {}
        for g in members:
            counts[g] = counts.get(g, 0) + 1
        total += max(counts.values())
    return total / len(gold)


def kmeans(points: np.ndarray, k: int, seed: int = 0, iterations: int = 50) -> np.ndarray:
    """Plain k-means (k-means++ init); returns integer cluster ids."""
    rng = np.random.default_rng(seed)
    points = np.asarray(points, dtype=float)
    n = points.shape[0]
    if k > n:
        raise ValueError(f"k={k} exceeds number of points {n}")
    # k-means++ seeding.
    centers = [points[int(rng.integers(0, n))]]
    for _ in range(1, k):
        dists = np.min(
            [np.sum((points - c) ** 2, axis=1) for c in centers], axis=0
        )
        probs = dists / dists.sum() if dists.sum() > 0 else np.full(n, 1.0 / n)
        centers.append(points[int(rng.choice(n, p=probs))])
    centers = np.stack(centers)
    assignment = np.full(n, -1, dtype=int)
    for _ in range(iterations):
        dists = ((points[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        new_assignment = dists.argmin(axis=1)
        if (new_assignment == assignment).all():
            break
        assignment = new_assignment
        for j in range(k):
            members = points[assignment == j]
            if len(members):
                centers[j] = members.mean(axis=0)
    return assignment
