"""PCEM: semi-supervised naive Bayes with EM (Nigam et al. 2000 family).

Seeded from a few labeled documents, class-conditional word distributions
are re-estimated with EM over the unlabeled corpus. The PCEM row of the
MetaCat table and (as SS-PCEM) the TaxoClass table.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import WeaklySupervisedTextClassifier
from repro.core.supervision import LabeledDocuments, Supervision, require
from repro.core.types import Corpus
from repro.text.vocabulary import Vocabulary


class PCEM(WeaklySupervisedTextClassifier):
    """Multinomial naive Bayes + EM over unlabeled documents."""

    def __init__(self, iterations: int = 8, smoothing: float = 0.1, seed=0):
        super().__init__(seed=seed)
        self.iterations = iterations
        self.smoothing = smoothing
        self.vocabulary: "Vocabulary | None" = None
        self.log_prior: "np.ndarray | None" = None
        self.log_word: "np.ndarray | None" = None  # (K, V)

    def _counts(self, token_lists: list) -> np.ndarray:
        assert self.vocabulary is not None
        mat = np.zeros((len(token_lists), len(self.vocabulary)))
        for i, tokens in enumerate(token_lists):
            for token in tokens:
                j = self.vocabulary.id(token)
                if j != self.vocabulary.unk_id:
                    mat[i, j] += 1
        return mat

    def _m_step(self, counts: np.ndarray, resp: np.ndarray) -> None:
        class_mass = resp.sum(axis=0) + 1e-9
        self.log_prior = np.log(class_mass / class_mass.sum())
        word_counts = resp.T @ counts + self.smoothing
        self.log_word = np.log(word_counts / word_counts.sum(axis=1, keepdims=True))

    def _e_step(self, counts: np.ndarray) -> np.ndarray:
        assert self.log_prior is not None and self.log_word is not None
        logp = counts @ self.log_word.T + self.log_prior
        logp -= logp.max(axis=1, keepdims=True)
        proba = np.exp(logp)
        return proba / proba.sum(axis=1, keepdims=True)

    def _fit(self, corpus: Corpus, supervision: Supervision) -> None:
        supervision = require(supervision, LabeledDocuments)
        assert self.label_set is not None
        token_lists = corpus.token_lists()
        self.vocabulary = Vocabulary.build(token_lists, min_count=2)
        counts = self._counts(token_lists)
        k = len(self.label_set)
        labeled_counts = self._counts(
            [doc.tokens for doc, _ in supervision.pairs()]
        )
        labeled_resp = np.zeros((labeled_counts.shape[0], k))
        for i, (_, label) in enumerate(supervision.pairs()):
            labeled_resp[i, self.label_set.index(label)] = 1.0
        self._m_step(labeled_counts, labeled_resp)
        for _ in range(self.iterations):
            resp = self._e_step(counts)
            stacked_counts = np.vstack([labeled_counts, counts])
            stacked_resp = np.vstack([labeled_resp, resp])
            self._m_step(stacked_counts, stacked_resp)

    def _predict_proba(self, corpus: Corpus) -> np.ndarray:
        return self._e_step(self._counts(corpus.token_lists()))
