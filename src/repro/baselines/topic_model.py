"""PLSA topic model baseline.

EM-trained probabilistic latent semantic analysis with one topic per
class; topics are anchored to classes through the seed words (seed words
get boosted initial probability in their class's topic, the standard
seed-guided topic-model trick), and documents are classified by their
posterior topic mixture.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import WeaklySupervisedTextClassifier
from repro.core.seeding import derive_rng
from repro.core.supervision import Keywords, LabelNames, Supervision, require
from repro.core.types import Corpus
from repro.text.vocabulary import Vocabulary


class PLSATopicModel(WeaklySupervisedTextClassifier):
    """Seed-anchored PLSA with one topic per class."""

    def __init__(self, iterations: int = 30, seed_boost: float = 20.0, seed=0):
        super().__init__(seed=seed)
        self.iterations = iterations
        self.seed_boost = seed_boost
        self.vocabulary: "Vocabulary | None" = None
        self.topic_word: "np.ndarray | None" = None  # (K, V)

    def _count_matrix(self, token_lists: list) -> np.ndarray:
        assert self.vocabulary is not None
        counts = np.zeros((len(token_lists), len(self.vocabulary)))
        for i, tokens in enumerate(token_lists):
            for token in tokens:
                j = self.vocabulary.id(token)
                if j != self.vocabulary.unk_id:
                    counts[i, j] += 1
        return counts

    def _fit(self, corpus: Corpus, supervision: Supervision) -> None:
        require(supervision, LabelNames, Keywords)
        assert self.label_set is not None
        rng = derive_rng(self.rng, "plsa")
        token_lists = corpus.token_lists()
        self.vocabulary = Vocabulary.build(token_lists, min_count=2)
        counts = self._count_matrix(token_lists)
        n_topics = len(self.label_set)
        vocab_size = len(self.vocabulary)

        topic_word = rng.random((n_topics, vocab_size)) + 0.1
        for k, label in enumerate(self.label_set):
            seeds = (
                supervision.for_label(label)
                if isinstance(supervision, Keywords)
                else self.label_set.name_tokens(label)
            )
            for word in seeds:
                if word in self.vocabulary:
                    topic_word[k, self.vocabulary.id(word)] += self.seed_boost
        topic_word /= topic_word.sum(axis=1, keepdims=True)
        doc_topic = np.full((len(token_lists), n_topics), 1.0 / n_topics)

        nz_d, nz_w = counts.nonzero()
        nz_c = counts[nz_d, nz_w][:, None]
        for _ in range(self.iterations):
            # E-step over nonzero (doc, word) pairs only.
            resp = doc_topic[nz_d] * topic_word[:, nz_w].T  # (NNZ, K)
            resp /= resp.sum(axis=1, keepdims=True) + 1e-12
            weighted = resp * nz_c
            # M-step.
            doc_topic = np.zeros_like(doc_topic)
            np.add.at(doc_topic, nz_d, weighted)
            doc_topic /= doc_topic.sum(axis=1, keepdims=True) + 1e-12
            topic_word = np.zeros_like(topic_word)
            np.add.at(topic_word.T, nz_w, weighted)
            topic_word /= topic_word.sum(axis=1, keepdims=True) + 1e-12
        self.topic_word = topic_word

    def _predict_proba(self, corpus: Corpus) -> np.ndarray:
        assert self.topic_word is not None and self.label_set is not None
        counts = self._count_matrix(corpus.token_lists())
        n_topics = len(self.label_set)
        doc_topic = np.full((counts.shape[0], n_topics), 1.0 / n_topics)
        nz_d, nz_w = counts.nonzero()
        nz_c = counts[nz_d, nz_w][:, None]
        # Folding-in: few E/M steps on doc-topic only.
        for _ in range(10):
            resp = doc_topic[nz_d] * self.topic_word[:, nz_w].T
            resp /= resp.sum(axis=1, keepdims=True) + 1e-12
            weighted = resp * nz_c
            doc_topic = np.zeros_like(doc_topic)
            np.add.at(doc_topic, nz_d, weighted)
            doc_topic /= doc_topic.sum(axis=1, keepdims=True) + 1e-12
        return doc_topic
