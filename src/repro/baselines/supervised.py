"""Fully supervised upper bounds (CNN, HAN, char-CNN, BERT head).

These train on the *gold* labels of the training corpus and bound what the
weakly-supervised methods can hope for in every table.
"""

from __future__ import annotations

import numpy as np

from repro.classifiers import (
    AttentiveClassifier,
    LogisticRegression,
    TextCNNClassifier,
)
from repro.core.base import WeaklySupervisedTextClassifier
from repro.core.seeding import derive_rng
from repro.core.supervision import Supervision
from repro.core.types import Corpus
from repro.embeddings.ppmi_svd import PPMISVDEmbeddings
from repro.plm.model import PretrainedLM
from repro.plm.provider import get_pretrained_lm
from repro.text.vocabulary import Vocabulary


class _SupervisedBase(WeaklySupervisedTextClassifier):
    """Shared gold-label training plumbing.

    ``fit`` ignores the weak-supervision payload beyond the label set and
    reads gold labels straight from the corpus (these are *upper bounds*,
    not weakly-supervised systems).
    """

    def __init__(self, epochs: int = 12, dim: int = 48, seed=0):
        super().__init__(seed=seed)
        self.epochs = epochs
        self.dim = dim
        self._classifier = None

    def _gold_targets(self, corpus: Corpus) -> np.ndarray:
        assert self.label_set is not None
        return np.array([self.label_set.index(d.labels[0]) for d in corpus])

    def _tokens(self, corpus: Corpus) -> list:
        return corpus.token_lists()

    def _build(self, vocab: Vocabulary, table: "np.ndarray | None", rng) -> object:
        raise NotImplementedError

    def _fit(self, corpus: Corpus, supervision: Supervision) -> None:
        rng = derive_rng(self.rng, type(self).__name__)
        tokens = self._tokens(corpus)
        vocab = Vocabulary.build(tokens, min_count=1)
        svd = PPMISVDEmbeddings(dim=self.dim).fit(
            tokens, vocabulary=vocab, seed=int(rng.integers(2**31))
        )
        self._classifier = self._build(vocab, svd.matrix(), rng)
        self._classifier.fit(tokens, self._gold_targets(corpus),
                             epochs=self.epochs)

    def _predict_proba(self, corpus: Corpus) -> np.ndarray:
        assert self._classifier is not None
        return self._classifier.predict_proba(self._tokens(corpus))


class SupervisedCNN(_SupervisedBase):
    """TextCNN trained on gold labels."""

    def _build(self, vocab, table, rng):
        assert self.label_set is not None
        return TextCNNClassifier(vocab, len(self.label_set), dim=self.dim,
                                 embedding_table=table,
                                 seed=int(rng.integers(2**31)))


class SupervisedHAN(_SupervisedBase):
    """Attention classifier trained on gold labels."""

    def _build(self, vocab, table, rng):
        assert self.label_set is not None
        return AttentiveClassifier(vocab, len(self.label_set), dim=self.dim,
                                   embedding_table=table,
                                   seed=int(rng.integers(2**31)))


class SupervisedCharCNN(_SupervisedBase):
    """Character-level CNN trained on gold labels (char-CNN row)."""

    def _tokens(self, corpus: Corpus) -> list:
        # Character streams; the CNN's windows recover sub-word patterns.
        return [list(" ".join(d.tokens))[:200] for d in corpus]

    def _build(self, vocab, table, rng):
        assert self.label_set is not None
        return TextCNNClassifier(vocab, len(self.label_set), dim=24,
                                 max_len=200, window_sizes=(3, 5),
                                 filters=24, seed=int(rng.integers(2**31)))

    def _fit(self, corpus: Corpus, supervision: Supervision) -> None:
        rng = derive_rng(self.rng, "charcnn")
        tokens = self._tokens(corpus)
        vocab = Vocabulary.build(tokens, min_count=1)
        self._classifier = self._build(vocab, None, rng)
        self._classifier.fit(tokens, self._gold_targets(corpus),
                             epochs=self.epochs)


class SupervisedBERT(WeaklySupervisedTextClassifier):
    """Head-token fine-tuning on gold labels over the PLM (BERT row)."""

    def __init__(self, plm: "PretrainedLM | None" = None, epochs: int = 80, seed=0):
        super().__init__(seed=seed)
        self.plm = plm
        self.epochs = epochs
        self._head: "LogisticRegression | None" = None

    def _fit(self, corpus: Corpus, supervision: Supervision) -> None:
        assert self.label_set is not None
        rng = derive_rng(self.rng, "supervised-bert")
        if self.plm is None:
            self.plm = get_pretrained_lm(target_corpus=corpus,
                                         seed=int(rng.integers(2**16)) % 7)
        features = self.plm.doc_embeddings(corpus.token_lists())
        targets = np.array([self.label_set.index(d.labels[0]) for d in corpus])
        self._head = LogisticRegression(features.shape[1], len(self.label_set),
                                        seed=int(rng.integers(2**31)))
        self._head.fit(features, targets, epochs=self.epochs)

    def _predict_proba(self, corpus: Corpus) -> np.ndarray:
        assert self._head is not None and self.plm is not None
        return self._head.predict_proba(
            self.plm.doc_embeddings(corpus.token_lists())
        )
