"""Comparator systems from the tutorial's evaluation tables."""

from repro.baselines.augmentation import (
    EDAContrastive,
    UDAContrastive,
    UDASemiSupervised,
    eda_augment,
)
from repro.baselines.bert_match import BertSimpleMatch
from repro.baselines.classkg import ClassKG
from repro.baselines.dataless import Dataless, HierDataless
from repro.baselines.doc2cube import Doc2Cube
from repro.baselines.doc2vec_rank import Doc2VecRanker
from repro.baselines.graph import ESim, HIN2Vec, Metapath2Vec, TextGCN
from repro.baselines.hier_svm import HierSVM
from repro.baselines.ir_tfidf import IRWithTfidf
from repro.baselines.match import MATCH
from repro.baselines.pcem import PCEM
from repro.baselines.pte import PTE
from repro.baselines.semi_bert import SemiBERT
from repro.baselines.supervised import (
    SupervisedBERT,
    SupervisedCharCNN,
    SupervisedCNN,
    SupervisedHAN,
)
from repro.baselines.topic_model import PLSATopicModel
from repro.baselines.unec import UNEC
from repro.baselines.zeroshot import (
    HierZeroShotTC,
    ZeroShotEntail,
    ZeroShotEntailRanker,
)

__all__ = [
    "IRWithTfidf",
    "PLSATopicModel",
    "Dataless",
    "HierDataless",
    "UNEC",
    "PTE",
    "Doc2Cube",
    "BertSimpleMatch",
    "ClassKG",
    "SupervisedCNN",
    "SupervisedHAN",
    "SupervisedCharCNN",
    "SupervisedBERT",
    "HierSVM",
    "PCEM",
    "SemiBERT",
    "ZeroShotEntail",
    "ZeroShotEntailRanker",
    "HierZeroShotTC",
    "EDAContrastive",
    "UDAContrastive",
    "UDASemiSupervised",
    "eda_augment",
    "Doc2VecRanker",
    "MATCH",
    "ESim",
    "Metapath2Vec",
    "HIN2Vec",
    "TextGCN",
]
