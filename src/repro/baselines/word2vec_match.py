"""Word2Vec similarity matching (the ConWea table's "Word2Vec" row).

Label vectors are seed-word means in a locally trained word2vec space;
documents match by cosine of their mean word vector. No classifier.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import WeaklySupervisedTextClassifier
from repro.core.seeding import derive_rng
from repro.core.supervision import Keywords, LabelNames, Supervision, require
from repro.core.types import Corpus
from repro.embeddings.doc import doc_embeddings
from repro.embeddings.word2vec import Word2Vec
from repro.nn.functional import l2_normalize


class Word2VecMatch(WeaklySupervisedTextClassifier):
    """Nearest seed-mean vector in a local SGNS space."""

    def __init__(self, dim: int = 48, epochs: int = 6, seed=0):
        super().__init__(seed=seed)
        self.dim = dim
        self.epochs = epochs
        self.model: "Word2Vec | None" = None
        self._label_matrix: "np.ndarray | None" = None

    def _fit(self, corpus: Corpus, supervision: Supervision) -> None:
        require(supervision, LabelNames, Keywords)
        assert self.label_set is not None
        rng = derive_rng(self.rng, "w2v-match")
        self.model = Word2Vec(dim=self.dim, epochs=self.epochs,
                              seed=int(rng.integers(2**31)))
        self.model.fit(corpus.token_lists())
        rows = []
        for label in self.label_set:
            seeds = (
                supervision.for_label(label)
                if isinstance(supervision, Keywords)
                else self.label_set.name_tokens(label)
            )
            rows.append(np.mean([self.model.vector(w) for w in seeds], axis=0))
        self._label_matrix = l2_normalize(np.stack(rows))

    def _predict_proba(self, corpus: Corpus) -> np.ndarray:
        assert self.model is not None and self._label_matrix is not None
        docs = doc_embeddings(corpus.token_lists(), self.model)
        scores = docs @ self._label_matrix.T
        exp = np.exp((scores - scores.max(axis=1, keepdims=True)) / 0.05)
        return exp / exp.sum(axis=1, keepdims=True)
