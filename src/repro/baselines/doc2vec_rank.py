"""Doc2Vec zero-shot ranker (MICoL baseline).

Documents and label texts embed via PV-DBOW inference; labels rank by
cosine. No supervision of any kind.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import MultiLabelTextClassifier
from repro.core.seeding import derive_rng
from repro.core.supervision import LabelNames, Supervision, require
from repro.core.types import Corpus
from repro.embeddings.doc2vec import Doc2Vec
from repro.nn.functional import l2_normalize
from repro.text.tokenizer import tokenize


class Doc2VecRanker(MultiLabelTextClassifier):
    """PV-DBOW cosine ranking of label descriptions."""

    def __init__(self, dim: int = 48, seed=0):
        super().__init__(seed=seed)
        self.dim = dim
        self.model: "Doc2Vec | None" = None
        self._label_matrix: "np.ndarray | None" = None

    def _fit(self, corpus: Corpus, supervision: Supervision) -> None:
        require(supervision, LabelNames)
        assert self.label_set is not None
        rng = derive_rng(self.rng, "doc2vec")
        self.model = Doc2Vec(dim=self.dim, epochs=3,
                             seed=int(rng.integers(2**31)))
        self.model.fit(corpus.token_lists())
        texts = []
        for label in self.label_set:
            tokens = list(self.label_set.name_tokens(label))
            tokens += tokenize(self.label_set.description_of(label))
            texts.append(tokens)
        self._label_matrix = l2_normalize(self.model.infer(texts))

    def _score(self, corpus: Corpus) -> np.ndarray:
        assert self.model is not None and self._label_matrix is not None
        docs = l2_normalize(self.model.infer(corpus.token_lists()))
        return docs @ self._label_matrix.T
