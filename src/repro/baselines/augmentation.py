"""Text augmentation baselines: EDA and UDA.

:func:`eda_augment` implements Wei & Zou's four EDA operations (synonym
replacement via embedding neighbours, random insertion, swap, deletion).
``EDAContrastive`` / ``UDAContrastive`` fine-tune the MICoL bi-encoder on
*augmentation-induced* positive pairs instead of metadata-induced ones —
the contrastive baselines of the MICoL table. ``UDASemiSupervised`` is the
semi-supervised consistency-training row of the LOTClass table.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import MultiLabelTextClassifier, WeaklySupervisedTextClassifier
from repro.core.seeding import derive_rng, ensure_rng
from repro.core.supervision import (
    LabeledDocuments,
    LabelNames,
    Supervision,
    require,
)
from repro.core.types import Corpus
from repro.classifiers import LogisticRegression
from repro.methods.micol.encoders import BiEncoder
from repro.plm.model import PretrainedLM
from repro.plm.provider import get_pretrained_lm
from repro.text.tokenizer import tokenize


def eda_augment(tokens: list, word_vectors, rng: np.random.Generator,
                alpha: float = 0.1) -> list:
    """One EDA-augmented copy of ``tokens``.

    Applies synonym replacement (nearest embedding neighbours), random
    insertion, random swap, and random deletion, each touching about
    ``alpha`` of the tokens.
    """
    tokens = list(tokens)
    n = max(1, int(alpha * len(tokens)))
    # Synonym replacement.
    for _ in range(n):
        if not tokens:
            break
        pos = int(rng.integers(0, len(tokens)))
        neighbours = word_vectors.most_similar(tokens[pos], k=3)
        if neighbours:
            tokens[pos] = neighbours[int(rng.integers(0, len(neighbours)))][0]
    # Random insertion.
    for _ in range(n):
        pos = int(rng.integers(0, len(tokens)))
        neighbours = word_vectors.most_similar(tokens[pos], k=3)
        if neighbours:
            tokens.insert(int(rng.integers(0, len(tokens) + 1)),
                          neighbours[0][0])
    # Random swap.
    for _ in range(n):
        if len(tokens) < 2:
            break
        a, b = rng.integers(0, len(tokens), size=2)
        tokens[a], tokens[b] = tokens[b], tokens[a]
    # Random deletion.
    keep = rng.random(len(tokens)) > alpha
    survivors = [t for t, k in zip(tokens, keep) if k]
    return survivors or tokens[:1]


class _AugmentationContrastive(MultiLabelTextClassifier):
    """Bi-encoder fine-tuned on (document, augmented copy) pairs."""

    #: subclasses set the augmentation strength
    alpha = 0.1

    def __init__(self, plm: "PretrainedLM | None" = None, n_pairs: int = 300,
                 seed=0):
        super().__init__(seed=seed)
        self.plm = plm
        self.n_pairs = n_pairs
        self._bi: "BiEncoder | None" = None
        self._label_embeddings: "np.ndarray | None" = None

    def _fit(self, corpus: Corpus, supervision: Supervision) -> None:
        require(supervision, LabelNames)
        assert self.label_set is not None
        rng = derive_rng(self.rng, type(self).__name__)
        if self.plm is None:
            self.plm = get_pretrained_lm(target_corpus=corpus,
                                         seed=int(rng.integers(2**16)) % 7)
        from repro.embeddings.ppmi_svd import PPMISVDEmbeddings

        svd = PPMISVDEmbeddings(dim=32).fit(corpus.token_lists(),
                                            seed=int(rng.integers(2**31)))
        idx = rng.integers(0, len(corpus), size=min(self.n_pairs, len(corpus)))
        anchors_tokens = [corpus[int(i)].tokens for i in idx]
        positive_tokens = [eda_augment(t, svd, rng, alpha=self.alpha)
                           for t in anchors_tokens]
        anchors = self.plm.doc_embeddings(anchors_tokens)
        positives = self.plm.doc_embeddings(positive_tokens)
        self._bi = BiEncoder(self.plm.dim, seed=int(rng.integers(2**31)))
        self._bi.train_contrastive(anchors, positives, seed=rng)
        texts = []
        for label in self.label_set:
            tokens = list(self.label_set.name_tokens(label))
            tokens += tokenize(self.label_set.description_of(label))
            texts.append(tokens)
        self._label_embeddings = self.plm.doc_embeddings(texts)

    def _score(self, corpus: Corpus) -> np.ndarray:
        assert self._bi is not None and self._label_embeddings is not None
        assert self.plm is not None
        docs = self._bi.encode(self.plm.doc_embeddings(corpus.token_lists()))
        return docs @ self._bi.encode(self._label_embeddings).T


class EDAContrastive(_AugmentationContrastive):
    """EDA-pair contrastive fine-tuning (light augmentation)."""

    alpha = 0.1


class UDAContrastive(_AugmentationContrastive):
    """UDA-style consistency pairs (stronger augmentation)."""

    alpha = 0.25


class UDASemiSupervised(WeaklySupervisedTextClassifier):
    """Semi-supervised UDA row: labeled docs + consistency on unlabeled.

    Trains a head on the labeled documents, then adds high-confidence
    pseudo-labels whose augmented copies agree with the original
    prediction (the consistency filter).
    """

    def __init__(self, plm: "PretrainedLM | None" = None, rounds: int = 2, seed=0):
        super().__init__(seed=seed)
        self.plm = plm
        self.rounds = rounds
        self._head: "LogisticRegression | None" = None

    def _fit(self, corpus: Corpus, supervision: Supervision) -> None:
        supervision = require(supervision, LabeledDocuments)
        assert self.label_set is not None
        rng = derive_rng(self.rng, "uda-semisup")
        if self.plm is None:
            self.plm = get_pretrained_lm(target_corpus=corpus,
                                         seed=int(rng.integers(2**16)) % 7)
        from repro.embeddings.ppmi_svd import PPMISVDEmbeddings

        svd = PPMISVDEmbeddings(dim=32).fit(corpus.token_lists(),
                                            seed=int(rng.integers(2**31)))
        labeled_tokens = [d.tokens for d, _ in supervision.pairs()]
        labeled_targets = np.array(
            [self.label_set.index(l) for _, l in supervision.pairs()]
        )
        features = self.plm.doc_embeddings(corpus.token_lists())
        labeled_features = self.plm.doc_embeddings(labeled_tokens)
        augmented = [eda_augment(t, svd, rng, alpha=0.2)
                     for t in corpus.token_lists()]
        augmented_features = self.plm.doc_embeddings(augmented)

        self._head = LogisticRegression(features.shape[1], len(self.label_set),
                                        seed=int(rng.integers(2**31)))
        self._head.fit(labeled_features, labeled_targets, epochs=80)
        for _ in range(self.rounds):
            proba = self._head.predict_proba(features)
            proba_aug = self._head.predict_proba(augmented_features)
            agree = proba.argmax(axis=1) == proba_aug.argmax(axis=1)
            confident = proba.max(axis=1) > 0.7
            take = np.flatnonzero(agree & confident)
            if take.size == 0:
                break
            stacked = np.vstack([labeled_features, features[take]])
            targets = np.concatenate([labeled_targets, proba[take].argmax(axis=1)])
            self._head.fit(stacked, targets, epochs=40)

    def _predict_proba(self, corpus: Corpus) -> np.ndarray:
        assert self._head is not None and self.plm is not None
        return self._head.predict_proba(
            self.plm.doc_embeddings(corpus.token_lists())
        )
