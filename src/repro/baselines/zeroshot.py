"""Zero-shot entailment baselines (Yin et al. 2019 family).

``ZeroShotEntail`` ranks labels by the NLI relevance model's entailment
probability, no training. ``HierZeroShotTC`` descends a taxonomy with the
same scorer and emits the visited path (the TaxoClass baseline).
"""

from __future__ import annotations

import numpy as np

from repro.core.base import MultiLabelTextClassifier, WeaklySupervisedTextClassifier
from repro.core.seeding import derive_rng
from repro.core.supervision import LabelNames, Supervision, require
from repro.core.types import Corpus
from repro.methods.taxoclass.exploration import candidate_matrix
from repro.plm.model import PretrainedLM
from repro.plm.provider import get_pretrained_lm, get_relevance_model
from repro.taxonomy.dag import LabelDAG


class ZeroShotEntail(WeaklySupervisedTextClassifier):
    """Flat zero-shot classification by entailment probability."""

    def __init__(self, plm: "PretrainedLM | None" = None, seed=0):
        super().__init__(seed=seed)
        self.plm = plm
        self._relevance = None

    def _fit(self, corpus: Corpus, supervision: Supervision) -> None:
        require(supervision, LabelNames)
        rng = derive_rng(self.rng, "zeroshot")
        if self.plm is None:
            self.plm = get_pretrained_lm(target_corpus=corpus,
                                         seed=int(rng.integers(2**16)) % 7)
        self._relevance = get_relevance_model(self.plm)

    def _predict_proba(self, corpus: Corpus) -> np.ndarray:
        assert self.label_set is not None and self._relevance is not None
        scores = self._relevance.relevance_matrix(
            corpus.token_lists(),
            [self.label_set.name_tokens(l) for l in self.label_set],
        )
        totals = scores.sum(axis=1, keepdims=True)
        totals[totals == 0] = 1.0
        return scores / totals


class ZeroShotEntailRanker(MultiLabelTextClassifier):
    """Multi-label variant: raw entailment scores as the ranking."""

    def __init__(self, plm: "PretrainedLM | None" = None, seed=0):
        super().__init__(seed=seed)
        self.plm = plm
        self._relevance = None

    def _fit(self, corpus: Corpus, supervision: Supervision) -> None:
        require(supervision, LabelNames)
        rng = derive_rng(self.rng, "zeroshot-rank")
        if self.plm is None:
            self.plm = get_pretrained_lm(target_corpus=corpus,
                                         seed=int(rng.integers(2**16)) % 7)
        self._relevance = get_relevance_model(self.plm)

    def _score(self, corpus: Corpus) -> np.ndarray:
        assert self.label_set is not None and self._relevance is not None
        return self._relevance.relevance_matrix(
            corpus.token_lists(),
            [self.label_set.name_tokens(l) for l in self.label_set],
        )


class HierZeroShotTC(MultiLabelTextClassifier):
    """Top-down zero-shot taxonomy descent (no training at all)."""

    def __init__(self, dag: LabelDAG, plm: "PretrainedLM | None" = None,
                 beam: int = 2, seed=0):
        super().__init__(seed=seed)
        self.dag = dag
        self.plm = plm
        self.beam = beam
        self._relevance = None

    def _fit(self, corpus: Corpus, supervision: Supervision) -> None:
        require(supervision, LabelNames)
        rng = derive_rng(self.rng, "hier-zeroshot")
        if self.plm is None:
            self.plm = get_pretrained_lm(target_corpus=corpus,
                                         seed=int(rng.integers(2**16)) % 7)
        self._relevance = get_relevance_model(self.plm)

    def _score(self, corpus: Corpus) -> np.ndarray:
        assert self.label_set is not None and self._relevance is not None
        labels = list(self.label_set)
        relevance = self._relevance.relevance_matrix(
            corpus.token_lists(), [self.label_set.name_tokens(l) for l in labels]
        )
        candidates = candidate_matrix(self.dag, relevance, labels,
                                      beam=self.beam, max_candidates=12)
        label_index = {l: i for i, l in enumerate(labels)}
        scores = np.zeros_like(relevance)
        for i, cand in enumerate(candidates):
            for label in cand:
                j = label_index[label]
                scores[i, j] = relevance[i, j]
        return scores
