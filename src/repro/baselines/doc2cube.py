"""Doc2Cube-style dimension-focal allocation (Tao et al. 2018), simplified.

Label vectors start at their seed-word embeddings; documents are assigned
by cosine; label vectors are re-estimated from the most focal (confident)
documents and the loop repeats. Appears in the ConWea table.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import WeaklySupervisedTextClassifier
from repro.core.seeding import derive_rng
from repro.core.supervision import Keywords, LabelNames, Supervision, require
from repro.core.types import Corpus
from repro.embeddings.doc import doc_embeddings
from repro.embeddings.ppmi_svd import PPMISVDEmbeddings
from repro.nn.functional import l2_normalize


class Doc2Cube(WeaklySupervisedTextClassifier):
    """Iterative label-vector refinement with focal documents."""

    def __init__(self, dim: int = 48, iterations: int = 3,
                 focal_fraction: float = 0.3, seed=0):
        super().__init__(seed=seed)
        self.dim = dim
        self.iterations = iterations
        self.focal_fraction = focal_fraction
        self.space: "PPMISVDEmbeddings | None" = None
        self._label_matrix: "np.ndarray | None" = None

    def _fit(self, corpus: Corpus, supervision: Supervision) -> None:
        require(supervision, LabelNames, Keywords)
        assert self.label_set is not None
        rng = derive_rng(self.rng, "doc2cube")
        self.space = PPMISVDEmbeddings(dim=self.dim).fit(
            corpus.token_lists(), seed=int(rng.integers(2**31))
        )
        label_rows = []
        for label in self.label_set:
            seeds = (
                supervision.for_label(label)
                if isinstance(supervision, Keywords)
                else self.label_set.name_tokens(label)
            )
            vecs = [self.space.vector(w) for w in seeds]
            label_rows.append(np.mean(vecs, axis=0))
        labels_matrix = l2_normalize(np.stack(label_rows))
        docs = doc_embeddings(corpus.token_lists(), self.space)
        for _ in range(self.iterations):
            sims = docs @ labels_matrix.T
            assignment = sims.argmax(axis=1)
            confidence = sims.max(axis=1)
            rows = []
            for j in range(len(self.label_set)):
                members = np.flatnonzero(assignment == j)
                if members.size == 0:
                    rows.append(labels_matrix[j])
                    continue
                keep = members[
                    np.argsort(-confidence[members])[
                        : max(1, int(members.size * self.focal_fraction))
                    ]
                ]
                rows.append(docs[keep].mean(axis=0))
            labels_matrix = l2_normalize(np.stack(rows))
        self._label_matrix = labels_matrix

    def _predict_proba(self, corpus: Corpus) -> np.ndarray:
        assert self.space is not None and self._label_matrix is not None
        docs = doc_embeddings(corpus.token_lists(), self.space)
        scores = docs @ self._label_matrix.T
        exp = np.exp((scores - scores.max(axis=1, keepdims=True)) / 0.05)
        return exp / exp.sum(axis=1, keepdims=True)
