"""Few-shot neural baselines trained on the labeled documents only.

The MetaCat table's CNN / HAN / BERT rows: standard classifiers fitted on
the handful of labeled documents (no pseudo data, no self-training) — the
"deep nets need more data than this" rows.
"""

from __future__ import annotations

import numpy as np

from repro.classifiers import (
    AttentiveClassifier,
    LogisticRegression,
    TextCNNClassifier,
)
from repro.core.base import WeaklySupervisedTextClassifier
from repro.core.seeding import derive_rng
from repro.core.supervision import LabeledDocuments, Supervision, require
from repro.core.types import Corpus
from repro.embeddings.ppmi_svd import PPMISVDEmbeddings
from repro.plm.model import PretrainedLM
from repro.plm.provider import get_pretrained_lm
from repro.text.vocabulary import Vocabulary


class _FewShotNeural(WeaklySupervisedTextClassifier):
    """Shared plumbing: fit a token classifier on the labeled docs."""

    def __init__(self, epochs: int = 25, dim: int = 48, seed=0):
        super().__init__(seed=seed)
        self.epochs = epochs
        self.dim = dim
        self._classifier = None

    def _build(self, vocab, table, rng):
        raise NotImplementedError

    def _fit(self, corpus: Corpus, supervision: Supervision) -> None:
        supervision = require(supervision, LabeledDocuments)
        assert self.label_set is not None
        rng = derive_rng(self.rng, type(self).__name__)
        token_lists = corpus.token_lists()
        vocab = Vocabulary.build(token_lists, min_count=1)
        svd = PPMISVDEmbeddings(dim=self.dim).fit(
            token_lists, vocabulary=vocab, seed=int(rng.integers(2**31))
        )
        self._classifier = self._build(vocab, svd.matrix(), rng)
        docs = [d.tokens for d, _ in supervision.pairs()]
        targets = np.array(
            [self.label_set.index(l) for _, l in supervision.pairs()]
        )
        self._classifier.fit(docs, targets, epochs=self.epochs)

    def _predict_proba(self, corpus: Corpus) -> np.ndarray:
        assert self._classifier is not None
        return self._classifier.predict_proba(corpus.token_lists())


class FewShotCNN(_FewShotNeural):
    """TextCNN on the labeled documents only."""

    def _build(self, vocab, table, rng):
        assert self.label_set is not None
        return TextCNNClassifier(vocab, len(self.label_set), dim=self.dim,
                                 embedding_table=table,
                                 seed=int(rng.integers(2**31)))


class FewShotHAN(_FewShotNeural):
    """Attention classifier on the labeled documents only."""

    def _build(self, vocab, table, rng):
        assert self.label_set is not None
        return AttentiveClassifier(vocab, len(self.label_set), dim=self.dim,
                                   embedding_table=table,
                                   seed=int(rng.integers(2**31)))


class FewShotBERT(WeaklySupervisedTextClassifier):
    """PLM head fine-tuned on the labeled documents only."""

    def __init__(self, plm: "PretrainedLM | None" = None, epochs: int = 80, seed=0):
        super().__init__(seed=seed)
        self.plm = plm
        self.epochs = epochs
        self._head: "LogisticRegression | None" = None

    def _fit(self, corpus: Corpus, supervision: Supervision) -> None:
        supervision = require(supervision, LabeledDocuments)
        assert self.label_set is not None
        rng = derive_rng(self.rng, "fewshot-bert")
        if self.plm is None:
            self.plm = get_pretrained_lm(target_corpus=corpus,
                                         seed=int(rng.integers(2**16)) % 7)
        features = self.plm.doc_embeddings(
            [d.tokens for d, _ in supervision.pairs()]
        )
        targets = np.array(
            [self.label_set.index(l) for _, l in supervision.pairs()]
        )
        self._head = LogisticRegression(features.shape[1], len(self.label_set),
                                        seed=int(rng.integers(2**31)))
        self._head.fit(features, targets, epochs=self.epochs)

    def _predict_proba(self, corpus: Corpus) -> np.ndarray:
        assert self._head is not None and self.plm is not None
        return self._head.predict_proba(
            self.plm.doc_embeddings(corpus.token_lists())
        )
