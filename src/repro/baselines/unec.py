"""UNEC-style unsupervised embedding clustering baseline.

Documents are clustered (k = number of classes) in a local static
embedding space; each cluster is mapped to the label whose name embedding
is closest to the cluster centroid. Appears in the WeSTClass table's
LABELS column.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import WeaklySupervisedTextClassifier
from repro.core.seeding import derive_rng
from repro.core.supervision import LabelNames, Supervision, require
from repro.core.types import Corpus
from repro.embeddings.doc import doc_embeddings
from repro.embeddings.ppmi_svd import PPMISVDEmbeddings
from repro.evaluation.clustering import kmeans
from repro.nn.functional import l2_normalize


class UNEC(WeaklySupervisedTextClassifier):
    """k-means over document embeddings + name-based cluster labeling."""

    def __init__(self, dim: int = 48, seed=0):
        super().__init__(seed=seed)
        self.dim = dim
        self.space: "PPMISVDEmbeddings | None" = None
        self._centroids: "np.ndarray | None" = None  # aligned with label order

    def _fit(self, corpus: Corpus, supervision: Supervision) -> None:
        require(supervision, LabelNames)
        assert self.label_set is not None
        rng = derive_rng(self.rng, "unec")
        self.space = PPMISVDEmbeddings(dim=self.dim).fit(
            corpus.token_lists(), seed=int(rng.integers(2**31))
        )
        docs = doc_embeddings(corpus.token_lists(), self.space)
        k = len(self.label_set)
        assignment = kmeans(docs, k, seed=int(rng.integers(2**31)))
        centroids = np.stack(
            [
                docs[assignment == j].mean(axis=0)
                if (assignment == j).any()
                else docs.mean(axis=0)
                for j in range(k)
            ]
        )
        label_vecs = l2_normalize(
            np.stack(
                [
                    np.mean(
                        [self.space.vector(t) for t in self.label_set.name_tokens(l)],
                        axis=0,
                    )
                    for l in self.label_set
                ]
            )
        )
        sims = l2_normalize(centroids) @ label_vecs.T  # (k clusters, k labels)
        # Greedy one-to-one cluster->label matching.
        ordered: dict[int, int] = {}
        flat = [(-sims[c, l], c, l) for c in range(k) for l in range(k)]
        used_c: set[int] = set()
        used_l: set[int] = set()
        for _, c, l in sorted(flat):
            if c in used_c or l in used_l:
                continue
            ordered[l] = c
            used_c.add(c)
            used_l.add(l)
        self._centroids = l2_normalize(
            np.stack([centroids[ordered[l]] for l in range(k)])
        )

    def _predict_proba(self, corpus: Corpus) -> np.ndarray:
        assert self.space is not None and self._centroids is not None
        docs = doc_embeddings(corpus.token_lists(), self.space)
        scores = docs @ self._centroids.T
        exp = np.exp((scores - scores.max(axis=1, keepdims=True)) / 0.05)
        return exp / exp.sum(axis=1, keepdims=True)
