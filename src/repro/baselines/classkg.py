"""ClassKG-style keyword-graph classifier (Zhang et al. 2021), simplified.

Seed keywords form a keyword co-occurrence graph; label affinity
propagates from seeds to co-occurring keywords over the graph, the scored
keyword set pseudo-labels documents, and a classifier trains on the
confident ones — iterated. The strongest weak baseline of the PromptClass
table.
"""

from __future__ import annotations

import numpy as np

from repro.classifiers import AttentiveClassifier
from repro.core.base import WeaklySupervisedTextClassifier
from repro.core.seeding import derive_rng
from repro.core.supervision import Keywords, LabelNames, Supervision, require
from repro.core.types import Corpus
from repro.text.stopwords import STOPWORDS
from repro.text.vocabulary import Vocabulary


class ClassKG(WeaklySupervisedTextClassifier):
    """Keyword-graph label propagation + iterative classifier."""

    def __init__(self, propagation_rounds: int = 2, damping: float = 0.6,
                 iterations: int = 2, epochs: int = 12, window: int = 5, seed=0):
        super().__init__(seed=seed)
        self.propagation_rounds = propagation_rounds
        self.damping = damping
        self.iterations = iterations
        self.epochs = epochs
        self.window = window
        self._classifier = None
        self.keyword_scores: dict = {}

    def _cooccurrence(self, token_lists: list, vocab: Vocabulary):
        from repro.embeddings.ppmi_svd import cooccurrence_matrix, ppmi

        return ppmi(cooccurrence_matrix(token_lists, vocab, window=self.window))

    def _fit(self, corpus: Corpus, supervision: Supervision) -> None:
        require(supervision, LabelNames, Keywords)
        assert self.label_set is not None
        rng = derive_rng(self.rng, "classkg")
        labels = list(self.label_set)
        token_lists = corpus.token_lists()
        vocab = Vocabulary.build(token_lists, min_count=2)
        graph = self._cooccurrence(token_lists, vocab)
        # Row-normalize for propagation.
        row_sums = np.asarray(graph.sum(axis=1)).ravel()
        row_sums[row_sums == 0] = 1.0
        from scipy import sparse

        transition = sparse.diags(1.0 / row_sums) @ graph

        affinity = np.zeros((len(vocab), len(labels)))
        for c, label in enumerate(labels):
            seeds = (
                supervision.for_label(label)
                if isinstance(supervision, Keywords)
                else self.label_set.name_tokens(label)
            )
            for word in seeds:
                if word in vocab:
                    affinity[vocab.id(word), c] = 1.0
        anchor = affinity.copy()
        for _ in range(self.propagation_rounds):
            affinity = (
                self.damping * anchor
                + (1.0 - self.damping) * (transition @ affinity)
            )
        for special_id in vocab.special_ids:
            affinity[special_id] = 0.0
        for word in STOPWORDS:
            if word in vocab:
                affinity[vocab.id(word)] = 0.0
        # Keep only class-dominant keywords: words whose affinity spreads
        # over several classes (graph hubs) indicate nothing.
        sorted_aff = np.sort(affinity, axis=1)
        second_best = sorted_aff[:, -2] if affinity.shape[1] > 1 else 0.0
        dominant = affinity.max(axis=1) >= 1.5 * (second_best + 1e-12)
        affinity[~dominant] = 0.0
        self.keyword_scores = {
            labels[c]: affinity[:, c] for c in range(len(labels))
        }

        from repro.embeddings.ppmi_svd import PPMISVDEmbeddings
        from repro.methods.conwea.ranking import label_term_scores

        svd = PPMISVDEmbeddings(dim=32).fit(token_lists, vocabulary=vocab,
                                            seed=int(rng.integers(2**31)))
        classifier_seed = int(rng.integers(2**31))
        for _ in range(self.iterations):
            doc_scores = np.zeros((len(token_lists), len(labels)))
            for i, tokens in enumerate(token_lists):
                for token in tokens:
                    j = vocab.id(token)
                    if j != vocab.unk_id:
                        doc_scores[i] += affinity[j]
            totals = doc_scores.sum(axis=1)
            confident = totals > np.quantile(totals, 0.3)
            hard = doc_scores.argmax(axis=1)
            take = np.flatnonzero(confident)
            self._classifier = AttentiveClassifier(
                vocab, len(labels), dim=32, embedding_table=svd.matrix(),
                seed=classifier_seed,
            )
            self._classifier.fit([token_lists[i] for i in take], hard[take],
                                 epochs=self.epochs)
            proba = self._classifier.predict_proba(token_lists)
            # Classifier feedback re-scores the keyword graph: comparative
            # term scores over confidently-predicted documents, restricted
            # to class-dominant words (hubs stay zeroed).
            sure = np.flatnonzero(proba.max(axis=1) > 0.6)
            if sure.size < len(labels) * 2:
                break
            scores = label_term_scores(
                [token_lists[i] for i in sure],
                [labels[int(proba[i].argmax())] for i in sure],
                labels,
            )
            affinity_new = np.zeros_like(affinity)
            for c, label in enumerate(labels):
                for word, score in scores[label].items():
                    if word in vocab:
                        affinity_new[vocab.id(word), c] = score
            best = affinity_new.max(axis=1)
            runner = np.sort(affinity_new, axis=1)[:, -2] if len(labels) > 1 else 0.0
            affinity_new[best < 1.5 * (runner + 1e-12)] = 0.0
            # Keep a bounded keyword set per class (top 15), scaled below
            # the seed anchors so seeds keep dominating doc scores.
            bounded = np.zeros_like(affinity_new)
            for c in range(len(labels)):
                column = affinity_new[:, c]
                top = np.argsort(-column)[:15]
                top = top[column[top] > 0]
                if top.size:
                    bounded[top, c] = 0.5 * column[top] / column[top].max()
            affinity = np.maximum(anchor, bounded)

    def _predict_proba(self, corpus: Corpus) -> np.ndarray:
        assert self._classifier is not None
        return self._classifier.predict_proba(corpus.token_lists())
