"""BERT with simple match (the LOTClass table's weak PLM baseline).

Counts label-name occurrences; documents with no match receive a uniform
distribution (the baseline's whole point is that string matching alone
has poor coverage). No training.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import WeaklySupervisedTextClassifier
from repro.core.supervision import LabelNames, Supervision, require
from repro.core.types import Corpus
from repro.plm.model import PretrainedLM


class BertSimpleMatch(WeaklySupervisedTextClassifier):
    """Label-name counting; uniform fallback for unmatched documents.

    The ``plm`` argument is accepted for API symmetry with the other
    PLM-family baselines but unused — simple match needs no model.
    """

    def __init__(self, plm: "PretrainedLM | None" = None, seed=0):
        super().__init__(seed=seed)
        self.plm = plm

    def _fit(self, corpus: Corpus, supervision: Supervision) -> None:
        require(supervision, LabelNames)

    def _predict_proba(self, corpus: Corpus) -> np.ndarray:
        assert self.label_set is not None
        labels = list(self.label_set)
        name_sets = {l: set(self.label_set.name_tokens(l)) for l in labels}
        counts = np.zeros((len(corpus), len(labels)))
        for i, doc in enumerate(corpus):
            for j, label in enumerate(labels):
                counts[i, j] = sum(doc.tokens.count(t) for t in name_sets[label])
        proba = np.full_like(counts, 1.0 / len(labels))
        matched = counts.sum(axis=1) > 0
        proba[matched] = counts[matched] / counts[matched].sum(axis=1, keepdims=True)
        return proba
