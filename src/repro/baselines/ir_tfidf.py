"""IR with TF-IDF: retrieval-style classification from seed queries.

Each class is a query (its label name, keywords, or the top TF-IDF terms
of its labeled documents); documents are assigned to the class whose query
they match best under TF-IDF cosine. The weakest baseline in the WeSTClass
and ConWea tables.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import WeaklySupervisedTextClassifier
from repro.core.supervision import (
    Keywords,
    LabeledDocuments,
    LabelNames,
    Supervision,
    require,
)
from repro.core.types import Corpus
from repro.text.tfidf import TfidfVectorizer


class IRWithTfidf(WeaklySupervisedTextClassifier):
    """TF-IDF retrieval against per-class seed queries."""

    def __init__(self, seed=0):
        super().__init__(seed=seed)
        self._vectorizer: "TfidfVectorizer | None" = None
        self._query_matrix: "np.ndarray | None" = None

    def _queries(self, supervision: Supervision) -> list:
        assert self.label_set is not None
        if isinstance(supervision, Keywords):
            return [supervision.for_label(l) for l in self.label_set]
        if isinstance(supervision, LabelNames):
            return [self.label_set.name_tokens(l) for l in self.label_set]
        supervision = require(supervision, LabeledDocuments)
        assert self._vectorizer is not None
        queries = []
        for label in self.label_set:
            docs = supervision.for_label(label)
            terms = self._vectorizer.top_terms([d.tokens for d in docs], k=10)
            queries.append(sorted({t for doc_terms in terms for t in doc_terms}))
        return queries

    def _fit(self, corpus: Corpus, supervision: Supervision) -> None:
        require(supervision, LabelNames, Keywords, LabeledDocuments)
        self._vectorizer = TfidfVectorizer()
        self._vectorizer.fit(corpus.token_lists())
        queries = self._queries(supervision)
        self._query_matrix = np.asarray(
            self._vectorizer.transform(queries).todense()
        )

    def _predict_proba(self, corpus: Corpus) -> np.ndarray:
        assert self._vectorizer is not None and self._query_matrix is not None
        docs = self._vectorizer.transform(corpus.token_lists())
        scores = np.asarray((docs @ self._query_matrix.T))
        # Softmax with uniform fallback for score-less documents.
        exp = np.exp((scores - scores.max(axis=1, keepdims=True)) * 10.0)
        return exp / exp.sum(axis=1, keepdims=True)
