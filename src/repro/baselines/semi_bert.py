"""Semi-BERT: PLM head fine-tuned on a fraction of gold training labels.

The TaxoClass table's semi-supervised comparator (30% of the training set)
and the machinery behind the MATCH-at-N-examples rows.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import MultiLabelTextClassifier
from repro.core.seeding import derive_rng
from repro.core.supervision import Supervision
from repro.core.types import Corpus
from repro.nn.layers import Linear
from repro.nn.losses import binary_cross_entropy_with_logits
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor
from repro.plm.model import PretrainedLM
from repro.plm.provider import get_pretrained_lm


class SemiBERT(MultiLabelTextClassifier):
    """One-vs-all PLM head trained on ``fraction`` of gold labels.

    Deliberately *not* weakly supervised: it reads gold labels from the
    corpus for the sampled fraction (a semi-supervised comparator).
    """

    def __init__(self, plm: "PretrainedLM | None" = None, fraction: float = 0.3,
                 epochs: int = 60, seed=0):
        super().__init__(seed=seed)
        self.plm = plm
        self.fraction = fraction
        self.epochs = epochs
        self._head: "Linear | None" = None

    def _fit(self, corpus: Corpus, supervision: Supervision) -> None:
        assert self.label_set is not None
        rng = derive_rng(self.rng, "semi-bert")
        if self.plm is None:
            self.plm = get_pretrained_lm(target_corpus=corpus,
                                         seed=int(rng.integers(2**16)) % 7)
        n = len(corpus)
        take = rng.permutation(n)[: max(len(self.label_set), int(n * self.fraction))]
        features = self.plm.doc_embeddings(
            [corpus[int(i)].tokens for i in take]
        )
        label_index = {l: j for j, l in enumerate(self.label_set)}
        targets = np.zeros((take.size, len(self.label_set)),
                           dtype=features.dtype)
        for row, i in enumerate(take):
            for label in corpus[int(i)].labels:
                if label in label_index:
                    targets[row, label_index[label]] = 1.0
        self._head = Linear(features.shape[1], len(self.label_set),
                            np.random.default_rng(int(rng.integers(2**31))))
        optimizer = Adam(self._head.parameters(), lr=5e-2, weight_decay=1e-4)
        for _ in range(self.epochs):
            order = rng.permutation(take.size)
            for start in range(0, take.size, 64):
                batch = order[start : start + 64]
                logits = self._head(Tensor(features[batch]))
                loss = binary_cross_entropy_with_logits(logits, targets[batch])
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()

    def _score(self, corpus: Corpus) -> np.ndarray:
        assert self._head is not None and self.plm is not None
        features = self.plm.doc_embeddings(corpus.token_lists())
        logits = self._head(Tensor(features)).data
        return 1.0 / (1.0 + np.exp(-logits))
