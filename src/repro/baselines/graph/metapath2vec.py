"""metapath2vec (Dong et al. 2017), simplified.

Meta-path guided random walks over the metadata network feed SGNS.
Word streams anchored at document nodes are added so unseen documents can
embed through their words.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.graph.common import HINEmbeddingBaseline
from repro.core.types import Corpus
from repro.hin.graph import HeterogeneousGraph
from repro.hin.metapath import P_TAG_P, P_USER_P, MetaPath
from repro.hin.random_walk import metapath_random_walks


class Metapath2Vec(HINEmbeddingBaseline):
    """Meta-path guided walks + skip-gram."""

    def __init__(self, dim: int = 48, epochs: int = 4,
                 metapaths: "tuple | None" = None, seed=0):
        super().__init__(dim=dim, epochs=epochs, seed=seed)
        self.metapaths = metapaths

    def _default_paths(self, graph: HeterogeneousGraph) -> list:
        paths = []
        if "user" in graph.node_types:
            paths.append(P_USER_P)
        if "tag" in graph.node_types:
            paths.append(P_TAG_P)
        if "author" in graph.node_types:
            paths.append(MetaPath(("doc", "author", "doc"), name="P-A-P"))
        if "venue" in graph.node_types:
            paths.append(MetaPath(("doc", "venue", "doc"), name="P-V-P"))
        return paths or [MetaPath(("doc", "doc", "doc"),
                                  ("doc-ref", "doc-ref"), name="P-P-P")]

    def _streams(self, graph: HeterogeneousGraph, corpus: Corpus,
                 rng: np.random.Generator) -> list:
        streams: list[list[str]] = []
        paths = list(self.metapaths or self._default_paths(graph))
        for path in paths:
            streams.extend(
                metapath_random_walks(graph, path, walks_per_node=3,
                                      walk_length=12, seed=rng)
            )
        # Word anchoring streams.
        for doc in corpus:
            streams.append([f"doc:{doc.doc_id}"] + list(doc.tokens))
        return streams
