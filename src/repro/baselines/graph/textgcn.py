"""TextGCN (Yao et al. 2019) in numpy.

A two-layer graph convolution over the word-document graph: doc-word
edges weighted by TF-IDF, word-word edges by PMI, identity self-loops,
symmetric normalization. Transductive: the graph is built over train and
test documents together at prediction time (as in the paper), with
supervision only on the labeled training documents.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.core.base import WeaklySupervisedTextClassifier
from repro.core.seeding import derive_rng
from repro.core.supervision import LabeledDocuments, Supervision, require
from repro.core.types import Corpus
from repro.embeddings.ppmi_svd import cooccurrence_matrix, ppmi
from repro.nn.layers import Linear
from repro.nn.losses import cross_entropy
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor, get_default_dtype
from repro.text.tfidf import TfidfVectorizer
from repro.text.vocabulary import Vocabulary


def _normalized_adjacency(adj: sparse.csr_matrix) -> sparse.csr_matrix:
    adj = adj + sparse.eye(adj.shape[0], format="csr")
    degrees = np.asarray(adj.sum(axis=1)).ravel()
    degrees[degrees == 0] = 1.0
    inv_sqrt = sparse.diags(1.0 / np.sqrt(degrees))
    return inv_sqrt @ adj @ inv_sqrt


class TextGCN(WeaklySupervisedTextClassifier):
    """Two-layer GCN over the heterogeneous word-document graph."""

    def __init__(self, hidden: int = 48, epochs: int = 60, lr: float = 2e-2,
                 seed=0):
        super().__init__(seed=seed)
        self.hidden = hidden
        self.epochs = epochs
        self.lr = lr
        self._supervision: "LabeledDocuments | None" = None
        self._train_corpus: "Corpus | None" = None

    def _fit(self, corpus: Corpus, supervision: Supervision) -> None:
        self._supervision = require(supervision, LabeledDocuments)
        self._train_corpus = corpus

    def _build_graph(self, docs: list) -> tuple:
        token_lists = [d.tokens for d in docs]
        vocab = Vocabulary.build(token_lists, min_count=2)
        n_docs, n_words = len(docs), len(vocab)
        vectorizer = TfidfVectorizer(min_count=2)
        tfidf = vectorizer.fit_transform(token_lists)
        # Map vectorizer vocabulary columns onto the graph's word indices.
        assert vectorizer.vocabulary is not None
        col_map = np.array(
            [vocab.id(vectorizer.vocabulary.token(j))
             for j in range(len(vectorizer.vocabulary))]
        )
        coo = tfidf.tocoo()
        doc_word = sparse.csr_matrix(
            (coo.data, (coo.row, col_map[coo.col])), shape=(n_docs, n_words)
        )
        word_word = ppmi(cooccurrence_matrix(token_lists, vocab, window=5))
        adj = sparse.bmat(
            [
                [None, doc_word],
                [doc_word.T, word_word],
            ],
            format="csr",
        )
        return _normalized_adjacency(adj), vocab, n_docs

    def _predict_proba(self, corpus: Corpus) -> np.ndarray:
        assert self._supervision is not None and self._train_corpus is not None
        assert self.label_set is not None
        rng = derive_rng(self.rng, "textgcn")
        docs = list(self._train_corpus) + list(corpus)
        adj, vocab, n_docs = self._build_graph(docs)
        n_nodes = adj.shape[0]

        labeled_idx = []
        labeled_targets = []
        positions = {d.doc_id: i for i, d in enumerate(docs)}
        for doc, label in self._supervision.pairs():
            if doc.doc_id in positions:
                labeled_idx.append(positions[doc.doc_id])
                labeled_targets.append(self.label_set.index(label))
        labeled_idx = np.asarray(labeled_idx)
        labeled_targets = np.asarray(labeled_targets)

        node_rng = np.random.default_rng(int(rng.integers(2**31)))
        # One-hot input features realized as a trainable embedding (the
        # TextGCN formulation with X = I folds the first layer's weight
        # into per-node vectors).
        embed = Tensor(node_rng.normal(0, 0.05, size=(n_nodes, self.hidden)),
                       requires_grad=True, dtype=get_default_dtype())
        out_layer = Linear(self.hidden, len(self.label_set),
                           np.random.default_rng(int(rng.integers(2**31))))
        optimizer = Adam([embed] + out_layer.parameters(), lr=self.lr,
                         weight_decay=1e-4)
        adj_dense = None
        if n_nodes <= 4000:
            adj_dense = Tensor(np.asarray(adj.todense()),
                               dtype=get_default_dtype())
        for _ in range(self.epochs):
            if adj_dense is not None:
                hidden = (adj_dense @ embed).relu()
                logits_all = adj_dense @ out_layer(hidden)
            else:  # pragma: no cover - large-graph fallback
                hidden = Tensor(adj @ embed.data).relu()
                logits_all = Tensor(adj @ out_layer(hidden).data)
            logits = logits_all[labeled_idx]
            loss = cross_entropy(logits, labeled_targets)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        if adj_dense is not None:
            hidden = (adj_dense @ embed).relu()
            logits_all = (adj_dense @ out_layer(hidden)).data
        else:  # pragma: no cover
            hidden = np.maximum(adj @ embed.data, 0.0)
            logits_all = adj @ out_layer(Tensor(hidden)).data
        test_logits = logits_all[len(self._train_corpus) : n_docs]
        shifted = test_logits - test_logits.max(axis=1, keepdims=True)
        proba = np.exp(shifted)
        return proba / proba.sum(axis=1, keepdims=True)
