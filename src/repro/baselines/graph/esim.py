"""ESim (Shang et al. 2016), simplified: edge-sampling HIN embedding.

Instead of long walks, short edge-hop streams are sampled uniformly over
typed edges, which is ESim's proximity objective under SGNS.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.graph.common import HINEmbeddingBaseline
from repro.core.types import Corpus
from repro.hin.graph import HeterogeneousGraph


class ESim(HINEmbeddingBaseline):
    """Typed edge sampling + skip-gram."""

    def __init__(self, dim: int = 48, epochs: int = 4, samples_per_node: int = 6,
                 seed=0):
        super().__init__(dim=dim, epochs=epochs, seed=seed)
        self.samples_per_node = samples_per_node

    def _streams(self, graph: HeterogeneousGraph, corpus: Corpus,
                 rng: np.random.Generator) -> list:
        streams: list[list[str]] = []
        for node in graph.nodes():
            neighbours = graph.neighbors(node)
            if not neighbours:
                continue
            for _ in range(self.samples_per_node):
                hop1 = neighbours[int(rng.integers(0, len(neighbours)))]
                second = graph.neighbors(hop1)
                stream = [f"{node[0]}:{node[1]}", f"{hop1[0]}:{hop1[1]}"]
                if second:
                    hop2 = second[int(rng.integers(0, len(second)))]
                    stream.append(f"{hop2[0]}:{hop2[1]}")
                streams.append(stream)
        for doc in corpus:
            streams.append([f"doc:{doc.doc_id}"] + list(doc.tokens))
        return streams
