"""Graph-based baselines over the heterogeneous metadata network."""

from repro.baselines.graph.esim import ESim
from repro.baselines.graph.hin2vec import HIN2Vec
from repro.baselines.graph.metapath2vec import Metapath2Vec
from repro.baselines.graph.textgcn import TextGCN

__all__ = ["ESim", "Metapath2Vec", "HIN2Vec", "TextGCN"]
