"""Shared plumbing for HIN-embedding baselines.

Each baseline produces node embeddings over the corpus's metadata network
(documents included); classification is a logistic head over document-node
embeddings trained on the few labeled documents, with a word-embedding
fallback for test documents that have no node (unseen at embedding time).
"""

from __future__ import annotations

import numpy as np

from repro.classifiers import LogisticRegression
from repro.core.base import WeaklySupervisedTextClassifier
from repro.core.seeding import derive_rng
from repro.core.supervision import LabeledDocuments, Supervision, require
from repro.core.types import Corpus
from repro.embeddings.word2vec import Word2Vec
from repro.hin.graph import HeterogeneousGraph
from repro.nn.functional import l2_normalize


class HINEmbeddingBaseline(WeaklySupervisedTextClassifier):
    """Template: build graph -> node streams -> SGNS -> logistic head."""

    def __init__(self, dim: int = 48, epochs: int = 4, seed=0):
        super().__init__(seed=seed)
        self.dim = dim
        self.epochs = epochs
        self.model: "Word2Vec | None" = None
        self._head: "LogisticRegression | None" = None

    # -- subclass hook -------------------------------------------------------
    def _streams(self, graph: HeterogeneousGraph, corpus: Corpus,
                 rng: np.random.Generator) -> list:
        """Token streams over graph nodes (and optionally words)."""
        raise NotImplementedError

    # -- shared pipeline -------------------------------------------------------
    def _doc_vector(self, doc) -> np.ndarray:
        """Mean of the document's metadata-entity vectors.

        Graph-embedding baselines are *structure-only*: they never read
        the text (the MetaCat paper's central criticism of them). A test
        document is represented by the embeddings of the entities it
        attaches to; documents with no known entity get a zero vector.
        """
        assert self.model is not None and self.model.vocabulary is not None
        vocab = self.model.vocabulary
        meta = doc.metadata
        entities = []
        if "user" in meta:
            entities.append(f"user:{meta['user']}")
        for author in meta.get("authors", []):
            entities.append(f"author:{author}")
        if "venue" in meta:
            entities.append(f"venue:{meta['venue']}")
        for tag in meta.get("tags", []):
            entities.append(f"tag:{tag}")
        entities = [e for e in entities if e in vocab]
        if not entities:
            return np.zeros(self.dim)
        vecs = [self.model.vector(e) for e in entities]
        return l2_normalize(np.mean(vecs, axis=0)[None, :])[0]

    def _fit(self, corpus: Corpus, supervision: Supervision) -> None:
        supervision = require(supervision, LabeledDocuments)
        assert self.label_set is not None
        rng = derive_rng(self.rng, type(self).__name__)
        graph = HeterogeneousGraph.from_corpus(corpus)
        streams = self._streams(graph, corpus, rng)
        self.model = Word2Vec(dim=self.dim, window=4, epochs=self.epochs,
                              seed=int(rng.integers(2**31)))
        self.model.fit(streams)
        features = np.stack(
            [self._doc_vector(doc) for doc, _ in supervision.pairs()]
        )
        targets = np.array(
            [self.label_set.index(l) for _, l in supervision.pairs()]
        )
        self._head = LogisticRegression(self.dim, len(self.label_set),
                                        seed=int(rng.integers(2**31)))
        self._head.fit(features, targets, epochs=80)

    def _predict_proba(self, corpus: Corpus) -> np.ndarray:
        assert self._head is not None
        features = np.stack([self._doc_vector(d) for d in corpus])
        return self._head.predict_proba(features)
