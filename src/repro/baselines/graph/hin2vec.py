"""HIN2Vec (Fu et al. 2017), simplified.

Relation-aware streams: each sampled hop is annotated with a relation
token (the typed edge), so the skip-gram must also predict the relation —
HIN2Vec's joint node/relation objective flattened into one vocabulary.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.graph.common import HINEmbeddingBaseline
from repro.core.types import Corpus
from repro.hin.graph import HeterogeneousGraph


class HIN2Vec(HINEmbeddingBaseline):
    """Relation-annotated random walks + skip-gram."""

    def __init__(self, dim: int = 48, epochs: int = 4, walks_per_node: int = 4,
                 walk_length: int = 10, seed=0):
        super().__init__(dim=dim, epochs=epochs, seed=seed)
        self.walks_per_node = walks_per_node
        self.walk_length = walk_length

    def _streams(self, graph: HeterogeneousGraph, corpus: Corpus,
                 rng: np.random.Generator) -> list:
        streams: list[list[str]] = []
        for start in graph.nodes():
            for _ in range(self.walks_per_node):
                node = start
                walk = [f"{node[0]}:{node[1]}"]
                while len(walk) < self.walk_length:
                    neighbours = graph.neighbors(node)
                    if not neighbours:
                        break
                    nxt = neighbours[int(rng.integers(0, len(neighbours)))]
                    walk.append(f"rel:{node[0]}-{nxt[0]}")
                    walk.append(f"{nxt[0]}:{nxt[1]}")
                    node = nxt
                if len(walk) > 1:
                    streams.append(walk)
        for doc in corpus:
            streams.append([f"doc:{doc.doc_id}"] + list(doc.tokens))
        return streams
