"""MATCH: metadata-aware supervised multi-label classification, simplified.

The MICoL table's supervised comparator at varying training-set sizes.
A one-vs-all head over PLM document embeddings concatenated with pooled
metadata-entity embeddings, trained on ``n_train_examples`` gold-labeled
documents — the knob behind the table's 10K/50K/100K/full rows (scaled).
"""

from __future__ import annotations

import numpy as np

from repro.core.base import MultiLabelTextClassifier
from repro.core.seeding import derive_rng
from repro.core.supervision import Supervision
from repro.core.types import Corpus
from repro.nn.layers import Linear
from repro.nn.losses import binary_cross_entropy_with_logits
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor, get_default_dtype
from repro.plm.model import PretrainedLM
from repro.plm.provider import get_pretrained_lm


class MATCH(MultiLabelTextClassifier):
    """Supervised multi-label head with metadata features.

    Reads gold labels for ``n_train_examples`` random training documents
    (a supervised comparator, not a weakly-supervised method).
    """

    def __init__(self, plm: "PretrainedLM | None" = None,
                 n_train_examples: "int | None" = None, epochs: int = 60,
                 seed=0):
        super().__init__(seed=seed)
        self.plm = plm
        self.n_train_examples = n_train_examples
        self.epochs = epochs
        self._head: "Linear | None" = None
        self._entity_vectors: dict = {}

    def _metadata_features(self, corpus: Corpus) -> np.ndarray:
        """Mean embedding of each doc's metadata entity ids (hash trick)."""
        assert self.plm is not None
        dim = 16
        out = np.zeros((len(corpus), dim), dtype=get_default_dtype())
        for i, doc in enumerate(corpus):
            entities = []
            meta = doc.metadata
            if "venue" in meta:
                entities.append(("venue", meta["venue"]))
            for author in meta.get("authors", []):
                entities.append(("author", author))
            if not entities:
                continue
            vecs = []
            for entity in entities:
                if entity not in self._entity_vectors:
                    # crc32, not hash(): stable across processes.
                    import zlib

                    entity_seed = zlib.crc32(repr(entity).encode()) % (2**31)
                    rng = np.random.default_rng(entity_seed)
                    self._entity_vectors[entity] = rng.standard_normal(dim) / 4.0
                vecs.append(self._entity_vectors[entity])
            out[i] = np.mean(vecs, axis=0)
        return out

    def _features(self, corpus: Corpus) -> np.ndarray:
        assert self.plm is not None
        text = self.plm.doc_embeddings(corpus.token_lists())
        return np.concatenate([text, self._metadata_features(corpus)], axis=1)

    def _fit(self, corpus: Corpus, supervision: Supervision) -> None:
        assert self.label_set is not None
        rng = derive_rng(self.rng, "match")
        if self.plm is None:
            self.plm = get_pretrained_lm(target_corpus=corpus,
                                         seed=int(rng.integers(2**16)) % 7)
        n = len(corpus)
        budget = self.n_train_examples or n
        take = rng.permutation(n)[: min(budget, n)]
        subset = corpus.subset([int(i) for i in take])
        features = self._features(subset)
        label_index = {l: j for j, l in enumerate(self.label_set)}
        targets = np.zeros((len(subset), len(self.label_set)),
                           dtype=features.dtype)
        for row, doc in enumerate(subset):
            for label in doc.labels:
                if label in label_index:
                    targets[row, label_index[label]] = 1.0
        self._head = Linear(features.shape[1], len(self.label_set),
                            np.random.default_rng(int(rng.integers(2**31))))
        optimizer = Adam(self._head.parameters(), lr=5e-2, weight_decay=1e-4)
        for _ in range(self.epochs):
            order = rng.permutation(len(subset))
            for start in range(0, len(subset), 64):
                batch = order[start : start + 64]
                logits = self._head(Tensor(features[batch]))
                loss = binary_cross_entropy_with_logits(logits, targets[batch])
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()

    def _score(self, corpus: Corpus) -> np.ndarray:
        assert self._head is not None
        logits = self._head(Tensor(self._features(corpus))).data
        return 1.0 / (1.0 + np.exp(-logits))
