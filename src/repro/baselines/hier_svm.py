"""Hier-SVM: per-node linear SVMs over TF-IDF features (WeSHClass baseline).

Each internal tree node trains a one-vs-rest linear SVM (hinge loss) over
its children from the few labeled documents; prediction descends greedily.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import WeaklySupervisedTextClassifier
from repro.core.seeding import derive_rng
from repro.core.supervision import LabeledDocuments, Supervision, require
from repro.core.types import Corpus
from repro.nn.layers import Linear
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor, get_default_dtype
from repro.taxonomy.tree import ROOT, LabelTree
from repro.text.tfidf import TfidfVectorizer


def _train_linear_svm(features: np.ndarray, targets: np.ndarray, n_classes: int,
                      rng: np.random.Generator, epochs: int = 40,
                      margin: float = 1.0) -> Linear:
    """Multiclass hinge-loss (Crammer-Singer style) linear model."""
    linear = Linear(features.shape[1], n_classes, rng)
    optimizer = Adam(linear.parameters(), lr=5e-2, weight_decay=1e-4)
    n = features.shape[0]
    for _ in range(epochs):
        order = rng.permutation(n)
        for start in range(0, n, 64):
            take = order[start : start + 64]
            logits = linear(Tensor(features[take]))
            correct_mask = np.zeros((take.size, n_classes),
                                    dtype=features.dtype)
            correct_mask[np.arange(take.size), targets[take]] = 1.0
            correct = (logits * Tensor(correct_mask)).sum(axis=1, keepdims=True)
            violations = (logits - correct + margin) * Tensor(1.0 - correct_mask)
            loss = violations.relu().sum(axis=1).mean()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
    return linear


class HierSVM(WeaklySupervisedTextClassifier):
    """Greedy descent over per-node linear SVMs."""

    def __init__(self, tree: LabelTree, seed=0):
        super().__init__(seed=seed)
        self.tree = tree
        self._vectorizer: "TfidfVectorizer | None" = None
        self._local: dict = {}

    def _fit(self, corpus: Corpus, supervision: Supervision) -> None:
        supervision = require(supervision, LabeledDocuments)
        assert self.label_set is not None
        rng = derive_rng(self.rng, "hier-svm")
        self._vectorizer = TfidfVectorizer(max_size=2000)
        self._vectorizer.fit(corpus.token_lists())
        pairs = supervision.pairs()
        for parent in [ROOT] + self.tree.internal():
            children = self.tree.children(parent)
            if len(children) < 2:
                continue
            features, targets = [], []
            for doc, leaf in pairs:
                path = set(self.tree.path_to_root(leaf))
                hits = [i for i, c in enumerate(children) if c in path]
                if hits:
                    features.append(doc.tokens)
                    targets.append(hits[0])
            if len(set(targets)) < 2:
                continue
            mat = np.asarray(self._vectorizer.transform(features).todense(),
                             dtype=get_default_dtype())
            model = _train_linear_svm(
                mat, np.asarray(targets), len(children),
                np.random.default_rng(int(rng.integers(2**31))),
            )
            self._local[parent] = (model, children)

    def _predict_proba(self, corpus: Corpus) -> np.ndarray:
        assert self.label_set is not None and self._vectorizer is not None
        mat = np.asarray(self._vectorizer.transform(corpus.token_lists()).todense())
        out = np.zeros((len(corpus), len(self.label_set)))
        for i in range(mat.shape[0]):
            node = ROOT
            while node in self._local:
                model, children = self._local[node]
                logits = model(Tensor(mat[i : i + 1])).data[0]
                node = children[int(logits.argmax())]
            if node in self.label_set:
                out[i, self.label_set.index(node)] = 1.0
        empty = out.sum(axis=1) == 0
        out[empty] = 1.0 / len(self.label_set)
        return out
