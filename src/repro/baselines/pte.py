"""PTE: predictive text embedding (Tang et al. 2015), simplified.

Heterogeneous skip-gram over word-word, word-document, and word-label
edges (labels from the supervision's labeled documents). Documents embed
as the mean of their word vectors; a logistic head trained on the labeled
documents classifies. Appears in the WeSTClass and MetaCat tables.
"""

from __future__ import annotations

import numpy as np

from repro.classifiers import LogisticRegression
from repro.core.base import WeaklySupervisedTextClassifier
from repro.core.seeding import derive_rng
from repro.core.supervision import LabeledDocuments, Supervision, require
from repro.core.types import Corpus
from repro.embeddings.doc import doc_embeddings
from repro.embeddings.word2vec import Word2Vec


class PTE(WeaklySupervisedTextClassifier):
    """Heterogeneous predictive text embeddings + logistic head."""

    def __init__(self, dim: int = 48, epochs: int = 5, seed=0):
        super().__init__(seed=seed)
        self.dim = dim
        self.epochs = epochs
        self.model: "Word2Vec | None" = None
        self._head: "LogisticRegression | None" = None

    def _fit(self, corpus: Corpus, supervision: Supervision) -> None:
        supervision = require(supervision, LabeledDocuments)
        assert self.label_set is not None
        rng = derive_rng(self.rng, "pte")
        # Streams = documents, plus label-token streams for labeled docs
        # (word-label edges), plus doc-token streams (word-doc edges).
        streams = []
        for doc in corpus:
            streams.append([f"__doc__{doc.doc_id}"] + list(doc.tokens))
        for doc, label in supervision.pairs():
            streams.append([f"__label__{label}"] + list(doc.tokens))
        self.model = Word2Vec(dim=self.dim, window=6, epochs=self.epochs,
                              seed=int(rng.integers(2**31)))
        self.model.fit(streams)
        features, targets = [], []
        for doc, label in supervision.pairs():
            features.append(
                doc_embeddings([doc.tokens], self.model)[0]
            )
            targets.append(self.label_set.index(label))
        self._head = LogisticRegression(self.dim, len(self.label_set),
                                        seed=int(rng.integers(2**31)))
        self._head.fit(np.stack(features), np.asarray(targets), epochs=80)

    def _predict_proba(self, corpus: Corpus) -> np.ndarray:
        assert self.model is not None and self._head is not None
        docs = doc_embeddings(corpus.token_lists(), self.model)
        return self._head.predict_proba(docs)
