"""Dataless classification (Chang et al. 2008 style).

Documents and label names are embedded in a *general-knowledge* semantic
space (our stand-in for Wikipedia-ESA: PPMI-SVD embeddings trained on the
synthetic general corpus only, never on the target corpus) and matched by
cosine. :class:`HierDataless` descends a label tree greedily with the same
scorer (the WeSHClass baseline).
"""

from __future__ import annotations

import numpy as np

from repro.core.base import WeaklySupervisedTextClassifier
from repro.core.supervision import LabelNames, Supervision, require
from repro.core.types import Corpus
from repro.datasets.pretraining import general_corpus
from repro.embeddings.doc import doc_embeddings
from repro.embeddings.ppmi_svd import PPMISVDEmbeddings
from repro.nn.functional import l2_normalize
from repro.taxonomy.tree import ROOT, LabelTree

_SPACE_CACHE: dict = {}


def _general_space(dim: int, seed: int, extra_themes: tuple = ()) -> PPMISVDEmbeddings:
    """The external "concept space" documents and labels are matched in.

    Built from a *diluted* general corpus: the benchmark themes are minor
    topics among many unrelated ones, reproducing the coverage/ambiguity
    weaknesses of Wikipedia-concept spaces (a concept space perfectly
    aligned with the evaluation corpus would make Dataless unrealistically
    strong).
    """
    key = (dim, seed, tuple(sorted(extra_themes)))
    if key not in _SPACE_CACHE:
        from repro.core.seeding import ensure_rng
        from repro.datasets.generator import build_world, generate_documents
        from repro.datasets.profiles import ClassSpec, DatasetProfile, MixtureSpec
        from repro.datasets.words import CURATED_LEXICONS

        themes = (
            list(CURATED_LEXICONS)
            + [t for t in extra_themes if t not in CURATED_LEXICONS]
            + [f"othertopic{i}" for i in range(40)]
        )
        classes = tuple(
            ClassSpec(label=f"pt:{t}", theme=t, name=t) for t in themes
        )
        profile = DatasetProfile(
            name="dataless-concepts", classes=classes, n_train=700, n_test=0,
            doc_len=(10, 24), lexicon_size=48,
            mixture=MixtureSpec(core=0.3, ancestor=0.0, ambiguous=0.1,
                                background=0.4, noise=0.2, name_prob=0.5),
        )
        world = build_world(profile)
        docs = generate_documents(world, profile.n_train, ensure_rng(seed), "concept-")
        _SPACE_CACHE[key] = PPMISVDEmbeddings(dim=dim).fit(
            [d.tokens for d in docs], seed=seed
        )
    return _SPACE_CACHE[key]


class Dataless(WeaklySupervisedTextClassifier):
    """Cosine matching in an external semantic space (label names only)."""

    def __init__(self, dim: int = 48, seed=0):
        super().__init__(seed=seed)
        self.dim = dim
        self.space: "PPMISVDEmbeddings | None" = None
        self._label_matrix: "np.ndarray | None" = None

    def _fit(self, corpus: Corpus, supervision: Supervision) -> None:
        require(supervision, LabelNames)
        assert self.label_set is not None
        self.space = _general_space(self.dim, seed=0)
        rows = []
        for label in self.label_set:
            tokens = self.label_set.name_tokens(label)
            vecs = [self.space.vector(t) for t in tokens]
            rows.append(np.mean(vecs, axis=0))
        self._label_matrix = l2_normalize(np.stack(rows))

    def _predict_proba(self, corpus: Corpus) -> np.ndarray:
        assert self.space is not None and self._label_matrix is not None
        docs = doc_embeddings(corpus.token_lists(), self.space)
        scores = docs @ self._label_matrix.T
        exp = np.exp((scores - scores.max(axis=1, keepdims=True)) / 0.05)
        return exp / exp.sum(axis=1, keepdims=True)


class HierDataless(WeaklySupervisedTextClassifier):
    """Greedy top-down dataless descent over a label tree.

    ``concept_themes`` lists topic namespaces the external concept space
    must cover (fine-grained label names are useless when the concept
    space has never seen their topic — the analog of a Wikipedia-ESA
    space covering arXiv's subject names).
    """

    def __init__(self, tree: LabelTree, dim: int = 48,
                 concept_themes: tuple = (), seed=0):
        super().__init__(seed=seed)
        self.tree = tree
        self.dim = dim
        self.concept_themes = tuple(concept_themes)
        self.space: "PPMISVDEmbeddings | None" = None
        self._node_vectors: dict = {}

    def _fit(self, corpus: Corpus, supervision: Supervision) -> None:
        require(supervision, LabelNames)
        self.space = _general_space(self.dim, seed=0,
                                    extra_themes=self.concept_themes)
        for node in self.tree.nodes:
            name = supervision.label_set.names.get(node, node)
            from repro.text.tokenizer import tokenize

            tokens = tokenize(name) or [node]
            vecs = [self.space.vector(t) for t in tokens]
            self._node_vectors[node] = l2_normalize(
                np.mean(vecs, axis=0)[None, :]
            )[0]

    def _predict_proba(self, corpus: Corpus) -> np.ndarray:
        assert self.space is not None and self.label_set is not None
        docs = doc_embeddings(corpus.token_lists(), self.space)
        out = np.zeros((len(corpus), len(self.label_set)))
        for i, vec in enumerate(docs):
            node = ROOT
            while True:
                children = self.tree.children(node)
                if not children:
                    break
                sims = [float(vec @ self._node_vectors[c]) for c in children]
                node = children[int(np.argmax(sims))]
            if node in self.label_set:
                out[i, self.label_set.index(node)] = 1.0
        # Uniform fallback for rows that landed outside the label set.
        empty = out.sum(axis=1) == 0
        out[empty] = 1.0 / len(self.label_set)
        return out
