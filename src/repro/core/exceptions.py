"""Exception hierarchy for the repro package.

All library-raised errors derive from :class:`ReproError` so callers can
catch package failures with a single ``except`` clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class NotFittedError(ReproError):
    """Raised when ``predict`` (or similar) is called before ``fit``."""


class SupervisionError(ReproError):
    """Raised when a method receives a supervision format it cannot consume."""


class ConfigurationError(ReproError):
    """Raised for invalid hyper-parameters or inconsistent configuration."""


class VocabularyError(ReproError):
    """Raised on out-of-vocabulary lookups or invalid vocabulary state."""


class TaxonomyError(ReproError):
    """Raised for malformed label trees or DAGs."""


class ArtifactError(ReproError):
    """Raised for unreadable, corrupt, or tampered model artifacts.

    Every artifact-store load failure — truncated archive, digest
    mismatch, missing payload file, unparseable manifest — surfaces as
    this type with the offending path in the message, never as a bare
    numpy/pickle/zipfile error.
    """


class DanglingReference(ArtifactError):
    """Raised when a registry alias points at a version that no longer exists.

    Distinct from a plain missing version: the alias file itself is the
    corrupt state, so callers can repair (repoint or delete the alias)
    instead of treating the whole model as gone.
    """


class PipelineError(ReproError):
    """Base class for streaming-pipeline failures (`repro.pipeline`).

    Every error raised by the ingestion pipeline — a mis-configured
    stream, a corrupt corpus shard, a failed stage — is a subclass of
    this type, so orchestrator callers can catch pipeline failures with
    a single ``except`` clause. The invariant is enforced by an AST
    lint (``tests/test_error_lint.py``): ``raise`` statements inside
    ``repro.pipeline`` may only construct ``PipelineError`` subclasses.
    """


class CheckpointError(PipelineError):
    """Raised for a missing, corrupt, or future-schema stream checkpoint.

    Distinct from a generic pipeline failure: the checkpoint file itself
    is the bad state, so callers can repair (delete the checkpoint to
    restart the stream from scratch) instead of treating the whole
    corpus store as lost.
    """


class StageFailure(PipelineError):
    """Raised when a pipeline stage cannot process its batch.

    Carries the stage name in the message; the orchestrator checkpoints
    before re-raising, so a failed stage never loses acknowledged work.
    """


class TaxogenError(ReproError):
    """Base class for taxonomy-construction failures (`repro.taxogen`).

    Every error raised while proposing, scoring, or applying taxonomy
    repairs is a subclass of this type, so callers can catch the whole
    construction pipeline with a single ``except`` clause.
    """


class EdgeScoringError(TaxogenError):
    """Raised when parent-child edge affinities cannot be computed.

    Carries the offending node (or the evidence gap) in the message —
    typically a label with no corpus evidence and no surface name, which
    leaves the entailment head nothing to score.
    """


class RepairError(TaxogenError):
    """Raised when a repair plan cannot be built or applied.

    The plan itself is the bad state: an op referencing an unknown node,
    a re-parent that would introduce a cycle, or a plan applied against
    a taxonomy it was not computed for.
    """


class ServingError(ReproError):
    """Base class for model-serving failures (`repro.serve`)."""


class Overloaded(ServingError):
    """Raised when the serving queue is full and a request is shed.

    Backpressure signal: the bounded request queue refuses new work
    instead of stalling the submitting thread.
    """


class DeadlineExceeded(ServingError):
    """Raised when a request's deadline passed before it was served."""
