"""Exception hierarchy for the repro package.

All library-raised errors derive from :class:`ReproError` so callers can
catch package failures with a single ``except`` clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class NotFittedError(ReproError):
    """Raised when ``predict`` (or similar) is called before ``fit``."""


class SupervisionError(ReproError):
    """Raised when a method receives a supervision format it cannot consume."""


class ConfigurationError(ReproError):
    """Raised for invalid hyper-parameters or inconsistent configuration."""


class VocabularyError(ReproError):
    """Raised on out-of-vocabulary lookups or invalid vocabulary state."""


class TaxonomyError(ReproError):
    """Raised for malformed label trees or DAGs."""
