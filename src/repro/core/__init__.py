"""Framework core: shared types, supervision formats, base classes, registry."""

from repro.core.base import MultiLabelTextClassifier, WeaklySupervisedTextClassifier
from repro.core.exceptions import (
    ConfigurationError,
    NotFittedError,
    ReproError,
    SupervisionError,
)
from repro.core.registry import MethodInfo, method_registry, register_method
from repro.core.seeding import derive_rng, ensure_rng
from repro.core.supervision import (
    Keywords,
    LabeledDocuments,
    LabelNames,
    Supervision,
)
from repro.core.types import Corpus, Document, LabelSet

__all__ = [
    "Corpus",
    "Document",
    "LabelSet",
    "Supervision",
    "LabelNames",
    "Keywords",
    "LabeledDocuments",
    "WeaklySupervisedTextClassifier",
    "MultiLabelTextClassifier",
    "ReproError",
    "NotFittedError",
    "SupervisionError",
    "ConfigurationError",
    "ensure_rng",
    "derive_rng",
    "MethodInfo",
    "register_method",
    "method_registry",
]
