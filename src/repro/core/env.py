"""Central accessors for every ``REPRO_*`` environment knob.

The engines grew their env vars independently, each with its own parsing
and its own failure mode (silent fallback, bare ``ValueError`` traceback,
or import-time crash). This module is the single place the environment is
read: every knob has one typed accessor with validation, a documented
default, and a :class:`~repro.core.exceptions.ConfigurationError` naming
the variable and the offending value when parsing fails.

Only the standard library and :mod:`repro.core.exceptions` are imported
here, so every layer of the package (including :mod:`repro.nn` at import
time and :mod:`repro.obs`) can depend on it without cycles.

Knob inventory
--------------
==========================  =============================================
``REPRO_JOBS``              default worker count for table fan-out
``REPRO_ROW_CACHE``         ``0`` disables the row memo store
``REPRO_ROW_CACHE_DIR``     row memo store location
``REPRO_ROW_TIMEOUT``       default per-row timeout (seconds)
``REPRO_ENC_CACHE``         ``0`` disables the encode cache
``REPRO_ENC_CACHE_BYTES``   encode-cache memory-tier budget
``REPRO_ENC_CACHE_DIR``     encode-cache disk tier location
``REPRO_ENC_CACHE_SHARD_DOCS``  docs per mmap disk shard (``0`` = off)
``REPRO_ENGINE_BUCKET``     ``0`` disables length bucketing
``REPRO_ENGINE_INFERENCE_MODE``  ``0`` keeps autograd on read paths
``REPRO_ENGINE_CACHE``      ``0`` skips the cache on model read paths
``REPRO_ENGINE_TOKEN_BUDGET``  padded tokens per inference batch
``REPRO_ENGINE_FUSED_INFER``  ``1`` forces the packed predict-only forward
``REPRO_ENGINE_BLOCK_ROWS``  query-block height for blocked attention
``REPRO_MODEL_DIR``         model-registry root (``repro.serve``)
``REPRO_CORPUS_DIR``        streaming corpus-store root (``repro.pipeline``)
``REPRO_NN_DTYPE``          default compute dtype (float32/float64)
``REPRO_NN_FUSED``          ``0`` selects composite autograd kernels
``REPRO_NN_PROFILE``        ``1`` enables the per-op profile hook
``REPRO_TRACE``             directory for JSONL traces (enables tracing)
==========================  =============================================
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.core.exceptions import ConfigurationError

_FALSY = ("0", "off", "false", "no")
_TRUTHY = ("1", "on", "true", "yes")


def env_raw(name: str) -> "str | None":
    """The raw string value, with empty treated as unset."""
    value = os.environ.get(name)
    return value if value else None


def env_flag(name: str, default: bool) -> bool:
    """Boolean knob: ``0/off/false/no`` vs ``1/on/true/yes``.

    Unset (or empty) yields ``default``; anything unrecognized raises a
    :class:`ConfigurationError` instead of silently counting as truthy.
    """
    raw = env_raw(name)
    if raw is None:
        return default
    lowered = raw.lower()
    if lowered in _FALSY:
        return False
    if lowered in _TRUTHY:
        return True
    raise ConfigurationError(
        f"{name} must be one of {_TRUTHY + _FALSY}, got {raw!r}"
    )


def env_int(name: str, default: "int | None") -> "int | None":
    """Integer knob; a malformed value names the variable, not a traceback."""
    raw = env_raw(name)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        raise ConfigurationError(
            f"{name} must be an integer, got {raw!r}"
        ) from None


def env_float(name: str, default: "float | None") -> "float | None":
    """Float knob; a malformed value names the variable, not a traceback."""
    raw = env_raw(name)
    if raw is None:
        return default
    try:
        return float(raw)
    except ValueError:
        raise ConfigurationError(
            f"{name} must be a number, got {raw!r}"
        ) from None


def env_path(name: str, default: "Path | None" = None) -> "Path | None":
    """Path knob (unset/empty -> ``default``)."""
    raw = env_raw(name)
    return Path(raw) if raw is not None else default


# ---------------------------------------------------------------------------
# Named accessors (one per knob, so call sites never spell raw names)
# ---------------------------------------------------------------------------

def jobs() -> int:
    """Default worker count for table fan-out (``REPRO_JOBS``, min 1)."""
    return max(1, env_int("REPRO_JOBS", 1))


def row_cache_enabled() -> bool:
    """Whether the row memo store is active (``REPRO_ROW_CACHE``)."""
    return env_flag("REPRO_ROW_CACHE", True)


def row_cache_dir() -> Path:
    """Row memo store directory (``REPRO_ROW_CACHE_DIR`` or XDG default)."""
    return env_path("REPRO_ROW_CACHE_DIR",
                    Path.home() / ".cache" / "repro" / "rows")


def row_timeout() -> "float | None":
    """Default per-row timeout in seconds (``REPRO_ROW_TIMEOUT``)."""
    value = env_float("REPRO_ROW_TIMEOUT", None)
    return value if value and value > 0 else None


def enc_cache_enabled() -> bool:
    """Whether the provider builds an encode cache (``REPRO_ENC_CACHE``)."""
    return env_flag("REPRO_ENC_CACHE", True)


def enc_cache_bytes(default: int) -> int:
    """Encode-cache memory budget (``REPRO_ENC_CACHE_BYTES``)."""
    return env_int("REPRO_ENC_CACHE_BYTES", default)


def enc_cache_dir() -> "Path | None":
    """Encode-cache disk tier (``REPRO_ENC_CACHE_DIR``; None = memory only)."""
    return env_path("REPRO_ENC_CACHE_DIR")


def enc_cache_shard_docs() -> int:
    """Docs per mmap disk shard (``REPRO_ENC_CACHE_SHARD_DOCS``; 0 = off)."""
    return max(0, env_int("REPRO_ENC_CACHE_SHARD_DOCS", 0))


def engine_token_budget() -> "int | None":
    """Padded tokens per inference batch (``REPRO_ENGINE_TOKEN_BUDGET``)."""
    budget = env_int("REPRO_ENGINE_TOKEN_BUDGET", None)
    return budget or None


def engine_fused_infer() -> "bool | None":
    """Packed predict-only forward (``REPRO_ENGINE_FUSED_INFER``).

    Returns ``None`` when the knob is unset so callers can distinguish
    "defaulted" from "explicitly forced" — quantized artifacts enable the
    packed path by default but an explicit ``0`` must win.
    """
    raw = env_raw("REPRO_ENGINE_FUSED_INFER")
    if raw is None:
        return None
    return env_flag("REPRO_ENGINE_FUSED_INFER", False)


def model_dir() -> Path:
    """Model-registry root (``REPRO_MODEL_DIR`` or XDG default).

    The versioned registry (:mod:`repro.serve.registry`) stores one
    directory per published model under this root.
    """
    return env_path("REPRO_MODEL_DIR",
                    Path.home() / ".cache" / "repro" / "models")


def corpus_dir() -> Path:
    """Streaming corpus-store root (``REPRO_CORPUS_DIR`` or XDG default).

    The append-only corpus store (:mod:`repro.pipeline.store`) keeps one
    directory per stream under this root: shard files, the predictions
    log, and the resume checkpoint.
    """
    return env_path("REPRO_CORPUS_DIR",
                    Path.home() / ".cache" / "repro" / "corpus")


def nn_dtype() -> str:
    """Default compute dtype name (``REPRO_NN_DTYPE``)."""
    return env_raw("REPRO_NN_DTYPE") or "float32"


def nn_fused() -> bool:
    """Whether fused training kernels are active (``REPRO_NN_FUSED``)."""
    return env_flag("REPRO_NN_FUSED", True)


def nn_profile() -> bool:
    """Whether the per-op profile hook is requested (``REPRO_NN_PROFILE``)."""
    return env_flag("REPRO_NN_PROFILE", False)


def trace_dir() -> "Path | None":
    """Trace output directory (``REPRO_TRACE``; None = tracing off)."""
    return env_path("REPRO_TRACE")
