"""Deterministic randomness plumbing.

Every stochastic component in the library accepts either an integer seed, a
:class:`numpy.random.Generator`, or ``None``. :func:`ensure_rng` normalizes
those into a ``Generator``; :func:`derive_rng` deterministically forks child
generators for subcomponents so that, for example, the pseudo-document
sampler and the classifier initializer of WeSTClass never share a stream.
"""

from __future__ import annotations

import hashlib

import numpy as np

SeedLike = "int | np.random.Generator | None"


def ensure_rng(seed: "int | np.random.Generator | None") -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` produces a fresh nondeterministic generator, an ``int`` seeds a
    new generator, and an existing generator is returned unchanged.
    """
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise TypeError(f"seed must be int, Generator, or None, got {type(seed)!r}")


def derive_rng(rng: np.random.Generator, *labels: str) -> np.random.Generator:
    """Fork ``rng`` into a child generator keyed by string ``labels``.

    The fork is deterministic given the parent state and labels: the parent
    draws one 64-bit word which is mixed with a hash of the labels. Calling
    with different labels after identical parent histories yields independent,
    reproducible child streams.
    """
    base = int(rng.integers(0, 2**63 - 1))
    digest = hashlib.sha256(("/".join(labels)).encode("utf-8")).digest()
    mix = int.from_bytes(digest[:8], "little") & (2**63 - 1)
    return np.random.default_rng((base ^ mix) & (2**63 - 1))


def spawn_seeds(rng: np.random.Generator, count: int) -> list[int]:
    """Draw ``count`` independent integer seeds from ``rng``."""
    return [int(s) for s in rng.integers(0, 2**31 - 1, size=count)]
