"""Weak supervision formats.

The tutorial distinguishes two levels of weak supervision:

- **keyword-level**: category names only (:class:`LabelNames`) or a few
  relevant keywords per category (:class:`Keywords`);
- **document-level**: a small set of labeled documents
  (:class:`LabeledDocuments`).

Every method's ``fit`` accepts a :class:`Supervision` instance and raises
:class:`~repro.core.exceptions.SupervisionError` for formats it does not
support (mirroring the tutorial's summary table).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.exceptions import SupervisionError
from repro.core.types import Corpus, Document, LabelSet


@dataclass(frozen=True)
class Supervision:
    """Base class for supervision formats; carries the target label set."""

    label_set: LabelSet

    @property
    def labels(self) -> tuple[str, ...]:
        return self.label_set.labels


@dataclass(frozen=True)
class LabelNames(Supervision):
    """Category names only — the weakest supervision format.

    The surface names inside ``label_set`` are the entire signal
    (LOTClass, X-Class, TaxoClass, MICoL setting).
    """


@dataclass(frozen=True)
class Keywords(Supervision):
    """A few user-provided keywords per category (WeSTClass/ConWea setting).

    ``keywords`` maps each label id to its seed-word list. Seed words may be
    ambiguous across classes; disambiguation is the method's job.
    """

    keywords: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        missing = [l for l in self.label_set.labels if not self.keywords.get(l)]
        if missing:
            raise SupervisionError(f"no keywords supplied for labels: {missing}")

    def for_label(self, label: str) -> list[str]:
        return list(self.keywords[label])


@dataclass(frozen=True)
class LabeledDocuments(Supervision):
    """A small set of labeled documents per category.

    ``documents`` maps each label id to the example documents a user
    annotated (typically a handful per class).
    """

    documents: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        missing = [l for l in self.label_set.labels if not self.documents.get(l)]
        if missing:
            raise SupervisionError(f"no labeled documents for labels: {missing}")

    def for_label(self, label: str) -> list[Document]:
        return list(self.documents[label])

    def as_corpus(self) -> Corpus:
        """All labeled documents flattened into one corpus."""
        docs = [d for label in self.label_set for d in self.documents[label]]
        return Corpus(docs, name="labeled-seed-docs")

    def pairs(self) -> list[tuple[Document, str]]:
        """(document, label) training pairs."""
        return [
            (d, label) for label in self.label_set for d in self.documents[label]
        ]


def require(supervision: Supervision, *allowed: type) -> Supervision:
    """Validate that ``supervision`` is one of the ``allowed`` formats."""
    if not isinstance(supervision, tuple(allowed)):
        names = ", ".join(t.__name__ for t in allowed)
        raise SupervisionError(
            f"{type(supervision).__name__} not supported; expected one of: {names}"
        )
    return supervision
