"""Method registry and capability matrix.

The tutorial closes with a summary table characterizing each surveyed
method along four axes (flat vs. hierarchical, single- vs. multi-label,
supervision format, static embedding vs. pre-trained LM). The registry
records exactly those attributes per method so the summary table bench
(`T-SUMMARY`) is generated from code rather than transcribed.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class MethodInfo:
    """Capability descriptor for a registered method."""

    name: str
    venue: str
    structure: str  # "flat", "hierarchical", or "flat & hierarchical"
    label_arity: str  # "single-label", "multi-label", "single-label & path", "path"
    supervision: tuple[str, ...]  # supported supervision format names
    backbone: str  # "embedding" or "pretrained-lm"
    cls: "type | None" = field(default=None, compare=False)


_REGISTRY: dict[str, MethodInfo] = {}


def register_method(info: MethodInfo) -> MethodInfo:
    """Register a method descriptor (idempotent per name)."""
    _REGISTRY[info.name] = info
    return info


def method_registry() -> dict[str, MethodInfo]:
    """A copy of the current registry keyed by method name."""
    # Import triggers registration of all built-in methods.
    import repro.methods  # noqa: F401

    return dict(_REGISTRY)


def summary_rows() -> list[dict]:
    """Rows of the tutorial's summary table, in tutorial order."""
    order = [
        "WeSTClass",
        "ConWea",
        "LOTClass",
        "X-Class",
        "WeSHClass",
        "TaxoClass",
        "MetaCat",
        "MICoL",
        "PromptClass",
    ]
    registry = method_registry()
    rows = []
    for name in order:
        if name not in registry:
            continue
        info = registry[name]
        rows.append(
            {
                "Method": info.name,
                "Flat vs. Hierarchical": info.structure,
                "Single vs. Multi-label": info.label_arity,
                "Supervision Format": " / ".join(info.supervision),
                "Backbone": info.backbone,
            }
        )
    return rows
