"""Fundamental data types: documents, corpora, and label sets.

These types are deliberately simple containers. A :class:`Document` carries
its raw text, a cached token list, optional metadata (author, venue, tags,
...) and optional gold labels (used only for evaluation and for the
document-level supervision formats). A :class:`Corpus` is an ordered,
indexable collection of documents. A :class:`LabelSet` names the target
categories, optionally with surface-name tokens and human descriptions.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field

from repro.core.exceptions import ConfigurationError


@dataclass
class Document:
    """A single text unit (document or sentence) with optional annotations.

    Parameters
    ----------
    doc_id:
        Unique identifier within its corpus.
    text:
        Raw text. May be empty for purely synthetic token documents.
    tokens:
        Pre-tokenized form. When constructed by the dataset generator the
        tokens are authoritative and ``text`` is their join.
    metadata:
        Arbitrary metadata, e.g. ``{"author": "u13", "venue": "v2",
        "tags": ["nlp"], "references": ["d4", "d9"]}``.
    labels:
        Gold label ids (strings). Single-label documents carry one entry;
        multi-label documents several. Hidden from weakly-supervised
        methods except through explicit document-level supervision.
    """

    doc_id: str
    text: str = ""
    tokens: list[str] = field(default_factory=list)
    metadata: dict = field(default_factory=dict)
    labels: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.tokens and self.text:
            # Lazy default tokenization; dataset-generated docs always set
            # tokens explicitly, so this is only the convenience path.
            from repro.text.tokenizer import tokenize

            self.tokens = tokenize(self.text)
        if not self.text and self.tokens:
            self.text = " ".join(self.tokens)

    @property
    def label(self) -> str:
        """The single gold label; raises if the document is multi-label."""
        if len(self.labels) != 1:
            raise ConfigurationError(
                f"document {self.doc_id!r} has {len(self.labels)} labels; "
                "use .labels for multi-label access"
            )
        return self.labels[0]

    def __len__(self) -> int:
        return len(self.tokens)


class Corpus(Sequence[Document]):
    """An ordered, indexable collection of :class:`Document` objects."""

    def __init__(self, documents: Iterable[Document], name: str = "corpus"):
        self._documents: list[Document] = list(documents)
        self.name = name
        self._by_id = {d.doc_id: i for i, d in enumerate(self._documents)}
        if len(self._by_id) != len(self._documents):
            raise ConfigurationError(f"corpus {name!r} contains duplicate doc_ids")

    def __len__(self) -> int:
        return len(self._documents)

    def __iter__(self) -> Iterator[Document]:
        return iter(self._documents)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return Corpus(self._documents[index], name=self.name)
        return self._documents[index]

    def get(self, doc_id: str) -> Document:
        """Look a document up by its id."""
        return self._documents[self._by_id[doc_id]]

    def __contains__(self, item) -> bool:
        if isinstance(item, str):
            return item in self._by_id
        return item in self._documents

    def texts(self) -> list[str]:
        """Raw text of every document, in corpus order."""
        return [d.text for d in self._documents]

    def token_lists(self) -> list[list[str]]:
        """Token list of every document, in corpus order."""
        return [d.tokens for d in self._documents]

    def gold_labels(self) -> list[tuple[str, ...]]:
        """Gold label tuples for every document (evaluation only)."""
        return [d.labels for d in self._documents]

    def subset(self, indices: Iterable[int], name: "str | None" = None) -> "Corpus":
        """A new corpus containing the documents at ``indices``."""
        docs = [self._documents[i] for i in indices]
        return Corpus(docs, name=name or f"{self.name}-subset")

    def __repr__(self) -> str:
        return f"Corpus(name={self.name!r}, size={len(self)})"


@dataclass(frozen=True)
class LabelSet:
    """The categories a classifier predicts over.

    Parameters
    ----------
    labels:
        Canonical label ids, e.g. ``("sports", "politics")``.
    names:
        Human-readable surface name per label (defaults to the id). Surface
        names may be multi-word phrases (TaxoClass setting).
    descriptions:
        Optional one-sentence description per label (MICoL setting).
    """

    labels: tuple[str, ...]
    names: dict = field(default_factory=dict)
    descriptions: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(set(self.labels)) != len(self.labels):
            raise ConfigurationError("duplicate labels in LabelSet")

    def __len__(self) -> int:
        return len(self.labels)

    def __iter__(self) -> Iterator[str]:
        return iter(self.labels)

    def __contains__(self, label: str) -> bool:
        return label in self.labels

    def name_of(self, label: str) -> str:
        """Surface name of ``label`` (falls back to the label id)."""
        return self.names.get(label, label)

    def name_tokens(self, label: str) -> list[str]:
        """Tokenized surface name of ``label``."""
        from repro.text.tokenizer import tokenize

        return tokenize(self.name_of(label))

    def description_of(self, label: str) -> str:
        """Description of ``label`` (falls back to the surface name)."""
        return self.descriptions.get(label, self.name_of(label))

    def index(self, label: str) -> int:
        """Position of ``label`` in the canonical order."""
        return self.labels.index(label)
