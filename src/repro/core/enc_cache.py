"""Cross-method encode cache for PLM document representations.

Every surveyed method re-encodes the same corpora through the same frozen
encoder, so per-document hidden states are cached process-wide, keyed by

- a **namespace**: the owning PLM's content identity (config plus a digest
  of its parameter arrays — stable across processes for identical models),
- a **document key**: a digest of the document's encoded token ids, so two
  surface-different documents that map to the same ids share one entry.

Two tiers:

- a bounded in-memory LRU (default 256 MB, ``REPRO_ENC_CACHE_BYTES``);
  the budget is a hard ceiling — an insert that cannot fit even after
  evicting everything else is itself dropped from the memory tier, so
  ``nbytes`` never exceeds ``max_bytes``;
- an optional on-disk tier (``REPRO_ENC_CACHE_DIR`` or the ``disk_dir``
  argument). By default this is one ``.npz`` per document, and disk hits
  are promoted back into memory. With ``shard_docs > 0``
  (``REPRO_ENC_CACHE_SHARD_DOCS``) documents are instead appended to
  **mmap shards**: flat ``.npy`` files of ``shard_docs`` concatenated
  documents with a JSON offset index alongside. Shard hits are served as
  zero-copy ``np.load(..., mmap_mode="r")`` slice views and are *not*
  promoted into the memory tier — the OS page cache already holds the
  hot pages, so an XL corpus can stream through a small memory budget
  without thrashing the LRU.

Set ``REPRO_ENC_CACHE=0`` to disable the cache entirely (the provider then
wires no cache into the models it builds).
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict
from pathlib import Path

import numpy as np

from repro import obs
from repro.core import env as _env

_DEFAULT_MAX_BYTES = 256 << 20


def doc_key(ids: np.ndarray) -> str:
    """Stable digest of a document's encoded token ids."""
    ids = np.ascontiguousarray(np.asarray(ids, dtype=np.int64))
    return hashlib.blake2b(ids.tobytes(), digest_size=16).hexdigest()


def array_digest(arrays: list, extra: str = "") -> str:
    """Stable digest of a sequence of numpy arrays (model identity).

    ``extra`` folds non-array identity (e.g. a config repr) into the hash.
    """
    h = hashlib.blake2b(digest_size=16)
    if extra:
        h.update(extra.encode("utf-8"))
    for array in arrays:
        h.update(np.ascontiguousarray(array).tobytes())
    return h.hexdigest()


class EncodeCache:
    """Bounded LRU over per-document arrays with an optional disk tier."""

    def __init__(self, max_bytes: int = _DEFAULT_MAX_BYTES,
                 disk_dir: "str | Path | None" = None,
                 shard_docs: int = 0):
        self.max_bytes = int(max_bytes)
        self.disk_dir = Path(disk_dir) if disk_dir else None
        self.shard_docs = int(shard_docs)
        self._entries: "OrderedDict[tuple, np.ndarray]" = OrderedDict()
        self._bytes = 0
        # Sharding state: docs awaiting flush, the per-namespace shard
        # offset index, which .idx.json files were already folded in,
        # and this process's next shard sequence number.
        self._pending: "dict[str, list]" = {}
        self._shard_index: "dict[str, dict]" = {}
        self._scanned: "dict[str, set]" = {}
        self._mmaps: "dict[str, np.ndarray]" = {}
        self._dir_state: "dict[str, int]" = {}
        self._scan_lock = threading.Lock()
        self._shard_seq = 0
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.shard_hits = 0
        self.evictions = 0
        self.rescans = 0

    @classmethod
    def from_env(cls) -> "EncodeCache | None":
        """Cache configured from the environment; None when disabled."""
        if not _env.enc_cache_enabled():
            return None
        return cls(max_bytes=_env.enc_cache_bytes(_DEFAULT_MAX_BYTES),
                   disk_dir=_env.enc_cache_dir(),
                   shard_docs=_env.enc_cache_shard_docs())

    @property
    def sharded(self) -> bool:
        """Whether the disk tier writes mmap shards instead of per-doc npz."""
        return self.disk_dir is not None and self.shard_docs > 0

    # -- lookup ---------------------------------------------------------------
    def get(self, namespace: str, key: str) -> "np.ndarray | None":
        """Cached array for (namespace, key), consulting every tier."""
        entry = self._entries.get((namespace, key))
        if entry is not None:
            self._entries.move_to_end((namespace, key))
            self.hits += 1
            obs.count("enc_cache.hits")
            return entry
        if self.sharded:
            entry = self._shard_get(namespace, key)
            if entry is not None:
                # Served straight off the mmap: no promotion, the page
                # cache is the warm tier for shard-resident documents.
                self.hits += 1
                self.disk_hits += 1
                self.shard_hits += 1
                obs.count("enc_cache.hits")
                obs.count("enc_cache.shard_hits")
                return entry
        if self.disk_dir is not None:
            path = self._disk_path(namespace, key)
            if path.exists():
                try:
                    with np.load(path) as payload:
                        entry = payload["hidden"]
                except (OSError, ValueError, KeyError):
                    entry = None  # partial/corrupt file: treat as a miss
                if entry is not None:
                    self.hits += 1
                    self.disk_hits += 1
                    obs.count("enc_cache.hits")
                    obs.count("enc_cache.disk_hits")
                    self._insert(namespace, key, entry)
                    return entry
        self.misses += 1
        obs.count("enc_cache.misses")
        return None

    def put(self, namespace: str, key: str, value: np.ndarray) -> None:
        """Insert ``value``, evicting least-recently-used entries over budget."""
        self._insert(namespace, key, value)
        if self.sharded:
            pending = self._pending.setdefault(namespace, [])
            pending.append((key, value))
            if len(pending) >= self.shard_docs:
                self._flush_namespace(namespace)
        elif self.disk_dir is not None:
            path = self._disk_path(namespace, key)
            if not path.exists():
                path.parent.mkdir(parents=True, exist_ok=True)
                tmp = path.with_suffix(".tmp.npz")
                np.savez(tmp, hidden=value)
                tmp.replace(path)

    def _insert(self, namespace: str, key: str, value: np.ndarray) -> None:
        full_key = (namespace, key)
        previous = self._entries.pop(full_key, None)
        if previous is not None:
            self._bytes -= previous.nbytes
        if value.nbytes > self.max_bytes:
            # The value alone exceeds the whole budget (e.g. an oversized
            # disk-hit promotion): admitting it would flush every other
            # entry and still leave nbytes over max_bytes. The caller
            # already holds the array (and a disk copy may exist), so the
            # memory tier just declines it — max_bytes is a hard ceiling.
            self.evictions += 1
            return
        self._entries[full_key] = value
        self._bytes += value.nbytes
        while self._bytes > self.max_bytes and len(self._entries) > 1:
            _, evicted = self._entries.popitem(last=False)
            self._bytes -= evicted.nbytes
            self.evictions += 1

    def _disk_path(self, namespace: str, key: str) -> Path:
        assert self.disk_dir is not None
        return self.disk_dir / namespace / f"{key}.npz"

    # -- mmap shards -----------------------------------------------------------
    def _flush_namespace(self, namespace: str) -> None:
        """Write ``namespace``'s pending docs as one mmap shard + index."""
        pending = self._pending.get(namespace) or []
        if not pending:
            return
        self._pending[namespace] = []
        arrays = [np.ascontiguousarray(value) for _, value in pending]
        dtype = np.dtype(arrays[0].dtype)
        flat = np.concatenate(
            [a.reshape(-1).astype(dtype, copy=False) for a in arrays]
        )
        index: dict = {"dtype": str(dtype), "docs": {}}
        offset = 0
        for (key, _), array in zip(pending, arrays):
            index["docs"][key] = [offset, list(array.shape)]
            offset += array.size
        directory = self.disk_dir / namespace
        directory.mkdir(parents=True, exist_ok=True)
        stem = f"shard_{os.getpid()}_{self._shard_seq}"
        self._shard_seq += 1
        data_path = directory / f"{stem}.npy"
        tmp_data = directory / f"{stem}.tmp.npy"
        np.save(tmp_data, flat)
        tmp_data.replace(data_path)
        # The data file lands before its index: readers discover shards
        # through .idx.json files, so a crash between the two renames
        # leaves an orphaned (ignored) .npy, never a dangling index.
        idx_path = directory / f"{stem}.idx.json"
        tmp_idx = directory / f"{stem}.tmp.idx.json"
        tmp_idx.write_text(json.dumps(index))
        tmp_idx.replace(idx_path)
        obs.count("enc_cache.shards_written")

    def flush_shards(self) -> None:
        """Flush every namespace's pending documents to disk shards."""
        if not self.sharded:
            return
        for namespace in list(self._pending):
            self._flush_namespace(namespace)

    def _shard_get(self, namespace: str, key: str) -> "np.ndarray | None":
        """Mmap-backed view of ``key`` from the namespace's shards."""
        docs = self._shard_index.get(namespace, {})
        location = docs.get(key)
        if location is None:
            self._rescan_shards(namespace)
            location = self._shard_index.get(namespace, {}).get(key)
            if location is None:
                return None
        path, offset, shape, dtype = location
        try:
            # One open mmap per shard file: repeated hits are a dict
            # lookup plus a zero-copy slice view, not an np.load each.
            flat = self._mmaps.get(path)
            if flat is None:
                flat = np.load(path, mmap_mode="r")
                self._mmaps[path] = flat
            size = int(np.prod(np.asarray(shape, dtype=np.int64)))
            return flat[offset:offset + size].reshape(shape)
        except (OSError, ValueError):
            # Shard vanished or is unreadable: forget it and miss. The
            # directory-state memo is dropped too, so the next miss
            # rescans even if the deletion didn't touch the dir mtime.
            self._mmaps.pop(path, None)
            self._dir_state.pop(namespace, None)
            idx_name = Path(path).name[: -len(".npy")] + ".idx.json"
            self._scanned.get(namespace, set()).discard(idx_name)
            self._shard_index[namespace] = {
                k: v for k, v in self._shard_index.get(namespace, {}).items()
                if v[0] != path
            }
            return None

    def _rescan_shards(self, namespace: str) -> None:
        """Fold any new shard indexes (e.g. from worker processes) in.

        Memoized on the namespace directory's mtime: when no writer has
        touched the directory since the last scan, this is one ``stat``
        — O(1) on the miss hot path instead of a glob plus JSON reads.
        The state is recorded *before* scanning, so an index landing
        mid-scan bumps the mtime past the memo and the next miss
        rescans.
        """
        directory = self.disk_dir / namespace
        try:
            state = os.stat(directory).st_mtime_ns
        except OSError:
            return  # no directory yet: nothing to fold
        # One scanner at a time: a second thread arriving mid-fold must
        # wait for the complete index rather than skipping names the
        # first thread claimed in `seen` and missing on its lookup.
        with self._scan_lock:
            if self._dir_state.get(namespace) == state:
                return
            self.rescans += 1
            obs.count("enc_cache.rescans")
            seen = self._scanned.setdefault(namespace, set())
            docs = self._shard_index.setdefault(namespace, {})
            for idx_path in sorted(directory.glob("shard_*.idx.json")):
                if idx_path.name in seen:
                    continue
                seen.add(idx_path.name)
                try:
                    index = json.loads(idx_path.read_text())
                except (OSError, ValueError):
                    continue
                data_path = str(
                    idx_path.with_name(
                        idx_path.name[: -len(".idx.json")] + ".npy"))
                dtype = index.get("dtype", "float32")
                for key, (offset, shape) in index.get("docs", {}).items():
                    docs[key] = (data_path, int(offset), list(shape), dtype)
            self._dir_state[namespace] = state

    # -- maintenance ----------------------------------------------------------
    def clear(self) -> None:
        """Drop the in-memory tier (disk entries are left in place)."""
        self._entries.clear()
        self._bytes = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def nbytes(self) -> int:
        """Bytes currently held by the memory tier."""
        return self._bytes

    def stats(self) -> dict:
        """Hit/miss/eviction counters plus current occupancy."""
        return {
            "entries": len(self._entries),
            "bytes": self._bytes,
            "hits": self.hits,
            "misses": self.misses,
            "disk_hits": self.disk_hits,
            "shard_hits": self.shard_hits,
            "evictions": self.evictions,
            "rescans": self.rescans,
        }

    def __repr__(self) -> str:
        return (f"EncodeCache(entries={len(self._entries)}, "
                f"bytes={self._bytes}, max_bytes={self.max_bytes})")
