"""Cross-method encode cache for PLM document representations.

Every surveyed method re-encodes the same corpora through the same frozen
encoder, so per-document hidden states are cached process-wide, keyed by

- a **namespace**: the owning PLM's content identity (config plus a digest
  of its parameter arrays — stable across processes for identical models),
- a **document key**: a digest of the document's encoded token ids, so two
  surface-different documents that map to the same ids share one entry.

Two tiers:

- a bounded in-memory LRU (default 256 MB, ``REPRO_ENC_CACHE_BYTES``),
- an optional on-disk ``.npz`` tier (``REPRO_ENC_CACHE_DIR`` or the
  ``disk_dir`` argument); disk hits are promoted back into memory.

Set ``REPRO_ENC_CACHE=0`` to disable the cache entirely (the provider then
wires no cache into the models it builds).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from pathlib import Path

import numpy as np

from repro import obs
from repro.core import env as _env

_DEFAULT_MAX_BYTES = 256 << 20


def doc_key(ids: np.ndarray) -> str:
    """Stable digest of a document's encoded token ids."""
    ids = np.ascontiguousarray(np.asarray(ids, dtype=np.int64))
    return hashlib.blake2b(ids.tobytes(), digest_size=16).hexdigest()


def array_digest(arrays: list, extra: str = "") -> str:
    """Stable digest of a sequence of numpy arrays (model identity).

    ``extra`` folds non-array identity (e.g. a config repr) into the hash.
    """
    h = hashlib.blake2b(digest_size=16)
    if extra:
        h.update(extra.encode("utf-8"))
    for array in arrays:
        h.update(np.ascontiguousarray(array).tobytes())
    return h.hexdigest()


class EncodeCache:
    """Bounded LRU over per-document arrays with an optional disk tier."""

    def __init__(self, max_bytes: int = _DEFAULT_MAX_BYTES,
                 disk_dir: "str | Path | None" = None):
        self.max_bytes = int(max_bytes)
        self.disk_dir = Path(disk_dir) if disk_dir else None
        self._entries: "OrderedDict[tuple, np.ndarray]" = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.evictions = 0

    @classmethod
    def from_env(cls) -> "EncodeCache | None":
        """Cache configured from the environment; None when disabled."""
        if not _env.enc_cache_enabled():
            return None
        return cls(max_bytes=_env.enc_cache_bytes(_DEFAULT_MAX_BYTES),
                   disk_dir=_env.enc_cache_dir())

    # -- lookup ---------------------------------------------------------------
    def get(self, namespace: str, key: str) -> "np.ndarray | None":
        """Cached array for (namespace, key), consulting both tiers."""
        entry = self._entries.get((namespace, key))
        if entry is not None:
            self._entries.move_to_end((namespace, key))
            self.hits += 1
            obs.count("enc_cache.hits")
            return entry
        if self.disk_dir is not None:
            path = self._disk_path(namespace, key)
            if path.exists():
                try:
                    with np.load(path) as payload:
                        entry = payload["hidden"]
                except (OSError, ValueError, KeyError):
                    entry = None  # partial/corrupt file: treat as a miss
                if entry is not None:
                    self.hits += 1
                    self.disk_hits += 1
                    obs.count("enc_cache.hits")
                    obs.count("enc_cache.disk_hits")
                    self._insert(namespace, key, entry)
                    return entry
        self.misses += 1
        obs.count("enc_cache.misses")
        return None

    def put(self, namespace: str, key: str, value: np.ndarray) -> None:
        """Insert ``value``, evicting least-recently-used entries over budget."""
        self._insert(namespace, key, value)
        if self.disk_dir is not None:
            path = self._disk_path(namespace, key)
            if not path.exists():
                path.parent.mkdir(parents=True, exist_ok=True)
                tmp = path.with_suffix(".tmp.npz")
                np.savez(tmp, hidden=value)
                tmp.replace(path)

    def _insert(self, namespace: str, key: str, value: np.ndarray) -> None:
        full_key = (namespace, key)
        previous = self._entries.pop(full_key, None)
        if previous is not None:
            self._bytes -= previous.nbytes
        self._entries[full_key] = value
        self._bytes += value.nbytes
        while self._bytes > self.max_bytes and len(self._entries) > 1:
            _, evicted = self._entries.popitem(last=False)
            self._bytes -= evicted.nbytes
            self.evictions += 1

    def _disk_path(self, namespace: str, key: str) -> Path:
        assert self.disk_dir is not None
        return self.disk_dir / namespace / f"{key}.npz"

    # -- maintenance ----------------------------------------------------------
    def clear(self) -> None:
        """Drop the in-memory tier (disk entries are left in place)."""
        self._entries.clear()
        self._bytes = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def nbytes(self) -> int:
        """Bytes currently held by the memory tier."""
        return self._bytes

    def stats(self) -> dict:
        """Hit/miss/eviction counters plus current occupancy."""
        return {
            "entries": len(self._entries),
            "bytes": self._bytes,
            "hits": self.hits,
            "misses": self.misses,
            "disk_hits": self.disk_hits,
            "evictions": self.evictions,
        }

    def __repr__(self) -> str:
        return (f"EncodeCache(entries={len(self._entries)}, "
                f"bytes={self._bytes}, max_bytes={self.max_bytes})")
