"""Base classes for weakly-supervised classifiers.

Single-label methods subclass :class:`WeaklySupervisedTextClassifier` and
implement ``_fit`` / ``_predict_proba``. Multi-label methods subclass
:class:`MultiLabelTextClassifier` and implement ``_fit`` / ``_score`` (a
per-label relevance score used both for thresholded label sets and ranking
metrics such as P@k / NDCG@k).
"""

from __future__ import annotations

import abc

import numpy as np

from repro.core.exceptions import NotFittedError
from repro.core.seeding import ensure_rng
from repro.core.supervision import Supervision
from repro.core.types import Corpus, LabelSet


class WeaklySupervisedTextClassifier(abc.ABC):
    """Common interface for single-label weakly-supervised classifiers."""

    def __init__(self, seed: "int | np.random.Generator | None" = 0):
        self.rng = ensure_rng(seed)
        self.label_set: "LabelSet | None" = None
        self._fitted = False

    # -- public API ---------------------------------------------------------
    def fit(self, corpus: Corpus, supervision: Supervision) -> "WeaklySupervisedTextClassifier":
        """Fit on an unlabeled corpus plus weak supervision."""
        self.label_set = supervision.label_set
        self._fit(corpus, supervision)
        self._fitted = True
        return self

    def predict(self, corpus: Corpus) -> list[str]:
        """Predicted label id for every document in ``corpus``."""
        proba = self.predict_proba(corpus)
        assert self.label_set is not None
        indices = np.asarray(proba).argmax(axis=1)
        return [self.label_set.labels[i] for i in indices]

    def predict_proba(self, corpus: Corpus) -> np.ndarray:
        """(n_docs, n_labels) class-probability matrix."""
        self._check_fitted()
        proba = np.asarray(self._predict_proba(corpus), dtype=float)
        return proba

    # -- subclass hooks -----------------------------------------------------
    @abc.abstractmethod
    def _fit(self, corpus: Corpus, supervision: Supervision) -> None:
        """Method-specific training."""

    @abc.abstractmethod
    def _predict_proba(self, corpus: Corpus) -> np.ndarray:
        """Method-specific scoring."""

    # -- helpers ------------------------------------------------------------
    def _check_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(f"{type(self).__name__} is not fitted; call fit() first")

    def __repr__(self) -> str:
        status = "fitted" if self._fitted else "unfitted"
        return f"{type(self).__name__}({status})"


class MultiLabelTextClassifier(abc.ABC):
    """Common interface for multi-label weakly-supervised classifiers."""

    def __init__(self, seed: "int | np.random.Generator | None" = 0):
        self.rng = ensure_rng(seed)
        self.label_set: "LabelSet | None" = None
        self._fitted = False

    def fit(self, corpus: Corpus, supervision: Supervision) -> "MultiLabelTextClassifier":
        """Fit on an unlabeled corpus plus weak supervision."""
        self.label_set = supervision.label_set
        self._fit(corpus, supervision)
        self._fitted = True
        return self

    def score(self, corpus: Corpus) -> np.ndarray:
        """(n_docs, n_labels) relevance scores (higher = more relevant)."""
        self._check_fitted()
        return np.asarray(self._score(corpus), dtype=float)

    def predict(self, corpus: Corpus, threshold: float = 0.5, top_k: "int | None" = None) -> list[tuple[str, ...]]:
        """Predicted label tuples.

        With ``top_k`` set, each document receives exactly its top-k labels;
        otherwise all labels scoring above ``threshold`` (at least one).
        """
        scores = self.score(corpus)
        assert self.label_set is not None
        labels = self.label_set.labels
        out: list[tuple[str, ...]] = []
        for row in scores:
            if top_k is not None:
                idx = np.argsort(-row, kind="stable")[:top_k]
            else:
                idx = np.flatnonzero(row >= threshold)
                if idx.size == 0:
                    idx = np.array([int(row.argmax())])
            out.append(tuple(labels[i] for i in idx))
        return out

    def rank(self, corpus: Corpus) -> list[list[str]]:
        """Full label ranking (best first) per document.

        Ties break by label-set index (stable sort), so rankings are
        deterministic across numpy versions and sort algorithms.
        """
        scores = self.score(corpus)
        assert self.label_set is not None
        labels = self.label_set.labels
        return [[labels[i] for i in np.argsort(-row, kind="stable")]
                for row in scores]

    @abc.abstractmethod
    def _fit(self, corpus: Corpus, supervision: Supervision) -> None:
        """Method-specific training."""

    @abc.abstractmethod
    def _score(self, corpus: Corpus) -> np.ndarray:
        """Method-specific scoring."""

    def _check_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(f"{type(self).__name__} is not fitted; call fit() first")

    def __repr__(self) -> str:
        status = "fitted" if self._fitted else "unfitted"
        return f"{type(self).__name__}({status})"
