"""Label tree for hierarchical single-path classification (WeSHClass).

The tree has a virtual ``ROOT``. Every document is associated with one
root-to-leaf path; internal nodes are categories at coarser granularity.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.exceptions import TaxonomyError

ROOT = "<ROOT>"


class LabelTree:
    """A rooted tree over label ids.

    Parameters
    ----------
    parent_of:
        Mapping from each label to its parent label; top-level labels map
        to :data:`ROOT` (or may be omitted and passed via ``top_level``).
    """

    def __init__(self, parent_of: dict):
        self._parent: dict[str, str] = dict(parent_of)
        self._children: dict[str, list[str]] = {ROOT: []}
        for child, parent in self._parent.items():
            if child == ROOT:
                raise TaxonomyError("ROOT cannot be a child")
            self._children.setdefault(parent, []).append(child)
            self._children.setdefault(child, [])
        for parent in list(self._children):
            self._children[parent].sort()
        # Validate: every non-root node reaches ROOT without cycles.
        for node in self._parent:
            seen = set()
            cur = node
            while cur != ROOT:
                if cur in seen:
                    raise TaxonomyError(f"cycle involving {cur!r}")
                seen.add(cur)
                if cur not in self._parent:
                    raise TaxonomyError(f"node {cur!r} has no path to ROOT")
                cur = self._parent[cur]

    # -- structure queries --------------------------------------------------
    @property
    def nodes(self) -> list[str]:
        """All labels (excluding ROOT), in BFS order."""
        out: list[str] = []
        frontier = [ROOT]
        while frontier:
            nxt: list[str] = []
            for node in frontier:
                for child in self._children.get(node, []):
                    out.append(child)
                    nxt.append(child)
            frontier = nxt
        return out

    def children(self, node: str) -> list[str]:
        """Direct children of ``node`` (use ROOT for the top level)."""
        if node not in self._children:
            raise TaxonomyError(f"unknown node {node!r}")
        return list(self._children[node])

    def parent(self, node: str) -> str:
        """Direct parent of ``node`` (ROOT for top-level labels)."""
        if node not in self._parent:
            raise TaxonomyError(f"unknown node {node!r}")
        return self._parent[node]

    def is_leaf(self, node: str) -> bool:
        """True when ``node`` has no children."""
        return not self.children(node)

    def leaves(self) -> list[str]:
        """All leaf labels in BFS order."""
        return [n for n in self.nodes if self.is_leaf(n)]

    def internal(self) -> list[str]:
        """All internal (non-leaf, non-root) labels in BFS order."""
        return [n for n in self.nodes if not self.is_leaf(n)]

    def path_to_root(self, node: str) -> list[str]:
        """Labels from ``node`` up to (excluding) ROOT."""
        path = [node]
        while self._parent[path[-1]] != ROOT:
            path.append(self._parent[path[-1]])
        return path

    def path_from_root(self, leaf: str) -> list[str]:
        """Labels from the top level down to ``leaf``."""
        return list(reversed(self.path_to_root(leaf)))

    def depth(self, node: str) -> int:
        """1-based depth of ``node`` (top-level labels have depth 1)."""
        return len(self.path_to_root(node))

    def max_depth(self) -> int:
        """Depth of the deepest leaf."""
        return max(self.depth(leaf) for leaf in self.leaves())

    def level(self, depth: int) -> list[str]:
        """All labels at 1-based ``depth``."""
        return [n for n in self.nodes if self.depth(n) == depth]

    def subtree_leaves(self, node: str) -> list[str]:
        """Leaves under ``node`` (including ``node`` itself if leaf)."""
        if self.is_leaf(node):
            return [node]
        out: list[str] = []
        for child in self.children(node):
            out.extend(self.subtree_leaves(child))
        return out

    def ancestor_at_depth(self, leaf: str, depth: int) -> str:
        """The depth-``depth`` ancestor on ``leaf``'s root path."""
        path = self.path_from_root(leaf)
        if depth < 1 or depth > len(path):
            raise TaxonomyError(f"depth {depth} invalid for leaf {leaf!r}")
        return path[depth - 1]

    @classmethod
    def from_edges(cls, edges: Iterable[tuple[str, str]], top_level: Iterable[str] = ()) -> "LabelTree":
        """Build from (parent, child) edges plus explicit top-level labels."""
        parent_of = {child: parent for parent, child in edges}
        for label in top_level:
            parent_of.setdefault(label, ROOT)
        return cls(parent_of)

    def __contains__(self, node: str) -> bool:
        return node in self._parent

    def __repr__(self) -> str:
        return (
            f"LabelTree(nodes={len(self.nodes)}, leaves={len(self.leaves())}, "
            f"depth={self.max_depth()})"
        )
