"""Label DAG for hierarchical multi-label classification (TaxoClass).

Unlike :class:`~repro.taxonomy.tree.LabelTree`, a node may have multiple
parents, and a document may carry several labels spread over different
paths. Backed by :mod:`networkx` for the graph algorithms.
"""

from __future__ import annotations

from collections.abc import Iterable

import networkx as nx

from repro.core.exceptions import TaxonomyError

ROOT = "<ROOT>"


class LabelDAG:
    """A rooted directed acyclic graph over label ids.

    Edges point parent -> child. All nodes are reachable from the virtual
    :data:`ROOT`.
    """

    def __init__(self, edges: Iterable[tuple[str, str]], top_level: Iterable[str] = ()):
        self._graph = nx.DiGraph()
        self._graph.add_node(ROOT)
        for label in top_level:
            self._graph.add_edge(ROOT, label)
        for parent, child in edges:
            if child == ROOT:
                raise TaxonomyError("ROOT cannot be a child")
            self._graph.add_edge(parent, child)
        if not nx.is_directed_acyclic_graph(self._graph):
            raise TaxonomyError("label graph contains a cycle")
        unreachable = set(self._graph.nodes) - set(
            nx.descendants(self._graph, ROOT)
        ) - {ROOT}
        if unreachable:
            raise TaxonomyError(f"nodes unreachable from ROOT: {sorted(unreachable)}")

    # -- structure queries --------------------------------------------------
    @property
    def nodes(self) -> list[str]:
        """All labels (excluding ROOT) in topological order."""
        return [n for n in nx.topological_sort(self._graph) if n != ROOT]

    def children(self, node: str) -> list[str]:
        """Direct children of ``node`` (ROOT for the top level)."""
        if node not in self._graph:
            raise TaxonomyError(f"unknown node {node!r}")
        return sorted(self._graph.successors(node))

    def parents(self, node: str) -> list[str]:
        """Direct parents of ``node`` (may include ROOT)."""
        if node not in self._graph:
            raise TaxonomyError(f"unknown node {node!r}")
        return sorted(self._graph.predecessors(node))

    def is_leaf(self, node: str) -> bool:
        """True when ``node`` has no children."""
        return not self.children(node)

    def leaves(self) -> list[str]:
        """All leaf labels."""
        return [n for n in self.nodes if self.is_leaf(n)]

    def ancestors(self, node: str) -> set:
        """All strict ancestors of ``node`` (excluding ROOT)."""
        return set(nx.ancestors(self._graph, node)) - {ROOT}

    def descendants(self, node: str) -> set:
        """All strict descendants of ``node``."""
        return set(nx.descendants(self._graph, node))

    def depth(self, node: str) -> int:
        """Length of the shortest ROOT -> node path."""
        return nx.shortest_path_length(self._graph, ROOT, node)

    def levels(self) -> dict:
        """Mapping depth -> labels at that (shortest-path) depth."""
        out: dict[int, list[str]] = {}
        for node in self.nodes:
            out.setdefault(self.depth(node), []).append(node)
        return out

    def closure(self, labels: Iterable[str]) -> set:
        """``labels`` plus all their ancestors (excluding ROOT)."""
        out: set[str] = set()
        for label in labels:
            out.add(label)
            out |= self.ancestors(label)
        return out

    def __contains__(self, node: str) -> bool:
        return node in self._graph and node != ROOT

    def __len__(self) -> int:
        return self._graph.number_of_nodes() - 1

    def __repr__(self) -> str:
        return f"LabelDAG(nodes={len(self)}, leaves={len(self.leaves())})"
