"""Label taxonomies: trees (WeSHClass) and DAGs (TaxoClass)."""

from repro.taxonomy.dag import LabelDAG
from repro.taxonomy.tree import LabelTree

__all__ = ["LabelTree", "LabelDAG"]
