"""repro: weakly-supervised text classification with pre-trained language models.

This package reproduces the systems surveyed in the EDBT 2023 tutorial
*Mining Structures from Massive Texts by Exploring the Power of Pre-trained
Language Models* (Part III: weakly-supervised text classification):

- Flat classification: WeSTClass, ConWea, LOTClass, X-Class, PromptClass
- Hierarchical classification: WeSHClass, TaxoClass
- Metadata-aware classification: MetaCat, MICoL

plus every substrate they depend on (tokenization, static embeddings, a
from-scratch numpy pre-trained language model, neural classifiers, label
taxonomies, heterogeneous information networks) and the baselines from the
tutorial's evaluation tables.

Quickstart::

    from repro.datasets import load_profile
    from repro.methods import XClass

    bundle = load_profile("agnews", seed=0)
    clf = XClass(seed=0)
    clf.fit(bundle.train_corpus, bundle.label_names())
    predictions = clf.predict(bundle.test_corpus)
"""

from repro.core.supervision import Keywords, LabeledDocuments, LabelNames
from repro.core.types import Corpus, Document, LabelSet

__version__ = "1.0.0"

__all__ = [
    "Corpus",
    "Document",
    "LabelSet",
    "LabelNames",
    "Keywords",
    "LabeledDocuments",
    "__version__",
]
