"""Corpus contextualization: splitting word occurrences into senses.

For every tracked word, ConWea collects the contextualized representations
of all its corpus occurrences (from the PLM), clusters them, and — when the
clusters are sufficiently separated — rewrites each occurrence as
``word$<sense>``. Downstream components then operate on the sense-tagged
corpus, so an ambiguous seed like "penalty" stops conflating soccer and law
contexts.
"""

from __future__ import annotations

import numpy as np

from repro.core.types import Corpus
from repro.evaluation.clustering import kmeans
from repro.nn.functional import l2_normalize
from repro.plm.model import PretrainedLM


class Contextualizer:
    """Sense-splits tracked words using PLM contextual vectors.

    Parameters
    ----------
    plm:
        The pre-trained model providing contextual token vectors.
    max_senses:
        Upper bound on senses per word (the paper's cluster count is
        chosen data-driven; we test k=1 vs k=2..max by separation gain).
    min_occurrences:
        Words with fewer corpus occurrences stay unsplit.
    separation_threshold:
        Minimum ratio of (inter-centroid distance) to (mean intra-cluster
        distance) required to accept a split.
    """

    def __init__(self, plm: PretrainedLM, max_senses: int = 2,
                 min_occurrences: int = 8, separation_threshold: float = 1.0,
                 seed: int = 0):
        self.plm = plm
        self.max_senses = max_senses
        self.min_occurrences = min_occurrences
        self.separation_threshold = separation_threshold
        self.seed = seed
        #: word -> list of (doc_index, position, sense_id)
        self.assignments: dict = {}
        #: word -> (n_senses, centroid matrix)
        self.senses: dict = {}

    def contextualize(self, corpus: Corpus, tracked_words: set) -> list:
        """Sense-tagged token lists for ``corpus``.

        Only ``tracked_words`` are candidates for splitting; everything
        else passes through unchanged.
        """
        token_lists = [list(d.tokens) for d in corpus]
        encoded = self.plm.encode_tokens(token_lists)
        occurrences: dict[str, list] = {w: [] for w in tracked_words}
        for doc_idx, (tokens, hidden) in enumerate(zip(token_lists, encoded)):
            limit = hidden.shape[0]
            for pos, word in enumerate(tokens[:limit]):
                if word in occurrences:
                    occurrences[word].append((doc_idx, pos, hidden[pos]))

        output = [list(tokens) for tokens in token_lists]
        for word, occs in occurrences.items():
            if len(occs) < self.min_occurrences:
                continue
            vectors = l2_normalize(np.stack([v for _, _, v in occs]))
            split = self._split(word, vectors)
            if split is None:
                continue
            assignment, centroids = split
            self.senses[word] = (centroids.shape[0], centroids)
            records = []
            for (doc_idx, pos, _), sense in zip(occs, assignment):
                output[doc_idx][pos] = f"{word}${int(sense)}"
                records.append((doc_idx, pos, int(sense)))
            self.assignments[word] = records
        return output

    def _split(self, word: str, vectors: np.ndarray):
        """Cluster occurrence vectors; None when one sense suffices."""
        import zlib

        best = None
        for k in range(2, self.max_senses + 1):
            if len(vectors) < k * 3:
                break
            # crc32, not hash(): Python string hashing is randomized per
            # process and would break cross-run determinism.
            word_seed = self.seed + zlib.crc32(word.encode()) % 1000
            assignment = kmeans(vectors, k, seed=word_seed)
            centroids = np.stack(
                [vectors[assignment == j].mean(axis=0) for j in range(k)]
            )
            intra = np.mean(
                [
                    np.linalg.norm(vectors[assignment == j] - centroids[j], axis=1).mean()
                    for j in range(k)
                    if (assignment == j).any()
                ]
            )
            inter = np.mean(
                [
                    np.linalg.norm(centroids[a] - centroids[b])
                    for a in range(k)
                    for b in range(a + 1, k)
                ]
            )
            score = inter / (intra + 1e-9)
            if score >= self.separation_threshold and (best is None or score > best[0]):
                best = (score, assignment, centroids)
        if best is None:
            return None
        return best[1], best[2]

    def tag_new_docs(self, token_lists: list) -> list:
        """Apply learned senses to unseen documents (nearest centroid)."""
        encoded = self.plm.encode_tokens(token_lists)
        output = [list(tokens) for tokens in token_lists]
        for doc_idx, (tokens, hidden) in enumerate(zip(token_lists, encoded)):
            limit = hidden.shape[0]
            for pos, word in enumerate(tokens[:limit]):
                if word in self.senses:
                    _, centroids = self.senses[word]
                    vec = hidden[pos] / (np.linalg.norm(hidden[pos]) + 1e-12)
                    sense = int(np.argmax(centroids @ vec))
                    output[doc_idx][pos] = f"{word}${sense}"
        return output
