"""Seed expansion by comparative ranking.

Given current pseudo-labels, a word's affinity for class ``c`` compares its
relative frequency inside class-``c`` documents against its overall
frequency, scaled by coverage — ConWea's "comparative ranking" that both
expands the seed sets and disambiguates seed senses.
"""

from __future__ import annotations

import math

import numpy as np

from repro.text.stopwords import STOPWORDS


def label_term_scores(token_lists: list, doc_labels: list, labels: list,
                      min_count: int = 3) -> dict:
    """Per-class comparative term scores.

    Returns ``{label: {word: score}}`` with
    ``score = (count_in_class / count_total) * log(1 + count_in_class)`` —
    high for words concentrated in one class and frequent there.
    """
    total_counts: dict[str, int] = {}
    class_counts: dict[str, dict[str, int]] = {l: {} for l in labels}
    for tokens, label in zip(token_lists, doc_labels):
        for word in tokens:
            if word in STOPWORDS:
                continue
            total_counts[word] = total_counts.get(word, 0) + 1
            if label in class_counts:
                bucket = class_counts[label]
                bucket[word] = bucket.get(word, 0) + 1
    scores: dict[str, dict[str, float]] = {}
    for label in labels:
        bucket = class_counts[label]
        scores[label] = {
            word: (count / total_counts[word]) * math.log1p(count)
            for word, count in bucket.items()
            if total_counts[word] >= min_count
        }
    return scores


def expand_seeds(scores: dict, current_seeds: dict, per_class: int) -> dict:
    """Grow each class's seed set to ``per_class`` words by top score.

    A word may serve only one class (ties broken by score), mirroring
    ConWea's exclusive seed sets.
    """
    claims: list[tuple[float, str, str]] = []
    for label, table in scores.items():
        for word, score in table.items():
            claims.append((score, label, word))
    claims.sort(reverse=True)
    assigned: dict[str, str] = {}
    expanded = {label: list(seeds) for label, seeds in current_seeds.items()}
    for label, seeds in expanded.items():
        for word in seeds:
            assigned.setdefault(word, label)
    for score, label, word in claims:
        if word in assigned:
            continue
        if len(expanded[label]) >= per_class:
            continue
        expanded[label].append(word)
        assigned[word] = label
    return expanded


def disambiguate_seeds(seeds: dict, sense_words: set) -> dict:
    """Replace split seed words by their sense variants.

    A seed word that was sense-split contributes all its ``word$i``
    variants initially; comparative ranking on the contextualized corpus
    then keeps only the class-consistent senses (the caller re-ranks).
    """
    out: dict[str, list[str]] = {}
    for label, words in seeds.items():
        new_words: list[str] = []
        for word in words:
            variants = sorted(w for w in sense_words if w.split("$")[0] == word)
            new_words.extend(variants if variants else [word])
        out[label] = new_words
    return out


def prune_seed_senses(seeds: dict, scores: dict, keep_fraction: float = 0.5) -> dict:
    """Drop sense variants that rank poorly for their class.

    For each class, sense-tagged seeds scoring in the bottom of that
    class's comparative ranking are removed (the disambiguation step).
    """
    out: dict[str, list[str]] = {}
    for label, words in seeds.items():
        table = scores.get(label, {})
        sense_words = [w for w in words if "$" in w]
        plain = [w for w in words if "$" not in w]
        if not sense_words:
            out[label] = list(words)
            continue
        ranked = sorted(sense_words, key=lambda w: table.get(w, 0.0), reverse=True)
        keep = max(1, int(np.ceil(len(ranked) * keep_fraction)))
        kept = [w for w in ranked[:keep] if table.get(w, 0.0) > 0.0] or ranked[:1]
        out[label] = plain + kept
    return out
