"""The ConWea classifier.

Pipeline (Mekala & Shang, ACL'20):

1. contextualize the corpus: sense-split seed words (and their expansion
   candidates) by clustering PLM contextual vectors;
2. pseudo-label documents by seed matching on the sense-tagged corpus;
3. comparative ranking: expand seed sets and prune class-inconsistent
   seed senses;
4. train an attention classifier on pseudo-labeled documents and iterate.

Ablation switches: ``contextualize=False`` (ConWea-NoCon),
``expand=False`` (ConWea-NoExpan), ``wsd_mode=True`` (ConWea-WSD: senses
from static window averages instead of PLM vectors).
"""

from __future__ import annotations

import numpy as np

from repro.classifiers import AttentiveClassifier
from repro.core.base import WeaklySupervisedTextClassifier
from repro.core.registry import MethodInfo, register_method
from repro.core.seeding import derive_rng
from repro.core.supervision import Keywords, LabelNames, Supervision, require
from repro.core.types import Corpus
from repro.methods.conwea.contextualize import Contextualizer
from repro.methods.conwea.ranking import (
    disambiguate_seeds,
    expand_seeds,
    label_term_scores,
    prune_seed_senses,
)
from repro.plm.model import PretrainedLM
from repro.plm.provider import get_pretrained_lm
from repro.text.vocabulary import Vocabulary


class ConWea(WeaklySupervisedTextClassifier):
    """Contextualized weak supervision with seed expansion.

    Parameters
    ----------
    plm:
        Pre-trained model (built/domain-adapted automatically if omitted).
    contextualize / expand:
        Ablation switches for the NoCon / NoExpan variants.
    wsd_mode:
        ConWea-WSD variant: sense clusters come from *static* window-mean
        embeddings rather than PLM contextual vectors.
    expand_per_class:
        Seed set size after comparative-ranking expansion.
    iterations:
        Pseudo-label / retrain rounds.
    """

    def __init__(self, plm: "PretrainedLM | None" = None, contextualize: bool = True,
                 expand: bool = True, wsd_mode: bool = False,
                 expand_per_class: int = 10, iterations: int = 2,
                 epochs: int = 10, seed=0):
        super().__init__(seed=seed)
        self.plm = plm
        self.do_contextualize = contextualize
        self.do_expand = expand
        self.wsd_mode = wsd_mode
        self.expand_per_class = expand_per_class
        self.iterations = iterations
        self.epochs = epochs
        self.contextualizer: "Contextualizer | None" = None
        self.seeds: dict = {}
        self._classifier = None
        self._vocab: "Vocabulary | None" = None

    # -- helpers -----------------------------------------------------------------
    def _seed_match_proba(self, token_lists: list) -> np.ndarray:
        """Soft pseudo-labels from normalized seed-hit counts."""
        assert self.label_set is not None
        labels = list(self.label_set)
        counts = np.zeros((len(token_lists), len(labels)))
        seed_index = {
            word: c for c, label in enumerate(labels) for word in self.seeds[label]
        }
        idf = {}
        for tokens in token_lists:
            for word in set(tokens):
                if word in seed_index:
                    idf[word] = idf.get(word, 0) + 1
        n = max(len(token_lists), 1)
        for i, tokens in enumerate(token_lists):
            for word in tokens:
                c = seed_index.get(word)
                if c is not None:
                    counts[i, c] += np.log(1.0 + n / (1 + idf.get(word, 1)))
        totals = counts.sum(axis=1, keepdims=True)
        uniform = np.full(len(labels), 1.0 / len(labels))
        proba = np.where(totals > 0, counts / np.maximum(totals, 1e-9), uniform)
        return proba

    def _static_contextualize(self, corpus: Corpus, tracked: set) -> list:
        """WSD-mode sense splitting from static window means."""
        from repro.embeddings.word2vec import Word2Vec
        from repro.evaluation.clustering import kmeans

        w2v = Word2Vec(dim=32, epochs=4, seed=int(self.rng.integers(2**31)))
        w2v.fit(corpus.token_lists())
        token_lists = [list(d.tokens) for d in corpus]
        output = [list(t) for t in token_lists]
        for word in tracked:
            occs = []
            for doc_idx, tokens in enumerate(token_lists):
                for pos, tok in enumerate(tokens):
                    if tok == word:
                        lo, hi = max(0, pos - 3), pos + 4
                        window = [t for t in tokens[lo:hi] if t != word]
                        if window:
                            vec = np.mean([w2v.vector(t) for t in window], axis=0)
                            occs.append((doc_idx, pos, vec))
            if len(occs) < 8:
                continue
            vectors = np.stack([v for _, _, v in occs])
            assignment = kmeans(vectors, 2, seed=0)
            for (doc_idx, pos, _), sense in zip(occs, assignment):
                output[doc_idx][pos] = f"{word}${int(sense)}"
        return output

    # -- fit -----------------------------------------------------------------------
    def _fit(self, corpus: Corpus, supervision: Supervision) -> None:
        require(supervision, LabelNames, Keywords)
        assert self.label_set is not None
        rng = derive_rng(self.rng, "conwea")
        labels = list(self.label_set)
        if isinstance(supervision, Keywords):
            self.seeds = {l: list(supervision.for_label(l)) for l in labels}
        else:
            self.seeds = {l: self.label_set.name_tokens(l) for l in labels}

        tracked = {w for seeds in self.seeds.values() for w in seeds}
        if self.do_contextualize and not self.wsd_mode:
            if self.plm is None:
                self.plm = get_pretrained_lm(target_corpus=corpus,
                                             seed=int(rng.integers(2**16)) % 7)
            self.contextualizer = Contextualizer(self.plm,
                                                 seed=int(rng.integers(2**31)))
            token_lists = self.contextualizer.contextualize(corpus, tracked)
            sense_words = {
                f"{w}${i}" for w, (k, _) in self.contextualizer.senses.items()
                for i in range(k)
            }
            self.seeds = disambiguate_seeds(self.seeds, sense_words)
        elif self.wsd_mode:
            token_lists = self._static_contextualize(corpus, tracked)
            sense_words = {t for tokens in token_lists for t in tokens if "$" in t}
            self.seeds = disambiguate_seeds(self.seeds, sense_words)
        else:
            token_lists = [list(d.tokens) for d in corpus]

        self._vocab = Vocabulary.build(token_lists, min_count=1)
        classifier_seed = int(rng.integers(2**31))
        for iteration in range(self.iterations):
            proba = self._seed_match_proba(token_lists)
            hard = proba.argmax(axis=1)
            confidence = proba.max(axis=1)
            # Keep confidently pseudo-labeled docs (above uniform).
            threshold = 1.0 / len(labels) + 0.05
            keep = np.flatnonzero(confidence > threshold)
            if keep.size < len(labels) * 2:
                keep = np.argsort(-confidence)[: len(labels) * 5]
            doc_labels = [labels[hard[i]] for i in keep]
            kept_tokens = [token_lists[i] for i in keep]

            scores = label_term_scores(kept_tokens, doc_labels, labels)
            self.seeds = prune_seed_senses(self.seeds, scores)
            if self.do_expand:
                self.seeds = expand_seeds(scores, self.seeds, self.expand_per_class)

            self._classifier = AttentiveClassifier(
                self._vocab, len(labels), dim=32, seed=classifier_seed
            )
            self._classifier.fit(kept_tokens, hard[keep], epochs=self.epochs)
            # Classifier predictions refine the pseudo-labels next round.
            proba = self._classifier.predict_proba(token_lists)
            token_lists_labels = proba.argmax(axis=1)
            hard = token_lists_labels

    def _prepare_tokens(self, corpus: Corpus) -> list:
        if self.contextualizer is not None:
            return self.contextualizer.tag_new_docs(corpus.token_lists())
        return corpus.token_lists()

    def _predict_proba(self, corpus: Corpus) -> np.ndarray:
        assert self._classifier is not None
        return self._classifier.predict_proba(self._prepare_tokens(corpus))


register_method(
    MethodInfo(
        name="ConWea",
        venue="ACL'20",
        structure="flat",
        label_arity="single-label",
        supervision=("LabelNames", "Keywords"),
        backbone="pretrained-lm",
        cls=ConWea,
    )
)
