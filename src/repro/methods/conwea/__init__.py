"""ConWea: contextualized weak supervision for text classification [ACL'20]."""

from repro.methods.conwea.contextualize import Contextualizer
from repro.methods.conwea.model import ConWea

__all__ = ["ConWea", "Contextualizer"]
