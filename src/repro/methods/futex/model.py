"""The FUTEX full-text multi-label classifier.

Pipeline (Zhang et al., KDD'23, adapted):

1. **per-section relevance**: full-text documents are split along their
   section spans (``doc.metadata["sections"]``) and every section is
   scored against every class name with the NLI-style relevance model;
2. **cross-section evidence aggregation**: sections are pooled with
   confidence weights — a section that matches *some* class decisively
   (title, abstract) outvotes diffuse body text;
3. the aggregated relevance drives the same top-down exploration, core
   classes, and one-vs-all self-training loop as TaxoClass, over
   section-pooled document embeddings.

Documents without section metadata degrade gracefully to a single
whole-document section, making FUTEX a strict generalisation of the
flat-document pipeline.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import MultiLabelTextClassifier
from repro.core.registry import MethodInfo, register_method
from repro.core.seeding import derive_rng
from repro.core.supervision import LabelNames, Supervision, require
from repro.core.types import Corpus, Document
from repro.methods.taxoclass.exploration import candidate_matrix
from repro.methods.taxoclass.model import _OneVsAllHead
from repro.nn.tensor import get_default_dtype
from repro.plm.model import PretrainedLM
from repro.plm.provider import get_pretrained_lm, get_relevance_model
from repro.taxonomy.dag import LabelDAG


def section_slices(doc: Document) -> list:
    """``(name, tokens)`` per section; whole doc when no section spans.

    Spans are the generator's ``{"name", "start", "end"}`` records over
    the token list; empty slices are dropped.
    """
    out = []
    for span in doc.metadata.get("sections") or ():
        tokens = doc.tokens[span["start"]: span["end"]]
        if tokens:
            out.append((span["name"], tokens))
    if not out and doc.tokens:
        out.append(("body", list(doc.tokens)))
    return out


def aggregate_sections(relevance: np.ndarray, spans: list,
                       temp: float = 6.0) -> np.ndarray:
    """Pool per-section relevance rows into per-document rows.

    ``relevance`` is (n_sections_total, n_labels); ``spans`` holds the
    per-document ``(start, end)`` ranges into those rows. Each section's
    weight is a softmax over its most confident class score, so decisive
    sections dominate the pooled evidence.
    """
    pooled = np.zeros((len(spans), relevance.shape[1]),
                      dtype=relevance.dtype)
    for i, (start, end) in enumerate(spans):
        block = relevance[start:end]
        if block.shape[0] == 0:
            continue
        conf = block.max(axis=1)
        weights = np.exp(temp * (conf - conf.max()))
        weights = weights / weights.sum()
        pooled[i] = weights @ block
    return pooled


class Futex(MultiLabelTextClassifier):
    """Section-structured hierarchical multi-label classification.

    Parameters
    ----------
    dag:
        The label DAG covering the supervision's label set.
    beam / max_candidates:
        Top-down exploration width and candidate cap.
    core_top:
        Core classes per document (top scorers among candidates).
    rounds:
        Bootstrap/self-training rounds after the initial fit.
    section_temp:
        Softmax temperature for cross-section confidence pooling.
    """

    def __init__(self, dag: LabelDAG, plm: "PretrainedLM | None" = None,
                 beam: int = 3, max_candidates: int = 24, core_top: int = 2,
                 rounds: int = 2, confidence: float = 0.75,
                 section_temp: float = 6.0, seed=0):
        super().__init__(seed=seed)
        self.dag = dag
        self.plm = plm
        self.beam = beam
        self.max_candidates = max_candidates
        self.core_top = core_top
        self.rounds = rounds
        self.confidence = confidence
        self.section_temp = section_temp
        self._head: "_OneVsAllHead | None" = None
        self._relevance = None

    # -- section machinery ---------------------------------------------------
    def _sectioned(self, corpus: Corpus) -> tuple:
        """Flattened section token lists + per-doc (start, end) spans."""
        token_lists, spans = [], []
        for doc in corpus:
            start = len(token_lists)
            token_lists.extend(tokens for _, tokens in section_slices(doc))
            spans.append((start, len(token_lists)))
        return token_lists, spans

    def _doc_relevance(self, corpus: Corpus, name_tokens: list) -> np.ndarray:
        """Per-document relevance via cross-section aggregation."""
        assert self._relevance is not None
        token_lists, spans = self._sectioned(corpus)
        per_section = self._relevance.relevance_matrix(token_lists,
                                                       name_tokens)
        return aggregate_sections(per_section, spans,
                                  temp=self.section_temp)

    def _features(self, corpus: Corpus) -> np.ndarray:
        """Confidence-pooled section embeddings (falls back to doc mean)."""
        assert self.plm is not None
        token_lists, spans = self._sectioned(corpus)
        section_emb = self.plm.doc_embeddings(token_lists)
        features = np.zeros((len(corpus), section_emb.shape[1]),
                            dtype=section_emb.dtype)
        for i, (start, end) in enumerate(spans):
            block = section_emb[start:end]
            if block.shape[0]:
                features[i] = block.mean(axis=0)
        return features

    # -- fit / score ---------------------------------------------------------
    def _fit(self, corpus: Corpus, supervision: Supervision) -> None:
        require(supervision, LabelNames)
        assert self.label_set is not None
        rng = derive_rng(self.rng, "futex")
        if self.plm is None:
            self.plm = get_pretrained_lm(target_corpus=corpus,
                                         seed=int(rng.integers(2**16)) % 7)
        self._relevance = get_relevance_model(self.plm)
        labels = list(self.label_set)
        name_tokens = [self.label_set.name_tokens(l) for l in labels]
        relevance = self._doc_relevance(corpus, name_tokens)

        candidates = candidate_matrix(self.dag, relevance, labels,
                                      beam=self.beam,
                                      max_candidates=self.max_candidates)
        label_index = {l: i for i, l in enumerate(labels)}
        n, m = len(corpus), len(labels)
        targets = np.zeros((n, m), dtype=get_default_dtype())
        known = np.zeros((n, m), dtype=get_default_dtype())
        for i, cand in enumerate(candidates):
            if not cand:
                continue
            ranked = sorted(cand, key=lambda l: relevance[i, label_index[l]],
                            reverse=True)
            positives = self.dag.closure(ranked[: self.core_top]) & set(labels)
            for label in positives:
                targets[i, label_index[label]] = 1.0
            for label in set(cand) | positives:
                known[i, label_index[label]] = 1.0
        known = np.maximum(known, 0.15)

        features = self._features(corpus)
        self._head = _OneVsAllHead(
            features.shape[1], m,
            np.random.default_rng(int(rng.integers(2**31))))
        self._head.fit(features, targets, mask=known, rng=rng)

        for _ in range(self.rounds):
            scores = self._head.scores(features)
            new_targets = targets.copy()
            new_known = known.copy()
            for i in range(n):
                confident_pos = np.flatnonzero(scores[i] >= self.confidence)
                closed = self.dag.closure(
                    {labels[j] for j in confident_pos}) & set(labels)
                for label in closed:
                    new_targets[i, label_index[label]] = 1.0
                    new_known[i, label_index[label]] = 1.0
                confident_neg = np.flatnonzero(
                    scores[i] <= 1.0 - self.confidence)
                new_known[i, confident_neg] = 1.0
            self._head.fit(features, new_targets, mask=new_known, epochs=30,
                           rng=rng)
            targets, known = new_targets, new_known

    def _score(self, corpus: Corpus) -> np.ndarray:
        assert self._head is not None
        return self._head.scores(self._features(corpus))


register_method(
    MethodInfo(
        name="FUTEX",
        venue="KDD'23",
        structure="hierarchical",
        label_arity="multi-label",
        supervision=("LabelNames",),
        backbone="pretrained-lm",
        cls=Futex,
    )
)
