"""FUTEX: weakly supervised classification of section-structured text."""

from repro.methods.futex.model import Futex, aggregate_sections, section_slices

__all__ = ["Futex", "section_slices", "aggregate_sections"]
