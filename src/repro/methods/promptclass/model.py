"""PromptClass: integrating head-token and prompt-based fine-tuning.

Pipeline (the tutorial's closing flat-classification system):

1. **zero-shot prompting** produces initial pseudo-labels (MLM verbalizer
   scoring, or ELECTRA replaced-token detection);
2. **iterative co-training**: the most confident pseudo-labeled documents
   train a head-token classifier; its predictions and the prompt scores
   are blended, the confident pool grows, and the loop repeats —
   "iterative classifier training and pseudo label expansion".

``prompt_backend`` chooses the zero-shot scorer ("mlm" ~ RoBERTa prompt,
"electra" ~ ELECTRA prompt); ``head_backend`` names the classifier flavour
for the results table ("bert" head-token fine-tuning on pooled PLM
features). Combination rows like ELECTRA+BERT map to
``prompt_backend="electra", head_backend="bert"``.
"""

from __future__ import annotations

import numpy as np

from repro.classifiers import LogisticRegression
from repro.core.base import WeaklySupervisedTextClassifier
from repro.core.registry import MethodInfo, register_method
from repro.core.seeding import derive_rng
from repro.core.supervision import LabelNames, Supervision, require
from repro.core.types import Corpus
from repro.methods.promptclass.zero_shot import (
    electra_zero_shot_proba,
    mlm_zero_shot_proba,
)
from repro.plm.model import PretrainedLM
from repro.plm.prompts import PromptTemplate, Verbalizer
from repro.plm.provider import get_electra, get_pretrained_lm


class PromptClass(WeaklySupervisedTextClassifier):
    """Prompt-based zero-shot + head-token co-training.

    Parameters
    ----------
    prompt_backend:
        ``"mlm"`` or ``"electra"`` zero-shot scorer.
    head_backend:
        Head classifier flavour (currently ``"bert"``: logistic head over
        pooled PLM document embeddings — head-token fine-tuning at our
        scale).
    rounds:
        Co-training rounds of pseudo-label expansion.
    initial_fraction / growth:
        Confident-pool size starts at ``initial_fraction`` of the corpus
        and multiplies by ``growth`` per round.
    zero_shot_only:
        Skip co-training (the 0-shot table rows).
    """

    def __init__(self, plm: "PretrainedLM | None" = None,
                 prompt_backend: str = "mlm", head_backend: str = "bert",
                 rounds: int = 3, initial_fraction: float = 0.3,
                 growth: float = 1.5, blend: float = 0.5,
                 zero_shot_only: bool = False, seed=0):
        super().__init__(seed=seed)
        if prompt_backend not in ("mlm", "electra"):
            raise ValueError(f"unknown prompt backend {prompt_backend!r}")
        self.plm = plm
        self.prompt_backend = prompt_backend
        self.head_backend = head_backend
        self.rounds = rounds
        self.initial_fraction = initial_fraction
        self.growth = growth
        self.blend = blend
        self.zero_shot_only = zero_shot_only
        self.template = PromptTemplate()
        self._verbalizer: "Verbalizer | None" = None
        self._head: "LogisticRegression | None" = None
        self._zero_shot_cache: "np.ndarray | None" = None

    def _zero_shot(self, corpus: Corpus) -> np.ndarray:
        assert self.plm is not None and self.label_set is not None
        if self.prompt_backend == "mlm":
            return mlm_zero_shot_proba(self.plm, corpus, self.label_set,
                                       template=self.template,
                                       verbalizer=self._verbalizer)
        discriminator = get_electra(self.plm)
        return electra_zero_shot_proba(discriminator, corpus, self.label_set,
                                       template=self.template,
                                       verbalizer=self._verbalizer)

    def _fit(self, corpus: Corpus, supervision: Supervision) -> None:
        require(supervision, LabelNames)
        assert self.label_set is not None
        rng = derive_rng(self.rng, "promptclass")
        if self.plm is None:
            self.plm = get_pretrained_lm(target_corpus=corpus,
                                         seed=int(rng.integers(2**16)) % 7)
        self._verbalizer = Verbalizer.from_label_names(self.label_set)
        proba = self._zero_shot(corpus)
        self._zero_shot_cache = proba
        if self.zero_shot_only:
            return

        features = self.plm.doc_embeddings(corpus.token_lists())
        n = len(corpus)
        n_classes = len(self.label_set)
        pool = max(n_classes * 2, int(n * self.initial_fraction))
        for _ in range(self.rounds):
            confidence = proba.max(axis=1)
            order = np.argsort(-confidence)
            take = order[: min(pool, n)]
            targets = proba[take].argmax(axis=1)
            self._head = LogisticRegression(
                features.shape[1], n_classes, seed=int(rng.integers(2**31))
            )
            self._head.fit(features[take], targets, epochs=60)
            head_proba = self._head.predict_proba(features)
            proba = self.blend * head_proba + (1.0 - self.blend) * self._zero_shot_cache
            pool = int(pool * self.growth)

    def _predict_proba(self, corpus: Corpus) -> np.ndarray:
        zero_shot = self._zero_shot(corpus)
        if self.zero_shot_only or self._head is None:
            return zero_shot
        assert self.plm is not None
        features = self.plm.doc_embeddings(corpus.token_lists())
        head_proba = self._head.predict_proba(features)
        return self.blend * head_proba + (1.0 - self.blend) * zero_shot


register_method(
    MethodInfo(
        name="PromptClass",
        venue="tutorial'23",
        structure="flat",
        label_arity="single-label",
        supervision=("LabelNames",),
        backbone="pretrained-lm",
        cls=PromptClass,
    )
)
