"""Zero-shot prompting scorers.

Two families from the tutorial:

- **MLM prompting** (RoBERTa-style): render ``<doc> this article is about
  [MASK]`` and read the verbalizer tokens' probabilities from the MLM head.
- **RTD prompting** (ELECTRA-style): render the prompt once per label with
  the verbalizer filled in and score how *original* the discriminator
  finds the label token in that context.
"""

from __future__ import annotations

import numpy as np

from repro.core.types import Corpus, LabelSet
from repro.plm.electra import ElectraDiscriminator
from repro.plm.model import PretrainedLM
from repro.plm.prompts import PromptTemplate, Verbalizer
from repro.text.vocabulary import MASK


def mlm_zero_shot_proba(plm: PretrainedLM, corpus: Corpus, label_set: LabelSet,
                        template: "PromptTemplate | None" = None,
                        verbalizer: "Verbalizer | None" = None) -> np.ndarray:
    """(n_docs, n_labels) probabilities from MLM prompting."""
    template = template or PromptTemplate()
    verbalizer = verbalizer or Verbalizer.from_label_names(label_set)
    vocab = plm.vocabulary
    head_ids = [vocab.id(verbalizer.head_token(l)) for l in label_set]
    prompts, positions = [], []
    for doc in corpus:
        tokens = template.render_masked(doc.tokens, plm.max_len)
        prompts.append(tokens)
        positions.append(tokens.index(MASK))
    logits = plm.mask_logits_batch(prompts, positions)
    picked = logits[:, head_ids]
    picked -= picked.max(axis=1, keepdims=True)
    proba = np.exp(picked)
    return proba / proba.sum(axis=1, keepdims=True)


def electra_zero_shot_proba(discriminator: ElectraDiscriminator, corpus: Corpus,
                            label_set: LabelSet,
                            template: "PromptTemplate | None" = None,
                            verbalizer: "Verbalizer | None" = None,
                            temperature: float = 0.1) -> np.ndarray:
    """(n_docs, n_labels) probabilities from replaced-token-detection.

    For each label, the verbalizer fills the template and the label token's
    originality score becomes its logit (softmax over labels).
    """
    template = template or PromptTemplate()
    verbalizer = verbalizer or Verbalizer.from_label_names(label_set)
    plm = discriminator.plm
    labels = list(label_set)
    scores = np.zeros((len(corpus), len(labels)))
    for c, label in enumerate(labels):
        fill = verbalizer.tokens(label)
        prompts, positions = [], []
        for doc in corpus:
            tokens, pos = template.render_filled(doc.tokens, fill, plm.max_len)
            prompts.append(tokens)
            positions.append(pos)
        originality = discriminator.originality(prompts)
        scores[:, c] = [
            row[min(pos, len(row) - 1)] for row, pos in zip(originality, positions)
        ]
    logits = scores / temperature
    logits -= logits.max(axis=1, keepdims=True)
    proba = np.exp(logits)
    return proba / proba.sum(axis=1, keepdims=True)
