"""PromptClass: zero-shot prompting + head-token co-training."""

from repro.methods.promptclass.model import PromptClass
from repro.methods.promptclass.zero_shot import (
    electra_zero_shot_proba,
    mlm_zero_shot_proba,
)

__all__ = ["PromptClass", "mlm_zero_shot_proba", "electra_zero_shot_proba"]
