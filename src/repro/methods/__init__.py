"""The tutorial's surveyed methods.

Importing this package registers every method's capability descriptor in
:mod:`repro.core.registry` (the source of the summary-table bench).
"""

from repro.methods.conwea import ConWea
from repro.methods.futex import Futex
from repro.methods.lotclass import LOTClass
from repro.methods.metacat import MetaCat
from repro.methods.micol import MICoL
from repro.methods.promptclass import PromptClass
from repro.methods.taxoclass import TaxoClass
from repro.methods.weshclass import WeSHClass
from repro.methods.westclass import WeSTClass
from repro.methods.xclass import XClass

__all__ = [
    "WeSTClass",
    "ConWea",
    "LOTClass",
    "XClass",
    "PromptClass",
    "WeSHClass",
    "TaxoClass",
    "MetaCat",
    "MICoL",
    "Futex",
]
