"""The LOTClass classifier.

Pipeline (Meng et al., EMNLP'20):

1. build each category's vocabulary by MLM replacement ranking of its
   label name;
2. masked category prediction (MCP): a token is *category-indicative*
   when its own top replacement words overlap a category vocabulary
   strongly enough; a category-prediction head is trained on the PLM's
   contextual vector at those positions;
3. self-training: document-level soft targets from aggregated MCP
   predictions train a document classifier, sharpened over rounds.

``self_train=False`` reproduces the "Ours w/o. self train" ablation row.
"""

from __future__ import annotations

import numpy as np

from repro.classifiers import (
    AttentiveClassifier,
    LogisticRegression,
    SelfTrainingLoop,
)
from repro.core.base import WeaklySupervisedTextClassifier
from repro.core.registry import MethodInfo, register_method
from repro.core.seeding import derive_rng
from repro.core.supervision import LabelNames, Supervision, require
from repro.core.types import Corpus
from repro.methods.lotclass.category_vocab import build_category_vocabulary
from repro.plm.model import PretrainedLM
from repro.plm.provider import get_pretrained_lm


class LOTClass(WeaklySupervisedTextClassifier):
    """Label-name-only classification via category vocabularies and MCP.

    Parameters
    ----------
    plm:
        Pre-trained model (built/domain-adapted automatically if omitted).
    top_k / overlap_threshold:
        A position is category-indicative when at least
        ``overlap_threshold`` of its ``top_k`` MLM replacements fall in
        one category's vocabulary.
    positions_per_doc:
        Budget of candidate positions probed per document.
    self_train:
        Disable for the "w/o self train" ablation.
    """

    def __init__(self, plm: "PretrainedLM | None" = None, top_k: int = 20,
                 overlap_threshold: int = 5, positions_per_doc: int = 4,
                 vocab_size: int = 40, self_train: bool = True,
                 self_train_iterations: int = 4, seed=0):
        super().__init__(seed=seed)
        self.plm = plm
        self.top_k = top_k
        self.overlap_threshold = overlap_threshold
        self.positions_per_doc = positions_per_doc
        self.vocab_size = vocab_size
        self.self_train = self_train
        self.self_train_iterations = self_train_iterations
        self.category_vocab: dict = {}
        self._mcp_head: "LogisticRegression | None" = None
        self._doc_classifier = None
        self._doc_proba_cache: "np.ndarray | None" = None

    # -- MCP ----------------------------------------------------------------
    def _candidate_positions(self, tokens: list, vocab_index: dict) -> list:
        """Positions whose token belongs to some category vocabulary."""
        hits = [
            (pos, token) for pos, token in enumerate(tokens[: self.plm.max_len])
            if token in vocab_index
        ]
        return [pos for pos, _ in hits[: self.positions_per_doc]]

    def _masked_category_data(self, corpus: Corpus) -> tuple:
        """(features at indicative positions, category ids, doc indices)."""
        assert self.label_set is not None and self.plm is not None
        labels = list(self.label_set)
        vocab_sets = {l: set(v) for l, v in self.category_vocab.items()}
        vocab_index = {w: l for l, ws in vocab_sets.items() for w in ws}

        probe_tokens: list[list] = []
        probe_positions: list[int] = []
        probe_docs: list[int] = []
        for doc_idx, doc in enumerate(corpus):
            for pos in self._candidate_positions(doc.tokens, vocab_index):
                probe_tokens.append(doc.tokens)
                probe_positions.append(pos)
                probe_docs.append(doc_idx)
        if not probe_tokens:
            return np.zeros((0, self.plm.dim)), np.zeros(0, dtype=int), []

        # Top-k variant: never materializes the full (N, V) logit matrix.
        top = self.plm.mask_topk_batch(probe_tokens, probe_positions,
                                       self.top_k)
        plm_vocab = self.plm.vocabulary

        indicative: list[tuple[int, int, int]] = []  # (probe idx, doc idx, cat)
        for i, row in enumerate(top):
            words = {plm_vocab.token(int(j)) for j in row}
            best_label, best_overlap = None, 0
            for c, label in enumerate(labels):
                overlap = len(words & vocab_sets[label])
                if overlap > best_overlap:
                    best_label, best_overlap = c, overlap
            if best_label is not None and best_overlap >= self.overlap_threshold:
                indicative.append((i, probe_docs[i], best_label))
        if not indicative:
            return np.zeros((0, self.plm.dim)), np.zeros(0, dtype=int), []

        # Contextual features at the indicative positions (unmasked pass).
        by_doc: dict[int, list] = {}
        for probe_idx, doc_idx, cat in indicative:
            by_doc.setdefault(doc_idx, []).append((probe_positions[probe_idx], cat))
        doc_indices = sorted(by_doc)
        encoded = self.plm.encode_tokens(
            [corpus[i].tokens for i in doc_indices]
        )
        features, cats, docs = [], [], []
        for hidden, doc_idx in zip(encoded, doc_indices):
            for pos, cat in by_doc[doc_idx]:
                if pos < hidden.shape[0]:
                    features.append(hidden[pos])
                    cats.append(cat)
                    docs.append(doc_idx)
        return np.stack(features), np.asarray(cats), docs

    # -- fit -------------------------------------------------------------------
    def _fit(self, corpus: Corpus, supervision: Supervision) -> None:
        require(supervision, LabelNames)
        assert self.label_set is not None
        rng = derive_rng(self.rng, "lotclass")
        if self.plm is None:
            self.plm = get_pretrained_lm(target_corpus=corpus,
                                         seed=int(rng.integers(2**16)) % 7)
        labels = list(self.label_set)
        self.category_vocab = build_category_vocabulary(
            self.plm, corpus, self.label_set, top_k=self.top_k,
            vocab_size=self.vocab_size,
        )
        features, cats, docs = self._masked_category_data(corpus)
        n_classes = len(labels)
        doc_proba = np.full((len(corpus), n_classes), 1.0 / n_classes)
        if len(cats) >= n_classes:
            self._mcp_head = LogisticRegression(
                features.shape[1], n_classes, seed=int(rng.integers(2**31))
            )
            self._mcp_head.fit(features, cats, epochs=40)
            token_proba = self._mcp_head.predict_proba(features)
            sums = np.zeros((len(corpus), n_classes))
            counts = np.zeros(len(corpus))
            for row, doc_idx in zip(token_proba, docs):
                sums[doc_idx] += row
                counts[doc_idx] += 1
            has = counts > 0
            doc_proba[has] = sums[has] / counts[has, None]
        self._doc_proba_cache = doc_proba

        # Document classifier trained on MCP-derived targets.
        self._doc_classifier = AttentiveClassifier(
            self.plm.vocabulary, n_classes, dim=self.plm.dim,
            embedding_table=self.plm.encoder.token_embedding.weight.data,
            max_len=self.plm.max_len, seed=int(rng.integers(2**31)),
        )
        confident = doc_proba.max(axis=1) > 1.0 / n_classes + 0.1
        train_idx = np.flatnonzero(confident)
        if train_idx.size < n_classes * 2:
            train_idx = np.arange(len(corpus))
        token_lists = corpus.token_lists()
        self._doc_classifier.fit(
            [token_lists[i] for i in train_idx], doc_proba[train_idx], epochs=8
        )
        if self.self_train:
            loop = SelfTrainingLoop(max_iterations=self.self_train_iterations)
            loop.run(self._doc_classifier, token_lists)

    def _predict_proba(self, corpus: Corpus) -> np.ndarray:
        assert self._doc_classifier is not None
        return self._doc_classifier.predict_proba(corpus.token_lists())


register_method(
    MethodInfo(
        name="LOTClass",
        venue="EMNLP'20",
        structure="flat",
        label_arity="single-label",
        supervision=("LabelNames",),
        backbone="pretrained-lm",
        cls=LOTClass,
    )
)
