"""Category vocabulary construction via MLM replacement ranking.

For each occurrence of a label name in the corpus, the PLM predicts which
words could replace it in that context; aggregating predictions over
occurrences yields the category vocabulary — words the model considers
interchangeable with the label name (LOTClass §2.1, the tutorial's Table 1
mechanism). Words claimed by multiple categories and stop words are
removed.
"""

from __future__ import annotations

from collections import Counter

from repro.core.types import Corpus, LabelSet
from repro.plm.model import PretrainedLM
from repro.text.stopwords import STOPWORDS


def collect_name_occurrences(corpus: Corpus, name_token: str,
                             max_occurrences: int = 40) -> list:
    """(doc_tokens, position) pairs where ``name_token`` occurs."""
    out: list[tuple[list, int]] = []
    for doc in corpus:
        for pos, token in enumerate(doc.tokens):
            if token == name_token:
                out.append((doc.tokens, pos))
                break  # one occurrence per document is enough signal
        if len(out) >= max_occurrences:
            break
    return out


def build_category_vocabulary(plm: PretrainedLM, corpus: Corpus,
                              label_set: LabelSet, top_k: int = 20,
                              vocab_size: int = 40,
                              max_occurrences: int = 40,
                              max_df_ratio: float = 0.35) -> dict:
    """``{label: [vocab words]}`` from MLM replacement ranking.

    Words occurring in more than ``max_df_ratio`` of documents are treated
    as topic-neutral and excluded (corpus-wide words cannot indicate a
    category, no matter how often the MLM proposes them).
    """
    df: Counter = Counter()
    for doc in corpus:
        df.update(set(doc.tokens))
    df_cap = max_df_ratio * len(corpus)
    raw: dict[str, Counter] = {}
    for label in label_set:
        counter: Counter = Counter()
        for name_token in label_set.name_tokens(label):
            occurrences = collect_name_occurrences(corpus, name_token,
                                                   max_occurrences)
            if not occurrences:
                # Label name absent from corpus: fall back to a bare
                # prompt so the category still gets a vocabulary.
                occurrences = [([name_token], 0)]
            token_lists = [toks for toks, _ in occurrences]
            positions = [min(pos, plm.max_len - 1) for _, pos in occurrences]
            logits = plm.mask_logits_batch(token_lists, positions)
            for row in logits:
                order = row.argsort()[::-1]
                taken = 0
                for idx in order:
                    word = plm.vocabulary.token(int(idx))
                    if word in STOPWORDS or word.startswith("["):
                        continue
                    if df.get(word, 0) > df_cap:
                        continue
                    counter[word] += 1
                    taken += 1
                    if taken >= top_k:
                        break
        raw[label] = counter

    # Resolve multi-category words: a word joins a category's vocabulary
    # only when that category's prediction count clearly dominates every
    # other category's (words the MLM proposes everywhere — generic
    # context fillers — indicate nothing and are dropped entirely).
    vocabulary: dict[str, list] = {}
    for label, counter in raw.items():
        words = []
        for word, count in counter.most_common():
            rival = max(
                (other[word] for l2, other in raw.items() if l2 != label),
                default=0,
            )
            if count >= 2 * max(rival, 1):
                words.append(word)
            if len(words) >= vocab_size:
                break
        name_tokens = [t for t in label_set.name_tokens(label) if t not in words]
        vocabulary[label] = name_tokens + words
    return vocabulary
