"""LOTClass: text classification with label names only [EMNLP'20]."""

from repro.methods.lotclass.category_vocab import build_category_vocabulary
from repro.methods.lotclass.model import LOTClass

__all__ = ["LOTClass", "build_category_vocabulary"]
