"""Bi-encoder and cross-encoder heads fine-tuned contrastively.

Both encoders sit on top of frozen PLM document embeddings:

- the **bi-encoder** learns a linear projection so that metadata-similar
  documents land close under cosine; scoring a (document, label) pair is
  a dot product of projected embeddings — cheap, scalable;
- the **cross-encoder** learns an interaction head over pair features —
  more expressive, costlier (evaluated per pair), typically a bit better,
  exactly the trade-off the MICoL table shows.
"""

from __future__ import annotations

import numpy as np

from repro.core.seeding import ensure_rng
from repro.nn.layers import Linear, Module
from repro.nn.losses import binary_cross_entropy_with_logits, info_nce
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor


class BiEncoder(Module):
    """Linear projection trained with in-batch-negative InfoNCE."""

    def __init__(self, dim: int, out_dim: "int | None" = None,
                 seed: "int | np.random.Generator" = 0):
        super().__init__()
        rng = ensure_rng(seed)
        out_dim = out_dim or dim
        self.proj = Linear(dim, out_dim, rng, bias=False)
        # Near-identity start: contrastive steps refine rather than
        # re-learn the embedding geometry.
        eye = np.eye(dim, out_dim)
        init = eye + 0.02 * rng.standard_normal((dim, out_dim))
        self.proj.weight.data = init.astype(self.proj.weight.data.dtype)

    def encode(self, embeddings: np.ndarray) -> np.ndarray:
        """L2-normalized projections of ``embeddings``."""
        dtype = self.proj.weight.data.dtype
        z = self.proj(Tensor(np.asarray(embeddings, dtype=dtype))).data
        norms = np.linalg.norm(z, axis=1, keepdims=True) + 1e-12
        return z / norms

    def train_contrastive(self, anchors: np.ndarray, positives: np.ndarray,
                          epochs: int = 4, batch_size: int = 32,
                          lr: float = 2e-4, temperature: float = 0.1,
                          seed: "int | np.random.Generator" = 0) -> None:
        """InfoNCE with in-batch negatives over (anchor, positive) rows."""
        rng = ensure_rng(seed)
        optimizer = Adam(self.proj.parameters(), lr=lr)
        n = anchors.shape[0]
        for _ in range(epochs):
            order = rng.permutation(n)
            for start in range(0, n, batch_size):
                take = order[start : start + batch_size]
                if take.size < 2:
                    continue
                a = self.proj(Tensor(anchors[take]))
                p = self.proj(Tensor(positives[take]))
                a_n = a * (a * a).sum(axis=1, keepdims=True) ** -0.5
                p_n = p * (p * p).sum(axis=1, keepdims=True) ** -0.5
                sims = a_n @ p_n.swapaxes(0, 1)
                loss = info_nce(sims, temperature=temperature)
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()


class CrossEncoder(Module):
    """Pair-interaction scorer trained with sampled negatives."""

    def __init__(self, dim: int, seed: "int | np.random.Generator" = 0):
        super().__init__()
        rng = ensure_rng(seed)
        self.fc = Linear(2 * dim + 1, 1, rng)
        self.fc.weight.data[:] = 0.0
        self.fc.weight.data[-1, 0] = 4.0

    @staticmethod
    def _pair_features(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        cos = (a * b).sum(axis=1, keepdims=True)
        return np.concatenate([a * b, np.abs(a - b), cos], axis=1)

    def score(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Pairwise relevance for aligned rows."""
        dtype = self.fc.weight.data.dtype
        feats = self._pair_features(np.asarray(a, dtype), np.asarray(b, dtype))
        logits = self.fc(Tensor(feats)).data.reshape(-1)
        return 1.0 / (1.0 + np.exp(-logits))

    def train_pairs(self, anchors: np.ndarray, positives: np.ndarray,
                    negatives_per_pair: int = 2, epochs: int = 12,
                    batch_size: int = 64, lr: float = 5e-3,
                    seed: "int | np.random.Generator" = 0) -> None:
        """Binary CE on positive pairs vs. shuffled negatives."""
        rng = ensure_rng(seed)
        optimizer = Adam(self.fc.parameters(), lr=lr)
        n = anchors.shape[0]
        for _ in range(epochs):
            order = rng.permutation(n)
            for start in range(0, n, batch_size):
                take = order[start : start + batch_size]
                a = anchors[take]
                p = positives[take]
                rows = [self._pair_features(a, p)]
                labels = [np.ones(take.size)]
                for _ in range(negatives_per_pair):
                    shuffled = positives[rng.permutation(n)[: take.size]]
                    rows.append(self._pair_features(a, shuffled))
                    labels.append(np.zeros(take.size))
                feats = np.vstack(rows)
                target = np.concatenate(labels)
                logits = self.fc(Tensor(feats)).reshape(-1)
                loss = binary_cross_entropy_with_logits(logits, target)
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
