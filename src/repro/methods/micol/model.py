"""The MICoL zero-shot multi-label classifier.

Pipeline (Zhang et al., WWW'22):

1. build the metadata network of the unlabeled corpus;
2. sample similar document pairs via a bibliographic meta-path
   (P->P<-P or P<-(PP)->P by default);
3. contrastively fine-tune an encoder on those pairs (bi- or cross-);
4. zero-shot inference: rank labels by encoder score between the document
   and each label's name + description text.

No labeled documents are used anywhere.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import MultiLabelTextClassifier
from repro.core.registry import MethodInfo, register_method
from repro.core.seeding import derive_rng
from repro.core.supervision import LabelNames, Supervision, require
from repro.core.types import Corpus
from repro.hin.graph import HeterogeneousGraph
from repro.hin.metapath import P_REF_P, MetaPath, metapath_pairs
from repro.methods.micol.encoders import BiEncoder, CrossEncoder
from repro.plm.model import PretrainedLM
from repro.plm.provider import get_pretrained_lm
from repro.text.tokenizer import tokenize


class MICoL(MultiLabelTextClassifier):
    """Metadata-induced contrastive learning for zero-shot tagging.

    Parameters
    ----------
    encoder:
        ``"bi"`` or ``"cross"``.
    metapath:
        The meta-path inducing positive pairs (default P->P<-P over
        reference edges).
    n_pairs:
        Positive pairs sampled for fine-tuning.
    fine_tune:
        Ablation switch: False scores with the raw PLM embeddings (the
        un-fine-tuned encoder baseline rows).
    """

    def __init__(self, plm: "PretrainedLM | None" = None, encoder: str = "cross",
                 metapath: MetaPath = P_REF_P, n_pairs: int = 300,
                 fine_tune: bool = True, seed=0):
        super().__init__(seed=seed)
        if encoder not in ("bi", "cross"):
            raise ValueError(f"unknown encoder {encoder!r}")
        self.plm = plm
        self.encoder_kind = encoder
        self.metapath = metapath
        self.n_pairs = n_pairs
        self.fine_tune = fine_tune
        self._bi: "BiEncoder | None" = None
        self._cross: "CrossEncoder | None" = None
        self._label_embeddings: "np.ndarray | None" = None

    def _label_texts(self) -> list:
        assert self.label_set is not None
        texts = []
        for label in self.label_set:
            tokens = list(self.label_set.name_tokens(label))
            tokens += tokenize(self.label_set.description_of(label))
            texts.append(tokens)
        return texts

    def _fit(self, corpus: Corpus, supervision: Supervision) -> None:
        require(supervision, LabelNames)
        assert self.label_set is not None
        rng = derive_rng(self.rng, "micol")
        if self.plm is None:
            self.plm = get_pretrained_lm(target_corpus=corpus,
                                         seed=int(rng.integers(2**16)) % 7)
        if self.fine_tune:
            graph = HeterogeneousGraph.from_corpus(corpus)
            pairs = metapath_pairs(graph, self.metapath, self.n_pairs,
                                   seed=rng)
            pairs = [(a, b) for a, b in pairs if a in corpus and b in corpus]
            if pairs:
                anchor_docs = [corpus.get(a).tokens for a, _ in pairs]
                positive_docs = [corpus.get(b).tokens for _, b in pairs]
                anchors = self.plm.doc_embeddings(anchor_docs)
                positives = self.plm.doc_embeddings(positive_docs)
                if self.encoder_kind == "bi":
                    self._bi = BiEncoder(self.plm.dim,
                                         seed=int(rng.integers(2**31)))
                    self._bi.train_contrastive(anchors, positives, seed=rng)
                else:
                    self._cross = CrossEncoder(self.plm.dim,
                                               seed=int(rng.integers(2**31)))
                    self._cross.train_pairs(anchors, positives, seed=rng)
        self._label_embeddings = self.plm.doc_embeddings(self._label_texts())

    def _score(self, corpus: Corpus) -> np.ndarray:
        assert self.plm is not None and self._label_embeddings is not None
        docs = self.plm.doc_embeddings(corpus.token_lists())
        labels = self._label_embeddings
        if self._bi is not None:
            return self._bi.encode(docs) @ self._bi.encode(labels).T
        if self._cross is not None:
            n, m = docs.shape[0], labels.shape[0]
            a = np.repeat(docs, m, axis=0)
            b = np.tile(labels, (n, 1))
            return self._cross.score(a, b).reshape(n, m)
        return docs @ labels.T


register_method(
    MethodInfo(
        name="MICoL",
        venue="WWW'22",
        structure="flat",
        label_arity="multi-label",
        supervision=("LabelNames",),
        backbone="pretrained-lm",
        cls=MICoL,
    )
)
