"""MICoL: metadata-induced contrastive learning [WWW'22]."""

from repro.methods.micol.model import MICoL

__all__ = ["MICoL"]
