"""Hierarchical X-Class.

The tutorial's summary table lists X-Class as supporting hierarchical
(path) classification. This wrapper realizes that: one X-Class instance
per internal tree node, each classifying among that node's children using
class-oriented representations computed over the documents routed to it —
greedy top-down at prediction time, exactly the local-classifier-per-node
pattern WeSHClass uses, but with X-Class's label-names-only machinery.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import WeaklySupervisedTextClassifier
from repro.core.exceptions import SupervisionError
from repro.core.seeding import derive_rng
from repro.core.supervision import LabelNames, Supervision, require
from repro.core.types import Corpus, LabelSet
from repro.methods.xclass.model import XClass
from repro.plm.model import PretrainedLM
from repro.plm.provider import get_pretrained_lm
from repro.taxonomy.tree import ROOT, LabelTree


class HierarchicalXClass(WeaklySupervisedTextClassifier):
    """Top-down X-Class over a label tree (category names only).

    Parameters
    ----------
    tree:
        Label tree whose leaves are the supervision's label set.
    min_node_docs:
        Internal nodes routed fewer documents than this fall back to the
        parent's assignment confidence (their X-Class would be unstable).
    """

    def __init__(self, tree: LabelTree, plm: "PretrainedLM | None" = None,
                 min_node_docs: int = 12, seed=0):
        super().__init__(seed=seed)
        self.tree = tree
        self.plm = plm
        self.min_node_docs = min_node_docs
        #: internal node -> (fitted XClass over its children, children)
        self._local: dict = {}

    def _names_for(self, nodes: list, supervision: Supervision) -> LabelSet:
        names = dict(supervision.label_set.names)
        return LabelSet(labels=tuple(nodes),
                        names={n: names.get(n, n) for n in nodes})

    def _fit(self, corpus: Corpus, supervision: Supervision) -> None:
        require(supervision, LabelNames)
        assert self.label_set is not None
        missing = [l for l in self.label_set if l not in self.tree]
        if missing:
            raise SupervisionError(f"labels missing from tree: {missing}")
        rng = derive_rng(self.rng, "hier-xclass")
        if self.plm is None:
            self.plm = get_pretrained_lm(target_corpus=corpus,
                                         seed=int(rng.integers(2**16)) % 7)
        # Route documents down the tree, fitting one X-Class per node.
        assignments = {ROOT: list(range(len(corpus)))}
        frontier = [ROOT]
        while frontier:
            node = frontier.pop()
            children = self.tree.children(node)
            if len(children) < 2:
                continue
            doc_indices = assignments.get(node, [])
            if len(doc_indices) < self.min_node_docs:
                continue
            subset = corpus.subset(doc_indices,
                                   name=f"{corpus.name}@{node}")
            local = XClass(plm=self.plm, seed=int(rng.integers(2**31)))
            local.fit(subset, LabelNames(
                label_set=self._names_for(children, supervision)))
            self._local[node] = (local, children)
            predicted = local.predict(subset)
            for child in children:
                assignments[child] = [
                    doc_indices[i] for i, p in enumerate(predicted)
                    if p == child
                ]
                frontier.append(child)

    def _predict_proba(self, corpus: Corpus) -> np.ndarray:
        assert self.label_set is not None
        out = np.zeros((len(corpus), len(self.label_set)))
        # Greedy descent with probability products, batched per node.
        current = {ROOT: (list(range(len(corpus))), np.ones(len(corpus)))}
        while current:
            node, (indices, mass) = current.popitem()
            if node in self.label_set and node not in self._local:
                for i in indices:
                    out[i, self.label_set.index(node)] = mass[i]
                continue
            if node not in self._local:
                # Unmodeled internal node: spread over its subtree leaves.
                leaves = [l for l in self.tree.subtree_leaves(node)
                          if l in self.label_set]
                for i in indices:
                    for leaf in leaves:
                        out[i, self.label_set.index(leaf)] = (
                            mass[i] / len(leaves)
                        )
                continue
            local, children = self._local[node]
            subset = corpus.subset(indices, name=f"{corpus.name}@predict")
            proba = local.predict_proba(subset)
            hard = proba.argmax(axis=1)
            for c, child in enumerate(children):
                routed = [indices[i] for i in np.flatnonzero(hard == c)]
                if not routed:
                    continue
                new_mass = mass.copy()
                for i, idx in enumerate(indices):
                    if hard[i] == c:
                        new_mass[idx] = mass[idx] * proba[i, c]
                current[child] = (routed, new_mass)
        totals = out.sum(axis=1, keepdims=True)
        totals[totals == 0] = 1.0
        return out / totals
