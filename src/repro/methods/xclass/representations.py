"""Class-oriented representation learning (X-Class §3).

All representations live in the encoder's *contextual* space: a word's
static representation is the average of its contextualized occurrence
vectors over the corpus (X-Class's trick), a class representation starts
at its label-name's static representation and is refined with nearest
words, and a document representation is a weighted average of contextual
token vectors where a token's weight reflects its similarity to the most
similar class. The same corpus therefore yields different document
geometry under different label sets (topics vs. locations vs. sentiment) —
X-Class's core idea.
"""

from __future__ import annotations

import numpy as np

from repro.core.types import Corpus, LabelSet
from repro.nn.functional import cosine_similarity, l2_normalize
from repro.plm.model import PretrainedLM
from repro.text.stopwords import STOPWORDS


def contextual_word_table(plm: PretrainedLM, corpus: Corpus) -> tuple:
    """Average contextual vector per vocabulary word over ``corpus``.

    Returns ``(table (V, dim), counts (V,))``; rows with zero count are
    zero vectors.
    """
    vocab = plm.vocabulary
    table = np.zeros((len(vocab), plm.dim))
    counts = np.zeros(len(vocab))
    encoded = plm.encode_tokens(corpus.token_lists())
    for tokens, hidden in zip(corpus.token_lists(), encoded):
        ids = [vocab.id(t) for t in tokens[: hidden.shape[0]]]
        np.add.at(table, ids, hidden)
        np.add.at(counts, ids, 1.0)
    nonzero = counts > 0
    table[nonzero] /= counts[nonzero, None]
    return table, counts


def class_representations(plm: PretrainedLM, corpus: Corpus, label_set: LabelSet,
                          expand_words: int = 10,
                          word_table: "np.ndarray | None" = None,
                          word_counts: "np.ndarray | None" = None) -> np.ndarray:
    """(n_classes, dim) class representations in contextual space.

    Each class starts at the mean contextual-average embedding of its name
    tokens and is refined once with its ``expand_words`` nearest vocabulary
    words (harmonically weighted, as in the paper).
    """
    vocab = plm.vocabulary
    if word_table is None or word_counts is None:
        word_table, word_counts = contextual_word_table(plm, corpus)
    candidate_ids = np.array(
        [
            vocab.id(w)
            for w in vocab.content_tokens()
            if w not in STOPWORDS and word_counts[vocab.id(w)] >= 2
        ]
    )
    reps = []
    for label in label_set:
        name_ids = [
            vocab.id(t) for t in label_set.name_tokens(label)
            if t in vocab and word_counts[vocab.id(t)] > 0
        ]
        if name_ids:
            anchor = word_table[name_ids].mean(axis=0)
        else:
            # Name absent from corpus: fall back to the static embedding
            # projected through the word table's nearest in-corpus word.
            static = np.mean(
                [plm.word_embedding(t) for t in label_set.name_tokens(label)], axis=0
            )
            static_table = plm.encoder.token_embedding.weight.data
            sims = cosine_similarity(static[None, :], static_table[candidate_ids]).ravel()
            anchor = word_table[candidate_ids[int(np.argmax(sims))]]
        sims = cosine_similarity(anchor[None, :], word_table[candidate_ids]).ravel()
        top = candidate_ids[np.argsort(-sims)[:expand_words]]
        weights = 1.0 / np.arange(1, len(top) + 2)
        stack = np.vstack([anchor[None, :], word_table[top]])
        rep = (stack * weights[: len(stack), None]).sum(axis=0) / weights[: len(stack)].sum()
        reps.append(rep)
    return l2_normalize(np.stack(reps))


def class_oriented_doc_representations(plm: PretrainedLM, corpus: Corpus,
                                       class_reps: np.ndarray,
                                       temperature: float = 0.05) -> np.ndarray:
    """(n_docs, dim) class-attended document representations.

    Token weights are a softmax (over positions) of each token's maximum
    cosine similarity to any class representation; the document vector is
    the weighted mean of contextual token vectors.
    """
    encoded = plm.encode_tokens(corpus.token_lists())
    out = np.zeros((len(corpus), class_reps.shape[1]))
    for i, hidden in enumerate(encoded):
        normed = l2_normalize(hidden)
        sims = (normed @ class_reps.T).max(axis=1)  # (T,)
        weights = np.exp((sims - sims.max()) / temperature)
        weights /= weights.sum()
        out[i] = (hidden * weights[:, None]).sum(axis=0)
    return l2_normalize(out)


def average_doc_representations(plm: PretrainedLM, corpus: Corpus) -> np.ndarray:
    """Plain average-pooled document representations (the paper's Figure 1
    baseline geometry, before class orientation)."""
    return plm.doc_embeddings(corpus.token_lists())
