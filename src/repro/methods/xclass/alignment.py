"""Document-class alignment via prior-initialized Gaussian mixtures.

X-Class clusters the class-oriented document representations with a GMM
whose components are initialized at the per-class centroids of the
nearest-class-representation assignment, keeping cluster j aligned with
class j throughout EM. Posteriors double as confidence for selecting the
classifier's training subset.
"""

from __future__ import annotations

import numpy as np


class AlignedGaussianMixture:
    """Spherical-covariance GMM with fixed component-class identity."""

    def __init__(self, n_components: int, iterations: int = 30,
                 min_variance: float = 1e-4):
        self.n_components = n_components
        self.iterations = iterations
        self.min_variance = min_variance
        self.means: "np.ndarray | None" = None
        self.variances: "np.ndarray | None" = None
        self.weights: "np.ndarray | None" = None

    def fit(self, points: np.ndarray, init_assignment: np.ndarray) -> "AlignedGaussianMixture":
        """EM from an initial hard assignment (cluster j starts at class j's
        centroid, preserving alignment)."""
        points = np.asarray(points, dtype=float)
        n, dim = points.shape
        k = self.n_components
        means = np.zeros((k, dim))
        variances = np.full(k, 1.0)
        weights = np.full(k, 1.0 / k)
        global_mean = points.mean(axis=0)
        for j in range(k):
            members = points[init_assignment == j]
            means[j] = members.mean(axis=0) if len(members) else global_mean
            if len(members) > 1:
                variances[j] = max(self.min_variance,
                                   float(((members - means[j]) ** 2).mean()))
            weights[j] = max(1, len(members)) / n
        weights /= weights.sum()

        for _ in range(self.iterations):
            resp = self._responsibilities(points, means, variances, weights)
            mass = resp.sum(axis=0) + 1e-12
            weights = mass / n
            means = (resp.T @ points) / mass[:, None]
            for j in range(k):
                diff = points - means[j]
                variances[j] = max(
                    self.min_variance,
                    float((resp[:, j] @ (diff**2).sum(axis=1)) / (mass[j] * dim)),
                )
        self.means, self.variances, self.weights = means, variances, weights
        return self

    def _responsibilities(self, points, means, variances, weights) -> np.ndarray:
        n, dim = points.shape
        log_prob = np.zeros((n, self.n_components))
        for j in range(self.n_components):
            diff = points - means[j]
            log_prob[:, j] = (
                -0.5 * (diff**2).sum(axis=1) / variances[j]
                - 0.5 * dim * np.log(2 * np.pi * variances[j])
                + np.log(weights[j] + 1e-12)
            )
        log_prob -= log_prob.max(axis=1, keepdims=True)
        resp = np.exp(log_prob)
        return resp / resp.sum(axis=1, keepdims=True)

    def posterior(self, points: np.ndarray) -> np.ndarray:
        """(n, k) class posteriors."""
        if self.means is None:
            raise RuntimeError("mixture not fitted")
        return self._responsibilities(
            np.asarray(points, dtype=float), self.means, self.variances, self.weights
        )
