"""The X-Class classifier.

Pipeline (Wang et al., NAACL'21): class representations from label names,
class-oriented document representations, prior-aligned GMM clustering, and
a final classifier trained on the most confident cluster assignments.

``variant`` selects the paper's ablation rows:

- ``"rep"``  (X-Class-Rep): nearest class representation directly;
- ``"align"`` (X-Class-Align): GMM posterior assignment;
- ``"full"`` (X-Class): classifier trained on confident assignments.
"""

from __future__ import annotations

import numpy as np

from repro.classifiers import LogisticRegression
from repro.core.base import WeaklySupervisedTextClassifier
from repro.core.registry import MethodInfo, register_method
from repro.core.seeding import derive_rng
from repro.core.supervision import LabelNames, Supervision, require
from repro.core.types import Corpus
from repro.methods.xclass.alignment import AlignedGaussianMixture
from repro.methods.xclass.representations import (
    class_oriented_doc_representations,
    class_representations,
)
from repro.plm.model import PretrainedLM
from repro.plm.provider import get_pretrained_lm


class XClass(WeaklySupervisedTextClassifier):
    """Extremely-weak-supervision classification via class-oriented reps.

    Parameters
    ----------
    variant:
        ``"full"``, ``"align"``, or ``"rep"`` (ablation rows).
    confidence_fraction:
        Fraction of most-confident documents used to train the final
        classifier.
    """

    def __init__(self, plm: "PretrainedLM | None" = None, variant: str = "full",
                 confidence_fraction: float = 0.5, expand_words: int = 10,
                 seed=0):
        super().__init__(seed=seed)
        if variant not in ("full", "align", "rep"):
            raise ValueError(f"unknown variant {variant!r}")
        self.plm = plm
        self.variant = variant
        self.confidence_fraction = confidence_fraction
        self.expand_words = expand_words
        self.class_reps: "np.ndarray | None" = None
        self.mixture: "AlignedGaussianMixture | None" = None
        self._classifier: "LogisticRegression | None" = None

    def _doc_reps(self, corpus: Corpus) -> np.ndarray:
        assert self.plm is not None and self.class_reps is not None
        return class_oriented_doc_representations(self.plm, corpus, self.class_reps)

    def _fit(self, corpus: Corpus, supervision: Supervision) -> None:
        require(supervision, LabelNames)
        assert self.label_set is not None
        rng = derive_rng(self.rng, "xclass")
        if self.plm is None:
            self.plm = get_pretrained_lm(target_corpus=corpus,
                                         seed=int(rng.integers(2**16)) % 7)
        self.class_reps = class_representations(self.plm, corpus, self.label_set,
                                                expand_words=self.expand_words)
        reps = self._doc_reps(corpus)
        initial = (reps @ self.class_reps.T).argmax(axis=1)
        if self.variant == "rep":
            return
        self.mixture = AlignedGaussianMixture(len(self.label_set))
        self.mixture.fit(reps, initial)
        if self.variant == "align":
            return
        posterior = self.mixture.posterior(reps)
        confidence = posterior.max(axis=1)
        assignment = posterior.argmax(axis=1)
        keep_n = max(len(self.label_set) * 2,
                     int(len(corpus) * self.confidence_fraction))
        keep = np.argsort(-confidence)[:keep_n]
        self._classifier = LogisticRegression(
            reps.shape[1], len(self.label_set), seed=int(rng.integers(2**31))
        )
        self._classifier.fit(reps[keep], assignment[keep], epochs=60)

    def _predict_proba(self, corpus: Corpus) -> np.ndarray:
        reps = self._doc_reps(corpus)
        assert self.class_reps is not None
        if self.variant == "rep":
            sims = reps @ self.class_reps.T
            exp = np.exp((sims - sims.max(axis=1, keepdims=True)) / 0.05)
            return exp / exp.sum(axis=1, keepdims=True)
        if self.variant == "align":
            assert self.mixture is not None
            return self.mixture.posterior(reps)
        assert self._classifier is not None
        return self._classifier.predict_proba(reps)


register_method(
    MethodInfo(
        name="X-Class",
        venue="NAACL'21",
        structure="flat & hierarchical",
        label_arity="single-label & path",
        supervision=("LabelNames",),
        backbone="pretrained-lm",
        cls=XClass,
    )
)
