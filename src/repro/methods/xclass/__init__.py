"""X-Class: text classification with extremely weak supervision [NAACL'21]."""

from repro.methods.xclass.hierarchical import HierarchicalXClass
from repro.methods.xclass.model import XClass
from repro.methods.xclass.representations import (
    class_oriented_doc_representations,
    class_representations,
)

__all__ = [
    "XClass",
    "HierarchicalXClass",
    "class_representations",
    "class_oriented_doc_representations",
]
