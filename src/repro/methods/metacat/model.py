"""The MetaCat classifier.

Pipeline (Zhang et al., SIGIR'20):

1. **embedding learning**: words, documents, users, tags, and labels are
   embedded jointly by maximizing the likelihood of the generative
   process (realized as heterogeneous skip-gram over metadata-augmented
   context streams);
2. **training data synthesis**: each label generates synthetic documents
   by sampling words near its embedding (the generative process run
   forward), supplementing the few labeled documents;
3. a neural classifier trains on real + synthesized documents, with
   metadata tokens appended to every document's token stream so the
   network sees the same heterogeneous evidence the embedding saw.
"""

from __future__ import annotations

import numpy as np

from repro.classifiers import TextCNNClassifier
from repro.core.base import WeaklySupervisedTextClassifier
from repro.core.registry import MethodInfo, register_method
from repro.core.seeding import derive_rng
from repro.core.supervision import LabeledDocuments, Supervision, require
from repro.core.types import Corpus
from repro.methods.metacat.embedding import MetadataEmbeddingSpace


class MetaCat(WeaklySupervisedTextClassifier):
    """Metadata-aware categorization from a few labeled documents.

    Parameters
    ----------
    use_metadata:
        Ablation switch; when False the metadata tokens are excluded from
        both the embedding streams and the classifier inputs (reduces to a
        WeSTClass-style text-only pipeline).
    synth_per_class / synth_len:
        Synthetic training document count and length per class.
    """

    def __init__(self, dim: int = 48, use_metadata: bool = True,
                 synth_per_class: int = 40, synth_len: int = 25,
                 word_pool: int = 60, epochs: int = 25, seed=0):
        super().__init__(seed=seed)
        self.dim = dim
        self.use_metadata = use_metadata
        self.synth_per_class = synth_per_class
        self.synth_len = synth_len
        self.word_pool = word_pool
        self.epochs = epochs
        self.space: "MetadataEmbeddingSpace | None" = None
        self._classifier = None
        self._label_centroids: "np.ndarray | None" = None

    def _doc_tokens(self, doc) -> list:
        """Document tokens, with metadata tokens appended when enabled."""
        tokens = list(doc.tokens)
        if not self.use_metadata:
            return tokens
        meta = doc.metadata
        if "user" in meta:
            tokens.append(f"__user__{meta['user']}")
        for author in meta.get("authors", []):
            tokens.append(f"__author__{author}")
        if "venue" in meta:
            tokens.append(f"__venue__{meta['venue']}")
        for tag in meta.get("tags", []):
            tokens.append(f"__tag__{tag}")
        return tokens

    def _synthesize(self, label: str, rng: np.random.Generator) -> list:
        """Synthetic token lists for ``label`` from the joint space."""
        assert self.space is not None
        ranked = self.space.top_words_for_label(label, k=self.word_pool)
        words = [w for w, _ in ranked]
        sims = np.array([s for _, s in ranked])
        logits = sims / 0.1
        logits -= logits.max()
        probs = np.exp(logits)
        probs /= probs.sum()
        entities = (
            self.space.top_entities_for_label(label) if self.use_metadata else []
        )
        docs = []
        for _ in range(self.synth_per_class):
            idx = rng.choice(len(words), size=self.synth_len, p=probs)
            tokens = [words[i] for i in idx]
            if entities:
                # The generative process also emits metadata: synthetic
                # documents carry entity tokens near the label embedding.
                count = int(rng.integers(1, 3))
                picks = rng.choice(len(entities), size=min(count, len(entities)),
                                   replace=False)
                tokens.extend(entities[i] for i in picks)
            docs.append(tokens)
        return docs

    def _fit(self, corpus: Corpus, supervision: Supervision) -> None:
        supervision = require(supervision, LabeledDocuments)
        assert self.label_set is not None
        rng = derive_rng(self.rng, "metacat")
        doc_labels = {
            doc.doc_id: label for doc, label in supervision.pairs()
        }
        self.space = MetadataEmbeddingSpace(dim=self.dim,
                                            seed=int(rng.integers(2**31)))
        if self.use_metadata:
            self.space.fit(corpus, doc_labels)
        else:
            stripped = Corpus(
                [type(d)(doc_id=d.doc_id, tokens=list(d.tokens), labels=d.labels)
                 for d in corpus],
                name=f"{corpus.name}-nometa",
            )
            self.space.fit(stripped, doc_labels)

        token_lists: list[list[str]] = []
        targets: list[int] = []
        labels = list(self.label_set)
        for c, label in enumerate(labels):
            for doc in supervision.for_label(label):
                token_lists.append(self._doc_tokens(doc))
                targets.append(c)
            for synth in self._synthesize(label, rng):
                token_lists.append(synth)
                targets.append(c)

        vocab = self.space.model.vocabulary  # type: ignore[union-attr]
        assert vocab is not None
        self._classifier = TextCNNClassifier(
            vocab, len(labels), dim=self.dim, max_len=56,
            embedding_table=self.space.model.matrix(),  # type: ignore[union-attr]
            seed=int(rng.integers(2**31)),
        )
        self._classifier.fit(token_lists, np.asarray(targets), epochs=self.epochs)

        # Generative prior: each label's centroid over its labeled docs'
        # stream vectors scores test documents by likelihood direction.
        centroids = []
        for label in labels:
            vectors = np.stack(
                [self.space.document_stream_vector(d)
                 for d in supervision.for_label(label)]
            )
            mean = vectors.mean(axis=0)
            centroids.append(mean / (np.linalg.norm(mean) + 1e-12))
        self._label_centroids = np.stack(centroids)

    def _predict_proba(self, corpus: Corpus) -> np.ndarray:
        assert self._classifier is not None and self.space is not None
        proba = self._classifier.predict_proba(
            [self._doc_tokens(d) for d in corpus]
        )
        assert self._label_centroids is not None
        docs = np.stack([self.space.document_stream_vector(d) for d in corpus])
        sims = docs @ self._label_centroids.T
        prior = np.exp((sims - sims.max(axis=1, keepdims=True)) / 0.1)
        prior /= prior.sum(axis=1, keepdims=True)
        blended = np.sqrt(proba * prior)
        return blended / blended.sum(axis=1, keepdims=True)


register_method(
    MethodInfo(
        name="MetaCat",
        venue="SIGIR'20",
        structure="flat",
        label_arity="single-label",
        supervision=("LabeledDocuments",),
        backbone="embedding",
        cls=MetaCat,
    )
)
