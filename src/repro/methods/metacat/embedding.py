"""Joint embedding of words, documents, metadata, and labels.

MetaCat's generative process (user -> document -> words, document -> tags,
label -> document) is trained by maximizing the likelihood of the observed
links. We realize that objective as skip-gram with negative sampling over
*heterogeneous context streams*: for each document, a stream containing
its user token, its label token (when known), its tag tokens, and its
words. Entities co-occurring in a stream are pulled together, which is
exactly the generative model's MLE direction under the log-bilinear
parameterization.
"""

from __future__ import annotations

import numpy as np

from repro.core.types import Corpus
from repro.embeddings.word2vec import Word2Vec
from repro.nn.functional import l2_normalize


def _entity_token(kind: str, name: str) -> str:
    return f"__{kind}__{name}"


class MetadataEmbeddingSpace:
    """Words + metadata entities + labels on one sphere."""

    def __init__(self, dim: int = 48, epochs: int = 6,
                 seed: "int | np.random.Generator" = 0):
        self.dim = dim
        self.epochs = epochs
        self.seed = seed
        self.model: "Word2Vec | None" = None

    def build_streams(self, corpus: Corpus, doc_labels: "dict | None" = None) -> list:
        """Heterogeneous context streams, one per document.

        ``doc_labels`` optionally maps doc_id -> label for the (few)
        labeled documents; their label token joins the stream.
        """
        streams: list[list[str]] = []
        doc_labels = doc_labels or {}
        for doc in corpus:
            meta = doc.metadata
            globals_: list[str] = []  # global metadata "causes" every word
            if "user" in meta:
                globals_.append(_entity_token("user", meta["user"]))
            for author in meta.get("authors", []):
                globals_.append(_entity_token("author", author))
            if "venue" in meta:
                globals_.append(_entity_token("venue", meta["venue"]))
            if doc.doc_id in doc_labels:
                globals_.append(_entity_token("label", doc_labels[doc.doc_id]))
            # Broadcast global tokens through the word stream: the
            # generative process conditions every word on them, so their
            # co-occurrence statistics must span the whole document, not
            # just a window at the front.
            stream: list[str] = []
            for i, word in enumerate(doc.tokens):
                if globals_ and i % 6 == 0:
                    stream.append(globals_[(i // 6) % len(globals_)])
                stream.append(word)
            stream.extend(globals_)
            for tag in meta.get("tags", []):  # local metadata describes the doc
                stream.append(_entity_token("tag", tag))
            streams.append(stream)
        return streams

    def fit(self, corpus: Corpus, doc_labels: "dict | None" = None) -> "MetadataEmbeddingSpace":
        """Train the joint space on the corpus + metadata streams."""
        streams = self.build_streams(corpus, doc_labels)
        # Wide window so metadata tokens at the stream edges reach words.
        self.model = Word2Vec(dim=self.dim, window=8, epochs=self.epochs,
                              seed=self.seed)
        self.model.fit(streams)
        return self

    # -- lookups --------------------------------------------------------------
    def word_vector(self, word: str) -> np.ndarray:
        """Unit-normalized word embedding."""
        assert self.model is not None
        return l2_normalize(self.model.vector(word)[None, :])[0]

    def entity_vector(self, kind: str, name: str) -> np.ndarray:
        """Unit-normalized embedding of a metadata entity."""
        return self.word_vector(_entity_token(kind, name))

    def label_vector(self, label: str) -> np.ndarray:
        """Unit-normalized embedding of a label token."""
        return self.entity_vector("label", label)

    def has_entity(self, kind: str, name: str) -> bool:
        """True when the entity token was seen during fitting."""
        assert self.model is not None and self.model.vocabulary is not None
        return _entity_token(kind, name) in self.model.vocabulary

    def document_stream_vector(self, doc) -> np.ndarray:
        """Mean embedding of a document's words and metadata tokens."""
        assert self.model is not None
        tokens = list(doc.tokens)
        meta = doc.metadata
        if "user" in meta:
            tokens.append(_entity_token("user", meta["user"]))
        for tag in meta.get("tags", []):
            tokens.append(_entity_token("tag", tag))
        vecs = [self.model.vector(t) for t in tokens]
        return l2_normalize(np.mean(vecs, axis=0)[None, :])[0]

    def top_entities_for_label(self, label: str, kinds: tuple = ("user", "tag"),
                               k: int = 8) -> list:
        """Metadata entity tokens nearest the label embedding."""
        assert self.model is not None and self.model.vocabulary is not None
        from repro.nn.functional import cosine_similarity

        vocab = self.model.vocabulary
        vec = self.label_vector(label)
        table = self.model.matrix()
        sims = cosine_similarity(vec[None, :], table).ravel()
        prefixes = tuple(f"__{kind}__" for kind in kinds)
        out: list[str] = []
        for i in np.argsort(-sims):
            word = vocab.token(int(i))
            if word.startswith(prefixes):
                out.append(word)
                if len(out) == k:
                    break
        return out

    def top_words_for_label(self, label: str, k: int = 50) -> list:
        """Vocabulary words nearest the label embedding (word synthesis pool)."""
        assert self.model is not None and self.model.vocabulary is not None
        from repro.nn.functional import cosine_similarity

        vocab = self.model.vocabulary
        vec = self.label_vector(label)
        table = self.model.matrix()
        sims = cosine_similarity(vec[None, :], table).ravel()
        out: list[tuple[str, float]] = []
        for i in np.argsort(-sims):
            word = vocab.token(int(i))
            if word.startswith("__") or word.startswith("["):
                continue
            out.append((word, float(sims[i])))
            if len(out) == k:
                break
        return out
