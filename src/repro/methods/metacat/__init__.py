"""MetaCat: minimally supervised categorization of text with metadata [SIGIR'20]."""

from repro.methods.metacat.embedding import MetadataEmbeddingSpace
from repro.methods.metacat.model import MetaCat

__all__ = ["MetaCat", "MetadataEmbeddingSpace"]
