"""The WeSHClass hierarchical classifier.

Pipeline (Meng et al., AAAI'19):

- **local classifier per node**: each internal node trains a WeSTClass-style
  flat classifier over its children, pre-trained on vMF pseudo-documents
  from the children's seed distributions;
- **global classifier per level**: the probability of a depth-k node is the
  product of local probabilities along its root path (the ensemble of all
  local classifiers from the root down to level k);
- **self-training per level**, top-down, with sharpened global targets.

Predictions descend greedily; the public label space is the tree's leaves.
Ablations: ``use_global=False`` (No-global: leaf decision from the deepest
local classifier alone after an unweighted top-down pass — here identical
mechanics but without level-wise global self-training), ``use_vmf=False``
(No-vMF), ``self_train=False`` (No-self-train).
"""

from __future__ import annotations

import numpy as np

from repro.classifiers import TextCNNClassifier, sharpen_distribution
from repro.core.base import WeaklySupervisedTextClassifier
from repro.core.exceptions import SupervisionError
from repro.core.registry import MethodInfo, register_method
from repro.core.seeding import derive_rng
from repro.core.supervision import (
    Keywords,
    LabeledDocuments,
    LabelNames,
    Supervision,
    require,
)
from repro.core.types import Corpus
from repro.embeddings.joint import JointEmbeddingSpace
from repro.methods.westclass.pseudo import PseudoDocumentGenerator
from repro.taxonomy.tree import ROOT, LabelTree
from repro.text.tfidf import TfidfVectorizer


class WeSHClass(WeaklySupervisedTextClassifier):
    """Hierarchical classification from keyword- or document-level seeds.

    Parameters
    ----------
    tree:
        The label tree. Must cover the supervision's label set as leaves.
    use_global / use_vmf / self_train:
        Ablation switches (No-global, No-vMF, No-self-train).
    """

    def __init__(self, tree: LabelTree, use_global: bool = True,
                 use_vmf: bool = True, self_train: bool = True,
                 pseudo_per_class: int = 30, pseudo_len: int = 25,
                 expand_to: int = 8, dim: int = 48, pretrain_epochs: int = 10,
                 self_train_rounds: int = 3, seed=0):
        super().__init__(seed=seed)
        self.tree = tree
        self.use_global = use_global
        self.use_vmf = use_vmf
        self.self_train = self_train
        self.pseudo_per_class = pseudo_per_class
        self.pseudo_len = pseudo_len
        self.expand_to = expand_to
        self.dim = dim
        self.pretrain_epochs = pretrain_epochs
        self.self_train_rounds = self_train_rounds
        self.space: "JointEmbeddingSpace | None" = None
        self.node_seeds: dict = {}
        #: internal node -> (classifier, ordered children)
        self._local: dict = {}

    # -- seeds -------------------------------------------------------------------
    def _node_seed_words(self, corpus: Corpus, supervision: Supervision) -> dict:
        """Seed words for every tree node (leaves and internals)."""
        assert self.space is not None
        vocab = self.space.word_model.vocabulary
        assert vocab is not None
        seeds: dict[str, list[str]] = {}
        if isinstance(supervision, Keywords):
            for label, words in supervision.keywords.items():
                seeds[label] = [w for w in words if w in vocab] or list(words)[:1]
        elif isinstance(supervision, LabeledDocuments):
            vectorizer = TfidfVectorizer()
            vectorizer.fit(corpus.token_lists())
            for label in supervision.label_set:
                docs = supervision.for_label(label)
                terms = vectorizer.top_terms([d.tokens for d in docs],
                                             k=self.expand_to)
                merged: list[str] = []
                for doc_terms in terms:
                    for term in doc_terms:
                        if term not in merged:
                            merged.append(term)
                seeds[label] = merged[: self.expand_to] or [label]
        else:  # LabelNames
            for label in supervision.label_set:
                seeds[label] = [label]
        # Expand every seeded node via embedding neighbours.
        for label, words in list(seeds.items()):
            anchor = [w for w in words if w in vocab] or words[:1]
            self.space.set_label_seeds({label: anchor})
            expanded = self.space.nearest_words_to_label(
                label, k=self.expand_to, exclude=set(anchor)
            )
            seeds[label] = (anchor + expanded)[: self.expand_to]
        # Internal nodes inherit the union of their children's seeds when
        # they were not seeded directly (keyword supervision often seeds
        # leaves only).
        for node in reversed(self.tree.nodes):  # bottom-up
            if node in seeds:
                continue
            children = self.tree.children(node)
            pooled: list[str] = []
            for child in children:
                pooled.extend(seeds.get(child, [])[:3])
            seeds[node] = pooled or [node]
        return seeds

    # -- fitting ------------------------------------------------------------------
    def _fit(self, corpus: Corpus, supervision: Supervision) -> None:
        require(supervision, LabelNames, Keywords, LabeledDocuments)
        assert self.label_set is not None
        missing = [l for l in self.label_set if l not in self.tree]
        if missing:
            raise SupervisionError(f"labels missing from tree: {missing}")
        rng = derive_rng(self.rng, "weshclass")
        self.space = JointEmbeddingSpace(dim=self.dim,
                                         seed=int(rng.integers(2**31)))
        self.space.fit(corpus.token_lists())
        self.node_seeds = self._node_seed_words(corpus, supervision)

        token_lists = corpus.token_lists()
        # Train local classifiers per internal node (ROOT included).
        for parent in [ROOT] + self.tree.internal():
            children = self.tree.children(parent)
            if len(children) < 2:
                continue
            child_seeds = {c: self.node_seeds[c] for c in children}
            self.space.set_label_seeds(child_seeds)
            generator = PseudoDocumentGenerator(self.space, child_seeds,
                                                use_vmf=self.use_vmf)
            pseudo_docs, targets = generator.generate_all(
                self.pseudo_per_class, doc_len=self.pseudo_len, seed=rng
            )
            if isinstance(supervision, LabeledDocuments):
                for doc, leaf in supervision.pairs():
                    path = set(self.tree.path_to_root(leaf))
                    hits = [i for i, c in enumerate(children) if c in path]
                    if hits:
                        pseudo_docs.append(doc.tokens)
                        row = np.zeros(len(children))
                        row[hits[0]] = 1.0
                        targets = np.vstack([targets, row])
            vocab = self.space.word_model.vocabulary
            assert vocab is not None
            classifier = TextCNNClassifier(
                vocab, len(children), dim=self.dim,
                embedding_table=self.space.word_model.matrix(),
                seed=int(rng.integers(2**31)),
            )
            classifier.fit(pseudo_docs, targets, epochs=self.pretrain_epochs)
            self._local[parent] = (classifier, children)

        if self.self_train:
            self._global_self_train(token_lists)

    def _level_global_proba(self, token_lists: list, depth: int,
                            cache: dict) -> tuple:
        """(nodes at depth, product-of-path global probabilities)."""
        nodes = self.tree.level(depth)
        proba = np.zeros((len(token_lists), len(nodes)))
        for j, node in enumerate(nodes):
            path = self.tree.path_from_root(node)
            column = np.ones(len(token_lists))
            parent = ROOT
            for hop in path:
                if parent in self._local:
                    classifier, children = self._local[parent]
                    if parent not in cache:
                        cache[parent] = classifier.predict_proba(token_lists)
                    column = column * cache[parent][:, children.index(hop)]
                parent = hop
            proba[:, j] = column
        totals = proba.sum(axis=1, keepdims=True)
        totals[totals == 0] = 1.0
        return nodes, proba / totals

    def _global_self_train(self, token_lists: list) -> None:
        """Level-wise self-training with sharpened global targets."""
        for depth in range(1, self.tree.max_depth() + 1):
            for _ in range(self.self_train_rounds):
                cache: dict = {}
                nodes, global_proba = self._level_global_proba(
                    token_lists, depth, cache
                )
                targets = sharpen_distribution(global_proba)
                # Push the sharpened targets into each parent's local
                # classifier, marginalizing target mass over its children.
                parents = sorted({self.tree.parent(n) for n in nodes})
                for parent in parents:
                    if parent not in self._local:
                        continue
                    classifier, children = self._local[parent]
                    child_cols = {
                        c: [j for j, n in enumerate(nodes)
                            if c in self.tree.path_from_root(n)]
                        for c in children
                    }
                    local_targets = np.zeros((len(token_lists), len(children)))
                    for k, child in enumerate(children):
                        cols = child_cols[child]
                        if cols:
                            local_targets[:, k] = targets[:, cols].sum(axis=1)
                    mass = local_targets.sum(axis=1)
                    keep = mass > 1e-6
                    if not keep.any():
                        continue
                    local_targets[keep] /= mass[keep, None]
                    classifier.fit(
                        [token_lists[i] for i in np.flatnonzero(keep)],
                        local_targets[keep], epochs=1, lr=1e-3,
                    )

    # -- prediction ------------------------------------------------------------------
    def _predict_proba(self, corpus: Corpus) -> np.ndarray:
        assert self.label_set is not None
        token_lists = corpus.token_lists()
        cache: dict = {}
        if self.use_global:
            depth = self.tree.max_depth()
            nodes, proba = self._level_global_proba(token_lists, depth, cache)
            # Map deepest-level nodes onto the leaf label set (leaves at a
            # shallower depth keep their path product).
            out = np.zeros((len(token_lists), len(self.label_set)))
            for j, node in enumerate(nodes):
                if node in self.label_set:
                    out[:, self.label_set.index(node)] = proba[:, j]
            missing = [l for l in self.label_set if l not in nodes]
            for leaf in missing:
                _, leaf_proba = self._level_global_proba(
                    token_lists, self.tree.depth(leaf), cache
                )
                level_nodes = self.tree.level(self.tree.depth(leaf))
                out[:, self.label_set.index(leaf)] = leaf_proba[
                    :, level_nodes.index(leaf)
                ]
        else:
            # No-global: greedy top-down descent with local probabilities.
            out = np.zeros((len(token_lists), len(self.label_set)))
            for i, tokens in enumerate(token_lists):
                node, prob = ROOT, 1.0
                while node in self._local:
                    classifier, children = self._local[node]
                    local = classifier.predict_proba([tokens])[0]
                    best = int(local.argmax())
                    prob *= float(local[best])
                    node = children[best]
                if node in self.label_set:
                    out[i, self.label_set.index(node)] = prob
        totals = out.sum(axis=1, keepdims=True)
        totals[totals == 0] = 1.0
        return out / totals

    def predict_level(self, corpus: Corpus, depth: int) -> list:
        """Predicted labels at tree depth ``depth`` (global ensemble)."""
        self._check_fitted()
        cache: dict = {}
        nodes, proba = self._level_global_proba(corpus.token_lists(), depth, cache)
        return [nodes[int(i)] for i in proba.argmax(axis=1)]


register_method(
    MethodInfo(
        name="WeSHClass",
        venue="AAAI'19",
        structure="hierarchical",
        label_arity="path",
        supervision=("LabelNames", "Keywords", "LabeledDocuments"),
        backbone="embedding",
        cls=WeSHClass,
    )
)
