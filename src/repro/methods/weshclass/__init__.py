"""WeSHClass: weakly-supervised hierarchical text classification [AAAI'19]."""

from repro.methods.weshclass.model import WeSHClass

__all__ = ["WeSHClass"]
