"""TaxoClass: hierarchical multi-label classification from class names [NAACL'21]."""

from repro.methods.taxoclass.exploration import top_down_search
from repro.methods.taxoclass.model import TaxoClass

__all__ = ["TaxoClass", "top_down_search"]
