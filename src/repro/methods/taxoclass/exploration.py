"""Top-down taxonomy exploration (TaxoClass §3.2).

The label space of a large taxonomy is shrunk per document by descending
from the root: at every visited node, only the ``beam`` most relevant
children (per the document-class relevance model) are expanded. The
returned candidate set is the union of visited nodes — typically a tiny
fraction of the taxonomy.
"""

from __future__ import annotations

import numpy as np

from repro.taxonomy.dag import ROOT, LabelDAG


def top_down_search(dag: LabelDAG, relevance_of: dict, beam: int = 3,
                    max_candidates: int = 24) -> list:
    """Candidate labels for one document.

    ``relevance_of`` maps every label to its relevance score for the
    document (higher = more relevant). Children outside the per-node beam
    are pruned along with their whole subtrees.
    """
    visited: list[str] = []
    frontier = [ROOT]
    seen = set()
    while frontier and len(visited) < max_candidates:
        next_frontier: list[str] = []
        for node in frontier:
            children = [c for c in dag.children(node) if c not in seen]
            if not children:
                continue
            ranked = sorted(children, key=lambda c: relevance_of.get(c, 0.0),
                            reverse=True)
            for child in ranked[:beam]:
                seen.add(child)
                visited.append(child)
                next_frontier.append(child)
        frontier = next_frontier
    return visited[:max_candidates]


def candidate_matrix(dag: LabelDAG, relevance: np.ndarray, labels: list,
                     beam: int = 3, max_candidates: int = 24) -> list:
    """Per-document candidate label lists from a relevance matrix.

    ``relevance`` is (n_docs, n_labels) aligned with ``labels``.
    """
    out: list[list[str]] = []
    for row in relevance:
        rel = {label: float(score) for label, score in zip(labels, row)}
        out.append(top_down_search(dag, rel, beam=beam,
                                   max_candidates=max_candidates))
    return out
