"""The TaxoClass multi-label classifier.

Pipeline (Shen et al., NAACL'21):

1. **document-class relevance** from an NLI-style relevance model
   (premise = document, hypothesis = "this document is about <class>");
2. **top-down exploration** shrinks each document's label search space;
3. **core classes**: each document's most confidently relevant candidate
   classes become positive pseudo-labels;
4. **bootstrap + self-training**: a one-vs-all classifier over PLM
   document embeddings trains on core classes, then expands its own
   confident predictions (closed upward along the DAG) for another round.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import MultiLabelTextClassifier
from repro.core.registry import MethodInfo, register_method
from repro.core.seeding import derive_rng
from repro.core.supervision import LabelNames, Supervision, require
from repro.core.types import Corpus
from repro.methods.taxoclass.exploration import candidate_matrix
from repro.nn.layers import Linear
from repro.nn.losses import binary_cross_entropy_with_logits
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor, get_default_dtype
from repro.plm.model import PretrainedLM
from repro.plm.provider import get_pretrained_lm, get_relevance_model
from repro.taxonomy.dag import LabelDAG


class _OneVsAllHead:
    """Independent binary logits per label over document features."""

    def __init__(self, n_features: int, n_labels: int, rng: np.random.Generator):
        self.linear = Linear(n_features, n_labels, rng)

    def fit(self, features: np.ndarray, targets: np.ndarray,
            mask: "np.ndarray | None" = None, epochs: int = 60,
            lr: float = 5e-2, batch_size: int = 64,
            rng: "np.random.Generator | None" = None) -> None:
        """Train with element-wise BCE; ``mask`` weights the known entries."""
        rng = rng or np.random.default_rng(0)
        optimizer = Adam(self.linear.parameters(), lr=lr, weight_decay=1e-4)
        n = features.shape[0]
        features = np.asarray(features,
                              dtype=self.linear.weight.data.dtype)
        for _ in range(epochs):
            order = rng.permutation(n)
            for start in range(0, n, batch_size):
                take = order[start : start + batch_size]
                logits = self.linear(Tensor(features[take]))
                weights = mask[take] if mask is not None else None
                loss = binary_cross_entropy_with_logits(
                    logits, targets[take], weights=weights
                )
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()

    def scores(self, features: np.ndarray) -> np.ndarray:
        """Per-label sigmoid probabilities."""
        features = np.asarray(features,
                              dtype=self.linear.weight.data.dtype)
        logits = self.linear(Tensor(features)).data
        return 1.0 / (1.0 + np.exp(-logits))


class TaxoClass(MultiLabelTextClassifier):
    """Hierarchical multi-label classification using only class names.

    Parameters
    ----------
    dag:
        The label DAG covering the supervision's label set.
    beam / max_candidates:
        Top-down exploration width and candidate cap.
    core_top:
        Core classes per document (top scorers among candidates).
    rounds:
        Bootstrap/self-training rounds after the initial fit.
    """

    def __init__(self, dag: LabelDAG, plm: "PretrainedLM | None" = None,
                 beam: int = 3, max_candidates: int = 24, core_top: int = 2,
                 rounds: int = 2, confidence: float = 0.75, seed=0):
        super().__init__(seed=seed)
        self.dag = dag
        self.plm = plm
        self.beam = beam
        self.max_candidates = max_candidates
        self.core_top = core_top
        self.rounds = rounds
        self.confidence = confidence
        self._head: "_OneVsAllHead | None" = None
        self._relevance = None

    def _features(self, corpus: Corpus) -> np.ndarray:
        assert self.plm is not None
        return self.plm.doc_embeddings(corpus.token_lists())

    def _fit(self, corpus: Corpus, supervision: Supervision) -> None:
        require(supervision, LabelNames)
        assert self.label_set is not None
        rng = derive_rng(self.rng, "taxoclass")
        if self.plm is None:
            self.plm = get_pretrained_lm(target_corpus=corpus,
                                         seed=int(rng.integers(2**16)) % 7)
        self._relevance = get_relevance_model(self.plm)
        labels = list(self.label_set)
        name_tokens = [self.label_set.name_tokens(l) for l in labels]
        relevance = self._relevance.relevance_matrix(corpus.token_lists(),
                                                     name_tokens)

        # Shrink the label space per document, then pick core classes.
        candidates = candidate_matrix(self.dag, relevance, labels,
                                      beam=self.beam,
                                      max_candidates=self.max_candidates)
        label_index = {l: i for i, l in enumerate(labels)}
        n, m = len(corpus), len(labels)
        targets = np.zeros((n, m), dtype=get_default_dtype())
        known = np.zeros((n, m), dtype=get_default_dtype())
        for i, cand in enumerate(candidates):
            if not cand:
                continue
            ranked = sorted(cand, key=lambda l: relevance[i, label_index[l]],
                            reverse=True)
            core = ranked[: self.core_top]
            positives = self.dag.closure(core) & set(labels)
            for label in positives:
                targets[i, label_index[label]] = 1.0
            # Candidates judged irrelevant are confident negatives; labels
            # never explored stay unknown (zero weight).
            for label in cand:
                known[i, label_index[label]] = 1.0
            for label in positives:
                known[i, label_index[label]] = 1.0

        # Unexplored labels are weak negatives: without them the head has
        # no global calibration and over-predicts shallow labels.
        known = np.maximum(known, 0.15)

        features = self._features(corpus)
        self._head = _OneVsAllHead(features.shape[1], m,
                                   np.random.default_rng(int(rng.integers(2**31))))
        self._head.fit(features, targets, mask=known, rng=rng)

        # Self-training: confident predictions (closed upward) become new
        # supervision for another round.
        for _ in range(self.rounds):
            scores = self._head.scores(features)
            new_targets = targets.copy()
            new_known = known.copy()
            for i in range(n):
                confident_pos = np.flatnonzero(scores[i] >= self.confidence)
                pos_labels = {labels[j] for j in confident_pos}
                closed = self.dag.closure(pos_labels) & set(labels)
                for label in closed:
                    new_targets[i, label_index[label]] = 1.0
                    new_known[i, label_index[label]] = 1.0
                confident_neg = np.flatnonzero(scores[i] <= 1.0 - self.confidence)
                new_known[i, confident_neg] = 1.0
            self._head.fit(features, new_targets, mask=new_known, epochs=30,
                           rng=rng)
            targets, known = new_targets, new_known

    def _score(self, corpus: Corpus) -> np.ndarray:
        assert self._head is not None
        return self._head.scores(self._features(corpus))


register_method(
    MethodInfo(
        name="TaxoClass",
        venue="NAACL'21",
        structure="hierarchical",
        label_arity="multi-label",
        supervision=("LabelNames",),
        backbone="pretrained-lm",
        cls=TaxoClass,
    )
)
