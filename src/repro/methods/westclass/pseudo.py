"""Pseudo-document generation from class seed distributions.

WeSTClass fits a von Mises–Fisher distribution per class over the seed-word
embeddings, then samples bag-of-keywords pseudo-documents: each document
draws a direction from the class vMF and emits words with probability
proportional to ``exp(cos(word, direction) / temperature)``, mixed with a
background unigram component.
"""

from __future__ import annotations

import numpy as np

from repro.core.seeding import ensure_rng
from repro.embeddings.joint import JointEmbeddingSpace
from repro.embeddings.vmf import VonMisesFisher
from repro.nn.functional import l2_normalize


class PseudoDocumentGenerator:
    """Samples pseudo-documents for each class.

    Parameters
    ----------
    space:
        Fitted joint embedding space with label seeds set.
    background:
        Probability of drawing a token from the corpus unigram instead of
        the class-directed distribution (the paper's alpha).
    temperature:
        Softmax temperature over word-direction cosines.
    use_vmf:
        When False (the No-vMF ablation), directions are not resampled —
        every pseudo-document uses the fixed class mean direction.
    """

    def __init__(self, space: JointEmbeddingSpace, seeds: dict,
                 background: float = 0.25, temperature: float = 0.1,
                 use_vmf: bool = True, candidate_pool: int = 300):
        self.space = space
        self.seeds = seeds
        self.background = background
        self.temperature = temperature
        self.use_vmf = use_vmf
        self.candidate_pool = candidate_pool
        self._vmf: dict = {}
        self._fit()

    def _fit(self) -> None:
        for label, words in self.seeds.items():
            vectors = np.stack([self.space.word_vector(w) for w in words])
            self._vmf[label] = VonMisesFisher.fit(vectors)

    def vmf(self, label: str) -> VonMisesFisher:
        """The fitted class distribution (exposed for inspection/tests)."""
        return self._vmf[label]

    def _word_table(self) -> tuple:
        vocab = self.space.word_model.vocabulary
        assert vocab is not None
        words = vocab.content_tokens()
        table = l2_normalize(
            np.stack([self.space.word_model.vector(w) for w in words])
        )
        counts = np.array([vocab.frequency(w) for w in words], dtype=float)
        unigram = counts / counts.sum() if counts.sum() else np.full(len(words), 1.0 / len(words))
        return words, table, unigram

    def generate(self, label: str, n_docs: int, doc_len: int = 30,
                 seed: "int | np.random.Generator" = 0) -> list:
        """``n_docs`` pseudo token lists for ``label``."""
        rng = ensure_rng(seed)
        words, table, unigram = self._word_table()
        vmf = self._vmf[label]
        docs: list[list[str]] = []
        for d in range(n_docs):
            if self.use_vmf:
                direction = vmf.sample(1, seed=rng)[0]
            else:
                direction = vmf.mu
            sims = table @ direction
            # Restrict to the most aligned candidate pool for sharpness.
            pool = np.argsort(-sims)[: self.candidate_pool]
            logits = sims[pool] / self.temperature
            logits -= logits.max()
            probs = np.exp(logits)
            probs /= probs.sum()
            n_background = int(rng.binomial(doc_len, self.background))
            n_topic = doc_len - n_background
            topic_idx = rng.choice(pool, size=n_topic, p=probs)
            bg_idx = rng.choice(len(words), size=n_background, p=unigram)
            tokens = [words[i] for i in topic_idx] + [words[i] for i in bg_idx]
            perm = rng.permutation(len(tokens))
            docs.append([tokens[i] for i in perm])
        return docs

    def generate_all(self, n_per_class: int, doc_len: int = 30,
                     seed: "int | np.random.Generator" = 0) -> tuple:
        """(token_lists, soft_targets) across all classes.

        Soft targets put mass ``1 - alpha`` on the generating class and
        spread ``alpha`` uniformly (the paper's label smoothing for pseudo
        documents), with alpha equal to the background ratio.
        """
        rng = ensure_rng(seed)
        labels = list(self.seeds)
        token_lists: list[list[str]] = []
        targets: list[np.ndarray] = []
        alpha = self.background
        for c, label in enumerate(labels):
            docs = self.generate(label, n_per_class, doc_len=doc_len, seed=rng)
            row = np.full(len(labels), alpha / len(labels))
            row[c] += 1.0 - alpha
            token_lists.extend(docs)
            targets.extend([row.copy()] * len(docs))
        return token_lists, np.stack(targets)
