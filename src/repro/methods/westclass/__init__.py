"""WeSTClass: weakly-supervised neural text classification [CIKM'18]."""

from repro.methods.westclass.model import WeSTClass
from repro.methods.westclass.pseudo import PseudoDocumentGenerator

__all__ = ["WeSTClass", "PseudoDocumentGenerator"]
