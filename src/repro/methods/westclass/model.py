"""The WeSTClass classifier.

Pipeline (Meng et al., CIKM'18):

1. embed words, labels, and documents into one latent sphere;
2. derive class seed words from whichever supervision the user supplied
   (label names -> nearest neighbours; keywords -> as given; labeled
   documents -> top TF-IDF terms);
3. generate vMF pseudo-documents and pre-train a neural classifier
   (CNN or HAN variant) on them with smoothed labels;
4. self-train on the unlabeled corpus with sharpened targets.
"""

from __future__ import annotations

import numpy as np

from repro.classifiers import (
    AttentiveClassifier,
    SelfTrainingLoop,
    TextCNNClassifier,
)
from repro.core.base import WeaklySupervisedTextClassifier
from repro.core.registry import MethodInfo, register_method
from repro.core.seeding import derive_rng
from repro.core.supervision import (
    Keywords,
    LabeledDocuments,
    LabelNames,
    Supervision,
    require,
)
from repro.core.types import Corpus
from repro.embeddings.joint import JointEmbeddingSpace
from repro.methods.westclass.pseudo import PseudoDocumentGenerator
from repro.text.tfidf import TfidfVectorizer


class WeSTClass(WeaklySupervisedTextClassifier):
    """Weakly-supervised neural text classification via pseudo documents.

    Parameters
    ----------
    classifier:
        ``"cnn"`` (WeSTClass-CNN) or ``"han"`` (WeSTClass-HAN).
    self_train:
        Disable for the NoST ablation rows.
    use_vmf:
        Disable for the No-vMF ablation (fixed mean direction).
    pseudo_per_class / pseudo_len:
        Pseudo-document corpus size and length.
    expand_to:
        Seed count when expanding from label names.
    """

    def __init__(self, classifier: str = "cnn", self_train: bool = True,
                 use_vmf: bool = True, pseudo_per_class: int = 40,
                 pseudo_len: int = 30, expand_to: int = 8, dim: int = 48,
                 pretrain_epochs: int = 12, self_train_iterations: int = 4,
                 seed=0):
        super().__init__(seed=seed)
        if classifier not in ("cnn", "han"):
            raise ValueError(f"classifier must be 'cnn' or 'han', got {classifier!r}")
        self.classifier_kind = classifier
        self.self_train = self_train
        self.use_vmf = use_vmf
        self.pseudo_per_class = pseudo_per_class
        self.pseudo_len = pseudo_len
        self.expand_to = expand_to
        self.dim = dim
        self.pretrain_epochs = pretrain_epochs
        self.self_train_iterations = self_train_iterations
        self.space: "JointEmbeddingSpace | None" = None
        self.seeds: dict = {}
        self._classifier = None

    # -- seed derivation ---------------------------------------------------------
    def _derive_seeds(self, corpus: Corpus, supervision: Supervision) -> dict:
        assert self.label_set is not None
        vocab = self.space.word_model.vocabulary  # type: ignore[union-attr]
        if isinstance(supervision, Keywords):
            return {
                label: [w for w in supervision.for_label(label) if w in vocab]
                or supervision.for_label(label)[:1]
                for label in self.label_set
            }
        if isinstance(supervision, LabelNames):
            seeds: dict[str, list[str]] = {}
            for label in self.label_set:
                name_tokens = [
                    t for t in self.label_set.name_tokens(label) if t in vocab
                ]
                anchor = name_tokens or [self.label_set.name_of(label)]
                self.space.set_label_seeds({label: anchor})  # type: ignore[union-attr]
                expanded = self.space.nearest_words_to_label(  # type: ignore[union-attr]
                    label, k=self.expand_to, exclude=set(anchor)
                )
                seeds[label] = anchor + expanded[: self.expand_to - len(anchor)]
            return seeds
        supervision = require(supervision, LabeledDocuments)
        vectorizer = TfidfVectorizer()
        vectorizer.fit(corpus.token_lists())
        seeds = {}
        for label in self.label_set:
            docs = supervision.for_label(label)  # type: ignore[union-attr]
            terms = vectorizer.top_terms([d.tokens for d in docs], k=self.expand_to)
            merged: list[str] = []
            for doc_terms in terms:
                for term in doc_terms:
                    if term not in merged:
                        merged.append(term)
            seeds[label] = merged[: self.expand_to] or [label]
        return seeds

    # -- fitting --------------------------------------------------------------------
    def _fit(self, corpus: Corpus, supervision: Supervision) -> None:
        require(supervision, LabelNames, Keywords, LabeledDocuments)
        assert self.label_set is not None
        rng = derive_rng(self.rng, "westclass")
        self.space = JointEmbeddingSpace(dim=self.dim, seed=int(rng.integers(2**31)))
        self.space.fit(corpus.token_lists())
        self.seeds = self._derive_seeds(corpus, supervision)
        self.space.set_label_seeds(self.seeds)

        generator = PseudoDocumentGenerator(self.space, self.seeds,
                                            use_vmf=self.use_vmf)
        pseudo_docs, targets = generator.generate_all(
            self.pseudo_per_class, doc_len=self.pseudo_len, seed=rng
        )
        # Labeled documents join the pseudo-training set when available.
        if isinstance(supervision, LabeledDocuments):
            extra_rows = []
            for doc, label in supervision.pairs():
                pseudo_docs.append(doc.tokens)
                row = np.zeros(len(self.label_set))
                row[self.label_set.index(label)] = 1.0
                extra_rows.append(row)
            targets = np.vstack([targets, np.stack(extra_rows)])

        vocab = self.space.word_model.vocabulary
        assert vocab is not None
        table = self.space.word_model.matrix()
        cls_seed = int(rng.integers(2**31))
        if self.classifier_kind == "cnn":
            self._classifier = TextCNNClassifier(
                vocab, len(self.label_set), dim=self.dim,
                embedding_table=table, seed=cls_seed,
            )
        else:
            self._classifier = AttentiveClassifier(
                vocab, len(self.label_set), dim=self.dim,
                embedding_table=table, seed=cls_seed,
            )
        self._classifier.fit(pseudo_docs, targets, epochs=self.pretrain_epochs)
        if self.self_train:
            loop = SelfTrainingLoop(max_iterations=self.self_train_iterations)
            loop.run(self._classifier, corpus.token_lists())

    def _predict_proba(self, corpus: Corpus) -> np.ndarray:
        assert self._classifier is not None
        return self._classifier.predict_proba(corpus.token_lists())


register_method(
    MethodInfo(
        name="WeSTClass",
        venue="CIKM'18",
        structure="flat",
        label_arity="single-label",
        supervision=("LabelNames", "Keywords", "LabeledDocuments"),
        backbone="embedding",
        cls=WeSTClass,
    )
)
