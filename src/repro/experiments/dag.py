"""Typed artifact DAG for the experiment pipeline.

The paper's experiment suite is a pipeline — corpus build → embeddings /
PLM encodes → method fit → metric rows — but the row engine
(:mod:`repro.experiments.engine`) memoizes whole rows: any change to a
method, seed, or dataset recomputes everything beneath the row, and two
tables that fit different methods on the same corpus re-derive identical
corpora and encodes. This module is the dbt-style compile half of the
fix: experiments *declare* their row pipelines as :class:`DagNode` s in
an :class:`ArtifactGraph`, every node is **content-addressed** by a
digest of ``(kind, runner, kwargs, seed, upstream digests, scoped source
digest)``, and the scheduler (:mod:`repro.experiments.scheduler`) reuses
any node whose digest is already in the artifact store — re-runs are
proportional to what actually changed.

Three node kinds are in play today:

- ``corpus`` — builds a dataset bundle (``load_profile``); shared by
  every table that reads the same ``(profile, seed)``.
- ``encode`` — pre-trains the profile's PLM and streams every document
  through it, materializing hidden states into the shared
  :class:`~repro.core.enc_cache.EncodeCache` disk tier. One encode node
  serves every table (and every worker process) that needs it.
- ``row`` — a method fit + metrics, the same module-level runners the
  :class:`~repro.experiments.engine.RowSpec` path executes, so DAG
  output is bit-identical to the legacy serial harness.

**Scoped source digests.** The row engine's memo key hashes the whole
``src/repro`` tree, so touching one method file busts every cached row.
Here the tree is split into *units*: each ``methods/<pkg>`` package is
its own unit and everything else is the ``shared`` unit. A node's source
component combines the shared unit with only the method units its
declared classes live in (:func:`scope_for`), so touching
``methods/xclass`` re-executes exactly the xclass rows while every other
node's digest — and therefore its cached artifact — survives.

Two hand-maintained tables keep the scoping honest (both are validated
against the real import graph by ``tests/test_dag_pipeline.py``, the
same staleness-check pattern as the dtype lint):

- :data:`METHOD_UNIT_DEPS` — cross-package imports *inside* ``methods/``
  (WeSHClass reuses WeSTClass's pseudo-document generator), folded into
  the importing unit's effective digest;
- :data:`SHARED_METHOD_UNITS` — method packages imported by shared code
  (``baselines/``), folded into the shared digest. These lose per-method
  incrementality by construction: a change to them busts everything,
  which is the conservative, correct direction.

Hub imports (``from repro.methods import XClass``) re-export names and
are exempt: behavior dependence on a method package is captured by the
per-node ``scope``, not by the importing file's unit.
"""

from __future__ import annotations

import hashlib
import json
import re
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

#: Package root whose ``**/*.py`` files feed the source digests.
_DEFAULT_SOURCE_ROOT = Path(__file__).resolve().parents[1]  # src/repro

#: Cross-package imports inside ``methods/``: importing unit -> imported
#: units, folded transitively into the importer's effective digest.
METHOD_UNIT_DEPS = {
    "methods/weshclass": ("methods/westclass",),
    "methods/futex": ("methods/taxoclass",),
}

#: Method packages referenced from shared (non-``methods/``) code; they
#: are folded into the shared digest, so changes to them bust every node.
SHARED_METHOD_UNITS = (
    "methods/conwea",   # baselines/classkg.py
    "methods/micol",    # baselines/augmentation.py
    "methods/taxoclass",  # baselines/zeroshot.py
)

_SOURCE_ROOT: "list[Path]" = [_DEFAULT_SOURCE_ROOT]
_UNIT_DIGESTS: "dict[Path, dict]" = {}


def set_source_root(root: "str | Path | None") -> None:
    """Point the digest machinery at ``root`` (tests use a fake tree).

    ``None`` restores the real package root. Cached digests for the old
    root are dropped either way, so touching files between calls is
    observable.
    """
    _SOURCE_ROOT[0] = Path(root) if root else _DEFAULT_SOURCE_ROOT
    _UNIT_DIGESTS.clear()


def source_root() -> Path:
    """The tree currently feeding the source digests."""
    return _SOURCE_ROOT[0]


def _unit_of(rel: str) -> str:
    """Unit owning one source file: ``methods/<pkg>`` or ``shared``."""
    parts = rel.split("/")
    if parts[0] == "methods" and len(parts) > 2:
        return f"methods/{parts[1]}"
    return "shared"


def _raw_unit_digests(root: Path) -> dict:
    """Digest of each unit's own files (no dependency folding)."""
    hashes: "dict[str, hashlib.blake2b]" = {}
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        if "__pycache__" in rel:
            continue
        h = hashes.setdefault(_unit_of(rel), hashlib.blake2b(digest_size=16))
        h.update(rel.encode("utf-8"))
        h.update(b"\x00")
        h.update(path.read_bytes())
        h.update(b"\x00")
    return {unit: h.hexdigest() for unit, h in hashes.items()}


def unit_digests(refresh: bool = False) -> dict:
    """Effective digest per unit, dependency edges folded in (cached).

    ``shared`` folds in :data:`SHARED_METHOD_UNITS`; every
    ``methods/<pkg>`` folds in its transitive :data:`METHOD_UNIT_DEPS`.
    """
    root = source_root()
    if not refresh and root in _UNIT_DIGESTS:
        return _UNIT_DIGESTS[root]
    raw = _raw_unit_digests(root)

    def closure(unit: str) -> list:
        seen, queue = {unit}, deque(METHOD_UNIT_DEPS.get(unit, ()))
        while queue:
            dep = queue.popleft()
            if dep in seen:
                continue
            seen.add(dep)
            queue.extend(METHOD_UNIT_DEPS.get(dep, ()))
        return sorted(seen)

    effective = {}
    for unit in raw:
        deps = closure(unit)
        if unit == "shared":
            deps = sorted(set(deps) | set(SHARED_METHOD_UNITS))
        h = hashlib.blake2b(digest_size=16)
        for dep in deps:
            h.update(dep.encode("utf-8"))
            h.update(b"\x00")
            h.update(raw.get(dep, "").encode("utf-8"))
            h.update(b"\x00")
        effective[unit] = h.hexdigest()
    _UNIT_DIGESTS.clear()  # keep at most one root's cache alive
    _UNIT_DIGESTS[root] = effective
    return effective


def source_component(scope: tuple) -> str:
    """Source digest for one node: shared unit + its scoped method units."""
    digests = unit_digests()
    h = hashlib.blake2b(digest_size=16)
    for unit in ("shared", *sorted(scope)):
        h.update(unit.encode("utf-8"))
        h.update(b"\x00")
        h.update(digests.get(unit, "").encode("utf-8"))
        h.update(b"\x00")
    return h.hexdigest()


def method_unit(cls) -> "str | None":
    """The ``methods/<pkg>`` unit defining ``cls`` (None for shared code)."""
    parts = getattr(cls, "__module__", "").split(".")
    if parts[:2] == ["repro", "methods"] and len(parts) > 2:
        return f"methods/{parts[2]}"
    return None


def scope_for(*classes) -> tuple:
    """Sorted method units for a row's declared classes.

    Units already folded into the shared digest
    (:data:`SHARED_METHOD_UNITS`) are dropped — every node carries the
    shared digest anyway, so listing them would be redundant.
    """
    units = {method_unit(cls) for cls in classes}
    units -= {None, *SHARED_METHOD_UNITS}
    return tuple(sorted(units))


def scan_method_references(root: "Path | None" = None) -> dict:
    """Submodule-level ``repro.methods.<pkg>`` references in the tree.

    Returns ``{referencing_unit: set(referenced units)}``, excluding
    same-unit references and hub imports (``from repro.methods import``,
    which only re-exports names). The staleness test compares this
    against :data:`METHOD_UNIT_DEPS` / :data:`SHARED_METHOD_UNITS`.
    """
    root = source_root() if root is None else Path(root)
    pattern = re.compile(r"repro\.methods\.([a-z_][a-z0-9_]*)")
    references: "dict[str, set]" = {}
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        if "__pycache__" in rel or rel == "methods/__init__.py":
            continue
        unit = _unit_of(rel)
        for match in pattern.finditer(path.read_text()):
            referenced = f"methods/{match.group(1)}"
            if referenced != unit:
                references.setdefault(unit, set()).add(referenced)
    return references


# ---------------------------------------------------------------------------
# Nodes, graph, digests
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class DagNode:
    """One typed artifact in the experiment graph.

    ``runner(seed, **kwargs)`` must be a module-level picklable callable
    (the same contract as :class:`~repro.experiments.engine.RowSpec`);
    ``runner=None`` marks a static row emitted as-is. ``deps`` name
    upstream nodes whose digests flow into this node's digest and whose
    materialized side artifacts (bundle caches, encode-cache shards)
    this node reads. ``scope`` lists the ``methods/<pkg>`` units whose
    source contents key this node (:func:`source_component`).
    """

    kind: str
    name: str
    runner: "object" = None
    kwargs: dict = field(default_factory=dict)
    deps: tuple = ()
    scope: tuple = ()
    table: str = ""
    row: str = ""
    static: dict = field(default_factory=dict)
    seed: int = 0


def runner_id(runner) -> str:
    """Stable cross-process identity of a node's runner."""
    if runner is None:
        return "-"
    return f"{runner.__module__}.{runner.__qualname__}"


def _node_identity(node: DagNode) -> tuple:
    """The fields two same-named declarations must agree on to merge."""
    return (node.kind, runner_id(node.runner),
            json.dumps(node.kwargs, sort_keys=True, default=repr),
            node.deps, node.scope, node.seed)


class ArtifactGraph:
    """Content-addressed DAG with cross-table node dedup.

    Nodes are keyed by name; adding an identical declaration twice (two
    tables that need the same corpus or encode) merges into one node and
    bumps :attr:`merged` — the dedup the ISSUE's encode-sharing ratio
    measures. Adding a *conflicting* declaration under an existing name
    raises: one name must mean one artifact.
    """

    def __init__(self):
        self.nodes: "dict[str, DagNode]" = {}
        self._order: "list[str]" = []
        self.merged = 0
        self._digests: "dict[str, str] | None" = None

    def add(self, node: DagNode) -> DagNode:
        existing = self.nodes.get(node.name)
        if existing is not None:
            if _node_identity(existing) != _node_identity(node):
                raise ValueError(
                    f"conflicting declarations for DAG node {node.name!r}"
                )
            self.merged += 1
            return existing
        for dep in node.deps:
            if dep not in self.nodes:
                raise ValueError(
                    f"node {node.name!r} depends on undeclared node {dep!r}"
                )
        self.nodes[node.name] = node
        self._order.append(node.name)
        self._digests = None
        return node

    def topological(self) -> list:
        """Declaration-ordered names (declaration already topo-sorts:
        ``add`` rejects forward references)."""
        return list(self._order)

    def digests(self) -> dict:
        """Content address of every node (memoized until the graph grows).

        A node's digest folds its kind, runner identity, kwargs, seed,
        its scoped source digest, and — recursively — the digests of its
        dependencies, so any upstream change re-addresses the whole
        downstream subgraph.
        """
        if self._digests is not None:
            return self._digests
        digests: "dict[str, str]" = {}
        for name in self._order:
            node = self.nodes[name]
            payload = json.dumps({
                "kind": node.kind,
                "name": node.name,
                "runner": runner_id(node.runner),
                "kwargs": node.kwargs,
                "seed": node.seed,
                "deps": sorted(digests[dep] for dep in node.deps),
                "source": source_component(node.scope),
            }, sort_keys=True, default=repr)
            digests[name] = hashlib.sha256(
                payload.encode("utf-8")).hexdigest()[:40]
        self._digests = digests
        return digests

    def ancestors(self, names) -> set:
        """Transitive dependencies of ``names`` (exclusive)."""
        out: set = set()
        queue = deque(names)
        while queue:
            for dep in self.nodes[queue.popleft()].deps:
                if dep not in out:
                    out.add(dep)
                    queue.append(dep)
        return out

    def descendants(self, names) -> set:
        """Transitive dependents of ``names`` (exclusive)."""
        targets = set(names)
        out: set = set()
        for name in self._order:  # declaration order is topological
            node = self.nodes[name]
            if any(dep in targets or dep in out for dep in node.deps):
                out.add(name)
        return out - targets

    def select(self, selectors) -> set:
        """Resolve ``--select`` style selectors into a set of node names.

        ``name`` (typically ``table.row``) picks one node; ``+name``
        additionally picks its ancestors; ``name+`` its descendants.
        Unknown names raise ``ValueError`` listing the valid nodes.
        """
        chosen: set = set()
        for selector in selectors:
            want_ancestors = selector.startswith("+")
            want_descendants = selector.endswith("+")
            name = selector.strip("+")
            if name not in self.nodes:
                known = ", ".join(sorted(self.nodes))
                raise ValueError(
                    f"unknown DAG node {name!r} in selector {selector!r} "
                    f"(known nodes: {known})"
                )
            chosen.add(name)
            if want_ancestors:
                chosen |= self.ancestors([name])
            if want_descendants:
                chosen |= self.descendants([name])
        return chosen


@dataclass
class TableRequest:
    """One table's compiled pipeline: its nodes plus row assembly order.

    ``row_names`` are the node names that become printable rows, in
    table order; ``post`` (optional) post-processes the assembled rows
    in the parent process (e.g. the MICoL significance pass).
    """

    table: str
    nodes: list
    row_names: list
    post: "object" = None
