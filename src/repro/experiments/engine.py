"""Parallel experiment engine: process-pool row fan-out + row memoization.

Every paper table is a list of independent rows (method x dataset x
supervision cells), yet the seed harness ran them strictly serially and
recomputed every row on every regeneration. This module executes
:class:`RowSpec` lists with three independent layers:

.. note::
   The flat :class:`RowSpec` path below is the *compatibility shim*:
   tables now compile into the content-addressed artifact DAG
   (:mod:`repro.experiments.dag`) and run through
   :mod:`repro.experiments.scheduler`, which reuses this module's
   worker pool, memo store, seeding, and error conventions node by
   node. ``run_specs`` remains the supported entry point for ad-hoc
   row lists and keeps the legacy row-memo semantics.

- **Deterministic sharded seeding** — each row's method seed is derived
  from ``(table_seed, row_name)`` by :func:`derive_row_seed`, so a row's
  numbers depend only on its own identity, never on execution order or
  placement. Parallel output is therefore bit-identical to serial output.
- **Process-pool fan-out** — rows run on a ``multiprocessing`` (spawn)
  worker pool sized by ``jobs`` / ``REPRO_JOBS``. Workers are persistent
  (the in-process PLM/bundle caches amortize across the rows a worker
  executes) and communicate over duplex pipes, so a hung or crashed
  worker can be terminated and replaced without touching its siblings.
  A per-row ``timeout`` (or ``REPRO_ROW_TIMEOUT``) turns runaway rows
  into ``error`` rows instead of wedged tables.
- **Spec-keyed memoization** — finished rows are stored content-addressed
  under ``~/.cache/repro/rows`` (override: ``REPRO_ROW_CACHE_DIR``),
  keyed by a digest of table name, row name, derived seed, fast/full
  flag, dataset fingerprint, runner kwargs, and a digest of the ``repro``
  source tree. Unchanged rows are cache hits on re-run; any code, seed,
  or dataset change busts the key. Writes are atomic
  (tmp-then-``os.replace``) and an in-memory tier fronts the disk tier.
  Error/timeout rows are never memoized.

Failures follow the existing ``error``-column convention of
``runner.run_rows``: ``MemoryError`` renders as the papers' literal
``"-"``; any other exception, a worker crash, or a timeout yields an
``error`` cell while the rest of the table completes.

Workers compose with the PR-1 encode cache: when the pool spawns and no
``REPRO_ENC_CACHE_DIR`` is configured, the engine points workers at a
shared on-disk tier next to the row store, so documents encoded by one
worker are disk hits for every other.

When tracing is enabled (:mod:`repro.obs`), every executed row runs
under a ``row:<table>/<name>`` span. Parallel rows record into a
short-lived worker-side tracer whose export travels back through the
result pipe alongside the metrics; the parent absorbs those payloads in
spec order — not completion order — so the trace *content* of a
``--jobs N`` run is deterministic (only timings vary). Memo hits and
misses, executed/error/timeout rows all tick :func:`repro.obs.count`
counters mirroring the :class:`RunReport` fields.

Env knobs (all read through :mod:`repro.core.env`): ``REPRO_JOBS``
(default worker count), ``REPRO_ROW_CACHE`` (``0`` disables
memoization), ``REPRO_ROW_CACHE_DIR`` (store location),
``REPRO_ROW_TIMEOUT`` (default per-row timeout, seconds).
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _wait_connections
from pathlib import Path

from repro import obs
from repro.core import env as _env

#: Sentinel a runner may return to drop its row from the table (mirrors
#: the seed harness skipping e.g. a theme with no matching context).
SKIP_ROW = {"__skip__": True}

_ROW_SEED_SPAN = 2**31
_POLL_SECONDS = 0.05


# ---------------------------------------------------------------------------
# Specs and reports
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RowSpec:
    """One table row: a picklable runner plus everything that keys it.

    ``runner(row_seed, **kwargs)`` must be a module-level callable
    returning the row's metric columns; closures over live PLM/bundle
    objects are not allowed (workers rebuild those from ``kwargs``).
    ``static`` columns (dataset/method labels) are merged in first.
    A spec with ``runner=None`` is emitted as-is — the tables' literal
    pre-excluded entries.
    """

    table: str
    name: str
    runner: "object" = None
    kwargs: dict = field(default_factory=dict)
    static: dict = field(default_factory=dict)
    dataset: str = ""
    fast: bool = True


@dataclass
class RunReport:
    """What one :func:`run_specs` call did (CLI footer material)."""

    rows: int = 0
    hits: int = 0
    misses: int = 0
    errors: int = 0
    timeouts: int = 0
    jobs: int = 1
    seconds: float = 0.0


_LAST_REPORT: "list[RunReport]" = []


def take_last_report() -> "RunReport | None":
    """Pop the report of the most recent :func:`run_specs` call."""
    return _LAST_REPORT.pop() if _LAST_REPORT else None


# ---------------------------------------------------------------------------
# Seeding and memo keys
# ---------------------------------------------------------------------------

def derive_row_seed(table_seed: int, row_name: str) -> int:
    """Deterministic per-row seed from ``(table_seed, row_name)``.

    Stable across processes and Python versions (blake2b, not ``hash``),
    so a row produces identical numbers wherever and whenever it runs.
    """
    payload = f"{int(table_seed)}\x1f{row_name}".encode("utf-8")
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    return int.from_bytes(digest[:4], "big") % _ROW_SEED_SPAN


_SOURCE_VERSION: "list[str]" = []


def source_version() -> str:
    """Digest of the ``repro`` source tree (memo-key component).

    Hashing file contents (not mtimes) keeps keys stable across
    checkouts while busting every cached row when any source changes.
    """
    if _SOURCE_VERSION:
        return _SOURCE_VERSION[0]
    root = Path(__file__).resolve().parents[1]  # src/repro
    h = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        if "__pycache__" in rel:
            continue
        h.update(rel.encode("utf-8"))
        h.update(b"\x00")
        h.update(path.read_bytes())
        h.update(b"\x00")
    _SOURCE_VERSION.append(h.hexdigest()[:16])
    return _SOURCE_VERSION[0]


def memo_key(spec: RowSpec, row_seed: int) -> str:
    """Content-address of one row's result."""
    payload = json.dumps(
        {
            "table": spec.table,
            "row": spec.name,
            "seed": row_seed,
            "fast": spec.fast,
            "dataset": spec.dataset,
            "kwargs": spec.kwargs,
            "source": source_version(),
        },
        sort_keys=True,
        default=repr,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:40]


# ---------------------------------------------------------------------------
# Memo store
# ---------------------------------------------------------------------------

_MEMO_MEMORY: "dict[str, dict]" = {}


def default_cache_dir() -> Path:
    """Row-store directory (``REPRO_ROW_CACHE_DIR`` or the XDG default)."""
    return _env.row_cache_dir()


def clear_memo_memory() -> None:
    """Drop the in-memory tier (benches use this to force disk reads)."""
    _MEMO_MEMORY.clear()


class RowMemo:
    """Two-tier (memory + JSON files) store of finished row payloads."""

    def __init__(self, directory: "str | Path"):
        self.directory = Path(directory)

    def get(self, key: str) -> "dict | None":
        payload = _MEMO_MEMORY.get(key)
        if payload is None:
            try:
                raw = (self.directory / f"{key}.json").read_text()
                payload = json.loads(raw)
            except (OSError, ValueError):
                return None
            if not isinstance(payload, dict) or "metrics" not in payload:
                return None  # corrupt entry: treat as a miss
            _MEMO_MEMORY[key] = payload
        # Callers mutate rows (merge static columns, significance
        # markers); hand out a copy so tiers stay pristine.
        return {"metrics": dict(payload["metrics"]),
                "seconds": payload.get("seconds", 0.0)}

    def put(self, key: str, payload: dict) -> None:
        _MEMO_MEMORY[key] = {"metrics": dict(payload["metrics"]),
                             "seconds": payload.get("seconds", 0.0)}
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            # Stamp the source digest the entry was written under so
            # prune() can tell live entries from leftovers of old
            # checkouts without recomputing any keys.
            disk = dict(payload)
            disk.setdefault("tree", source_version())
            tmp = self.directory / f".{key}.{os.getpid()}.tmp"
            tmp.write_text(json.dumps(disk, sort_keys=True))
            os.replace(tmp, self.directory / f"{key}.json")
        except OSError:
            pass  # a read-only cache dir degrades to memory-only

    def prune(self, keep_digest: "str | None" = None,
              keep_keys=()) -> tuple:
        """Sweep entries from dead source trees; returns (kept, removed).

        An entry survives if its stamped ``tree`` equals ``keep_digest``
        (default: the current :func:`source_version`) or its key is in
        ``keep_keys`` — the escape hatch for the DAG artifact store,
        whose scoped digests can outlive a whole-tree change (the
        ``cache-prune`` CLI passes the compiled graph's digests).
        Unstamped or unreadable entries are removed: they predate the
        stamp and cannot be keyed by any current run.
        """
        if keep_digest is None:
            keep_digest = source_version()
        keep_keys = frozenset(keep_keys)
        kept = removed = 0
        try:
            entries = sorted(self.directory.glob("*.json"))
        except OSError:
            return (0, 0)
        for path in entries:
            key = path.stem
            if key in keep_keys:
                kept += 1
                continue
            try:
                payload = json.loads(path.read_text())
                tree = (payload.get("tree")
                        if isinstance(payload, dict) else None)
            except (OSError, ValueError):
                tree = None
            if tree == keep_digest:
                kept += 1
                continue
            try:
                path.unlink()
            except OSError:
                continue
            _MEMO_MEMORY.pop(key, None)
            removed += 1
        return (kept, removed)


# ---------------------------------------------------------------------------
# Row execution (shared by the serial path and the workers)
# ---------------------------------------------------------------------------

def _execute_row(spec: RowSpec, row_seed: int) -> tuple:
    """Run one row; exceptions become ``error`` cells, never escapes."""
    start = time.perf_counter()
    try:
        metrics = spec.runner(row_seed, **spec.kwargs)
    except MemoryError:  # the tables' literal "-" case
        metrics = {"error": "-"}
    except Exception as exc:  # noqa: BLE001 - isolate row failures
        metrics = {"error": f"{type(exc).__name__}: {exc}"}
    return metrics, time.perf_counter() - start


def _row_span_name(spec: RowSpec) -> str:
    # An empty table marks a DAG node riding the worker protocol
    # (repro.experiments.scheduler); its span carries the node name.
    if not spec.table:
        return f"node:{spec.name}"
    return f"row:{spec.table}/{spec.name}"


def _worker_main(conn) -> None:
    """Worker loop: receive ``(index, spec, row_seed, trace)``, send results.

    When ``trace`` is set the row runs under a fresh worker-side tracer;
    its exported spans and counters ride back with the metrics and the
    parent re-roots them into the run trace (:meth:`Tracer.absorb`).
    """
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            return
        if task is None:
            return
        index, spec, row_seed, trace = task
        payload = None
        if trace:
            obs.enable(_row_span_name(spec))
            with obs.span(_row_span_name(spec)):
                metrics, seconds = _execute_row(spec, row_seed)
            payload = obs.disable().export()
        else:
            metrics, seconds = _execute_row(spec, row_seed)
        try:
            conn.send((index, metrics, seconds, payload))
        except (BrokenPipeError, OSError):
            return


class _Worker:
    """One pool slot: a spawn process plus its duplex pipe."""

    def __init__(self, ctx):
        self.conn, child = ctx.Pipe(duplex=True)
        self.process = ctx.Process(target=_worker_main, args=(child,),
                                   daemon=True)
        self.process.start()
        child.close()
        self.task = None  # (index, spec, row_seed) currently running
        self.deadline = None

    def assign(self, task: tuple, timeout: "float | None") -> None:
        self.conn.send(task)
        self.task = task
        self.deadline = time.monotonic() + timeout if timeout else None

    def stop(self, force: bool = False) -> None:
        if not force:
            try:
                self.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
            self.process.join(timeout=1.0)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=1.0)
        self.conn.close()


def _enc_cache_dir_for(cache_dir: Path) -> Path:
    """Shared encode-cache disk tier next to the row store."""
    return Path(cache_dir).parent / "enc"


def _run_pool(tasks: list, jobs: int, timeout: "float | None",
              cache_dir: Path, record) -> None:
    """Fan ``tasks`` out over a spawn pool; ``record(i, metrics, s, kind)``.

    Timeouts and crashes terminate only the affected worker; a fresh one
    takes its slot and the remaining rows proceed.
    """
    ctx = multiprocessing.get_context("spawn")
    pending = deque(tasks)
    remaining = len(tasks)

    # Compose with the PR-1 encode cache: point workers (which inherit
    # the environment at spawn time) at a shared disk tier so hidden
    # states encoded by one worker are hits for every other.
    shared_enc = None
    if _env.enc_cache_enabled() and _env.enc_cache_dir() is None:
        shared_enc = str(_enc_cache_dir_for(cache_dir))
        os.environ["REPRO_ENC_CACHE_DIR"] = shared_enc

    workers = []
    try:
        workers = [_Worker(ctx) for _ in range(min(jobs, remaining))]
        while remaining:
            for slot, worker in enumerate(workers):
                if worker.task is None:
                    if not pending:
                        continue
                    if not worker.process.is_alive():
                        worker.stop(force=True)
                        workers[slot] = worker = _Worker(ctx)
                    worker.assign(pending.popleft(), timeout)
            busy = [w for w in workers if w.task is not None]
            ready = _wait_connections([w.conn for w in busy],
                                      timeout=_POLL_SECONDS)
            now = time.monotonic()
            for slot, worker in enumerate(workers):
                if worker.task is None:
                    continue
                index = worker.task[0]
                if worker.conn in ready:
                    try:
                        got, metrics, seconds, payload = worker.conn.recv()
                    except (EOFError, OSError):
                        record(index, {"error": "worker crashed"}, 0.0, "crash")
                        remaining -= 1
                        worker.stop(force=True)
                        workers[slot] = _Worker(ctx)
                        continue
                    record(got, metrics, seconds, "done", payload)
                    remaining -= 1
                    worker.task = None
                    worker.deadline = None
                elif worker.deadline is not None and now > worker.deadline:
                    record(index,
                           {"error": f"timeout after {timeout:g}s"},
                           float(timeout), "timeout")
                    remaining -= 1
                    worker.stop(force=True)
                    workers[slot] = _Worker(ctx)
                elif not worker.process.is_alive():
                    record(index, {"error": "worker crashed"}, 0.0, "crash")
                    remaining -= 1
                    worker.stop(force=True)
                    workers[slot] = _Worker(ctx)
    finally:
        for worker in workers:
            worker.stop()
        if shared_enc and os.environ.get("REPRO_ENC_CACHE_DIR") == shared_enc:
            del os.environ["REPRO_ENC_CACHE_DIR"]


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------

def _resolve_jobs(jobs: "int | None") -> int:
    if jobs is not None:
        return max(1, int(jobs))
    return _env.jobs()


def _resolve_use_cache(use_cache: "bool | None") -> bool:
    if use_cache is not None:
        return bool(use_cache)
    return _env.row_cache_enabled()


def _resolve_timeout(timeout: "float | None") -> "float | None":
    if timeout is not None:
        return float(timeout) if timeout > 0 else None
    return _env.row_timeout()


def run_specs(specs: list, table_seed: int = 0, *, jobs: "int | None" = None,
              use_cache: "bool | None" = None,
              timeout: "float | None" = None,
              cache_dir: "str | Path | None" = None) -> list:
    """Execute :class:`RowSpec` s into table rows (the serial-loop successor).

    Row order always matches spec order. ``jobs <= 1`` runs in-process
    (no pool, timeout not enforced); ``jobs > 1`` fans misses out over a
    spawn pool. Every computed row gains a ``seconds`` wall-clock column.
    """
    start = time.perf_counter()
    jobs = _resolve_jobs(jobs)
    timeout = _resolve_timeout(timeout)
    cache_dir = Path(cache_dir) if cache_dir else default_cache_dir()
    memo = RowMemo(cache_dir) if _resolve_use_cache(use_cache) else None
    trace = obs.enabled()

    report = RunReport(jobs=jobs)
    results: "list[dict | None]" = [None] * len(specs)
    seeds = [derive_row_seed(table_seed, spec.name) for spec in specs]
    keys = [memo_key(spec, seed) if memo else None
            for spec, seed in zip(specs, seeds)]

    tasks = []
    for i, spec in enumerate(specs):
        if spec.runner is None:
            results[i] = {"metrics": {}, "seconds": 0.0}
            continue
        if memo is not None:
            hit = memo.get(keys[i])
            if hit is not None:
                results[i] = hit
                report.hits += 1
                obs.count("row_memo.hits")
                continue
        tasks.append((i, spec, seeds[i], trace))
    report.misses = len(tasks)
    obs.count("row_memo.misses", len(tasks))

    traces: "dict[int, dict]" = {}

    def record(index: int, metrics: dict, seconds: float,
               kind: str = "done", payload: "dict | None" = None) -> None:
        if results[index] is not None:  # late result after timeout/crash
            return
        results[index] = {"metrics": metrics, "seconds": seconds}
        if payload is not None:
            traces[index] = payload
        if "error" in metrics:
            report.errors += 1
            obs.count("rows.errors")
            if kind == "timeout":
                report.timeouts += 1
                obs.count("rows.timeouts")
        else:
            obs.count("rows.executed")
            if memo is not None:
                memo.put(keys[index], results[index])

    if tasks:
        if jobs <= 1:
            for index, spec, row_seed, _ in tasks:
                with obs.span(_row_span_name(spec)):
                    metrics, seconds = _execute_row(spec, row_seed)
                record(index, metrics, seconds)
        else:
            _run_pool(tasks, jobs, timeout, cache_dir, record)
            if trace:
                # Absorb worker traces in spec order — not completion
                # order — so parallel trace content is deterministic.
                for index, _, _, _ in tasks:
                    payload = traces.get(index)
                    if payload is not None:
                        obs.tracer().absorb(payload)

    rows = []
    for spec, payload in zip(specs, results):
        metrics = payload["metrics"]
        if metrics.get("__skip__"):
            continue
        row = dict(spec.static)
        row.update(metrics)
        row["seconds"] = round(float(payload["seconds"]), 3)
        rows.append(row)

    report.rows = len(rows)
    report.seconds = time.perf_counter() - start
    _LAST_REPORT.clear()
    _LAST_REPORT.append(report)
    return rows
