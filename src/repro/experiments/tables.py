"""One function per paper table; each returns printable row dicts.

Every function takes ``seed`` (dataset + method seeding) and ``fast``
(True = fewer datasets / lighter methods; the default used by the bench
suite so a full run stays CPU-friendly), plus the engine knobs ``jobs``,
``use_cache`` and ``timeout`` (see :mod:`repro.experiments.engine`).
Absolute numbers are not expected to match the paper — the *orderings*
asserted in the benches are.

Tables are expressed as :class:`~repro.experiments.engine.RowSpec` lists:
a module-level runner function plus plain-data kwargs per row, never
closures over live PLM/bundle objects, so rows pickle cleanly into spawn
workers and key the memo store. Runners rebuild bundles and PLMs from
``(profile, table_seed)``; in-process caches (``load_profile`` results
here, pre-trained models in ``repro.plm.provider``) make that free after
the first row a process executes.

Every runner receives the engine's derived per-row seed (it keys the
memo store and is the seed for any row-local randomness a runner
introduces), but the experiment definitions — datasets, supervision,
and method construction — are seeded with the *table* seed, exactly as
the serial harness always did. Each row's inputs are pure spec data
either way, so numbers are independent of execution order, and the
regenerated tables match the pre-engine serial output bit for bit.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.baselines import (
    PCEM,
    PTE,
    UNEC,
    BertSimpleMatch,
    ClassKG,
    Dataless,
    Doc2Cube,
    Doc2VecRanker,
    EDAContrastive,
    ESim,
    HierDataless,
    HierSVM,
    HierZeroShotTC,
    HIN2Vec,
    IRWithTfidf,
    MATCH,
    Metapath2Vec,
    PLSATopicModel,
    SemiBERT,
    SupervisedBERT,
    SupervisedCharCNN,
    SupervisedCNN,
    SupervisedHAN,
    TextGCN,
    UDAContrastive,
    UDASemiSupervised,
    ZeroShotEntail,
    ZeroShotEntailRanker,
)
from repro.baselines.fewshot import FewShotBERT, FewShotCNN, FewShotHAN
from repro.baselines.word2vec_match import Word2VecMatch
from repro.core.base import MultiLabelTextClassifier as _MLBase
from repro.core.registry import summary_rows
from repro.core.supervision import LabelNames as _LabelNames
from repro.core.supervision import require as _require
from repro.datasets import load_profile
from repro.evaluation.metrics import macro_f1, micro_f1
from repro.experiments.engine import SKIP_ROW, RowSpec, run_specs
from repro.experiments.runner import (
    evaluate_flat,
    evaluate_multilabel,
    gold_single,
)
from repro.experiments.views import coarse_view, dag_as_tree
from repro.hin.metapath import P_COCITED_P, P_REF_P
from repro.methods import (
    ConWea,
    LOTClass,
    MetaCat,
    MICoL,
    PromptClass,
    TaxoClass,
    WeSHClass,
    WeSTClass,
    XClass,
)
from repro.plm.provider import get_pretrained_lm


def _plm(bundle, seed: int):
    return get_pretrained_lm(target_corpus=bundle.train_corpus, seed=seed % 7)


def _fit_flat(classifier, bundle, supervision) -> dict:
    return evaluate_flat(classifier, bundle, supervision)


@lru_cache(maxsize=None)
def _bundle(profile: str, seed: int):
    """Per-process bundle cache: rows re-derive rather than pickle bundles."""
    return load_profile(profile, seed=seed)


@lru_cache(maxsize=None)
def _view(profile: str, seed: int, view: str):
    """``view`` is ``"fine"`` (as generated) or ``"coarse"`` (level-1)."""
    bundle = _bundle(profile, seed)
    return coarse_view(bundle) if view == "coarse" else bundle


def _make(entry: tuple, seed: int, **inject):
    """Construct a method from a ``(cls, kwargs, needs)`` table entry.

    ``needs`` names lazily-built dependencies (``plm``, ``tree``, ...);
    the matching ``inject`` thunk is only called when required, so e.g.
    a non-PLM row in a worker never pays PLM pre-training.
    """
    cls, kwargs, needs = entry
    kwargs = dict(kwargs)
    for name in needs:
        kwargs[name] = inject[name]()
    return cls(seed=seed, **kwargs)


def _specs(table: str, seed: int, fast: bool, items: list) -> list:
    """RowSpecs for ``(name, runner, kwargs, static, dataset)`` tuples."""
    return [
        RowSpec(table=table, name=name, runner=runner, kwargs=kwargs,
                static=static, dataset=dataset, fast=fast)
        for name, runner, kwargs, static, dataset in items
    ]


# ---------------------------------------------------------------------------
# T-WESTCLASS
# ---------------------------------------------------------------------------

_WESTCLASS_METHODS = {
    "IR with tf-idf": (IRWithTfidf, {}, (), ("LABELS", "KEYWORDS", "DOCS")),
    "Topic Model": (PLSATopicModel, {}, (), ("LABELS", "KEYWORDS")),
    "Dataless": (Dataless, {}, (), ("LABELS",)),
    "UNEC": (UNEC, {}, (), ("LABELS",)),
    "PTE": (PTE, {}, (), ("DOCS",)),
    "NoST-CNN": (WeSTClass, {"classifier": "cnn", "self_train": False}, (),
                 ("LABELS", "KEYWORDS", "DOCS")),
    "NoST-HAN": (WeSTClass, {"classifier": "han", "self_train": False}, (),
                 ("LABELS", "KEYWORDS", "DOCS")),
    "WeSTClass-HAN": (WeSTClass, {"classifier": "han"}, (),
                      ("LABELS", "KEYWORDS", "DOCS")),
    "WeSTClass-CNN": (WeSTClass, {"classifier": "cnn"}, (),
                      ("LABELS", "KEYWORDS", "DOCS")),
}


def _westclass_row(row_seed: int, profile: str, method: str,
                   table_seed: int) -> dict:
    bundle = _bundle(profile, table_seed)
    cls, kwargs, needs, supported = _WESTCLASS_METHODS[method]
    sups = {
        "LABELS": bundle.label_names(),
        "KEYWORDS": bundle.keywords(),
        "DOCS": bundle.labeled_documents(5, seed=table_seed),
    }
    row: dict = {}
    for sup_name in ("LABELS", "KEYWORDS", "DOCS"):
        if sup_name not in supported:
            row[f"{sup_name} macro"] = "-"
            row[f"{sup_name} micro"] = "-"
            continue
        metrics = _fit_flat(_make((cls, kwargs, needs), table_seed), bundle,
                            sups[sup_name])
        row[f"{sup_name} macro"] = metrics["macro_f1"]
        row[f"{sup_name} micro"] = metrics["micro_f1"]
    return row


def westclass_table(seed: int = 0, fast: bool = True, *,
                    jobs: "int | None" = None,
                    use_cache: "bool | None" = None,
                    timeout: "float | None" = None) -> list:
    """WeSTClass results table: 3 corpora x 3 supervision types."""
    datasets = ["agnews"] if fast else ["nyt_small", "agnews", "yelp"]
    specs = _specs("westclass", seed, fast, [
        (f"{name}/{method}", _westclass_row,
         {"profile": name, "method": method, "table_seed": seed},
         {"Dataset": name, "Method": method}, f"{name}@{seed}")
        for name in datasets for method in _WESTCLASS_METHODS
    ])
    return run_specs(specs, table_seed=seed, jobs=jobs, use_cache=use_cache,
                     timeout=timeout)


# ---------------------------------------------------------------------------
# T-CONWEA
# ---------------------------------------------------------------------------

_CONWEA_METHODS = {
    "IR-TF-IDF": (IRWithTfidf, {}, ()),
    "Dataless": (Dataless, {}, ()),
    "Word2Vec": (Word2VecMatch, {}, ()),
    "Doc2Cube": (Doc2Cube, {}, ()),
    "WeSTClass": (WeSTClass, {}, ()),
    "ConWea": (ConWea, {}, ("plm",)),
    "ConWea-NoCon": (ConWea, {"contextualize": False}, ("plm",)),
    "ConWea-NoExpan": (ConWea, {"expand": False}, ("plm",)),
    "ConWea-WSD": (ConWea, {"wsd_mode": True}, ("plm",)),
    "HAN-Supervised": (SupervisedHAN, {}, ()),
}


def _conwea_row(row_seed: int, profile: str, view: str, method: str,
                table_seed: int) -> dict:
    bundle = _view(profile, table_seed, view)
    # One PLM per corpus (fine and coarse views share the text).
    classifier = _make(_CONWEA_METHODS[method], table_seed,
                       plm=lambda: _plm(_bundle(profile, table_seed),
                                        table_seed))
    supervision = (
        bundle.label_names() if method == "Dataless" else bundle.keywords()
    )
    metrics = _fit_flat(classifier, bundle, supervision)
    return {"Micro-F1": metrics["micro_f1"], "Macro-F1": metrics["macro_f1"]}


def conwea_table(seed: int = 0, fast: bool = True, *,
                 jobs: "int | None" = None,
                 use_cache: "bool | None" = None,
                 timeout: "float | None" = None) -> list:
    """ConWea results: coarse/fine views of two tree corpora + ablations."""
    profiles = ["nyt_fine"] if fast else ["nyt_fine", "twenty_news"]
    items = []
    for name in profiles:
        for view in ("coarse", "fine"):
            for method in _CONWEA_METHODS:
                items.append((
                    f"{name}-{view}/{method}", _conwea_row,
                    {"profile": name, "view": view, "method": method,
                     "table_seed": seed},
                    {"View": f"{name}-{view}", "Method": method},
                    f"{name}@{seed}",
                ))
    return run_specs(_specs("conwea", seed, fast, items), table_seed=seed,
                     jobs=jobs, use_cache=use_cache, timeout=timeout)


# ---------------------------------------------------------------------------
# T-LOTCLASS-1 (the MLM replacement-prediction demonstration)
# ---------------------------------------------------------------------------

def _lotclass_prediction_row(row_seed: int, theme: str, word: str,
                             table_seed: int) -> dict:
    bundle = _bundle("agnews", table_seed)
    plm = _plm(bundle, table_seed)
    context = None
    for doc in bundle.train_corpus:
        if doc.labels[0] == theme and word in doc.tokens[:24]:
            context = doc.tokens[:28]
            break
    if context is None:
        return dict(SKIP_ROW)
    position = context.index(word)
    predictions = [w for w, _ in plm.predict_masked(context, position,
                                                    top_k=10)]
    return {
        "Context topic": theme,
        "Sentence (prefix)": " ".join(context[:12]) + " ...",
        "Predictions": ", ".join(predictions),
    }


def lotclass_prediction_rows(seed: int = 0, word: str = "goal",
                             themes: tuple = ("sports", "business"), *,
                             jobs: "int | None" = None,
                             use_cache: "bool | None" = None,
                             timeout: "float | None" = None) -> list:
    """Paper Table 1 analog: MLM predictions for one surface form in two
    different topical contexts."""
    specs = _specs("lotclass-predictions", seed, True, [
        (f"agnews/{theme}/{word}", _lotclass_prediction_row,
         {"theme": theme, "word": word, "table_seed": seed},
         {}, f"agnews@{seed}")
        for theme in themes
    ])
    return run_specs(specs, table_seed=seed, jobs=jobs, use_cache=use_cache,
                     timeout=timeout)


# ---------------------------------------------------------------------------
# T-LOTCLASS-2
# ---------------------------------------------------------------------------

_LOTCLASS_METHODS = {
    "Dataless": (Dataless, {}, (), "names"),
    "WeSTClass": (WeSTClass, {}, (), "names"),
    "BERT w. simple match": (BertSimpleMatch, {}, ("plm",), "names"),
    "Ours w/o. self train": (LOTClass, {"self_train": False}, ("plm",),
                             "names"),
    "Ours": (LOTClass, {}, ("plm",), "names"),
    "UDA (semi-sup.)": (UDASemiSupervised, {}, ("plm",), "docs"),
    "char-CNN (supervised)": (SupervisedCharCNN, {"epochs": 6}, (), "names"),
    "BERT (supervised)": (SupervisedBERT, {}, ("plm",), "names"),
}


def _lotclass_row(row_seed: int, profile: str, method: str,
                  table_seed: int) -> dict:
    bundle = _bundle(profile, table_seed)
    cls, kwargs, needs, sup_kind = _LOTCLASS_METHODS[method]
    classifier = _make((cls, kwargs, needs), table_seed,
                       plm=lambda: _plm(bundle, table_seed))
    supervision = (bundle.label_names() if sup_kind == "names"
                   else bundle.labeled_documents(8, seed=table_seed))
    metrics = _fit_flat(classifier, bundle, supervision)
    return {"Accuracy": metrics["micro_f1"]}


def lotclass_table(seed: int = 0, fast: bool = True, *,
                   jobs: "int | None" = None,
                   use_cache: "bool | None" = None,
                   timeout: "float | None" = None) -> list:
    """LOTClass results table (accuracy, label names only)."""
    datasets = ["agnews"] if fast else ["agnews", "dbpedia", "imdb",
                                       "amazon_polarity"]
    specs = _specs("lotclass", seed, fast, [
        (f"{name}/{method}", _lotclass_row,
         {"profile": name, "method": method, "table_seed": seed},
         {"Dataset": name, "Method": method}, f"{name}@{seed}")
        for name in datasets for method in _LOTCLASS_METHODS
    ])
    return run_specs(specs, table_seed=seed, jobs=jobs, use_cache=use_cache,
                     timeout=timeout)


# ---------------------------------------------------------------------------
# T-XCLASS-DATA / T-XCLASS
# ---------------------------------------------------------------------------

XCLASS_PROFILES_FAST = ["agnews", "nyt_small", "yelp"]
XCLASS_PROFILES_FULL = ["agnews", "twenty_news", "nyt_small", "nyt_topic",
                        "nyt_location", "yelp", "dbpedia"]


@lru_cache(maxsize=None)
def _xclass_bundle(name: str, seed: int):
    bundle = _bundle(name, seed)
    if bundle.tree is not None:
        bundle = coarse_view(bundle)
    return bundle


def _xclass_stats_row(row_seed: int, profile: str, table_seed: int) -> dict:
    return _xclass_bundle(profile, table_seed).stats()


def xclass_dataset_table(seed: int = 0, fast: bool = True, *,
                         jobs: "int | None" = None,
                         use_cache: "bool | None" = None,
                         timeout: "float | None" = None) -> list:
    """X-Class dataset-statistics table."""
    names = XCLASS_PROFILES_FAST if fast else XCLASS_PROFILES_FULL
    specs = _specs("xclass-data", seed, fast, [
        (f"{name}/stats", _xclass_stats_row,
         {"profile": name, "table_seed": seed}, {}, f"{name}@{seed}")
        for name in names
    ])
    return run_specs(specs, table_seed=seed, jobs=jobs, use_cache=use_cache,
                     timeout=timeout)


_XCLASS_METHODS = {
    "Supervised": (SupervisedBERT, {}, ("plm",)),
    "WeSTClass": (WeSTClass, {}, ()),
    "ConWea": (ConWea, {}, ("plm",)),
    "LOTClass": (LOTClass, {}, ("plm",)),
    "X-Class": (XClass, {}, ("plm",)),
    "X-Class-Rep": (XClass, {"variant": "rep"}, ("plm",)),
    "X-Class-Align": (XClass, {"variant": "align"}, ("plm",)),
}


def _xclass_row(row_seed: int, profile: str, method: str,
                table_seed: int) -> dict:
    bundle = _xclass_bundle(profile, table_seed)
    classifier = _make(_XCLASS_METHODS[method], table_seed,
                       plm=lambda: _plm(bundle, table_seed))
    supervision = (
        bundle.keywords() if method == "ConWea" else bundle.label_names()
    )
    metrics = _fit_flat(classifier, bundle, supervision)
    return {"Micro-F1": metrics["micro_f1"], "Macro-F1": metrics["macro_f1"]}


def xclass_table(seed: int = 0, fast: bool = True, *,
                 jobs: "int | None" = None,
                 use_cache: "bool | None" = None,
                 timeout: "float | None" = None) -> list:
    """X-Class results table (micro/macro F1, label names only)."""
    names = XCLASS_PROFILES_FAST if fast else XCLASS_PROFILES_FULL
    specs = _specs("xclass", seed, fast, [
        (f"{name}/{method}", _xclass_row,
         {"profile": name, "method": method, "table_seed": seed},
         {"Dataset": name, "Method": method}, f"{name}@{seed}")
        for name in names for method in _XCLASS_METHODS
    ])
    return run_specs(specs, table_seed=seed, jobs=jobs, use_cache=use_cache,
                     timeout=timeout)


# ---------------------------------------------------------------------------
# T-PROMPT
# ---------------------------------------------------------------------------

_PROMPTCLASS_METHODS = {
    "WeSTClass": (WeSTClass, {}, (), "names"),
    "ConWea": (ConWea, {}, ("plm",), "keywords"),
    "LOTClass": (LOTClass, {}, ("plm",), "names"),
    "XClass": (XClass, {}, ("plm",), "names"),
    "ClassKG": (ClassKG, {}, (), "keywords"),
    "RoBERTa (0-shot)": (PromptClass, {"prompt_backend": "mlm",
                                       "zero_shot_only": True},
                         ("plm",), "names"),
    "ELECTRA (0-shot)": (PromptClass, {"prompt_backend": "electra",
                                       "zero_shot_only": True},
                         ("plm",), "names"),
    "PromptClass ELECTRA+BERT": (PromptClass, {"prompt_backend": "electra",
                                               "head_backend": "bert"},
                                 ("plm",), "names"),
    "PromptClass RoBERTa+RoBERTa": (PromptClass, {"prompt_backend": "mlm",
                                                  "head_backend": "roberta"},
                                    ("plm",), "names"),
    "PromptClass ELECTRA+ELECTRA": (PromptClass,
                                    {"prompt_backend": "electra",
                                     "head_backend": "electra", "blend": 0.4},
                                    ("plm",), "names"),
    "Fully Supervised": (SupervisedBERT, {}, ("plm",), "names"),
}


@lru_cache(maxsize=None)
def _coarse_if_tree(profile: str, seed: int):
    bundle = _bundle(profile, seed)
    if bundle.tree is not None:
        bundle = coarse_view(bundle)
    return bundle


def _promptclass_row(row_seed: int, profile: str, method: str,
                     table_seed: int) -> dict:
    bundle = _coarse_if_tree(profile, table_seed)
    cls, kwargs, needs, sup_kind = _PROMPTCLASS_METHODS[method]
    classifier = _make((cls, kwargs, needs), table_seed,
                       plm=lambda: _plm(bundle, table_seed))
    supervision = (bundle.keywords() if sup_kind == "keywords"
                   else bundle.label_names())
    metrics = _fit_flat(classifier, bundle, supervision)
    return {"Micro-F1": metrics["micro_f1"], "Macro-F1": metrics["macro_f1"]}


def promptclass_table(seed: int = 0, fast: bool = True, *,
                      jobs: "int | None" = None,
                      use_cache: "bool | None" = None,
                      timeout: "float | None" = None) -> list:
    """PromptClass results table (micro/macro F1, label names only)."""
    datasets = ["agnews"] if fast else ["agnews", "twenty_news", "yelp",
                                       "imdb"]
    specs = _specs("promptclass", seed, fast, [
        (f"{name}/{method}", _promptclass_row,
         {"profile": name, "method": method, "table_seed": seed},
         {"Dataset": name, "Method": method}, f"{name}@{seed}")
        for name in datasets for method in _PROMPTCLASS_METHODS
    ])
    return run_specs(specs, table_seed=seed, jobs=jobs, use_cache=use_cache,
                     timeout=timeout)


# ---------------------------------------------------------------------------
# T-WESHCLASS
# ---------------------------------------------------------------------------

_WESHCLASS_METHODS = {
    "Hier-Dataless": (HierDataless, {}, ("tree", "concept_themes"),
                      ("KEYWORDS",)),
    "Hier-SVM": (HierSVM, {}, ("tree",), ("DOCS",)),
    "CNN": (WeSTClass, {"self_train": False}, (), ("KEYWORDS", "DOCS")),
    "WeSTClass": (WeSTClass, {}, (), ("KEYWORDS", "DOCS")),
    "No-global": (WeSHClass, {"use_global": False}, ("tree",),
                  ("KEYWORDS", "DOCS")),
    "No-vMF": (WeSHClass, {"use_vmf": False}, ("tree",),
               ("KEYWORDS", "DOCS")),
    "No-self-train": (WeSHClass, {"self_train": False}, ("tree",),
                      ("KEYWORDS", "DOCS")),
    "WeSHClass": (WeSHClass, {}, ("tree",), ("KEYWORDS", "DOCS")),
}


def _weshclass_row(row_seed: int, profile: str, method: str,
                   table_seed: int) -> dict:
    bundle = _bundle(profile, table_seed)
    tree = bundle.tree
    assert tree is not None
    cls, kwargs, needs, supported = _WESHCLASS_METHODS[method]
    sups = {
        "KEYWORDS": bundle.keywords(),
        "DOCS": bundle.labeled_documents(3, seed=table_seed),
    }
    row: dict = {}
    for sup_name in ("KEYWORDS", "DOCS"):
        if sup_name not in supported:
            row[f"{sup_name} macro"] = "-"
            row[f"{sup_name} micro"] = "-"
            continue
        classifier = _make(
            (cls, kwargs, needs), table_seed, tree=lambda: tree,
            concept_themes=lambda: tuple(c.theme
                                         for c in bundle.profile.classes),
        )
        # Hier-Dataless consumes label names; map accordingly.
        supervision = (
            bundle.label_names() if method == "Hier-Dataless"
            else sups[sup_name]
        )
        metrics = _fit_flat(classifier, bundle, supervision)
        row[f"{sup_name} macro"] = metrics["macro_f1"]
        row[f"{sup_name} micro"] = metrics["micro_f1"]
    return row


def weshclass_table(seed: int = 0, fast: bool = True, *,
                    jobs: "int | None" = None,
                    use_cache: "bool | None" = None,
                    timeout: "float | None" = None) -> list:
    """WeSHClass results table: trees x {KEYWORDS, DOCS} + ablations."""
    profiles = ["arxiv_tree"] if fast else ["nyt_fine", "arxiv_tree",
                                            "yelp_tree"]
    specs = _specs("weshclass", seed, fast, [
        (f"{name}/{method}", _weshclass_row,
         {"profile": name, "method": method, "table_seed": seed},
         {"Dataset": name, "Method": method}, f"{name}@{seed}")
        for name in profiles for method in _WESHCLASS_METHODS
    ])
    return run_specs(specs, table_seed=seed, jobs=jobs, use_cache=use_cache,
                     timeout=timeout)


# ---------------------------------------------------------------------------
# T-TAXOCLASS
# ---------------------------------------------------------------------------

class _PathAsSet:
    """Adapter: a single-label hierarchical method scored as multi-label.

    The predicted leaf's ancestor closure becomes the label set; the
    ranking orders labels by predicted path probability mass.
    """

    def __init__(self, inner, dag):
        self.inner = inner
        self.dag = dag

    def fit(self, corpus, supervision):
        self.inner.fit(corpus, supervision)
        return self

    def predict(self, corpus, threshold: float = 0.5, top_k=None):
        out = []
        for label in self.inner.predict(corpus):
            out.append(tuple(sorted(self.dag.closure([label]))))
        return out

    def rank(self, corpus):
        proba = self.inner.predict_proba(corpus)
        labels = list(self.inner.label_set.labels)
        rankings = []
        for row in proba:
            mass = {l: 0.0 for l in labels}
            for j, leaf in enumerate(labels):
                for node in self.dag.closure([leaf]):
                    if node in mass:
                        mass[node] += float(row[j])
            rankings.append(sorted(mass, key=mass.get, reverse=True))
        return rankings


def _taxoclass_leaf_supervision(bundle):
    """Leaf-label view for the single-path semi-supervised baselines.

    Only a minority of classes get labeled documents: with 10^4-10^5
    category taxonomies, labeling every class is exactly what the
    TaxoClass setting rules out.
    """
    from repro.core.supervision import LabeledDocuments
    from repro.core.types import LabelSet

    leaf_docs: "dict[str, list]" = {}
    for doc in bundle.train_corpus:
        core = doc.metadata.get("core_labels", list(doc.labels))
        leaf_docs.setdefault(core[0], []).append(doc)
    covered = sorted(leaf_docs)[: max(2, int(len(leaf_docs) * 0.4))]
    few = {label: leaf_docs[label][:3] for label in covered}
    leaf_label_set = LabelSet(
        labels=tuple(sorted(few)),
        names={l: bundle.label_set.names.get(l, l) for l in few},
    )
    return LabeledDocuments(label_set=leaf_label_set, documents=few)


def _taxoclass_row(row_seed: int, profile: str, method: str,
                   table_seed: int) -> dict:
    bundle = _bundle(profile, table_seed)
    dag = bundle.dag
    assert dag is not None
    if method == "WeSHClass":
        classifier = _PathAsSet(WeSHClass(tree=dag_as_tree(dag),
                                          seed=table_seed), dag)
        supervision = _taxoclass_leaf_supervision(bundle)
    elif method == "SS-PCEM":
        classifier = _PathAsSet(PCEM(seed=table_seed), dag)
        supervision = _taxoclass_leaf_supervision(bundle)
    elif method == "Semi-BERT":
        classifier = SemiBERT(plm=_plm(bundle, table_seed), fraction=0.3,
                              seed=table_seed)
        supervision = bundle.label_names()
    elif method == "Hier-0Shot-TC":
        classifier = HierZeroShotTC(dag=dag, plm=_plm(bundle, table_seed),
                                    seed=table_seed)
        supervision = bundle.label_names()
    else:  # TaxoClass
        classifier = TaxoClass(dag=dag, plm=_plm(bundle, table_seed),
                               seed=table_seed)
        supervision = bundle.label_names()
    metrics = evaluate_multilabel(classifier, bundle, supervision, ks=(1,))
    return {"Example-F1": metrics["example_f1"], "P@1": metrics["p@1"]}


_TAXOCLASS_METHODS = ("WeSHClass", "SS-PCEM", "Semi-BERT", "Hier-0Shot-TC",
                      "TaxoClass")


def taxoclass_table(seed: int = 0, fast: bool = True, *,
                    jobs: "int | None" = None,
                    use_cache: "bool | None" = None,
                    timeout: "float | None" = None) -> list:
    """TaxoClass results table (Example-F1, P@1) on DAG profiles."""
    profiles = ["amazon_dag"] if fast else ["amazon_dag", "dbpedia_dag"]
    specs = _specs("taxoclass", seed, fast, [
        (f"{name}/{method}", _taxoclass_row,
         {"profile": name, "method": method, "table_seed": seed},
         {"Dataset": name, "Method": method}, f"{name}@{seed}")
        for name in profiles for method in _TAXOCLASS_METHODS
    ])
    return run_specs(specs, table_seed=seed, jobs=jobs, use_cache=use_cache,
                     timeout=timeout)


# ---------------------------------------------------------------------------
# T-METACAT
# ---------------------------------------------------------------------------

_METACAT_METHODS = {
    "CNN": (FewShotCNN, {}, ()),
    "HAN": (FewShotHAN, {}, ()),
    "PTE": (PTE, {}, ()),
    "WeSTClass": (WeSTClass, {}, ()),
    "PCEM": (PCEM, {}, ()),
    "BERT": (FewShotBERT, {}, ("plm",)),
    "ESim": (ESim, {}, ()),
    "Metapath2vec": (Metapath2Vec, {}, ()),
    "HIN2vec": (HIN2Vec, {}, ()),
    "TextGCN": (TextGCN, {}, ()),
    "MetaCat": (MetaCat, {}, ()),
}


def _metacat_row(row_seed: int, profile: str, method: str,
                 table_seed: int) -> dict:
    bundle = _bundle(profile, table_seed)
    classifier = _make(_METACAT_METHODS[method], table_seed,
                       plm=lambda: _plm(bundle, table_seed))
    docs = bundle.labeled_documents(5, seed=table_seed)
    metrics = _fit_flat(classifier, bundle, docs)
    return {"Micro-F1": metrics["micro_f1"], "Macro-F1": metrics["macro_f1"]}


def metacat_tables(seed: int = 0, fast: bool = True, *,
                   jobs: "int | None" = None,
                   use_cache: "bool | None" = None,
                   timeout: "float | None" = None) -> list:
    """MetaCat Tables 2+3: micro and macro F1 on the metadata profiles."""
    profiles = ["github_bio"] if fast else ["github_bio", "github_ai",
                                            "github_sec", "amazon_meta",
                                            "twitter"]
    items = []
    for name in profiles:
        # Reproduce the paper's "-" (OOM) entries: TextGCN is excluded on
        # the two largest profiles.
        textgcn_ok = name not in ("github_sec", "amazon_meta")
        for method in _METACAT_METHODS:
            if method == "TextGCN" and not textgcn_ok:
                items.append((f"{name}/{method}", None, {},
                              {"Dataset": name, "Method": method,
                               "Micro-F1": "-", "Macro-F1": "-"},
                              f"{name}@{seed}"))
                continue
            items.append((f"{name}/{method}", _metacat_row,
                          {"profile": name, "method": method,
                           "table_seed": seed},
                          {"Dataset": name, "Method": method},
                          f"{name}@{seed}"))
    return run_specs(_specs("metacat", seed, fast, items), table_seed=seed,
                     jobs=jobs, use_cache=use_cache, timeout=timeout)


# ---------------------------------------------------------------------------
# T-MICOL
# ---------------------------------------------------------------------------

_MICOL_MATCH_FRACTIONS = {
    "MATCH (2%)": "2%",
    "MATCH (10%)": "10%",
    "MATCH (30%)": "30%",
    "MATCH (full)": "full",
}

_MICOL_METHODS = ("Doc2Vec", "SciBERT", "ZeroShot-Entail", "SPECTER", "EDA",
                  "UDA", "MICoL (Bi, P->P<-P)", "MICoL (Bi, P<-(PP)->P)",
                  "MICoL (Cross, P->P<-P)", "MICoL (Cross, P<-(PP)->P)",
                  ) + tuple(_MICOL_MATCH_FRACTIONS)


def _match_size(fraction: str, n: int) -> int:
    # Scaled analogs of MATCH's 10K / 50K / 100K / full training sets.
    return {"2%": max(4, n // 50), "10%": n // 10,
            "30%": int(n * 0.3), "full": n}[fraction]


def _micol_classifier(method: str, bundle, table_seed: int):
    plm = lambda: _plm(bundle, table_seed)  # noqa: E731 - lazy build
    if method == "Doc2Vec":
        return Doc2VecRanker(seed=table_seed)
    if method == "SciBERT":
        return _StaticConceptRanker(seed=table_seed)
    if method == "ZeroShot-Entail":
        return ZeroShotEntailRanker(plm=plm(), seed=table_seed)
    if method == "SPECTER":
        return MICoL(plm=plm(), fine_tune=False, seed=table_seed)
    if method == "EDA":
        return EDAContrastive(plm=plm(), seed=table_seed)
    if method == "UDA":
        return UDAContrastive(plm=plm(), seed=table_seed)
    if method.startswith("MICoL"):
        encoder = "bi" if "(Bi" in method else "cross"
        metapath = P_REF_P if "P->P<-P" in method else P_COCITED_P
        return MICoL(plm=plm(), encoder=encoder, metapath=metapath,
                     seed=table_seed)
    fraction = _MICOL_MATCH_FRACTIONS[method]
    return MATCH(plm=plm(),
                 n_train_examples=_match_size(fraction,
                                              len(bundle.train_corpus)),
                 seed=table_seed)


def _micol_row(row_seed: int, profile: str, method: str,
               table_seed: int) -> dict:
    from repro.evaluation.ranking import per_example_precision_at_k

    bundle = _bundle(profile, table_seed)
    classifier = _micol_classifier(method, bundle, table_seed)
    metrics = evaluate_multilabel(classifier, bundle, bundle.label_names(),
                                  ks=(1, 3, 5))
    gold = [set(d.labels) for d in bundle.test_corpus]
    scores = per_example_precision_at_k(
        gold, classifier.rank(bundle.test_corpus), 5
    )
    return {
        "P@1": metrics["p@1"],
        "P@3": metrics["p@3"],
        "P@5": metrics["p@5"],
        "NDCG@3": metrics["ndcg@3"],
        "NDCG@5": metrics["ndcg@5"],
        "_p5_scores": [float(s) for s in scores],
    }


def micol_table(seed: int = 0, fast: bool = True,
                significance: bool = True, *,
                jobs: "int | None" = None,
                use_cache: "bool | None" = None,
                timeout: "float | None" = None) -> list:
    """MICoL results table (P@k, NDCG@k) with the MATCH crossover rows.

    With ``significance`` on, zero-shot rows whose per-document P@5 is
    significantly below the best MICoL variant (one-sided paired
    bootstrap, p < 0.01) carry the paper's ``**`` marker.
    """
    from repro.evaluation.significance import paired_bootstrap_pvalue

    profiles = ["magcs"] if fast else ["magcs", "pubmed"]
    specs = _specs("micol", seed, fast, [
        (f"{name}/{method}", _micol_row,
         {"profile": name, "method": method, "table_seed": seed},
         {"Dataset": name, "Method": method}, f"{name}@{seed}")
        for name in profiles for method in _MICOL_METHODS
    ])
    rows = run_specs(specs, table_seed=seed, jobs=jobs, use_cache=use_cache,
                     timeout=timeout)
    # Per-document P@5 scores ride along as a hidden column; pop them
    # before rendering and (optionally) run the significance pass.
    per_profile: "dict[str, dict[str, np.ndarray]]" = {}
    for row in rows:
        scores = row.pop("_p5_scores", None)
        if scores is not None:
            per_profile.setdefault(row["Dataset"], {})[row["Method"]] = (
                np.asarray(scores)
            )
    if significance:
        for name in profiles:
            per_method_scores = per_profile.get(name, {})
            # The paper's ** markers: significantly below the best MICoL
            # variant under a paired bootstrap on per-document P@5.
            micol_names = [m for m in per_method_scores
                           if m.startswith("MICoL")]
            if not micol_names:
                continue
            best_micol = max(micol_names,
                             key=lambda m: per_method_scores[m].mean())
            reference = per_method_scores[best_micol]
            for row in rows:
                if row["Dataset"] != name:
                    continue
                method_name = row["Method"]
                if method_name.startswith(("MICoL", "MATCH")):
                    row["sig"] = ""
                    continue
                if method_name not in per_method_scores:
                    continue  # error row: no per-document scores
                p_value = paired_bootstrap_pvalue(
                    reference, per_method_scores[method_name], seed=seed
                )
                row["sig"] = "**" if p_value < 0.01 else (
                    "*" if p_value < 0.05 else ""
                )
    return rows


class _StaticConceptRanker(_MLBase):
    """Label ranking by cosine in the external (never target-adapted)
    concept space — the un-fine-tuned generic-encoder ("SciBERT") row."""

    def __init__(self, dim: int = 48, seed=0):
        super().__init__(seed=seed)
        self.dim = dim
        self.space = None
        self._label_matrix = None

    def _fit(self, corpus, supervision) -> None:
        _require(supervision, _LabelNames)
        from repro.baselines.dataless import _general_space
        from repro.nn.functional import l2_normalize
        from repro.text.tokenizer import tokenize

        assert self.label_set is not None
        self.space = _general_space(self.dim, seed=0)
        rows = []
        for label in self.label_set:
            tokens = list(self.label_set.name_tokens(label))
            tokens += tokenize(self.label_set.description_of(label))
            rows.append(np.mean([self.space.vector(t) for t in tokens], axis=0))
        self._label_matrix = l2_normalize(np.stack(rows))

    def _score(self, corpus) -> np.ndarray:
        from repro.embeddings.doc import doc_embeddings

        docs = doc_embeddings(corpus.token_lists(), self.space)
        return docs @ self._label_matrix.T


# ---------------------------------------------------------------------------
# T-SUMMARY
# ---------------------------------------------------------------------------

def summary_table() -> list:
    """The tutorial's closing capability matrix, generated from the
    method registry."""
    return summary_rows()
