"""One function per paper table; each returns printable row dicts.

Every function takes ``seed`` (dataset + method seeding) and ``fast``
(True = fewer datasets / lighter methods; the default used by the bench
suite so a full run stays CPU-friendly). Absolute numbers are not expected
to match the paper — the *orderings* asserted in the benches are.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import (
    PCEM,
    PTE,
    UNEC,
    BertSimpleMatch,
    ClassKG,
    Dataless,
    Doc2Cube,
    Doc2VecRanker,
    EDAContrastive,
    ESim,
    HierDataless,
    HierSVM,
    HierZeroShotTC,
    HIN2Vec,
    IRWithTfidf,
    MATCH,
    Metapath2Vec,
    PLSATopicModel,
    SemiBERT,
    SupervisedBERT,
    SupervisedCharCNN,
    SupervisedCNN,
    SupervisedHAN,
    TextGCN,
    UDAContrastive,
    UDASemiSupervised,
    ZeroShotEntail,
    ZeroShotEntailRanker,
)
from repro.baselines.fewshot import FewShotBERT, FewShotCNN, FewShotHAN
from repro.baselines.word2vec_match import Word2VecMatch
from repro.core.base import MultiLabelTextClassifier as _MLBase
from repro.core.registry import summary_rows
from repro.core.supervision import LabelNames as _LabelNames
from repro.core.supervision import require as _require
from repro.datasets import load_profile
from repro.evaluation.metrics import macro_f1, micro_f1
from repro.experiments.runner import (
    evaluate_flat,
    evaluate_multilabel,
    gold_single,
)
from repro.experiments.views import coarse_view, dag_as_tree
from repro.hin.metapath import P_COCITED_P, P_REF_P
from repro.methods import (
    ConWea,
    LOTClass,
    MetaCat,
    MICoL,
    PromptClass,
    TaxoClass,
    WeSHClass,
    WeSTClass,
    XClass,
)
from repro.plm.provider import get_pretrained_lm


def _plm(bundle, seed: int):
    return get_pretrained_lm(target_corpus=bundle.train_corpus, seed=seed % 7)


def _fit_flat(classifier, bundle, supervision) -> dict:
    return evaluate_flat(classifier, bundle, supervision)


# ---------------------------------------------------------------------------
# T-WESTCLASS
# ---------------------------------------------------------------------------

def westclass_table(seed: int = 0, fast: bool = True) -> list:
    """WeSTClass results table: 3 corpora x 3 supervision types."""
    datasets = ["agnews"] if fast else ["nyt_small", "agnews", "yelp"]
    rows = []
    for name in datasets:
        bundle = load_profile(name, seed=seed)
        sups = {
            "LABELS": bundle.label_names(),
            "KEYWORDS": bundle.keywords(),
            "DOCS": bundle.labeled_documents(5, seed=seed),
        }
        methods = [
            ("IR with tf-idf", lambda: IRWithTfidf(seed=seed),
             ("LABELS", "KEYWORDS", "DOCS")),
            ("Topic Model", lambda: PLSATopicModel(seed=seed),
             ("LABELS", "KEYWORDS")),
            ("Dataless", lambda: Dataless(seed=seed), ("LABELS",)),
            ("UNEC", lambda: UNEC(seed=seed), ("LABELS",)),
            ("PTE", lambda: PTE(seed=seed), ("DOCS",)),
            ("NoST-CNN", lambda: WeSTClass(classifier="cnn", self_train=False,
                                           seed=seed),
             ("LABELS", "KEYWORDS", "DOCS")),
            ("NoST-HAN", lambda: WeSTClass(classifier="han", self_train=False,
                                           seed=seed),
             ("LABELS", "KEYWORDS", "DOCS")),
            ("WeSTClass-HAN", lambda: WeSTClass(classifier="han", seed=seed),
             ("LABELS", "KEYWORDS", "DOCS")),
            ("WeSTClass-CNN", lambda: WeSTClass(classifier="cnn", seed=seed),
             ("LABELS", "KEYWORDS", "DOCS")),
        ]
        for method_name, factory, supported in methods:
            row = {"Dataset": name, "Method": method_name}
            for sup_name in ("LABELS", "KEYWORDS", "DOCS"):
                if sup_name not in supported:
                    row[f"{sup_name} macro"] = "-"
                    row[f"{sup_name} micro"] = "-"
                    continue
                metrics = _fit_flat(factory(), bundle, sups[sup_name])
                row[f"{sup_name} macro"] = metrics["macro_f1"]
                row[f"{sup_name} micro"] = metrics["micro_f1"]
            rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# T-CONWEA
# ---------------------------------------------------------------------------

def conwea_table(seed: int = 0, fast: bool = True) -> list:
    """ConWea results: coarse/fine views of two tree corpora + ablations."""
    profiles = ["nyt_fine"] if fast else ["nyt_fine", "twenty_news"]
    rows = []
    for name in profiles:
        fine = load_profile(name, seed=seed)
        # One PLM per corpus (fine and coarse views share the text).
        plm = _plm(fine, seed)
        views = [(f"{name}-coarse", coarse_view(fine)), (f"{name}-fine", fine)]
        for view_name, bundle in views:
            keywords = bundle.keywords()
            methods = [
                ("IR-TF-IDF", lambda: IRWithTfidf(seed=seed)),
                ("Dataless", lambda: Dataless(seed=seed)),
                ("Word2Vec", lambda: Word2VecMatch(seed=seed)),
                ("Doc2Cube", lambda: Doc2Cube(seed=seed)),
                ("WeSTClass", lambda: WeSTClass(seed=seed)),
                ("ConWea", lambda: ConWea(plm=plm, seed=seed)),
                ("ConWea-NoCon", lambda: ConWea(plm=plm, contextualize=False,
                                                seed=seed)),
                ("ConWea-NoExpan", lambda: ConWea(plm=plm, expand=False,
                                                  seed=seed)),
                ("ConWea-WSD", lambda: ConWea(plm=plm, wsd_mode=True, seed=seed)),
                ("HAN-Supervised", lambda: SupervisedHAN(seed=seed)),
            ]
            for method_name, factory in methods:
                supervision = (
                    bundle.label_names() if method_name == "Dataless" else keywords
                )
                metrics = _fit_flat(factory(), bundle, supervision)
                rows.append(
                    {
                        "View": view_name,
                        "Method": method_name,
                        "Micro-F1": metrics["micro_f1"],
                        "Macro-F1": metrics["macro_f1"],
                    }
                )
    return rows


# ---------------------------------------------------------------------------
# T-LOTCLASS-1 (the MLM replacement-prediction demonstration)
# ---------------------------------------------------------------------------

def lotclass_prediction_rows(seed: int = 0, word: str = "goal",
                             themes: tuple = ("sports", "business")) -> list:
    """Paper Table 1 analog: MLM predictions for one surface form in two
    different topical contexts."""
    bundle = load_profile("agnews", seed=seed)
    plm = _plm(bundle, seed)
    rows = []
    for theme in themes:
        context = None
        for doc in bundle.train_corpus:
            if doc.labels[0] == theme and word in doc.tokens[:24]:
                context = doc.tokens[:28]
                break
        if context is None:
            continue
        position = context.index(word)
        predictions = [w for w, _ in plm.predict_masked(context, position,
                                                        top_k=10)]
        rows.append(
            {
                "Context topic": theme,
                "Sentence (prefix)": " ".join(context[:12]) + " ...",
                "Predictions": ", ".join(predictions),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# T-LOTCLASS-2
# ---------------------------------------------------------------------------

def lotclass_table(seed: int = 0, fast: bool = True) -> list:
    """LOTClass results table (accuracy, label names only)."""
    datasets = ["agnews"] if fast else ["agnews", "dbpedia", "imdb",
                                        "amazon_polarity"]
    rows = []
    for name in datasets:
        bundle = load_profile(name, seed=seed)
        plm = _plm(bundle, seed)
        names = bundle.label_names()
        docs = bundle.labeled_documents(8, seed=seed)
        methods = [
            ("Dataless", lambda: Dataless(seed=seed), names),
            ("WeSTClass", lambda: WeSTClass(seed=seed), names),
            ("BERT w. simple match", lambda: BertSimpleMatch(plm=plm, seed=seed),
             names),
            ("Ours w/o. self train",
             lambda: LOTClass(plm=plm, self_train=False, seed=seed), names),
            ("Ours", lambda: LOTClass(plm=plm, seed=seed), names),
            ("UDA (semi-sup.)",
             lambda: UDASemiSupervised(plm=plm, seed=seed), docs),
            ("char-CNN (supervised)",
             lambda: SupervisedCharCNN(epochs=6, seed=seed), names),
            ("BERT (supervised)", lambda: SupervisedBERT(plm=plm, seed=seed),
             names),
        ]
        for method_name, factory, supervision in methods:
            metrics = _fit_flat(factory(), bundle, supervision)
            rows.append(
                {
                    "Dataset": name,
                    "Method": method_name,
                    "Accuracy": metrics["micro_f1"],
                }
            )
    return rows


# ---------------------------------------------------------------------------
# T-XCLASS-DATA / T-XCLASS
# ---------------------------------------------------------------------------

XCLASS_PROFILES_FAST = ["agnews", "nyt_small", "yelp"]
XCLASS_PROFILES_FULL = ["agnews", "twenty_news", "nyt_small", "nyt_topic",
                        "nyt_location", "yelp", "dbpedia"]


def _xclass_bundle(name: str, seed: int):
    bundle = load_profile(name, seed=seed)
    if bundle.tree is not None:
        bundle = coarse_view(bundle)
    return bundle


def xclass_dataset_table(seed: int = 0, fast: bool = True) -> list:
    """X-Class dataset-statistics table."""
    names = XCLASS_PROFILES_FAST if fast else XCLASS_PROFILES_FULL
    return [_xclass_bundle(name, seed).stats() for name in names]


def xclass_table(seed: int = 0, fast: bool = True) -> list:
    """X-Class results table (micro/macro F1, label names only)."""
    names = XCLASS_PROFILES_FAST if fast else XCLASS_PROFILES_FULL
    rows = []
    for name in names:
        bundle = _xclass_bundle(name, seed)
        plm = _plm(bundle, seed)
        label_names = bundle.label_names()
        methods = [
            ("Supervised", lambda: SupervisedBERT(plm=plm, seed=seed)),
            ("WeSTClass", lambda: WeSTClass(seed=seed)),
            ("ConWea", lambda: ConWea(plm=plm, seed=seed)),
            ("LOTClass", lambda: LOTClass(plm=plm, seed=seed)),
            ("X-Class", lambda: XClass(plm=plm, seed=seed)),
            ("X-Class-Rep", lambda: XClass(plm=plm, variant="rep", seed=seed)),
            ("X-Class-Align", lambda: XClass(plm=plm, variant="align", seed=seed)),
        ]
        for method_name, factory in methods:
            supervision = (
                bundle.keywords() if method_name == "ConWea" else label_names
            )
            metrics = _fit_flat(factory(), bundle, supervision)
            rows.append(
                {
                    "Dataset": name,
                    "Method": method_name,
                    "Micro-F1": metrics["micro_f1"],
                    "Macro-F1": metrics["macro_f1"],
                }
            )
    return rows


# ---------------------------------------------------------------------------
# T-PROMPT
# ---------------------------------------------------------------------------

def promptclass_table(seed: int = 0, fast: bool = True) -> list:
    """PromptClass results table (micro/macro F1, label names only)."""
    datasets = ["agnews"] if fast else ["agnews", "twenty_news", "yelp", "imdb"]
    rows = []
    for name in datasets:
        bundle = load_profile(name, seed=seed)
        if bundle.tree is not None:
            bundle = coarse_view(bundle)
        plm = _plm(bundle, seed)
        names = bundle.label_names()
        methods = [
            ("WeSTClass", lambda: WeSTClass(seed=seed), names),
            ("ConWea", lambda: ConWea(plm=plm, seed=seed), bundle.keywords()),
            ("LOTClass", lambda: LOTClass(plm=plm, seed=seed), names),
            ("XClass", lambda: XClass(plm=plm, seed=seed), names),
            ("ClassKG", lambda: ClassKG(seed=seed), bundle.keywords()),
            ("RoBERTa (0-shot)",
             lambda: PromptClass(plm=plm, prompt_backend="mlm",
                                 zero_shot_only=True, seed=seed), names),
            ("ELECTRA (0-shot)",
             lambda: PromptClass(plm=plm, prompt_backend="electra",
                                 zero_shot_only=True, seed=seed), names),
            ("PromptClass ELECTRA+BERT",
             lambda: PromptClass(plm=plm, prompt_backend="electra",
                                 head_backend="bert", seed=seed), names),
            ("PromptClass RoBERTa+RoBERTa",
             lambda: PromptClass(plm=plm, prompt_backend="mlm",
                                 head_backend="roberta", seed=seed), names),
            ("PromptClass ELECTRA+ELECTRA",
             lambda: PromptClass(plm=plm, prompt_backend="electra",
                                 head_backend="electra", blend=0.4, seed=seed),
             names),
            ("Fully Supervised", lambda: SupervisedBERT(plm=plm, seed=seed),
             names),
        ]
        for method_name, factory, supervision in methods:
            metrics = _fit_flat(factory(), bundle, supervision)
            rows.append(
                {
                    "Dataset": name,
                    "Method": method_name,
                    "Micro-F1": metrics["micro_f1"],
                    "Macro-F1": metrics["macro_f1"],
                }
            )
    return rows


# ---------------------------------------------------------------------------
# T-WESHCLASS
# ---------------------------------------------------------------------------

def weshclass_table(seed: int = 0, fast: bool = True) -> list:
    """WeSHClass results table: trees x {KEYWORDS, DOCS} + ablations."""
    profiles = ["arxiv_tree"] if fast else ["nyt_fine", "arxiv_tree",
                                            "yelp_tree"]
    rows = []
    for name in profiles:
        bundle = load_profile(name, seed=seed)
        tree = bundle.tree
        assert tree is not None
        concept_themes = tuple(c.theme for c in bundle.profile.classes)
        sups = {
            "KEYWORDS": bundle.keywords(),
            "DOCS": bundle.labeled_documents(3, seed=seed),
        }
        methods = [
            ("Hier-Dataless",
             lambda: HierDataless(tree=tree, concept_themes=concept_themes,
                                  seed=seed), ("KEYWORDS",)),
            ("Hier-SVM", lambda: HierSVM(tree=tree, seed=seed), ("DOCS",)),
            ("CNN", lambda: WeSTClass(self_train=False, seed=seed),
             ("KEYWORDS", "DOCS")),
            ("WeSTClass", lambda: WeSTClass(seed=seed), ("KEYWORDS", "DOCS")),
            ("No-global", lambda: WeSHClass(tree=tree, use_global=False,
                                            seed=seed), ("KEYWORDS", "DOCS")),
            ("No-vMF", lambda: WeSHClass(tree=tree, use_vmf=False, seed=seed),
             ("KEYWORDS", "DOCS")),
            ("No-self-train", lambda: WeSHClass(tree=tree, self_train=False,
                                                seed=seed),
             ("KEYWORDS", "DOCS")),
            ("WeSHClass", lambda: WeSHClass(tree=tree, seed=seed),
             ("KEYWORDS", "DOCS")),
        ]
        for method_name, factory, supported in methods:
            row = {"Dataset": name, "Method": method_name}
            for sup_name in ("KEYWORDS", "DOCS"):
                if sup_name not in supported:
                    row[f"{sup_name} macro"] = "-"
                    row[f"{sup_name} micro"] = "-"
                    continue
                # Hier-Dataless consumes label names; map accordingly.
                supervision = (
                    bundle.label_names()
                    if method_name == "Hier-Dataless"
                    else sups[sup_name]
                )
                metrics = _fit_flat(factory(), bundle, supervision)
                row[f"{sup_name} macro"] = metrics["macro_f1"]
                row[f"{sup_name} micro"] = metrics["micro_f1"]
            rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# T-TAXOCLASS
# ---------------------------------------------------------------------------

class _PathAsSet:
    """Adapter: a single-label hierarchical method scored as multi-label.

    The predicted leaf's ancestor closure becomes the label set; the
    ranking orders labels by predicted path probability mass.
    """

    def __init__(self, inner, dag):
        self.inner = inner
        self.dag = dag

    def fit(self, corpus, supervision):
        self.inner.fit(corpus, supervision)
        return self

    def predict(self, corpus, threshold: float = 0.5, top_k=None):
        out = []
        for label in self.inner.predict(corpus):
            out.append(tuple(sorted(self.dag.closure([label]))))
        return out

    def rank(self, corpus):
        proba = self.inner.predict_proba(corpus)
        labels = list(self.inner.label_set.labels)
        rankings = []
        for row in proba:
            mass = {l: 0.0 for l in labels}
            for j, leaf in enumerate(labels):
                for node in self.dag.closure([leaf]):
                    if node in mass:
                        mass[node] += float(row[j])
            rankings.append(sorted(mass, key=mass.get, reverse=True))
        return rankings


def taxoclass_table(seed: int = 0, fast: bool = True) -> list:
    """TaxoClass results table (Example-F1, P@1) on DAG profiles."""
    profiles = ["amazon_dag"] if fast else ["amazon_dag", "dbpedia_dag"]
    rows = []
    for name in profiles:
        bundle = load_profile(name, seed=seed)
        dag = bundle.dag
        assert dag is not None
        plm = _plm(bundle, seed)
        tree = dag_as_tree(dag)
        from repro.core.supervision import LabeledDocuments
        from repro.core.types import LabelSet

        # Leaf-label view for the single-path semi-supervised baselines.
        # Only a minority of classes get labeled documents: with 10^4-10^5
        # category taxonomies, labeling every class is exactly what the
        # TaxoClass setting rules out.
        leaf_docs: dict[str, list] = {}
        for doc in bundle.train_corpus:
            core = doc.metadata.get("core_labels", list(doc.labels))
            leaf_docs.setdefault(core[0], []).append(doc)
        covered = sorted(leaf_docs)[: max(2, int(len(leaf_docs) * 0.4))]
        few = {label: leaf_docs[label][:3] for label in covered}
        leaf_label_set = LabelSet(
            labels=tuple(sorted(few)),
            names={l: bundle.label_set.names.get(l, l) for l in few},
        )
        leaf_sup = LabeledDocuments(label_set=leaf_label_set, documents=few)

        methods = [
            ("WeSHClass",
             lambda: _PathAsSet(WeSHClass(tree=tree, seed=seed), dag), leaf_sup),
            ("SS-PCEM", lambda: _PathAsSet(PCEM(seed=seed), dag), leaf_sup),
            ("Semi-BERT", lambda: SemiBERT(plm=plm, fraction=0.3, seed=seed),
             bundle.label_names()),
            ("Hier-0Shot-TC", lambda: HierZeroShotTC(dag=dag, plm=plm,
                                                     seed=seed),
             bundle.label_names()),
            ("TaxoClass", lambda: TaxoClass(dag=dag, plm=plm, seed=seed),
             bundle.label_names()),
        ]
        for method_name, factory, supervision in methods:
            metrics = evaluate_multilabel(factory(), bundle, supervision,
                                          ks=(1,))
            rows.append(
                {
                    "Dataset": name,
                    "Method": method_name,
                    "Example-F1": metrics["example_f1"],
                    "P@1": metrics["p@1"],
                }
            )
    return rows


# ---------------------------------------------------------------------------
# T-METACAT
# ---------------------------------------------------------------------------

def metacat_tables(seed: int = 0, fast: bool = True) -> list:
    """MetaCat Tables 2+3: micro and macro F1 on the metadata profiles."""
    profiles = ["github_bio"] if fast else ["github_bio", "github_ai",
                                            "github_sec", "amazon_meta",
                                            "twitter"]
    rows = []
    for name in profiles:
        bundle = load_profile(name, seed=seed)
        plm = _plm(bundle, seed)
        docs = bundle.labeled_documents(5, seed=seed)
        # Reproduce the paper's "-" (OOM) entries: TextGCN is excluded on
        # the two largest profiles.
        textgcn_ok = name not in ("github_sec", "amazon_meta")
        methods = [
            ("CNN", lambda: FewShotCNN(seed=seed)),
            ("HAN", lambda: FewShotHAN(seed=seed)),
            ("PTE", lambda: PTE(seed=seed)),
            ("WeSTClass", lambda: WeSTClass(seed=seed)),
            ("PCEM", lambda: PCEM(seed=seed)),
            ("BERT", lambda: FewShotBERT(plm=plm, seed=seed)),
            ("ESim", lambda: ESim(seed=seed)),
            ("Metapath2vec", lambda: Metapath2Vec(seed=seed)),
            ("HIN2vec", lambda: HIN2Vec(seed=seed)),
            ("TextGCN", (lambda: TextGCN(seed=seed)) if textgcn_ok else None),
            ("MetaCat", lambda: MetaCat(seed=seed)),
        ]
        for method_name, factory in methods:
            if factory is None:
                rows.append({"Dataset": name, "Method": method_name,
                             "Micro-F1": "-", "Macro-F1": "-"})
                continue
            metrics = _fit_flat(factory(), bundle, docs)
            rows.append(
                {
                    "Dataset": name,
                    "Method": method_name,
                    "Micro-F1": metrics["micro_f1"],
                    "Macro-F1": metrics["macro_f1"],
                }
            )
    return rows


# ---------------------------------------------------------------------------
# T-MICOL
# ---------------------------------------------------------------------------

def micol_table(seed: int = 0, fast: bool = True,
                significance: bool = True) -> list:
    """MICoL results table (P@k, NDCG@k) with the MATCH crossover rows.

    With ``significance`` on, zero-shot rows whose per-document P@5 is
    significantly below the best MICoL variant (one-sided paired
    bootstrap, p < 0.01) carry the paper's ``**`` marker.
    """
    from repro.evaluation.ranking import per_example_precision_at_k
    from repro.evaluation.significance import paired_bootstrap_pvalue

    profiles = ["magcs"] if fast else ["magcs", "pubmed"]
    rows = []
    for name in profiles:
        bundle = load_profile(name, seed=seed)
        plm = _plm(bundle, seed)
        n = len(bundle.train_corpus)
        # Scaled analogs of MATCH's 10K / 50K / 100K / full training sets.
        match_sizes = [("MATCH (2%)", max(4, n // 50)),
                       ("MATCH (10%)", n // 10),
                       ("MATCH (30%)", int(n * 0.3)),
                       ("MATCH (full)", n)]
        methods = [
            ("Doc2Vec", lambda: Doc2VecRanker(seed=seed)),
            ("SciBERT", lambda: _StaticConceptRanker(seed=seed)),
            ("ZeroShot-Entail",
             lambda: ZeroShotEntailRanker(plm=plm, seed=seed)),
            ("SPECTER", lambda: MICoL(plm=plm, fine_tune=False, seed=seed)),
            ("EDA", lambda: EDAContrastive(plm=plm, seed=seed)),
            ("UDA", lambda: UDAContrastive(plm=plm, seed=seed)),
            ("MICoL (Bi, P->P<-P)",
             lambda: MICoL(plm=plm, encoder="bi", metapath=P_REF_P, seed=seed)),
            ("MICoL (Bi, P<-(PP)->P)",
             lambda: MICoL(plm=plm, encoder="bi", metapath=P_COCITED_P,
                           seed=seed)),
            ("MICoL (Cross, P->P<-P)",
             lambda: MICoL(plm=plm, encoder="cross", metapath=P_REF_P,
                           seed=seed)),
            ("MICoL (Cross, P<-(PP)->P)",
             lambda: MICoL(plm=plm, encoder="cross", metapath=P_COCITED_P,
                           seed=seed)),
        ] + [
            (label, (lambda size=size: MATCH(plm=plm, n_train_examples=size,
                                             seed=seed)))
            for label, size in match_sizes
        ]
        gold = [set(d.labels) for d in bundle.test_corpus]
        profile_rows = []
        per_method_scores: dict[str, np.ndarray] = {}
        for method_name, factory in methods:
            classifier = factory()
            metrics = evaluate_multilabel(classifier, bundle,
                                          bundle.label_names(), ks=(1, 3, 5))
            per_method_scores[method_name] = per_example_precision_at_k(
                gold, classifier.rank(bundle.test_corpus), 5
            )
            profile_rows.append(
                {
                    "Dataset": name,
                    "Method": method_name,
                    "P@1": metrics["p@1"],
                    "P@3": metrics["p@3"],
                    "P@5": metrics["p@5"],
                    "NDCG@3": metrics["ndcg@3"],
                    "NDCG@5": metrics["ndcg@5"],
                }
            )
        if significance:
            # The paper's ** markers: significantly below the best MICoL
            # variant under a paired bootstrap on per-document P@5.
            micol_names = [n for n in per_method_scores if n.startswith("MICoL")]
            best_micol = max(micol_names,
                             key=lambda n: per_method_scores[n].mean())
            reference = per_method_scores[best_micol]
            for row in profile_rows:
                method_name = row["Method"]
                if method_name.startswith(("MICoL", "MATCH")):
                    row["sig"] = ""
                    continue
                p_value = paired_bootstrap_pvalue(
                    reference, per_method_scores[method_name], seed=seed
                )
                row["sig"] = "**" if p_value < 0.01 else (
                    "*" if p_value < 0.05 else ""
                )
        rows.extend(profile_rows)
    return rows


class _StaticConceptRanker(_MLBase):
    """Label ranking by cosine in the external (never target-adapted)
    concept space — the un-fine-tuned generic-encoder ("SciBERT") row."""

    def __init__(self, dim: int = 48, seed=0):
        super().__init__(seed=seed)
        self.dim = dim
        self.space = None
        self._label_matrix = None

    def _fit(self, corpus, supervision) -> None:
        _require(supervision, _LabelNames)
        from repro.baselines.dataless import _general_space
        from repro.nn.functional import l2_normalize
        from repro.text.tokenizer import tokenize

        assert self.label_set is not None
        self.space = _general_space(self.dim, seed=0)
        rows = []
        for label in self.label_set:
            tokens = list(self.label_set.name_tokens(label))
            tokens += tokenize(self.label_set.description_of(label))
            rows.append(np.mean([self.space.vector(t) for t in tokens], axis=0))
        self._label_matrix = l2_normalize(np.stack(rows))

    def _score(self, corpus) -> np.ndarray:
        from repro.embeddings.doc import doc_embeddings

        docs = doc_embeddings(corpus.token_lists(), self.space)
        return docs @ self._label_matrix.T


# ---------------------------------------------------------------------------
# T-SUMMARY
# ---------------------------------------------------------------------------

def summary_table() -> list:
    """The tutorial's closing capability matrix, generated from the
    method registry."""
    return summary_rows()
