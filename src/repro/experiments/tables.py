"""One function per paper table; each returns printable row dicts.

Every function takes ``seed`` (dataset + method seeding) and ``fast``
(True = fewer datasets / lighter methods; the default used by the bench
suite so a full run stays CPU-friendly), plus the engine knobs ``jobs``,
``use_cache`` and ``timeout`` (see :mod:`repro.experiments.engine`).
Absolute numbers are not expected to match the paper — the *orderings*
asserted in the benches are.

Tables are expressed as :class:`~repro.experiments.engine.RowSpec` lists:
a module-level runner function plus plain-data kwargs per row, never
closures over live PLM/bundle objects, so rows pickle cleanly into spawn
workers and key the memo store. Runners rebuild bundles and PLMs from
``(profile, table_seed)``; in-process caches (``load_profile`` results
here, pre-trained models in ``repro.plm.provider``) make that free after
the first row a process executes.

Every runner receives the engine's derived per-row seed (it keys the
memo store and is the seed for any row-local randomness a runner
introduces), but the experiment definitions — datasets, supervision,
and method construction — are seeded with the *table* seed, exactly as
the serial harness always did. Each row's inputs are pure spec data
either way, so numbers are independent of execution order, and the
regenerated tables match the pre-engine serial output bit for bit.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.baselines import (
    PCEM,
    PTE,
    UNEC,
    BertSimpleMatch,
    ClassKG,
    Dataless,
    Doc2Cube,
    Doc2VecRanker,
    EDAContrastive,
    ESim,
    HierDataless,
    HierSVM,
    HierZeroShotTC,
    HIN2Vec,
    IRWithTfidf,
    MATCH,
    Metapath2Vec,
    PLSATopicModel,
    SemiBERT,
    SupervisedBERT,
    SupervisedCharCNN,
    SupervisedCNN,
    SupervisedHAN,
    TextGCN,
    UDAContrastive,
    UDASemiSupervised,
    ZeroShotEntail,
    ZeroShotEntailRanker,
)
from repro.baselines.fewshot import FewShotBERT, FewShotCNN, FewShotHAN
from repro.baselines.word2vec_match import Word2VecMatch
from repro.core.base import MultiLabelTextClassifier as _MLBase
from repro.core.registry import summary_rows
from repro.core.supervision import LabelNames as _LabelNames
from repro.core.supervision import require as _require
from repro.datasets import load_profile
from repro.evaluation.metrics import macro_f1, micro_f1
from repro.experiments.dag import DagNode, TableRequest, scope_for
from repro.experiments.engine import (
    SKIP_ROW,
    RowSpec,
    derive_row_seed,
    run_specs,
)
from repro.experiments.scheduler import run_requests
from repro.experiments.runner import (
    evaluate_flat,
    evaluate_multilabel,
    gold_single,
)
from repro.experiments.views import coarse_view, dag_as_tree
from repro.hin.metapath import P_COCITED_P, P_REF_P
from repro.methods import (
    ConWea,
    Futex,
    LOTClass,
    MetaCat,
    MICoL,
    PromptClass,
    TaxoClass,
    WeSHClass,
    WeSTClass,
    XClass,
)
from repro.plm.provider import get_pretrained_lm
from repro.taxogen import (
    EdgeScorer,
    TaxonomyRepairer,
    edge_recovery,
    perturb_dag,
)


def _plm(bundle, seed: int):
    return get_pretrained_lm(target_corpus=bundle.train_corpus, seed=seed % 7)


def _fit_flat(classifier, bundle, supervision) -> dict:
    return evaluate_flat(classifier, bundle, supervision)


@lru_cache(maxsize=None)
def _bundle(profile: str, seed: int):
    """Per-process bundle cache: rows re-derive rather than pickle bundles."""
    return load_profile(profile, seed=seed)


@lru_cache(maxsize=None)
def _view(profile: str, seed: int, view: str):
    """``view`` is ``"fine"`` (as generated) or ``"coarse"`` (level-1)."""
    bundle = _bundle(profile, seed)
    return coarse_view(bundle) if view == "coarse" else bundle


def _make(entry: tuple, seed: int, **inject):
    """Construct a method from a ``(cls, kwargs, needs)`` table entry.

    ``needs`` names lazily-built dependencies (``plm``, ``tree``, ...);
    the matching ``inject`` thunk is only called when required, so e.g.
    a non-PLM row in a worker never pays PLM pre-training.
    """
    cls, kwargs, needs = entry
    kwargs = dict(kwargs)
    for name in needs:
        kwargs[name] = inject[name]()
    return cls(seed=seed, **kwargs)


def _specs(table: str, seed: int, fast: bool, items: list) -> list:
    """RowSpecs for ``(name, runner, kwargs, static, dataset)`` tuples.

    Compatibility shim: tables now compile through :func:`_table_request`
    into the artifact DAG; this path remains for ad-hoc row lists.
    """
    return [
        RowSpec(table=table, name=name, runner=runner, kwargs=kwargs,
                static=static, dataset=dataset, fast=fast)
        for name, runner, kwargs, static, dataset in items
    ]


# ---------------------------------------------------------------------------
# DAG compilation (see repro.experiments.dag / .scheduler)
# ---------------------------------------------------------------------------

def _corpus_node(node_seed: int, profile: str, table_seed: int) -> dict:
    """Build (and per-process cache) a dataset bundle; returns its shape.

    The artifact is the build itself — rows re-derive bundles from
    ``(profile, table_seed)`` in whatever process they land in, so this
    node carries only a fingerprint, not the bundle.
    """
    bundle = _bundle(profile, table_seed)
    return {"train_docs": len(bundle.train_corpus),
            "test_docs": len(bundle.test_corpus)}


def _encode_view(profile: str, seed: int, view: str):
    """Bundle whose train corpus seeds the PLM: ``plain`` (as generated)
    or ``auto`` (coarse level-1 when the profile has a tree)."""
    return (_xclass_bundle(profile, seed) if view == "auto"
            else _bundle(profile, seed))


def _encode_node(node_seed: int, profile: str, view: str,
                 table_seed: int) -> dict:
    """Pre-train the profile's PLM and stream every document through it.

    Materializes per-document hidden states into the shared
    :class:`~repro.core.enc_cache.EncodeCache` disk tier, so every row
    node downstream — in any worker process, for any table — encodes
    against warm shards instead of re-running the forward pass.
    """
    bundle = _encode_view(profile, table_seed, view)
    plm = _plm(bundle, table_seed)
    docs = (list(bundle.train_corpus.token_lists())
            + list(bundle.test_corpus.token_lists()))
    for start in range(0, len(docs), 64):  # bounded-memory streaming
        plm.encode_tokens(docs[start:start + 64])
    if plm.enc_cache is not None:
        plm.enc_cache.flush_shards()
    return {"docs_encoded": len(docs),
            "namespace": plm.cache_namespace if plm.enc_cache else ""}


def _table_request(table: str, seed: int, items: list,
                   post=None) -> TableRequest:
    """Compile row declarations into a :class:`TableRequest`.

    ``items`` are ``(row, runner, kwargs, static, profile, view,
    needs_plm, scope)`` tuples. Each row gets a ``corpus:`` dependency
    and — when the method consumes the PLM — an ``encode:`` dependency;
    corpus and encode nodes are declared once per ``(profile, view)``
    here and dedup *across* tables when requests merge into one graph.
    Row node seeds are :func:`derive_row_seed` of the table seed and
    the row name — the identical seed the RowSpec shim derives, which
    is what makes DAG output bit-identical to the legacy serial path.
    A ``runner=None`` item is a static row, emitted as-is.
    """
    nodes: "list[DagNode]" = []
    declared: "set[str]" = set()
    row_names: "list[str]" = []

    def declare(node: DagNode) -> str:
        if node.name not in declared:
            declared.add(node.name)
            nodes.append(node)
        return node.name

    for row, runner, kwargs, static, profile, view, needs_plm, scope in items:
        name = f"{table}.{row}"
        row_names.append(name)
        if runner is None:
            declare(DagNode(kind="row", name=name, static=static,
                            table=table, row=row))
            continue
        corpus = declare(DagNode(
            kind="corpus", name=f"corpus:{profile}@{seed}",
            runner=_corpus_node,
            kwargs={"profile": profile, "table_seed": seed},
            seed=derive_row_seed(seed, f"corpus:{profile}"),
        ))
        deps = [corpus]
        if needs_plm:
            deps.append(declare(DagNode(
                kind="encode", name=f"encode:{profile}@{seed}/{view}",
                runner=_encode_node,
                kwargs={"profile": profile, "view": view,
                        "table_seed": seed},
                deps=(corpus,),
                seed=derive_row_seed(seed, f"encode:{profile}/{view}"),
            )))
        declare(DagNode(kind="row", name=name, runner=runner, kwargs=kwargs,
                        deps=tuple(deps), scope=tuple(scope), table=table,
                        row=row, static=static,
                        seed=derive_row_seed(seed, row)))
    return TableRequest(table=table, nodes=nodes, row_names=row_names,
                        post=post)


def _run_table(request: TableRequest, *, jobs, use_cache, timeout,
               select=None, cache_dir=None) -> list:
    """Run one compiled table through the scheduler; returns its rows."""
    return run_requests([request], jobs=jobs, use_cache=use_cache,
                        timeout=timeout, cache_dir=cache_dir,
                        select=select)[request.table]


# ---------------------------------------------------------------------------
# T-WESTCLASS
# ---------------------------------------------------------------------------

_WESTCLASS_METHODS = {
    "IR with tf-idf": (IRWithTfidf, {}, (), ("LABELS", "KEYWORDS", "DOCS")),
    "Topic Model": (PLSATopicModel, {}, (), ("LABELS", "KEYWORDS")),
    "Dataless": (Dataless, {}, (), ("LABELS",)),
    "UNEC": (UNEC, {}, (), ("LABELS",)),
    "PTE": (PTE, {}, (), ("DOCS",)),
    "NoST-CNN": (WeSTClass, {"classifier": "cnn", "self_train": False}, (),
                 ("LABELS", "KEYWORDS", "DOCS")),
    "NoST-HAN": (WeSTClass, {"classifier": "han", "self_train": False}, (),
                 ("LABELS", "KEYWORDS", "DOCS")),
    "WeSTClass-HAN": (WeSTClass, {"classifier": "han"}, (),
                      ("LABELS", "KEYWORDS", "DOCS")),
    "WeSTClass-CNN": (WeSTClass, {"classifier": "cnn"}, (),
                      ("LABELS", "KEYWORDS", "DOCS")),
}


def _westclass_row(row_seed: int, profile: str, method: str,
                   table_seed: int) -> dict:
    bundle = _bundle(profile, table_seed)
    cls, kwargs, needs, supported = _WESTCLASS_METHODS[method]
    sups = {
        "LABELS": bundle.label_names(),
        "KEYWORDS": bundle.keywords(),
        "DOCS": bundle.labeled_documents(5, seed=table_seed),
    }
    row: dict = {}
    for sup_name in ("LABELS", "KEYWORDS", "DOCS"):
        if sup_name not in supported:
            row[f"{sup_name} macro"] = "-"
            row[f"{sup_name} micro"] = "-"
            continue
        metrics = _fit_flat(_make((cls, kwargs, needs), table_seed), bundle,
                            sups[sup_name])
        row[f"{sup_name} macro"] = metrics["macro_f1"]
        row[f"{sup_name} micro"] = metrics["micro_f1"]
    return row


def westclass_request(seed: int = 0, fast: bool = True) -> TableRequest:
    """Compiled WeSTClass pipeline: 3 corpora x 3 supervision types."""
    datasets = ["agnews"] if fast else ["nyt_small", "agnews", "yelp"]
    return _table_request("westclass", seed, [
        (f"{name}/{method}", _westclass_row,
         {"profile": name, "method": method, "table_seed": seed},
         {"Dataset": name, "Method": method}, name, "plain", False,
         scope_for(_WESTCLASS_METHODS[method][0]))
        for name in datasets for method in _WESTCLASS_METHODS
    ])


def westclass_table(seed: int = 0, fast: bool = True, *,
                    jobs: "int | None" = None,
                    use_cache: "bool | None" = None,
                    timeout: "float | None" = None,
                    select=None, cache_dir=None) -> list:
    """WeSTClass results table: 3 corpora x 3 supervision types."""
    return _run_table(westclass_request(seed, fast), jobs=jobs,
                      use_cache=use_cache, timeout=timeout, select=select,
                      cache_dir=cache_dir)


# ---------------------------------------------------------------------------
# T-CONWEA
# ---------------------------------------------------------------------------

_CONWEA_METHODS = {
    "IR-TF-IDF": (IRWithTfidf, {}, ()),
    "Dataless": (Dataless, {}, ()),
    "Word2Vec": (Word2VecMatch, {}, ()),
    "Doc2Cube": (Doc2Cube, {}, ()),
    "WeSTClass": (WeSTClass, {}, ()),
    "ConWea": (ConWea, {}, ("plm",)),
    "ConWea-NoCon": (ConWea, {"contextualize": False}, ("plm",)),
    "ConWea-NoExpan": (ConWea, {"expand": False}, ("plm",)),
    "ConWea-WSD": (ConWea, {"wsd_mode": True}, ("plm",)),
    "HAN-Supervised": (SupervisedHAN, {}, ()),
}


def _conwea_row(row_seed: int, profile: str, view: str, method: str,
                table_seed: int) -> dict:
    bundle = _view(profile, table_seed, view)
    # One PLM per corpus (fine and coarse views share the text).
    classifier = _make(_CONWEA_METHODS[method], table_seed,
                       plm=lambda: _plm(_bundle(profile, table_seed),
                                        table_seed))
    supervision = (
        bundle.label_names() if method == "Dataless" else bundle.keywords()
    )
    metrics = _fit_flat(classifier, bundle, supervision)
    return {"Micro-F1": metrics["micro_f1"], "Macro-F1": metrics["macro_f1"]}


def conwea_request(seed: int = 0, fast: bool = True) -> TableRequest:
    """Compiled ConWea pipeline: coarse/fine views + ablations.

    Both views fit against the *base* bundle's PLM (the views share the
    text), so every row of a profile hangs off one ``plain`` encode node.
    """
    profiles = ["nyt_fine"] if fast else ["nyt_fine", "twenty_news"]
    items = []
    for name in profiles:
        for view in ("coarse", "fine"):
            for method in _CONWEA_METHODS:
                cls, _, needs = _CONWEA_METHODS[method]
                items.append((
                    f"{name}-{view}/{method}", _conwea_row,
                    {"profile": name, "view": view, "method": method,
                     "table_seed": seed},
                    {"View": f"{name}-{view}", "Method": method},
                    name, "plain", "plm" in needs, scope_for(cls),
                ))
    return _table_request("conwea", seed, items)


def conwea_table(seed: int = 0, fast: bool = True, *,
                 jobs: "int | None" = None,
                 use_cache: "bool | None" = None,
                 timeout: "float | None" = None,
                 select=None, cache_dir=None) -> list:
    """ConWea results: coarse/fine views of two tree corpora + ablations."""
    return _run_table(conwea_request(seed, fast), jobs=jobs,
                      use_cache=use_cache, timeout=timeout, select=select,
                      cache_dir=cache_dir)


# ---------------------------------------------------------------------------
# T-LOTCLASS-1 (the MLM replacement-prediction demonstration)
# ---------------------------------------------------------------------------

def _lotclass_prediction_row(row_seed: int, theme: str, word: str,
                             table_seed: int) -> dict:
    bundle = _bundle("agnews", table_seed)
    plm = _plm(bundle, table_seed)
    context = None
    for doc in bundle.train_corpus:
        if doc.labels[0] == theme and word in doc.tokens[:24]:
            context = doc.tokens[:28]
            break
    if context is None:
        return dict(SKIP_ROW)
    position = context.index(word)
    predictions = [w for w, _ in plm.predict_masked(context, position,
                                                    top_k=10)]
    return {
        "Context topic": theme,
        "Sentence (prefix)": " ".join(context[:12]) + " ...",
        "Predictions": ", ".join(predictions),
    }


def lotclass_prediction_request(seed: int = 0, fast: bool = True,
                                word: str = "goal",
                                themes: tuple = ("sports", "business"),
                                ) -> TableRequest:
    """Compiled Table-1 pipeline (``fast`` accepted for registry
    uniformity; the demonstration has no full variant)."""
    return _table_request("lotclass-predictions", seed, [
        (f"agnews/{theme}/{word}", _lotclass_prediction_row,
         {"theme": theme, "word": word, "table_seed": seed},
         {}, "agnews", "plain", True, ())
        for theme in themes
    ])


def lotclass_prediction_rows(seed: int = 0, word: str = "goal",
                             themes: tuple = ("sports", "business"), *,
                             jobs: "int | None" = None,
                             use_cache: "bool | None" = None,
                             timeout: "float | None" = None,
                             select=None, cache_dir=None) -> list:
    """Paper Table 1 analog: MLM predictions for one surface form in two
    different topical contexts."""
    return _run_table(lotclass_prediction_request(seed, word=word,
                                                  themes=themes),
                      jobs=jobs, use_cache=use_cache, timeout=timeout,
                      select=select, cache_dir=cache_dir)


# ---------------------------------------------------------------------------
# T-LOTCLASS-2
# ---------------------------------------------------------------------------

_LOTCLASS_METHODS = {
    "Dataless": (Dataless, {}, (), "names"),
    "WeSTClass": (WeSTClass, {}, (), "names"),
    "BERT w. simple match": (BertSimpleMatch, {}, ("plm",), "names"),
    "Ours w/o. self train": (LOTClass, {"self_train": False}, ("plm",),
                             "names"),
    "Ours": (LOTClass, {}, ("plm",), "names"),
    "UDA (semi-sup.)": (UDASemiSupervised, {}, ("plm",), "docs"),
    "char-CNN (supervised)": (SupervisedCharCNN, {"epochs": 6}, (), "names"),
    "BERT (supervised)": (SupervisedBERT, {}, ("plm",), "names"),
}


def _lotclass_row(row_seed: int, profile: str, method: str,
                  table_seed: int) -> dict:
    bundle = _bundle(profile, table_seed)
    cls, kwargs, needs, sup_kind = _LOTCLASS_METHODS[method]
    classifier = _make((cls, kwargs, needs), table_seed,
                       plm=lambda: _plm(bundle, table_seed))
    supervision = (bundle.label_names() if sup_kind == "names"
                   else bundle.labeled_documents(8, seed=table_seed))
    metrics = _fit_flat(classifier, bundle, supervision)
    return {"Accuracy": metrics["micro_f1"]}


def lotclass_request(seed: int = 0, fast: bool = True) -> TableRequest:
    """Compiled LOTClass pipeline."""
    datasets = ["agnews"] if fast else ["agnews", "dbpedia", "imdb",
                                       "amazon_polarity"]
    return _table_request("lotclass", seed, [
        (f"{name}/{method}", _lotclass_row,
         {"profile": name, "method": method, "table_seed": seed},
         {"Dataset": name, "Method": method}, name, "plain",
         "plm" in _LOTCLASS_METHODS[method][2],
         scope_for(_LOTCLASS_METHODS[method][0]))
        for name in datasets for method in _LOTCLASS_METHODS
    ])


def lotclass_table(seed: int = 0, fast: bool = True, *,
                   jobs: "int | None" = None,
                   use_cache: "bool | None" = None,
                   timeout: "float | None" = None,
                   select=None, cache_dir=None) -> list:
    """LOTClass results table (accuracy, label names only)."""
    return _run_table(lotclass_request(seed, fast), jobs=jobs,
                      use_cache=use_cache, timeout=timeout, select=select,
                      cache_dir=cache_dir)


# ---------------------------------------------------------------------------
# T-XCLASS-DATA / T-XCLASS
# ---------------------------------------------------------------------------

XCLASS_PROFILES_FAST = ["agnews", "nyt_small", "yelp"]
XCLASS_PROFILES_FULL = ["agnews", "twenty_news", "nyt_small", "nyt_topic",
                        "nyt_location", "yelp", "dbpedia"]


@lru_cache(maxsize=None)
def _xclass_bundle(name: str, seed: int):
    bundle = _bundle(name, seed)
    if bundle.tree is not None:
        bundle = coarse_view(bundle)
    return bundle


def _xclass_stats_row(row_seed: int, profile: str, table_seed: int) -> dict:
    return _xclass_bundle(profile, table_seed).stats()


def xclass_dataset_request(seed: int = 0, fast: bool = True) -> TableRequest:
    """Compiled X-Class dataset-statistics pipeline."""
    names = XCLASS_PROFILES_FAST if fast else XCLASS_PROFILES_FULL
    return _table_request("xclass-data", seed, [
        (f"{name}/stats", _xclass_stats_row,
         {"profile": name, "table_seed": seed}, {}, name, "plain", False, ())
        for name in names
    ])


def xclass_dataset_table(seed: int = 0, fast: bool = True, *,
                         jobs: "int | None" = None,
                         use_cache: "bool | None" = None,
                         timeout: "float | None" = None,
                         select=None, cache_dir=None) -> list:
    """X-Class dataset-statistics table."""
    return _run_table(xclass_dataset_request(seed, fast), jobs=jobs,
                      use_cache=use_cache, timeout=timeout, select=select,
                      cache_dir=cache_dir)


_XCLASS_METHODS = {
    "Supervised": (SupervisedBERT, {}, ("plm",)),
    "WeSTClass": (WeSTClass, {}, ()),
    "ConWea": (ConWea, {}, ("plm",)),
    "LOTClass": (LOTClass, {}, ("plm",)),
    "X-Class": (XClass, {}, ("plm",)),
    "X-Class-Rep": (XClass, {"variant": "rep"}, ("plm",)),
    "X-Class-Align": (XClass, {"variant": "align"}, ("plm",)),
}


def _xclass_row(row_seed: int, profile: str, method: str,
                table_seed: int) -> dict:
    bundle = _xclass_bundle(profile, table_seed)
    classifier = _make(_XCLASS_METHODS[method], table_seed,
                       plm=lambda: _plm(bundle, table_seed))
    supervision = (
        bundle.keywords() if method == "ConWea" else bundle.label_names()
    )
    metrics = _fit_flat(classifier, bundle, supervision)
    return {"Micro-F1": metrics["micro_f1"], "Macro-F1": metrics["macro_f1"]}


def xclass_request(seed: int = 0, fast: bool = True) -> TableRequest:
    """Compiled X-Class pipeline (rows fit on the ``auto`` view)."""
    names = XCLASS_PROFILES_FAST if fast else XCLASS_PROFILES_FULL
    return _table_request("xclass", seed, [
        (f"{name}/{method}", _xclass_row,
         {"profile": name, "method": method, "table_seed": seed},
         {"Dataset": name, "Method": method}, name, "auto",
         "plm" in _XCLASS_METHODS[method][2],
         scope_for(_XCLASS_METHODS[method][0]))
        for name in names for method in _XCLASS_METHODS
    ])


def xclass_table(seed: int = 0, fast: bool = True, *,
                 jobs: "int | None" = None,
                 use_cache: "bool | None" = None,
                 timeout: "float | None" = None,
                 select=None, cache_dir=None) -> list:
    """X-Class results table (micro/macro F1, label names only)."""
    return _run_table(xclass_request(seed, fast), jobs=jobs,
                      use_cache=use_cache, timeout=timeout, select=select,
                      cache_dir=cache_dir)


# ---------------------------------------------------------------------------
# T-PROMPT
# ---------------------------------------------------------------------------

_PROMPTCLASS_METHODS = {
    "WeSTClass": (WeSTClass, {}, (), "names"),
    "ConWea": (ConWea, {}, ("plm",), "keywords"),
    "LOTClass": (LOTClass, {}, ("plm",), "names"),
    "XClass": (XClass, {}, ("plm",), "names"),
    "ClassKG": (ClassKG, {}, (), "keywords"),
    "RoBERTa (0-shot)": (PromptClass, {"prompt_backend": "mlm",
                                       "zero_shot_only": True},
                         ("plm",), "names"),
    "ELECTRA (0-shot)": (PromptClass, {"prompt_backend": "electra",
                                       "zero_shot_only": True},
                         ("plm",), "names"),
    "PromptClass ELECTRA+BERT": (PromptClass, {"prompt_backend": "electra",
                                               "head_backend": "bert"},
                                 ("plm",), "names"),
    "PromptClass RoBERTa+RoBERTa": (PromptClass, {"prompt_backend": "mlm",
                                                  "head_backend": "roberta"},
                                    ("plm",), "names"),
    "PromptClass ELECTRA+ELECTRA": (PromptClass,
                                    {"prompt_backend": "electra",
                                     "head_backend": "electra", "blend": 0.4},
                                    ("plm",), "names"),
    "Fully Supervised": (SupervisedBERT, {}, ("plm",), "names"),
}


@lru_cache(maxsize=None)
def _coarse_if_tree(profile: str, seed: int):
    bundle = _bundle(profile, seed)
    if bundle.tree is not None:
        bundle = coarse_view(bundle)
    return bundle


def _promptclass_row(row_seed: int, profile: str, method: str,
                     table_seed: int) -> dict:
    bundle = _coarse_if_tree(profile, table_seed)
    cls, kwargs, needs, sup_kind = _PROMPTCLASS_METHODS[method]
    classifier = _make((cls, kwargs, needs), table_seed,
                       plm=lambda: _plm(bundle, table_seed))
    supervision = (bundle.keywords() if sup_kind == "keywords"
                   else bundle.label_names())
    metrics = _fit_flat(classifier, bundle, supervision)
    return {"Micro-F1": metrics["micro_f1"], "Macro-F1": metrics["macro_f1"]}


def promptclass_request(seed: int = 0, fast: bool = True) -> TableRequest:
    """Compiled PromptClass pipeline (rows fit on the ``auto`` view)."""
    datasets = ["agnews"] if fast else ["agnews", "twenty_news", "yelp",
                                       "imdb"]
    return _table_request("promptclass", seed, [
        (f"{name}/{method}", _promptclass_row,
         {"profile": name, "method": method, "table_seed": seed},
         {"Dataset": name, "Method": method}, name, "auto",
         "plm" in _PROMPTCLASS_METHODS[method][2],
         scope_for(_PROMPTCLASS_METHODS[method][0]))
        for name in datasets for method in _PROMPTCLASS_METHODS
    ])


def promptclass_table(seed: int = 0, fast: bool = True, *,
                      jobs: "int | None" = None,
                      use_cache: "bool | None" = None,
                      timeout: "float | None" = None,
                      select=None, cache_dir=None) -> list:
    """PromptClass results table (micro/macro F1, label names only)."""
    return _run_table(promptclass_request(seed, fast), jobs=jobs,
                      use_cache=use_cache, timeout=timeout, select=select,
                      cache_dir=cache_dir)


# ---------------------------------------------------------------------------
# T-WESHCLASS
# ---------------------------------------------------------------------------

_WESHCLASS_METHODS = {
    "Hier-Dataless": (HierDataless, {}, ("tree", "concept_themes"),
                      ("KEYWORDS",)),
    "Hier-SVM": (HierSVM, {}, ("tree",), ("DOCS",)),
    "CNN": (WeSTClass, {"self_train": False}, (), ("KEYWORDS", "DOCS")),
    "WeSTClass": (WeSTClass, {}, (), ("KEYWORDS", "DOCS")),
    "No-global": (WeSHClass, {"use_global": False}, ("tree",),
                  ("KEYWORDS", "DOCS")),
    "No-vMF": (WeSHClass, {"use_vmf": False}, ("tree",),
               ("KEYWORDS", "DOCS")),
    "No-self-train": (WeSHClass, {"self_train": False}, ("tree",),
                      ("KEYWORDS", "DOCS")),
    "WeSHClass": (WeSHClass, {}, ("tree",), ("KEYWORDS", "DOCS")),
}


def _weshclass_row(row_seed: int, profile: str, method: str,
                   table_seed: int) -> dict:
    bundle = _bundle(profile, table_seed)
    tree = bundle.tree
    assert tree is not None
    cls, kwargs, needs, supported = _WESHCLASS_METHODS[method]
    sups = {
        "KEYWORDS": bundle.keywords(),
        "DOCS": bundle.labeled_documents(3, seed=table_seed),
    }
    row: dict = {}
    for sup_name in ("KEYWORDS", "DOCS"):
        if sup_name not in supported:
            row[f"{sup_name} macro"] = "-"
            row[f"{sup_name} micro"] = "-"
            continue
        classifier = _make(
            (cls, kwargs, needs), table_seed, tree=lambda: tree,
            concept_themes=lambda: tuple(c.theme
                                         for c in bundle.profile.classes),
        )
        # Hier-Dataless consumes label names; map accordingly.
        supervision = (
            bundle.label_names() if method == "Hier-Dataless"
            else sups[sup_name]
        )
        metrics = _fit_flat(classifier, bundle, supervision)
        row[f"{sup_name} macro"] = metrics["macro_f1"]
        row[f"{sup_name} micro"] = metrics["micro_f1"]
    return row


def weshclass_request(seed: int = 0, fast: bool = True) -> TableRequest:
    """Compiled WeSHClass pipeline (no PLM rows; corpus nodes only)."""
    profiles = ["arxiv_tree"] if fast else ["nyt_fine", "arxiv_tree",
                                            "yelp_tree"]
    return _table_request("weshclass", seed, [
        (f"{name}/{method}", _weshclass_row,
         {"profile": name, "method": method, "table_seed": seed},
         {"Dataset": name, "Method": method}, name, "plain", False,
         scope_for(_WESHCLASS_METHODS[method][0]))
        for name in profiles for method in _WESHCLASS_METHODS
    ])


def weshclass_table(seed: int = 0, fast: bool = True, *,
                    jobs: "int | None" = None,
                    use_cache: "bool | None" = None,
                    timeout: "float | None" = None,
                    select=None, cache_dir=None) -> list:
    """WeSHClass results table: trees x {KEYWORDS, DOCS} + ablations."""
    return _run_table(weshclass_request(seed, fast), jobs=jobs,
                      use_cache=use_cache, timeout=timeout, select=select,
                      cache_dir=cache_dir)


# ---------------------------------------------------------------------------
# T-TAXOCLASS
# ---------------------------------------------------------------------------

class _PathAsSet:
    """Adapter: a single-label hierarchical method scored as multi-label.

    The predicted leaf's ancestor closure becomes the label set; the
    ranking orders labels by predicted path probability mass.
    """

    def __init__(self, inner, dag):
        self.inner = inner
        self.dag = dag

    def fit(self, corpus, supervision):
        self.inner.fit(corpus, supervision)
        return self

    def predict(self, corpus, threshold: float = 0.5, top_k=None):
        out = []
        for label in self.inner.predict(corpus):
            out.append(tuple(sorted(self.dag.closure([label]))))
        return out

    def rank(self, corpus):
        proba = self.inner.predict_proba(corpus)
        labels = list(self.inner.label_set.labels)
        rankings = []
        for row in proba:
            mass = {l: 0.0 for l in labels}
            for j, leaf in enumerate(labels):
                for node in self.dag.closure([leaf]):
                    if node in mass:
                        mass[node] += float(row[j])
            rankings.append(sorted(mass, key=mass.get, reverse=True))
        return rankings


def _taxoclass_leaf_supervision(bundle):
    """Leaf-label view for the single-path semi-supervised baselines.

    Only a minority of classes get labeled documents: with 10^4-10^5
    category taxonomies, labeling every class is exactly what the
    TaxoClass setting rules out.
    """
    from repro.core.supervision import LabeledDocuments
    from repro.core.types import LabelSet

    leaf_docs: "dict[str, list]" = {}
    for doc in bundle.train_corpus:
        core = doc.metadata.get("core_labels", list(doc.labels))
        leaf_docs.setdefault(core[0], []).append(doc)
    covered = sorted(leaf_docs)[: max(2, int(len(leaf_docs) * 0.4))]
    few = {label: leaf_docs[label][:3] for label in covered}
    leaf_label_set = LabelSet(
        labels=tuple(sorted(few)),
        names={l: bundle.label_set.names.get(l, l) for l in few},
    )
    return LabeledDocuments(label_set=leaf_label_set, documents=few)


def _taxoclass_row(row_seed: int, profile: str, method: str,
                   table_seed: int) -> dict:
    bundle = _bundle(profile, table_seed)
    dag = bundle.dag
    assert dag is not None
    if method == "WeSHClass":
        classifier = _PathAsSet(WeSHClass(tree=dag_as_tree(dag),
                                          seed=table_seed), dag)
        supervision = _taxoclass_leaf_supervision(bundle)
    elif method == "SS-PCEM":
        classifier = _PathAsSet(PCEM(seed=table_seed), dag)
        supervision = _taxoclass_leaf_supervision(bundle)
    elif method == "Semi-BERT":
        classifier = SemiBERT(plm=_plm(bundle, table_seed), fraction=0.3,
                              seed=table_seed)
        supervision = bundle.label_names()
    elif method == "Hier-0Shot-TC":
        classifier = HierZeroShotTC(dag=dag, plm=_plm(bundle, table_seed),
                                    seed=table_seed)
        supervision = bundle.label_names()
    else:  # TaxoClass
        classifier = TaxoClass(dag=dag, plm=_plm(bundle, table_seed),
                               seed=table_seed)
        supervision = bundle.label_names()
    metrics = evaluate_multilabel(classifier, bundle, supervision, ks=(1,))
    return {"Example-F1": metrics["example_f1"], "P@1": metrics["p@1"]}


_TAXOCLASS_METHODS = ("WeSHClass", "SS-PCEM", "Semi-BERT", "Hier-0Shot-TC",
                      "TaxoClass")

# The taxoclass runner branches instead of reading a method dict, so its
# compile-time facts (PLM consumption, method-unit scope) live here.
_TAXOCLASS_PLM = ("Semi-BERT", "Hier-0Shot-TC", "TaxoClass")
_TAXOCLASS_SCOPE = {
    "WeSHClass": scope_for(WeSHClass),
    "SS-PCEM": scope_for(PCEM),
    "Semi-BERT": scope_for(SemiBERT),
    "Hier-0Shot-TC": scope_for(HierZeroShotTC),
    "TaxoClass": scope_for(TaxoClass),
}


def taxoclass_request(seed: int = 0, fast: bool = True) -> TableRequest:
    """Compiled TaxoClass pipeline."""
    profiles = ["amazon_dag"] if fast else ["amazon_dag", "dbpedia_dag"]
    return _table_request("taxoclass", seed, [
        (f"{name}/{method}", _taxoclass_row,
         {"profile": name, "method": method, "table_seed": seed},
         {"Dataset": name, "Method": method}, name, "plain",
         method in _TAXOCLASS_PLM, _TAXOCLASS_SCOPE[method])
        for name in profiles for method in _TAXOCLASS_METHODS
    ])


def taxoclass_table(seed: int = 0, fast: bool = True, *,
                    jobs: "int | None" = None,
                    use_cache: "bool | None" = None,
                    timeout: "float | None" = None,
                    select=None, cache_dir=None) -> list:
    """TaxoClass results table (Example-F1, P@1) on DAG profiles."""
    return _run_table(taxoclass_request(seed, fast), jobs=jobs,
                      use_cache=use_cache, timeout=timeout, select=select,
                      cache_dir=cache_dir)


# ---------------------------------------------------------------------------
# T-TAXOGEN
# ---------------------------------------------------------------------------

def _taxogen_taxonomy(bundle, arm: str, table_seed: int) -> tuple:
    """The DAG an ablation arm classifies against, plus recovery stats.

    ``given`` uses the profile's taxonomy as-is; ``perturbed`` damages it
    deterministically (re-parents, leaf deletions, spurious edges);
    ``repaired`` runs the entailment-scored repairer over the damaged
    taxonomy and reports the edge-recovery fraction.
    """
    dag = bundle.dag
    assert dag is not None
    if arm == "given":
        return dag, None
    perturbed, perturbation = perturb_dag(
        dag, seed=table_seed + 1, n_reparent=4, n_delete=2, n_spurious=2)
    if arm == "perturbed":
        return perturbed, None
    scorer = EdgeScorer.from_bundle(bundle, plm=_plm(bundle, table_seed))
    repaired, _plan = TaxonomyRepairer(scorer).repair_dag(perturbed)
    return repaired, edge_recovery(perturbation, repaired)


def _taxogen_leaf_supervision(bundle, dag):
    """Leaf supervision restricted to labels the (damaged) taxonomy has."""
    from repro.core.supervision import LabeledDocuments
    from repro.core.types import LabelSet

    sup = _taxoclass_leaf_supervision(bundle)
    keep = {l: docs for l, docs in sup.documents.items() if l in dag}
    label_set = LabelSet(
        labels=tuple(sorted(keep)),
        names={l: bundle.label_set.names.get(l, l) for l in keep},
    )
    return LabeledDocuments(label_set=label_set, documents=keep)


def _taxogen_row(row_seed: int, profile: str, method: str, taxonomy: str,
                 table_seed: int) -> dict:
    bundle = _bundle(profile, table_seed)
    dag, recovery = _taxogen_taxonomy(bundle, taxonomy, table_seed)
    if method == "WeSHClass":
        classifier = _PathAsSet(WeSHClass(tree=dag_as_tree(dag),
                                          seed=table_seed), dag)
        supervision = _taxogen_leaf_supervision(bundle, dag)
    elif method == "FUTEX":
        classifier = Futex(dag=dag, plm=_plm(bundle, table_seed),
                           seed=table_seed)
        supervision = bundle.label_names()
    else:  # TaxoClass
        classifier = TaxoClass(dag=dag, plm=_plm(bundle, table_seed),
                               seed=table_seed)
        supervision = bundle.label_names()
    metrics = evaluate_multilabel(classifier, bundle, supervision, ks=(1,))
    return {"Example-F1": metrics["example_f1"], "P@1": metrics["p@1"],
            "EdgeRecovery": ("-" if recovery is None
                             else round(recovery["recovered_fraction"], 3))}


_TAXOGEN_METHODS_FAST = ("TaxoClass", "FUTEX")
_TAXOGEN_METHODS = ("TaxoClass", "FUTEX", "WeSHClass")
_TAXOGEN_ARMS = ("given", "perturbed", "repaired")
_TAXOGEN_SCOPE = {
    "TaxoClass": scope_for(TaxoClass),
    "FUTEX": scope_for(Futex),
    "WeSHClass": scope_for(WeSHClass),
}


def taxogen_request(seed: int = 0, fast: bool = True) -> TableRequest:
    """Compiled taxonomy-repair ablation pipeline."""
    methods = _TAXOGEN_METHODS_FAST if fast else _TAXOGEN_METHODS
    profile = "arxiv_sections"
    return _table_request("taxogen", seed, [
        (f"{profile}/{method}/{arm}", _taxogen_row,
         {"profile": profile, "method": method, "taxonomy": arm,
          "table_seed": seed},
         {"Dataset": profile, "Method": method, "Taxonomy": arm},
         profile, "plain",
         method in ("TaxoClass", "FUTEX") or arm == "repaired",
         _TAXOGEN_SCOPE[method])
        for method in methods for arm in _TAXOGEN_ARMS
    ])


def taxogen_table(seed: int = 0, fast: bool = True, *,
                  jobs: "int | None" = None,
                  use_cache: "bool | None" = None,
                  timeout: "float | None" = None,
                  select=None, cache_dir=None) -> list:
    """Taxonomy-repair ablation (given vs perturbed vs repaired DAG)."""
    return _run_table(taxogen_request(seed, fast), jobs=jobs,
                      use_cache=use_cache, timeout=timeout, select=select,
                      cache_dir=cache_dir)


# ---------------------------------------------------------------------------
# T-METACAT
# ---------------------------------------------------------------------------

_METACAT_METHODS = {
    "CNN": (FewShotCNN, {}, ()),
    "HAN": (FewShotHAN, {}, ()),
    "PTE": (PTE, {}, ()),
    "WeSTClass": (WeSTClass, {}, ()),
    "PCEM": (PCEM, {}, ()),
    "BERT": (FewShotBERT, {}, ("plm",)),
    "ESim": (ESim, {}, ()),
    "Metapath2vec": (Metapath2Vec, {}, ()),
    "HIN2vec": (HIN2Vec, {}, ()),
    "TextGCN": (TextGCN, {}, ()),
    "MetaCat": (MetaCat, {}, ()),
}


def _metacat_row(row_seed: int, profile: str, method: str,
                 table_seed: int) -> dict:
    bundle = _bundle(profile, table_seed)
    classifier = _make(_METACAT_METHODS[method], table_seed,
                       plm=lambda: _plm(bundle, table_seed))
    docs = bundle.labeled_documents(5, seed=table_seed)
    metrics = _fit_flat(classifier, bundle, docs)
    return {"Micro-F1": metrics["micro_f1"], "Macro-F1": metrics["macro_f1"]}


def metacat_request(seed: int = 0, fast: bool = True) -> TableRequest:
    """Compiled MetaCat pipeline (static ``-`` rows stay off the pool)."""
    profiles = ["github_bio"] if fast else ["github_bio", "github_ai",
                                            "github_sec", "amazon_meta",
                                            "twitter"]
    items = []
    for name in profiles:
        # Reproduce the paper's "-" (OOM) entries: TextGCN is excluded on
        # the two largest profiles.
        textgcn_ok = name not in ("github_sec", "amazon_meta")
        for method in _METACAT_METHODS:
            if method == "TextGCN" and not textgcn_ok:
                items.append((f"{name}/{method}", None, {},
                              {"Dataset": name, "Method": method,
                               "Micro-F1": "-", "Macro-F1": "-"},
                              name, "plain", False, ()))
                continue
            items.append((f"{name}/{method}", _metacat_row,
                          {"profile": name, "method": method,
                           "table_seed": seed},
                          {"Dataset": name, "Method": method},
                          name, "plain",
                          "plm" in _METACAT_METHODS[method][2],
                          scope_for(_METACAT_METHODS[method][0])))
    return _table_request("metacat", seed, items)


def metacat_tables(seed: int = 0, fast: bool = True, *,
                   jobs: "int | None" = None,
                   use_cache: "bool | None" = None,
                   timeout: "float | None" = None,
                   select=None, cache_dir=None) -> list:
    """MetaCat Tables 2+3: micro and macro F1 on the metadata profiles."""
    return _run_table(metacat_request(seed, fast), jobs=jobs,
                      use_cache=use_cache, timeout=timeout, select=select,
                      cache_dir=cache_dir)


# ---------------------------------------------------------------------------
# T-MICOL
# ---------------------------------------------------------------------------

_MICOL_MATCH_FRACTIONS = {
    "MATCH (2%)": "2%",
    "MATCH (10%)": "10%",
    "MATCH (30%)": "30%",
    "MATCH (full)": "full",
}

_MICOL_METHODS = ("Doc2Vec", "SciBERT", "ZeroShot-Entail", "SPECTER", "EDA",
                  "UDA", "MICoL (Bi, P->P<-P)", "MICoL (Bi, P<-(PP)->P)",
                  "MICoL (Cross, P->P<-P)", "MICoL (Cross, P<-(PP)->P)",
                  ) + tuple(_MICOL_MATCH_FRACTIONS)


def _match_size(fraction: str, n: int) -> int:
    # Scaled analogs of MATCH's 10K / 50K / 100K / full training sets.
    return {"2%": max(4, n // 50), "10%": n // 10,
            "30%": int(n * 0.3), "full": n}[fraction]


def _micol_classifier(method: str, bundle, table_seed: int):
    plm = lambda: _plm(bundle, table_seed)  # noqa: E731 - lazy build
    if method == "Doc2Vec":
        return Doc2VecRanker(seed=table_seed)
    if method == "SciBERT":
        return _StaticConceptRanker(seed=table_seed)
    if method == "ZeroShot-Entail":
        return ZeroShotEntailRanker(plm=plm(), seed=table_seed)
    if method == "SPECTER":
        return MICoL(plm=plm(), fine_tune=False, seed=table_seed)
    if method == "EDA":
        return EDAContrastive(plm=plm(), seed=table_seed)
    if method == "UDA":
        return UDAContrastive(plm=plm(), seed=table_seed)
    if method.startswith("MICoL"):
        encoder = "bi" if "(Bi" in method else "cross"
        metapath = P_REF_P if "P->P<-P" in method else P_COCITED_P
        return MICoL(plm=plm(), encoder=encoder, metapath=metapath,
                     seed=table_seed)
    fraction = _MICOL_MATCH_FRACTIONS[method]
    return MATCH(plm=plm(),
                 n_train_examples=_match_size(fraction,
                                              len(bundle.train_corpus)),
                 seed=table_seed)


def _micol_row(row_seed: int, profile: str, method: str,
               table_seed: int) -> dict:
    from repro.evaluation.ranking import per_example_precision_at_k

    bundle = _bundle(profile, table_seed)
    classifier = _micol_classifier(method, bundle, table_seed)
    metrics = evaluate_multilabel(classifier, bundle, bundle.label_names(),
                                  ks=(1, 3, 5))
    gold = [set(d.labels) for d in bundle.test_corpus]
    scores = per_example_precision_at_k(
        gold, classifier.rank(bundle.test_corpus), 5
    )
    return {
        "P@1": metrics["p@1"],
        "P@3": metrics["p@3"],
        "P@5": metrics["p@5"],
        "NDCG@3": metrics["ndcg@3"],
        "NDCG@5": metrics["ndcg@5"],
        "_p5_scores": [float(s) for s in scores],
    }


def _micol_post(profiles: list, seed: int, significance: bool):
    """Post-assembly hook: pop hidden P@5 scores, mark significance.

    Runs in the parent over the assembled rows — table-level work that
    compares rows against each other has no single-node home, so it
    rides on the request, not the graph.
    """

    def post(rows: list) -> list:
        from repro.evaluation.significance import paired_bootstrap_pvalue

        # Per-document P@5 scores ride along as a hidden column; pop
        # them before rendering and (optionally) run the significance
        # pass.
        per_profile: "dict[str, dict[str, np.ndarray]]" = {}
        for row in rows:
            scores = row.pop("_p5_scores", None)
            if scores is not None:
                per_profile.setdefault(row["Dataset"], {})[row["Method"]] = (
                    np.asarray(scores)
                )
        if significance:
            for name in profiles:
                per_method_scores = per_profile.get(name, {})
                # The paper's ** markers: significantly below the best
                # MICoL variant under a paired bootstrap on per-document
                # P@5.
                micol_names = [m for m in per_method_scores
                               if m.startswith("MICoL")]
                if not micol_names:
                    continue
                best_micol = max(micol_names,
                                 key=lambda m: per_method_scores[m].mean())
                reference = per_method_scores[best_micol]
                for row in rows:
                    if row["Dataset"] != name:
                        continue
                    method_name = row["Method"]
                    if method_name.startswith(("MICoL", "MATCH")):
                        row["sig"] = ""
                        continue
                    if method_name not in per_method_scores:
                        continue  # error row: no per-document scores
                    p_value = paired_bootstrap_pvalue(
                        reference, per_method_scores[method_name], seed=seed
                    )
                    row["sig"] = "**" if p_value < 0.01 else (
                        "*" if p_value < 0.05 else ""
                    )
        return rows

    return post


def micol_request(seed: int = 0, fast: bool = True,
                  significance: bool = True) -> TableRequest:
    """Compiled MICoL pipeline with the significance post-pass."""
    profiles = ["magcs"] if fast else ["magcs", "pubmed"]
    return _table_request("micol", seed, [
        (f"{name}/{method}", _micol_row,
         {"profile": name, "method": method, "table_seed": seed},
         {"Dataset": name, "Method": method}, name, "plain",
         method not in ("Doc2Vec", "SciBERT"),
         scope_for(MICoL, MATCH))
        for name in profiles for method in _MICOL_METHODS
    ], post=_micol_post(profiles, seed, significance))


def micol_table(seed: int = 0, fast: bool = True,
                significance: bool = True, *,
                jobs: "int | None" = None,
                use_cache: "bool | None" = None,
                timeout: "float | None" = None,
                select=None, cache_dir=None) -> list:
    """MICoL results table (P@k, NDCG@k) with the MATCH crossover rows.

    With ``significance`` on, zero-shot rows whose per-document P@5 is
    significantly below the best MICoL variant (one-sided paired
    bootstrap, p < 0.01) carry the paper's ``**`` marker.
    """
    return _run_table(micol_request(seed, fast, significance), jobs=jobs,
                      use_cache=use_cache, timeout=timeout, select=select,
                      cache_dir=cache_dir)


class _StaticConceptRanker(_MLBase):
    """Label ranking by cosine in the external (never target-adapted)
    concept space — the un-fine-tuned generic-encoder ("SciBERT") row."""

    def __init__(self, dim: int = 48, seed=0):
        super().__init__(seed=seed)
        self.dim = dim
        self.space = None
        self._label_matrix = None

    def _fit(self, corpus, supervision) -> None:
        _require(supervision, _LabelNames)
        from repro.baselines.dataless import _general_space
        from repro.nn.functional import l2_normalize
        from repro.text.tokenizer import tokenize

        assert self.label_set is not None
        self.space = _general_space(self.dim, seed=0)
        rows = []
        for label in self.label_set:
            tokens = list(self.label_set.name_tokens(label))
            tokens += tokenize(self.label_set.description_of(label))
            rows.append(np.mean([self.space.vector(t) for t in tokens], axis=0))
        self._label_matrix = l2_normalize(np.stack(rows))

    def _score(self, corpus) -> np.ndarray:
        from repro.embeddings.doc import doc_embeddings

        docs = doc_embeddings(corpus.token_lists(), self.space)
        return docs @ self._label_matrix.T


# ---------------------------------------------------------------------------
# T-SUMMARY
# ---------------------------------------------------------------------------

def summary_table() -> list:
    """The tutorial's closing capability matrix, generated from the
    method registry."""
    return summary_rows()


# ---------------------------------------------------------------------------
# Request registry
# ---------------------------------------------------------------------------

#: Table name -> ``(seed, fast) -> TableRequest`` compile hook. The CLI
#: compiles every requested table through this registry into ONE shared
#: graph, so corpus/encode nodes dedup across tables in a single run.
#: ``summary`` is registry-generated (no pipeline) and stays off the DAG.
REQUESTS = {
    "westclass": westclass_request,
    "conwea": conwea_request,
    "lotclass-predictions": lotclass_prediction_request,
    "lotclass": lotclass_request,
    "xclass-data": xclass_dataset_request,
    "xclass": xclass_request,
    "promptclass": promptclass_request,
    "weshclass": weshclass_request,
    "taxoclass": taxoclass_request,
    "taxogen": taxogen_request,
    "metacat": metacat_request,
    "micol": micol_request,
}
