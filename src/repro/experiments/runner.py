"""Shared evaluation plumbing for the benchmark harness."""

from __future__ import annotations

import time

import numpy as np

from repro import obs
from repro.core.types import Corpus
from repro.datasets.bundle import DatasetBundle
from repro.evaluation.metrics import macro_f1, micro_f1
from repro.evaluation.ranking import example_f1, ndcg_at_k, precision_at_k


def gold_single(corpus: Corpus) -> list:
    """Single gold label per document."""
    return [d.labels[0] for d in corpus]


def gold_sets(corpus: Corpus) -> list:
    """Gold label set per document."""
    return [set(d.labels) for d in corpus]


def evaluate_flat(classifier, bundle: DatasetBundle, supervision) -> dict:
    """Fit on train, report micro/macro F1 on test."""
    classifier.fit(bundle.train_corpus, supervision)
    predicted = classifier.predict(bundle.test_corpus)
    gold = gold_single(bundle.test_corpus)
    return {
        "micro_f1": micro_f1(gold, predicted),
        "macro_f1": macro_f1(gold, predicted, labels=list(bundle.label_set)),
    }


def evaluate_multilabel(classifier, bundle: DatasetBundle, supervision,
                        ks: tuple = (1, 3, 5), threshold: float = 0.5) -> dict:
    """Fit on train, report Example-F1 / P@k / NDCG@k on test."""
    classifier.fit(bundle.train_corpus, supervision)
    gold = gold_sets(bundle.test_corpus)
    predicted = classifier.predict(bundle.test_corpus, threshold=threshold)
    ranking = classifier.rank(bundle.test_corpus)
    out = {"example_f1": example_f1(gold, predicted)}
    for k in ks:
        out[f"p@{k}"] = precision_at_k(gold, ranking, k)
    for k in ks:
        if k > 1:
            out[f"ndcg@{k}"] = ndcg_at_k(gold, ranking, k)
    return out


def run_rows(specs: list, evaluate) -> list:
    """Evaluate ``(row_name, factory, supervision)`` specs into table rows.

    ``evaluate`` maps (classifier, supervision) -> metric dict. Failures
    surface as rows with an ``error`` column rather than killing the
    whole table (mirrors the papers' "-" entries). Every row carries a
    ``seconds`` wall-clock column, so tables double as a perf
    trajectory. This is the legacy serial path; table generation goes
    through :mod:`repro.experiments.engine`, which parallelizes and
    memoizes the same row shape.
    """
    rows = []
    for name, factory, supervision in specs:
        row = {"Method": name}
        start = time.perf_counter()
        with obs.span(f"row:{name}"):
            try:
                row.update(evaluate(factory(), supervision))
            except MemoryError:  # the tables' literal "-" case
                row["error"] = "-"
        row["seconds"] = round(time.perf_counter() - start, 3)
        rows.append(row)
    return rows
