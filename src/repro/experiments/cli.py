"""Command-line experiment runner.

Regenerate any paper table or figure without pytest::

    python -m repro.experiments.cli --list
    python -m repro.experiments.cli westclass
    python -m repro.experiments.cli micol --full --seed 1
    python -m repro.experiments.cli xclass --jobs 4
    python -m repro.experiments.cli xclass lotclass --jobs 4
    python -m repro.experiments.cli lotclass --select lotclass.agnews/Ours
    python -m repro.experiments.cli cache-prune
    python -m repro.experiments.cli pca-figure
    python -m repro.experiments.cli westclass --trace /tmp/traces

Tables compile into one content-addressed artifact graph
(:mod:`repro.experiments.dag`): naming several tables in one invocation
shares their corpus/encode nodes, warm re-runs reuse every node from the
artifact store, and ``--select`` forces just the named subgraph to
recompute (``table.row`` for one row node, ``+node`` to include its
ancestors, ``node+`` its dependents). The ``[dag]`` footer reports
reused-vs-executed node counts. ``cache-prune`` sweeps row-memo and
DAG-artifact entries left behind by old source trees.

``--trace DIR`` (or ``REPRO_TRACE=DIR``) records the run through
:mod:`repro.obs` and writes ``DIR/trace_<experiment>.jsonl``; render it
with ``python -m repro.obs.report DIR/trace_<experiment>.jsonl``.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro import obs
from repro.core import env as _env
from repro.evaluation.reporting import format_table
from repro.experiments import engine, figures, scheduler, tables

TABLES = {
    "westclass": (tables.westclass_table, "WeSTClass results table"),
    "conwea": (tables.conwea_table, "ConWea results table"),
    "lotclass-predictions": (
        lambda seed=0, fast=True, **engine_kwargs:
            tables.lotclass_prediction_rows(seed=seed, **engine_kwargs),
        "LOTClass Table 1 (MLM replacement predictions)",
    ),
    "lotclass": (tables.lotclass_table, "LOTClass results table"),
    "xclass-data": (tables.xclass_dataset_table, "X-Class dataset statistics"),
    "xclass": (tables.xclass_table, "X-Class results table"),
    "promptclass": (tables.promptclass_table, "PromptClass results table"),
    "weshclass": (tables.weshclass_table, "WeSHClass results table"),
    "taxoclass": (tables.taxoclass_table, "TaxoClass results table"),
    "taxogen": (tables.taxogen_table,
                "Taxonomy-repair ablation (given/perturbed/repaired)"),
    "metacat": (tables.metacat_tables, "MetaCat results tables"),
    "micol": (tables.micol_table, "MICoL results table"),
    "summary": (lambda seed=0, fast=True, **engine_kwargs:
                tables.summary_table(),
                "Method capability summary"),
}

FIGURES = {
    "pca-figure": "PCA of pooled PLM document representations",
    "confusion-figure": "k-means confusion matrix on pooled representations",
}


def _run_figure(name: str, seed: int) -> None:
    if name == "pca-figure":
        result = figures.pca_domain_figure(seed=seed)
        print(figures.render_pca_ascii(result["coordinates"], result["labels"]))
        print(f"separation ratio: {result['separation_ratio']:.2f}")
    else:
        result = figures.clustering_confusion_figure(seed=seed)
        print(result["rendered"])
        print(f"clustering accuracy: {result['clustering_accuracy']:.3f}")


def _dag_footer() -> "str | None":
    report = scheduler.take_last_dag_report()
    if report is None:
        return None
    return (f"\n[dag] nodes={report.nodes} reused={report.reused} "
            f"executed={report.executed} errors={report.errors} "
            f"merged={report.merged} jobs={report.jobs} "
            f"{report.seconds:.1f}s")


def _engine_footer() -> "str | None":
    report = engine.take_last_report()
    if report is None:
        return None
    return (f"\n[engine] rows={report.rows} memo_hits={report.hits} "
            f"computed={report.misses} errors={report.errors} "
            f"timeouts={report.timeouts} jobs={report.jobs} "
            f"{report.seconds:.1f}s")


def _cache_prune(seed: int, fast: bool) -> int:
    """Sweep row-memo and DAG-store entries from dead source trees.

    Row entries survive on their stamped source digest. DAG artifacts
    additionally survive when their content digest is reachable from the
    currently compiled graphs — the scoped-digest scheme means a method
    edit re-addresses only that method's subgraph, so untouched nodes'
    artifacts stay live across source changes and must not be swept.
    """
    graph_digests: "set[str]" = set()
    for build in tables.REQUESTS.values():
        from repro.experiments.dag import ArtifactGraph

        graph = ArtifactGraph()
        for node in build(seed, fast).nodes:
            graph.add(node)
        graph_digests.update(graph.digests().values())
    rows_dir = engine.default_cache_dir()
    kept_rows, removed_rows = engine.RowMemo(rows_dir).prune()
    kept_dag, removed_dag = engine.RowMemo(
        scheduler.dag_store_dir(rows_dir)).prune(keep_keys=graph_digests)
    print(f"rows: kept {kept_rows}, removed {removed_rows} ({rows_dir})")
    print(f"dag:  kept {kept_dag}, removed {removed_dag} "
          f"({scheduler.dag_store_dir(rows_dir)})")
    return 0


def main(argv: "list | None" = None) -> int:
    """Entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        description="Regenerate the tutorial's tables and figures."
    )
    parser.add_argument("experiment", nargs="*",
                        help="experiment id(s) (see --list); several tables "
                             "share one artifact graph; or 'cache-prune'")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--full", action="store_true",
                        help="run every dataset of the table (slower)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for table rows "
                             "(default: REPRO_JOBS or 1 = serial)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the row memo store for this run")
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-row timeout in seconds (parallel runs; "
                             "default: REPRO_ROW_TIMEOUT or none)")
    parser.add_argument("--select", action="append", default=None,
                        metavar="NODE",
                        help="force-recompute a DAG subgraph: 'table.row' "
                             "for one node, '+node' with ancestors, 'node+' "
                             "with dependents (repeatable)")
    parser.add_argument("--trace", type=Path, default=None, metavar="DIR",
                        help="write a JSONL run trace into DIR "
                             "(default: REPRO_TRACE or off)")
    args = parser.parse_args(argv)

    if args.list or not args.experiment:
        print("tables:")
        for key, (_, description) in TABLES.items():
            print(f"  {key:<22} {description}")
        print("figures:")
        for key, description in FIGURES.items():
            print(f"  {key:<22} {description}")
        return 0

    names = list(args.experiment)
    if names == ["cache-prune"]:
        return _cache_prune(args.seed, not args.full)
    for name in names:
        if name not in FIGURES and name not in TABLES:
            print(f"unknown experiment {name!r}; use --list", file=sys.stderr)
            return 2

    run_kwargs = dict(jobs=args.jobs,
                      use_cache=False if args.no_cache else None,
                      timeout=args.timeout)
    # Tables with a compile hook share ONE artifact graph per invocation
    # (cross-table corpus/encode dedup); the rest run individually.
    batched = [n for n in names if n in tables.REQUESTS]
    label = "+".join(names)

    trace_dir = args.trace if args.trace is not None else _env.trace_dir()
    if trace_dir is not None:
        obs.enable(f"cli:{label}")
    start = time.time()
    try:
        with obs.span(f"cli:{label}"):
            if batched:
                requests = [tables.REQUESTS[n](args.seed, not args.full)
                            for n in batched]
                results = scheduler.run_requests(requests,
                                                 select=args.select,
                                                 **run_kwargs)
                for name in batched:
                    _, description = TABLES[name]
                    print(format_table(results[name], title=description))
                footer = _dag_footer()
                if footer:
                    print(footer)
            for name in names:
                if name in batched:
                    continue
                if name in FIGURES:
                    _run_figure(name, args.seed)
                    continue
                fn, description = TABLES[name]
                rows = fn(seed=args.seed, fast=not args.full, **run_kwargs)
                print(format_table(rows, title=description))
                footer = _dag_footer() or _engine_footer()
                if footer:
                    print(footer)
    finally:
        if trace_dir is not None:
            tracer = obs.disable()
            path = tracer.write(Path(trace_dir) / f"trace_{label}.jsonl")
            print(obs.trace_footer(tracer, path))
    print(f"\n[{time.time() - start:.1f}s]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
