"""Experiment harness: one spec per paper table/figure.

Tables compile into a content-addressed artifact DAG
(:mod:`repro.experiments.dag`) executed by
:mod:`repro.experiments.scheduler`; the flat :class:`RowSpec` engine
remains as the compatibility shim and the worker substrate.
"""

from repro.experiments.dag import ArtifactGraph, DagNode, TableRequest
from repro.experiments.engine import (
    RowSpec,
    RunReport,
    derive_row_seed,
    run_specs,
    take_last_report,
)
from repro.experiments.runner import (
    evaluate_flat,
    evaluate_multilabel,
    run_rows,
)
from repro.experiments.scheduler import (
    DagReport,
    run_graph,
    run_requests,
    take_last_dag_report,
)
from repro.experiments import figures, tables

__all__ = [
    "ArtifactGraph",
    "DagNode",
    "DagReport",
    "RowSpec",
    "RunReport",
    "TableRequest",
    "derive_row_seed",
    "evaluate_flat",
    "evaluate_multilabel",
    "run_graph",
    "run_requests",
    "run_rows",
    "run_specs",
    "take_last_report",
    "take_last_dag_report",
    "tables",
    "figures",
]
