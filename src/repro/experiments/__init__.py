"""Experiment harness: one spec per paper table/figure."""

from repro.experiments.runner import (
    evaluate_flat,
    evaluate_multilabel,
    run_rows,
)
from repro.experiments import figures, tables

__all__ = ["evaluate_flat", "evaluate_multilabel", "run_rows", "tables", "figures"]
