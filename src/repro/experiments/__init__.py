"""Experiment harness: one spec per paper table/figure."""

from repro.experiments.engine import (
    RowSpec,
    RunReport,
    derive_row_seed,
    run_specs,
    take_last_report,
)
from repro.experiments.runner import (
    evaluate_flat,
    evaluate_multilabel,
    run_rows,
)
from repro.experiments import figures, tables

__all__ = [
    "RowSpec",
    "RunReport",
    "derive_row_seed",
    "evaluate_flat",
    "evaluate_multilabel",
    "run_rows",
    "run_specs",
    "take_last_report",
    "tables",
    "figures",
]
