"""Figure reproductions, rendered as data + text (no plotting deps).

- :func:`pca_domain_figure` — the X-Class/tutorial figure showing that
  average-pooled PLM representations separate domains in 2D PCA;
- :func:`clustering_confusion_figure` — the k-means-on-representations
  confusion matrix (k = number of classes).
"""

from __future__ import annotations

import numpy as np

from repro.datasets import load_profile
from repro.evaluation.clustering import align_clusters, confusion_matrix, kmeans
from repro.evaluation.reporting import format_matrix
from repro.plm.provider import get_pretrained_lm


def pca_2d(points: np.ndarray) -> np.ndarray:
    """Project rows onto their top two principal components."""
    centered = points - points.mean(axis=0)
    _, _, vt = np.linalg.svd(centered, full_matrices=False)
    return centered @ vt[:2].T


def domain_separation_ratio(coords: np.ndarray, labels: list) -> float:
    """Between-class vs within-class scatter of 2D coordinates.

    > 1 means classes separate visually — the property the paper's PCA
    figure demonstrates.
    """
    classes = sorted(set(labels))
    overall = coords.mean(axis=0)
    within, between = 0.0, 0.0
    for cls in classes:
        members = coords[[i for i, l in enumerate(labels) if l == cls]]
        center = members.mean(axis=0)
        within += float(((members - center) ** 2).sum())
        between += len(members) * float(((center - overall) ** 2).sum())
    return between / max(within, 1e-12)


def pca_domain_figure(profile: str = "mixed_domains", seed: int = 0,
                      max_docs: int = 250) -> dict:
    """PCA coordinates + separation statistics for pooled PLM reps."""
    bundle = load_profile(profile, seed=seed)
    plm = get_pretrained_lm(target_corpus=bundle.train_corpus, seed=seed % 7)
    corpus = bundle.train_corpus[:max_docs]
    reps = plm.doc_embeddings(corpus.token_lists())
    coords = pca_2d(reps)
    labels = [d.labels[0] for d in corpus]
    return {
        "coordinates": coords,
        "labels": labels,
        "separation_ratio": domain_separation_ratio(coords, labels),
    }


def clustering_confusion_figure(profile: str = "mixed_domains", seed: int = 0,
                                max_docs: int = 250) -> dict:
    """k-means over pooled reps, Hungarian-aligned confusion matrix."""
    bundle = load_profile(profile, seed=seed)
    plm = get_pretrained_lm(target_corpus=bundle.train_corpus, seed=seed % 7)
    corpus = bundle.train_corpus[:max_docs]
    reps = plm.doc_embeddings(corpus.token_lists())
    gold = [d.labels[0] for d in corpus]
    k = len(bundle.label_set)
    clusters = kmeans(reps, k, seed=seed)
    mapping = align_clusters(gold, list(clusters))
    predicted = [mapping[c] for c in clusters]
    matrix, labels = confusion_matrix(gold, predicted,
                                      labels=list(bundle.label_set))
    accuracy = float(np.trace(matrix)) / max(1, matrix.sum())
    return {
        "matrix": matrix,
        "labels": labels,
        "clustering_accuracy": accuracy,
        "rendered": format_matrix(matrix, labels, labels,
                                  title=f"k-means confusion on {profile}"),
    }


def render_pca_ascii(coords: np.ndarray, labels: list, width: int = 60,
                     height: int = 20) -> str:
    """ASCII scatter of the PCA figure (one letter per class)."""
    classes = sorted(set(labels))
    glyphs = {cls: chr(ord("A") + i % 26) for i, cls in enumerate(classes)}
    x = coords[:, 0]
    y = coords[:, 1]
    x_lo, x_hi = float(x.min()), float(x.max())
    y_lo, y_hi = float(y.min()), float(y.max())
    grid = [[" "] * width for _ in range(height)]
    for (px, py), label in zip(coords, labels):
        col = int((px - x_lo) / (x_hi - x_lo + 1e-12) * (width - 1))
        row = int((py - y_lo) / (y_hi - y_lo + 1e-12) * (height - 1))
        grid[height - 1 - row][col] = glyphs[label]
    legend = "  ".join(f"{glyph}={cls}" for cls, glyph in glyphs.items())
    return "\n".join("".join(row) for row in grid) + "\n" + legend
