"""Dataset views: coarse relabeling of tree profiles, DAG-to-tree casts."""

from __future__ import annotations

from dataclasses import replace

from repro.core.types import Corpus, Document, LabelSet
from repro.datasets.bundle import DatasetBundle
from repro.taxonomy.dag import LabelDAG
from repro.taxonomy.tree import ROOT, LabelTree


def _relabel(corpus: Corpus, mapping, name_suffix: str) -> Corpus:
    docs = []
    for d in corpus:
        labels = tuple(sorted({mapping(l) for l in d.labels}))
        meta = dict(d.metadata)
        meta["core_labels"] = [mapping(l) for l in meta.get("core_labels", d.labels)]
        docs.append(
            Document(doc_id=d.doc_id, tokens=list(d.tokens), labels=labels,
                     metadata=meta)
        )
    return Corpus(docs, name=f"{corpus.name}-{name_suffix}")


def coarse_view(bundle: DatasetBundle) -> DatasetBundle:
    """A flat view of a tree profile at its top level.

    Documents are relabeled with their depth-1 ancestor; the label set
    becomes the top-level nodes (whose lexicons the world already has, so
    keyword supervision keeps working).
    """
    tree = bundle.tree
    if tree is None:
        raise ValueError(f"profile {bundle.profile.name!r} is not a tree")

    def to_coarse(label: str) -> str:
        return tree.ancestor_at_depth(label, 1) if label in tree else label

    labels = tuple(tree.level(1))
    label_set = LabelSet(
        labels=labels,
        names={l: bundle.world.names[l] for l in labels},
        descriptions={l: bundle.label_set.descriptions.get(l, l) for l in labels},
    )
    return DatasetBundle(
        profile=replace(bundle.profile, name=f"{bundle.profile.name}-coarse",
                        structure="flat",
                        classes=tuple(c for c in bundle.profile.classes
                                      if c.label in labels)),
        world=bundle.world,
        train_corpus=_relabel(bundle.train_corpus, to_coarse, "coarse"),
        test_corpus=_relabel(bundle.test_corpus, to_coarse, "coarse"),
        label_set=label_set,
    )


def dag_as_tree(dag: LabelDAG) -> LabelTree:
    """Cast a DAG to a tree by keeping each node's first parent.

    Used to run tree-only methods (WeSHClass, Hier-SVM) on DAG profiles,
    as the TaxoClass paper does for its hierarchical baselines.
    """
    parent_of = {}
    for node in dag.nodes:
        parents = [p for p in dag.parents(node) if p != "<ROOT>"]
        parent_of[node] = parents[0] if parents else ROOT
    return LabelTree(parent_of)
