"""Dependency-aware scheduler for the experiment artifact DAG.

This is the run half of the compile-then-run split
(:mod:`repro.experiments.dag` is the compile half). Given an
:class:`~repro.experiments.dag.ArtifactGraph`, the scheduler:

- **reuses** any node whose content digest is already in the artifact
  store — a :class:`~repro.experiments.engine.RowMemo` under
  ``<row-cache>/dag/`` keyed by node digest instead of row memo key, so
  warm re-runs execute zero nodes and dirty re-runs execute exactly the
  re-addressed subgraph;
- **executes** the rest on the engine's spawn worker pool
  (:class:`~repro.experiments.engine._Worker`), dispatching a node only
  once every dependency has resolved, so independent subgraphs of
  different tables interleave freely across workers;
- **isolates failures**: an errored / timed-out / crashed node poisons
  only its transitive dependents (they report the engine's
  ``error``-column convention with an ``upstream <node> failed``
  message); sibling subgraphs run to completion, and error payloads are
  never stored.

Determinism matches the engine's contract: node seeds are fixed at
compile time (row nodes carry :func:`engine.derive_row_seed` of their
table seed and row name — the identical seed the RowSpec shim derives),
execution order never feeds back into any node's inputs, and worker
trace payloads are absorbed in topological order, so a ``--jobs N`` DAG
run is bit-identical to a cold serial run.

Observability: every executed node runs under a ``node:<name>`` span;
counters ``dag.nodes_total`` / ``dag.nodes_reused`` /
``dag.nodes_executed`` / ``dag.nodes_errors`` mirror the
:class:`DagReport` the CLI prints as the ``[dag]`` footer.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _wait_connections
from pathlib import Path

from repro import obs
from repro.core import env as _env
from repro.experiments import engine
from repro.experiments.dag import ArtifactGraph

_OK_STATES = ("reused", "executed", "static")
_BAD_STATES = ("error", "upstream-error")
_POLL_SECONDS = 0.05


@dataclass
class DagReport:
    """What one :func:`run_graph` call did (CLI ``[dag]`` footer material).

    ``statuses`` maps every node name to one of ``reused`` / ``executed``
    / ``static`` / ``error`` / ``upstream-error`` — the audit trail the
    determinism and ``--select`` tests assert on.
    """

    nodes: int = 0
    reused: int = 0
    executed: int = 0
    static: int = 0
    errors: int = 0
    merged: int = 0
    jobs: int = 1
    seconds: float = 0.0
    statuses: dict = field(default_factory=dict)


_LAST_DAG_REPORT: "list[DagReport]" = []


def take_last_dag_report() -> "DagReport | None":
    """Pop the report of the most recent :func:`run_graph` call."""
    return _LAST_DAG_REPORT.pop() if _LAST_DAG_REPORT else None


def dag_store_dir(cache_dir: "str | Path | None" = None) -> Path:
    """Artifact-store directory: ``<row-cache>/dag``.

    Kept inside the row cache so ``REPRO_ROW_CACHE_DIR`` governs both
    tiers and ``cache-prune`` sweeps them together.
    """
    base = Path(cache_dir) if cache_dir else engine.default_cache_dir()
    return base / "dag"


def _node_spec(node) -> engine.RowSpec:
    """Bridge a DAG node onto the engine's worker protocol.

    ``table=""`` marks the spec as a DAG node — the engine renders its
    span as ``node:<name>`` instead of ``row:<table>/<name>``.
    """
    return engine.RowSpec(table="", name=node.name, runner=node.runner,
                          kwargs=node.kwargs)


def run_graph(graph: ArtifactGraph, *, jobs: "int | None" = None,
              use_cache: "bool | None" = None,
              timeout: "float | None" = None,
              cache_dir: "str | Path | None" = None,
              force=()) -> dict:
    """Execute ``graph``; return ``{node name: {"metrics", "seconds"}}``.

    Nodes whose digest is in the artifact store are reused without
    executing — unless named in ``force`` (the ``--select`` set), which
    bypasses the store read so exactly the named subgraph recomputes.
    ``jobs <= 1`` runs topologically in-process; ``jobs > 1`` dispatches
    ready nodes onto a spawn pool as their dependencies resolve.
    """
    start = time.perf_counter()
    jobs = engine._resolve_jobs(jobs)
    timeout = engine._resolve_timeout(timeout)
    cache_dir = Path(cache_dir) if cache_dir else engine.default_cache_dir()
    store = (engine.RowMemo(dag_store_dir(cache_dir))
             if engine._resolve_use_cache(use_cache) else None)
    force = set(force)
    trace = obs.enabled()

    digests = graph.digests()
    order = graph.topological()
    report = DagReport(nodes=len(order), merged=graph.merged, jobs=jobs)
    statuses = report.statuses
    results: "dict[str, dict]" = {}
    traces: "dict[str, dict]" = {}

    to_run = []
    for name in order:
        node = graph.nodes[name]
        if node.runner is None:
            results[name] = {"metrics": {}, "seconds": 0.0}
            statuses[name] = "static"
            report.static += 1
            continue
        if store is not None and name not in force:
            hit = store.get(digests[name])
            if hit is not None:
                results[name] = hit
                statuses[name] = "reused"
                report.reused += 1
                continue
        to_run.append(name)

    obs.count("dag.nodes_total", len(order))
    obs.count("dag.nodes_reused", report.reused)

    def record(name: str, metrics: dict, seconds: float,
               payload: "dict | None" = None) -> None:
        if name in results:  # late result after a timeout/crash replacement
            return
        results[name] = {"metrics": metrics, "seconds": seconds}
        if payload is not None:
            traces[name] = payload
        if "error" in metrics:
            statuses[name] = "error"
            report.errors += 1
            obs.count("dag.nodes_errors")
        else:
            statuses[name] = "executed"
            report.executed += 1
            obs.count("dag.nodes_executed")
            if store is not None:
                store.put(digests[name], results[name])

    def record_upstream(name: str, failed: list) -> None:
        # Dependents of a failed node report the error-column convention
        # without occupying a worker; the distinct status separates the
        # cascade from its cause. Never stored: a fixed upstream run
        # must recompute them.
        if name in results:
            return
        results[name] = {
            "metrics": {"error": f"upstream {failed[0]} failed"},
            "seconds": 0.0,
        }
        statuses[name] = "upstream-error"
        report.errors += 1
        obs.count("dag.nodes_errors")

    if to_run and jobs <= 1:
        for name in to_run:
            node = graph.nodes[name]
            failed = [d for d in node.deps if statuses.get(d) in _BAD_STATES]
            if failed:
                record_upstream(name, failed)
                continue
            with obs.span(f"node:{name}"):
                metrics, seconds = engine._execute_row(_node_spec(node),
                                                       node.seed)
            record(name, metrics, seconds)
    elif to_run:
        _run_pool_graph(graph, to_run, statuses, jobs, timeout, cache_dir,
                        record, record_upstream, trace)
        if trace:
            # Absorb worker traces in topological order — not completion
            # order — so parallel trace content is deterministic.
            for name in to_run:
                payload = traces.get(name)
                if payload is not None:
                    obs.tracer().absorb(payload)

    report.seconds = time.perf_counter() - start
    _LAST_DAG_REPORT.clear()
    _LAST_DAG_REPORT.append(report)
    return results


def _run_pool_graph(graph, to_run, statuses, jobs, timeout, cache_dir,
                    record, record_upstream, trace) -> None:
    """Dependency-gated variant of the engine's pool loop.

    ``to_run`` is topologically ordered; a node is dispatched once every
    dependency is in an OK state, and nodes whose dependencies failed
    are resolved as upstream errors without occupying a worker. Timeouts
    and crashes terminate only the affected worker (a fresh one takes
    its slot), exactly as in :func:`engine._run_pool`.
    """
    ctx = multiprocessing.get_context("spawn")
    names = list(to_run)
    index_of = {name: i for i, name in enumerate(names)}
    waiting = list(names)
    remaining = len(names)

    # Same composition as engine._run_pool: point spawned workers at the
    # shared encode-cache disk tier so an encode node's hidden states are
    # disk hits for every row node, whichever worker runs it.
    shared_enc = None
    if _env.enc_cache_enabled() and _env.enc_cache_dir() is None:
        shared_enc = str(engine._enc_cache_dir_for(cache_dir))
        os.environ["REPRO_ENC_CACHE_DIR"] = shared_enc

    def sweep() -> int:
        """Resolve waiting nodes whose dependencies failed; cascades."""
        resolved = 0
        changed = True
        while changed:
            changed = False
            for name in list(waiting):
                node = graph.nodes[name]
                failed = [d for d in node.deps
                          if statuses.get(d) in _BAD_STATES]
                if failed:
                    record_upstream(name, failed)
                    waiting.remove(name)
                    resolved += 1
                    changed = True
        return resolved

    def next_ready() -> "str | None":
        for name in waiting:
            node = graph.nodes[name]
            if all(statuses.get(d) in _OK_STATES for d in node.deps):
                return name
        return None

    workers = []
    try:
        workers = [engine._Worker(ctx) for _ in range(min(jobs, remaining))]
        while remaining:
            remaining -= sweep()
            if not remaining:
                break
            for slot, worker in enumerate(workers):
                if worker.task is None:
                    name = next_ready()
                    if name is None:
                        continue
                    if not worker.process.is_alive():
                        worker.stop(force=True)
                        workers[slot] = worker = engine._Worker(ctx)
                    waiting.remove(name)
                    node = graph.nodes[name]
                    worker.assign((index_of[name], _node_spec(node),
                                   node.seed, trace), timeout)
            busy = [w for w in workers if w.task is not None]
            if not busy:
                # Nothing running and nothing ready: only reachable if a
                # waiting node's dependency can never resolve. The graph
                # forbids cycles, so this is a defensive fail-safe, not a
                # code path — resolve the stragglers as upstream errors
                # rather than spinning forever.
                for name in list(waiting):
                    blocked = [d for d in graph.nodes[name].deps
                               if statuses.get(d) not in _OK_STATES]
                    record_upstream(name, blocked or [name])
                    waiting.remove(name)
                    remaining -= 1
                continue
            ready = _wait_connections([w.conn for w in busy],
                                      timeout=_POLL_SECONDS)
            now = time.monotonic()
            for slot, worker in enumerate(workers):
                if worker.task is None:
                    continue
                name = names[worker.task[0]]
                if worker.conn in ready:
                    try:
                        got, metrics, seconds, payload = worker.conn.recv()
                    except (EOFError, OSError):
                        record(name, {"error": "worker crashed"}, 0.0)
                        remaining -= 1
                        worker.stop(force=True)
                        workers[slot] = engine._Worker(ctx)
                        continue
                    record(names[got], metrics, seconds, payload)
                    remaining -= 1
                    worker.task = None
                    worker.deadline = None
                elif worker.deadline is not None and now > worker.deadline:
                    record(name, {"error": f"timeout after {timeout:g}s"},
                           float(timeout))
                    remaining -= 1
                    worker.stop(force=True)
                    workers[slot] = engine._Worker(ctx)
                elif not worker.process.is_alive():
                    record(name, {"error": "worker crashed"}, 0.0)
                    remaining -= 1
                    worker.stop(force=True)
                    workers[slot] = engine._Worker(ctx)
    finally:
        for worker in workers:
            worker.stop()
        if shared_enc and os.environ.get("REPRO_ENC_CACHE_DIR") == shared_enc:
            del os.environ["REPRO_ENC_CACHE_DIR"]


def run_requests(requests: list, *, jobs: "int | None" = None,
                 use_cache: "bool | None" = None,
                 timeout: "float | None" = None,
                 cache_dir: "str | Path | None" = None,
                 select=None) -> dict:
    """Compile ``requests`` into one shared graph, run it, assemble rows.

    Returns ``{request.table: rows}``. Compiling every request into a
    single :class:`ArtifactGraph` is where cross-table dedup happens:
    two tables declaring the same corpus or encode node share one
    artifact (``graph.merged`` counts the saves). ``select`` takes
    ``--select`` strings (``table.row``, ``+node``, ``node+``) resolved
    against the merged graph; the named nodes are forced to recompute.
    """
    graph = ArtifactGraph()
    for request in requests:
        for node in request.nodes:
            graph.add(node)
    force = graph.select(select) if select else ()
    results = run_graph(graph, jobs=jobs, use_cache=use_cache,
                        timeout=timeout, cache_dir=cache_dir, force=force)

    tables = {}
    for request in requests:
        rows = []
        for name in request.row_names:
            node = graph.nodes[name]
            payload = results[name]
            metrics = payload["metrics"]
            if metrics.get("__skip__"):
                continue
            row = dict(node.static)
            row.update(metrics)
            row["seconds"] = round(float(payload["seconds"]), 3)
            rows.append(row)
        if request.post is not None:
            rows = request.post(rows)
        tables[request.table] = rows
    return tables
