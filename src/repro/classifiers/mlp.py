"""Bag-of-embeddings MLP classifier."""

from __future__ import annotations

import numpy as np

from repro.classifiers.base import TokenClassifier
from repro.nn.layers import Linear
from repro.nn.tensor import Tensor


class BagOfEmbeddingsClassifier(TokenClassifier):
    """Mean-of-embeddings followed by a one-hidden-layer MLP.

    The cheapest neural classifier in the library; used wherever the paper
    fine-tunes a simple head over pooled representations.
    """

    def __init__(self, vocabulary, n_classes: int, dim: int = 48,
                 max_len: int = 48, hidden: int = 32, embedding_table=None,
                 seed=0):
        super().__init__(vocabulary, n_classes, dim=dim, max_len=max_len,
                         embedding_table=embedding_table, seed=seed)
        self.fc1 = Linear(dim, hidden, self.rng)
        self.head = Linear(hidden, n_classes, self.rng)

    def _forward(self, ids: np.ndarray, pad_mask: np.ndarray) -> Tensor:
        x = self.embedding(ids)  # (B, T, D)
        dtype = x.data.dtype
        keep = Tensor((~pad_mask).astype(dtype)[:, :, None])
        summed = (x * keep).sum(axis=1)
        counts = np.maximum((~pad_mask).sum(axis=1, keepdims=True), 1).astype(dtype)
        mean = summed * Tensor(1.0 / counts)
        return self.head(self.fc1(mean).tanh())
