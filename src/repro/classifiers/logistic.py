"""Multinomial logistic regression over precomputed feature vectors."""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import NotFittedError
from repro.core.seeding import ensure_rng
from repro.nn.layers import Linear
from repro.nn.losses import soft_cross_entropy
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor


class LogisticRegression:
    """Softmax regression on dense features (fine-tuning heads, probes)."""

    def __init__(self, n_features: int, n_classes: int, l2: float = 1e-4,
                 seed: "int | np.random.Generator" = 0):
        self.rng = ensure_rng(seed)
        self.linear = Linear(n_features, n_classes, self.rng)
        self.n_classes = n_classes
        self.l2 = l2
        self._fitted = False

    def fit(self, features: np.ndarray, targets, epochs: int = 60,
            batch_size: int = 64, lr: float = 5e-2) -> "LogisticRegression":
        """Train on (features, targets); targets may be hard ints or soft rows."""
        from repro.classifiers.base import as_soft_targets

        features = np.asarray(features,
                              dtype=self.linear.weight.data.dtype)
        soft = as_soft_targets(targets, self.n_classes)
        optimizer = Adam(self.linear.parameters(), lr=lr,
                         weight_decay=self.l2)
        n = features.shape[0]
        for _ in range(epochs):
            order = self.rng.permutation(n)
            for start in range(0, n, batch_size):
                take = order[start : start + batch_size]
                logits = self.linear(Tensor(features[take]))
                loss = soft_cross_entropy(logits, soft[take])
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
        self._fitted = True
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """(N, n_classes) softmax probabilities."""
        if not self._fitted:
            raise NotFittedError("LogisticRegression is not fitted")
        features = np.asarray(features,
                              dtype=self.linear.weight.data.dtype)
        logits = self.linear(Tensor(features)).data
        shifted = logits - logits.max(axis=1, keepdims=True)
        probs = np.exp(shifted)
        return probs / probs.sum(axis=1, keepdims=True)

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Argmax class indices."""
        return self.predict_proba(features).argmax(axis=1)
