"""Attention-pooled classifier (HAN-style).

A single-level hierarchical-attention network: a position-wise feature
transform followed by learned soft attention over tokens, then a linear
head. Stands in for the word-level half of Yang et al.'s HAN (our
documents are single-"sentence" token streams, so the sentence level
collapses).
"""

from __future__ import annotations

import numpy as np

from repro.classifiers.base import TokenClassifier
from repro.nn import functional as F
from repro.nn.layers import Linear
from repro.nn.tensor import Tensor


class AttentiveClassifier(TokenClassifier):
    """Token attention pooling + linear head."""

    def __init__(self, vocabulary, n_classes: int, dim: int = 48,
                 max_len: int = 48, hidden: int = 32, embedding_table=None,
                 seed=0):
        super().__init__(vocabulary, n_classes, dim=dim, max_len=max_len,
                         embedding_table=embedding_table, seed=seed)
        self.transform = Linear(dim, hidden, self.rng)
        self.attention_vector = Linear(hidden, 1, self.rng, bias=False)
        self.head = Linear(dim, n_classes, self.rng)
        self.last_attention: "np.ndarray | None" = None

    def _forward(self, ids: np.ndarray, pad_mask: np.ndarray) -> Tensor:
        x = self.embedding(ids)  # (B, T, D)
        u = self.transform(x).tanh()  # (B, T, H)
        scores = self.attention_vector(u).reshape(ids.shape[0], ids.shape[1])
        scores = scores.masked_fill(pad_mask, -1e9)
        alpha = F.softmax(scores, axis=-1)  # (B, T)
        self.last_attention = alpha.data
        pooled = (x * alpha.reshape(ids.shape[0], ids.shape[1], 1)).sum(axis=1)
        return self.head(pooled)
