"""Generic self-training with target sharpening.

WeSTClass-style bootstrapping: iterate (predict on the unlabeled corpus ->
sharpen the prediction distribution -> retrain toward the sharpened
targets) until predictions stabilize. The sharpening follows the DEC-style
target ``q_ic proportional to p_ic^2 / f_c`` where ``f_c`` is the soft class
frequency — high-confidence assignments get reinforced and frequent classes
are downweighted.
"""

from __future__ import annotations

import numpy as np


def sharpen_distribution(proba: np.ndarray) -> np.ndarray:
    """DEC self-training targets from current predictions."""
    proba = np.asarray(proba, dtype=float)
    freq = proba.sum(axis=0)
    freq[freq == 0] = 1.0
    weighted = proba**2 / freq
    totals = weighted.sum(axis=1, keepdims=True)
    totals[totals == 0] = 1.0
    return weighted / totals


class SelfTrainingLoop:
    """Drives self-training of any classifier with fit/predict_proba.

    Parameters
    ----------
    max_iterations:
        Cap on self-training rounds.
    tolerance:
        Stop when the fraction of documents whose argmax changed between
        rounds falls below this value.
    epochs_per_iteration / lr:
        Passed to the classifier's ``fit``.
    """

    def __init__(self, max_iterations: int = 5, tolerance: float = 0.02,
                 epochs_per_iteration: int = 2, lr: float = 1e-3):
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.epochs_per_iteration = epochs_per_iteration
        self.lr = lr
        self.history: list[float] = []

    def run(self, classifier, token_lists: list) -> "SelfTrainingLoop":
        """Self-train ``classifier`` on the unlabeled ``token_lists``."""
        previous = classifier.predict_proba(token_lists).argmax(axis=1)
        for _ in range(self.max_iterations):
            proba = classifier.predict_proba(token_lists)
            targets = sharpen_distribution(proba)
            classifier.fit(token_lists, targets,
                           epochs=self.epochs_per_iteration, lr=self.lr)
            current = classifier.predict_proba(token_lists).argmax(axis=1)
            changed = float(np.mean(current != previous))
            self.history.append(changed)
            previous = current
            if changed < self.tolerance:
                break
        return self
