"""Shared machinery for token-sequence classifiers.

Subclasses implement ``_forward(ids, pad_mask) -> logits`` over padded id
batches; the base class handles vocabulary encoding, batching, soft/hard
targets, and Adam training.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.core.exceptions import NotFittedError
from repro.core.seeding import ensure_rng
from repro.nn.layers import Embedding, Module
from repro.nn.losses import soft_cross_entropy
from repro.nn.optim import Adam
from repro.plm.encoder import BatchPlan
from repro.text.vocabulary import Vocabulary


def as_soft_targets(targets, n_classes: int) -> np.ndarray:
    """Normalize hard int labels or soft rows into an (N, C) matrix."""
    arr = np.asarray(targets)
    if arr.ndim == 1:
        out = np.zeros((arr.shape[0], n_classes))
        out[np.arange(arr.shape[0]), arr.astype(int)] = 1.0
        return out
    if arr.shape[1] != n_classes:
        raise ValueError(f"target width {arr.shape[1]} != n_classes {n_classes}")
    return arr.astype(float)


class TokenClassifier(Module):
    """Base classifier over token lists.

    Parameters
    ----------
    vocabulary:
        Token vocabulary used for encoding.
    n_classes:
        Output dimensionality.
    embedding_table:
        Optional (vocab, dim) initialization (e.g. word2vec or PLM input
        embeddings); random when omitted.
    """

    def __init__(self, vocabulary: Vocabulary, n_classes: int, dim: int = 48,
                 max_len: int = 48, embedding_table: "np.ndarray | None" = None,
                 seed: "int | np.random.Generator" = 0):
        super().__init__()
        self.vocabulary = vocabulary
        self.n_classes = n_classes
        self.dim = dim
        self.max_len = max_len
        self.rng = ensure_rng(seed)
        self.embedding = Embedding(len(vocabulary), dim, self.rng)
        if embedding_table is not None:
            if embedding_table.shape != (len(vocabulary), dim):
                raise ValueError(
                    f"embedding table {embedding_table.shape} != "
                    f"({len(vocabulary)}, {dim})"
                )
            self.embedding.weight.data = embedding_table.copy()
        self._fitted = False

    # -- subclass hook ---------------------------------------------------------
    def _forward(self, ids: np.ndarray, pad_mask: np.ndarray):
        """Return a logits Tensor of shape (B, n_classes)."""
        raise NotImplementedError

    # -- training / inference ----------------------------------------------------
    def _encode(self, token_lists: list) -> list:
        unk = self.vocabulary.unk_id
        out = []
        for tokens in token_lists:
            ids = self.vocabulary.encode(tokens)[: self.max_len]
            if ids.size == 0:
                ids = np.array([unk])
            out.append(ids)
        return out

    def fit(self, token_lists: list, targets, epochs: int = 5,
            batch_size: int = 32, lr: float = 2e-3,
            sample_weights: "np.ndarray | None" = None) -> "TokenClassifier":
        """Train with soft cross-entropy on (token list, target) pairs."""
        dtype = self.embedding.weight.data.dtype
        soft = as_soft_targets(targets, self.n_classes).astype(dtype)
        sequences = self._encode(token_lists)
        # Pad the corpus once; every minibatch is then a vectorized gather
        # into reusable id/mask buffers instead of a per-batch Python loop.
        plan = BatchPlan(sequences, self.vocabulary.pad_id, self.max_len)
        optimizer = Adam(self.parameters(), lr=lr)
        self.train()
        n = len(sequences)
        with obs.span(f"nn.fit:{type(self).__name__}", docs=n,
                      epochs=int(epochs)):
            for epoch in range(epochs):
                with obs.span("epoch", index=epoch):
                    order = self.rng.permutation(n)
                    for start in range(0, n, batch_size):
                        take = order[start : start + batch_size]
                        ids, pad_mask = plan.gather(take)
                        logits = self._forward(ids, pad_mask)
                        if sample_weights is not None:
                            # Weighted soft CE: scale rows of the target matrix.
                            w = sample_weights[take][:, None]
                            loss = soft_cross_entropy(logits, soft[take] * w) * (
                                len(take) / max(w.sum(), 1e-9)
                            )
                        else:
                            loss = soft_cross_entropy(logits, soft[take])
                        optimizer.zero_grad()
                        loss.backward()
                        optimizer.clip_grad_norm(5.0)
                        optimizer.step()
        self.eval()
        self._fitted = True
        return self

    def predict_proba(self, token_lists: list, batch_size: int = 64) -> np.ndarray:
        """(N, n_classes) softmax probabilities."""
        if not self._fitted:
            raise NotFittedError(f"{type(self).__name__} is not fitted")
        sequences = self._encode(token_lists)
        plan = BatchPlan(sequences, self.vocabulary.pad_id, self.max_len)
        n = len(sequences)
        out = np.zeros((n, self.n_classes), dtype=self.embedding.weight.data.dtype)
        self.eval()
        for start in range(0, n, batch_size):
            take = np.arange(start, min(start + batch_size, n))
            ids, pad_mask = plan.gather(take)
            logits = self._forward(ids, pad_mask).data
            shifted = logits - logits.max(axis=1, keepdims=True)
            probs = np.exp(shifted)
            probs /= probs.sum(axis=1, keepdims=True)
            out[start : start + take.size] = probs
        return out

    def predict(self, token_lists: list) -> np.ndarray:
        """Argmax class indices."""
        return self.predict_proba(token_lists).argmax(axis=1)
