"""TextCNN (Kim 2014) over padded token batches.

Convolutions are realized as sliding-window gathers + linear maps, with
ReLU and max-over-time pooling per filter size — the classifier WeSTClass
and WeSHClass train on pseudo-documents.
"""

from __future__ import annotations

import numpy as np

from repro.classifiers.base import TokenClassifier
from repro.nn.layers import Linear
from repro.nn.tensor import Tensor, concatenate


class TextCNNClassifier(TokenClassifier):
    """Multi-window CNN with max-over-time pooling."""

    def __init__(self, vocabulary, n_classes: int, dim: int = 48,
                 max_len: int = 48, filters: int = 24,
                 window_sizes: tuple = (2, 3), embedding_table=None,
                 seed=0):
        super().__init__(vocabulary, n_classes, dim=dim, max_len=max_len,
                         embedding_table=embedding_table, seed=seed)
        self.window_sizes = tuple(window_sizes)
        self.filters = filters
        self.convs = [
            Linear(w * dim, filters, self.rng) for w in self.window_sizes
        ]
        self.head = Linear(filters * len(self.window_sizes), n_classes, self.rng)

    def _forward(self, ids: np.ndarray, pad_mask: np.ndarray) -> Tensor:
        batch, seq = ids.shape
        min_len = max(self.window_sizes)
        if seq < min_len:
            pad = np.full((batch, min_len - seq), self.vocabulary.pad_id,
                          dtype=ids.dtype)
            ids = np.concatenate([ids, pad], axis=1)
            pad_mask = np.concatenate(
                [pad_mask, np.ones((batch, min_len - seq), dtype=bool)], axis=1
            )
            seq = min_len
        x = self.embedding(ids)  # (B, T, D)
        pooled_parts = []
        for window, conv in zip(self.window_sizes, self.convs):
            idx = np.arange(seq - window + 1)[:, None] + np.arange(window)[None, :]
            windows = x[:, idx, :]  # (B, P, W, D)
            positions = windows.reshape(batch, seq - window + 1, window * self.dim)
            feature = conv(positions).relu()  # (B, P, F)
            # Mask windows that start at padding so they never win the max.
            starts = pad_mask[:, : seq - window + 1]
            feature = feature.masked_fill(starts[:, :, None], 0.0)
            pooled_parts.append(feature.max(axis=1))  # (B, F)
        features = concatenate(pooled_parts, axis=1)
        return self.head(features)
