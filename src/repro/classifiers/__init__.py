"""Neural text classifiers (numpy) + the generic self-training loop."""

from repro.classifiers.base import TokenClassifier
from repro.classifiers.han import AttentiveClassifier
from repro.classifiers.logistic import LogisticRegression
from repro.classifiers.mlp import BagOfEmbeddingsClassifier
from repro.classifiers.self_training import SelfTrainingLoop, sharpen_distribution
from repro.classifiers.textcnn import TextCNNClassifier

__all__ = [
    "TokenClassifier",
    "TextCNNClassifier",
    "AttentiveClassifier",
    "BagOfEmbeddingsClassifier",
    "LogisticRegression",
    "SelfTrainingLoop",
    "sharpen_distribution",
]
