"""Typed heterogeneous graph over documents and their metadata.

Node ids are ``(node_type, name)`` tuples. Edges are undirected and typed
by their endpoint types (e.g. a doc-author edge has type
``("doc", "author")`` regardless of direction). Reference edges between
documents get the distinguishing type ``("doc", "ref")``.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.types import Corpus


class HeterogeneousGraph:
    """Adjacency-list heterogeneous graph."""

    def __init__(self) -> None:
        self._adjacency: dict = {}
        self.node_types: dict = {}

    # -- construction -----------------------------------------------------------
    def add_node(self, node_type: str, name: str) -> tuple:
        """Register (and return) the node ``(node_type, name)``."""
        node = (node_type, name)
        if node not in self._adjacency:
            self._adjacency[node] = {}
            self.node_types.setdefault(node_type, set()).add(name)
        return node

    def add_edge(self, a: tuple, b: tuple, edge_type: "str | None" = None) -> None:
        """Add an undirected typed edge (idempotent)."""
        self.add_node(*a)
        self.add_node(*b)
        edge_type = edge_type or "-".join(sorted((a[0], b[0])))
        self._adjacency[a].setdefault(edge_type, set()).add(b)
        self._adjacency[b].setdefault(edge_type, set()).add(a)

    @classmethod
    def from_corpus(cls, corpus: Corpus,
                    include: Iterable = ("user", "authors", "venue", "tags",
                                         "references")) -> "HeterogeneousGraph":
        """Build the metadata network of a corpus.

        Documents become ``doc`` nodes; metadata fields named in
        ``include`` become typed neighbours. References become
        ``doc-ref`` edges to the cited documents (when present in the
        corpus or not — dangling refs become doc nodes too).
        """
        graph = cls()
        include = set(include)
        for doc in corpus:
            doc_node = graph.add_node("doc", doc.doc_id)
            meta = doc.metadata
            if "user" in include and "user" in meta:
                graph.add_edge(doc_node, ("user", meta["user"]))
            if "venue" in include and "venue" in meta:
                graph.add_edge(doc_node, ("venue", meta["venue"]))
            if "authors" in include:
                for author in meta.get("authors", []):
                    graph.add_edge(doc_node, ("author", author))
            if "tags" in include:
                for tag in meta.get("tags", []):
                    graph.add_edge(doc_node, ("tag", tag))
            if "references" in include:
                for ref in meta.get("references", []):
                    graph.add_edge(doc_node, ("doc", ref), edge_type="doc-ref")
        return graph

    # -- queries -----------------------------------------------------------------
    def nodes(self, node_type: "str | None" = None) -> list:
        """All nodes, optionally restricted to one type."""
        if node_type is None:
            return list(self._adjacency)
        return [(node_type, name) for name in sorted(self.node_types.get(node_type, ()))]

    def neighbors(self, node: tuple, node_type: "str | None" = None,
                  edge_type: "str | None" = None) -> list:
        """Neighbours of ``node``, optionally filtered by type."""
        buckets = self._adjacency.get(node, {})
        out: list[tuple] = []
        for etype, targets in buckets.items():
            if edge_type is not None and etype != edge_type:
                continue
            for target in targets:
                if node_type is None or target[0] == node_type:
                    out.append(target)
        return sorted(out)

    def degree(self, node: tuple) -> int:
        """Total edge count of ``node`` across edge types."""
        return sum(len(t) for t in self._adjacency.get(node, {}).values())

    def __contains__(self, node: tuple) -> bool:
        return node in self._adjacency

    def __len__(self) -> int:
        return len(self._adjacency)

    def __repr__(self) -> str:
        counts = {t: len(names) for t, names in self.node_types.items()}
        return f"HeterogeneousGraph({counts})"
