"""Meta-path guided random walks (metapath2vec's corpus generator)."""

from __future__ import annotations

import numpy as np

from repro.core.seeding import ensure_rng
from repro.hin.graph import HeterogeneousGraph
from repro.hin.metapath import MetaPath


def metapath_random_walks(graph: HeterogeneousGraph, path: MetaPath,
                          walks_per_node: int = 4, walk_length: int = 20,
                          seed: "int | np.random.Generator" = 0) -> list:
    """Walks that repeat the meta-path's type pattern.

    The path must start and end with the same node type (e.g. doc-user-doc)
    so it can cycle. Each walk is a list of string node tokens of the form
    ``"type:name"`` consumable by the skip-gram trainer.
    """
    if path.node_types[0] != path.node_types[-1]:
        raise ValueError("cyclic meta-path required (same first/last type)")
    rng = ensure_rng(seed)
    pattern = list(path.node_types[1:])  # types to visit after the anchor
    walks: list[list[str]] = []
    for start in graph.nodes(path.node_types[0]):
        for _ in range(walks_per_node):
            walk = [f"{start[0]}:{start[1]}"]
            node = start
            step = 0
            while len(walk) < walk_length:
                want = pattern[step % len(pattern)]
                edge_type = path.edge_types[step % len(pattern)] if path.edge_types else None
                candidates = graph.neighbors(node, node_type=want,
                                             edge_type=edge_type)
                if not candidates:
                    break
                node = candidates[int(rng.integers(0, len(candidates)))]
                walk.append(f"{node[0]}:{node[1]}")
                step += 1
            if len(walk) > 1:
                walks.append(walk)
    return walks
