"""Heterogeneous information network substrate."""

from repro.hin.graph import HeterogeneousGraph
from repro.hin.metapath import MetaPath, metapath_pairs
from repro.hin.random_walk import metapath_random_walks

__all__ = [
    "HeterogeneousGraph",
    "MetaPath",
    "metapath_pairs",
    "metapath_random_walks",
]
