"""Meta-paths: typed walks defining semantic document-document similarity.

MICoL's positive pairs come from meta-paths such as P->P<-P (two papers
citing a common paper) and P<-(PP)->P (two papers co-cited by a third).
Here a :class:`MetaPath` is a sequence of node types with optional edge
types; :func:`metapath_pairs` samples (start, end) document pairs connected
by an instance of the path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.seeding import ensure_rng
from repro.hin.graph import HeterogeneousGraph


@dataclass(frozen=True)
class MetaPath:
    """A sequence of node types, e.g. ``("doc", "author", "doc")``.

    ``edge_types`` optionally constrains each hop (same length as the
    number of hops); ``name`` is the display form used in the tables.
    """

    node_types: tuple
    edge_types: "tuple | None" = None
    name: str = ""

    def __post_init__(self) -> None:
        if len(self.node_types) < 2:
            raise ValueError("meta-path needs at least two node types")
        if self.edge_types is not None and len(self.edge_types) != len(self.node_types) - 1:
            raise ValueError("edge_types must have one entry per hop")

    def __str__(self) -> str:
        return self.name or "-".join(self.node_types)


#: MICoL's two bibliographic meta-paths over reference edges.
P_REF_P = MetaPath(("doc", "doc", "doc"), ("doc-ref", "doc-ref"), name="P->P<-P")
P_COCITED_P = MetaPath(("doc", "doc", "doc"), ("doc-ref", "doc-ref"), name="P<-(PP)->P")
P_AUTHOR_P = MetaPath(("doc", "author", "doc"), name="P-A-P")
P_VENUE_P = MetaPath(("doc", "venue", "doc"), name="P-V-P")
P_USER_P = MetaPath(("doc", "user", "doc"), name="D-U-D")
P_TAG_P = MetaPath(("doc", "tag", "doc"), name="D-T-D")


def metapath_pairs(graph: HeterogeneousGraph, path: MetaPath, n_pairs: int,
                   seed: "int | np.random.Generator" = 0) -> list:
    """Sample up to ``n_pairs`` distinct (start_doc, end_doc) name pairs.

    Each sample walks the meta-path from a random start node of the first
    type; walks that dead-end or loop back to the start are discarded.
    """
    rng = ensure_rng(seed)
    starts = graph.nodes(path.node_types[0])
    if not starts:
        return []
    pairs: set = set()
    attempts = 0
    max_attempts = n_pairs * 20
    while len(pairs) < n_pairs and attempts < max_attempts:
        attempts += 1
        node = starts[int(rng.integers(0, len(starts)))]
        start = node
        ok = True
        for hop in range(len(path.node_types) - 1):
            edge_type = path.edge_types[hop] if path.edge_types else None
            candidates = graph.neighbors(node, node_type=path.node_types[hop + 1],
                                         edge_type=edge_type)
            candidates = [c for c in candidates if c != start]
            if not candidates:
                ok = False
                break
            node = candidates[int(rng.integers(0, len(candidates)))]
        if ok and node != start:
            pairs.add((start[1], node[1]))
    return sorted(pairs)
