"""Run-scoped tracer: nested spans, typed counters, JSONL event sink.

A :class:`Tracer` records one run as a flat list of picklable event
dicts. Spans carry a slash-joined ``path`` (their ancestry at entry), so
the tree reconstructs from the flat stream without nested JSON; a span
*name* may itself contain ``/`` (``row:<table>/<row>``), which the
report renders as virtual sub-levels. Counters accumulate in a plain
dict and are emitted once at finalization. All
timings come from ``time.monotonic()`` and live only in the ``t0``/
``dur`` fields — everything else in an event is deterministic for a
fixed seed, which is what lets traces be diffed across runs.

Worker processes run their own short-lived tracer per row and ship
:meth:`Tracer.export` payloads back over the result pipe; the parent
re-roots those spans under its active span with :meth:`Tracer.absorb`
and merges the counters by summation (in row order, so parallel traces
have deterministic content too).

Event schema (one JSON object per line):

- ``{"type": "begin", "schema": 1, "name": <run name>}`` — first line;
- ``{"type": "span", "name": ..., "path": "a/b/c", "t0": s, "dur": s
  [, "attrs": {...}][, "remote": true]}`` — one per completed span, in
  completion order (children before parents); ``remote`` marks spans
  absorbed from a worker process, whose ``t0`` is relative to the
  worker-side trace start;
- ``{"type": "counters", "values": {name: number}}`` — emitted at
  finalization, keys sorted;
- ``{"type": "end", "dur": s}`` — total traced wall-clock.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

SCHEMA_VERSION = 1


class Span:
    """One timed region; use via ``with obs.span(name, **attrs):``."""

    __slots__ = ("_tracer", "name", "attrs", "path", "_t0")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.path = ""
        self._t0 = 0.0

    def __enter__(self) -> "Span":
        tracer = self._tracer
        tracer._stack.append(self.name)
        self.path = "/".join(tracer._stack)
        self._t0 = time.monotonic()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = time.monotonic()
        tracer = self._tracer
        tracer._stack.pop()
        event = {
            "type": "span",
            "name": self.name,
            "path": self.path,
            "t0": round(self._t0 - tracer._start, 6),
            "dur": round(end - self._t0, 6),
        }
        if self.attrs:
            event["attrs"] = self.attrs
        tracer._events.append(event)
        return False


class NullSpan:
    """The disabled-mode span: a reusable, stateless context manager."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = NullSpan()


class Tracer:
    """Event recorder for one run (or one worker-side row)."""

    def __init__(self, name: str = "run"):
        self.name = name
        self.counters: "dict[str, float]" = {}
        self.gauges: "dict[str, float]" = {}
        self._events: "list[dict]" = []
        self._stack: "list[str]" = []
        self._start = time.monotonic()
        self._finalized = False

    # -- recording ----------------------------------------------------------
    def span(self, name: str, attrs: dict) -> Span:
        return Span(self, name, attrs)

    def count(self, name: str, n: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        """Record a high-water-mark gauge (merges by ``max``, not sum).

        Gauges capture instantaneous levels — queue depth, busy replicas
        — where summing across observations (or across workers) would be
        meaningless; the trace keeps the peak.
        """
        current = self.gauges.get(name)
        if current is None or value > current:
            self.gauges[name] = value

    def current_path(self) -> str:
        """Slash-joined names of the open spans (empty at top level)."""
        return "/".join(self._stack)

    # -- worker boundary ----------------------------------------------------
    def export(self) -> dict:
        """Picklable payload of everything recorded so far.

        The receiving side feeds this to :meth:`absorb`; only span events
        cross the boundary (a worker's counters travel separately so they
        merge by summation, not concatenation).
        """
        return {
            "events": [e for e in self._events if e["type"] == "span"],
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
        }

    def absorb(self, payload: dict, prefix: "str | None" = None) -> None:
        """Merge a child tracer's :meth:`export` under ``prefix``.

        ``prefix`` defaults to the current open-span path. Child spans are
        re-rooted (their ``path`` gains the prefix) and tagged
        ``remote: true``; child counters add into this tracer's.
        """
        prefix = self.current_path() if prefix is None else prefix
        for event in payload.get("events", ()):
            event = dict(event)
            if prefix:
                event["path"] = f"{prefix}/{event['path']}"
            event["remote"] = True
            self._events.append(event)
        for name, value in payload.get("counters", {}).items():
            self.count(name, value)
        for name, value in payload.get("gauges", {}).items():
            self.gauge(name, value)

    # -- finalization -------------------------------------------------------
    def finalize(self) -> "Tracer":
        """Append the counters and end events (idempotent)."""
        if not self._finalized:
            self._finalized = True
            # Gauges fold into the counters event (schema stays v1);
            # gauge names never collide with counter names by convention
            # (serve.queue_depth vs serve.requests etc.).
            values = {**self.counters, **self.gauges}
            self._events.append({
                "type": "counters",
                "values": {k: values[k] for k in sorted(values)},
            })
            self._events.append({
                "type": "end",
                "dur": round(time.monotonic() - self._start, 6),
            })
        return self

    def events(self) -> list:
        """The recorded events (begin header included, live view)."""
        header = {"type": "begin", "schema": SCHEMA_VERSION, "name": self.name}
        return [header, *self._events]

    def write(self, path: "str | Path") -> Path:
        """Write the trace as JSONL (finalizing first); returns the path."""
        self.finalize()
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w") as fh:
            for event in self.events():
                fh.write(json.dumps(event, sort_keys=True) + "\n")
        return path
