"""Zero-dependency, off-by-default observability for the engines.

The PLM inference engine, the experiment row executor, and the training
loops are instrumented with calls into this module — spans around timed
regions, counters at cache/step/dispatch sites. With no tracer enabled
(the default, and the only state the library ever puts itself in) every
hook is a no-op behind a single module-level ``is None`` check:
:func:`span` returns a shared stateless context manager and
:func:`count` returns immediately, so the instrumented hot paths carry
no measurable overhead (asserted by ``benchmarks/bench_obs_overhead.py``).

Enabling is explicit and run-scoped::

    from repro import obs

    obs.enable("my-run")
    with obs.span("encode", docs=500):
        ...
    obs.count("tokens", 4096)
    tracer = obs.disable()
    tracer.write("trace.jsonl")
    print(report.summarize("trace.jsonl"))   # repro.obs.report

The experiment CLI wires this up via ``--trace DIR`` / ``REPRO_TRACE``;
``python -m repro.obs.report trace.jsonl`` renders the summary tree.
Setting ``REPRO_NN_PROFILE=1`` additionally installs the per-op autograd
hook (:func:`repro.nn.tensor.set_op_hook`) for the lifetime of the
tracer, counting graph-node creations as ``nn.op.<name>`` counters.

Trace *content* is deterministic for a fixed seed: only the ``t0``/
``dur`` timing fields vary between runs (see :mod:`repro.obs.tracer`),
and nothing recorded here feeds the row-memo keys.
"""

from __future__ import annotations

from repro.core import env
from repro.obs.tracer import NULL_SPAN, NullSpan, Span, Tracer

__all__ = [
    "Tracer",
    "Span",
    "NullSpan",
    "enable",
    "disable",
    "enabled",
    "tracer",
    "span",
    "count",
    "counter",
    "gauge",
    "gauge_value",
    "trace_footer",
]

#: The active run-scoped tracer; ``None`` means every hook is a no-op.
_TRACER: "Tracer | None" = None


def enabled() -> bool:
    """Whether a tracer is currently recording."""
    return _TRACER is not None


def tracer() -> "Tracer | None":
    """The active tracer (None when disabled)."""
    return _TRACER


def enable(name: str = "run") -> Tracer:
    """Install a fresh run-scoped tracer and return it.

    Nested enables are a usage error — finish (``disable``) the previous
    run first. When ``REPRO_NN_PROFILE`` is truthy, also installs the
    autograd per-op hook for the tracer's lifetime.
    """
    global _TRACER
    if _TRACER is not None:
        raise RuntimeError(
            f"tracing already enabled (run {_TRACER.name!r}); disable() first"
        )
    _TRACER = Tracer(name)
    if env.nn_profile():
        from repro.nn.tensor import set_op_hook
        set_op_hook(_profile_op)
    return _TRACER


def disable() -> "Tracer | None":
    """Finalize and remove the active tracer; returns it (or None)."""
    global _TRACER
    current = _TRACER
    _TRACER = None
    if current is not None:
        from repro.nn.tensor import set_op_hook
        set_op_hook(None)
        current.finalize()
    return current


def span(name: str, **attrs) -> "Span | NullSpan":
    """A timed region; no-op (shared null span) when tracing is disabled."""
    current = _TRACER
    if current is None:
        return NULL_SPAN
    return current.span(name, attrs)


def count(name: str, n: float = 1) -> None:
    """Add ``n`` to counter ``name``; no-op when tracing is disabled."""
    current = _TRACER
    if current is None:
        return
    current.counters[name] = current.counters.get(name, 0) + n


def counter(name: str) -> float:
    """Current value of counter ``name`` (0 when unset or disabled)."""
    current = _TRACER
    if current is None:
        return 0
    return current.counters.get(name, 0)


def gauge(name: str, value: float) -> None:
    """Record a high-water-mark gauge; no-op when tracing is disabled.

    Gauges keep the *peak* observed level (queue depth, busy replicas)
    rather than a running sum, and merge across worker exports by ``max``
    (see :meth:`Tracer.gauge` / :meth:`Tracer.absorb`).
    """
    current = _TRACER
    if current is None:
        return
    current.gauge(name, value)


def gauge_value(name: str) -> float:
    """Current peak of gauge ``name`` (0 when unset or disabled)."""
    current = _TRACER
    if current is None:
        return 0
    return current.gauges.get(name, 0)


def trace_footer(tracer: Tracer, path) -> str:
    """The one-line ``[trace]`` footer CLIs print after writing a trace.

    Includes the recorded gauge peaks (queue depth, busy replicas) so
    the load high-water marks are visible without opening the JSONL.
    """
    line = f"[trace] {path}"
    if tracer.gauges:
        shown = " ".join(f"{name}={tracer.gauges[name]:g}"
                         for name in sorted(tracer.gauges))
        line += f" [gauges {shown}]"
    return line


def _profile_op(qualname: str) -> None:
    """Per-op autograd hook: count graph-node creations by op name.

    ``qualname`` is the backward closure's qualname, e.g.
    ``Tensor.__mul__.<locals>.backward`` or ``softmax.<locals>.backward``;
    the op name is the component before ``<locals>``.
    """
    current = _TRACER
    if current is None:
        return
    parts = qualname.split(".")
    op = parts[-3] if len(parts) >= 3 else qualname
    key = "nn.op." + op
    current.counters[key] = current.counters.get(key, 0) + 1
